module memento

go 1.24
