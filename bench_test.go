// Benchmark harness: one benchmark family per figure of the paper's
// evaluation (Section 6). Absolute numbers are hardware-bound; the
// ratios between sub-benchmarks are what reproduce the paper's claims
// (DESIGN.md §6 lists the expected shapes; BENCH_*.json snapshots
// record runs). Run with:
//
//	go test -bench=. -benchmem
package memento

import (
	"fmt"
	"testing"

	"memento/internal/analysis"
	"memento/internal/baseline"
	"memento/internal/core"
	"memento/internal/detect"
	"memento/internal/experiments"
	"memento/internal/hierarchy"
	"memento/internal/netsim"
	"memento/internal/trace"
)

// benchWindow keeps per-op state small enough for -benchmem stability
// while leaving thousands of blocks per window.
const benchWindow = 1 << 18

// tracePackets memoizes generated traces across benchmarks.
var traceCache = map[string][]hierarchy.Packet{}

func packetsFor(b *testing.B, prof trace.Profile, n int) []hierarchy.Packet {
	b.Helper()
	key := fmt.Sprintf("%s/%d", prof.Name, n)
	if p, ok := traceCache[key]; ok {
		return p
	}
	gen, err := trace.NewGenerator(prof, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := gen.Generate(n, nil)
	traceCache[key] = p
	return p
}

func keysFor(b *testing.B, prof trace.Profile, n int) []uint64 {
	pkts := packetsFor(b, prof, n)
	keys := make([]uint64, len(pkts))
	for i, p := range pkts {
		keys[i] = uint64(p.Src)
	}
	return keys
}

// reportMpps converts the measured op time into the paper's
// million-packets-per-second metric.
func reportMpps(b *testing.B) {
	b.Helper()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(b.N)/sec/1e6, "Mpps")
	}
}

// BenchmarkFig5_Memento reproduces Figure 5's speed axis: Memento
// update cost versus τ and the counter budget (τ = 1 is WCSS). The
// paper's claim: speedups up to 14× over WCSS, roughly flat in the
// counter budget.
func BenchmarkFig5_Memento(b *testing.B) {
	keys := keysFor(b, trace.Backbone, 1<<20)
	for _, k := range []int{64, 512, 4096} {
		for _, tau := range []float64{1, 1.0 / 16, 1.0 / 256, 1.0 / 1024} {
			name := fmt.Sprintf("counters=%d/tau=1on%d", k, int(1/tau))
			b.Run(name, func(b *testing.B) {
				s, err := core.New[uint64](core.Config{
					Window: benchWindow, Counters: k, Tau: tau, Seed: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Update(keys[i&(len(keys)-1)])
				}
				reportMpps(b)
			})
		}
	}
}

// BenchmarkFig6_HHH reproduces Figure 6: H-Memento's constant-time
// update versus the Baseline's H Full window updates, in one and two
// dimensions. The paper's claim: up to 53× (1D) and 273× (2D).
func BenchmarkFig6_HHH(b *testing.B) {
	pkts := packetsFor(b, trace.Backbone, 1<<20)
	for _, hier := range []hierarchy.Hierarchy{hierarchy.OneD{}, hierarchy.TwoD{}} {
		h := hier.H()
		b.Run(fmt.Sprintf("dims=%d/Baseline", hier.Dims()), func(b *testing.B) {
			w, err := baseline.NewWindow(hier, benchWindow, 512)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Update(pkts[i&(len(pkts)-1)])
			}
			reportMpps(b)
		})
		for _, mult := range []int{1, 64, 1024} {
			v := h * mult
			b.Run(fmt.Sprintf("dims=%d/H-Memento/V=%d", hier.Dims(), v), func(b *testing.B) {
				hm, err := core.NewHHH(core.HHHConfig{
					Hierarchy: hier, Window: benchWindow, Counters: 512 * h, V: v, Seed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					hm.Update(pkts[i&(len(pkts)-1)])
				}
				reportMpps(b)
			})
		}
	}
}

// BenchmarkFig7_HHHvsRHHH reproduces Figure 7: H-Memento (window)
// versus RHHH (interval) at matched sampling ratios. The paper's
// claim: H-Memento is faster at moderate V; RHHH overtakes at extreme
// sampling because a skipped packet costs it nothing while H-Memento
// still slides its window.
func BenchmarkFig7_HHHvsRHHH(b *testing.B) {
	pkts := packetsFor(b, trace.Backbone, 1<<20)
	for _, hier := range []hierarchy.Hierarchy{hierarchy.OneD{}, hierarchy.TwoD{}} {
		h := hier.H()
		for _, mult := range []int{2, 64, 2048} {
			v := h * mult
			b.Run(fmt.Sprintf("dims=%d/H-Memento/V=%d", hier.Dims(), v), func(b *testing.B) {
				hm, err := core.NewHHH(core.HHHConfig{
					Hierarchy: hier, Window: benchWindow, Counters: 64 * h, V: v, Seed: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					hm.Update(pkts[i&(len(pkts)-1)])
				}
				reportMpps(b)
			})
			b.Run(fmt.Sprintf("dims=%d/RHHH/V=%d", hier.Dims(), v), func(b *testing.B) {
				rh, err := baseline.NewRHHH(baseline.RHHHConfig{
					Hierarchy: hier, CountersPerInstance: 64, V: v, Seed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rh.Update(pkts[i&(len(pkts)-1)])
				}
				reportMpps(b)
			})
		}
	}
}

// BenchmarkFig8_OnArrival measures the per-packet cost of the three
// HHH algorithms Figure 8 compares on accuracy: the Interval MST pays
// H Space Saving updates, the Baseline H Full window updates, and
// H-Memento a single sampled update.
func BenchmarkFig8_OnArrival(b *testing.B) {
	pkts := packetsFor(b, trace.Backbone, 1<<20)
	var hier hierarchy.OneD
	b.Run("Interval-MST", func(b *testing.B) {
		m, err := baseline.NewMST(hier, 512)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Update(pkts[i&(len(pkts)-1)])
		}
		reportMpps(b)
	})
	b.Run("Baseline", func(b *testing.B) {
		w, err := baseline.NewWindow(hier, benchWindow, 512)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Update(pkts[i&(len(pkts)-1)])
		}
		reportMpps(b)
	})
	b.Run("H-Memento", func(b *testing.B) {
		hm, err := core.NewHHH(core.HHHConfig{
			Hierarchy: hier, Window: benchWindow, Counters: 512 * 5, V: 40, Seed: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hm.Update(pkts[i&(len(pkts)-1)])
		}
		reportMpps(b)
	})
}

// BenchmarkFig1b_Detection runs the Section 3 detection-time Monte
// Carlo (one full run per op) — the cost of regenerating Figure 1b.
func BenchmarkFig1b_Detection(b *testing.B) {
	for _, m := range []detect.Method{detect.MethodWindow, detect.MethodInterval, detect.MethodMemento} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := detect.Simulate(m, detect.SimConfig{
					Window: 2000, Theta: 0.1, Ratio: 1.5, Runs: 5, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4_BatchOptimize measures the Theorem 5.5 batch-size
// optimization that Figure 4 and the §5.2 examples are built on.
func BenchmarkFig4_BatchOptimize(b *testing.B) {
	m := analysis.PaperExample
	for i := 0; i < b.N; i++ {
		if _, err := m.Optimize(1, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9_NetsimFeed measures the per-packet cost of the
// network-wide simulation for each communication method (Figure 9's
// engine).
func BenchmarkFig9_NetsimFeed(b *testing.B) {
	pkts := packetsFor(b, trace.Backbone, 1<<20)
	for _, m := range []netsim.Method{netsim.Aggregation, netsim.Sample, netsim.Batch} {
		b.Run(m.String(), func(b *testing.B) {
			sim, err := netsim.New(netsim.Config{
				Method: m, BatchSize: 44, Points: 10, Budget: 1,
				Window: benchWindow, Hier: hierarchy.OneD{}, Counters: 4096, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Feed(pkts[i&(len(pkts)-1)])
			}
			reportMpps(b)
		})
	}
}

// BenchmarkFig10_FloodDetection runs a scaled-down flood experiment
// end to end per op (Figure 10's engine), reporting the Batch method's
// miss fraction as a metric.
func BenchmarkFig10_FloodDetection(b *testing.B) {
	var lastMiss float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Figure10(experiments.Fig10Config{
			Profile: trace.Backbone, Window: 1 << 13, Packets: 1 << 15,
			Subnets: 10, FloodRate: 0.7, FloodStart: 1 << 13, Theta: 0.02,
			Points: 10, Budget: 1, BatchSize: 44, Counters: 1024,
			CheckEvery: 256, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Method == "Batch" {
				lastMiss = r.MissedFraction
			}
		}
	}
	b.ReportMetric(lastMiss, "miss-frac")
}

// BenchmarkAblation_Sampling isolates the design choice the paper
// credits for beating RHHH at moderate τ (Section 6.2): Bernoulli
// coin flips from a fresh PRNG draw versus the precomputed
// random-number table. Both run the identical Memento configuration.
func BenchmarkAblation_Sampling(b *testing.B) {
	keys := keysFor(b, trace.Backbone, 1<<20)
	for _, mode := range []struct {
		name  string
		table bool
	}{{"prng", false}, {"table", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := core.New[uint64](core.Config{
				Window: benchWindow, Counters: 512, Tau: 1.0 / 64,
				Seed: 9, TableSampling: mode.table,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(keys[i&(len(keys)-1)])
			}
			reportMpps(b)
		})
	}
}

// BenchmarkAblation_WindowVsFull decomposes Memento's update cost into
// its two halves — the cheap Window update and the expensive Full
// update — quantifying exactly what the τ-sampling amortizes away.
func BenchmarkAblation_WindowVsFull(b *testing.B) {
	keys := keysFor(b, trace.Backbone, 1<<20)
	b.Run("WindowUpdate", func(b *testing.B) {
		s := core.MustNew[uint64](core.Config{Window: benchWindow, Counters: 512, Seed: 10})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.WindowUpdate()
		}
		reportMpps(b)
	})
	b.Run("FullUpdate", func(b *testing.B) {
		s := core.MustNew[uint64](core.Config{Window: benchWindow, Counters: 512, Seed: 10})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.FullUpdate(keys[i&(len(keys)-1)])
		}
		reportMpps(b)
	})
}

// BenchmarkHHHOutput measures the control-plane cost of computing the
// HHH set from a loaded sketch (the query path the paper's future-work
// section discusses).
func BenchmarkHHHOutput(b *testing.B) {
	pkts := packetsFor(b, trace.Backbone, 1<<20)
	hm, err := core.NewHHH(core.HHHConfig{
		Hierarchy: hierarchy.OneD{}, Window: benchWindow, Counters: 512 * 5, V: 20, Seed: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range pkts {
		hm.Update(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hm.Output(0.01)
	}
}
