// End-to-end DDoS mitigation demo: the full live stack of the paper's
// testbed (Section 6.3/6.4) in a single process.
//
// Run with:
//
//	go run ./examples/ddos
//
// Topology: three Apache-stand-in backends ← two load balancers
// (reverse proxy + measurement agent) ← HTTP flood generator, with a
// D-H-Memento controller receiving sampled reports over real TCP and
// pushing deny verdicts for the attacking subnets back to the
// balancers' ACLs.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"memento/internal/floodgen"
	"memento/internal/hierarchy"
	"memento/internal/lb"
	"memento/internal/netwide"
	"memento/internal/trace"
)

func main() {
	const window = 50_000
	params := netwide.Params{Budget: 4, BatchSize: 20, Window: window}

	// Controller.
	ctrl, err := netwide.NewController(netwide.ControllerConfig{
		Hier:     hierarchy.OneD{},
		Params:   params,
		Counters: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go ctrl.Serve(ln)
	defer ctrl.Close()
	fmt.Println("controller listening on", ln.Addr())

	// Backends.
	var backendURLs []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "ok")
		}))
		defer srv.Close()
		backendURLs = append(backendURLs, srv.URL)
	}

	// Two load balancers, each with its own agent and ACL.
	var fronts []string
	var balancers []*lb.Balancer
	for i := 0; i < 2; i++ {
		agent, err := netwide.DialAgent(ln.Addr().String(), netwide.AgentConfig{
			Name: fmt.Sprintf("lb-%d", i), Params: params, Seed: uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer agent.Close()
		acl := lb.NewACL()
		balancer, err := lb.New(lb.Config{
			Backends:          backendURLs,
			Observer:          agent,
			ACL:               acl,
			TrustForwardedFor: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		go balancer.ApplyVerdictsFrom(agent.Verdicts())
		front := httptest.NewServer(balancer)
		defer front.Close()
		fronts = append(fronts, front.URL)
		balancers = append(balancers, balancer)
	}
	fmt.Println("load balancers:", fronts)

	// Phase 1: flood without mitigation.
	const attackSubnets = 5
	const theta = 0.05
	fmt.Printf("\n--- phase 1: HTTP flood from %d subnets at 70%% of traffic ---\n", attackSubnets)
	stats, err := floodgen.Run(context.Background(), floodgen.Config{
		Targets: fronts, Subnets: attackSubnets, FloodRate: 0.7,
		Profile: trace.Backbone, Requests: 60_000, Concurrency: 64, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent %d requests (%d attack); blocked so far: %d\n",
		stats.Sent, stats.Attack, stats.Blocked)

	// Give the last reports a moment to drain, then mitigate.
	time.Sleep(200 * time.Millisecond)
	fmt.Println("\n--- controller view and mitigation ---")
	verdicts, err := ctrl.Mitigate(theta, netwide.ActionDeny)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range verdicts {
		fmt.Printf("deny %-18s ≈ %6.0f requests in window\n",
			v.Prefix().String(), ctrl.Estimate(v.Prefix()))
	}
	fmt.Printf("broadcast %d deny verdicts (attacking subnets: %d)\n",
		len(verdicts), attackSubnets)
	time.Sleep(200 * time.Millisecond) // let the ACLs apply

	// Phase 2: same flood, now against the installed ACLs.
	fmt.Println("\n--- phase 2: flood continues against the ACL ---")
	stats2, err := floodgen.Run(context.Background(), floodgen.Config{
		Targets: fronts, Subnets: attackSubnets, FloodRate: 0.7,
		Profile: trace.Backbone, Requests: 30_000, Concurrency: 64, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent %d requests (%d attack), %d blocked (%.1f%% of attack)\n",
		stats2.Sent, stats2.Attack, stats2.Blocked,
		100*float64(stats2.Blocked)/float64(stats2.Attack))
	var denied uint64
	for _, b := range balancers {
		denied += b.Denied()
	}
	fmt.Printf("balancers denied %d requests total\n", denied)
}
