// Hierarchical heavy hitters: find the subnets dominating a sliding
// window with H-Memento.
//
// Run with:
//
//	go run ./examples/hhh
//
// The stream mixes a botnet subnet (many distinct hosts inside
// 203.0.0.0/8), one chatty host, and background traffic from a
// realistic trace profile. No individual botnet flow is heavy — only
// the aggregate is, which is exactly what HHH detection is for.
package main

import (
	"fmt"
	"log"
	"sort"

	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/rng"
	"memento/internal/trace"
)

func main() {
	const window = 200_000
	hhh, err := core.NewHHH(core.HHHConfig{
		Hierarchy: hierarchy.OneD{},
		Window:    window,
		Counters:  512 * 5, // the paper's 512H configuration
		V:         16,      // each prefix sampled at 1/16
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	background := trace.MustNewGenerator(trace.Edge, 3)
	src := rng.New(9)
	chatty := hierarchy.IPv4(198, 51, 100, 7)
	for i := 0; i < 4*window; i++ {
		var p hierarchy.Packet
		switch u := src.Float64(); {
		case u < 0.25: // botnet: random hosts within 203/8
			p.Src = hierarchy.IPv4(203, byte(src.Uint32()), byte(src.Uint32()), byte(src.Uint32()))
		case u < 0.40: // one chatty host
			p.Src = chatty
		default:
			p = background.Next()
		}
		hhh.Update(p)
	}

	const theta = 0.10
	entries := hhh.Output(theta)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Estimate > entries[j].Estimate })
	fmt.Printf("hierarchical heavy hitters over the last %d packets (θ = %.0f%%):\n\n",
		window, theta*100)
	fmt.Printf("%-22s %12s %14s  %s\n", "prefix", "estimate", "% of window", "")
	for _, e := range entries {
		note := ""
		if e.Estimate < theta*float64(window) {
			// Coverage (Definition 4.2) admits borderline prefixes via
			// the sampling slack so that no true HHH is ever missed.
			note = "(within sampling margin)"
		}
		fmt.Printf("%-22s %12.0f %13.1f%%  %s\n",
			e.Prefix.String(), e.Estimate, 100*e.Estimate/float64(window), note)
	}
	fmt.Println("\nExpected at the top: the chatty host at /32, the botnet as")
	fmt.Println("203.*.*.* — no single botnet flow is heavy, only the aggregate —")
	fmt.Println("and the root carrying the residual background traffic.")
}
