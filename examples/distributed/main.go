// Distributed measurement demo: compare the three communication
// methods of the paper (Aggregation, Sample, Batch) on the same
// traffic under the same 1 byte/packet control-bandwidth budget,
// using the deterministic network simulator.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"memento/internal/analysis"
	"memento/internal/exact"
	"memento/internal/hierarchy"
	"memento/internal/netsim"
	"memento/internal/trace"
)

func main() {
	const (
		window = 1 << 16
		points = 10
		budget = 1.0
	)
	// First ask the analysis for the optimal batch size at this budget.
	model := analysis.PaperExample
	model.Window = window
	opt, err := model.Optimize(budget, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget %.0f byte/pkt → optimal batch b* = %d (guaranteed error %.0f pkts)\n\n",
		budget, opt.BatchSize, opt.Error)

	heavy := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}
	fmt.Printf("%-12s %10s %10s %10s %12s\n",
		"method", "estimate", "truth", "error", "bytes/pkt")
	for _, method := range []netsim.Method{netsim.Aggregation, netsim.Sample, netsim.Batch} {
		sim, err := netsim.New(netsim.Config{
			Method: method, BatchSize: opt.BatchSize, Points: points,
			Budget: budget, Window: window, Hier: hierarchy.OneD{},
			Counters: 4096, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		gen := trace.MustNewGenerator(trace.Backbone, 12)
		truth := exact.MustNewSlidingWindow[hierarchy.Prefix](window)
		for i := 0; i < 6*window; i++ {
			p := gen.Next()
			if i%4 == 0 { // 25% of traffic from the monitored /8
				p.Src = hierarchy.IPv4(10, byte(p.Src>>16), byte(p.Src>>8), byte(p.Src))
			}
			sim.Feed(p)
			truth.Add(hierarchy.Prefix{Src: hierarchy.MaskBytes(p.Src, 1), SrcLen: 1})
		}
		est := sim.Estimate(heavy)
		tr := float64(truth.Count(heavy))
		fmt.Printf("%-12s %10.0f %10.0f %9.1f%% %12.3f\n",
			method, est, tr, 100*(est-tr)/float64(window), sim.BytesPerPacket())
	}
	fmt.Println("\nExpected ordering (Figure 9): Batch most accurate, then Sample,")
	fmt.Println("then Aggregation — its full-table messages are too big to send often.")
}
