// Concurrent ingestion: feed one sharded Memento from many goroutines.
//
// Run with:
//
//	go run ./examples/concurrent
//
// Four producer goroutines push a skewed synthetic stream through a
// shard.Sketch — a hash-partitioned array of independently-locked
// Memento instances — using per-goroutine Batchers, while a monitor
// goroutine concurrently queries the merged heavy hitters. The final
// report compares the merged estimates against the elephants'
// realized production rates projected onto the window.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"memento/internal/core"
	"memento/internal/rng"
	"memento/internal/shard"
)

func main() {
	const (
		window    = 400_000
		theta     = 0.05
		producers = 4
		perWorker = 500_000
	)
	sketch, err := shard.New(shard.SketchConfig[string]{
		Core: core.Config{
			Window:   window,   // global window, split across shards
			EpsilonA: 0.01,     // 400 counters, split across shards
			Tau:      1.0 / 16, // full update for ~6% of packets
			Seed:     42,
		},
		Shards: producers,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every producer mixes the same three elephants into its own mouse
	// herd, so the elephants' global rates match their per-producer
	// rates and ground truth is exact arithmetic.
	flows := []struct {
		name string
		rate float64
	}{
		{"video-cdn", 0.20},
		{"backup-job", 0.10},
		{"ad-tracker", 0.06},
	}
	var produced [producers]map[string]int
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		produced[w] = make(map[string]int, len(flows))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(7 + w))
			b := sketch.NewBatcher(256)
			counts := produced[w]
			for i := 0; i < perWorker; i++ {
				u := src.Float64()
				name := ""
				for _, f := range flows {
					if u < f.rate {
						name = f.name
						break
					}
					u -= f.rate
				}
				if name != "" {
					counts[name]++ // elephant ground truth only: keeps the hot loop lean
				} else {
					name = fmt.Sprintf("mouse-%d-%d", w, src.Intn(50_000))
				}
				b.Add(name)
			}
			b.Flush()
		}(w)
	}

	// A concurrent monitor polls the merged view while producers run —
	// the read path takes per-shard locks, never stopping the world.
	stop := make(chan struct{})
	var monitorPeeks int
	var monitorWg sync.WaitGroup
	monitorWg.Add(1)
	go func() {
		defer monitorWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = sketch.HeavyHitters(theta, nil)
				monitorPeeks++
			}
		}
	}()
	wg.Wait()
	close(stop)
	monitorWg.Wait()

	// Ground truth: elephants are produced at a stationary rate, so
	// their expected in-window count is (realized share) × window.
	totalPackets := float64(producers * perWorker)
	realized := map[string]float64{}
	for w := range produced {
		for name, c := range produced[w] {
			realized[name] += float64(c)
		}
	}

	hh := sketch.HeavyHitters(theta, nil)
	sort.Slice(hh, func(i, j int) bool { return hh[i].Estimate > hh[j].Estimate })
	fmt.Printf("shards = %d, global window = %d packets, θ = %.0f%%\n",
		sketch.Shards(), sketch.EffectiveWindow(), theta*100)
	fmt.Printf("%-12s %12s %14s %9s\n", "flow", "estimate", "true in-window", "error")
	for _, item := range hh {
		truth := realized[item.Key] / totalPackets * float64(sketch.EffectiveWindow())
		fmt.Printf("%-12s %12.0f %14.0f %8.2f%%\n",
			item.Key, item.Estimate, truth,
			100*(item.Estimate-truth)/float64(sketch.EffectiveWindow()))
	}
	fmt.Printf("\n%d producers × %d packets ingested; %d of %d updates (%.1f%%) took the slow path\n",
		producers, perWorker, sketch.FullUpdates(), sketch.Updates(),
		100*float64(sketch.FullUpdates())/float64(sketch.Updates()))
	fmt.Printf("monitor completed %d concurrent heavy-hitter scans while ingestion ran\n", monitorPeeks)
}
