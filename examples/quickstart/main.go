// Quickstart: track sliding-window heavy hitters with Memento.
//
// Run with:
//
//	go run ./examples/quickstart
//
// A skewed synthetic stream flows through a Memento sketch configured
// for a 100k-packet window with 1/16 sampling; the example prints the
// flows above a 5% window share and compares their estimates with the
// true counts.
package main

import (
	"fmt"
	"log"
	"sort"

	"memento/internal/core"
	"memento/internal/exact"
	"memento/internal/rng"
)

func main() {
	const (
		window = 100_000
		theta  = 0.05
	)
	sketch, err := core.New[string](core.Config{
		Window:   window,
		EpsilonA: 0.01,     // 400 counters
		Tau:      1.0 / 16, // full update for ~6% of packets
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	truth := exact.MustNewSlidingWindow[string](sketch.EffectiveWindow())

	// Three elephants hidden in a mouse herd.
	src := rng.New(7)
	flows := []struct {
		name string
		rate float64
	}{
		{"video-cdn", 0.20},
		{"backup-job", 0.10},
		{"ad-tracker", 0.06},
	}
	for i := 0; i < 4*window; i++ {
		u := src.Float64()
		name := ""
		for _, f := range flows {
			if u < f.rate {
				name = f.name
				break
			}
			u -= f.rate
		}
		if name == "" {
			name = fmt.Sprintf("mouse-%d", src.Intn(50_000))
		}
		sketch.Update(name)
		truth.Add(name)
	}

	hh := sketch.HeavyHitters(theta, nil)
	sort.Slice(hh, func(i, j int) bool { return hh[i].Estimate > hh[j].Estimate })
	fmt.Printf("window = %d packets, θ = %.0f%%, τ = %.4f\n",
		sketch.EffectiveWindow(), theta*100, sketch.Tau())
	fmt.Printf("%-12s %12s %12s %9s\n", "flow", "estimate", "true count", "error")
	for _, item := range hh {
		exactCount := truth.Count(item.Key)
		fmt.Printf("%-12s %12.0f %12d %8.2f%%\n",
			item.Key, item.Estimate, exactCount,
			100*(item.Estimate-float64(exactCount))/float64(window))
	}
	fmt.Printf("\nprocessed %d packets; only %d (%.1f%%) took the slow path\n",
		sketch.Updates(), sketch.FullUpdates(),
		100*float64(sketch.FullUpdates())/float64(sketch.Updates()))
}
