// Package memento is a Go implementation of the Memento family of
// sliding-window heavy-hitter algorithms from "Memento: Making Sliding
// Windows Efficient for Heavy Hitters" (Ben Basat, Einziger, Keslassy,
// Orda, Vargaftik, Waisbard — CoNEXT 2018), together with every
// substrate and baseline its evaluation depends on.
//
// The library lives under internal/ and is organized as:
//
//   - internal/core — Memento (windowed heavy hitters with sampled Full
//     updates) and H-Memento (hierarchical heavy hitters in constant
//     time per packet): the paper's contribution. Both expose a batched
//     hot path (UpdateBatch, WindowAdvance) that draws the geometric
//     skip count once per Full update and slides the window in bulk.
//   - internal/shard — the concurrent ingestion layer: hash-partitioned
//     shard.Sketch and shard.HHH over independently-locked core
//     instances, fed by per-goroutine Batchers, with skew-corrected
//     merged queries. This is the entry point for multi-goroutine,
//     line-rate use.
//   - internal/keyidx — the flat, pointer-free key index under every
//     hot path: slab-backed open addressing with O(1) generation-stamp
//     Flush and a caller-supplied hasher, shared so that the shard
//     layer hashes each packet exactly once. The Space Saving index,
//     the Memento overflow table and all query scratch sets run on it,
//     which is what makes the per-packet Update path allocation-free
//     end to end (CI gates on 0 allocs/op).
//   - internal/codec — the durable plane: a versioned, fuzz-hardened
//     binary format for full sketch state. core snapshots encode
//     (AppendTo, 0 allocs/op) and decode (strict validation, typed
//     errors) as self-contained records; shard instances checkpoint
//     to and restore from io.Writer/io.Reader with answer-identical
//     rehydration; cmd/mementoctl saves, inspects, merges and diffs
//     the files offline.
//   - internal/delta — the incremental replication plane on top of the
//     codec: epoch-stamped base+delta chains that ship only the
//     counters that changed (core tracks dirty keys off the hot path),
//     with strict ErrEpochGap resync, a fidelity floor for sub-noise
//     churn, and an atomic on-disk Checkpointer for warm restarts
//     (cmd/lbproxy and cmd/controller wire it to -checkpoint-dir).
//   - internal/spacesaving, internal/hierarchy, internal/hhhset,
//     internal/exact, internal/rng, internal/stats — substrates.
//   - internal/baseline — MST, RHHH and the WCSS-based window Baseline.
//   - internal/netsim, internal/netwide — the network-wide setting:
//     a deterministic simulator for the quantitative figures and a real
//     TCP controller/agent implementation with three report modes:
//     τ-sampled batches under a byte budget, full-fidelity snapshot
//     shipping (the paper's "send everything" baseline as a live
//     accuracy-vs-bandwidth operating point, merged with the shard
//     layer's estimate math), or delta chains that hold snapshot
//     fidelity at a fraction of the bytes.
//   - internal/lb, internal/floodgen — the testbed: a measurement-
//     enabled HTTP load balancer with subnet ACLs, batched measurement
//     observers, and an HTTP flood generator.
//   - internal/experiments, internal/analysis, internal/detect — the
//     drivers that regenerate every figure of the paper's evaluation.
//   - internal/analyzers, cmd/mementovet — the static-invariant suite:
//     four //memento:-annotation-driven analyzers (noalloc, lockguard,
//     nopanic, nodet) that enforce the allocation-free hot path, the
//     per-shard lock discipline, panic-free decoders and deterministic
//     encoders at type-check time, run in CI via go vet -vettool.
//   - internal/obs — the observability core (mementoscope): stdlib-only
//     padded atomic counters/gauges, constant-memory log-linear
//     histograms with mergeable snapshots, a ring-buffered lifecycle
//     event trace, and the /debug/metrics//debug/events//debug/pprof
//     endpoints served behind -debug-addr on lbproxy and controller
//     (browse live with mementoctl top). Every instrument is
//     nil-receiver-safe, so the disabled plane costs one branch on
//     block-granular paths and nothing per packet.
//
// The benchmarks in bench_test.go map one-to-one onto the paper's
// tables and figures; DESIGN.md §5 documents the persistence/wire
// format, §6 is the experiment-to-benchmark index, §7 describes
// the committed BENCH_*.json performance snapshots, §8 the
// //memento: annotation grammar and waiver policy, and §11 the
// instrument catalog, metric naming convention and event schema.
package memento
