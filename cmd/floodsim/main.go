// Command floodsim regenerates Figure 10: the HTTP flood experiment.
// A flood from N random /8 subnets is injected into a trace at 70% of
// traffic; the command reports, for OPT and the three communication
// methods, the subnet identification curve over time and the fraction
// of attack requests that slipped through before detection.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"memento/internal/experiments"
	"memento/internal/obs"
	"memento/internal/trace"
)

func main() {
	var (
		window   = flag.Int("window", 1<<17, "network-wide window W in packets")
		packets  = flag.Int("packets", 1<<19, "base trace length before injection")
		subnets  = flag.Int("subnets", 50, "attacking /8 subnets")
		rate     = flag.Float64("rate", 0.7, "flood fraction of traffic")
		theta    = flag.Float64("theta", 0.01, "detection threshold θ")
		points   = flag.Int("points", 10, "measurement points m")
		budget   = flag.Float64("budget", 1, "bandwidth budget B bytes/packet")
		batch    = flag.Int("batch", 44, "batch size b")
		counters = flag.Int("counters", 4096, "controller sketch counters")
		profile  = flag.String("trace", "Backbone", "trace profile")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		check    = flag.Int("check-every", 1024, "detection check cadence in packets")
		curve    = flag.Bool("curve", false, "print the full identification-over-time curves")
	)
	flag.Parse()
	prof, err := trace.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	reg := obs.NewRegistry()
	results, err := experiments.Figure10(experiments.Fig10Config{
		Profile: prof, Window: *window, Packets: *packets,
		Subnets: *subnets, FloodRate: *rate, FloodStart: -1,
		Theta: *theta, Points: *points, Budget: *budget,
		BatchSize: *batch, Counters: *counters,
		CheckEvery: *check, Seed: *seed,
		Obs: reg,
	})
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tdetected\tmean delay(pkts)\tmissed attack pkts\tmiss fraction")
	var optMiss float64
	for _, r := range results {
		if r.Method == "OPT" {
			optMiss = r.MissedFraction
		}
	}
	for _, r := range results {
		ratio := ""
		if r.Method != "OPT" && optMiss > 0 {
			ratio = fmt.Sprintf(" (%.1fx OPT)", r.MissedFraction/optMiss)
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%.0f\t%d/%d\t%.4f%s\n",
			r.Method, r.DetectedSubnets, *subnets, r.MeanDelay,
			r.MissedPackets, r.TotalAttackPackets, r.MissedFraction, ratio)
	}
	if *curve {
		fmt.Fprintln(w, "\nsince-start\t"+header(results))
		for i := range results[0].Curve {
			fmt.Fprintf(w, "%d", results[0].Curve[i].SinceStart)
			for _, r := range results {
				fmt.Fprintf(w, "\t%d", r.Curve[i].Detected)
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	// The simulated control-plane ledgers: what each method actually
	// spent to earn its detection row above.
	fmt.Println("\nobs summary:")
	reg.WriteTable(os.Stdout)
}

func header(results []experiments.Fig10Result) string {
	s := ""
	for i, r := range results {
		if i > 0 {
			s += "\t"
		}
		s += r.Method
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floodsim:", err)
	os.Exit(1)
}
