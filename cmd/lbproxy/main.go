// Command lbproxy runs one measurement-enabled HTTP load balancer: it
// reverse-proxies requests across backends, reports samples to the
// controller (cmd/controller) under the bandwidth budget, and enforces
// the subnet verdicts the controller pushes back — the role HAProxy
// plus the paper's extension plays in the testbed (Section 6.3).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"

	"memento/internal/lb"
	"memento/internal/netwide"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "address to serve HTTP on")
		backends   = flag.String("backends", "", "comma-separated backend URLs (required)")
		controller = flag.String("controller", "127.0.0.1:9600", "controller address ('' disables measurement)")
		name       = flag.String("name", "", "agent name (default: listen address)")
		budget     = flag.Float64("budget", 1, "bandwidth budget B bytes/packet")
		batch      = flag.Int("batch", 44, "batch size b")
		window     = flag.Int("window", 1<<20, "window size W (must match the controller)")
		trustXFF   = flag.Bool("trust-xff", true, "trust X-Forwarded-For for client identity (testbed mode)")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "lbproxy: -backends required")
		os.Exit(2)
	}
	if *name == "" {
		*name = *listen
	}

	acl := lb.NewACL()
	cfg := lb.Config{
		Backends:          strings.Split(*backends, ","),
		ACL:               acl,
		TrustForwardedFor: *trustXFF,
	}
	if *controller != "" {
		agent, err := netwide.DialAgent(*controller, netwide.AgentConfig{
			Name: *name,
			Params: netwide.Params{
				Budget: *budget, BatchSize: *batch, Window: *window,
			},
		})
		if err != nil {
			fatal(err)
		}
		defer agent.Close()
		cfg.Observer = agent
		log.Info("connected to controller", "addr", *controller, "tau", agent.Tau())
		go func() {
			for vs := range agent.Verdicts() {
				acl.Apply(vs)
				log.Info("applied verdicts", "count", len(vs), "acl-entries", acl.Len())
			}
		}()
	}
	balancer, err := lb.New(cfg)
	if err != nil {
		fatal(err)
	}
	log.Info("load balancer listening", "addr", *listen, "backends", *backends)
	if err := http.ListenAndServe(*listen, balancer); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbproxy:", err)
	os.Exit(1)
}
