// Command lbproxy runs one measurement-enabled HTTP load balancer: it
// reverse-proxies requests across backends, reports samples to the
// controller (cmd/controller) under the bandwidth budget, and enforces
// the subnet verdicts the controller pushes back — the role HAProxy
// plus the paper's extension plays in the testbed (Section 6.3).
//
// With -controller ” the proxy can instead measure locally:
// -local-shards N attaches a sharded, batched H-Memento
// (internal/shard) as the observer and periodically logs the current
// heavy-hitter prefixes, so a single proxy gets line-rate sliding-
// window visibility without a control plane. -local-mode picks the
// ingest engine: batch applies observer batches under the shard
// mutexes, ring publishes them into the SPSC shard-owner pipeline
// (DESIGN.md §9) so the sketch work leaves the request path, and auto
// (the default) picks per GOMAXPROCS. Adding -checkpoint-dir
// makes the local instance warm-restartable: its state is written as
// an incremental base+delta chain (internal/delta) and restored on
// the next start, so a proxy restart keeps the sliding window.
//
// SIGINT/SIGTERM shuts down gracefully: stop accepting, finish
// in-flight requests, flush and drain the measurement plane (staged
// observer batches, ring pipeline, pending agent reports), write a
// final checkpoint, then exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/delta"
	"memento/internal/hierarchy"
	"memento/internal/lb"
	"memento/internal/netwide"
	"memento/internal/obs"
	"memento/internal/shard"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "address to serve HTTP on")
		backends    = flag.String("backends", "", "comma-separated backend URLs (required)")
		controller  = flag.String("controller", "127.0.0.1:9600", "controller address ('' disables remote measurement)")
		name        = flag.String("name", "", "agent name (default: listen address)")
		budget      = flag.Float64("budget", 1, "bandwidth budget B bytes/packet")
		batch       = flag.Int("batch", 44, "batch size b")
		window      = flag.Int("window", 1<<20, "window size W (must match the controller)")
		trustXFF    = flag.Bool("trust-xff", true, "trust X-Forwarded-For for client identity (testbed mode)")
		localShards = flag.Int("local-shards", 0, "standalone mode: shard count for a local sharded H-Memento observer (0 disables; requires -controller '')")
		localMode   = flag.String("local-mode", "auto", "standalone mode: ingest engine — auto (pick from GOMAXPROCS), batch (lock-per-flush), ring (SPSC owner pipeline)")
		localBatch  = flag.Int("local-batch", 256, "standalone mode: observer batch size")
		localV      = flag.Int("local-v", 0, "standalone mode: sampling ratio V (0: H, i.e. every request)")
		theta       = flag.Float64("theta", 0.05, "standalone mode: heavy-hitter threshold for periodic reports")
		reportEvery = flag.Duration("report-every", 10*time.Second, "standalone mode: heavy-hitter report interval")
		ckptDir     = flag.String("checkpoint-dir", "", "standalone mode: warm-restart chain directory ('' disables)")
		ckptEvery   = flag.Duration("checkpoint-every", 30*time.Second, "standalone mode: chain step cadence")
		baseEvery   = flag.Int("checkpoint-base-every", 16, "standalone mode: delta steps between full bases")
		degraded    = flag.Duration("degraded-after", 0, "flip to locally computed verdicts when the controller has been silent this long (0 disables; enables supervised reconnect)")
		traceRpt    = flag.Bool("trace-reports", false, "negotiate end-to-end report tracing with the controller (falls back to bare reports against a pre-tracing peer)")
		debugAddr   = flag.String("debug-addr", "", "serve /debug/metrics, /debug/events and /debug/pprof on this address ('' disables)")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "lbproxy: -backends required")
		os.Exit(2)
	}
	if *name == "" {
		*name = *listen
	}

	acl := lb.NewACL()
	cfg := lb.Config{
		Backends:          strings.Split(*backends, ","),
		ACL:               acl,
		TrustForwardedFor: *trustXFF,
	}
	if *controller != "" && *localShards > 0 && *degraded <= 0 {
		fmt.Fprintln(os.Stderr, "lbproxy: -local-shards requires -controller '' (remote and standalone measurement are exclusive unless -degraded-after keeps a local failover sketch)")
		os.Exit(2)
	}
	// The observability plane is always live (instruments are cheap
	// enough to leave on: DESIGN.md §11); -debug-addr decides whether
	// it is also served.
	reg := obs.NewRegistry()
	trace := obs.NewTrace(1024)
	codec.RegisterMetrics(reg)
	trace.Register(reg, "memento_lbproxy")
	// onShutdown runs after the HTTP server has quiesced (no handler
	// is observing anymore), in order: flush staged measurement, drain
	// the ingest engine, persist final state, close transports.
	var onShutdown []func()
	switch {
	case *controller != "":
		acfg := netwide.AgentConfig{
			Name: *name,
			Params: netwide.Params{
				Budget: *budget, BatchSize: *batch, Window: *window,
			},
			Obs:          reg,
			Trace:        trace,
			TraceReports: *traceRpt,
		}
		if *degraded > 0 {
			// Fault tolerance: supervised reconnect keeps the agent
			// redialing across controller outages, and DegradedAfter
			// marks when this proxy must fend for itself.
			acfg.Reconnect = true
			acfg.DegradedAfter = *degraded
		}
		agent, err := netwide.DialAgent(*controller, acfg)
		if err != nil {
			fatal(err)
		}
		defer agent.Close()
		cfg.Observer = agent
		onShutdown = append(onShutdown, func() {
			// Graceful: ship the partial tail report and let the writer
			// drain the queue before the connection drops.
			if err := agent.Shutdown(5 * time.Second); err != nil {
				log.Warn("agent shutdown", "err", err)
			}
		})
		log.Info("connected to controller", "addr", *controller, "tau", agent.Tau())
		go func() {
			for vs := range agent.Verdicts() {
				acl.Apply(vs)
				log.Info("applied verdicts", "count", len(vs), "acl-entries", acl.Len())
			}
		}()
		if *degraded > 0 {
			// Degraded mode: a local sharded sketch shadows the traffic
			// the agent reports, so when the controller goes silent the
			// proxy can compute its own HHH verdicts instead of frozen
			// (or absent) remote ones. -local-shards sizes the shadow.
			shards := *localShards
			if shards <= 0 {
				shards = 1
			}
			local, err := shard.NewHHH(shard.HHHConfig{
				Core: core.HHHConfig{
					Hierarchy: hierarchy.OneD{},
					Window:    *window,
					Counters:  512 * hierarchy.OneD{}.H(),
					V:         *localV,
				},
				Shards: shards,
			})
			if err != nil {
				fatal(err)
			}
			local.Instrument(reg, trace, *name)
			lobs := lb.NewBatchingObserver(local, *localBatch)
			cfg.Observer = teeObserver{agent, lobs}
			onShutdown = append(onShutdown, func() { lobs.Flush() })
			go superviseDegraded(log, agent, acl, local, lobs, *theta, *degraded)
			log.Info("degraded-mode failover armed",
				"after", *degraded, "shards", shards, "theta", *theta)
		}
	case *localShards > 0:
		var hh *shard.HHH
		if *ckptDir != "" {
			// Warm restart: a chain left by a previous generation
			// rebuilds the instance (configuration derives from the
			// chain itself); any failure falls back to a fresh start.
			if restored, err := restoreShardChain(*ckptDir); err != nil {
				log.Warn("warm restart failed, starting fresh", "dir", *ckptDir, "err", err)
			} else if restored != nil {
				hh = restored
				log.Info("warm restart", "dir", *ckptDir,
					"shards", hh.Shards(), "window", hh.EffectiveWindow(), "updates", hh.Updates())
				// The chain's configuration wins over the flags (it is
				// the state being resumed); surface any drift loudly so
				// changed flags are not silently ignored forever — to
				// actually reconfigure, point -checkpoint-dir at a
				// fresh directory.
				if hh.Shards() != *localShards || hh.EffectiveWindow() < *window {
					log.Warn("restored chain configuration overrides flags",
						"chain-shards", hh.Shards(), "flag-shards", *localShards,
						"chain-window", hh.EffectiveWindow(), "flag-window", *window)
				}
			}
		}
		if hh == nil {
			fresh, err := shard.NewHHH(shard.HHHConfig{
				Core: core.HHHConfig{
					Hierarchy: hierarchy.OneD{},
					Window:    *window,
					Counters:  512 * hierarchy.OneD{}.H(),
					V:         *localV,
				},
				Shards: *localShards,
			})
			if err != nil {
				fatal(err)
			}
			hh = fresh
		}
		hh.Instrument(reg, trace, *name)
		var cp *delta.Checkpointer
		if *ckptDir != "" {
			if *ckptEvery <= 0 {
				fatal(fmt.Errorf("-checkpoint-every must be positive, got %v", *ckptEvery))
			}
			if err := hh.EnableDeltaCheckpoints(0); err != nil {
				fatal(err)
			}
			c, err := delta.NewCheckpointer(*ckptDir, hh, *baseEvery)
			if err != nil {
				fatal(err)
			}
			cp = c
			go func() {
				tick := time.NewTicker(*ckptEvery)
				defer tick.Stop()
				for range tick.C {
					if path, err := cp.Tick(); err != nil {
						log.Error("checkpoint failed", "err", err)
					} else {
						trace.Record(obs.EvCheckpoint, *name, 0)
						log.Info("checkpoint written", "path", path)
					}
				}
			}()
		}
		// Ingest engine: the observer's batches either apply under the
		// shard mutexes directly (batch), or publish into an SPSC ring
		// pipeline whose shard owners apply them off the request path
		// (ring). auto picks per runtime, so single-core deployments
		// keep the cheaper handoff.
		engine := *localMode
		if engine == "auto" {
			engine = "batch"
			if shard.AutoMode(hh.Shards()) == shard.ModeRing {
				engine = "ring"
			}
		}
		var sink lb.BatchSink = hh
		var pl *shard.HHHPipeline
		switch engine {
		case "batch":
		case "ring":
			p, err := hh.StartPipeline(shard.PipelineConfig{Producers: 1, Batch: *localBatch})
			if err != nil {
				fatal(err)
			}
			pl = p
			pl.Instrument(reg)
			sink = pl.NewSharedProducer(0)
		default:
			fatal(fmt.Errorf("-local-mode must be auto, batch or ring, got %q", *localMode))
		}
		lobs := lb.NewBatchingObserver(sink, *localBatch)
		cfg.Observer = lobs
		log.Info("standalone sharded measurement enabled", "mode", engine,
			"shards", hh.Shards(), "batch", *localBatch, "window", hh.EffectiveWindow())
		go func() {
			// OutputTo with a recycled buffer: the periodic probe locks
			// each shard once per report (snapshot capture) and
			// allocates nothing in steady state.
			var out []core.HeavyPrefix
			for range time.Tick(*reportEvery) {
				lobs.Flush()
				if pl != nil {
					// Quiesce the rings so the probe sees everything the
					// flush published.
					pl.Drain()
				}
				out = hh.OutputTo(*theta, out[:0])
				for _, e := range out {
					log.Info("heavy hitter", "prefix", e.Prefix,
						"estimate", int(e.Estimate), "conditioned", int(e.Conditioned))
				}
				if len(out) == 0 {
					log.Info("no heavy hitters above threshold", "theta", *theta)
				}
			}
		}()
		onShutdown = append(onShutdown, func() {
			lobs.Flush()
			if pl != nil {
				pl.Drain()
				pl.Close()
			}
			if cp != nil {
				if path, err := cp.Tick(); err != nil {
					log.Error("final checkpoint failed", "err", err)
				} else {
					trace.Record(obs.EvCheckpoint, *name, 0)
					log.Info("final checkpoint written", "path", path)
				}
			}
		})
	}
	if *debugAddr != "" {
		stopDebug, err := obs.Serve(*debugAddr, reg, trace)
		if err != nil {
			fatal(err)
		}
		onShutdown = append(onShutdown, func() {
			if err := stopDebug(); err != nil {
				log.Warn("debug server shutdown", "err", err)
			}
		})
		log.Info("debug endpoints listening", "addr", *debugAddr)
	}
	balancer, err := lb.New(cfg)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Addr: *listen, Handler: balancer}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Info("shutting down", "signal", s.String())
		// Stop accepting and wait for in-flight handlers, so no request
		// observes after the measurement plane drains below.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Warn("http shutdown", "err", err)
		}
		for _, fn := range onShutdown {
			fn()
		}
	}()
	log.Info("load balancer listening", "addr", *listen, "backends", *backends)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-drained
	log.Info("drained, exiting")
}

// teeObserver feeds each measurement event to both the remote agent
// and the local failover sketch.
type teeObserver struct {
	a, b lb.Observer
}

func (t teeObserver) Observe(p hierarchy.Packet) {
	t.a.Observe(p)
	t.b.Observe(p)
}

// subnetKey identifies a verdict's subnet independent of its action.
type subnetKey struct {
	subnet uint32
	bytes  uint8
}

// localVerdicts mirrors the controller's Mitigate policy against the
// local shadow sketch: Deny every fully-specified source subnet whose
// estimate clears theta·window on its own (entries admitted to the
// HHH set only through the sampling margin are spared — blocking
// wants precision, coverage wants recall).
func localVerdicts(local *shard.HHH, theta float64, out []core.HeavyPrefix) ([]netwide.Verdict, []core.HeavyPrefix) {
	out = local.OutputTo(theta, out[:0])
	threshold := theta * float64(local.EffectiveWindow())
	var vs []netwide.Verdict
	for _, e := range out {
		p := e.Prefix
		if p.SrcLen == 0 || p.DstLen != 0 {
			continue // never block the whole internet; src-subnets only
		}
		if e.Estimate < threshold {
			continue
		}
		vs = append(vs, netwide.Verdict{
			Subnet: p.Src, PrefixBytes: p.SrcLen, Act: netwide.ActionDeny,
		})
	}
	return vs, out
}

// superviseDegraded runs the failover state machine: while the agent
// reports the controller unreachable past the threshold, it installs
// locally computed Deny verdicts in the ACL (refreshed every tick so
// the blocklist follows the traffic); on recovery it lifts every
// verdict it installed and hands enforcement back to the controller's
// verdict stream. Only self-installed subnets are ever lifted —
// controller verdicts applied before the outage stay untouched.
func superviseDegraded(log *slog.Logger, agent *netwide.Agent, acl *lb.ACL,
	local *shard.HHH, obs *lb.BatchingObserver, theta float64, after time.Duration) {
	interval := after / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	mine := map[subnetKey]bool{} // subnets this proxy denied on its own
	wasDegraded := false
	var out []core.HeavyPrefix
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for range tick.C {
		if agent.Err() != nil && !wasDegraded {
			// Terminal agent failure (retry budget exhausted): local
			// verdicts are all this proxy will ever have again.
			log.Error("agent permanently failed; staying on local verdicts", "err", agent.Err())
		}
		switch degraded := agent.Degraded(); {
		case degraded:
			if !wasDegraded {
				wasDegraded = true
				st := agent.Stats()
				log.Warn("controller unreachable: local verdicts engaged",
					"since-contact", st.SinceContact, "reconnects", st.Reconnects,
					"degraded-enters", st.DegradedEnters)
			}
			obs.Flush()
			var vs []netwide.Verdict
			vs, out = localVerdicts(local, theta, out)
			fresh := make(map[subnetKey]bool, len(vs))
			for _, v := range vs {
				fresh[subnetKey{v.Subnet, v.PrefixBytes}] = true
			}
			// Lift self-installed denies whose subnets cooled off.
			for k := range mine {
				if !fresh[k] {
					vs = append(vs, netwide.Verdict{
						Subnet: k.subnet, PrefixBytes: k.bytes, Act: netwide.ActionAllow,
					})
				}
			}
			if len(vs) > 0 {
				acl.Apply(vs)
			}
			mine = fresh
			if len(fresh) > 0 {
				log.Info("local verdicts refreshed", "denied", len(fresh), "acl-entries", acl.Len())
			}
		case wasDegraded:
			wasDegraded = false
			lift := make([]netwide.Verdict, 0, len(mine))
			for k := range mine {
				lift = append(lift, netwide.Verdict{
					Subnet: k.subnet, PrefixBytes: k.bytes, Act: netwide.ActionAllow,
				})
			}
			if len(lift) > 0 {
				acl.Apply(lift)
			}
			mine = map[subnetKey]bool{}
			st := agent.Stats()
			log.Info("controller restored: local verdicts lifted",
				"lifted", len(lift), "generation", st.Generation,
				"degraded-exits", st.DegradedExits)
		}
	}
}

// restoreShardChain rebuilds the standalone sharded instance from the
// newest chain in dir; (nil, nil) when the directory holds none.
func restoreShardChain(dir string) (*shard.HHH, error) {
	chain, err := delta.FindChain(dir)
	if err != nil || chain == nil {
		return nil, err
	}
	base, deltas, closeAll, err := chain.Open()
	if err != nil {
		return nil, err
	}
	defer closeAll()
	return shard.RestoreHHHChain(base, deltas...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbproxy:", err)
	os.Exit(1)
}
