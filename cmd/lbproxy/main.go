// Command lbproxy runs one measurement-enabled HTTP load balancer: it
// reverse-proxies requests across backends, reports samples to the
// controller (cmd/controller) under the bandwidth budget, and enforces
// the subnet verdicts the controller pushes back — the role HAProxy
// plus the paper's extension plays in the testbed (Section 6.3).
//
// With -controller ” the proxy can instead measure locally:
// -local-shards N attaches a sharded, batched H-Memento
// (internal/shard) as the observer and periodically logs the current
// heavy-hitter prefixes, so a single proxy gets line-rate sliding-
// window visibility without a control plane. Adding -checkpoint-dir
// makes the local instance warm-restartable: its state is written as
// an incremental base+delta chain (internal/delta) and restored on
// the next start, so a proxy restart keeps the sliding window.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"memento/internal/core"
	"memento/internal/delta"
	"memento/internal/hierarchy"
	"memento/internal/lb"
	"memento/internal/netwide"
	"memento/internal/shard"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "address to serve HTTP on")
		backends    = flag.String("backends", "", "comma-separated backend URLs (required)")
		controller  = flag.String("controller", "127.0.0.1:9600", "controller address ('' disables remote measurement)")
		name        = flag.String("name", "", "agent name (default: listen address)")
		budget      = flag.Float64("budget", 1, "bandwidth budget B bytes/packet")
		batch       = flag.Int("batch", 44, "batch size b")
		window      = flag.Int("window", 1<<20, "window size W (must match the controller)")
		trustXFF    = flag.Bool("trust-xff", true, "trust X-Forwarded-For for client identity (testbed mode)")
		localShards = flag.Int("local-shards", 0, "standalone mode: shard count for a local sharded H-Memento observer (0 disables; requires -controller '')")
		localBatch  = flag.Int("local-batch", 256, "standalone mode: observer batch size")
		localV      = flag.Int("local-v", 0, "standalone mode: sampling ratio V (0: H, i.e. every request)")
		theta       = flag.Float64("theta", 0.05, "standalone mode: heavy-hitter threshold for periodic reports")
		reportEvery = flag.Duration("report-every", 10*time.Second, "standalone mode: heavy-hitter report interval")
		ckptDir     = flag.String("checkpoint-dir", "", "standalone mode: warm-restart chain directory ('' disables)")
		ckptEvery   = flag.Duration("checkpoint-every", 30*time.Second, "standalone mode: chain step cadence")
		baseEvery   = flag.Int("checkpoint-base-every", 16, "standalone mode: delta steps between full bases")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "lbproxy: -backends required")
		os.Exit(2)
	}
	if *name == "" {
		*name = *listen
	}

	acl := lb.NewACL()
	cfg := lb.Config{
		Backends:          strings.Split(*backends, ","),
		ACL:               acl,
		TrustForwardedFor: *trustXFF,
	}
	if *controller != "" && *localShards > 0 {
		fmt.Fprintln(os.Stderr, "lbproxy: -local-shards requires -controller '' (remote and standalone measurement are exclusive)")
		os.Exit(2)
	}
	switch {
	case *controller != "":
		agent, err := netwide.DialAgent(*controller, netwide.AgentConfig{
			Name: *name,
			Params: netwide.Params{
				Budget: *budget, BatchSize: *batch, Window: *window,
			},
		})
		if err != nil {
			fatal(err)
		}
		defer agent.Close()
		cfg.Observer = agent
		log.Info("connected to controller", "addr", *controller, "tau", agent.Tau())
		go func() {
			for vs := range agent.Verdicts() {
				acl.Apply(vs)
				log.Info("applied verdicts", "count", len(vs), "acl-entries", acl.Len())
			}
		}()
	case *localShards > 0:
		var hh *shard.HHH
		if *ckptDir != "" {
			// Warm restart: a chain left by a previous generation
			// rebuilds the instance (configuration derives from the
			// chain itself); any failure falls back to a fresh start.
			if restored, err := restoreShardChain(*ckptDir); err != nil {
				log.Warn("warm restart failed, starting fresh", "dir", *ckptDir, "err", err)
			} else if restored != nil {
				hh = restored
				log.Info("warm restart", "dir", *ckptDir,
					"shards", hh.Shards(), "window", hh.EffectiveWindow(), "updates", hh.Updates())
				// The chain's configuration wins over the flags (it is
				// the state being resumed); surface any drift loudly so
				// changed flags are not silently ignored forever — to
				// actually reconfigure, point -checkpoint-dir at a
				// fresh directory.
				if hh.Shards() != *localShards || hh.EffectiveWindow() < *window {
					log.Warn("restored chain configuration overrides flags",
						"chain-shards", hh.Shards(), "flag-shards", *localShards,
						"chain-window", hh.EffectiveWindow(), "flag-window", *window)
				}
			}
		}
		if hh == nil {
			fresh, err := shard.NewHHH(shard.HHHConfig{
				Core: core.HHHConfig{
					Hierarchy: hierarchy.OneD{},
					Window:    *window,
					Counters:  512 * hierarchy.OneD{}.H(),
					V:         *localV,
				},
				Shards: *localShards,
			})
			if err != nil {
				fatal(err)
			}
			hh = fresh
		}
		if *ckptDir != "" {
			if *ckptEvery <= 0 {
				fatal(fmt.Errorf("-checkpoint-every must be positive, got %v", *ckptEvery))
			}
			if err := hh.EnableDeltaCheckpoints(0); err != nil {
				fatal(err)
			}
			cp, err := delta.NewCheckpointer(*ckptDir, hh, *baseEvery)
			if err != nil {
				fatal(err)
			}
			go func() {
				tick := time.NewTicker(*ckptEvery)
				defer tick.Stop()
				for range tick.C {
					if path, err := cp.Tick(); err != nil {
						log.Error("checkpoint failed", "err", err)
					} else {
						log.Info("checkpoint written", "path", path)
					}
				}
			}()
		}
		obs := lb.NewBatchingObserver(hh, *localBatch)
		cfg.Observer = obs
		log.Info("standalone sharded measurement enabled",
			"shards", hh.Shards(), "batch", *localBatch, "window", hh.EffectiveWindow())
		go func() {
			// OutputTo with a recycled buffer: the periodic probe locks
			// each shard once per report (snapshot capture) and
			// allocates nothing in steady state.
			var out []core.HeavyPrefix
			for range time.Tick(*reportEvery) {
				obs.Flush()
				out = hh.OutputTo(*theta, out[:0])
				for _, e := range out {
					log.Info("heavy hitter", "prefix", e.Prefix,
						"estimate", int(e.Estimate), "conditioned", int(e.Conditioned))
				}
				if len(out) == 0 {
					log.Info("no heavy hitters above threshold", "theta", *theta)
				}
			}
		}()
	}
	balancer, err := lb.New(cfg)
	if err != nil {
		fatal(err)
	}
	log.Info("load balancer listening", "addr", *listen, "backends", *backends)
	if err := http.ListenAndServe(*listen, balancer); err != nil {
		fatal(err)
	}
}

// restoreShardChain rebuilds the standalone sharded instance from the
// newest chain in dir; (nil, nil) when the directory holds none.
func restoreShardChain(dir string) (*shard.HHH, error) {
	chain, err := delta.FindChain(dir)
	if err != nil || chain == nil {
		return nil, err
	}
	base, deltas, closeAll, err := chain.Open()
	if err != nil {
		return nil, err
	}
	defer closeAll()
	return shard.RestoreHHHChain(base, deltas...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbproxy:", err)
	os.Exit(1)
}
