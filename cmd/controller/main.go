// Command controller runs the live network-wide measurement
// controller (D-H-Memento). Load balancers (cmd/lbproxy) connect over
// TCP and stream sampled reports; the controller maintains the global
// sliding-window HHH view, logs it periodically, and (with -mitigate)
// pushes deny/tarpit verdicts for subnets above the threshold.
//
// With -checkpoint-dir the controller becomes warm-restartable: it
// periodically writes its sketch state as an incremental base+delta
// chain (internal/delta) and, on startup, restores the newest chain
// found in the directory, so a crashed or upgraded controller resumes
// its sliding window instead of forgetting the last W packets.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"time"

	"memento/internal/codec"
	"memento/internal/delta"
	"memento/internal/hierarchy"
	"memento/internal/netwide"
	"memento/internal/obs"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9600", "address to accept agents on")
		window    = flag.Int("window", 1<<20, "network-wide window W in requests")
		counters  = flag.Int("counters", 1<<14, "controller sketch counters")
		budget    = flag.Float64("budget", 1, "bandwidth budget B bytes/packet")
		batch     = flag.Int("batch", 44, "batch size b")
		theta     = flag.Float64("theta", 0.01, "HHH threshold θ")
		mitigate  = flag.Bool("mitigate", false, "broadcast deny verdicts for heavy subnets")
		tarpit    = flag.Bool("tarpit", false, "tarpit instead of deny")
		interval  = flag.Duration("interval", 2*time.Second, "reporting/mitigation cadence")
		ckptDir   = flag.String("checkpoint-dir", "", "warm-restart chain directory ('' disables checkpointing)")
		ckptEvery = flag.Duration("checkpoint-every", 30*time.Second, "chain step cadence")
		baseEvery = flag.Int("checkpoint-base-every", 16, "delta steps between full bases")
		handshake = flag.Duration("handshake-timeout", 10*time.Second, "deadline for an accepted connection's Hello (<0 disables)")
		readTO    = flag.Duration("read-timeout", 90*time.Second, "steady-state read deadline per agent; heartbeating agents only trip it when unreachable (<0 disables)")
		staleTTL  = flag.Duration("stale-ttl", 5*time.Minute, "quarantine an agent's window from the merged output when its last report is older than this (0 disables)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/metrics, /debug/events and /debug/pprof on this address ('' disables)")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	reg := obs.NewRegistry()
	trace := obs.NewTrace(1024)
	codec.RegisterMetrics(reg)
	trace.Register(reg, "memento_controller")

	ctrl, err := netwide.NewController(netwide.ControllerConfig{
		Hier: hierarchy.OneD{},
		Params: netwide.Params{
			Budget: *budget, BatchSize: *batch, Window: *window,
		},
		Counters:         *counters,
		Log:              log,
		HandshakeTimeout: *handshake,
		ReadTimeout:      *readTO,
		StaleTTL:         *staleTTL,
		Obs:              reg,
		Trace:            trace,
	})
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		stopDebug, err := obs.Serve(*debugAddr, reg, trace)
		if err != nil {
			fatal(err)
		}
		defer stopDebug()
		log.Info("debug endpoints listening", "addr", *debugAddr)
	}

	var ckpt *delta.Checkpointer
	if *ckptDir != "" {
		if *ckptEvery <= 0 {
			fatal(fmt.Errorf("-checkpoint-every must be positive, got %v", *ckptEvery))
		}
		// Warm restart: apply the newest chain before serving. A chain
		// from a differently configured controller is rejected by the
		// config digest; start fresh then.
		if chain, err := delta.FindChain(*ckptDir); err != nil {
			log.Warn("checkpoint scan failed", "dir", *ckptDir, "err", err)
		} else if chain != nil {
			if err := restoreChain(ctrl, chain); err != nil {
				log.Warn("warm restart failed, starting fresh", "base", chain.Base, "err", err)
			} else {
				log.Info("warm restart", "base", chain.Base, "deltas", len(chain.Deltas))
			}
		}
		if err := ctrl.EnableDeltaCheckpoints(0); err != nil {
			fatal(err)
		}
		if ckpt, err = delta.NewCheckpointer(*ckptDir, ctrl, *baseEvery); err != nil {
			fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	log.Info("controller listening", "addr", ln.Addr().String(),
		"window", *window, "budget", *budget, "batch", *batch)
	go func() {
		if err := ctrl.Serve(ln); err != nil {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	var ckptC <-chan time.Time
	if ckpt != nil {
		ckptTick := time.NewTicker(*ckptEvery)
		defer ckptTick.Stop()
		ckptC = ckptTick.C
	}
	action := netwide.ActionDeny
	if *tarpit {
		action = netwide.ActionTarpit
	}
	for {
		select {
		case <-tick.C:
			entries := ctrl.Output(*theta)
			log.Info("window view", "agents", ctrl.Agents(), "stale", ctrl.StaleAgents(),
				"reports", ctrl.Reports(), "deltas", ctrl.Deltas(), "hhh", len(entries))
			for _, e := range entries {
				log.Info("  heavy prefix", "prefix", e.Prefix.String(),
					"estimate", int(e.Estimate), "conditioned", int(e.Conditioned))
			}
			if *mitigate {
				vs, err := ctrl.Mitigate(*theta, action)
				if err != nil {
					log.Error("mitigation failed", "err", err)
				} else if len(vs) > 0 {
					log.Info("broadcast verdicts", "count", len(vs), "action", action.String())
				}
			}
		case <-ckptC:
			path, err := ckpt.Tick()
			if err != nil {
				log.Error("checkpoint failed", "err", err)
			} else {
				log.Info("checkpoint written", "path", path)
			}
		case <-stop:
			log.Info("shutting down")
			if ckpt != nil {
				if path, err := ckpt.Tick(); err != nil {
					log.Error("final checkpoint failed", "err", err)
				} else {
					log.Info("final checkpoint", "path", path)
				}
			}
			ctrl.Close()
			return
		}
	}
}

// restoreChain opens a discovered chain's files and replays them into
// the controller.
func restoreChain(ctrl *netwide.Controller, chain *delta.Chain) error {
	base, deltas, closeAll, err := chain.Open()
	if err != nil {
		return err
	}
	defer closeAll()
	return ctrl.RestoreChain(base, deltas...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "controller:", err)
	os.Exit(1)
}
