// Command controller runs the live network-wide measurement
// controller (D-H-Memento). Load balancers (cmd/lbproxy) connect over
// TCP and stream sampled reports; the controller maintains the global
// sliding-window HHH view, logs it periodically, and (with -mitigate)
// pushes deny/tarpit verdicts for subnets above the threshold.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"time"

	"memento/internal/hierarchy"
	"memento/internal/netwide"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9600", "address to accept agents on")
		window   = flag.Int("window", 1<<20, "network-wide window W in requests")
		counters = flag.Int("counters", 1<<14, "controller sketch counters")
		budget   = flag.Float64("budget", 1, "bandwidth budget B bytes/packet")
		batch    = flag.Int("batch", 44, "batch size b")
		theta    = flag.Float64("theta", 0.01, "HHH threshold θ")
		mitigate = flag.Bool("mitigate", false, "broadcast deny verdicts for heavy subnets")
		tarpit   = flag.Bool("tarpit", false, "tarpit instead of deny")
		interval = flag.Duration("interval", 2*time.Second, "reporting/mitigation cadence")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	ctrl, err := netwide.NewController(netwide.ControllerConfig{
		Hier: hierarchy.OneD{},
		Params: netwide.Params{
			Budget: *budget, BatchSize: *batch, Window: *window,
		},
		Counters: *counters,
		Log:      log,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	log.Info("controller listening", "addr", ln.Addr().String(),
		"window", *window, "budget", *budget, "batch", *batch)
	go func() {
		if err := ctrl.Serve(ln); err != nil {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	action := netwide.ActionDeny
	if *tarpit {
		action = netwide.ActionTarpit
	}
	for {
		select {
		case <-tick.C:
			entries := ctrl.Output(*theta)
			log.Info("window view", "agents", ctrl.Agents(),
				"reports", ctrl.Reports(), "hhh", len(entries))
			for _, e := range entries {
				log.Info("  heavy prefix", "prefix", e.Prefix.String(),
					"estimate", int(e.Estimate), "conditioned", int(e.Conditioned))
			}
			if *mitigate {
				vs, err := ctrl.Mitigate(*theta, action)
				if err != nil {
					log.Error("mitigation failed", "err", err)
				} else if len(vs) > 0 {
					log.Info("broadcast verdicts", "count", len(vs), "action", action.String())
				}
			}
		case <-stop:
			log.Info("shutting down")
			ctrl.Close()
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "controller:", err)
	os.Exit(1)
}
