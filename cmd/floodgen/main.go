// Command floodgen drives the HTTP flood of Section 6.4 against one or
// more load balancers: legitimate background traffic mixed with attack
// requests from N random /8 subnets at the configured rate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"memento/internal/floodgen"
	"memento/internal/trace"
)

func main() {
	var (
		targets  = flag.String("targets", "http://127.0.0.1:8080", "comma-separated load balancer URLs")
		subnets  = flag.Int("subnets", 50, "attacking /8 subnets")
		rate     = flag.Float64("rate", 0.7, "attack fraction of requests")
		requests = flag.Int("requests", 100000, "total requests to send")
		conc     = flag.Int("concurrency", 32, "parallel workers")
		profile  = flag.String("profile", "Backbone", "background traffic profile")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
	)
	flag.Parse()
	prof, err := trace.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	stats, err := floodgen.Run(ctx, floodgen.Config{
		Targets:     strings.Split(*targets, ","),
		Subnets:     *subnets,
		FloodRate:   *rate,
		Profile:     prof,
		Requests:    *requests,
		Concurrency: *conc,
		Seed:        *seed,
	})
	if err != nil && ctx.Err() == nil {
		fatal(err)
	}
	fmt.Printf("sent=%d attack=%d blocked=%d errors=%d\n",
		stats.Sent, stats.Attack, stats.Blocked, stats.Errors)
	if stats.Attack > 0 {
		fmt.Printf("attack requests blocked by ACL: %.1f%%\n",
			100*float64(stats.Blocked)/float64(stats.Attack))
	}
	fmt.Print("attacking subnets:")
	for i, s := range stats.Subnets {
		if i == 10 {
			fmt.Print(" ...")
			break
		}
		fmt.Printf(" %s/8", floodgen.FormatIPv4(s))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floodgen:", err)
	os.Exit(1)
}
