// Command tracegen generates synthetic packet traces (optionally with
// an injected flood) in the binary trace format, and can summarize an
// existing trace file.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"memento/internal/hierarchy"
	"memento/internal/trace"
)

func main() {
	var (
		out     = flag.String("out", "", "output trace file (required unless -inspect)")
		inspect = flag.String("inspect", "", "summarize an existing trace file instead")
		profile = flag.String("profile", "Backbone", "trace profile: Edge, Datacenter, Backbone")
		packets = flag.Int("packets", 1<<20, "number of packets")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		flood   = flag.Int("flood-subnets", 0, "inject a flood from this many /8 subnets")
		rate    = flag.Float64("flood-rate", 0.7, "flood traffic fraction")
		start   = flag.Int("flood-start", -1, "flood start line (-1: random)")
	)
	flag.Parse()

	if *inspect != "" {
		if err := summarize(*inspect); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out or -inspect required")
		os.Exit(2)
	}
	prof, err := trace.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	gen, err := trace.NewGenerator(prof, *seed)
	if err != nil {
		fatal(err)
	}
	pkts := gen.Generate(*packets, nil)
	if *flood > 0 {
		f, err := trace.Inject(pkts, trace.FloodConfig{
			Subnets: *flood, Rate: *rate, Start: *start, Seed: *seed + 1,
		})
		if err != nil {
			fatal(err)
		}
		pkts = f.Packets
		fmt.Printf("flood: %d subnets from line %d; first subnets:", len(f.Subnets), f.Start)
		for i, s := range f.Subnets {
			if i == 5 {
				fmt.Print(" ...")
				break
			}
			fmt.Printf(" %d.0.0.0/8", byte(s>>24))
		}
		fmt.Println()
	}
	fh, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer fh.Close()
	if err := trace.WriteTo(fh, pkts); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d packets (%s profile, seed %d) to %s\n", len(pkts), prof.Name, *seed, *out)
}

// summarize prints basic statistics of a trace file.
func summarize(path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	pkts, err := trace.ReadFrom(fh)
	if err != nil {
		return err
	}
	flows := map[hierarchy.Packet]int{}
	subnets := map[uint32]int{}
	for _, p := range pkts {
		flows[p]++
		subnets[p.Src&0xff000000]++
	}
	counts := make([]int, 0, len(flows))
	for _, c := range flows {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	for i := 0; i < len(counts) && i < len(counts)/100+1; i++ {
		top += counts[i]
	}
	fmt.Printf("%s: %d packets, %d distinct flows, %d /8 subnets\n",
		path, len(pkts), len(flows), len(subnets))
	if len(pkts) > 0 {
		fmt.Printf("top 1%% of flows carry %.1f%% of traffic; largest flow %.2f%%\n",
			100*float64(top)/float64(len(pkts)), 100*float64(counts[0])/float64(len(pkts)))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
