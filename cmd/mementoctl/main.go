// Command mementoctl operates on durable sketch checkpoints: save a
// sharded H-Memento's state to a file, restore and query it offline,
// inspect a file's layout, merge checkpoints from independent nodes
// into one network-wide HHH view, and diff two checkpoints.
//
// Usage:
//
//	mementoctl save -out sketch.mckpt [-trace Backbone] [-packets N]
//	        [-window W] [-counters C] [-v V] [-shards N] [-twod|-flows]
//	        [-heavy F] [-seed S]
//	mementoctl load -in sketch.mckpt [-theta T]
//	mementoctl inspect -in sketch.mckpt
//	mementoctl merge -theta T a.mckpt b.mckpt ...
//	mementoctl diff -theta T a.mckpt b.mckpt
//
// Files are internal/codec KindHHHSet records, the same bytes
// shard.HHH.Checkpoint streams for warm restarts, so anything a
// production process saves is inspectable here. load rebuilds a live
// sharded instance purely from the file (configuration is derived
// from the per-shard snapshots); merge combines independent nodes'
// checkpoints with the shard layer's merged-estimate math, exactly as
// the controller merges snapshot-shipping agents.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/shard"
	"memento/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "save":
		err = runSave(os.Args[2:])
	case "load":
		err = runLoad(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "merge":
		err = runMerge(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mementoctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mementoctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mementoctl save    -out FILE [flags]   ingest a trace and checkpoint it
  mementoctl load    -in FILE [-theta T] restore a live instance, print its HHH set
  mementoctl inspect -in FILE            describe a checkpoint's layout
  mementoctl merge   -theta T FILES...   merge checkpoints from independent nodes
  mementoctl diff    -theta T A B        compare two checkpoints`)
}

// hierFromFlags resolves the hierarchy selection flags.
func hierFromFlags(twod, flows bool) hierarchy.Hierarchy {
	switch {
	case twod:
		return hierarchy.TwoD{}
	case flows:
		return hierarchy.Flows{}
	default:
		return hierarchy.OneD{}
	}
}

func runSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	out := fs.String("out", "", "output checkpoint file (required)")
	profile := fs.String("trace", "Backbone", "trace profile (Edge, Datacenter, Backbone)")
	packets := fs.Int("packets", 1<<20, "packets to ingest before checkpointing")
	window := fs.Int("window", 1<<18, "global sliding window W")
	counters := fs.Int("counters", 512, "per-pattern counter budget (total is counters*H)")
	v := fs.Int("v", 0, "sampling ratio V (0: H, i.e. full fidelity — offline saves aren't rate-bound)")
	shards := fs.Int("shards", 4, "shard count")
	twod := fs.Bool("twod", false, "2D src×dst hierarchy")
	flows := fs.Bool("flows", false, "flows hierarchy (plain heavy hitters)")
	heavy := fs.Float64("heavy", 0, "inject this fraction of packets as a heavy 10.0.0.0/8 flood")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("save: -out is required")
	}
	hier := hierFromFlags(*twod, *flows)
	sampleV := *v
	if sampleV == 0 {
		sampleV = hier.H()
	}
	s, err := shard.NewHHH(shard.HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hier, Window: *window,
			Counters: *counters * hier.H(), V: sampleV, Seed: *seed + 1,
		},
		Shards: *shards,
	})
	if err != nil {
		return err
	}
	prof, err := trace.ProfileByName(*profile)
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(prof, *seed)
	if err != nil {
		return err
	}
	b := s.NewBatcher(0)
	flood := newFloodMixer(*heavy, *seed+7)
	for i := 0; i < *packets; i++ {
		b.Add(flood.mix(gen.Next()))
	}
	b.Flush()

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Checkpoint(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("saved %s: %d shards, hierarchy %s, window %d, %d packets, %d bytes\n",
		*out, s.Shards(), hier, s.EffectiveWindow(), *packets, info.Size())
	return nil
}

// floodMixer deterministically replaces a fraction of packets with a
// heavy 10.0.0.0/8 source, so saved checkpoints have an unambiguous
// heavy hitter to find offline.
type floodMixer struct {
	share float64
	state uint64
}

func newFloodMixer(share float64, seed uint64) *floodMixer {
	return &floodMixer{share: share, state: seed | 1}
}

func (m *floodMixer) next() uint64 {
	m.state ^= m.state << 13
	m.state ^= m.state >> 7
	m.state ^= m.state << 17
	return m.state
}

func (m *floodMixer) mix(p hierarchy.Packet) hierarchy.Packet {
	if m.share <= 0 {
		return p
	}
	r := m.next()
	if float64(r>>11)/(1<<53) < m.share {
		p.Src = hierarchy.IPv4(10, byte(r), byte(r>>8), byte(r>>16))
	}
	return p
}

func runLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	in := fs.String("in", "", "checkpoint file (required)")
	theta := fs.Float64("theta", 0.01, "HHH threshold for the printed set")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("load: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := shard.RestoreHHH(f)
	if err != nil {
		return err
	}
	fmt.Printf("restored %s: %d shards, hierarchy %s, window %d, %d updates\n",
		*in, s.Shards(), s.Hierarchy(), s.EffectiveWindow(), s.Updates())
	printEntries(s.Output(*theta), *theta, s.EffectiveWindow())
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "checkpoint file (required)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	snaps, err := shard.DecodeHHHCheckpoint(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: format v%d, %d shards, hierarchy %s\n",
		*in, codec.Version, len(snaps), snaps[0].Hierarchy())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shard\twindow\tupdates\tfull\tcounters\toverflow\ttracked\tV\tcomp\trestorable")
	for i, snap := range snaps {
		mem := snap.Sketch()
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.1f\t%v\n",
			i, snap.EffectiveWindow(), snap.Updates(), mem.FullUpdates(),
			mem.Counters(), mem.OverflowEntries(), mem.TrackedKeys(),
			mem.Scale(), snap.Compensation(), snap.Restorable())
	}
	return w.Flush()
}

// loadCheckpointSnapshots decodes every per-shard snapshot of a file.
func loadCheckpointSnapshots(path string) ([]*core.HHHSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snaps, err := shard.DecodeHHHCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snaps, nil
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	theta := fs.Float64("theta", 0.01, "HHH threshold for the merged set")
	fs.Parse(args)
	files := fs.Args()
	if len(files) < 2 {
		return fmt.Errorf("merge: need at least two checkpoint files")
	}
	var all []*core.HHHSnapshot
	for _, path := range files {
		snaps, err := loadCheckpointSnapshots(path)
		if err != nil {
			return err
		}
		if len(all) > 0 && !hierarchy.Same(snaps[0].Hierarchy(), all[0].Hierarchy()) {
			return fmt.Errorf("%w: %s uses hierarchy %s, earlier files %s",
				codec.ErrConfigMismatch, path, snaps[0].Hierarchy(), all[0].Hierarchy())
		}
		all = append(all, snaps...)
	}
	// The same merged-estimate math the shard front-end and the
	// snapshot-shipping controller use: the files' partitions become
	// one partition set covering the union of the nodes' traffic.
	var m shard.Merger
	entries := m.Output(all[0].Hierarchy(), all, *theta, nil)
	fmt.Printf("merged %d files (%d partitions): window %d, compensation %.1f\n",
		len(files), len(all), m.Window(), m.Compensation())
	printEntries(entries, *theta, m.Window())
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	theta := fs.Float64("theta", 0.01, "HHH threshold for the compared sets")
	fs.Parse(args)
	files := fs.Args()
	if len(files) != 2 {
		return fmt.Errorf("diff: need exactly two checkpoint files")
	}
	open := func(path string) (*shard.HHH, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := shard.RestoreHHH(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	a, err := open(files[0])
	if err != nil {
		return err
	}
	b, err := open(files[1])
	if err != nil {
		return err
	}
	outA := a.Output(*theta)
	outB := b.Output(*theta)
	setA := map[hierarchy.Prefix]core.HeavyPrefix{}
	for _, e := range outA {
		setA[e.Prefix] = e
	}
	setB := map[hierarchy.Prefix]core.HeavyPrefix{}
	for _, e := range outB {
		setB[e.Prefix] = e
	}
	var union []hierarchy.Prefix
	for p := range setA {
		union = append(union, p)
	}
	for p := range setB {
		if _, ok := setA[p]; !ok {
			union = append(union, p)
		}
	}
	sort.Slice(union, func(i, j int) bool { return union[i].String() < union[j].String() })

	fmt.Printf("%s: %d entries; %s: %d entries (theta %.4g)\n",
		files[0], len(outA), files[1], len(outB), *theta)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "prefix\tin\testimate A\testimate B\tdelta")
	for _, p := range union {
		ea, inA := setA[p]
		eb, inB := setB[p]
		where := "both"
		switch {
		case !inA:
			where = "B only"
		case !inB:
			where = "A only"
		}
		// Per-prefix estimates come from the live restored instances,
		// so prefixes in only one set still get both estimates.
		estA := ea.Estimate
		if !inA {
			estA = a.Query(p)
		}
		estB := eb.Estimate
		if !inB {
			estB = b.Query(p)
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%+.1f\n", p, where, estA, estB, estB-estA)
	}
	return w.Flush()
}

// printEntries renders an HHH set, largest estimates first.
func printEntries(entries []core.HeavyPrefix, theta float64, window int) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Estimate > entries[j].Estimate })
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "prefix\testimate\tconditioned\tshare of W=%d\n", window)
	for _, e := range entries {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.2f%%\n",
			e.Prefix, e.Estimate, e.Conditioned, 100*e.Estimate/float64(window))
	}
	if len(entries) == 0 {
		fmt.Fprintf(w, "(no prefixes at theta %.4g)\n", theta)
	}
	w.Flush()
}
