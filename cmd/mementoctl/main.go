// Command mementoctl operates on durable sketch checkpoints: save a
// sharded H-Memento's state to a file, restore and query it offline,
// inspect a file's layout, merge checkpoints from independent nodes
// into one network-wide HHH view, and diff two checkpoints.
//
// Usage:
//
//	mementoctl save -out sketch.mckpt [-trace Backbone] [-packets N]
//	        [-window W] [-counters C] [-v V] [-shards N] [-twod|-flows]
//	        [-heavy F] [-seed S]
//	mementoctl load -in sketch.mckpt [-theta T]
//	mementoctl inspect -in sketch.mckpt|chain-dir|chain-file
//	mementoctl merge -theta T a.mckpt b.mckpt ...
//	mementoctl diff -theta T a.mckpt b.mckpt
//	mementoctl materialize -out plain.mckpt chain-dir
//	mementoctl top -addr host:port [-watch] [-every D] [-events N]
//
// Files are internal/codec records: KindHHHSet checkpoints (the bytes
// shard.HHH.Checkpoint streams), KindHHHDeltaSet chain steps written
// by the warm-restart checkpointer (internal/delta), and single
// KindHHHDelta records from cmd/controller's chain. inspect and diff
// accept any of them — pass a chain directory and the newest
// base+delta chain is applied first — and materialize folds a chain
// back into a plain KindHHHSet checkpoint offline. load rebuilds a
// live sharded instance purely from the file (configuration is
// derived from the per-shard snapshots); merge combines independent
// nodes' checkpoints with the shard layer's merged-estimate math,
// exactly as the controller merges snapshot-shipping agents.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"
	"time"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/delta"
	"memento/internal/hierarchy"
	"memento/internal/shard"
	"memento/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "save":
		err = runSave(os.Args[2:])
	case "load":
		err = runLoad(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "merge":
		err = runMerge(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "materialize":
		err = runMaterialize(os.Args[2:])
	case "top":
		err = runTop(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mementoctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mementoctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mementoctl save    -out FILE [flags]   ingest a trace and checkpoint it
  mementoctl load    -in FILE [-theta T] restore a live instance, print its HHH set
  mementoctl inspect -in FILE            describe a checkpoint's layout
  mementoctl merge   -theta T FILES...   merge checkpoints from independent nodes
  mementoctl diff    -theta T A B        compare two checkpoints (or chain dirs)
  mementoctl materialize -out FILE CHAIN fold a base+delta chain into a plain checkpoint
  mementoctl top     -addr HOST:PORT [-watch] live metrics/events of a -debug-addr process`)
}

// hierFromFlags resolves the hierarchy selection flags.
func hierFromFlags(twod, flows bool) hierarchy.Hierarchy {
	switch {
	case twod:
		return hierarchy.TwoD{}
	case flows:
		return hierarchy.Flows{}
	default:
		return hierarchy.OneD{}
	}
}

func runSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	out := fs.String("out", "", "output checkpoint file (required)")
	profile := fs.String("trace", "Backbone", "trace profile (Edge, Datacenter, Backbone)")
	packets := fs.Int("packets", 1<<20, "packets to ingest before checkpointing")
	window := fs.Int("window", 1<<18, "global sliding window W")
	counters := fs.Int("counters", 512, "per-pattern counter budget (total is counters*H)")
	v := fs.Int("v", 0, "sampling ratio V (0: H, i.e. full fidelity — offline saves aren't rate-bound)")
	shards := fs.Int("shards", 4, "shard count")
	twod := fs.Bool("twod", false, "2D src×dst hierarchy")
	flows := fs.Bool("flows", false, "flows hierarchy (plain heavy hitters)")
	heavy := fs.Float64("heavy", 0, "inject this fraction of packets as a heavy 10.0.0.0/8 flood")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("save: -out is required")
	}
	hier := hierFromFlags(*twod, *flows)
	sampleV := *v
	if sampleV == 0 {
		sampleV = hier.H()
	}
	s, err := shard.NewHHH(shard.HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hier, Window: *window,
			Counters: *counters * hier.H(), V: sampleV, Seed: *seed + 1,
		},
		Shards: *shards,
	})
	if err != nil {
		return err
	}
	prof, err := trace.ProfileByName(*profile)
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(prof, *seed)
	if err != nil {
		return err
	}
	b := s.NewBatcher(0)
	flood := newFloodMixer(*heavy, *seed+7)
	for i := 0; i < *packets; i++ {
		b.Add(flood.mix(gen.Next()))
	}
	b.Flush()

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Checkpoint(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("saved %s: %d shards, hierarchy %s, window %d, %d packets, %d bytes\n",
		*out, s.Shards(), hier, s.EffectiveWindow(), *packets, info.Size())
	return nil
}

// floodMixer deterministically replaces a fraction of packets with a
// heavy 10.0.0.0/8 source, so saved checkpoints have an unambiguous
// heavy hitter to find offline.
type floodMixer struct {
	share float64
	state uint64
}

func newFloodMixer(share float64, seed uint64) *floodMixer {
	return &floodMixer{share: share, state: seed | 1}
}

func (m *floodMixer) next() uint64 {
	m.state ^= m.state << 13
	m.state ^= m.state >> 7
	m.state ^= m.state << 17
	return m.state
}

func (m *floodMixer) mix(p hierarchy.Packet) hierarchy.Packet {
	if m.share <= 0 {
		return p
	}
	r := m.next()
	if float64(r>>11)/(1<<53) < m.share {
		p.Src = hierarchy.IPv4(10, byte(r), byte(r>>8), byte(r>>16))
	}
	return p
}

func runLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	in := fs.String("in", "", "checkpoint file (required)")
	theta := fs.Float64("theta", 0.01, "HHH threshold for the printed set")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("load: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := shard.RestoreHHH(f)
	if err != nil {
		return err
	}
	fmt.Printf("restored %s: %d shards, hierarchy %s, window %d, %d updates\n",
		*in, s.Shards(), s.Hierarchy(), s.EffectiveWindow(), s.Updates())
	printEntries(s.Output(*theta), *theta, s.EffectiveWindow())
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "checkpoint file, chain record, or chain directory (required)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	info, err := os.Stat(*in)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return inspectChainDir(*in)
	}
	kind, err := peekKind(*in)
	if err != nil {
		return err
	}
	switch kind {
	case codec.KindHHHDelta:
		return inspectDeltaRecord(*in)
	case codec.KindHHHDeltaSet:
		return inspectDeltaSet(*in)
	default:
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		snaps, err := shard.DecodeHHHCheckpoint(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: format v%d, %d shards, hierarchy %s\n",
			*in, codec.Version, len(snaps), snaps[0].Hierarchy())
		return printShardTable(snaps)
	}
}

// printShardTable renders the per-shard state table shared by every
// inspect flavor.
func printShardTable(snaps []*core.HHHSnapshot) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shard\twindow\tupdates\tfull\tcounters\toverflow\ttracked\tV\tcomp\trestorable")
	for i, snap := range snaps {
		mem := snap.Sketch()
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.1f\t%v\n",
			i, snap.EffectiveWindow(), snap.Updates(), mem.FullUpdates(),
			mem.Counters(), mem.OverflowEntries(), mem.TrackedKeys(),
			mem.Scale(), snap.Compensation(), snap.Restorable())
	}
	return w.Flush()
}

// peekKind reads a file's record kind from its codec header.
func peekKind(path string) (uint8, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	head := make([]byte, codec.HeaderSize)
	if _, err := io.ReadFull(f, head); err != nil {
		return 0, fmt.Errorf("%s: reading header: %w", path, err)
	}
	h, _, err := codec.ReadHeader(head)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return h.Kind, nil
}

// describeRecord renders one chain record's framing line.
func describeRecord(tag string, rec []byte) (delta.Info, error) {
	inf, err := delta.Describe(rec)
	if err != nil {
		return inf, err
	}
	flavor := "delta"
	if inf.Base {
		flavor = "base"
	}
	fmt.Printf("%s: %s, chain %#x, epoch %d, restore=%v", tag, flavor, inf.Chain, inf.Epoch, inf.Restore)
	if inf.Base {
		fmt.Printf(", embedded %d bytes\n", inf.EmbeddedBytes)
	} else {
		fmt.Printf(", %d entries, updates %d, clearMon=%v\n", inf.Entries, inf.Updates, inf.ClearMonitored)
	}
	return inf, nil
}

// inspectDeltaRecord describes a single KindHHHDelta file (a
// cmd/controller chain step) and, for bases, the embedded state.
func inspectDeltaRecord(path string) error {
	rec, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	inf, err := describeRecord(path, rec)
	if err != nil {
		return err
	}
	if inf.Base {
		st := delta.NewState()
		if err := st.Apply(rec); err != nil {
			return err
		}
		snap, err := st.Snapshot()
		if err != nil {
			return err
		}
		return printShardTable([]*core.HHHSnapshot{snap})
	}
	return nil
}

// inspectDeltaSet describes one KindHHHDeltaSet file's per-shard
// records; a base set also materializes its state table.
func inspectDeltaSet(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sts, err := shard.ApplyHHHDeltaSet(f, nil)
	if err != nil {
		return fmt.Errorf("%s: %w (a delta step applies only after its chain; inspect the directory instead)", path, err)
	}
	fmt.Printf("%s: format v%d, %d shards, chain %#x, epoch %d (base step)\n",
		path, codec.Version, len(sts), sts[0].Chain(), sts[0].Epoch())
	snaps := make([]*core.HHHSnapshot, len(sts))
	for i, st := range sts {
		if snaps[i], err = st.Snapshot(); err != nil {
			return err
		}
	}
	return printShardTable(snaps)
}

// loadChainStates applies the newest chain in dir and returns its
// per-partition states plus the chain layout. Both chain flavors are
// handled: sharded KindHHHDeltaSet steps (cmd/lbproxy) and bare
// KindHHHDelta records (cmd/controller's single-instance chain, which
// loads as one partition).
func loadChainStates(dir string) ([]*delta.State, *delta.Chain, error) {
	chain, err := delta.FindChain(dir)
	if err != nil {
		return nil, nil, err
	}
	if chain == nil {
		return nil, nil, fmt.Errorf("%s: no chain base found", dir)
	}
	kind, err := peekKind(chain.Base)
	if err != nil {
		return nil, chain, err
	}
	files := append([]string{chain.Base}, chain.Deltas...)
	if kind == codec.KindHHHDelta {
		st := delta.NewState()
		for _, path := range files {
			rec, err := os.ReadFile(path)
			if err != nil {
				return nil, chain, err
			}
			if err := st.Apply(rec); err != nil {
				return nil, chain, fmt.Errorf("%s: %w", path, err)
			}
		}
		return []*delta.State{st}, chain, nil
	}
	var sts []*delta.State
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, chain, err
		}
		sts, err = shard.ApplyHHHDeltaSet(f, sts)
		f.Close()
		if err != nil {
			return nil, chain, fmt.Errorf("%s: %w", path, err)
		}
	}
	return sts, chain, nil
}

// inspectChainDir applies the newest chain in a checkpoint directory
// and shows the materialized per-shard state.
func inspectChainDir(dir string) error {
	sts, chain, err := loadChainStates(dir)
	if err != nil {
		return err
	}
	fmt.Printf("%s: chain %#x at epoch %d (base %s + %d deltas), %d partitions\n",
		dir, sts[0].Chain(), sts[0].Epoch(), filepath.Base(chain.Base), len(chain.Deltas), len(sts))
	// Staleness: how long ago the chain last advanced. A warm-restart
	// or replication chain that stopped stepping is stale state a
	// restore would silently serve — surface its age next to the epoch.
	if age, newest, err := chainAge(chain); err == nil {
		fmt.Printf("  last step %s ago (%s)\n", age.Round(time.Second), filepath.Base(newest))
	}
	snaps := make([]*core.HHHSnapshot, len(sts))
	for i, st := range sts {
		if snaps[i], err = st.Snapshot(); err != nil {
			return err
		}
	}
	return printShardTable(snaps)
}

// chainAge returns how long ago the chain's newest file (base or
// delta) was written, and that file's path.
func chainAge(chain *delta.Chain) (time.Duration, string, error) {
	newest := chain.Base
	var newestMod time.Time
	for _, p := range append([]string{chain.Base}, chain.Deltas...) {
		info, err := os.Stat(p)
		if err != nil {
			return 0, "", err
		}
		if mod := info.ModTime(); mod.After(newestMod) {
			newestMod, newest = mod, p
		}
	}
	return time.Since(newestMod), newest, nil
}

// restoreAny rebuilds a live sharded instance from a plain checkpoint
// file or a chain directory.
func restoreAny(path string) (*shard.HHH, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		sts, _, err := loadChainStates(path)
		if err != nil {
			return nil, err
		}
		snaps := make([]*core.HHHSnapshot, len(sts))
		for i, st := range sts {
			if snaps[i], err = st.Snapshot(); err != nil {
				return nil, fmt.Errorf("%s: partition %d: %w", path, i, err)
			}
		}
		s, err := shard.RestoreHHHFromSnapshots(snaps)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := shard.RestoreHHH(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func runMaterialize(args []string) error {
	fs := flag.NewFlagSet("materialize", flag.ExitOnError)
	out := fs.String("out", "", "output plain checkpoint file (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 1 {
		return fmt.Errorf("materialize: need -out FILE and exactly one chain directory")
	}
	s, err := restoreAny(fs.Arg(0))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Checkpoint(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("materialized %s -> %s: %d shards, window %d, %d updates, %d bytes\n",
		fs.Arg(0), *out, s.Shards(), s.EffectiveWindow(), s.Updates(), info.Size())
	return nil
}

// loadCheckpointSnapshots decodes every per-shard snapshot of a file.
func loadCheckpointSnapshots(path string) ([]*core.HHHSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snaps, err := shard.DecodeHHHCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snaps, nil
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	theta := fs.Float64("theta", 0.01, "HHH threshold for the merged set")
	fs.Parse(args)
	files := fs.Args()
	if len(files) < 2 {
		return fmt.Errorf("merge: need at least two checkpoint files")
	}
	var all []*core.HHHSnapshot
	for _, path := range files {
		snaps, err := loadCheckpointSnapshots(path)
		if err != nil {
			return err
		}
		if len(all) > 0 && !hierarchy.Same(snaps[0].Hierarchy(), all[0].Hierarchy()) {
			return fmt.Errorf("%w: %s uses hierarchy %s, earlier files %s",
				codec.ErrConfigMismatch, path, snaps[0].Hierarchy(), all[0].Hierarchy())
		}
		all = append(all, snaps...)
	}
	// The same merged-estimate math the shard front-end and the
	// snapshot-shipping controller use: the files' partitions become
	// one partition set covering the union of the nodes' traffic.
	var m shard.Merger
	entries := m.Output(all[0].Hierarchy(), all, *theta, nil)
	fmt.Printf("merged %d files (%d partitions): window %d, compensation %.1f\n",
		len(files), len(all), m.Window(), m.Compensation())
	printEntries(entries, *theta, m.Window())
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	theta := fs.Float64("theta", 0.01, "HHH threshold for the compared sets")
	fs.Parse(args)
	files := fs.Args()
	if len(files) != 2 {
		return fmt.Errorf("diff: need exactly two checkpoint files")
	}
	a, err := restoreAny(files[0])
	if err != nil {
		return err
	}
	b, err := restoreAny(files[1])
	if err != nil {
		return err
	}
	outA := a.Output(*theta)
	outB := b.Output(*theta)
	setA := map[hierarchy.Prefix]core.HeavyPrefix{}
	for _, e := range outA {
		setA[e.Prefix] = e
	}
	setB := map[hierarchy.Prefix]core.HeavyPrefix{}
	for _, e := range outB {
		setB[e.Prefix] = e
	}
	var union []hierarchy.Prefix
	for p := range setA {
		union = append(union, p)
	}
	for p := range setB {
		if _, ok := setA[p]; !ok {
			union = append(union, p)
		}
	}
	sort.Slice(union, func(i, j int) bool { return union[i].String() < union[j].String() })

	fmt.Printf("%s: %d entries; %s: %d entries (theta %.4g)\n",
		files[0], len(outA), files[1], len(outB), *theta)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "prefix\tin\testimate A\testimate B\tdelta")
	for _, p := range union {
		ea, inA := setA[p]
		eb, inB := setB[p]
		where := "both"
		switch {
		case !inA:
			where = "B only"
		case !inB:
			where = "A only"
		}
		// Per-prefix estimates come from the live restored instances,
		// so prefixes in only one set still get both estimates.
		estA := ea.Estimate
		if !inA {
			estA = a.Query(p)
		}
		estB := eb.Estimate
		if !inB {
			estB = b.Query(p)
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%+.1f\n", p, where, estA, estB, estB-estA)
	}
	return w.Flush()
}

// printEntries renders an HHH set, largest estimates first.
func printEntries(entries []core.HeavyPrefix, theta float64, window int) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Estimate > entries[j].Estimate })
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "prefix\testimate\tconditioned\tshare of W=%d\n", window)
	for _, e := range entries {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.2f%%\n",
			e.Prefix, e.Estimate, e.Conditioned, 100*e.Estimate/float64(window))
	}
	if len(entries) == 0 {
		fmt.Fprintf(w, "(no prefixes at theta %.4g)\n", theta)
	}
	w.Flush()
}
