// mementoctl top: a terminal view over a live process's debug
// endpoints (-debug-addr on cmd/lbproxy and cmd/controller). One-shot
// by default; -watch redraws at -every intervals until interrupted.

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"text/tabwriter"
	"time"
)

// topEvent mirrors obs's /debug/events wire shape.
type topEvent struct {
	Seq   uint64 `json:"seq"`
	Nanos int64  `json:"unix_nanos"`
	Kind  string `json:"kind"`
	Actor string `json:"actor"`
	Value uint64 `json:"value"`
}

// topEvents is the /debug/events response envelope.
type topEvents struct {
	Seq     uint64     `json:"seq"`
	Dropped uint64     `json:"dropped"`
	Events  []topEvent `json:"events"`
}

func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9700", "debug address of the target process (-debug-addr)")
	watch := fs.Bool("watch", false, "redraw continuously instead of printing once")
	every := fs.Duration("every", 2*time.Second, "refresh interval with -watch")
	events := fs.Int("events", 10, "recent trace events to show (0 hides the section)")
	asJSON := fs.Bool("json", false, "emit one machine-readable JSON document per snapshot instead of the table")
	fs.Parse(args)
	if *every <= 0 {
		return fmt.Errorf("top: -every must be positive, got %v", *every)
	}
	base := *addr
	if _, err := url.Parse("http://" + base); err != nil {
		return fmt.Errorf("top: bad -addr %q: %v", base, err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		if *watch && !*asJSON {
			// ANSI clear + home: good enough for a status loop without
			// pulling in a terminal library. JSON mode never clears —
			// with -watch it emits one document per line for scrapers.
			fmt.Print("\x1b[2J\x1b[H")
		}
		if err := topOnce(client, base, *events, *asJSON); err != nil {
			if !*watch {
				return err
			}
			fmt.Fprintln(os.Stderr, "mementoctl top:", err)
		}
		if !*watch {
			return nil
		}
		time.Sleep(*every)
	}
}

// topOnce fetches and renders one snapshot of the target's metrics
// and recent events, as a table or (asJSON) a single JSON document.
func topOnce(client *http.Client, addr string, nEvents int, asJSON bool) error {
	metrics := map[string]json.RawMessage{}
	if err := topGet(client, "http://"+addr+"/debug/metrics?format=json", &metrics); err != nil {
		return err
	}
	if asJSON {
		doc := struct {
			Addr    string                     `json:"addr"`
			Metrics map[string]json.RawMessage `json:"metrics"`
			Events  *topEvents                 `json:"events,omitempty"`
		}{Addr: addr, Metrics: metrics}
		if nEvents > 0 {
			var ev topEvents
			if err := topGet(client, fmt.Sprintf("http://%s/debug/events?n=%d", addr, nEvents), &ev); err != nil {
				return err
			}
			doc.Events = &ev
		}
		enc := json.NewEncoder(os.Stdout)
		return enc.Encode(doc)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "# %s at %s\n", addr, time.Now().Format(time.TimeOnly))
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s\t%s\n", name, topValue(metrics[name]))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if nEvents <= 0 {
		return nil
	}
	var ev topEvents
	if err := topGet(client, fmt.Sprintf("http://%s/debug/events?n=%d", addr, nEvents), &ev); err != nil {
		return err
	}
	fmt.Printf("\nevents (seq %d, dropped %d):\n", ev.Seq, ev.Dropped)
	if len(ev.Events) == 0 {
		fmt.Println("  (none)")
	}
	for _, e := range ev.Events {
		ts := time.Unix(0, e.Nanos).Format(time.TimeOnly)
		fmt.Printf("  %6d  %s  %-14s %s value=%d\n", e.Seq, ts, e.Kind, e.Actor, e.Value)
	}
	return nil
}

// topGet fetches one JSON endpoint into out.
func topGet(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("top: %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

// topValue renders one /debug/metrics?format=json value: scalars
// verbatim, histogram objects as a compact quantile line.
func topValue(raw json.RawMessage) string {
	var h struct {
		Count *uint64 `json:"count"`
		Mean  float64 `json:"mean"`
		P50   uint64  `json:"p50"`
		P99   uint64  `json:"p99"`
		P999  uint64  `json:"p999"`
		Max   uint64  `json:"max"`
	}
	if err := json.Unmarshal(raw, &h); err == nil && h.Count != nil {
		return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d p999=%d max=%d",
			*h.Count, h.Mean, h.P50, h.P99, h.P999, h.Max)
	}
	return string(raw)
}
