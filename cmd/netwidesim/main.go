// Command netwidesim regenerates Figure 9: the controller's accuracy
// under a fixed per-packet bandwidth budget for the Aggregation,
// Sample and Batch communication methods, per prefix length.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"memento/internal/experiments"
	"memento/internal/obs"
	"memento/internal/trace"
)

func main() {
	var (
		window   = flag.Int("window", 1<<17, "network-wide window W in packets")
		packets  = flag.Int("packets", 1<<19, "stream length")
		points   = flag.Int("points", 10, "measurement points m")
		budget   = flag.Float64("budget", 1, "bandwidth budget B bytes/packet")
		batch    = flag.Int("batch", 44, "batch size b for the Batch method")
		counters = flag.Int("counters", 4096, "controller sketch counters")
		traces   = flag.String("traces", "Backbone,Datacenter,Edge", "comma-separated trace profiles")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		evalEach = flag.Int("eval-every", 101, "evaluate error every N packets")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tmethod\tprefix\tRMSE(pkts)")
	for _, name := range splitList(*traces) {
		prof, err := trace.ProfileByName(name)
		if err != nil {
			fatal(err)
		}
		rows, err := experiments.Figure9(experiments.Fig9Config{
			Profile: prof, Window: *window, Packets: *packets,
			Points: *points, Budget: *budget, BatchSize: *batch,
			Counters: *counters, EvalEvery: *evalEach, Seed: *seed,
			Obs: reg,
		})
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t/%d\t%.1f\n", r.Trace, r.Method, 8*r.PrefixLen, r.RMSE)
		}
	}
	w.Flush()
	// The simulated control-plane ledgers: what each method actually
	// spent to earn its accuracy row above.
	fmt.Println("\nobs summary:")
	reg.WriteTable(os.Stdout)
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netwidesim:", err)
	os.Exit(1)
}
