// Command batchopt regenerates Figure 4 (guaranteed network-wide error
// versus bandwidth budget for the Sample / fixed-Batch / optimal-Batch
// synchronization methods) and the worked examples of Section 5.2.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"memento/internal/analysis"
)

func main() {
	var (
		fig4     = flag.Bool("figure4", false, "print the Figure 4 comparison table")
		examples = flag.Bool("examples", false, "print the §5.2 worked examples")
		overhead = flag.Float64("overhead", 64, "per-report header bytes O")
		sample   = flag.Float64("sample", 4, "per-sample payload bytes E")
		points   = flag.Int("points", 10, "measurement points m")
		hsize    = flag.Int("hierarchy", 5, "hierarchy size H")
		window   = flag.Float64("window", 1e6, "window size W")
		delta    = flag.Float64("delta", 1e-4, "confidence δ")
		fixedB   = flag.Int("fixed-batch", 100, "fixed batch size for the Figure 4 middle curve")
	)
	flag.Parse()
	if !*fig4 && !*examples {
		*fig4, *examples = true, true
	}
	m := analysis.Model{
		OverheadBytes: *overhead, SampleBytes: *sample, Points: *points,
		HierarchySize: *hsize, Window: *window, Delta: *delta,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	if *fig4 {
		budgets := []float64{0.1, 0.25, 0.5, 1, 2, 5, 10}
		rows, err := m.Figure4(budgets, *fixedB)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "B(bytes/pkt)\tSample\tBatch-100\tBatch-opt\topt b\tdelay:Sample\tdelay:B100\tdelay:opt")
		for _, r := range rows {
			fmt.Fprintf(w, "%.2f\t%.0f\t%.0f\t%.0f\t%d\t%.0f\t%.0f\t%.0f\n",
				r.Budget, r.Sample, r.FixedBatch, r.OptBatch, r.OptB,
				r.SampleDelay, r.FixedDelay, r.OptDelay)
		}
		fmt.Fprintln(w)
	}
	if *examples {
		fmt.Fprintln(w, "Section 5.2 worked examples (model values):")
		for _, ex := range []struct {
			label  string
			budget float64
			window float64
			hsize  int
		}{
			{"B=1, W=1e6, H=5 (paper: b*≈44, err≈13K = 1.3%)", 1, 1e6, 5},
			{"B=5, W=1e6, H=5 (paper: b*≈68, err≈5.3K = 0.53%)", 5, 1e6, 5},
			{"B=1, W=1e7, H=5 (paper text: 0.15%; formula: ≈0.35%)", 1, 1e7, 5},
			{"B=1, W=1e6, H=25 (2D: larger error, larger b*)", 1, 1e6, 25},
		} {
			mm := m
			mm.Window = ex.window
			mm.HierarchySize = ex.hsize
			opt, err := mm.Optimize(ex.budget, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "  %s\tb*=%d\terr=%.0f pkts\t(%.3f%% of W)\tτ=%.5f\n",
				ex.label, opt.BatchSize, opt.Error, 100*opt.ErrorFraction, opt.Tau)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batchopt:", err)
	os.Exit(1)
}
