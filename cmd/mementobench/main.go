// Command mementobench regenerates the single-device evaluation
// figures of the paper (Figures 5-8). Each -figureN flag prints the
// corresponding table; scale flags default to laptop-sized runs and
// accept the paper's full parameters (-window 5000000 -packets
// 16000000).
//
// Usage:
//
//	mementobench -figure5 [-window N] [-packets N] [-counters 64,512,4096]
//	mementobench -figure6 [-twod]
//	mementobench -figure7 [-twod]
//	mementobench -figure8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"memento/internal/experiments"
	"memento/internal/hierarchy"
	"memento/internal/trace"
)

func main() {
	var (
		fig5     = flag.Bool("figure5", false, "Memento vs WCSS: speed and error vs τ")
		fig6     = flag.Bool("figure6", false, "H-Memento vs Baseline window HHH speed")
		fig7     = flag.Bool("figure7", false, "H-Memento vs RHHH throughput")
		fig8     = flag.Bool("figure8", false, "per-prefix-length error: Interval vs Baseline vs H-Memento")
		twod     = flag.Bool("twod", false, "use the 2D src×dst hierarchy (H=25) where applicable")
		window   = flag.Int("window", 1<<18, "window size W in packets")
		packets  = flag.Int("packets", 1<<20, "stream length N in packets")
		counters = flag.String("counters", "64,512,4096", "comma-separated counter budgets")
		traces   = flag.String("traces", "Edge,Datacenter,Backbone", "comma-separated trace profiles")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		evalEach = flag.Int("eval-every", 101, "evaluate on-arrival error every N packets")
		sampleV  = flag.Int("v", 0, "H-Memento sampling ratio V for -figure8 (0: H·64, ≈ the paper's τ regime)")
	)
	flag.Parse()
	if !*fig5 && !*fig6 && !*fig7 && !*fig8 {
		fmt.Fprintln(os.Stderr, "select one of -figure5 -figure6 -figure7 -figure8")
		flag.Usage()
		os.Exit(2)
	}
	ks, err := parseInts(*counters)
	if err != nil {
		fatal(err)
	}
	profiles, err := parseProfiles(*traces)
	if err != nil {
		fatal(err)
	}
	var hier hierarchy.Hierarchy = hierarchy.OneD{}
	if *twod {
		hier = hierarchy.TwoD{}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	switch {
	case *fig5:
		rows, err := experiments.Figure5(experiments.Fig5Config{
			Profiles: profiles, Counters: ks, Taus: experiments.DefaultTaus(),
			Window: *window, Packets: *packets, EvalEvery: *evalEach, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "trace\tcounters\ttau\tMpps\tspeedup\tRMSE(pkts)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.6f\t%.2f\t%.2fx\t%.1f\n",
				r.Trace, r.Counters, r.Tau, r.MPPS, r.Speedup, r.RMSE)
		}
	case *fig6:
		h := hier.H()
		vs := make([]int, 0, 8)
		for v := h; v <= h*1024; v *= 4 {
			vs = append(vs, v)
		}
		rows, err := experiments.Figure6(experiments.Fig6Config{
			Hier: hier, Profile: profiles[len(profiles)-1], Counters: ks,
			Vs: vs, Window: *window, Packets: *packets, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "hierarchy\talgorithm\tcounters\tV\tMpps\tspeedup")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.2f\t%.1fx\n",
				r.Hier, r.Algorithm, r.Counters, r.V, r.MPPS, r.Speedup)
		}
	case *fig7:
		h := hier.H()
		vs := make([]int, 0, 8)
		for v := h; v <= h*4096; v *= 4 {
			vs = append(vs, v)
		}
		rows, err := experiments.Figure7(experiments.Fig7Config{
			Hier: hier, Profile: profiles[len(profiles)-1], Counters: ks[0],
			Vs: vs, Window: *window, Packets: *packets, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "hierarchy\talgorithm\tV\tMpps")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%d\t%.2f\n", r.Hier, r.Algorithm, r.V, r.MPPS)
		}
	case *fig8:
		v := *sampleV
		if v == 0 {
			v = hier.H() * 64
		}
		for _, prof := range profiles {
			rows, err := experiments.Figure8(experiments.Fig8Config{
				Profile: prof, Window: *window, Packets: *packets,
				Counters: ks[0], V: v, EvalEvery: *evalEach, Seed: *seed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(w, "trace\talgorithm\tprefix\tRMSE(pkts)")
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%s\t/%d\t%.1f\n",
					r.Trace, r.Algorithm, 8*r.PrefixLen, r.RMSE)
			}
		}
	}
}

// parseInts splits a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseProfiles resolves comma-separated trace profile names.
func parseProfiles(s string) ([]trace.Profile, error) {
	var out []trace.Profile
	for _, part := range strings.Split(s, ",") {
		p, err := trace.ProfileByName(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mementobench:", err)
	os.Exit(1)
}
