// Command mementobench regenerates the single-device evaluation
// figures of the paper (Figures 5-8) and benchmarks the concurrent
// ingestion layer. Each -figureN flag prints the corresponding table;
// scale flags default to laptop-sized runs and accept the paper's
// full parameters (-window 5000000 -packets 16000000).
//
// Usage:
//
//	mementobench -figure5 [-window N] [-packets N] [-counters 64,512,4096]
//	mementobench -figure6 [-twod]
//	mementobench -figure7 [-twod]
//	mementobench -figure8
//	mementobench -ingest [-shards N[,N…]] [-batch B[,B…]] [-goroutines G] [-tau F]
//	             [-cores C1,C2,…] [-mode serial,mutex,ring,auto] [-json]
//	mementobench -queryload [-qps Q] [-theta T] [-shards N] [-json]
//	mementobench -report [-agents M] [-budget B] [-cadence C] [-theta T] [-json]
//
// -ingest measures the single-threaded per-packet core.Sketch baseline
// against the sharded, batched shard.Sketch front-end and reports the
// throughput ratio; -json emits the result as machine-readable JSON
// (ops/sec, ns/op, shards, batch size) so successive PRs can track the
// perf trajectory in BENCH_*.json files. With -cores, it additionally
// sweeps a scaling matrix — every cores × shards × batch × mode
// combination, pinning GOMAXPROCS per cell — over the execution modes
// serial (one Batcher goroutine), mutex (one Batcher per core, the
// lock-per-flush handoff), ring (the SPSC owner pipeline) and auto
// (shard.ModeAuto), emitting a "matrix" section next to the stable
// legacy legs. host_cpus records the physical parallelism available,
// so a matrix measured on fewer cores than GOMAXPROCS is legible.
//
// -queryload is the read-plane benchmark: writer goroutines ingest a
// trace through a sharded H-Memento while Output fires at the given
// QPS, measuring both sides of the snapshot query plane at once —
// sustained ingest throughput under periodic monitoring, and query
// latency under full-rate ingestion (the paper's on-arrival setting,
// Figure 8, assumes queries cheap enough to run this way). -json
// emits BENCH_query.json-shaped output.
//
// -report drives two real TCP controller/agent fleets over the same
// stream — budget-sampled reporting vs full-sketch snapshot shipping
// (netwide.ReportSnapshot) — and scores both heavy-hitter sets
// against an exact oracle: recall/precision/F1 next to measured bytes
// per packet (BENCH_netwide.json), turning the paper's "send
// everything" baseline into a live accuracy-vs-bandwidth axis.
//
// Every mode accepts -cpuprofile and -memprofile to write pprof
// profiles of the selected run, the intended first stop when a
// BENCH_*.json regression needs explaining.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"memento/internal/core"
	"memento/internal/experiments"
	"memento/internal/hierarchy"
	"memento/internal/shard"
	"memento/internal/trace"
)

func main() {
	var (
		fig5     = flag.Bool("figure5", false, "Memento vs WCSS: speed and error vs τ")
		fig6     = flag.Bool("figure6", false, "H-Memento vs Baseline window HHH speed")
		fig7     = flag.Bool("figure7", false, "H-Memento vs RHHH throughput")
		fig8     = flag.Bool("figure8", false, "per-prefix-length error: Interval vs Baseline vs H-Memento")
		twod     = flag.Bool("twod", false, "use the 2D src×dst hierarchy (H=25) where applicable")
		window   = flag.Int("window", 1<<18, "window size W in packets")
		packets  = flag.Int("packets", 1<<20, "stream length N in packets")
		counters = flag.String("counters", "64,512,4096", "comma-separated counter budgets")
		traces   = flag.String("traces", "Edge,Datacenter,Backbone", "comma-separated trace profiles")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		evalEach = flag.Int("eval-every", 101, "evaluate on-arrival error every N packets")
		sampleV  = flag.Int("v", 0, "H-Memento sampling ratio V for -figure8 (0: H·64, ≈ the paper's τ regime)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")

		ingest     = flag.Bool("ingest", false, "benchmark concurrent sharded ingestion vs the single-threaded baseline")
		shards     = flag.String("shards", strconv.Itoa(runtime.GOMAXPROCS(0)), "shard count for -ingest/-queryload (comma list sweeps the -ingest matrix)")
		batchSize  = flag.String("batch", "256", "per-goroutine batch size for -ingest/-queryload (comma list sweeps the -ingest matrix)")
		goroutines = flag.Int("goroutines", 0, "writer goroutines for -ingest/-queryload (0: one per shard)")
		tau        = flag.Float64("tau", 1.0/64, "Full-update sampling probability for -ingest")
		coresList  = flag.String("cores", "", "comma-separated GOMAXPROCS values for the -ingest scaling matrix (empty: no matrix)")
		modeList   = flag.String("mode", "serial,mutex,ring,auto", "comma-separated ingest modes for the -ingest matrix: serial, mutex, ring, auto")
		jsonOut    = flag.Bool("json", false, "emit -ingest/-queryload results as JSON on stdout")

		queryload      = flag.Bool("queryload", false, "benchmark mixed ingest + periodic Output on a sharded H-Memento")
		auditRun       = flag.Bool("audit", false, "audit a traced snapshot fleet against a shadow oracle (with -queryload: append the accuracy-trajectory section)")
		auditShift     = flag.Uint("audit-shift", 8, "shadow-oracle sampling shift for -audit (audit 2^-shift of keys)")
		auditIntervals = flag.Int("audit-intervals", 8, "accuracy-trajectory checkpoints for -audit")
		qps            = flag.Float64("qps", 100, "Output queries per second for -queryload")
		theta          = flag.Float64("theta", 0.1, "HHH threshold for -queryload Output calls")

		report  = flag.Bool("report", false, "compare sampled vs snapshot-shipping network-wide reporting (accuracy vs bytes)")
		nagents = flag.Int("agents", 4, "measurement points for -report")
		budget  = flag.Float64("budget", 0.1, "bytes/packet budget for the sampled fleet in -report")
		cadence = flag.Int("cadence", 2, "snapshots per agent window for -report")
		chaos   = flag.Bool("chaos", false, "add a fault-injected delta leg to -report: scripted drops, a partition and controller resets, scored after heal")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if *ingest {
		ks, err := parseInts(*counters)
		if err != nil {
			fatal(err)
		}
		profiles, err := parseProfiles(*traces)
		if err != nil {
			fatal(err)
		}
		shardsList, err := parseInts(*shards)
		if err != nil {
			fatal(err)
		}
		batchList, err := parseInts(*batchSize)
		if err != nil {
			fatal(err)
		}
		var cores []int
		if *coresList != "" {
			if cores, err = parseInts(*coresList); err != nil {
				fatal(err)
			}
		}
		modes, err := parseModes(*modeList)
		if err != nil {
			fatal(err)
		}
		if err := runIngest(ingestConfig{
			Window: *window, Packets: *packets, Shards: shardsList[0],
			Batch: batchList[0], Goroutines: *goroutines, Tau: *tau,
			Counters: ks[0], Profile: profiles[0],
			Seed: *seed, JSON: *jsonOut,
			Cores: cores, Modes: modes,
			ShardsList: shardsList, BatchList: batchList,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if *queryload {
		ks, err := parseInts(*counters)
		if err != nil {
			fatal(err)
		}
		profiles, err := parseProfiles(*traces)
		if err != nil {
			fatal(err)
		}
		shardsList, err := parseInts(*shards)
		if err != nil {
			fatal(err)
		}
		batchList, err := parseInts(*batchSize)
		if err != nil {
			fatal(err)
		}
		qcfg := queryLoadConfig{
			Window: *window, Packets: *packets, Shards: shardsList[0],
			Batch: batchList[0], Goroutines: *goroutines,
			Counters: ks[0], V: *sampleV, Theta: *theta, QPS: *qps,
			Profile: profiles[0], Seed: *seed, JSON: *jsonOut,
		}
		if *auditRun {
			rep, err := runAudit(auditConfig{
				Window: *window, Packets: *packets, Agents: *nagents,
				Shift: *auditShift, Intervals: *auditIntervals, Seed: *seed,
			})
			if err != nil {
				fatal(err)
			}
			qcfg.Audit = &rep
		}
		if err := runQueryLoad(qcfg); err != nil {
			fatal(err)
		}
		return
	}
	if *auditRun {
		if err := runAuditStandalone(auditConfig{
			Window: *window, Packets: *packets, Agents: *nagents,
			Shift: *auditShift, Intervals: *auditIntervals,
			Seed: *seed, JSON: *jsonOut,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if *report {
		if err := runReport(reportConfig{
			Window: *window, Packets: *packets, Agents: *nagents,
			Theta: *theta, Budget: *budget, Batch: 16,
			Counters: 2048, Cadence: *cadence,
			Seed: *seed, JSON: *jsonOut, Chaos: *chaos,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if !*fig5 && !*fig6 && !*fig7 && !*fig8 {
		fmt.Fprintln(os.Stderr, "select one of -figure5 -figure6 -figure7 -figure8")
		flag.Usage()
		os.Exit(2)
	}
	ks, err := parseInts(*counters)
	if err != nil {
		fatal(err)
	}
	profiles, err := parseProfiles(*traces)
	if err != nil {
		fatal(err)
	}
	var hier hierarchy.Hierarchy = hierarchy.OneD{}
	if *twod {
		hier = hierarchy.TwoD{}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	switch {
	case *fig5:
		rows, err := experiments.Figure5(experiments.Fig5Config{
			Profiles: profiles, Counters: ks, Taus: experiments.DefaultTaus(),
			Window: *window, Packets: *packets, EvalEvery: *evalEach, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "trace\tcounters\ttau\tMpps\tspeedup\tRMSE(pkts)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.6f\t%.2f\t%.2fx\t%.1f\n",
				r.Trace, r.Counters, r.Tau, r.MPPS, r.Speedup, r.RMSE)
		}
	case *fig6:
		h := hier.H()
		vs := make([]int, 0, 8)
		for v := h; v <= h*1024; v *= 4 {
			vs = append(vs, v)
		}
		rows, err := experiments.Figure6(experiments.Fig6Config{
			Hier: hier, Profile: profiles[len(profiles)-1], Counters: ks,
			Vs: vs, Window: *window, Packets: *packets, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "hierarchy\talgorithm\tcounters\tV\tMpps\tspeedup")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.2f\t%.1fx\n",
				r.Hier, r.Algorithm, r.Counters, r.V, r.MPPS, r.Speedup)
		}
	case *fig7:
		h := hier.H()
		vs := make([]int, 0, 8)
		for v := h; v <= h*4096; v *= 4 {
			vs = append(vs, v)
		}
		rows, err := experiments.Figure7(experiments.Fig7Config{
			Hier: hier, Profile: profiles[len(profiles)-1], Counters: ks[0],
			Vs: vs, Window: *window, Packets: *packets, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "hierarchy\talgorithm\tV\tMpps")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%d\t%.2f\n", r.Hier, r.Algorithm, r.V, r.MPPS)
		}
	case *fig8:
		v := *sampleV
		if v == 0 {
			v = hier.H() * 64
		}
		for _, prof := range profiles {
			rows, err := experiments.Figure8(experiments.Fig8Config{
				Profile: prof, Window: *window, Packets: *packets,
				Counters: ks[0], V: v, EvalEvery: *evalEach, Seed: *seed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(w, "trace\talgorithm\tprefix\tRMSE(pkts)")
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%s\t/%d\t%.1f\n",
					r.Trace, r.Algorithm, 8*r.PrefixLen, r.RMSE)
			}
		}
	}
}

// parseInts splits a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseProfiles resolves comma-separated trace profile names.
func parseProfiles(s string) ([]trace.Profile, error) {
	var out []trace.Profile
	for _, part := range strings.Split(s, ",") {
		p, err := trace.ProfileByName(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// parseModes validates a comma-separated ingest mode list.
func parseModes(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		m := strings.TrimSpace(part)
		switch m {
		case "serial", "mutex", "ring", "auto":
			out = append(out, m)
		default:
			return nil, fmt.Errorf("unknown ingest mode %q (want serial, mutex, ring or auto)", m)
		}
	}
	return out, nil
}

// ingestConfig parameterizes the -ingest benchmark.
type ingestConfig struct {
	Window     int
	Packets    int
	Shards     int
	Batch      int
	Goroutines int
	Tau        float64
	Counters   int
	Profile    trace.Profile
	Seed       uint64
	JSON       bool

	// Scaling matrix dimensions: every Cores × ShardsList × BatchList
	// × Modes combination is measured when Cores is non-empty.
	Cores      []int
	Modes      []string
	ShardsList []int
	BatchList  []int
}

// ingestLeg is one measured configuration of the ingest benchmark.
type ingestLeg struct {
	Name       string  `json:"name"`
	Shards     int     `json:"shards"`
	Batch      int     `json:"batch"`
	Goroutines int     `json:"goroutines"`
	Packets    int     `json:"packets"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Mpps       float64 `json:"mpps"`
}

// matrixLeg is one cell of the -ingest scaling matrix: a mode run at
// a pinned GOMAXPROCS. The embedded leg's Goroutines is the producer
// count (one per core). Ring-path cells also report the backpressure
// ledger: time-weighted mean ring occupancy and park counts.
type matrixLeg struct {
	ingestLeg
	ModeName      string  `json:"run_mode"`
	ResolvedMode  string  `json:"resolved_mode,omitempty"` // auto only
	Cores         int     `json:"cores"`
	Occupancy     float64 `json:"occupancy,omitempty"`
	ProducerParks uint64  `json:"producer_parks,omitempty"`
	OwnerParks    uint64  `json:"owner_parks,omitempty"`
}

// ingestReport is the machine-readable -ingest output.
type ingestReport struct {
	Mode       string      `json:"mode"`
	Trace      string      `json:"trace"`
	Window     int         `json:"window"`
	Counters   int         `json:"counters"`
	Tau        float64     `json:"tau"`
	GoMaxProcs int         `json:"gomaxprocs"`
	HostCPUs   int         `json:"host_cpus"`
	Baseline   ingestLeg   `json:"baseline"`
	Sharded    ingestLeg   `json:"sharded"`
	Legs       []ingestLeg `json:"legs"`
	Matrix     []matrixLeg `json:"matrix,omitempty"`
	Speedup    float64     `json:"speedup"`
	Phases     []phaseStat `json:"phases"`
}

// runIngest measures single-threaded per-packet core.Sketch ingestion
// against the sharded, batched front-end and reports the ratio.
func runIngest(cfg ingestConfig) error {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = shard.DefaultBatchSize
	}
	var pt phaseTimer
	pt.begin("generate")
	gen, err := trace.NewGenerator(cfg.Profile, cfg.Seed)
	if err != nil {
		return err
	}
	pkts := gen.Generate(cfg.Packets, nil)
	keys := make([]uint64, len(pkts))
	for i, p := range pkts {
		keys[i] = uint64(p.Src)
	}
	pt.end()
	coreCfg := core.Config{
		Window: cfg.Window, Counters: cfg.Counters, Tau: cfg.Tau, Seed: cfg.Seed + 1,
	}

	// Leg 1: the single-threaded per-packet baseline.
	base, err := core.New[uint64](coreCfg)
	if err != nil {
		return err
	}
	pt.begin("core-single")
	for _, k := range keys {
		base.Update(k)
	}
	baseline := measureLeg("core-single", 1, 1, 1, len(keys), pt.end())

	// Leg 2: a single goroutine through the batched geometric-skip
	// path (one shard) — isolates the batching win from parallelism.
	serial, err := shard.New(shard.SketchConfig[uint64]{Core: coreCfg, Shards: 1})
	if err != nil {
		return err
	}
	pt.begin("batch-serial")
	sb := serial.NewBatcher(cfg.Batch)
	for _, k := range keys {
		sb.Add(k)
	}
	sb.Flush()
	serialLeg := measureLeg("batch-serial", 1, cfg.Batch, 1, len(keys), pt.end())

	// Leg 3: the sharded, batched front-end under concurrent writers.
	g := cfg.Goroutines
	if g <= 0 {
		g = cfg.Shards
	}
	sharded, err := shard.New(shard.SketchConfig[uint64]{
		Core:   coreCfg,
		Shards: cfg.Shards,
		// Fixed multiplicative hash: deterministic across runs, cheap.
		Hash: func(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 },
	})
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	pt.begin("shard-batched")
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := sharded.NewBatcher(cfg.Batch)
			// Each writer streams a disjoint contiguous slice so the
			// combined work equals one pass over the trace.
			lo, hi := w*len(keys)/g, (w+1)*len(keys)/g
			for _, k := range keys[lo:hi] {
				b.Add(k)
			}
			b.Flush()
		}(w)
	}
	wg.Wait()
	shardLeg := measureLeg("shard-batched", cfg.Shards, cfg.Batch, g, len(keys), pt.end())

	report := ingestReport{
		Mode: "ingest", Trace: cfg.Profile.Name,
		Window: cfg.Window, Counters: cfg.Counters, Tau: cfg.Tau,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		HostCPUs:   runtime.NumCPU(),
		Baseline:   baseline, Sharded: shardLeg,
		Legs:    []ingestLeg{baseline, serialLeg, shardLeg},
		Speedup: shardLeg.OpsPerSec / baseline.OpsPerSec,
	}
	if len(cfg.Cores) > 0 {
		pt.begin("matrix")
		matrix, err := runMatrix(cfg, keys, coreCfg)
		pt.end()
		if err != nil {
			return err
		}
		report.Matrix = matrix
	}
	report.Phases = pt.phases
	if cfg.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "leg\tshards\tbatch\tgoroutines\tns/op\tMpps")
	for _, l := range report.Legs {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2f\t%.2f\n",
			l.Name, l.Shards, l.Batch, l.Goroutines, l.NsPerOp, l.Mpps)
	}
	fmt.Fprintf(w, "speedup\t\t\t\t%.2fx\t\n", report.Speedup)
	if len(report.Matrix) > 0 {
		fmt.Fprintln(w, "\nmatrix\tcores\tshards\tbatch\tns/op\tMpps\toccupancy\tparks")
		for _, m := range report.Matrix {
			name := m.ModeName
			if m.ResolvedMode != "" {
				name += "(" + m.ResolvedMode + ")"
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2f\t%.2f\t%.4f\t%d\n",
				name, m.Cores, m.Shards, m.Batch, m.NsPerOp, m.Mpps, m.Occupancy, m.ProducerParks)
		}
	}
	return w.Flush()
}

// runMatrix measures every Cores × ShardsList × BatchList × Modes
// combination over the same trace. GOMAXPROCS is pinned per cell and
// restored; producer count equals the pinned core count, so each cell
// answers "what does this engine do with exactly c cores?".
func runMatrix(cfg ingestConfig, keys []uint64, coreCfg core.Config) ([]matrixLeg, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var out []matrixLeg
	for _, c := range cfg.Cores {
		if c < 1 {
			return nil, fmt.Errorf("matrix: cores must be >= 1, got %d", c)
		}
		runtime.GOMAXPROCS(c)
		for _, s := range cfg.ShardsList {
			for _, b := range cfg.BatchList {
				for _, mode := range cfg.Modes {
					leg, err := runMatrixCell(mode, c, s, b, keys, coreCfg)
					if err != nil {
						return nil, err
					}
					out = append(out, leg)
				}
			}
		}
	}
	return out, nil
}

// matrixHash is the fixed multiplicative routing hash every matrix
// cell shares, so cells differ only in execution strategy.
func matrixHash(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 }

// runMatrixCell measures one (mode, cores, shards, batch) cell.
func runMatrixCell(mode string, c, s, b int, keys []uint64, coreCfg core.Config) (matrixLeg, error) {
	g := c // one producer per core
	if mode == "serial" {
		g = 1
	}
	sk, err := shard.New(shard.SketchConfig[uint64]{
		Core: coreCfg, Shards: s, Hash: matrixHash,
	})
	if err != nil {
		return matrixLeg{}, err
	}
	leg := matrixLeg{ModeName: mode, Cores: c}
	var elapsed time.Duration
	switch mode {
	case "serial", "mutex":
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				bt := sk.NewBatcher(b)
				lo, hi := w*len(keys)/g, (w+1)*len(keys)/g
				for _, k := range keys[lo:hi] {
					bt.Add(k)
				}
				bt.Flush()
			}(w)
		}
		wg.Wait()
		elapsed = time.Since(start)
	case "ring", "auto":
		m := shard.ModeRing
		if mode == "auto" {
			m = shard.ModeAuto
		}
		in, err := sk.NewIngest(shard.IngestConfig{Mode: m, Producers: g, Batch: b})
		if err != nil {
			return matrixLeg{}, err
		}
		if mode == "auto" {
			leg.ResolvedMode = in.Mode().String()
		}
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				src := in.Source(w)
				lo, hi := w*len(keys)/g, (w+1)*len(keys)/g
				for _, k := range keys[lo:hi] {
					src.Add(k)
				}
				src.Flush()
			}(w)
		}
		wg.Wait()
		in.Drain()
		elapsed = time.Since(start)
		st := in.Stats()
		leg.Occupancy = st.Occupancy()
		leg.ProducerParks = st.ProducerParks
		leg.OwnerParks = st.OwnerParks
		in.Close()
	default:
		return matrixLeg{}, fmt.Errorf("matrix: unknown mode %q", mode)
	}
	leg.ingestLeg = measureLeg(
		fmt.Sprintf("%s/c%d/s%d/b%d", mode, c, s, b), s, b, g, len(keys), elapsed)
	return leg, nil
}

// queryLoadConfig parameterizes the -queryload benchmark.
type queryLoadConfig struct {
	Window     int
	Packets    int
	Shards     int
	Batch      int
	Goroutines int
	Counters   int // per-pattern budget; total is Counters·H
	V          int // 0: 64·H
	Theta      float64
	QPS        float64
	Profile    trace.Profile
	Seed       uint64
	JSON       bool
	// Audit is the accuracy-trajectory section produced by a -audit
	// fleet run, embedded into the report when both modes are selected.
	Audit *auditReport
}

// queryLoadReport is the machine-readable -queryload output
// (BENCH_query.json).
type queryLoadReport struct {
	Mode       string    `json:"mode"`
	Trace      string    `json:"trace"`
	Window     int       `json:"window"`
	Counters   int       `json:"counters"`
	V          int       `json:"v"`
	Theta      float64   `json:"theta"`
	QPS        float64   `json:"qps"`
	GoMaxProcs int       `json:"gomaxprocs"`
	HostCPUs   int       `json:"host_cpus"`
	Ingest     ingestLeg `json:"ingest"`
	Queries    int       `json:"queries"`
	QueryMean  float64   `json:"query_ns_mean"`
	QueryP50   float64   `json:"query_ns_p50"`
	QueryP99   float64   `json:"query_ns_p99"`
	OutputLen  int       `json:"last_output_len"`
	// Audit is the accuracy-trajectory section (-audit alongside
	// -queryload): observed shadow-oracle error vs the guaranteed Nε
	// bound and capture→apply freshness quantiles for a traced fleet.
	Audit  *auditReport `json:"audit,omitempty"`
	Phases []phaseStat  `json:"phases"`
}

// runQueryLoad drives writer goroutines through PacketBatchers at
// full rate while a monitor goroutine calls OutputTo at the requested
// QPS, and reports both the sustained ingest throughput and the query
// latency distribution.
func runQueryLoad(cfg queryLoadConfig) error {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = shard.DefaultBatchSize
	}
	if cfg.QPS <= 0 {
		return fmt.Errorf("queryload: QPS must be positive, got %v", cfg.QPS)
	}
	hier := hierarchy.OneD{}
	v := cfg.V
	if v == 0 {
		v = 64 * hier.H()
	}
	hh, err := shard.NewHHH(shard.HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hier,
			Window:    cfg.Window,
			Counters:  cfg.Counters * hier.H(),
			V:         v,
			Seed:      cfg.Seed + 1,
		},
		Shards: cfg.Shards,
	})
	if err != nil {
		return err
	}
	var pt phaseTimer
	pt.begin("generate")
	gen, err := trace.NewGenerator(cfg.Profile, cfg.Seed)
	if err != nil {
		return err
	}
	pkts := gen.Generate(cfg.Packets, nil)
	pt.end()

	g := cfg.Goroutines
	if g <= 0 {
		g = cfg.Shards
	}
	// Warm the query pools (snapshots, merged table, scratch) so the
	// measured distribution reflects steady-state monitoring, not the
	// first call's one-time sizing.
	pt.begin("warm")
	_ = hh.Output(cfg.Theta)
	pt.end()
	var wg sync.WaitGroup
	done := make(chan struct{})
	var latencies []time.Duration
	var lastLen int
	queryWg := sync.WaitGroup{}
	queryWg.Add(1)
	go func() {
		defer queryWg.Done()
		interval := time.Duration(float64(time.Second) / cfg.QPS)
		if interval <= 0 { // qps beyond 1e9 truncates to 0; query flat out
			interval = 1
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var out []core.HeavyPrefix
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				qStart := time.Now()
				out = hh.OutputTo(cfg.Theta, out[:0])
				latencies = append(latencies, time.Since(qStart))
				lastLen = len(out)
			}
		}
	}()

	pt.begin("ingest")
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := hh.NewBatcher(cfg.Batch)
			lo, hi := w*len(pkts)/g, (w+1)*len(pkts)/g
			for _, p := range pkts[lo:hi] {
				b.Add(p)
			}
			b.Flush()
		}(w)
	}
	wg.Wait()
	elapsed := pt.end()
	close(done)
	queryWg.Wait()
	if len(latencies) == 0 {
		// The run finished inside the first tick; take one quiescent
		// sample so the report is never empty.
		qStart := time.Now()
		out := hh.Output(cfg.Theta)
		latencies = append(latencies, time.Since(qStart))
		lastLen = len(out)
	}

	slices.Sort(latencies)
	var total time.Duration
	for _, d := range latencies {
		total += d
	}
	report := queryLoadReport{
		Mode: "queryload", Trace: cfg.Profile.Name,
		Window: cfg.Window, Counters: cfg.Counters * hier.H(), V: v,
		Theta: cfg.Theta, QPS: cfg.QPS,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		HostCPUs:   runtime.NumCPU(),
		Ingest:     measureLeg("hhh-queryload", cfg.Shards, cfg.Batch, g, len(pkts), elapsed),
		Queries:    len(latencies),
		QueryMean:  float64(total.Nanoseconds()) / float64(len(latencies)),
		QueryP50:   float64(latencies[len(latencies)/2].Nanoseconds()),
		QueryP99:   float64(latencies[len(latencies)*99/100].Nanoseconds()),
		OutputLen:  lastLen,
		Audit:      cfg.Audit,
		Phases:     pt.phases,
	}
	if cfg.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "metric\tvalue")
	fmt.Fprintf(w, "ingest Mpps\t%.2f\n", report.Ingest.Mpps)
	fmt.Fprintf(w, "queries\t%d\n", report.Queries)
	fmt.Fprintf(w, "query mean\t%s\n", time.Duration(report.QueryMean))
	fmt.Fprintf(w, "query p50\t%s\n", time.Duration(report.QueryP50))
	fmt.Fprintf(w, "query p99\t%s\n", time.Duration(report.QueryP99))
	fmt.Fprintf(w, "last output size\t%d\n", report.OutputLen)
	return w.Flush()
}

// phaseStat is one benchmark phase's wall clock and allocation
// footprint, measured as runtime.MemStats deltas around the phase (so
// allocations from concurrent goroutines inside the phase count too).
type phaseStat struct {
	Name       string  `json:"name"`
	Seconds    float64 `json:"seconds"`
	Allocs     uint64  `json:"allocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// phaseTimer accumulates phaseStats across a benchmark run. begin/end
// pairs must not nest.
type phaseTimer struct {
	phases []phaseStat
	name   string
	start  time.Time
	m0     runtime.MemStats
}

func (t *phaseTimer) begin(name string) {
	t.name = name
	runtime.ReadMemStats(&t.m0)
	t.start = time.Now()
}

// end closes the current phase and returns its wall-clock duration, so
// measured legs can reuse the same interval.
func (t *phaseTimer) end() time.Duration {
	elapsed := time.Since(t.start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	t.phases = append(t.phases, phaseStat{
		Name:       t.name,
		Seconds:    elapsed.Seconds(),
		Allocs:     m1.Mallocs - t.m0.Mallocs,
		AllocBytes: m1.TotalAlloc - t.m0.TotalAlloc,
	})
	return elapsed
}

// measureLeg converts a timed run into the reported metrics.
func measureLeg(name string, shards, batch, goroutines, packets int, elapsed time.Duration) ingestLeg {
	sec := elapsed.Seconds()
	ops := float64(packets) / sec
	return ingestLeg{
		Name: name, Shards: shards, Batch: batch, Goroutines: goroutines,
		Packets: packets, NsPerOp: sec * 1e9 / float64(packets),
		OpsPerSec: ops, Mpps: ops / 1e6,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mementobench:", err)
	os.Exit(1)
}
