// -chaos: the fault-tolerance leg of the -report benchmark. It reruns
// the delta fleet with faultnet injectors on every path — frame drops,
// a one-way partition, controller-side resets, scheduled by packet
// fraction — and scores the healed fleet against the same exact
// oracle, recording what the faults cost in accuracy (target: nothing)
// and what the heal paths did (reconnects, resyncs, coverage repair).

package main

import (
	"fmt"
	"net"
	"time"

	"memento/internal/faultnet"
	"memento/internal/hierarchy"
	"memento/internal/netwide"
)

// chaosLeg is the fault-injected delta fleet's scorecard: the usual
// accuracy/bandwidth point plus the fault and heal counters.
type chaosLeg struct {
	reportLeg
	Reconnects    uint64 `json:"reconnects"`
	InjDrops      uint64 `json:"injected_drops"`
	InjBlackholed uint64 `json:"injected_blackholed"`
	InjResets     uint64 `json:"injected_resets"`
	// CoveredExact reports whether the controller's cumulative
	// coverage ledger converged to the exact per-agent packet counts
	// after heal — the zero-silent-report-loss invariant.
	CoveredExact bool `json:"covered_exact"`
	// F1GapVsDelta is the fault-free delta leg's F1 minus this leg's:
	// the accuracy the faults cost after the heal paths ran (target 0).
	F1GapVsDelta float64 `json:"f1_gap_vs_delta"`
}

// chaos schedule boundaries, as fractions of the packet stream.
const (
	chaosDropsFrom     = 0.25 // agents 0,1 start dropping/segmenting frames
	chaosPartitionFrom = 0.45 // drops heal; last agent loses its way to the controller
	chaosResetFrom     = 0.60 // partition heals; the controller's writes start resetting
	chaosHealFrom      = 0.70 // everything heals; clean convergence tail
)

// runChaosLeg drives the delta fleet through the scripted fault
// schedule and scores the healed result against the truth set.
func runChaosLeg(cfg reportConfig, truth map[hierarchy.Prefix]bool) (chaosLeg, error) {
	params := netwide.Params{
		Budget:    cfg.Budget,
		BatchSize: cfg.Batch,
		Window:    cfg.Window,
	}
	if err := params.Normalize(1); err != nil {
		return chaosLeg{}, err
	}
	ctrl, err := netwide.NewController(netwide.ControllerConfig{
		Hier:     hierarchy.Flows{},
		Params:   params,
		Counters: cfg.Counters,
		Seed:     cfg.Seed + 11,
		// Tight liveness so partitions resolve inside the run: the
		// read deadline frees a partitioned agent's name for redial.
		HandshakeTimeout: 300 * time.Millisecond,
		ReadTimeout:      500 * time.Millisecond,
	})
	if err != nil {
		return chaosLeg{}, err
	}
	defer ctrl.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return chaosLeg{}, err
	}
	ctrlInj := faultnet.NewInjector(cfg.Seed + 500)
	go ctrl.Serve(ctrlInj.WrapListener(ln))

	agents := make([]*netwide.Agent, cfg.Agents)
	injs := make([]*faultnet.Injector, cfg.Agents)
	for i := range agents {
		inj := faultnet.NewInjector(cfg.Seed + 600 + uint64(i))
		injs[i] = inj
		agents[i], err = netwide.DialAgent(ln.Addr().String(), netwide.AgentConfig{
			Name:             fmt.Sprintf("agent-%d", i),
			Params:           params,
			Seed:             cfg.Seed + uint64(i) + 1,
			QueueLen:         1 << 16,
			Report:           netwide.ReportDelta,
			Hier:             hierarchy.Flows{},
			SnapshotWindow:   cfg.Window / cfg.Agents,
			SnapshotCounters: cfg.Counters,
			SnapshotEvery:    max(cfg.Window/cfg.Agents/cfg.Cadence, 1),
			Reconnect:        true,
			BackoffBase:      5 * time.Millisecond,
			BackoffMax:       50 * time.Millisecond,
			HeartbeatEvery:   25 * time.Millisecond,
			Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
				c, err := net.DialTimeout("tcp", addr, timeout)
				if err != nil {
					return nil, err
				}
				return inj.WrapConn(c), nil
			},
		})
		if err != nil {
			return chaosLeg{}, err
		}
		defer agents[i].Close()
	}

	// Drive the identical stream in wall-clock-paced phases. The
	// offline drive is orders of magnitude faster than the wire, so
	// without pacing a fault window would span microseconds and the
	// async writers would ship every frame after heal; pacing each
	// phase across real time makes in-flight frames actually meet the
	// faults, and the settle pauses let the heal paths engage before
	// the next leg starts.
	settle := func() { time.Sleep(150 * time.Millisecond) }
	perAgent := make([]uint64, cfg.Agents)
	stream := newReportStream(cfg.Seed + 77)
	next := 0
	phase := func(to float64, paced bool) {
		end := int(to * float64(cfg.Packets))
		span := end - next
		chunk := max(span/8, 1)
		for ; next < end; next++ {
			if paced && (end-next)%chunk == 0 {
				time.Sleep(25 * time.Millisecond)
			}
			agents[next%cfg.Agents].Observe(stream.next())
			perAgent[next%cfg.Agents]++
		}
	}
	phase(chaosDropsFrom, false) // clean warm-up at full speed
	injs[0].SetFault(faultnet.Fault{Drop: 0.3, Delay: 0.1, DelayBound: time.Millisecond})
	injs[1%cfg.Agents].SetFault(faultnet.Fault{Drop: 0.3, Partial: 0.2})
	phase(chaosPartitionFrom, true)
	injs[0].Heal()
	injs[1%cfg.Agents].Heal()
	settle()
	injs[cfg.Agents-1].Partition(false, true)
	phase(chaosResetFrom, true)
	injs[cfg.Agents-1].Heal()
	settle()
	ctrlInj.SetFault(faultnet.Fault{Reset: 0.4})
	phase(chaosHealFrom, true)
	ctrlInj.Heal()
	settle()
	phase(1, false) // healed convergence tail at full speed
	for _, a := range agents {
		a.Flush()
		if err := a.Err(); err != nil {
			return chaosLeg{}, fmt.Errorf("agent %s: %w", a.Name(), err)
		}
	}

	// Convergence: the coverage ledger must land on the exact packets
	// each agent observed — every frame lost to a fault repaid by a
	// later base or delta.
	covered := func(name string) uint64 {
		for _, st := range ctrl.AgentStats() {
			if st.Name == name {
				return st.Covered
			}
		}
		return 0
	}
	exact := false
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		exact = true
		for i, a := range agents {
			if covered(a.Name()) != perAgent[i] {
				exact = false
				break
			}
		}
		if exact {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	threshold := cfg.Theta * float64(cfg.Window)
	reported := map[hierarchy.Prefix]bool{}
	for _, e := range ctrl.OutputMerged(cfg.Theta) {
		if e.Estimate >= threshold {
			reported[e.Prefix] = true
		}
	}
	leg := chaosLeg{
		reportLeg: reportLeg{
			Name:           "chaos",
			Tau:            1,
			Reports:        ctrl.Reports(),
			Snapshots:      ctrl.Snapshots(),
			Deltas:         ctrl.Deltas(),
			Resyncs:        ctrl.Resyncs(),
			Bytes:          ctrl.BytesIn(),
			BytesPerPacket: float64(ctrl.BytesIn()) / float64(cfg.Packets),
			Reported:       len(reported),
		},
		InjResets:    ctrlInj.Stats().Resets,
		CoveredExact: exact,
	}
	for _, inj := range injs {
		st := inj.Stats()
		leg.InjDrops += st.Drops
		leg.InjBlackholed += st.Blackholed
	}
	for _, a := range agents {
		leg.Reconnects += a.Stats().Reconnects
	}
	for p := range truth {
		if reported[p] {
			leg.TruePositives++
		}
	}
	if len(truth) > 0 {
		leg.Recall = float64(leg.TruePositives) / float64(len(truth))
	}
	if leg.Reported > 0 {
		leg.Precision = float64(leg.TruePositives) / float64(leg.Reported)
	}
	if leg.Recall+leg.Precision > 0 {
		leg.F1 = 2 * leg.Recall * leg.Precision / (leg.Recall + leg.Precision)
	}
	return leg, nil
}
