// -audit: the accuracy-scope benchmark. It drives a traced
// snapshot-shipping fleet (real TCP controller + agents, MsgTraced
// envelopes negotiated in-band) over the skewed report stream while a
// constant-memory shadow oracle (internal/audit) tees off the same
// packets. At interval checkpoints the fleet is quiesced — every
// agent force-ships its current sketch — so the oracle's exact window
// counts and the controller's merged snapshots describe the same
// stream position, and the merged (ε,δ) bounds are audited key by
// key. The emitted trajectory (observed error vs the guaranteed Nε
// bound, capture→apply freshness quantiles, bound_violations_total)
// lands in BENCH_query.json when combined with -queryload.

package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"text/tabwriter"
	"time"

	"memento/internal/audit"
	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/netwide"
	"memento/internal/shard"
)

// auditConfig parameterizes the -audit benchmark.
type auditConfig struct {
	Window    int  // network-wide window W (split across the fleet)
	Packets   int  // stream length
	Agents    int  // measurement points
	Counters  int  // per-agent local sketch (and controller) counters
	Shift     uint // shadow-oracle sampling shift (audit 2^-shift of keys)
	Intervals int  // audit checkpoints across the run
	Seed      uint64
	JSON      bool
}

// auditPoint is one checkpoint of the accuracy trajectory.
type auditPoint struct {
	Pos        uint64  `json:"pos"`          // audited stream position
	Keys       int     `json:"keys"`         // oracle keys in window
	Checks     int     `json:"checks"`       // keys compared
	Violations int     `json:"violations"`   // comparisons outside the bound
	MaxAbsErr  float64 `json:"max_abs_err"`  // worst |upper − exact| this checkpoint
	Bound      float64 `json:"bound"`        // guaranteed Nε bound at this checkpoint
	FreshNs    uint64  `json:"freshness_ns"` // capture→apply p99 so far
}

// auditReport is the accuracy-trajectory section of BENCH_query.json.
type auditReport struct {
	Mode         string       `json:"mode"`
	Window       int          `json:"window"` // merged effective window audited
	Packets      int          `json:"packets"`
	Agents       int          `json:"agents"`
	SampleShift  uint         `json:"sample_shift"`
	Trajectory   []auditPoint `json:"trajectory"`
	ErrP99       uint64       `json:"observed_err_p99"` // shadow-oracle |err| histogram p99
	ErrMax       uint64       `json:"observed_err_max"`
	Bound        float64      `json:"bound"` // final guaranteed Nε bound
	Violations   uint64       `json:"bound_violations_total"`
	Traced       uint64       `json:"traced_reports"`
	FreshP50Ns   uint64       `json:"freshness_ns_p50"`
	FreshP99Ns   uint64       `json:"freshness_ns_p99"`
	AuditedTotal uint64       `json:"sampled_occurrences"`
}

// runAudit executes the fleet audit and returns its report.
func runAudit(cfg auditConfig) (auditReport, error) {
	if cfg.Agents <= 0 {
		cfg.Agents = 4
	}
	if cfg.Intervals <= 0 {
		cfg.Intervals = 8
	}
	if cfg.Counters <= 0 {
		cfg.Counters = 2048
	}
	hier := hierarchy.Flows{}
	params := netwide.Params{Budget: 0.5, BatchSize: 16, Window: cfg.Window}
	if err := params.Normalize(1); err != nil {
		return auditReport{}, err
	}

	// The oracle's window must equal the merged fleet window: probe
	// the per-agent effective window with a throwaway sketch built
	// from the same config the agents will use.
	probe, err := core.NewHHH(core.HHHConfig{
		Hierarchy: hier, Window: cfg.Window / cfg.Agents, Counters: cfg.Counters,
	})
	if err != nil {
		return auditReport{}, err
	}
	perAgent := probe.EffectiveWindow()
	merged := perAgent * cfg.Agents

	aud, err := audit.New(audit.Config{
		Hier:        hier,
		Window:      merged,
		SampleShift: cfg.Shift,
		MaxKeys:     1 << 12,
		Seed:        cfg.Seed + 3,
	})
	if err != nil {
		return auditReport{}, err
	}

	ctrl, err := netwide.NewController(netwide.ControllerConfig{
		Hier:     hier,
		Params:   params,
		Counters: cfg.Counters,
		Seed:     cfg.Seed + 11,
	})
	if err != nil {
		return auditReport{}, err
	}
	defer ctrl.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return auditReport{}, err
	}
	go ctrl.Serve(ln)

	agents := make([]*netwide.Agent, cfg.Agents)
	for i := range agents {
		agents[i], err = netwide.DialAgent(ln.Addr().String(), netwide.AgentConfig{
			Name:             fmt.Sprintf("audit-%d", i),
			Params:           params,
			Seed:             cfg.Seed + uint64(i) + 1,
			Report:           netwide.ReportSnapshot,
			Hier:             hier,
			SnapshotWindow:   cfg.Window / cfg.Agents,
			SnapshotCounters: cfg.Counters,
			SnapshotEvery:    max(perAgent/2, 1),
			TraceReports:     true,
			QueueLen:         1 << 16,
		})
		if err != nil {
			return auditReport{}, err
		}
		defer agents[i].Close()
	}

	rep := auditReport{
		Mode: "audit", Window: merged, Packets: cfg.Packets,
		Agents: cfg.Agents, SampleShift: cfg.Shift,
	}
	stream := newReportStream(cfg.Seed + 77)
	var m shard.Merger
	chunk := cfg.Packets / cfg.Intervals
	pos := 0
	var prevSent uint64
	for ck := 0; ck < cfg.Intervals; ck++ {
		end := pos + chunk
		if ck == cfg.Intervals-1 {
			end = cfg.Packets
		}
		// Strict round-robin keeps the union of the agents' local
		// windows equal to the global tail the oracle maintains.
		for ; pos < end; pos++ {
			p := stream.next()
			agents[pos%cfg.Agents].Observe(p)
			aud.Observe(p)
		}
		// Quiesce: every agent force-ships its live sketch, so the
		// merged view and the oracle agree on the stream position. The
		// writer goroutines ship asynchronously — drained means every
		// written report was absorbed AND each agent's flush snapshot
		// (≥ one new report per agent) made it out.
		for _, a := range agents {
			a.Flush()
			if err := a.Err(); err != nil {
				return rep, fmt.Errorf("agent %s: %w", a.Name(), err)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		drained := false
		for time.Now().Before(deadline) {
			var sent, dropped uint64
			for _, a := range agents {
				sent += a.Sent()
				dropped += a.Dropped()
			}
			if dropped > 0 {
				return rep, fmt.Errorf("checkpoint %d: %d reports dropped under backpressure; raise QueueLen", ck, dropped)
			}
			if sent >= prevSent+uint64(cfg.Agents) && ctrl.Snapshots() >= sent {
				prevSent = sent
				drained = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !drained {
			return rep, fmt.Errorf("checkpoint %d: fleet did not quiesce (%d snapshots absorbed)",
				ck, ctrl.Snapshots())
		}

		aud.Flush()
		snaps := ctrl.MergedSnapshots(nil)
		if len(snaps) != cfg.Agents {
			return rep, fmt.Errorf("checkpoint %d: merged %d snapshots, want %d", ck, len(snaps), cfg.Agents)
		}
		m.Prepare(snaps)
		res := aud.Audit(audit.Funcs{Bounds: m.Bounds, Comp: m.Compensation()})
		m.Release()
		if res.Tainted {
			return rep, fmt.Errorf("checkpoint %d: shadow oracle overflowed; raise -audit-shift", ck)
		}
		fresh := ctrl.CaptureApply()
		rep.Trajectory = append(rep.Trajectory, auditPoint{
			Pos: res.Pos, Keys: res.Keys, Checks: res.Checks,
			Violations: res.Violations, MaxAbsErr: res.MaxAbsErr, Bound: res.Bound,
			FreshNs: fresh.P99(),
		})
		rep.Bound = res.Bound
	}

	errs := aud.Errors()
	fresh := ctrl.CaptureApply()
	rep.ErrP99 = errs.P99()
	rep.ErrMax = errs.Max()
	rep.Violations = aud.Violations()
	rep.Traced = ctrl.TracedReports()
	rep.FreshP50Ns = fresh.P50()
	rep.FreshP99Ns = fresh.P99()
	rep.AuditedTotal = aud.Sampled()
	return rep, nil
}

// runAuditStandalone renders the audit report on its own (the -audit
// flag without -queryload).
func runAuditStandalone(cfg auditConfig) error {
	rep, err := runAudit(cfg)
	if err != nil {
		return err
	}
	if cfg.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "metric\tvalue")
	fmt.Fprintf(w, "merged window\t%d\n", rep.Window)
	fmt.Fprintf(w, "audited keys (last)\t%d\n", rep.Trajectory[len(rep.Trajectory)-1].Keys)
	fmt.Fprintf(w, "sampled occurrences\t%d\n", rep.AuditedTotal)
	fmt.Fprintf(w, "observed err p99\t%d\n", rep.ErrP99)
	fmt.Fprintf(w, "observed err max\t%d\n", rep.ErrMax)
	fmt.Fprintf(w, "guaranteed bound\t%.1f\n", rep.Bound)
	fmt.Fprintf(w, "bound violations\t%d\n", rep.Violations)
	fmt.Fprintf(w, "traced reports\t%d\n", rep.Traced)
	fmt.Fprintf(w, "freshness p50\t%s\n", time.Duration(rep.FreshP50Ns))
	fmt.Fprintf(w, "freshness p99\t%s\n", time.Duration(rep.FreshP99Ns))
	return w.Flush()
}
