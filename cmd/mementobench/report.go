// -report: the accuracy-vs-bandwidth benchmark for the network-wide
// reporting modes. It drives the same skewed stream through three
// real TCP controller/agent fleets — one sampling under the byte
// budget (the paper's protocol), one shipping full sketch snapshots
// at a cadence (the "send everything" baseline as a live mode), and
// one following incremental base+delta chains (internal/delta) — and
// scores each fleet's heavy-hitter set against an exact sliding
// window oracle, reporting recall/precision/F1 next to the measured
// bytes per ingress packet (BENCH_netwide.json).

package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"memento/internal/exact"
	"memento/internal/hierarchy"
	"memento/internal/netwide"
	"memento/internal/rng"
)

// reportConfig parameterizes the -report benchmark.
type reportConfig struct {
	Window   int
	Packets  int
	Agents   int
	Theta    float64
	Budget   float64 // bytes/packet for the sampled fleet
	Batch    int     // samples per sampled report
	Counters int     // controller sketch (and per-agent local sketch) counters
	Cadence  int     // snapshots per agent window in snapshot mode
	Seed     uint64
	JSON     bool
	Chaos    bool // add the fault-injected delta leg (see chaos.go)
}

// reportLeg is one fleet's measured accuracy/bandwidth point.
type reportLeg struct {
	Name           string  `json:"name"`
	Tau            float64 `json:"tau"`
	Reports        uint64  `json:"reports"`
	Snapshots      uint64  `json:"snapshots"`
	Deltas         uint64  `json:"deltas,omitempty"`
	Resyncs        uint64  `json:"resyncs,omitempty"`
	Bytes          uint64  `json:"bytes"`
	BytesPerPacket float64 `json:"bytes_per_packet"`
	Reported       int     `json:"reported"`
	TruePositives  int     `json:"true_positives"`
	Recall         float64 `json:"recall"`
	Precision      float64 `json:"precision"`
	F1             float64 `json:"f1"`
}

// reportOut is the machine-readable -report output.
type reportOut struct {
	Mode       string    `json:"mode"`
	Window     int       `json:"window"`
	Packets    int       `json:"packets"`
	Agents     int       `json:"agents"`
	Theta      float64   `json:"theta"`
	Budget     float64   `json:"budget"`
	Counters   int       `json:"counters"`
	Cadence    int       `json:"cadence"`
	GoMaxProcs int       `json:"gomaxprocs"`
	HostCPUs   int       `json:"host_cpus"`
	TruthSize  int       `json:"truth_size"`
	Sampled    reportLeg `json:"sampled"`
	Snapshot   reportLeg `json:"snapshot"`
	Delta      reportLeg `json:"delta"`
	// F1Delta is Snapshot.F1 − Sampled.F1: positive means the extra
	// bytes bought accuracy.
	F1Delta float64 `json:"f1_delta"`
	// BytesRatio is Snapshot.Bytes / Sampled.Bytes.
	BytesRatio float64 `json:"bytes_ratio"`
	// DeltaF1Gap is Snapshot.F1 − Delta.F1: how much fidelity the
	// incremental chain gives up (target ≤ 0.02).
	DeltaF1Gap float64 `json:"delta_f1_gap"`
	// DeltaBytesRatio is Delta.Bytes / Sampled.Bytes: what
	// snapshot-level fidelity costs over the sampled protocol when
	// only changes ship (target ≤ 5).
	DeltaBytesRatio float64 `json:"delta_bytes_ratio"`
	// Chaos is the fault-injected delta fleet (present with -chaos):
	// same stream, scripted drops/partition/resets, scored after heal.
	Chaos *chaosLeg `json:"chaos,omitempty"`
	// Phases is the per-leg wall clock and allocation footprint.
	Phases []phaseStat `json:"phases"`
}

// reportStream generates the benchmark's skewed flow mix: 60% of
// packets drawn from 16 heavy flows with harmonic weights (shares
// from ~18% down to ~1%, so the threshold lands mid-distribution and
// both fleets face genuine boundary decisions) over a uniform tail.
type reportStream struct {
	src *rng.Source
	cum []float64
}

func newReportStream(seed uint64) *reportStream {
	s := &reportStream{src: rng.New(seed)}
	var total float64
	weights := make([]float64, 16)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	acc := 0.0
	for _, w := range weights {
		acc += w / total
		s.cum = append(s.cum, acc)
	}
	return s
}

func (s *reportStream) next() hierarchy.Packet {
	if s.src.Float64() < 0.6 {
		r := s.src.Float64()
		for i, c := range s.cum {
			if r < c {
				return hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, byte(i+1))}
			}
		}
		return hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, byte(len(s.cum)))}
	}
	return hierarchy.Packet{Src: s.src.Uint32() | 1<<31} // tail, disjoint from heavy range
}

// runReportLeg drives one fleet over the stream and scores it
// against the exact truth set.
func runReportLeg(cfg reportConfig, mode netwide.ReportMode, truth map[hierarchy.Prefix]bool) (reportLeg, error) {
	params := netwide.Params{
		Budget:    cfg.Budget,
		BatchSize: cfg.Batch,
		Window:    cfg.Window,
	}
	if err := params.Normalize(1); err != nil {
		return reportLeg{}, err
	}
	ctrl, err := netwide.NewController(netwide.ControllerConfig{
		Hier:     hierarchy.Flows{},
		Params:   params,
		Counters: cfg.Counters,
		Seed:     cfg.Seed + 11,
	})
	if err != nil {
		return reportLeg{}, err
	}
	defer ctrl.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return reportLeg{}, err
	}
	go ctrl.Serve(ln)

	agents := make([]*netwide.Agent, cfg.Agents)
	for i := range agents {
		acfg := netwide.AgentConfig{
			Name:   fmt.Sprintf("agent-%d", i),
			Params: params,
			Seed:   cfg.Seed + uint64(i) + 1,
			// Reports are scored at the end of the run, so size the
			// queue to absorb the full-rate offline drive.
			QueueLen: 1 << 16,
		}
		if mode == netwide.ReportSnapshot || mode == netwide.ReportDelta {
			acfg.Report = mode
			acfg.Hier = hierarchy.Flows{}
			acfg.SnapshotWindow = cfg.Window / cfg.Agents
			acfg.SnapshotCounters = cfg.Counters
			acfg.SnapshotEvery = max(cfg.Window/cfg.Agents/cfg.Cadence, 1)
		}
		agents[i], err = netwide.DialAgent(ln.Addr().String(), acfg)
		if err != nil {
			return reportLeg{}, err
		}
		defer agents[i].Close()
	}

	stream := newReportStream(cfg.Seed + 77)
	for i := 0; i < cfg.Packets; i++ {
		agents[i%cfg.Agents].Observe(stream.next())
	}
	for _, a := range agents {
		a.Flush()
		if err := a.Err(); err != nil {
			return reportLeg{}, fmt.Errorf("agent %s: %w", a.Name(), err)
		}
	}
	// Drain: wait until the controller's byte ledger stops moving.
	deadline := time.Now().Add(10 * time.Second)
	last := uint64(0)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		cur := ctrl.BytesIn()
		if cur == last && cur > 0 {
			break
		}
		last = cur
	}

	threshold := cfg.Theta * float64(cfg.Window)
	reported := map[hierarchy.Prefix]bool{}
	if mode == netwide.ReportSnapshot || mode == netwide.ReportDelta {
		for _, e := range ctrl.OutputMerged(cfg.Theta) {
			// The Mitigate rule: act on prefixes whose estimate itself
			// reaches the threshold, not on sampling-margin members.
			if e.Estimate >= threshold {
				reported[e.Prefix] = true
			}
		}
	} else {
		for _, e := range ctrl.Output(cfg.Theta) {
			if e.Estimate >= threshold {
				reported[e.Prefix] = true
			}
		}
	}

	// Bytes come from the controller's ledger (what actually arrived);
	// agent-side SentBytes additionally counts Hello frames and
	// anything lost in flight.
	leg := reportLeg{
		Tau:            params.Tau(),
		Reports:        ctrl.Reports(),
		Snapshots:      ctrl.Snapshots(),
		Deltas:         ctrl.Deltas(),
		Resyncs:        ctrl.Resyncs(),
		Bytes:          ctrl.BytesIn(),
		BytesPerPacket: float64(ctrl.BytesIn()) / float64(cfg.Packets),
		Reported:       len(reported),
	}
	switch mode {
	case netwide.ReportSnapshot:
		leg.Name = "snapshot"
		leg.Tau = 1
	case netwide.ReportDelta:
		leg.Name = "delta"
		leg.Tau = 1
	default:
		leg.Name = "sampled"
	}
	for p := range truth {
		if reported[p] {
			leg.TruePositives++
		}
	}
	if len(truth) > 0 {
		leg.Recall = float64(leg.TruePositives) / float64(len(truth))
	}
	if leg.Reported > 0 {
		leg.Precision = float64(leg.TruePositives) / float64(leg.Reported)
	}
	if leg.Recall+leg.Precision > 0 {
		leg.F1 = 2 * leg.Recall * leg.Precision / (leg.Recall + leg.Precision)
	}
	return leg, nil
}

// runReport measures both fleets over the identical stream and emits
// the comparison.
func runReport(cfg reportConfig) error {
	if cfg.Agents <= 0 {
		cfg.Agents = 4
	}
	if cfg.Cadence <= 0 {
		cfg.Cadence = 2
	}
	if cfg.Window%cfg.Agents != 0 {
		return fmt.Errorf("report: window %d not divisible by %d agents", cfg.Window, cfg.Agents)
	}
	var pt phaseTimer
	pt.begin("oracle")
	// Exact truth: one oracle pass over the same deterministic stream.
	oracle, err := exact.NewSlidingWindow[hierarchy.Prefix](cfg.Window)
	if err != nil {
		return err
	}
	stream := newReportStream(cfg.Seed + 77)
	for i := 0; i < cfg.Packets; i++ {
		p := stream.next()
		oracle.Add(hierarchy.Prefix{Src: p.Src, SrcLen: hierarchy.AddrBytes})
	}
	truth := map[hierarchy.Prefix]bool{}
	for p := range oracle.HeavyHitters(cfg.Theta) {
		truth[p] = true
	}
	if len(truth) == 0 {
		return fmt.Errorf("report: no exact heavy hitters at theta %g — lower it", cfg.Theta)
	}
	pt.end()

	pt.begin("sampled")
	sampled, err := runReportLeg(cfg, netwide.ReportSampled, truth)
	pt.end()
	if err != nil {
		return fmt.Errorf("sampled leg: %w", err)
	}
	pt.begin("snapshot")
	snapshot, err := runReportLeg(cfg, netwide.ReportSnapshot, truth)
	pt.end()
	if err != nil {
		return fmt.Errorf("snapshot leg: %w", err)
	}
	pt.begin("delta")
	deltaLeg, err := runReportLeg(cfg, netwide.ReportDelta, truth)
	pt.end()
	if err != nil {
		return fmt.Errorf("delta leg: %w", err)
	}
	var chaos *chaosLeg
	if cfg.Chaos {
		pt.begin("chaos")
		leg, err := runChaosLeg(cfg, truth)
		pt.end()
		if err != nil {
			return fmt.Errorf("chaos leg: %w", err)
		}
		chaos = &leg
	}

	out := reportOut{
		Mode: "report", Window: cfg.Window, Packets: cfg.Packets,
		Agents: cfg.Agents, Theta: cfg.Theta, Budget: cfg.Budget,
		Counters: cfg.Counters, Cadence: cfg.Cadence,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		HostCPUs:   runtime.NumCPU(),
		TruthSize:  len(truth),
		Sampled:    sampled, Snapshot: snapshot, Delta: deltaLeg,
		F1Delta:    snapshot.F1 - sampled.F1,
		DeltaF1Gap: snapshot.F1 - deltaLeg.F1,
		Phases:     pt.phases,
	}
	if sampled.Bytes > 0 {
		out.BytesRatio = float64(snapshot.Bytes) / float64(sampled.Bytes)
		out.DeltaBytesRatio = float64(deltaLeg.Bytes) / float64(sampled.Bytes)
	}
	if chaos != nil {
		chaos.F1GapVsDelta = deltaLeg.F1 - chaos.F1
		out.Chaos = chaos
	}
	if cfg.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "truth: %d heavy flows at theta %g (window %d)\n", out.TruthSize, cfg.Theta, cfg.Window)
	fmt.Fprintln(w, "leg\ttau\treports\tsnapshots\tdeltas\tbytes\tB/pkt\treported\trecall\tprecision\tF1")
	legs := []reportLeg{sampled, snapshot, deltaLeg}
	if chaos != nil {
		legs = append(legs, chaos.reportLeg)
	}
	for _, l := range legs {
		fmt.Fprintf(w, "%s\t%.4f\t%d\t%d\t%d\t%d\t%.3f\t%d\t%.3f\t%.3f\t%.3f\n",
			l.Name, l.Tau, l.Reports, l.Snapshots, l.Deltas, l.Bytes, l.BytesPerPacket,
			l.Reported, l.Recall, l.Precision, l.F1)
	}
	fmt.Fprintf(w, "snapshot vs sampled\t\t\t\t\t%.1fx bytes\t\t\t\t\t%+.3f F1\n", out.BytesRatio, out.F1Delta)
	fmt.Fprintf(w, "delta vs sampled\t\t\t\t\t%.1fx bytes\t\t\t\t\t%+.3f F1 vs snapshot\n", out.DeltaBytesRatio, -out.DeltaF1Gap)
	if chaos != nil {
		fmt.Fprintf(w, "chaos heal\t\t\t\t\t\t\t\t\t\t%+.3f F1 vs delta\n", -chaos.F1GapVsDelta)
		fmt.Fprintf(w, "  faults: %d drops, %d blackholed, %d resets; %d reconnects, %d resyncs; covered exact: %v\n",
			chaos.InjDrops, chaos.InjBlackholed, chaos.InjResets,
			chaos.Reconnects, chaos.Resyncs, chaos.CoveredExact)
	}
	return w.Flush()
}
