// Command mementovet runs the internal/analyzers suite (noalloc,
// lockguard, nopanic, nodet — see DESIGN.md §8) in two modes:
//
//	mementovet [-json] [-analyzers a,b] [packages]
//
// Standalone: load the named packages (default ./...) from source and
// print findings. -json emits a machine-readable report including
// every //memento:allow waiver in the analyzed tree and the waiver
// count, so suppressions are never silent.
//
//	go vet -vettool=$(which mementovet) ./...
//
// Unit-checker: invoked by the go command once per package with a
// .cfg file; also answers the go command's -V=full and -flags
// handshakes. This is the CI gate.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"memento/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet handshakes, before normal flag parsing.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			return printVersion()
		case args[0] == "-flags":
			// No forwardable vet flags: mementovet's own flags are
			// standalone-mode only.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return analyzers.RunUnit(args[0], analyzers.All(), os.Stderr)
		}
	}

	fs := flag.NewFlagSet("mementovet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings and waivers as JSON on stdout")
	sel := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("C", ".", "change to directory before loading packages")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mementovet [-json] [-analyzers noalloc,lockguard,nopanic,nodet] [packages]\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *sel != "" {
		suite = nil
		for _, name := range strings.Split(*sel, ",") {
			a := analyzers.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mementovet: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return standalone(*dir, patterns, suite, *jsonOut, os.Stdout, os.Stderr)
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Waivers     []jsonWaiver     `json:"waivers"`
	WaiverCount int              `json:"waiver_count"`
}

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonWaiver struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Category string `json:"category"`
	Reason   string `json:"reason"`
	Used     bool   `json:"used"`
}

func standalone(dir string, patterns []string, suite []*analyzers.Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	units, modulePath, err := analyzers.Load(dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "mementovet: %v\n", err)
		return 1
	}
	store := analyzers.NewFactStore()
	report := jsonReport{
		Diagnostics: []jsonDiagnostic{},
		Waivers:     []jsonWaiver{},
	}
	for _, u := range units {
		res, err := analyzers.AnalyzePackage(u.Fset, u.Files, u.Pkg, u.Info, modulePath, store, suite)
		if err != nil {
			fmt.Fprintf(stderr, "mementovet: %s: %v\n", u.ImportPath, err)
			return 1
		}
		for _, d := range res.Diagnostics {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			if !jsonOut {
				fmt.Fprintf(stderr, "%s\n", d)
			}
		}
		for _, w := range res.Waivers {
			report.Waivers = append(report.Waivers, jsonWaiver{
				File:     w.Pos.Filename,
				Line:     w.Pos.Line,
				Category: w.Category,
				Reason:   w.Reason,
				Used:     w.Used,
			})
		}
	}
	report.WaiverCount = len(report.Waivers)
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "mementovet: %v\n", err)
			return 1
		}
	} else if len(report.Waivers) > 0 {
		fmt.Fprintf(stderr, "mementovet: %d //memento:allow waiver(s) in effect (run with -json for the list)\n", report.WaiverCount)
	}
	if len(report.Diagnostics) > 0 {
		return 2
	}
	return 0
}

// printVersion answers `mementovet -V=full` in the shape the go
// command's tool-ID parser accepts for external vettools: the last
// field after "version devel" must be a buildID, which we derive from
// the executable so vet results cache correctly across rebuilds.
func printVersion() int {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("mementovet version devel buildID=%x\n", h.Sum(nil))
	return 0
}
