// Command detectiontime regenerates Figure 1b: the expected time to
// detect a new heavy hitter as a function of its rate relative to the
// threshold, for the Interval, Improved-Interval and Window methods.
// Analytic curves are printed alongside a Monte Carlo cross-check with
// exact oracles and with the actual Memento sketch.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"memento/internal/detect"
)

func main() {
	var (
		window = flag.Int("window", 4000, "window size W in packets")
		theta  = flag.Float64("theta", 0.05, "detection threshold θ")
		runs   = flag.Int("runs", 100, "Monte Carlo repetitions per point")
		seed   = flag.Uint64("seed", 1, "deterministic seed")
		rMin   = flag.Float64("rmin", 1.0, "smallest frequency/threshold ratio")
		rMax   = flag.Float64("rmax", 2.5, "largest frequency/threshold ratio")
		steps  = flag.Int("steps", 7, "ratio sweep points")
	)
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	fmt.Fprintln(w, "r=f/θ\tWindow\tImproved\tInterval\tsim:Window\tsim:Improved\tsim:Interval\tsim:Memento")
	for i := 0; i < *steps; i++ {
		r := *rMin + (*rMax-*rMin)*float64(i)/float64(*steps-1)
		cfg := detect.SimConfig{
			Window: *window, Theta: *theta, Ratio: r, Runs: *runs, Seed: *seed,
		}
		sims := make(map[detect.Method]float64)
		for _, m := range []detect.Method{
			detect.MethodWindow, detect.MethodImprovedInterval,
			detect.MethodInterval, detect.MethodMemento,
		} {
			res, err := detect.Simulate(m, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "detectiontime:", err)
				os.Exit(1)
			}
			sims[m] = res.MeanDelay
		}
		fmt.Fprintf(w, "%.2f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r,
			detect.WindowDelay(r), detect.ImprovedIntervalDelay(r), detect.IntervalDelay(r),
			sims[detect.MethodWindow], sims[detect.MethodImprovedInterval],
			sims[detect.MethodInterval], sims[detect.MethodMemento])
	}
	fmt.Fprintln(w, "\nDelays are in windows; the Window column is the optimal detection time.")
}
