// Package lb implements the measurement-enabled HTTP load balancer of
// the paper's testbed (Section 6.3). The paper extended HAProxy 1.8.1
// with ACL capabilities to rate-limit or block entire subnets and to
// feed a network-wide measurement controller; this package provides
// the same three capabilities on the Go standard library:
//
//   - an HTTP reverse proxy balancing requests across backends,
//   - a subnet ACL applying controller verdicts (deny / tarpit), and
//   - a per-request measurement hook feeding a netwide.Agent.
//
// Client identity: real deployments take the peer address; the flood
// generator (like the paper's NFQUEUE tool) cannot spoof raw IPs
// without privileges, so the balancer also honours X-Forwarded-For
// when TrustForwardedFor is set — the standard proxy-protocol stand-in
// documented in DESIGN.md §2.
package lb

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"memento/internal/hierarchy"
	"memento/internal/netwide"
)

// ACL holds the current subnet verdicts. It is safe for concurrent
// use: lookups are lock-free on a copy-on-write table.
type ACL struct {
	mu    sync.Mutex
	table atomic.Pointer[map[aclKey]netwide.Action]
}

// aclKey identifies a masked subnet at a prefix length.
type aclKey struct {
	addr uint32
	keep uint8
}

// NewACL returns an empty ACL (everything allowed).
func NewACL() *ACL {
	a := &ACL{}
	empty := map[aclKey]netwide.Action{}
	a.table.Store(&empty)
	return a
}

// Apply installs verdicts; ActionAllow removes an entry.
func (a *ACL) Apply(vs []netwide.Verdict) {
	a.mu.Lock()
	defer a.mu.Unlock()
	old := *a.table.Load()
	next := make(map[aclKey]netwide.Action, len(old)+len(vs))
	for k, v := range old {
		next[k] = v
	}
	for _, v := range vs {
		k := aclKey{addr: hierarchy.MaskBytes(v.Subnet, v.PrefixBytes), keep: v.PrefixBytes}
		if v.Act == netwide.ActionAllow {
			delete(next, k)
		} else {
			next[k] = v.Act
		}
	}
	a.table.Store(&next)
}

// Lookup returns the action for an address: the most specific matching
// subnet wins; no match means allow.
func (a *ACL) Lookup(addr uint32) netwide.Action {
	table := *a.table.Load()
	for keep := uint8(hierarchy.AddrBytes); ; keep-- {
		if act, ok := table[aclKey{addr: hierarchy.MaskBytes(addr, keep), keep: keep}]; ok {
			return act
		}
		if keep == 0 {
			return netwide.ActionAllow
		}
	}
}

// Len returns the number of installed entries.
func (a *ACL) Len() int { return len(*a.table.Load()) }

// Observer receives one event per admitted request; netwide.Agent
// and shard.HHH satisfy it. A monitoring probe against a shard.HHH
// observer (Output/OutputTo for ACL decisions or periodic reports)
// holds each shard lock only for a snapshot copy, so probing never
// stalls the request path for the duration of the heavy-hitter
// computation.
type Observer interface {
	Observe(p hierarchy.Packet)
}

// BatchSink consumes measurement events in batches. Implementations
// MUST be safe for concurrent UpdateBatch calls: the observer hands
// off full buffers outside its own lock, so two handler goroutines
// can flush simultaneously. shard.HHH satisfies it (use Shards: 1
// for a single mutex-guarded sketch); a bare core.HHH does not.
type BatchSink interface {
	UpdateBatch(ps []hierarchy.Packet)
}

// BatchingObserver adapts a BatchSink to the per-request Observer
// hook: events accumulate in a small buffer and flush through the
// sink's batched geometric-skip path, amortizing the sink's lock and
// sampler work across requests. Handler goroutines only contend on
// the short append critical section; the batch hand-off to the sink
// happens outside the buffer lock (full buffers are recycled through
// a pool, so concurrent flushes do not block each other).
type BatchingObserver struct {
	sink BatchSink
	size int
	mu   sync.Mutex
	buf  []hierarchy.Packet
	pool sync.Pool
}

// NewBatchingObserver wraps sink with an event buffer of the given
// size (<= 0 selects 256). Call Flush before reading final results —
// e.g. on shutdown or ahead of a monitoring probe; up to size-1
// events may otherwise sit buffered indefinitely.
func NewBatchingObserver(sink BatchSink, size int) *BatchingObserver {
	if size <= 0 {
		size = 256
	}
	o := &BatchingObserver{sink: sink, size: size}
	o.pool.New = func() any {
		buf := make([]hierarchy.Packet, 0, size)
		return &buf
	}
	o.buf = *o.pool.Get().(*[]hierarchy.Packet)
	return o
}

// Observe implements Observer.
func (o *BatchingObserver) Observe(p hierarchy.Packet) {
	o.mu.Lock()
	o.buf = append(o.buf, p)
	if len(o.buf) < o.size {
		o.mu.Unlock()
		return
	}
	full := o.buf
	o.buf = (*o.pool.Get().(*[]hierarchy.Packet))[:0]
	o.mu.Unlock()
	o.deliver(full)
}

// Flush forwards any buffered events to the sink immediately.
func (o *BatchingObserver) Flush() {
	o.mu.Lock()
	if len(o.buf) == 0 {
		o.mu.Unlock()
		return
	}
	full := o.buf
	o.buf = (*o.pool.Get().(*[]hierarchy.Packet))[:0]
	o.mu.Unlock()
	o.deliver(full)
}

// deliver hands a full buffer to the sink and recycles it.
func (o *BatchingObserver) deliver(full []hierarchy.Packet) {
	o.sink.UpdateBatch(full)
	full = full[:0]
	o.pool.Put(&full)
}

// Config parameterizes a Balancer.
type Config struct {
	// Backends are the upstream server URLs (round-robin). At least
	// one is required.
	Backends []string
	// Observer receives measurement events; nil disables measurement.
	Observer Observer
	// ACL applies subnet verdicts; nil allows everything.
	ACL *ACL
	// TrustForwardedFor accepts the client IP from X-Forwarded-For
	// (testbed mode; see the package comment).
	TrustForwardedFor bool
	// TarpitDelay is how long tarpitted requests are held before the
	// error response (HAProxy's timeout tarpit; default 500ms).
	TarpitDelay time.Duration
}

// Balancer is the HTTP reverse-proxy load balancer.
type Balancer struct {
	cfg       Config
	proxies   []*httputil.ReverseProxy
	rr        atomic.Uint64
	served    atomic.Uint64
	denied    atomic.Uint64
	tarpitted atomic.Uint64
}

// New validates cfg and builds a Balancer.
func New(cfg Config) (*Balancer, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("lb: at least one backend required")
	}
	if cfg.TarpitDelay == 0 {
		cfg.TarpitDelay = 500 * time.Millisecond
	}
	b := &Balancer{cfg: cfg}
	for _, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("lb: backend %q: %w", raw, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("lb: backend %q needs scheme and host", raw)
		}
		b.proxies = append(b.proxies, httputil.NewSingleHostReverseProxy(u))
	}
	return b, nil
}

// Served, Denied and Tarpitted report request counts by outcome.
func (b *Balancer) Served() uint64    { return b.served.Load() }
func (b *Balancer) Denied() uint64    { return b.denied.Load() }
func (b *Balancer) Tarpitted() uint64 { return b.tarpitted.Load() }

// ClientIP extracts the request's client address per the balancer's
// trust configuration.
func (b *Balancer) ClientIP(r *http.Request) (uint32, error) {
	if b.cfg.TrustForwardedFor {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			// First hop only; the rest is downstream proxies.
			for i := 0; i < len(xff); i++ {
				if xff[i] == ',' {
					xff = xff[:i]
					break
				}
			}
			return parseIPv4(xff)
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return parseIPv4(host)
}

// parseIPv4 converts a dotted quad to the packed representation.
func parseIPv4(s string) (uint32, error) {
	ip := net.ParseIP(s)
	if ip == nil {
		return 0, fmt.Errorf("lb: unparseable address %q", s)
	}
	v4 := ip.To4()
	if v4 == nil {
		return 0, fmt.Errorf("lb: non-IPv4 address %q", s)
	}
	return uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3]), nil
}

// ServeHTTP implements http.Handler: ACL check, measurement, proxy.
func (b *Balancer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	src, err := b.ClientIP(r)
	if err != nil {
		http.Error(w, "cannot determine client address", http.StatusBadRequest)
		return
	}
	if b.cfg.ACL != nil {
		switch b.cfg.ACL.Lookup(src) {
		case netwide.ActionDeny:
			b.denied.Add(1)
			http.Error(w, "denied by subnet ACL", http.StatusForbidden)
			return
		case netwide.ActionTarpit:
			b.tarpitted.Add(1)
			// Hold the connection to slow the attacker down, then fail.
			select {
			case <-time.After(b.cfg.TarpitDelay):
			case <-r.Context().Done():
				return
			}
			http.Error(w, "tarpitted", http.StatusForbidden)
			return
		}
	}
	if b.cfg.Observer != nil {
		b.cfg.Observer.Observe(hierarchy.Packet{Src: src})
	}
	b.served.Add(1)
	idx := int(b.rr.Add(1)-1) % len(b.proxies)
	b.proxies[idx].ServeHTTP(w, r)
}

// ApplyVerdictsFrom consumes verdicts from ch (a netwide.Agent's
// Verdicts channel) until it closes, applying each batch to the ACL.
// Run it in a goroutine.
func (b *Balancer) ApplyVerdictsFrom(ch <-chan []netwide.Verdict) {
	if b.cfg.ACL == nil {
		return
	}
	for vs := range ch {
		b.cfg.ACL.Apply(vs)
	}
}
