package lb

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/netwide"
	"memento/internal/shard"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no backends should fail")
	}
	if _, err := New(Config{Backends: []string{"://bad"}}); err == nil {
		t.Error("unparseable backend should fail")
	}
	if _, err := New(Config{Backends: []string{"just-a-host"}}); err == nil {
		t.Error("scheme-less backend should fail")
	}
}

// backendPair spins up n recording backends and a balancer over them.
func backendPair(t *testing.T, n int, cfg Config) (*Balancer, []*int, func()) {
	t.Helper()
	counts := make([]*int, n)
	var mu sync.Mutex
	var servers []*httptest.Server
	var urls []string
	for i := 0; i < n; i++ {
		c := new(int)
		counts[i] = c
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			*c++
			mu.Unlock()
			fmt.Fprint(w, "ok")
		}))
		servers = append(servers, s)
		urls = append(urls, s.URL)
	}
	cfg.Backends = urls
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	return b, counts, cleanup
}

func TestRoundRobin(t *testing.T) {
	b, counts, cleanup := backendPair(t, 3, Config{})
	defer cleanup()
	front := httptest.NewServer(b)
	defer front.Close()

	for i := 0; i < 9; i++ {
		resp, err := http.Get(front.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	for i, c := range counts {
		if *c != 3 {
			t.Fatalf("backend %d served %d, want 3", i, *c)
		}
	}
	if b.Served() != 9 {
		t.Fatalf("Served = %d", b.Served())
	}
}

// obsRecorder captures Observe calls.
type obsRecorder struct {
	mu   sync.Mutex
	pkts []hierarchy.Packet
}

func (o *obsRecorder) Observe(p hierarchy.Packet) {
	o.mu.Lock()
	o.pkts = append(o.pkts, p)
	o.mu.Unlock()
}

func TestMeasurementHookAndForwardedFor(t *testing.T) {
	obs := &obsRecorder{}
	b, _, cleanup := backendPair(t, 1, Config{Observer: obs, TrustForwardedFor: true})
	defer cleanup()
	front := httptest.NewServer(b)
	defer front.Close()

	req, _ := http.NewRequest(http.MethodGet, front.URL, nil)
	req.Header.Set("X-Forwarded-For", "10.20.30.40, 1.2.3.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.pkts) != 1 {
		t.Fatalf("observed %d packets, want 1", len(obs.pkts))
	}
	if want := hierarchy.IPv4(10, 20, 30, 40); obs.pkts[0].Src != want {
		t.Fatalf("observed %08x, want %08x (first XFF hop)", obs.pkts[0].Src, want)
	}
}

func TestForwardedForIgnoredWhenUntrusted(t *testing.T) {
	obs := &obsRecorder{}
	b, _, cleanup := backendPair(t, 1, Config{Observer: obs, TrustForwardedFor: false})
	defer cleanup()
	front := httptest.NewServer(b)
	defer front.Close()

	req, _ := http.NewRequest(http.MethodGet, front.URL, nil)
	req.Header.Set("X-Forwarded-For", "10.20.30.40")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.pkts) != 1 {
		t.Fatalf("observed %d packets", len(obs.pkts))
	}
	if obs.pkts[0].Src == hierarchy.IPv4(10, 20, 30, 40) {
		t.Fatal("untrusted XFF must not be honoured")
	}
}

func TestACLDeny(t *testing.T) {
	acl := NewACL()
	b, counts, cleanup := backendPair(t, 1, Config{ACL: acl, TrustForwardedFor: true})
	defer cleanup()
	front := httptest.NewServer(b)
	defer front.Close()

	acl.Apply([]netwide.Verdict{{Subnet: hierarchy.IPv4(66, 0, 0, 0), PrefixBytes: 1, Act: netwide.ActionDeny}})

	get := func(ip string) int {
		req, _ := http.NewRequest(http.MethodGet, front.URL, nil)
		req.Header.Set("X-Forwarded-For", ip)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("66.1.2.3"); got != http.StatusForbidden {
		t.Fatalf("blocked subnet returned %d", got)
	}
	if got := get("67.1.2.3"); got != http.StatusOK {
		t.Fatalf("allowed address returned %d", got)
	}
	if b.Denied() != 1 || *counts[0] != 1 {
		t.Fatalf("denied=%d backend=%d", b.Denied(), *counts[0])
	}
}

func TestACLTarpitDelays(t *testing.T) {
	acl := NewACL()
	b, _, cleanup := backendPair(t, 1, Config{
		ACL: acl, TrustForwardedFor: true, TarpitDelay: 100 * time.Millisecond,
	})
	defer cleanup()
	front := httptest.NewServer(b)
	defer front.Close()

	acl.Apply([]netwide.Verdict{{Subnet: hierarchy.IPv4(9, 0, 0, 0), PrefixBytes: 1, Act: netwide.ActionTarpit}})
	req, _ := http.NewRequest(http.MethodGet, front.URL, nil)
	req.Header.Set("X-Forwarded-For", "9.9.9.9")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if took := time.Since(start); took < 100*time.Millisecond {
		t.Fatalf("tarpit answered in %v, want ≥ 100ms", took)
	}
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tarpit status %d", resp.StatusCode)
	}
	if b.Tarpitted() != 1 {
		t.Fatalf("Tarpitted = %d", b.Tarpitted())
	}
}

func TestACLSpecificityAndUnblock(t *testing.T) {
	acl := NewACL()
	// Deny 10/8 but tarpit the more specific 10.1/16: specificity wins.
	acl.Apply([]netwide.Verdict{
		{Subnet: hierarchy.IPv4(10, 0, 0, 0), PrefixBytes: 1, Act: netwide.ActionDeny},
		{Subnet: hierarchy.IPv4(10, 1, 0, 0), PrefixBytes: 2, Act: netwide.ActionTarpit},
	})
	if got := acl.Lookup(hierarchy.IPv4(10, 1, 5, 5)); got != netwide.ActionTarpit {
		t.Fatalf("specific subnet: %v", got)
	}
	if got := acl.Lookup(hierarchy.IPv4(10, 2, 5, 5)); got != netwide.ActionDeny {
		t.Fatalf("covering subnet: %v", got)
	}
	if got := acl.Lookup(hierarchy.IPv4(11, 0, 0, 1)); got != netwide.ActionAllow {
		t.Fatalf("unrelated address: %v", got)
	}
	// Allow removes the entry.
	acl.Apply([]netwide.Verdict{{Subnet: hierarchy.IPv4(10, 0, 0, 0), PrefixBytes: 1, Act: netwide.ActionAllow}})
	if got := acl.Lookup(hierarchy.IPv4(10, 2, 5, 5)); got != netwide.ActionAllow {
		t.Fatalf("after unblock: %v", got)
	}
	if acl.Len() != 1 {
		t.Fatalf("ACL entries = %d, want 1", acl.Len())
	}
}

func TestApplyVerdictsFromChannel(t *testing.T) {
	acl := NewACL()
	b, _, cleanup := backendPair(t, 1, Config{ACL: acl})
	defer cleanup()
	ch := make(chan []netwide.Verdict)
	done := make(chan struct{})
	go func() {
		b.ApplyVerdictsFrom(ch)
		close(done)
	}()
	ch <- []netwide.Verdict{{Subnet: hierarchy.IPv4(5, 0, 0, 0), PrefixBytes: 1, Act: netwide.ActionDeny}}
	close(ch)
	<-done
	if acl.Lookup(hierarchy.IPv4(5, 5, 5, 5)) != netwide.ActionDeny {
		t.Fatal("verdict from channel not applied")
	}
}

func TestParseIPv4(t *testing.T) {
	if v, err := parseIPv4("1.2.3.4"); err != nil || v != hierarchy.IPv4(1, 2, 3, 4) {
		t.Fatalf("parseIPv4: %v %v", v, err)
	}
	for _, bad := range []string{"", "nope", "1.2.3", "::1"} {
		if _, err := parseIPv4(bad); err == nil {
			t.Errorf("parseIPv4(%q) should fail", bad)
		}
	}
}

func TestBadClientAddress(t *testing.T) {
	b, _, cleanup := backendPair(t, 1, Config{TrustForwardedFor: true})
	defer cleanup()
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set("X-Forwarded-For", "garbage")
	rec := httptest.NewRecorder()
	b.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}

// countingSink records batch deliveries for BatchingObserver tests.
type countingSink struct {
	mu      sync.Mutex
	events  int
	batches int
}

func (c *countingSink) UpdateBatch(ps []hierarchy.Packet) {
	c.mu.Lock()
	c.events += len(ps)
	c.batches++
	c.mu.Unlock()
}

func TestBatchingObserverForwardsEverything(t *testing.T) {
	sink := &countingSink{}
	obs := NewBatchingObserver(sink, 8)
	const n = 8*5 + 3
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				obs.Observe(hierarchy.Packet{Src: uint32(g<<16 | i)})
			}
		}(g)
	}
	wg.Wait()
	obs.Flush()
	if sink.events != 4*n {
		t.Fatalf("sink received %d events, want %d", sink.events, 4*n)
	}
	if sink.batches < 4*n/8 {
		t.Errorf("suspiciously few batches: %d", sink.batches)
	}
	// Flush with an empty buffer is a no-op.
	before := sink.batches
	obs.Flush()
	if sink.batches != before {
		t.Error("empty Flush reached the sink")
	}
}

// TestBalancerWithShardedObserver drives the proxy end to end with a
// sharded H-Memento behind a BatchingObserver — the concurrent
// measurement pipeline the shard layer exists for.
func TestBalancerWithShardedObserver(t *testing.T) {
	hh := shard.MustNewHHH(shard.HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 12, Counters: 64 * 5, V: 5, Seed: 4,
		},
		Shards: 2,
	})
	obs := NewBatchingObserver(hh, 16)
	b, _, cleanup := backendPair(t, 1, Config{Observer: obs, TrustForwardedFor: true})
	defer cleanup()

	const requests = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests/4; i++ {
				req := httptest.NewRequest(http.MethodGet, "/", nil)
				req.Header.Set("X-Forwarded-For", "10.0.0.1")
				b.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(g)
	}
	wg.Wait()
	obs.Flush()
	if got := hh.Updates(); got != requests {
		t.Fatalf("sharded observer saw %d packets, want %d", got, requests)
	}
	// All 200 requests come from one client; the one-sided estimate
	// must not undercount materially (a vacuous >0 check would pass
	// even if the pipeline dropped everything, since Memento's Query
	// has a positive floor for absent keys).
	p := hierarchy.OneD{}.Prefix(hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, 1)}, 0)
	if est := hh.Query(p); est < requests/2 {
		t.Errorf("estimate %v for the only client; want at least %d", est, requests/2)
	}
}
