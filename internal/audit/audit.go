// Package audit is the online (ε,δ) accuracy plane: a constant-memory
// shadow oracle that maintains EXACT sliding-window counts for a
// small, deterministic, hash-sampled set of keys and periodically
// compares them against the sketch's estimates. The observed error
// distribution, the guaranteed error bound and — the invariant the
// whole repo exists to uphold — a bound-violation counter that must
// stay zero are exported through the obs plane (DESIGN.md §11).
//
// Sampling is by key, not by packet: a key is audited iff the low
// SampleShift bits of its hash are zero, so every occurrence of an
// audited key is counted and the exact count is exact, not an
// estimate of an estimate. The oracle's memory is fixed at
// construction (an open-addressing key table plus an occurrence FIFO
// ring); when traffic concentrates so hard that either fills, the
// auditor taints itself for one full window instead of reporting
// counts it knows are short — a taint suppresses violation verdicts,
// never manufactures them.
//
// Concurrency contract: Observe/ObserveHashed/Flush belong to ONE
// goroutine (attach the auditor to a single shard.PacketBatcher or
// drive it from the generator loop); per packet they cost one
// position increment, one hash compare and a staged append, with the
// table/FIFO work amortized under an internal mutex every SyncEvery
// packets. Audit runs under the same mutex from any goroutine, off
// the hot path.
package audit

import (
	"errors"
	"math"
	"sync"

	"memento/internal/hierarchy"
	"memento/internal/obs"
)

// Estimator is the query surface the auditor compares against:
// conservative bounds for one prefix plus the additive sampling
// compensation. shard.HHH satisfies it directly; merged fleet views
// adapt through Funcs.
type Estimator interface {
	// QueryBounds returns conservative bounds for p's window count:
	// true ≤ upper (+compensation) and true ≥ lower (−compensation).
	QueryBounds(p hierarchy.Prefix) (upper, lower float64)
	// Compensation is the additive slack of sampled deployments (0
	// when every packet is processed).
	Compensation() float64
}

// Funcs adapts a closure-based bounds query (e.g. a prepared
// shard.Merger over controller-held fleet snapshots) to Estimator.
type Funcs struct {
	Bounds func(p hierarchy.Prefix) (upper, lower float64)
	Comp   float64
}

func (f Funcs) QueryBounds(p hierarchy.Prefix) (upper, lower float64) { return f.Bounds(p) }
func (f Funcs) Compensation() float64                                 { return f.Comp }

// Config parameterizes an Auditor.
type Config struct {
	// Hier is the audited instance's prefix domain; keys are its
	// fully-specified prefixes. Required.
	Hier hierarchy.Hierarchy
	// Window is the exact-count window W, in packets. Match the
	// audited instance's EffectiveWindow (the bound being audited is
	// over that window). Required.
	Window int
	// SampleShift sets the key sampling rate 2^-shift: a key is
	// audited iff the low shift bits of its hash are zero. 0 audits
	// every key (tests, small domains). Max 32.
	SampleShift uint
	// MaxKeys bounds the audited key set; 0 defaults to 1024.
	MaxKeys int
	// MaxOccurrences bounds the in-window occurrence FIFO; 0 defaults
	// to max(4·MaxKeys, 1<<16). If audited keys collectively occupy
	// more of the window than this, the auditor taints rather than
	// undercounts.
	MaxOccurrences int
	// SyncEvery is the staged-apply cadence in packets; 0 defaults to
	// 1024. Smaller values tighten the lag between the hot-path
	// position and the applied table at the cost of more mutex
	// traffic.
	SyncEvery int
	// Seed salts the default key hash (hierarchy.PrefixHasher). Fix it
	// for reproducible sample sets.
	Seed uint64
	// Hash overrides the key hash (tests force-sample keys with it).
	Hash func(hierarchy.Prefix) uint64
}

// staged is one sampled occurrence awaiting its amortized apply.
type staged struct {
	key hierarchy.Prefix
	h   uint64
	pos uint64
}

// occ is one in-window occurrence of an audited key.
type occ struct {
	key hierarchy.Prefix
	h   uint64
	pos uint64
}

// entry is one audited key's table slot.
type entry struct {
	key   hierarchy.Prefix
	h     uint64
	count uint64
	used  bool
}

// stageCap is the fixed hot-path staging buffer; a full stage forces
// a sync regardless of SyncEvery.
const stageCap = 256

// Auditor is the shadow oracle. The zero value is not usable; build
// with New. A nil *Auditor is a disabled instrument: Observe and
// Audit on it are no-ops.
type Auditor struct {
	// Hot-path state, owned by the single observing goroutine.
	pos       uint64 // packets observed (1-based position of the latest)
	lastSync  uint64 // pos at the last staged apply
	nstage    int
	stage     [stageCap]staged
	mask      uint64
	window    uint64
	syncEvery uint64
	hash      func(hierarchy.Prefix) uint64
	hier      hierarchy.Hierarchy

	mu sync.Mutex
	// Guarded by mu.
	table        []entry // open addressing, power-of-two, linear probe
	keys         int
	fifo         []occ // occurrence ring
	fifoHead     int
	fifoLen      int
	appliedPos   uint64
	taintedUntil uint64  // violation verdicts suppressed while appliedPos < this
	lastBound    float64 // max (band + comp) over keys in the last Audit pass

	// Instruments: always allocated so accessors and registry exports
	// share cells.
	sampled    *obs.Counter
	checks     *obs.Counter
	violations *obs.Counter
	overflows  *obs.Counter
	skipped    *obs.Counter
	errHist    obs.Histogram
}

// New validates cfg and builds an auditor. All memory is allocated
// here; the hot path never grows anything.
func New(cfg Config) (*Auditor, error) {
	if cfg.Hier == nil {
		return nil, errors.New("audit: Config.Hier is required")
	}
	if cfg.Window <= 0 {
		return nil, errors.New("audit: Config.Window must be positive")
	}
	if cfg.SampleShift > 32 {
		return nil, errors.New("audit: Config.SampleShift above 32")
	}
	maxKeys := cfg.MaxKeys
	if maxKeys <= 0 {
		maxKeys = 1024
	}
	maxOcc := cfg.MaxOccurrences
	if maxOcc <= 0 {
		maxOcc = max(4*maxKeys, 1<<16)
	}
	syncEvery := cfg.SyncEvery
	if syncEvery <= 0 {
		syncEvery = 1024
	}
	hash := cfg.Hash
	if hash == nil {
		hash = hierarchy.PrefixHasher(cfg.Seed)
	}
	// Table capacity: next power of two holding maxKeys at ≤1/2 load,
	// so linear probes stay short even at the key cap.
	tcap := 16
	for tcap < 2*maxKeys {
		tcap <<= 1
	}
	fcap := 1
	for fcap < maxOcc {
		fcap <<= 1
	}
	return &Auditor{
		mask:       (uint64(1) << cfg.SampleShift) - 1,
		window:     uint64(cfg.Window),
		syncEvery:  uint64(syncEvery),
		hash:       hash,
		hier:       cfg.Hier,
		table:      make([]entry, tcap),
		fifo:       make([]occ, fcap),
		sampled:    &obs.Counter{},
		checks:     &obs.Counter{},
		violations: &obs.Counter{},
		overflows:  &obs.Counter{},
		skipped:    &obs.Counter{},
	}, nil
}

// maxKeysCap returns how many keys the table admits (1/2 load).
func (a *Auditor) maxKeysCap() int { return len(a.table) / 2 }

// Observe feeds one packet: the position advances for every packet,
// and occurrences of sampled keys are staged for the amortized apply.
// Single-writer; see the package contract.
//
//memento:noalloc
func (a *Auditor) Observe(p hierarchy.Packet) {
	if a == nil {
		return
	}
	f := a.hier.Fully(p)
	a.ObserveHashed(f, a.hash(f))
}

// ObservePacket is the batcher tee's fast path: callers hand the
// packet plus any key-deterministic hash they already computed
// (shard.PacketBatcher reuses its shard-routing hash, so the audited
// hot path hashes each packet exactly once). The fully-specified key
// is only materialized for the 2^-shift sampled fraction, keeping the
// common case to one increment, one mask test and one cadence test.
//
// The sync cadence is evaluated when a sampled packet stages (and
// when the stage fills), not per packet: the unsampled fast path must
// inline into the batcher's Add, and the extra apply lag this costs —
// the expected gap between sampled packets, 2^shift positions — is
// noise against SyncEvery. Quiesced audits Flush first regardless.
//
//memento:noalloc
func (a *Auditor) ObservePacket(p hierarchy.Packet, h uint64) {
	if a == nil {
		return
	}
	a.pos++
	if h&a.mask == 0 {
		a.stagePacket(p, h)
	}
}

// stagePacket materializes the sampled packet's key and stages it.
//
//memento:noalloc
func (a *Auditor) stagePacket(p hierarchy.Packet, h uint64) {
	a.stageOcc(a.hier.Fully(p), h)
}

// ObserveHashed is ObservePacket for callers that already hold the
// fully-specified key.
//
//memento:noalloc
func (a *Auditor) ObserveHashed(key hierarchy.Prefix, h uint64) {
	if a == nil {
		return
	}
	a.pos++
	if h&a.mask == 0 {
		a.stageOcc(key, h)
	}
}

// stageOcc stages one sampled occurrence, applying when the stage
// fills or the sync cadence lapses.
//
//memento:noalloc
func (a *Auditor) stageOcc(key hierarchy.Prefix, h uint64) {
	a.sampled.Inc()
	a.stage[a.nstage] = staged{key: key, h: h, pos: a.pos}
	a.nstage++
	if a.nstage == stageCap || a.pos-a.lastSync >= a.syncEvery {
		a.sync()
	}
}

// Flush applies every staged occurrence now. Call it before Audit
// when the stream is quiesced so the oracle and the sketch describe
// the same window position. Owner goroutine only.
func (a *Auditor) Flush() {
	if a == nil {
		return
	}
	a.sync()
}

// sync applies the staged occurrences and evicts what slid out of the
// window, all under one mutex acquisition.
//
//memento:noalloc
func (a *Auditor) sync() {
	a.lastSync = a.pos
	a.mu.Lock()
	for i := 0; i < a.nstage; i++ {
		a.applyLocked(a.stage[i])
	}
	a.nstage = 0
	a.appliedPos = a.pos
	a.evictLocked()
	a.mu.Unlock()
}

// applyLocked inserts one occurrence into the table and FIFO, or
// taints the auditor when either is full (a short count must suppress
// verdicts, never fabricate a violation).
func (a *Auditor) applyLocked(s staged) {
	if a.fifoLen == len(a.fifo) {
		a.taintLocked(s.pos)
		return
	}
	mask := len(a.table) - 1
	i := int(s.h) & mask
	for a.table[i].used {
		if a.table[i].h == s.h && a.table[i].key == s.key {
			a.table[i].count++
			a.pushOccLocked(s)
			return
		}
		i = (i + 1) & mask
	}
	if a.keys >= a.maxKeysCap() {
		a.taintLocked(s.pos)
		return
	}
	a.table[i] = entry{key: s.key, h: s.h, count: 1, used: true}
	a.keys++
	a.pushOccLocked(s)
}

// pushOccLocked appends to the occurrence ring (capacity checked by
// the caller).
func (a *Auditor) pushOccLocked(s staged) {
	tail := (a.fifoHead + a.fifoLen) & (len(a.fifo) - 1)
	a.fifo[tail] = occ{key: s.key, h: s.h, pos: s.pos}
	a.fifoLen++
}

// taintLocked drops an occurrence and suppresses verdicts until the
// dropped position has slid fully out of the window, at which point
// the retained counts are exact again.
func (a *Auditor) taintLocked(pos uint64) {
	a.overflows.Inc()
	if until := pos + a.window; until > a.taintedUntil {
		a.taintedUntil = until
	}
}

// evictLocked pops occurrences that slid out of the window (position
// ≤ appliedPos − W) and decrements their keys' counts.
func (a *Auditor) evictLocked() {
	for a.fifoLen > 0 {
		o := &a.fifo[a.fifoHead]
		if o.pos+a.window > a.appliedPos {
			break
		}
		a.decrementLocked(o.key, o.h)
		a.fifoHead = (a.fifoHead + 1) & (len(a.fifo) - 1)
		a.fifoLen--
	}
}

// decrementLocked drops one occurrence from a key's count, deleting
// the entry at zero.
func (a *Auditor) decrementLocked(key hierarchy.Prefix, h uint64) {
	mask := len(a.table) - 1
	i := int(h) & mask
	for a.table[i].used {
		if a.table[i].h == h && a.table[i].key == key {
			a.table[i].count--
			if a.table[i].count == 0 {
				a.deleteSlotLocked(i)
				a.keys--
			}
			return
		}
		i = (i + 1) & mask
	}
	// Unreachable while the FIFO and table agree; tolerate silently —
	// the worst outcome of a miss is a skipped decrement, surfaced by
	// the exactness tests, never a panic on the apply path.
}

// deleteSlotLocked removes slot i with backward-shift deletion so
// linear probing never needs tombstones: subsequent entries whose
// probe path crossed i are moved back into it.
func (a *Auditor) deleteSlotLocked(i int) {
	mask := len(a.table) - 1
	j := i
	for {
		a.table[i].used = false
		for {
			j = (j + 1) & mask
			if !a.table[j].used {
				return
			}
			k := int(a.table[j].h) & mask // j's home slot
			// Move j back iff its home does not lie in (i, j] — i.e.
			// its probe path crossed the hole at i.
			if i <= j {
				if k <= i || k > j {
					break
				}
			} else if k <= i && k > j {
				break
			}
		}
		a.table[i] = a.table[j]
		i = j
	}
}

// Result is one Audit pass.
type Result struct {
	Pos        uint64  // applied stream position the counts describe
	Keys       int     // audited keys currently in window
	Checks     int     // keys compared (0 when tainted)
	Violations int     // comparisons outside the guaranteed bound
	MaxAbsErr  float64 // max |upper − exact| over audited keys
	Bound      float64 // max (upper − lower) + compensation over audited keys
	Tainted    bool    // verdicts suppressed (oracle overflowed within the last window)
}

// Audit compares every audited key's exact window count against est's
// bounds. Safe to call from any goroutine; runs off the hot path
// (Observe's amortized sync blocks for its duration). For exact
// agreement, quiesce the stream and Flush first — under concurrent
// ingestion the comparison is fuzzy by the sync lag plus in-flight
// batches, which the (ε,δ) band normally absorbs but does not
// guarantee.
func (a *Auditor) Audit(est Estimator) Result {
	if a == nil || est == nil {
		return Result{}
	}
	comp := est.Compensation()
	a.mu.Lock()
	defer a.mu.Unlock()
	res := Result{
		Pos:     a.appliedPos,
		Keys:    a.keys,
		Tainted: a.appliedPos < a.taintedUntil,
	}
	for i := range a.table {
		e := &a.table[i]
		if !e.used {
			continue
		}
		if res.Tainted {
			// A tainted oracle's counts may be short; recording their
			// errors would poison the histogram with artifacts of the
			// auditor's own overflow, not the sketch's accuracy.
			a.skipped.Inc()
			continue
		}
		upper, lower := est.QueryBounds(e.key)
		exact := float64(e.count)
		err := upper - exact
		if abs := math.Abs(err); abs > res.MaxAbsErr {
			res.MaxAbsErr = abs
		}
		band := (upper - lower) + comp
		if band > res.Bound {
			res.Bound = band
		}
		a.errHist.Observe(uint64(math.Abs(err)))
		res.Checks++
		a.checks.Inc()
		// The guarantee: lower − comp ≤ exact ≤ upper + comp, i.e.
		// err ∈ [−comp, band]. Outside it, the sketch broke its bound.
		if err < -comp || err > band {
			res.Violations++
			a.violations.Inc()
		}
	}
	a.lastBound = res.Bound
	return res
}

// Keys returns the number of audited keys currently in window.
func (a *Auditor) Keys() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.keys
}

// Count returns key's exact in-window count as of the last sync (0
// when not sampled or absent). It scans the table by key equality
// rather than probing by hash, because ObserveHashed admits any
// caller-supplied hash (the batcher tee reuses shard-routing hashes
// the auditor cannot recompute); Count is a test/debug read, never on
// a hot path.
func (a *Auditor) Count(key hierarchy.Prefix) uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.table {
		if a.table[i].used && a.table[i].key == key {
			return a.table[i].count
		}
	}
	return 0
}

// Sampled returns how many sampled occurrences the hot path staged.
func (a *Auditor) Sampled() uint64 {
	if a == nil {
		return 0
	}
	return a.sampled.Load()
}

// Checks returns how many key comparisons Audit performed.
func (a *Auditor) Checks() uint64 {
	if a == nil {
		return 0
	}
	return a.checks.Load()
}

// Violations returns how many comparisons fell outside the bound.
// The repo's acceptance invariant is that this stays zero.
func (a *Auditor) Violations() uint64 {
	if a == nil {
		return 0
	}
	return a.violations.Load()
}

// Overflows returns how many occurrences were dropped (each taints
// one window).
func (a *Auditor) Overflows() uint64 {
	if a == nil {
		return 0
	}
	return a.overflows.Load()
}

// Skipped returns how many comparisons were suppressed by taint.
func (a *Auditor) Skipped() uint64 {
	if a == nil {
		return 0
	}
	return a.skipped.Load()
}

// Errors snapshots the observed-error histogram (|upper − exact| per
// audited key per pass).
func (a *Auditor) Errors() obs.HistSnapshot {
	var s obs.HistSnapshot
	if a != nil {
		a.errHist.Snapshot(&s)
	}
	return s
}

// Register exports the audit catalog (DESIGN.md §11):
// memento_audit_{observed_error,bound,bound_violations_total,
// checks_total,keys,sampled_total,overflows_total,skipped_total}.
func (a *Auditor) Register(r *obs.Registry) {
	if a == nil || r == nil {
		return
	}
	r.RegisterHistogram("memento_audit_observed_error", &a.errHist)
	r.RegisterCounter("memento_audit_bound_violations_total", a.violations)
	r.RegisterCounter("memento_audit_checks_total", a.checks)
	r.RegisterCounter("memento_audit_sampled_total", a.sampled)
	r.RegisterCounter("memento_audit_overflows_total", a.overflows)
	r.RegisterCounter("memento_audit_skipped_total", a.skipped)
	r.RegisterFunc("memento_audit_keys", func() float64 { return float64(a.Keys()) })
	r.RegisterFunc("memento_audit_bound", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.lastBound
	})
}
