package audit

import (
	"math/rand"
	"testing"

	"memento/internal/hierarchy"
)

// pkt builds a 1D packet from a small flow id.
func pkt(id uint32) hierarchy.Packet { return hierarchy.Packet{Src: id} }

// key is the OneD fully-specified prefix of flow id.
func key(id uint32) hierarchy.Prefix {
	return hierarchy.Prefix{Src: id, SrcLen: hierarchy.AddrBytes}
}

// brute maintains the reference sliding-window counts.
type brute struct {
	window int
	stream []uint32
}

func (b *brute) add(id uint32) { b.stream = append(b.stream, id) }

func (b *brute) count(id uint32) uint64 {
	start := len(b.stream) - b.window
	if start < 0 {
		start = 0
	}
	var n uint64
	for _, v := range b.stream[start:] {
		if v == id {
			n++
		}
	}
	return n
}

func newAuditor(t *testing.T, cfg Config) *Auditor {
	t.Helper()
	if cfg.Hier == nil {
		cfg.Hier = hierarchy.OneD{}
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

// TestExactCounts drives a skewed random stream and checks the oracle
// against brute-force sliding-window counts at several positions —
// insertion, dedup, eviction and backward-shift deletion all under
// one reference.
func TestExactCounts(t *testing.T) {
	const window = 500
	a := newAuditor(t, Config{Window: window, SyncEvery: 64})
	ref := &brute{window: window}
	rng := rand.New(rand.NewSource(42))
	ids := make([]uint32, 64)
	for i := range ids {
		ids[i] = uint32(i + 1)
	}
	for step := 0; step < 20; step++ {
		for i := 0; i < 300; i++ {
			// Zipf-ish skew: low ids dominate, so counts span 0..hundreds.
			id := ids[rng.Intn(len(ids))]
			if rng.Intn(2) == 0 {
				id = ids[rng.Intn(4)]
			}
			a.Observe(pkt(id))
			ref.add(id)
		}
		a.Flush()
		for _, id := range ids {
			if got, want := a.Count(key(id)), ref.count(id); got != want {
				t.Fatalf("step %d: Count(%d) = %d, want %d", step, id, got, want)
			}
		}
	}
	if a.Overflows() != 0 {
		t.Fatalf("unexpected overflows: %d", a.Overflows())
	}
	if a.Sampled() == 0 {
		t.Fatal("SampleShift 0 should sample every packet")
	}
}

// TestSampling checks that only keys whose hash passes the mask are
// tracked.
func TestSampling(t *testing.T) {
	// Sample iff the flow id is even (hash = id, shift = 1 → low bit 0).
	a := newAuditor(t, Config{
		Window:      100,
		SampleShift: 1,
		Hash:        func(p hierarchy.Prefix) uint64 { return uint64(p.Src) },
	})
	for id := uint32(1); id <= 10; id++ {
		for i := 0; i < int(id); i++ {
			a.Observe(pkt(id))
		}
	}
	a.Flush()
	for id := uint32(1); id <= 10; id++ {
		want := uint64(0)
		if id%2 == 0 {
			want = uint64(id)
		}
		if got := a.Count(key(id)); got != want {
			t.Fatalf("Count(%d) = %d, want %d", id, got, want)
		}
	}
	if got := a.Keys(); got != 5 {
		t.Fatalf("Keys() = %d, want 5", got)
	}
}

// exactEst answers bounds from the brute-force reference plus a fixed
// slack, so the auditor's verdict logic can be tested in isolation.
type exactEst struct {
	counts map[hierarchy.Prefix]float64
	over   float64 // added to upper
	under  float64 // subtracted from lower
	comp   float64
}

func (e exactEst) QueryBounds(p hierarchy.Prefix) (float64, float64) {
	c := e.counts[p]
	return c + e.over, c - e.under
}
func (e exactEst) Compensation() float64 { return e.comp }

func feed(a *Auditor, counts map[hierarchy.Prefix]float64) {
	for id := uint32(1); id <= 8; id++ {
		for i := 0; i < int(id)*3; i++ {
			a.Observe(pkt(id))
		}
		counts[key(id)] = float64(id) * 3
	}
	a.Flush()
}

// TestAuditWithinBound: estimates inside the band produce zero
// violations; the observed error and bound land in the result.
func TestAuditWithinBound(t *testing.T) {
	a := newAuditor(t, Config{Window: 1 << 12})
	counts := map[hierarchy.Prefix]float64{}
	feed(a, counts)
	res := a.Audit(exactEst{counts: counts, over: 2, under: 1, comp: 0})
	if res.Violations != 0 || a.Violations() != 0 {
		t.Fatalf("violations = %d (counter %d), want 0", res.Violations, a.Violations())
	}
	if res.Checks != 8 || res.Keys != 8 {
		t.Fatalf("checks = %d keys = %d, want 8/8", res.Checks, res.Keys)
	}
	if res.MaxAbsErr != 2 {
		t.Fatalf("MaxAbsErr = %v, want 2 (the overestimate)", res.MaxAbsErr)
	}
	if res.Bound != 3 {
		t.Fatalf("Bound = %v, want band 3", res.Bound)
	}
}

// TestAuditViolations: an estimator that underestimates below the
// band (upper < exact − comp) or overestimates beyond it must be
// caught.
func TestAuditViolations(t *testing.T) {
	a := newAuditor(t, Config{Window: 1 << 12})
	counts := map[hierarchy.Prefix]float64{}
	feed(a, counts)

	// Underestimate: upper 5 below exact, comp 1 → err = −5 < −comp.
	res := a.Audit(exactEst{counts: counts, over: -5, under: 0, comp: 1})
	if res.Violations != 8 {
		t.Fatalf("underestimate: violations = %d, want 8", res.Violations)
	}

	// Claimed-tight bounds (band 0) sitting 4 above the true count:
	// err = 4 > band + comp = 1.
	res = a.Audit(exactEst{counts: shift(counts, 4), over: 0, under: 0, comp: 1})
	if res.Violations != 8 {
		t.Fatalf("overestimate: violations = %d, want 8", res.Violations)
	}
	if a.Violations() != 16 {
		t.Fatalf("violation counter = %d, want 16", a.Violations())
	}
}

// shift returns counts with every value moved by d (the "exact" the
// estimator believes, diverging from the oracle's).
func shift(counts map[hierarchy.Prefix]float64, d float64) map[hierarchy.Prefix]float64 {
	out := make(map[hierarchy.Prefix]float64, len(counts))
	for k, v := range counts {
		out[k] = v + d
	}
	return out
}

// TestTaint: overflowing the occurrence FIFO suppresses verdicts for
// exactly one window, then auditing resumes with exact counts.
func TestTaint(t *testing.T) {
	const window = 256
	// Only flow 1 is sampled; FIFO capacity 16 (next pow2 of 9..16).
	a := newAuditor(t, Config{
		Window:         window,
		MaxOccurrences: 16,
		SyncEvery:      8,
		Hash: func(p hierarchy.Prefix) uint64 {
			if p.Src == 1 {
				return 0
			}
			return 1
		},
		SampleShift: 1,
	})
	for i := 0; i < 40; i++ { // 40 occurrences > 16 → overflow
		a.Observe(pkt(1))
	}
	a.Flush()
	if a.Overflows() == 0 {
		t.Fatal("expected FIFO overflow")
	}
	counts := map[hierarchy.Prefix]float64{key(1): 40}
	res := a.Audit(exactEst{counts: counts})
	if !res.Tainted {
		t.Fatal("expected tainted result")
	}
	if res.Checks != 0 || res.Violations != 0 {
		t.Fatalf("tainted audit must not check: checks=%d violations=%d", res.Checks, res.Violations)
	}
	if a.Skipped() == 0 {
		t.Fatal("skipped counter should advance under taint")
	}

	// Slide one full window of unsampled traffic past the drop: the
	// taint expires and the (now fully evicted) ledger is exact again.
	for i := 0; i < window+1; i++ {
		a.Observe(pkt(2))
	}
	a.Flush()
	res = a.Audit(exactEst{counts: map[hierarchy.Prefix]float64{}})
	if res.Tainted {
		t.Fatal("taint should expire after one window")
	}
	if got := a.Count(key(1)); got != 0 {
		t.Fatalf("flow 1 should have fully evicted, Count = %d", got)
	}

	// Fresh occurrences after the taint audit exactly.
	for i := 0; i < 5; i++ {
		a.Observe(pkt(1))
	}
	a.Flush()
	if got := a.Count(key(1)); got != 5 {
		t.Fatalf("post-taint Count = %d, want 5", got)
	}
	res = a.Audit(exactEst{counts: map[hierarchy.Prefix]float64{key(1): 5}, over: 1})
	if res.Tainted || res.Violations != 0 {
		t.Fatalf("post-taint audit: tainted=%v violations=%d", res.Tainted, res.Violations)
	}
}

// TestKeyTableOverflow: exceeding MaxKeys taints instead of evicting
// or panicking.
func TestKeyTableOverflow(t *testing.T) {
	a := newAuditor(t, Config{Window: 1 << 12, MaxKeys: 8})
	for id := uint32(1); id <= 64; id++ {
		a.Observe(pkt(id))
	}
	a.Flush()
	if a.Overflows() == 0 {
		t.Fatal("expected key-table overflow")
	}
	res := a.Audit(exactEst{counts: map[hierarchy.Prefix]float64{}})
	if !res.Tainted {
		t.Fatal("key overflow must taint")
	}
}

// TestNilAuditor: a nil auditor is a disabled instrument.
func TestNilAuditor(t *testing.T) {
	var a *Auditor
	a.Observe(pkt(1))
	a.Flush()
	if res := a.Audit(exactEst{}); res != (Result{}) {
		t.Fatalf("nil Audit = %+v", res)
	}
	if a.Keys() != 0 || a.Count(key(1)) != 0 || a.Violations() != 0 {
		t.Fatal("nil accessors should return zero")
	}
	if s := a.Errors(); s.Count != 0 {
		t.Fatal("nil Errors should be empty")
	}
}

// TestConfigValidation pins the constructor's contract.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Window: 100}); err == nil {
		t.Fatal("missing hierarchy should fail")
	}
	if _, err := New(Config{Hier: hierarchy.OneD{}}); err == nil {
		t.Fatal("missing window should fail")
	}
	if _, err := New(Config{Hier: hierarchy.OneD{}, Window: 1, SampleShift: 33}); err == nil {
		t.Fatal("oversized shift should fail")
	}
}
