package baseline

import (
	"math"
	"testing"

	"memento/internal/exact"
	"memento/internal/hhhset"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// mix generates the shared test traffic: 40% of packets from hosts
// inside 10.0.0.0/8, 20% from the single flow 99.1.2.3, the rest noise.
func mix(seed uint64, n int) []hierarchy.Packet {
	r := rng.New(seed)
	pkts := make([]hierarchy.Packet, n)
	for i := range pkts {
		u := r.Float64()
		switch {
		case u < 0.4:
			pkts[i] = hierarchy.Packet{Src: hierarchy.IPv4(10, byte(r.Uint32()), byte(r.Uint32()), byte(r.Uint32()))}
		case u < 0.6:
			pkts[i] = hierarchy.Packet{Src: hierarchy.IPv4(99, 1, 2, 3)}
		default:
			pkts[i] = hierarchy.Packet{Src: 0x80000000 | (uint32(r.Uint64()) >> 1)}
		}
	}
	return pkts
}

func findPrefix(entries []hhhset.Entry, p hierarchy.Prefix) bool {
	for _, e := range entries {
		if e.Prefix == p {
			return true
		}
	}
	return false
}

var (
	subnet10 = hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}
	flow99   = hierarchy.Prefix{Src: hierarchy.IPv4(99, 1, 2, 3), SrcLen: 4}
)

func TestMSTValidation(t *testing.T) {
	if _, err := NewMST(nil, 10); err == nil {
		t.Error("nil hierarchy should fail")
	}
	if _, err := NewMST(hierarchy.OneD{}, 0); err == nil {
		t.Error("zero counters should fail")
	}
}

func TestMSTFindsHHH(t *testing.T) {
	m := MustNewMST(hierarchy.OneD{}, 512)
	for _, p := range mix(1, 100000) {
		m.Update(p)
	}
	if m.Items() != 100000 {
		t.Fatalf("Items = %d", m.Items())
	}
	out := m.Output(0.15)
	if !findPrefix(out, subnet10) || !findPrefix(out, flow99) {
		t.Fatalf("MST missed a heavy prefix: %v", out)
	}
	// The flow's /24 parent must be conditioned away.
	parent := hierarchy.Prefix{Src: hierarchy.IPv4(99, 1, 2, 0), SrcLen: 3}
	if findPrefix(out, parent) {
		t.Fatalf("ancestor %v not conditioned away: %v", parent, out)
	}
}

func TestMSTEstimatesUpperBound(t *testing.T) {
	m := MustNewMST(hierarchy.OneD{}, 256)
	oracle := map[hierarchy.Prefix]int{}
	var hier hierarchy.OneD
	for _, p := range mix(2, 50000) {
		m.Update(p)
		for i := 0; i < hier.H(); i++ {
			oracle[hier.Prefix(p, i)]++
		}
	}
	for _, p := range []hierarchy.Prefix{subnet10, flow99, {}} {
		est := m.Query(p)
		truth := float64(oracle[p])
		if est < truth {
			t.Fatalf("MST underestimated %v: %v < %v", p, est, truth)
		}
		if est > truth+float64(m.Items())/256 {
			t.Fatalf("MST estimate for %v beyond error bound: %v vs %v", p, est, truth)
		}
	}
}

func TestMSTReset(t *testing.T) {
	m := MustNewMST(hierarchy.OneD{}, 64)
	for _, p := range mix(3, 1000) {
		m.Update(p)
	}
	m.Reset()
	if m.Items() != 0 {
		t.Fatal("Reset left items")
	}
	if out := m.Output(0.01); len(out) != 0 {
		t.Fatalf("post-reset output: %v", out)
	}
}

func TestRHHHValidation(t *testing.T) {
	if _, err := NewRHHH(RHHHConfig{CountersPerInstance: 10}); err == nil {
		t.Error("missing hierarchy should fail")
	}
	if _, err := NewRHHH(RHHHConfig{Hierarchy: hierarchy.OneD{}, CountersPerInstance: 10, V: 2}); err == nil {
		t.Error("V < H should fail")
	}
	r := MustNewRHHH(RHHHConfig{Hierarchy: hierarchy.OneD{}, CountersPerInstance: 10})
	if r.V() != 5 {
		t.Fatalf("default V = %d, want H", r.V())
	}
}

func TestRHHHSamplingRate(t *testing.T) {
	r := MustNewRHHH(RHHHConfig{
		Hierarchy: hierarchy.OneD{}, CountersPerInstance: 64, V: 50, Seed: 4,
	})
	const n = 300000
	for _, p := range mix(5, n) {
		r.Update(p)
	}
	got := float64(r.Updates()) / float64(n)
	want := 5.0 / 50
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("update rate %v, want ≈ %v", got, want)
	}
}

func TestRHHHFindsHHH(t *testing.T) {
	r := MustNewRHHH(RHHHConfig{
		Hierarchy: hierarchy.OneD{}, CountersPerInstance: 512, V: 10, Seed: 6,
	})
	for _, p := range mix(7, 200000) {
		r.Update(p)
	}
	out := r.Output(0.15)
	if !findPrefix(out, subnet10) || !findPrefix(out, flow99) {
		t.Fatalf("RHHH missed a heavy prefix: %v", out)
	}
}

func TestRHHHBoundsBracketTruth(t *testing.T) {
	r := MustNewRHHH(RHHHConfig{
		Hierarchy: hierarchy.OneD{}, CountersPerInstance: 256, V: 20, Seed: 8,
	})
	truth := map[hierarchy.Prefix]int{}
	var hier hierarchy.OneD
	for _, p := range mix(9, 150000) {
		r.Update(p)
		for i := 0; i < hier.H(); i++ {
			truth[hier.Prefix(p, i)]++
		}
	}
	for _, p := range []hierarchy.Prefix{subnet10, flow99} {
		up, lo := r.Bounds(p)
		f := float64(truth[p])
		if lo > f {
			t.Fatalf("RHHH lower bound above truth for %v: %v > %v", p, lo, f)
		}
		if up < f {
			t.Fatalf("RHHH upper bound below truth for %v: %v < %v", p, up, f)
		}
	}
}

func TestRHHH2D(t *testing.T) {
	r := MustNewRHHH(RHHHConfig{
		Hierarchy: hierarchy.TwoD{}, CountersPerInstance: 256, V: 25, Seed: 10,
	})
	src := rng.New(11)
	for i := 0; i < 200000; i++ {
		var p hierarchy.Packet
		if src.Float64() < 0.35 {
			p = hierarchy.Packet{
				Src: hierarchy.IPv4(10, byte(src.Uint32()), 0, 0),
				Dst: hierarchy.IPv4(20, 30, byte(src.Uint32()), 0),
			}
		} else {
			p = hierarchy.Packet{Src: 0x80000000 | (uint32(src.Uint64()) >> 1), Dst: uint32(src.Uint64())}
		}
		r.Update(p)
	}
	want := hierarchy.Prefix{
		Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1,
		Dst: hierarchy.IPv4(20, 30, 0, 0), DstLen: 2,
	}
	out := r.Output(0.25)
	if !findPrefix(out, want) {
		t.Fatalf("RHHH 2D missed %v: %v", want, out)
	}
}

func TestWindowBaselineSlides(t *testing.T) {
	// The defining property versus MST: a flow that stops sending
	// disappears from the window baseline but persists in MST.
	const w = 20000
	b := MustNewWindow(hierarchy.OneD{}, w, 128)
	m := MustNewMST(hierarchy.OneD{}, 128)
	heavy := hierarchy.Packet{Src: hierarchy.IPv4(99, 1, 2, 3)}
	r := rng.New(12)
	for i := 0; i < w; i++ {
		b.Update(heavy)
		m.Update(heavy)
	}
	for i := 0; i < 2*w; i++ {
		p := hierarchy.Packet{Src: 0x80000000 | (uint32(r.Uint64()) >> 1)}
		b.Update(p)
		m.Update(p)
	}
	bEst := b.Query(flow99)
	mEst := m.Query(flow99)
	if bEst > 0.1*float64(w) {
		t.Fatalf("window baseline still sees expired flow: %v", bEst)
	}
	if mEst < float64(w) {
		t.Fatalf("MST (interval) should still count the flow: %v", mEst)
	}
}

func TestWindowBaselineFindsHHH(t *testing.T) {
	const w = 50000
	b := MustNewWindow(hierarchy.OneD{}, w, 512)
	for _, p := range mix(13, 2*w) {
		b.Update(p)
	}
	out := b.Output(0.15)
	if !findPrefix(out, subnet10) || !findPrefix(out, flow99) {
		t.Fatalf("window baseline missed a heavy prefix: %v", out)
	}
}

func TestWindowBaselineBounds(t *testing.T) {
	const w = 10000
	b := MustNewWindow(hierarchy.OneD{}, w, 64)
	oracle := exact.MustNewSlidingWindow[hierarchy.Prefix](b.EffectiveWindow())
	var hier hierarchy.OneD
	for _, p := range mix(14, 3*w) {
		b.Update(p)
		oracle.Add(hier.Prefix(p, 1)) // track the /24 pattern exactly
	}
	// Spot-check the /24 containing the heavy flow.
	p24 := hierarchy.Prefix{Src: hierarchy.IPv4(99, 1, 2, 0), SrcLen: 3}
	truth := float64(oracle.Count(p24))
	est := b.Query(p24)
	if est < truth {
		t.Fatalf("window baseline underestimated %v: %v < %v", p24, est, truth)
	}
	slack := 4 * float64(b.EffectiveWindow()) / 64
	if est > truth+slack {
		t.Fatalf("window baseline estimate beyond bound: %v vs %v (+%v)", est, truth, slack)
	}
}

func TestWindowBaselineReset(t *testing.T) {
	b := MustNewWindow(hierarchy.OneD{}, 1000, 32)
	for _, p := range mix(15, 5000) {
		b.Update(p)
	}
	b.Reset()
	if out := b.Output(0.01); len(out) != 0 {
		t.Fatalf("post-reset output: %v", out)
	}
}
