// Package baseline implements the algorithms the paper compares
// Memento and H-Memento against (Sections 2, 4.2 and 6):
//
//   - MST (Mitzenmacher, Steinke, Thaler): interval HHH with one Space
//     Saving instance per prefix pattern and H updates per packet.
//   - RHHH (Ben Basat et al., SIGCOMM'17): MST's structure with a
//     single randomized update per packet, using geometric skipping —
//     the fastest known interval algorithm.
//   - Baseline: the window HHH the paper constructs by replacing MST's
//     underlying HH algorithm with WCSS (= Memento with τ = 1), costing
//     H Full window updates per packet.
//
// All three expose the same Output computation as H-Memento through
// the shared hhhset machinery, so accuracy comparisons isolate the
// data-structure differences, exactly as in the paper's evaluation.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"memento/internal/core"
	"memento/internal/hhhset"
	"memento/internal/hierarchy"
	"memento/internal/rng"
	"memento/internal/spacesaving"
	"memento/internal/stats"
)

// MST is the interval HHH algorithm of Mitzenmacher et al.: H Space
// Saving instances, all updated on every packet.
type MST struct {
	hier     hierarchy.Hierarchy
	sketches []*spacesaving.Sketch[hierarchy.Prefix]
	n        uint64

	cands []hierarchy.Prefix // Output candidate scratch
	sc    hhhset.Scratch     // Output computation scratch
}

// NewMST allocates an MST with countersPerInstance counters in each of
// the H per-pattern instances.
func NewMST(h hierarchy.Hierarchy, countersPerInstance int) (*MST, error) {
	if h == nil {
		return nil, errors.New("baseline: hierarchy is required")
	}
	m := &MST{hier: h, sketches: make([]*spacesaving.Sketch[hierarchy.Prefix], h.H())}
	for i := range m.sketches {
		s, err := spacesaving.NewWithHash(countersPerInstance, hierarchy.PrefixHasher(uint64(i)))
		if err != nil {
			return nil, err
		}
		m.sketches[i] = s
	}
	return m, nil
}

// MustNewMST panics on error; for tests and examples.
func MustNewMST(h hierarchy.Hierarchy, countersPerInstance int) *MST {
	m, err := NewMST(h, countersPerInstance)
	if err != nil {
		panic(err)
	}
	return m
}

// Update feeds one packet: every prefix pattern receives an update
// (the O(H) cost the paper's Figure 6 baseline pays).
func (m *MST) Update(p hierarchy.Packet) {
	m.n++
	for i := range m.sketches {
		m.sketches[i].Add(m.hier.Prefix(p, i))
	}
}

// Items returns the number of packets in the current interval.
func (m *MST) Items() uint64 { return m.n }

// Bounds implements hhhset.Estimator.
func (m *MST) Bounds(p hierarchy.Prefix) (upper, lower float64) {
	i := m.hier.PatternIndex(p)
	if i < 0 {
		return 0, 0
	}
	u, l := m.sketches[i].QueryBounds(p)
	return float64(u), float64(l)
}

// Query returns the upper-bound estimate for prefix p over the current
// interval.
func (m *MST) Query(p hierarchy.Prefix) float64 {
	u, _ := m.Bounds(p)
	return u
}

// Output returns the approximate HHH set at threshold theta relative
// to the current interval length. Candidate collection and the set
// computation run through scratch owned by m (reused across calls).
func (m *MST) Output(theta float64) []hhhset.Entry {
	m.cands = collectCandidates(m.sketches, m.cands[:0])
	return hhhset.ComputeInto(m.hier, m, m.cands, theta*float64(m.n), 0, &m.sc, nil)
}

// collectCandidates appends every monitored prefix across the
// instances to dst and returns it.
func collectCandidates(sketches []*spacesaving.Sketch[hierarchy.Prefix], dst []hierarchy.Prefix) []hierarchy.Prefix {
	for _, s := range sketches {
		s.Iterate(func(c spacesaving.Counter[hierarchy.Prefix]) bool {
			dst = append(dst, c.Key)
			return true
		})
	}
	return dst
}

// Reset starts a new measurement interval.
func (m *MST) Reset() {
	for _, s := range m.sketches {
		s.Flush()
	}
	m.n = 0
}

// RHHH is the randomized interval HHH algorithm: per packet it updates
// at most one instance, chosen uniformly, with overall update
// probability H/V, implemented with geometric skipping.
type RHHH struct {
	hier     hierarchy.Hierarchy
	sketches []*spacesaving.Sketch[hierarchy.Prefix]
	v        int
	n        uint64 // packets seen
	updates  uint64 // SS updates performed
	skip     int
	src      *rng.Source
	geo      *rng.Geometric
	z        float64 // Z_{1−δ} for query compensation

	cands []hierarchy.Prefix // Output candidate scratch
	sc    hhhset.Scratch     // Output computation scratch
}

// RHHHConfig parameterizes RHHH.
type RHHHConfig struct {
	// Hierarchy selects the prefix domain. Required.
	Hierarchy hierarchy.Hierarchy
	// CountersPerInstance sizes each of the H Space Saving instances.
	CountersPerInstance int
	// V is the sampling ratio (V ≥ H); a packet performs an update with
	// probability H/V. V == 0 defaults to H (update every packet).
	V int
	// Delta is the confidence for the sampling compensation; defaults
	// to 0.001.
	Delta float64
	// Seed fixes the randomness; 0 selects a default.
	Seed uint64
}

// NewRHHH validates cfg and allocates the algorithm.
func NewRHHH(cfg RHHHConfig) (*RHHH, error) {
	if cfg.Hierarchy == nil {
		return nil, errors.New("baseline: hierarchy is required")
	}
	h := cfg.Hierarchy.H()
	v := cfg.V
	if v == 0 {
		v = h
	}
	if v < h {
		return nil, fmt.Errorf("baseline: V=%d below H=%d", cfg.V, h)
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = 0.001
	}
	z, err := stats.Z(1 - delta)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x52484848 // "RHHH"
	}
	r := &RHHH{
		hier:     cfg.Hierarchy,
		sketches: make([]*spacesaving.Sketch[hierarchy.Prefix], h),
		v:        v,
		src:      rng.New(seed),
		z:        z,
	}
	for i := range r.sketches {
		s, err := spacesaving.NewWithHash(cfg.CountersPerInstance, hierarchy.PrefixHasher(seed+uint64(i)))
		if err != nil {
			return nil, err
		}
		r.sketches[i] = s
	}
	r.geo = rng.NewGeometric(r.src, float64(h)/float64(v))
	r.skip = r.geo.Next()
	return r, nil
}

// MustNewRHHH panics on error; for tests and examples.
func MustNewRHHH(cfg RHHHConfig) *RHHH {
	r, err := NewRHHH(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Update feeds one packet. Most packets are skipped outright (the
// geometric sampler pre-computed how many); a sampled packet updates
// one uniformly chosen prefix pattern.
func (r *RHHH) Update(p hierarchy.Packet) {
	r.n++
	if r.skip > 0 {
		r.skip--
		return
	}
	r.skip = r.geo.Next()
	i := r.src.Intn(len(r.sketches))
	r.sketches[i].Add(r.hier.Prefix(p, i))
	r.updates++
}

// Items returns the number of packets in the current interval.
func (r *RHHH) Items() uint64 { return r.n }

// Updates returns the number of Space Saving updates performed.
func (r *RHHH) Updates() uint64 { return r.updates }

// V returns the sampling ratio.
func (r *RHHH) V() int { return r.v }

// Bounds implements hhhset.Estimator: counts scale by V, and a
// ±Z·√(V·N) sampling envelope keeps the bounds conservative.
func (r *RHHH) Bounds(p hierarchy.Prefix) (upper, lower float64) {
	i := r.hier.PatternIndex(p)
	if i < 0 {
		return 0, 0
	}
	u, l := r.sketches[i].QueryBounds(p)
	envelope := r.z * math.Sqrt(float64(r.v)*float64(r.n))
	upper = float64(u)*float64(r.v) + envelope
	lower = float64(l)*float64(r.v) - envelope
	if lower < 0 {
		lower = 0
	}
	return upper, lower
}

// Query returns the upper-bound estimate for prefix p.
func (r *RHHH) Query(p hierarchy.Prefix) float64 {
	u, _ := r.Bounds(p)
	return u
}

// Output returns the approximate HHH set at threshold theta relative
// to the current interval length, through scratch owned by r.
func (r *RHHH) Output(theta float64) []hhhset.Entry {
	comp := 2 * r.z * math.Sqrt(float64(r.v)*float64(r.n))
	r.cands = collectCandidates(r.sketches, r.cands[:0])
	return hhhset.ComputeInto(r.hier, r, r.cands, theta*float64(r.n), comp, &r.sc, nil)
}

// Reset starts a new measurement interval.
func (r *RHHH) Reset() {
	for _, s := range r.sketches {
		s.Flush()
	}
	r.n = 0
	r.updates = 0
	r.skip = r.geo.Next()
}

// Window is the paper's "Baseline" sliding-window HHH: MST with the
// underlying HH algorithm replaced by WCSS, i.e. H Memento instances
// at τ = 1, each receiving a Full update for every packet.
type Window struct {
	hier     hierarchy.Hierarchy
	sketches []*core.Sketch[hierarchy.Prefix]
	window   int

	cands []hierarchy.Prefix // Output candidate scratch
	sc    hhhset.Scratch     // Output computation scratch
}

// NewWindow allocates the Baseline with countersPerInstance counters
// per pattern instance and window size w.
func NewWindow(h hierarchy.Hierarchy, w, countersPerInstance int) (*Window, error) {
	if h == nil {
		return nil, errors.New("baseline: hierarchy is required")
	}
	b := &Window{hier: h, sketches: make([]*core.Sketch[hierarchy.Prefix], h.H())}
	for i := range b.sketches {
		s, err := core.NewWithHash(core.Config{
			Window:   w,
			Counters: countersPerInstance,
			Tau:      1,
		}, hierarchy.PrefixHasher(uint64(i)))
		if err != nil {
			return nil, err
		}
		b.sketches[i] = s
	}
	b.window = b.sketches[0].EffectiveWindow()
	return b, nil
}

// MustNewWindow panics on error; for tests and examples.
func MustNewWindow(h hierarchy.Hierarchy, w, countersPerInstance int) *Window {
	b, err := NewWindow(h, w, countersPerInstance)
	if err != nil {
		panic(err)
	}
	return b
}

// Update feeds one packet: H Full window updates (the cost H-Memento's
// single constant-time update removes).
func (b *Window) Update(p hierarchy.Packet) {
	for i := range b.sketches {
		b.sketches[i].FullUpdate(b.hier.Prefix(p, i))
	}
}

// EffectiveWindow returns the maintained window size.
func (b *Window) EffectiveWindow() int { return b.window }

// Bounds implements hhhset.Estimator.
func (b *Window) Bounds(p hierarchy.Prefix) (upper, lower float64) {
	i := b.hier.PatternIndex(p)
	if i < 0 {
		return 0, 0
	}
	return b.sketches[i].QueryBounds(p)
}

// Query returns the upper-bound window estimate for prefix p.
func (b *Window) Query(p hierarchy.Prefix) float64 {
	u, _ := b.Bounds(p)
	return u
}

// Output returns the approximate window HHH set at threshold theta,
// through scratch owned by b.
func (b *Window) Output(theta float64) []hhhset.Entry {
	cands := b.cands[:0]
	for _, s := range b.sketches {
		s.Overflowed(func(p hierarchy.Prefix, _ int32) bool {
			cands = append(cands, p)
			return true
		})
	}
	b.cands = cands
	return hhhset.ComputeInto(b.hier, b, cands, theta*float64(b.window), 0, &b.sc, nil)
}

// Reset empties all instances.
func (b *Window) Reset() {
	for _, s := range b.sketches {
		s.Reset()
	}
}
