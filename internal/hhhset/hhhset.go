// Package hhhset implements the hierarchical-heavy-hitter set
// computation shared by every HHH algorithm in this repository
// (H-Memento, MST, RHHH and the window Baseline): the level-by-level
// scan with conservative conditioned frequencies of paper Algorithm 2
// (lines 3-10), using calcPred from Algorithm 3 in one dimension and
// Algorithm 4 (glb inclusion-exclusion) in two.
//
// The algorithms differ only in how they estimate prefix frequencies
// and which additive compensation accounts for their sampling; both are
// abstracted behind the Estimator interface. Callers that already hold
// per-candidate bounds (the snapshot query plane's merged estimate
// table) skip the estimator on the scan entirely via ComputeCandidates.
//
//memento:deterministic
package hhhset

import (
	"slices"

	"memento/internal/hierarchy"
	"memento/internal/keyidx"
)

// Estimator supplies conservative frequency bounds for prefixes.
// Upper must be a (high-probability) upper bound for the prefix's true
// frequency and Lower a matching lower bound; both in packets.
type Estimator interface {
	Bounds(p hierarchy.Prefix) (upper, lower float64)
}

// Entry is one member of a computed HHH set.
type Entry struct {
	Prefix hierarchy.Prefix
	// Estimate is the upper-bound frequency estimate f̂+.
	Estimate float64
	// Conditioned is the conservative conditioned frequency that
	// crossed the threshold (compensation included).
	Conditioned float64
}

// Candidate is one input prefix with its conservative bounds already
// computed, for ComputeCandidates.
type Candidate struct {
	Prefix       hierarchy.Prefix
	Upper, Lower float64
}

// Scratch holds the working state of the HHH-set computation so
// repeated queries reuse it instead of allocating per call: the
// per-level candidate buckets, a flat dedup index, the per-candidate
// bounds cache, and the selected-walk buffers. The zero value is
// ready; each Estimator-owning algorithm keeps one and passes it to
// ComputeInto/ComputeCandidates. A Scratch must not be shared between
// concurrent queries.
type Scratch struct {
	byLevel  [][]Candidate
	seen     *keyidx.Index[hierarchy.Prefix]
	bounds   []boundsPair
	selected []hierarchy.Prefix
	closest  []hierarchy.Prefix

	// One-dimensional fast path (see calcPred1D): covered[j] records
	// that selected[j] already has a selected strict ancestor,
	// selLower[j] caches selected[j]'s lower bound, and gIdx is the
	// per-candidate scratch of closest-descendant indices.
	covered  []bool
	selLower []float64
	gIdx     []int32
}

// boundsPair caches one candidate's bounds for the two-dimensional
// calcPred, which needs them when the candidate later appears as a
// selected descendant or as a glb of two selected prefixes. (The 1D
// path keeps lower bounds inline with the selected set instead.)
type boundsPair struct {
	upper, lower float64
}

// Compute scans the candidate prefixes level by level (fully specified
// first) and returns every prefix whose conservative conditioned
// frequency, plus compensation, reaches threshold (in packets).
// Candidates may contain duplicates and prefixes of any level; order
// does not matter. The returned set is deterministic for a given input.
func Compute(h hierarchy.Hierarchy, est Estimator, candidates []hierarchy.Prefix, threshold, compensation float64) []Entry {
	var sc Scratch
	return ComputeInto(h, est, candidates, threshold, compensation, &sc, nil)
}

// ComputeInto is Compute through caller-owned scratch: intermediate
// state lives in sc and the result is appended to dst. After the
// first call on a given sc, the query path performs no allocation
// beyond what dst needs. The estimator is consulted exactly once per
// unique in-domain candidate.
func ComputeInto(h hierarchy.Hierarchy, est Estimator, candidates []hierarchy.Prefix, threshold, compensation float64, sc *Scratch, dst []Entry) []Entry {
	levels := sc.resetLevels(h)
	if sc.seen == nil || sc.seen.Cap() < len(candidates) {
		sc.seen = keyidx.MustNew(max(len(candidates), 16), hierarchy.PrefixHasher(0))
	} else {
		sc.seen.Flush()
	}
	// Dedup candidates into their levels; each unique in-domain
	// candidate gets a slot in the bounds cache (seen stores the slot;
	// -1 marks out-of-domain prefixes that are deduped but never
	// scanned) and its bounds are computed exactly once, here.
	sc.bounds = sc.bounds[:0]
	for _, p := range candidates {
		if _, ok := sc.seen.Get(p); ok {
			continue
		}
		d := h.Depth(p)
		if d >= 0 && d < levels {
			upper, lower := est.Bounds(p)
			sc.seen.Put(p, int32(len(sc.bounds)))
			sc.bounds = append(sc.bounds, boundsPair{upper: upper, lower: lower})
			sc.byLevel[d] = append(sc.byLevel[d], Candidate{Prefix: p, Upper: upper, Lower: lower})
		} else {
			sc.seen.Put(p, -1)
		}
	}
	return scan(h, est, threshold, compensation, sc, dst)
}

// ComputeCandidates is the scan over candidates whose bounds the
// caller already computed — the snapshot query plane's merged
// estimate table feeds it directly. Candidates must be pairwise
// distinct (the merged table dedups across shards); order does not
// matter and the output matches ComputeInto over the same set. est is
// consulted only for the two-dimensional glb add-back, and only for
// prefixes outside the candidate set.
func ComputeCandidates(h hierarchy.Hierarchy, est Estimator, candidates []Candidate, threshold, compensation float64, sc *Scratch, dst []Entry) []Entry {
	levels := sc.resetLevels(h)
	twoD := h.Dims() == 2
	if twoD {
		// The glb cache needs prefix→bounds resolution; 1D never
		// consults it and skips the index maintenance entirely.
		if sc.seen == nil || sc.seen.Cap() < len(candidates) {
			sc.seen = keyidx.MustNew(max(len(candidates), 16), hierarchy.PrefixHasher(0))
		} else {
			sc.seen.Flush()
		}
		sc.bounds = sc.bounds[:0]
	}
	for _, c := range candidates {
		d := h.Depth(c.Prefix)
		if d < 0 || d >= levels {
			continue
		}
		if twoD {
			sc.seen.Put(c.Prefix, int32(len(sc.bounds)))
			sc.bounds = append(sc.bounds, boundsPair{upper: c.Upper, lower: c.Lower})
		}
		sc.byLevel[d] = append(sc.byLevel[d], c)
	}
	return scan(h, est, threshold, compensation, sc, dst)
}

// Trim drops any internal buffer whose capacity exceeds limit
// entries, so a pooled Scratch that served one pathologically wide
// query (an overflow-table blow-up) does not pin its high-water
// memory forever.
func (sc *Scratch) Trim(limit int) {
	for i := range sc.byLevel {
		if cap(sc.byLevel[i]) > limit {
			sc.byLevel[i] = nil
		}
	}
	if sc.seen != nil && sc.seen.Cap() > limit {
		sc.seen = nil
	}
	if cap(sc.bounds) > limit {
		sc.bounds = nil
	}
	if cap(sc.selected) > limit {
		sc.selected = nil
	}
	if cap(sc.closest) > limit {
		sc.closest = nil
	}
	if cap(sc.covered) > limit {
		sc.covered = nil
	}
	if cap(sc.selLower) > limit {
		sc.selLower = nil
	}
	if cap(sc.gIdx) > limit {
		sc.gIdx = nil
	}
}

// resetLevels sizes and clears the per-level buckets.
func (sc *Scratch) resetLevels(h hierarchy.Hierarchy) int {
	levels := h.Levels()
	if cap(sc.byLevel) < levels {
		sc.byLevel = make([][]Candidate, levels)
	}
	sc.byLevel = sc.byLevel[:levels]
	for i := range sc.byLevel {
		sc.byLevel[i] = sc.byLevel[i][:0]
	}
	return levels
}

// scan runs the bottom-up level scan over the bucketed candidates.
// Selection is independent of order within a level (same-depth
// prefixes never generalize each other, so a level's candidates
// cannot shadow one another); the appended entries are sorted once at
// the end for a deterministic result, instead of sorting every
// level's full candidate list up front.
func scan(h hierarchy.Hierarchy, est Estimator, threshold, compensation float64, sc *Scratch, dst []Entry) []Entry {
	start := len(dst)
	twoD := h.Dims() == 2
	selected := sc.selected[:0]
	sc.covered = sc.covered[:0]
	sc.selLower = sc.selLower[:0]
	for level := range sc.byLevel {
		for _, c := range sc.byLevel[level] {
			var pred float64
			if twoD {
				pred = calcPred(est, sc, c.Prefix, selected)
			} else {
				pred = calcPred1D(sc, c.Prefix, selected)
			}
			cond := c.Upper + pred + compensation
			if cond >= threshold {
				if !twoD {
					// c now shadows its closest descendants for every
					// later (more general) candidate.
					for _, j := range sc.gIdx {
						sc.covered[j] = true
					}
				}
				selected = append(selected, c.Prefix)
				sc.covered = append(sc.covered, false)
				sc.selLower = append(sc.selLower, c.Lower)
				dst = append(dst, Entry{Prefix: c.Prefix, Estimate: c.Upper, Conditioned: cond})
			}
		}
	}
	sc.selected = selected[:0]
	out := dst[start:]
	slices.SortFunc(out, func(a, b Entry) int {
		if da, db := h.Depth(a.Prefix), h.Depth(b.Prefix); da != db {
			return da - db
		}
		return prefixCompare(a.Prefix, b.Prefix)
	})
	return dst
}

// calcPred1D is calcPred for one-dimensional hierarchies, where a
// prefix's ancestors form a chain so G(p|selected) needs no pairwise
// maximality filter: a selected descendant h of p is maximal iff no
// selected strict ancestor of h exists yet. Levels scan bottom-up, so
// the first selected strict ancestor of h is also its closest, and a
// cover bit per selected entry captures "has one". The scan is a
// single pass over selected with cached lower bounds — this is the
// hottest loop of the whole Output path (profiles showed the generic
// Closest at >80% of query time on wide candidate sets). Fills
// sc.gIdx with the indices of G's members so the caller can mark them
// covered if p is selected.
func calcPred1D(sc *Scratch, p hierarchy.Prefix, selected []hierarchy.Prefix) float64 {
	sc.gIdx = sc.gIdx[:0]
	r := 0.0
	for j := range selected {
		if sc.covered[j] {
			continue
		}
		if p.StrictlyGeneralizes(selected[j]) {
			sc.gIdx = append(sc.gIdx, int32(j))
			r -= sc.selLower[j]
		}
	}
	return r
}

// cachedLower returns h's cached lower bound; every selected prefix
// was scanned (and cached) at an earlier point of the level scan, so
// the estimator is only consulted for prefixes outside the candidate
// set.
func cachedLower(est Estimator, sc *Scratch, h hierarchy.Prefix) float64 {
	if slot, ok := sc.seen.Get(h); ok && slot >= 0 {
		return sc.bounds[slot].lower
	}
	_, lower := est.Bounds(h)
	return lower
}

// calcPred returns the (negative) correction from already-selected
// descendants in two dimensions: Algorithm 3 subtracts each closest
// descendant's lower bound; Algorithm 4 additionally adds back
// unshadowed pairwise glbs. Bounds of candidate prefixes come from
// the Scratch cache; only non-candidate glb prefixes query the
// estimator. (One-dimensional hierarchies use calcPred1D, which
// exploits the chain structure of 1D ancestry.)
func calcPred(est Estimator, sc *Scratch, p hierarchy.Prefix, selected []hierarchy.Prefix) float64 {
	sc.closest = hierarchy.Closest(p, selected, sc.closest)
	G := sc.closest
	r := 0.0
	for _, h := range G {
		r -= cachedLower(est, sc, h)
	}
	if len(G) < 2 {
		return r
	}
	for i := 0; i < len(G); i++ {
		for j := i + 1; j < len(G); j++ {
			q, ok := hierarchy.GLB(G[i], G[j])
			if !ok {
				continue
			}
			// Algorithm 4's ∄h3 guard. Note: the paper writes "q ⪯ h3"
			// (q generalizes h3), which is vacuous — a descendant of
			// glb(h, h') descends from h, so it can never be another
			// *maximal* member of G. The inclusion-exclusion-correct
			// reading, implemented here, skips the add-back when a
			// third member of G generalizes the glb: the (h, h')
			// overlap then lies entirely inside h3, and the (h, h3)
			// and (h', h3) pairs already restore it exactly once.
			shadowed := false
			for t, h3 := range G {
				if t == i || t == j {
					continue
				}
				if h3.Generalizes(q) {
					shadowed = true
					break
				}
			}
			if !shadowed {
				if slot, ok := sc.seen.Get(q); ok && slot >= 0 {
					r += sc.bounds[slot].upper
				} else {
					upper, _ := est.Bounds(q)
					r += upper
				}
			}
		}
	}
	return r
}

// prefixCompare orders prefixes deterministically.
func prefixCompare(a, b hierarchy.Prefix) int {
	switch {
	case a.Src != b.Src:
		if a.Src < b.Src {
			return -1
		}
		return 1
	case a.Dst != b.Dst:
		if a.Dst < b.Dst {
			return -1
		}
		return 1
	case a.SrcLen != b.SrcLen:
		if a.SrcLen < b.SrcLen {
			return -1
		}
		return 1
	case a.DstLen != b.DstLen:
		if a.DstLen < b.DstLen {
			return -1
		}
		return 1
	}
	return 0
}
