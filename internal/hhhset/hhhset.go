// Package hhhset implements the hierarchical-heavy-hitter set
// computation shared by every HHH algorithm in this repository
// (H-Memento, MST, RHHH and the window Baseline): the level-by-level
// scan with conservative conditioned frequencies of paper Algorithm 2
// (lines 3-10), using calcPred from Algorithm 3 in one dimension and
// Algorithm 4 (glb inclusion-exclusion) in two.
//
// The algorithms differ only in how they estimate prefix frequencies
// and which additive compensation accounts for their sampling; both are
// abstracted behind the Estimator interface.
package hhhset

import (
	"sort"

	"memento/internal/hierarchy"
)

// Estimator supplies conservative frequency bounds for prefixes.
// Upper must be a (high-probability) upper bound for the prefix's true
// frequency and Lower a matching lower bound; both in packets.
type Estimator interface {
	Bounds(p hierarchy.Prefix) (upper, lower float64)
}

// Entry is one member of a computed HHH set.
type Entry struct {
	Prefix hierarchy.Prefix
	// Estimate is the upper-bound frequency estimate f̂+.
	Estimate float64
	// Conditioned is the conservative conditioned frequency that
	// crossed the threshold (compensation included).
	Conditioned float64
}

// Compute scans the candidate prefixes level by level (fully specified
// first) and returns every prefix whose conservative conditioned
// frequency, plus compensation, reaches threshold (in packets).
// Candidates may contain duplicates and prefixes of any level; order
// does not matter. The returned set is deterministic for a given input.
func Compute(h hierarchy.Hierarchy, est Estimator, candidates []hierarchy.Prefix, threshold, compensation float64) []Entry {
	levels := h.Levels()
	byLevel := make([][]hierarchy.Prefix, levels)
	seen := make(map[hierarchy.Prefix]struct{}, len(candidates))
	for _, p := range candidates {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		d := h.Depth(p)
		if d >= 0 && d < levels {
			byLevel[d] = append(byLevel[d], p)
		}
	}

	var (
		result   []Entry
		selected []hierarchy.Prefix
		closest  []hierarchy.Prefix
	)
	twoD := h.Dims() == 2
	for level := 0; level < levels; level++ {
		cands := byLevel[level]
		sort.Slice(cands, func(i, j int) bool { return prefixLess(cands[i], cands[j]) })
		for _, p := range cands {
			upper, _ := est.Bounds(p)
			cond := upper + calcPred(est, p, selected, &closest, twoD) + compensation
			if cond >= threshold {
				selected = append(selected, p)
				result = append(result, Entry{Prefix: p, Estimate: upper, Conditioned: cond})
			}
		}
	}
	return result
}

// calcPred returns the (negative) correction from already-selected
// descendants: Algorithm 3 subtracts each closest descendant's lower
// bound; Algorithm 4 additionally adds back unshadowed pairwise glbs.
func calcPred(est Estimator, p hierarchy.Prefix, selected []hierarchy.Prefix, closest *[]hierarchy.Prefix, twoD bool) float64 {
	*closest = hierarchy.Closest(p, selected, *closest)
	G := *closest
	r := 0.0
	for _, h := range G {
		_, lower := est.Bounds(h)
		r -= lower
	}
	if !twoD || len(G) < 2 {
		return r
	}
	for i := 0; i < len(G); i++ {
		for j := i + 1; j < len(G); j++ {
			q, ok := hierarchy.GLB(G[i], G[j])
			if !ok {
				continue
			}
			// Algorithm 4's ∄h3 guard. Note: the paper writes "q ⪯ h3"
			// (q generalizes h3), which is vacuous — a descendant of
			// glb(h, h') descends from h, so it can never be another
			// *maximal* member of G. The inclusion-exclusion-correct
			// reading, implemented here, skips the add-back when a
			// third member of G generalizes the glb: the (h, h')
			// overlap then lies entirely inside h3, and the (h, h3)
			// and (h', h3) pairs already restore it exactly once.
			shadowed := false
			for t, h3 := range G {
				if t == i || t == j {
					continue
				}
				if h3.Generalizes(q) {
					shadowed = true
					break
				}
			}
			if !shadowed {
				upper, _ := est.Bounds(q)
				r += upper
			}
		}
	}
	return r
}

// prefixLess orders prefixes deterministically.
func prefixLess(a, b hierarchy.Prefix) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcLen != b.SrcLen {
		return a.SrcLen < b.SrcLen
	}
	return a.DstLen < b.DstLen
}
