// Package hhhset implements the hierarchical-heavy-hitter set
// computation shared by every HHH algorithm in this repository
// (H-Memento, MST, RHHH and the window Baseline): the level-by-level
// scan with conservative conditioned frequencies of paper Algorithm 2
// (lines 3-10), using calcPred from Algorithm 3 in one dimension and
// Algorithm 4 (glb inclusion-exclusion) in two.
//
// The algorithms differ only in how they estimate prefix frequencies
// and which additive compensation accounts for their sampling; both are
// abstracted behind the Estimator interface.
package hhhset

import (
	"slices"

	"memento/internal/hierarchy"
	"memento/internal/keyidx"
)

// Estimator supplies conservative frequency bounds for prefixes.
// Upper must be a (high-probability) upper bound for the prefix's true
// frequency and Lower a matching lower bound; both in packets.
type Estimator interface {
	Bounds(p hierarchy.Prefix) (upper, lower float64)
}

// Entry is one member of a computed HHH set.
type Entry struct {
	Prefix hierarchy.Prefix
	// Estimate is the upper-bound frequency estimate f̂+.
	Estimate float64
	// Conditioned is the conservative conditioned frequency that
	// crossed the threshold (compensation included).
	Conditioned float64
}

// Scratch holds the working state of the HHH-set computation so
// repeated queries reuse it instead of allocating per call: the
// per-level candidate buckets, a flat dedup set, and the
// selected/closest walk buffers. The zero value is ready; each
// Estimator-owning algorithm keeps one and passes it to ComputeInto.
// A Scratch must not be shared between concurrent queries.
type Scratch struct {
	byLevel  [][]hierarchy.Prefix
	seen     *keyidx.Index[hierarchy.Prefix]
	selected []hierarchy.Prefix
	closest  []hierarchy.Prefix
}

// Compute scans the candidate prefixes level by level (fully specified
// first) and returns every prefix whose conservative conditioned
// frequency, plus compensation, reaches threshold (in packets).
// Candidates may contain duplicates and prefixes of any level; order
// does not matter. The returned set is deterministic for a given input.
func Compute(h hierarchy.Hierarchy, est Estimator, candidates []hierarchy.Prefix, threshold, compensation float64) []Entry {
	var sc Scratch
	return ComputeInto(h, est, candidates, threshold, compensation, &sc, nil)
}

// ComputeInto is Compute through caller-owned scratch: intermediate
// state lives in sc and the result is appended to dst. After the
// first call on a given sc, the query path performs no allocation
// beyond what dst needs.
func ComputeInto(h hierarchy.Hierarchy, est Estimator, candidates []hierarchy.Prefix, threshold, compensation float64, sc *Scratch, dst []Entry) []Entry {
	levels := h.Levels()
	if cap(sc.byLevel) < levels {
		sc.byLevel = make([][]hierarchy.Prefix, levels)
	}
	sc.byLevel = sc.byLevel[:levels]
	for i := range sc.byLevel {
		sc.byLevel[i] = sc.byLevel[i][:0]
	}
	if sc.seen == nil || sc.seen.Cap() < len(candidates) {
		sc.seen = keyidx.MustNew(max(len(candidates), 16), hierarchy.PrefixHasher(0))
	} else {
		sc.seen.Flush()
	}
	for _, p := range candidates {
		if !sc.seen.Insert(p) {
			continue
		}
		d := h.Depth(p)
		if d >= 0 && d < levels {
			sc.byLevel[d] = append(sc.byLevel[d], p)
		}
	}

	selected := sc.selected[:0]
	twoD := h.Dims() == 2
	for level := 0; level < levels; level++ {
		cands := sc.byLevel[level]
		slices.SortFunc(cands, prefixCompare)
		for _, p := range cands {
			upper, _ := est.Bounds(p)
			cond := upper + calcPred(est, p, selected, &sc.closest, twoD) + compensation
			if cond >= threshold {
				selected = append(selected, p)
				dst = append(dst, Entry{Prefix: p, Estimate: upper, Conditioned: cond})
			}
		}
	}
	sc.selected = selected[:0]
	return dst
}

// calcPred returns the (negative) correction from already-selected
// descendants: Algorithm 3 subtracts each closest descendant's lower
// bound; Algorithm 4 additionally adds back unshadowed pairwise glbs.
func calcPred(est Estimator, p hierarchy.Prefix, selected []hierarchy.Prefix, closest *[]hierarchy.Prefix, twoD bool) float64 {
	*closest = hierarchy.Closest(p, selected, *closest)
	G := *closest
	r := 0.0
	for _, h := range G {
		_, lower := est.Bounds(h)
		r -= lower
	}
	if !twoD || len(G) < 2 {
		return r
	}
	for i := 0; i < len(G); i++ {
		for j := i + 1; j < len(G); j++ {
			q, ok := hierarchy.GLB(G[i], G[j])
			if !ok {
				continue
			}
			// Algorithm 4's ∄h3 guard. Note: the paper writes "q ⪯ h3"
			// (q generalizes h3), which is vacuous — a descendant of
			// glb(h, h') descends from h, so it can never be another
			// *maximal* member of G. The inclusion-exclusion-correct
			// reading, implemented here, skips the add-back when a
			// third member of G generalizes the glb: the (h, h')
			// overlap then lies entirely inside h3, and the (h, h3)
			// and (h', h3) pairs already restore it exactly once.
			shadowed := false
			for t, h3 := range G {
				if t == i || t == j {
					continue
				}
				if h3.Generalizes(q) {
					shadowed = true
					break
				}
			}
			if !shadowed {
				upper, _ := est.Bounds(q)
				r += upper
			}
		}
	}
	return r
}

// prefixCompare orders prefixes deterministically.
func prefixCompare(a, b hierarchy.Prefix) int {
	switch {
	case a.Src != b.Src:
		if a.Src < b.Src {
			return -1
		}
		return 1
	case a.Dst != b.Dst:
		if a.Dst < b.Dst {
			return -1
		}
		return 1
	case a.SrcLen != b.SrcLen:
		if a.SrcLen < b.SrcLen {
			return -1
		}
		return 1
	case a.DstLen != b.DstLen:
		if a.DstLen < b.DstLen {
			return -1
		}
		return 1
	}
	return 0
}
