package hhhset

import (
	"slices"
	"testing"

	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// mapEstimator serves exact bounds from a table; missing prefixes are
// zero.
type mapEstimator map[hierarchy.Prefix]float64

func (m mapEstimator) Bounds(p hierarchy.Prefix) (float64, float64) {
	v := m[p]
	return v, v
}

func pfx(a, b, c, d byte, keep uint8) hierarchy.Prefix {
	return hierarchy.Prefix{Src: hierarchy.MaskBytes(hierarchy.IPv4(a, b, c, d), keep), SrcLen: keep}
}

func TestComputeConditionsOutAncestors(t *testing.T) {
	// One flow carries all its ancestors' weight: only the flow (and
	// the root via residual) should be selected.
	flow := pfx(9, 8, 7, 6, 4)
	est := mapEstimator{
		flow:               500,
		pfx(9, 8, 7, 0, 3): 505,
		pfx(9, 8, 0, 0, 2): 510,
		pfx(9, 0, 0, 0, 1): 515,
		{}:                 1000,
	}
	cands := []hierarchy.Prefix{flow, pfx(9, 8, 7, 0, 3), pfx(9, 8, 0, 0, 2), pfx(9, 0, 0, 0, 1), {}}
	got := Compute(hierarchy.OneD{}, est, cands, 400, 0)
	want := map[hierarchy.Prefix]bool{flow: true, {}: true}
	if len(got) != len(want) {
		t.Fatalf("Compute = %v, want flow and root only", got)
	}
	for _, e := range got {
		if !want[e.Prefix] {
			t.Fatalf("unexpected member %v", e.Prefix)
		}
	}
	// Root's conditioned frequency subtracts only its closest selected
	// descendant (the flow): 1000 − 500.
	for _, e := range got {
		if e.Prefix == (hierarchy.Prefix{}) && e.Conditioned != 500 {
			t.Fatalf("root conditioned = %v, want 500", e.Conditioned)
		}
	}
}

func TestComputeLevelsScannedBottomUp(t *testing.T) {
	// A /24 and its /16 parent both above threshold on their own
	// weight: both selected, parent conditioned on child.
	child := pfx(1, 2, 3, 0, 3)
	parent := pfx(1, 2, 0, 0, 2)
	est := mapEstimator{child: 300, parent: 700}
	got := Compute(hierarchy.OneD{}, est, []hierarchy.Prefix{parent, child}, 250, 0)
	if len(got) != 2 {
		t.Fatalf("Compute = %v", got)
	}
	if got[0].Prefix != child {
		t.Fatal("child level must be scanned first")
	}
	if got[1].Conditioned != 400 {
		t.Fatalf("parent conditioned = %v, want 700-300", got[1].Conditioned)
	}
}

func TestComputeCompensationAdmitsBorderline(t *testing.T) {
	p := pfx(4, 0, 0, 0, 1)
	est := mapEstimator{p: 90}
	if got := Compute(hierarchy.OneD{}, est, []hierarchy.Prefix{p}, 100, 0); len(got) != 0 {
		t.Fatalf("without compensation: %v", got)
	}
	got := Compute(hierarchy.OneD{}, est, []hierarchy.Prefix{p}, 100, 15)
	if len(got) != 1 || got[0].Conditioned != 105 {
		t.Fatalf("with compensation: %v", got)
	}
}

func TestComputeDeduplicatesCandidates(t *testing.T) {
	p := pfx(4, 0, 0, 0, 1)
	est := mapEstimator{p: 200}
	got := Compute(hierarchy.OneD{}, est, []hierarchy.Prefix{p, p, p}, 100, 0)
	if len(got) != 1 {
		t.Fatalf("duplicates not removed: %v", got)
	}
}

func TestCompute2DGLBAddBack(t *testing.T) {
	// Row (src fixed) and column (dst fixed) overlap on one cell. The
	// root must add back the glb's weight after subtracting both.
	var h hierarchy.TwoD
	row := hierarchy.Prefix{Src: hierarchy.IPv4(1, 1, 1, 1), SrcLen: 4}
	col := hierarchy.Prefix{Dst: hierarchy.IPv4(2, 2, 2, 2), DstLen: 4}
	cell := hierarchy.Prefix{
		Src: hierarchy.IPv4(1, 1, 1, 1), SrcLen: 4,
		Dst: hierarchy.IPv4(2, 2, 2, 2), DstLen: 4,
	}
	est := mapEstimator{
		row:  400, // includes the cell's 300
		col:  400, // includes the cell's 300
		cell: 300,
		{}:   1000,
	}
	// Threshold 100: the cell passes at level 0 (300), row and col pass
	// at their level conditioned on the cell (400 − 300 = 100), and the
	// root's conditioned frequency exercises the glb add-back:
	// 1000 − 400 − 400 + 300 = 500 (without the add-back it would be
	// 200 — the assertion pins the exact value).
	got := Compute(h, est, []hierarchy.Prefix{row, col, cell, {}}, 100, 0)
	byPrefix := map[hierarchy.Prefix]Entry{}
	for _, e := range got {
		byPrefix[e.Prefix] = e
	}
	for _, want := range []hierarchy.Prefix{cell, row, col, {}} {
		if _, ok := byPrefix[want]; !ok {
			t.Fatalf("%v missing from %v", want, got)
		}
	}
	if c := byPrefix[row].Conditioned; c != 100 {
		t.Fatalf("row conditioned = %v, want 400-300", c)
	}
	if c := byPrefix[hierarchy.Prefix{}].Conditioned; c != 500 {
		t.Fatalf("root conditioned = %v, want 1000-400-400+300", c)
	}
}

func TestCompute2DGLBShadowedByThird(t *testing.T) {
	// Three mutually incomparable members of G(root|P):
	//   A = (1.1/16, *), B = (*, 2.2/16), C = (1/8, 2/8).
	// glb(A, B) = (1.1/16, 2.2/16) lies entirely inside C, so its
	// add-back must be skipped; the (A, C) and (B, C) pairs restore
	// the overlap exactly once each (Algorithm 4's ∄h3 condition).
	var h hierarchy.TwoD
	A := hierarchy.Prefix{Src: hierarchy.IPv4(1, 1, 0, 0), SrcLen: 2}
	B := hierarchy.Prefix{Dst: hierarchy.IPv4(2, 2, 0, 0), DstLen: 2}
	C := hierarchy.Prefix{Src: hierarchy.IPv4(1, 0, 0, 0), SrcLen: 1, Dst: hierarchy.IPv4(2, 0, 0, 0), DstLen: 1}
	glbAB, ok := hierarchy.GLB(A, B)
	if !ok || !C.Generalizes(glbAB) {
		t.Fatal("fixture: C must generalize glb(A, B)")
	}
	glbAC, _ := hierarchy.GLB(A, C) // (1.1/16, 2/8)
	glbBC, _ := hierarchy.GLB(B, C) // (1/8, 2.2/16)
	est := mapEstimator{
		A: 800, B: 800, C: 900,
		glbAB: 700, glbAC: 750, glbBC: 760,
		{}: 5000,
	}
	// Depths: A and B are at depth 6, C at depth 6 as well
	// ((4-2)+(4-0) = (4-1)+(4-1) = 6), so all three are candidates of
	// the same level and mutually incomparable — all selected at
	// threshold 500.
	got := Compute(h, est, []hierarchy.Prefix{A, B, C, {}}, 500, 0)
	byPrefix := map[hierarchy.Prefix]Entry{}
	for _, e := range got {
		byPrefix[e.Prefix] = e
	}
	for _, want := range []hierarchy.Prefix{A, B, C} {
		if _, ok := byPrefix[want]; !ok {
			t.Fatalf("%v missing from %v", want, got)
		}
	}
	root, ok := byPrefix[hierarchy.Prefix{}]
	if !ok {
		t.Fatalf("root missing: %v", got)
	}
	// calcPred(root): −800 −800 −900, pairs: (A,B) shadowed by C
	// (skipped), (A,C) +750, (B,C) +760. With the vacuous literal
	// reading of the paper's condition the skipped 700 would be added
	// and this pin would catch it.
	want := 5000.0 - 800 - 800 - 900 + 750 + 760
	if root.Conditioned != want {
		t.Fatalf("root conditioned = %v, want %v", root.Conditioned, want)
	}
}

func TestComputeDeterministicOrder(t *testing.T) {
	est := mapEstimator{}
	var cands []hierarchy.Prefix
	for i := 0; i < 20; i++ {
		p := pfx(byte(i), 0, 0, 0, 1)
		est[p] = 500
		cands = append(cands, p)
	}
	a := Compute(hierarchy.OneD{}, est, cands, 100, 0)
	// Shuffle candidate order; output must not change.
	for i := range cands {
		j := (i * 7) % len(cands)
		cands[i], cands[j] = cands[j], cands[i]
	}
	b := Compute(hierarchy.OneD{}, est, cands, 100, 0)
	if len(a) != len(b) {
		t.Fatal("length depends on candidate order")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order-dependent output at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// countingEstimator wraps mapEstimator and counts Bounds calls per
// prefix.
type countingEstimator struct {
	m     mapEstimator
	calls map[hierarchy.Prefix]int
}

func (c *countingEstimator) Bounds(p hierarchy.Prefix) (float64, float64) {
	c.calls[p]++
	return c.m.Bounds(p)
}

// TestComputeBoundsCalledOncePerCandidate pins the Scratch bounds
// cache: however many selected descendants a candidate has, the
// estimator is consulted exactly once per unique candidate. On the
// sharded front-end every saved call is a saved multi-shard probe.
func TestComputeBoundsCalledOncePerCandidate(t *testing.T) {
	h := hierarchy.OneD{}
	// A deep chain: /32 under /24 under /16 under /8, all heavy, so
	// every level's calcPred walks multiple selected descendants.
	full := hierarchy.Prefix{Src: hierarchy.IPv4(10, 1, 2, 3), SrcLen: 4}
	cands := []hierarchy.Prefix{
		full,
		{Src: hierarchy.MaskBytes(full.Src, 3), SrcLen: 3},
		{Src: hierarchy.MaskBytes(full.Src, 2), SrcLen: 2},
		{Src: hierarchy.MaskBytes(full.Src, 1), SrcLen: 1},
		{},
		full, // duplicate: must not trigger a second Bounds call
	}
	est := &countingEstimator{
		m:     mapEstimator{},
		calls: map[hierarchy.Prefix]int{},
	}
	for _, p := range cands {
		est.m[p] = 1000
	}
	var sc Scratch
	got := ComputeInto(h, est, cands, 100, 0, &sc, nil)
	if len(got) == 0 {
		t.Fatal("test vacuous: nothing selected")
	}
	for p, n := range est.calls {
		if n != 1 {
			t.Errorf("Bounds(%v) called %d times, want 1", p, n)
		}
	}
	// The cached run must equal an uncached reference computation.
	want := Compute(h, est.m, cands, 100, 0)
	if len(got) != len(want) {
		t.Fatalf("cached run selected %d entries, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: cached %+v, reference %+v", i, got[i], want[i])
		}
	}
}

// referenceCompute is the textbook Algorithm 2/3 scan — generic
// Closest per candidate, no caching, no cover bits — used to verify
// the optimized 1D path on random inputs.
func referenceCompute(h hierarchy.Hierarchy, est Estimator, candidates []hierarchy.Prefix, threshold, compensation float64) []Entry {
	levels := h.Levels()
	byLevel := make([][]hierarchy.Prefix, levels)
	seen := map[hierarchy.Prefix]bool{}
	for _, p := range candidates {
		if seen[p] {
			continue
		}
		seen[p] = true
		d := h.Depth(p)
		if d >= 0 && d < levels {
			byLevel[d] = append(byLevel[d], p)
		}
	}
	var selected []hierarchy.Prefix
	var out []Entry
	for level := 0; level < levels; level++ {
		cands := byLevel[level]
		slices.SortFunc(cands, prefixCompare)
		for _, p := range cands {
			G := hierarchy.Closest(p, selected, nil)
			r := 0.0
			for _, g := range G {
				_, lower := est.Bounds(g)
				r -= lower
			}
			upper, _ := est.Bounds(p)
			cond := upper + r + compensation
			if cond >= threshold {
				selected = append(selected, p)
				out = append(out, Entry{Prefix: p, Estimate: upper, Conditioned: cond})
			}
		}
	}
	return out
}

// TestCompute1DFastPathMatchesReference drives random 1D candidate
// sets through ComputeInto and the reference scan; the cover-bit fast
// path must agree entry for entry.
func TestCompute1DFastPathMatchesReference(t *testing.T) {
	h := hierarchy.OneD{}
	src := rng.New(91)
	for trial := 0; trial < 200; trial++ {
		est := mapEstimator{}
		var cands []hierarchy.Prefix
		n := 5 + src.Intn(60)
		for i := 0; i < n; i++ {
			// Small address pool so chains and duplicates are common.
			addr := uint32(src.Intn(4))<<24 | uint32(src.Intn(3))<<16 |
				uint32(src.Intn(3))<<8 | uint32(src.Intn(3))
			keep := uint8(src.Intn(5))
			p := hierarchy.Prefix{Src: hierarchy.MaskBytes(addr, keep), SrcLen: keep}
			cands = append(cands, p)
			if _, ok := est[p]; !ok {
				est[p] = float64(src.Intn(2000))
			}
		}
		threshold := float64(100 + src.Intn(1000))
		comp := float64(src.Intn(200))
		var sc Scratch
		got := ComputeInto(h, est, cands, threshold, comp, &sc, nil)
		want := referenceCompute(h, est, cands, threshold, comp)
		if len(got) != len(want) {
			t.Fatalf("trial %d: fast path selected %d, reference %d\n%v\n%v",
				trial, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d entry %d: fast %+v, reference %+v", trial, i, got[i], want[i])
			}
		}
	}
}
