package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// pipePair returns a wrapped client conn over a real TCP loopback
// pair, with the raw server side for inspection.
func pipePair(t *testing.T, inj *Injector) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { raw.Close(); r.c.Close() })
	return inj.WrapConn(raw), r.c
}

func TestFaultDropDiscardsWrites(t *testing.T) {
	inj := NewInjector(1)
	inj.SetFault(Fault{Drop: 1})
	client, server := pipePair(t, inj)
	if n, err := client.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("dropped write returned (%d, %v), want (5, nil)", n, err)
	}
	server.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 8)
	if n, err := server.Read(buf); err == nil {
		t.Fatalf("read %d bytes through a total drop", n)
	}
	if st := inj.Stats(); st.Drops != 1 || st.Delivered != 0 {
		t.Fatalf("stats %+v, want 1 drop", st)
	}
	// Heal restores delivery on the same connection.
	inj.Heal()
	if _, err := client.Write([]byte("again")); err != nil {
		t.Fatal(err)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, buf[:5]); err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
	if string(buf[:5]) != "again" {
		t.Fatalf("post-heal read %q", buf[:5])
	}
}

func TestFaultResetClosesConn(t *testing.T) {
	inj := NewInjector(2)
	inj.SetFault(Fault{Reset: 1})
	client, _ := pipePair(t, inj)
	if _, err := client.Write(make([]byte, 64)); err == nil {
		t.Fatal("reset write succeeded")
	}
	// The connection is dead for good, even after heal.
	inj.Heal()
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatal("write on reset connection succeeded")
	}
	if st := inj.Stats(); st.Resets != 1 {
		t.Fatalf("stats %+v, want 1 reset", st)
	}
}

func TestFaultPartialWritePreservesStream(t *testing.T) {
	inj := NewInjector(3)
	inj.SetFault(Fault{Partial: 1})
	client, server := pipePair(t, inj)
	msg := bytes.Repeat([]byte("memento"), 100)
	go func() {
		client.Write(msg)
	}()
	got := make([]byte, len(msg))
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("segmented write corrupted the stream")
	}
	if st := inj.Stats(); st.Partials == 0 {
		t.Fatalf("stats %+v, want partials", st)
	}
}

func TestFaultOutboundPartitionBlackholes(t *testing.T) {
	inj := NewInjector(4)
	inj.Partition(false, true)
	client, server := pipePair(t, inj)
	if n, err := client.Write([]byte("void")); n != 4 || err != nil {
		t.Fatalf("blackholed write returned (%d, %v)", n, err)
	}
	server.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, err := server.Read(make([]byte, 8)); err == nil {
		t.Fatalf("read %d bytes through an outbound cut", n)
	}
	if st := inj.Stats(); st.Blackholed != 1 {
		t.Fatalf("stats %+v, want 1 blackholed", st)
	}
}

func TestFaultInboundPartitionStallsAndHeals(t *testing.T) {
	inj := NewInjector(5)
	client, server := pipePair(t, inj)
	inj.Partition(true, false)
	if _, err := server.Write([]byte("late")); err != nil {
		t.Fatal(err)
	}
	read := make(chan error, 1)
	buf := make([]byte, 4)
	go func() {
		_, err := io.ReadFull(client, buf)
		read <- err
	}()
	select {
	case err := <-read:
		t.Fatalf("read returned %v through an inbound cut", err)
	case <-time.After(100 * time.Millisecond):
	}
	// Heal delivers the buffered bytes.
	inj.Heal()
	select {
	case err := <-read:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still stalled after heal")
	}
	if string(buf) != "late" {
		t.Fatalf("post-heal read %q", buf)
	}
}

func TestFaultInboundPartitionHonorsReadDeadline(t *testing.T) {
	inj := NewInjector(6)
	client, _ := pipePair(t, inj)
	inj.Partition(true, false)
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := client.Read(make([]byte, 4))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned read error %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire through the partition", elapsed)
	}
}

func TestFaultCloseUnblocksPartitionedRead(t *testing.T) {
	inj := NewInjector(7)
	client, _ := pipePair(t, inj)
	inj.Partition(true, false)
	read := make(chan error, 1)
	go func() {
		_, err := client.Read(make([]byte, 4))
		read <- err
	}()
	time.Sleep(20 * time.Millisecond)
	client.Close()
	select {
	case err := <-read:
		if err == nil {
			t.Fatal("read succeeded on closed partitioned conn")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock the partitioned read")
	}
}

// TestFaultDeterministicSchedule pins the rng-seeded contract: two
// injectors with the same seed hand the same sequence of verdicts to
// a serial caller.
func TestFaultDeterministicSchedule(t *testing.T) {
	roll := func(seed uint64) []verdict {
		inj := NewInjector(seed)
		inj.SetFault(Fault{Drop: 0.3, Reset: 0.1, Partial: 0.2})
		out := make([]verdict, 64)
		for i := range out {
			out[i], _ = inj.writeFault()
		}
		return out
	}
	a, b := roll(42), roll(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := roll(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestFaultListenerWrapsAccepted exercises WrapListener and concurrent
// fault rolls under -race.
func TestFaultListenerWrapsAccepted(t *testing.T) {
	inj := NewInjector(8)
	inj.SetFault(Fault{Drop: 0.5, Partial: 0.3, Delay: 0.2, DelayBound: time.Millisecond})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := inj.WrapListener(raw)
	defer ln.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			c.Write([]byte("probe"))
		}()
	}
	for i := 0; i < 4; i++ {
		c, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.(*conn); !ok {
			t.Fatalf("accepted conn is %T, not fault-wrapped", c)
		}
		c.Write(bytes.Repeat([]byte("y"), 128))
		c.Close()
	}
	wg.Wait()
	st := inj.Stats()
	if st.Drops+st.Partials+st.Delays+st.Delivered == 0 {
		t.Fatalf("no write verdicts recorded: %+v", st)
	}
}
