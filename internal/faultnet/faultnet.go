// Package faultnet wraps net.Conn / net.Listener with deterministic
// fault injection for chaos-testing the fleet plane: write drops,
// bounded delays, segmented (partial) writes, mid-write connection
// resets and one-way partitions, all driven by an internal/rng-seeded
// source so a failing schedule replays from its seed.
//
// One Injector carries the fault state for every connection wrapped
// through it; tests flip its knobs mid-run (SetFault, Partition,
// Heal) to script a fault schedule. Faults are decided per Write call
// under the injector's lock — with concurrent connections the
// interleaving (and hence which write eats which fault) follows the
// scheduler, so tests assert convergence and accounting, not exact
// fault placement.
//
// Fault semantics, chosen to exercise the protocol layer the way real
// networks do:
//
//   - Drop: the Write reports success but nothing is sent. The peer's
//     stream loses a frame mid-sequence, so its next read desyncs
//     (bad length prefix or CRC) and the connection dies — exactly
//     how a filtered packet kills a framed TCP protocol.
//   - Delay: the Write sleeps a bounded, rng-drawn time first.
//   - Partial: the Write is split into two underlying writes. TCP
//     semantics are unchanged — this exercises the peer's short-read
//     (io.ReadFull across segment boundaries) paths.
//   - Reset: half the buffer is written, then the connection closes
//     and the Write errors — a mid-frame RST.
//   - Partition: one-way cuts relative to the wrapped endpoint.
//     Outbound cut: writes are blackholed (reported successful).
//     Inbound cut: reads stall as an unreachable peer would — but
//     still honor the connection's read deadline, so a controller
//     read timeout fires through a partition like through silence.
package faultnet

import (
	"net"
	"os"
	"sync"
	"time"

	"memento/internal/rng"
)

// Fault is a probability profile for write-side faults. Zero is a
// transparent wrapper.
type Fault struct {
	// Drop is the probability a Write is silently discarded.
	Drop float64
	// Reset is the probability a Write turns into a half-written
	// buffer followed by a connection close and an error.
	Reset float64
	// Delay is the probability a Write is delayed; DelayBound bounds
	// the rng-drawn sleep (uniform in (0, DelayBound]).
	Delay      float64
	DelayBound time.Duration
	// Partial is the probability a Write is split into two segments.
	Partial float64
}

// Stats counts injected faults across all connections of an Injector.
type Stats struct {
	Drops      uint64 // writes silently discarded
	Resets     uint64 // connections reset mid-write
	Delays     uint64 // writes delayed
	Partials   uint64 // writes segmented
	Blackholed uint64 // writes eaten by an outbound partition
	Delivered  uint64 // writes passed through untouched
}

// Injector is shared fault state for a set of wrapped connections.
type Injector struct {
	mu     sync.Mutex
	src    *rng.Source   // guarded by mu
	fault  Fault         // guarded by mu
	cutIn  bool          // guarded by mu: inbound (read-side) partition
	cutOut bool          // guarded by mu: outbound (write-side) partition
	epoch  chan struct{} // guarded by mu: closed and replaced on every state change
	stats  Stats         // guarded by mu
}

// NewInjector builds a transparent injector; flip faults on with
// SetFault and Partition. The seed drives every probabilistic choice.
func NewInjector(seed uint64) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{src: rng.New(seed), epoch: make(chan struct{})}
}

// SetFault installs a new write-fault profile.
func (inj *Injector) SetFault(f Fault) {
	inj.mu.Lock()
	inj.fault = f
	inj.bumpLocked()
	inj.mu.Unlock()
}

// Partition sets the one-way cuts: inbound stalls reads through this
// injector, outbound blackholes writes. Directions are relative to
// the wrapped endpoint.
func (inj *Injector) Partition(inbound, outbound bool) {
	inj.mu.Lock()
	inj.cutIn, inj.cutOut = inbound, outbound
	inj.bumpLocked()
	inj.mu.Unlock()
}

// Heal clears every fault and partition.
func (inj *Injector) Heal() {
	inj.mu.Lock()
	inj.fault = Fault{}
	inj.cutIn, inj.cutOut = false, false
	inj.bumpLocked()
	inj.mu.Unlock()
}

// Stats returns a copy of the fault counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// bumpLocked wakes partition-stalled readers so they recheck state;
// the caller holds mu.
//
//memento:locked mu
func (inj *Injector) bumpLocked() {
	close(inj.epoch)
	inj.epoch = make(chan struct{})
}

// inbound reports the read-side partition state and the channel that
// signals its next change.
func (inj *Injector) inbound() (bool, <-chan struct{}) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.cutIn, inj.epoch
}

// verdict is one write's fate.
type verdict uint8

const (
	passThrough verdict = iota
	dropWrite
	blackholeWrite
	resetConn
	segmentWrite
)

// writeFault rolls one write's fate (and any delay) under the lock.
func (inj *Injector) writeFault() (verdict, time.Duration) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.cutOut {
		inj.stats.Blackholed++
		return blackholeWrite, 0
	}
	f := inj.fault
	var delay time.Duration
	if f.Delay > 0 && inj.src.Float64() < f.Delay && f.DelayBound > 0 {
		delay = time.Duration(inj.src.Float64() * float64(f.DelayBound))
		inj.stats.Delays++
	}
	switch {
	case f.Drop > 0 && inj.src.Float64() < f.Drop:
		inj.stats.Drops++
		return dropWrite, delay
	case f.Reset > 0 && inj.src.Float64() < f.Reset:
		inj.stats.Resets++
		return resetConn, delay
	case f.Partial > 0 && inj.src.Float64() < f.Partial:
		inj.stats.Partials++
		return segmentWrite, delay
	default:
		inj.stats.Delivered++
		return passThrough, delay
	}
}

// WrapConn wraps one connection in the injector's fault state.
func (inj *Injector) WrapConn(c net.Conn) net.Conn {
	return &conn{Conn: c, inj: inj, closed: make(chan struct{})}
}

// WrapListener wraps a listener so every accepted connection is
// fault-injected.
func (inj *Injector) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: inj}
}

// listener wraps Accept.
type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.WrapConn(c), nil
}

// conn is one fault-injected connection.
type conn struct {
	net.Conn
	inj *Injector

	mu           sync.Mutex
	readDeadline time.Time // guarded by mu: mirrored so partition stalls honor it

	closeOnce sync.Once
	closed    chan struct{}
}

func (c *conn) Read(p []byte) (int, error) {
	for {
		cut, epoch := c.inj.inbound()
		if !cut {
			return c.Conn.Read(p)
		}
		// Partitioned: stall like an unreachable peer. Data the peer
		// already sent waits in kernel buffers and delivers after
		// heal (a long delay), unless the deadline kills the
		// connection first — both are faithful partition outcomes.
		c.mu.Lock()
		dl := c.readDeadline
		c.mu.Unlock()
		var timeout <-chan time.Time
		var timer *time.Timer
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return 0, os.ErrDeadlineExceeded
			}
			timer = time.NewTimer(d)
			timeout = timer.C
		}
		select {
		case <-epoch: // state changed; recheck
		case <-timeout:
			return 0, os.ErrDeadlineExceeded
		case <-c.closed:
			if timer != nil {
				timer.Stop()
			}
			return 0, net.ErrClosed
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

func (c *conn) Write(p []byte) (int, error) {
	v, delay := c.inj.writeFault()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch v {
	case dropWrite, blackholeWrite:
		return len(p), nil
	case resetConn:
		c.Conn.Write(p[:len(p)/2])
		c.Close()
		return 0, errReset
	case segmentWrite:
		half := (len(p) + 1) / 2
		n, err := c.Conn.Write(p[:half])
		if err != nil {
			return n, err
		}
		m, err := c.Conn.Write(p[half:])
		return n + m, err
	default:
		return c.Conn.Write(p)
	}
}

func (c *conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.Conn.Close()
	})
	return err
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// errReset is the injected mid-write reset error.
var errReset = &net.OpError{Op: "write", Net: "faultnet", Err: os.ErrClosed}
