package detect

import (
	"math"
	"testing"
)

func TestClosedFormsPaperAnchors(t *testing.T) {
	// "when the frequency is twice the threshold, it takes a window
	// algorithm half a window ... whereas interval-based algorithms
	// require between 0.6-1.0 windows" (Figure 1b caption).
	if got := WindowDelay(2); got != 0.5 {
		t.Fatalf("WindowDelay(2) = %v", got)
	}
	if got := ImprovedIntervalDelay(2); math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("ImprovedIntervalDelay(2) = %v, want 0.625", got)
	}
	if got := IntervalDelay(2); got != 1.0 {
		t.Fatalf("IntervalDelay(2) = %v, want 1.0", got)
	}
	// At r = 1 windows detect in exactly one window; intervals in 1.5.
	if WindowDelay(1) != 1 || IntervalDelay(1) != 1.5 || ImprovedIntervalDelay(1) != 1.5 {
		t.Fatal("r=1 anchors wrong")
	}
}

func TestClosedFormOrdering(t *testing.T) {
	// Window ≤ improved interval ≤ interval for every r ≥ 1, with
	// strict gaps away from degenerate points.
	for r := 1.0; r <= 3.0; r += 0.05 {
		w, ii, iv := WindowDelay(r), ImprovedIntervalDelay(r), IntervalDelay(r)
		if !(w < ii && ii <= iv+1e-12) {
			t.Fatalf("ordering broken at r=%v: %v %v %v", r, w, ii, iv)
		}
	}
	// The window advantage over Interval approaches 40% near r = 1
	// ("up to 40% faster detection time").
	if adv := 1 - WindowDelay(1)/IntervalDelay(1); adv < 0.3 {
		t.Fatalf("window advantage at r=1 is %v, want ≥ 0.3", adv)
	}
	// And remains >5% at the end of the tested range against the
	// improved variant ("still over 5% quicker").
	if adv := 1 - WindowDelay(2.5)/ImprovedIntervalDelay(2.5); adv < 0.05 {
		t.Fatalf("window advantage at r=2.5 is %v, want > 0.05", adv)
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := []SimConfig{
		{Window: 0, Theta: 0.1, Ratio: 2, Runs: 1},
		{Window: 100, Theta: 0, Ratio: 2, Runs: 1},
		{Window: 100, Theta: 0.1, Ratio: 0.5, Runs: 1},
		{Window: 100, Theta: 0.6, Ratio: 2, Runs: 1}, // rate > 1
		{Window: 100, Theta: 0.1, Ratio: 2, Runs: 0},
	}
	for i, cfg := range bad {
		if _, err := Simulate(MethodWindow, cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := Simulate(Method(99), SimConfig{Window: 100, Theta: 0.1, Ratio: 2, Runs: 1}); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestSimulationMatchesClosedForms(t *testing.T) {
	// Monte Carlo with exact oracles must land on the analytic curves.
	cfg := SimConfig{Window: 2000, Theta: 0.1, Runs: 150, Seed: 1}
	for _, r := range []float64{1.25, 2.0} {
		cfg.Ratio = r
		for m, want := range map[Method]float64{
			MethodWindow:           WindowDelay(r),
			MethodImprovedInterval: ImprovedIntervalDelay(r),
			MethodInterval:         IntervalDelay(r),
		} {
			res, err := Simulate(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Detected != res.Runs {
				t.Fatalf("%v r=%v: only %d/%d detected", m, r, res.Detected, res.Runs)
			}
			// Binomial arrival noise gives ≈ 5% spread at this scale.
			if math.Abs(res.MeanDelay-want) > 0.08*want+0.02 {
				t.Fatalf("%v r=%v: mean delay %v, analytic %v", m, r, res.MeanDelay, want)
			}
		}
	}
}

func TestMementoDetectsNearOptimally(t *testing.T) {
	// The sketch should track the exact window closely: never slower
	// than the Interval method, within a couple of error bands of the
	// exact window (its one-sided overestimate can only detect early).
	cfg := SimConfig{Window: 2000, Theta: 0.1, Ratio: 1.5, Runs: 100, Seed: 2, Tau: 0.25, Counters: 128}
	mem, err := Simulate(MethodMemento, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Detected != mem.Runs {
		t.Fatalf("Memento missed detections: %d/%d", mem.Detected, mem.Runs)
	}
	want := WindowDelay(cfg.Ratio)
	if mem.MeanDelay > IntervalDelay(cfg.Ratio) {
		t.Fatalf("Memento slower than the Interval method: %v", mem.MeanDelay)
	}
	if mem.MeanDelay > want*1.3 {
		t.Fatalf("Memento delay %v too far above optimal %v", mem.MeanDelay, want)
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		MethodInterval:         "Interval",
		MethodImprovedInterval: "ImprovedInterval",
		MethodWindow:           "Window",
		MethodMemento:          "Memento",
		Method(42):             "Method(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(m), got, want)
		}
	}
}
