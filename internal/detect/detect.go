// Package detect models the detection-time comparison of paper
// Section 3 (Figure 1b): how long each measurement method takes to
// identify a new heavy hitter that consumes a constant fraction of
// traffic from its first appearance.
//
// Let θ be the detection threshold, f the new flow's normalized rate,
// and r = f/θ ≥ 1. Measuring time in windows of W packets, with the
// flow appearing at a uniformly random phase u of the measurement
// period, the expected detection delays are:
//
//	Window:            1/r                 (optimal by definition)
//	Improved interval: 1/r + 1/(2r²)       (per-packet estimates that
//	                                        reset at boundaries)
//	Interval:          1/2 + 1/r           (estimates only at period
//	                                        boundaries)
//
// These closed forms reproduce the paper's observations: at r = 2 the
// window needs half a window while intervals need 0.625–1.0; near
// r = 1 the window is ≈ 33-40% faster; the window method dominates
// everywhere. The Monte Carlo simulator cross-checks the closed forms
// with real packet streams and also runs the actual Memento sketch in
// place of the exact window.
package detect

import (
	"errors"
	"fmt"

	"memento/internal/core"
	"memento/internal/exact"
	"memento/internal/keyidx"
	"memento/internal/rng"
)

// WindowDelay returns the expected detection delay, in windows, of the
// sliding-window method for rate ratio r = f/θ.
func WindowDelay(r float64) float64 { return 1 / r }

// ImprovedIntervalDelay returns the expected delay of the improved
// Interval method (frequencies estimated on every arrival, counts reset
// each period).
func ImprovedIntervalDelay(r float64) float64 { return 1/r + 1/(2*r*r) }

// IntervalDelay returns the expected delay of the Interval method
// (frequencies estimated only at the end of each period).
func IntervalDelay(r float64) float64 { return 0.5 + 1/r }

// Method selects a detection mechanism for the simulator.
type Method int

// Simulation methods. MethodMemento runs the actual sketch from
// internal/core instead of an exact window.
const (
	MethodInterval Method = iota
	MethodImprovedInterval
	MethodWindow
	MethodMemento
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodInterval:
		return "Interval"
	case MethodImprovedInterval:
		return "ImprovedInterval"
	case MethodWindow:
		return "Window"
	case MethodMemento:
		return "Memento"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// SimConfig parameterizes a detection-time simulation.
type SimConfig struct {
	// Window is W, the window / interval length in packets.
	Window int
	// Theta is the detection threshold θ.
	Theta float64
	// Ratio is r = f/θ, the new flow's rate relative to the threshold.
	Ratio float64
	// Runs is the number of independent repetitions to average.
	Runs int
	// Seed fixes the randomness.
	Seed uint64
	// Tau and Counters configure the sketch for MethodMemento
	// (defaults: τ = 1/16, 256 counters).
	Tau      float64
	Counters int
}

func (c SimConfig) validate() error {
	switch {
	case c.Window <= 0:
		return errors.New("detect: window must be positive")
	case c.Theta <= 0 || c.Theta >= 1:
		return errors.New("detect: theta must be in (0, 1)")
	case c.Ratio < 1:
		return errors.New("detect: ratio below 1 never detects")
	case c.Theta*c.Ratio > 1:
		return errors.New("detect: flow rate above 1")
	case c.Runs <= 0:
		return errors.New("detect: need at least one run")
	}
	return nil
}

// Result aggregates a simulation.
type Result struct {
	Method Method
	// MeanDelay is the average detection delay in windows.
	MeanDelay float64
	// Detected counts runs that detected within the horizon.
	Detected int
	Runs     int
}

// Simulate measures the mean detection delay of the method under cfg.
// Each run injects a fresh flow at a uniformly random phase into a
// stream of otherwise-unique noise keys and reports the packet count
// from first appearance until the method's estimate of the flow
// reaches θ·W, in windows. Runs that do not detect within five windows
// are counted at the horizon (they indicate a broken method).
func Simulate(m Method, cfg SimConfig) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	src := rng.New(cfg.Seed ^ 0xde7ec7)
	res := Result{Method: m, Runs: cfg.Runs}
	w := cfg.Window
	f := cfg.Theta * cfg.Ratio
	horizon := 5 * w

	total := 0.0
	for run := 0; run < cfg.Runs; run++ {
		delay, ok, err := simulateOnce(m, cfg, src, w, f, horizon)
		if err != nil {
			return Result{}, err
		}
		if ok {
			res.Detected++
		}
		total += float64(delay) / float64(w)
	}
	res.MeanDelay = total / float64(cfg.Runs)
	return res, nil
}

// simulateOnce runs one repetition and returns the detection delay in
// packets.
func simulateOnce(m Method, cfg SimConfig, src *rng.Source, w int, f float64, horizon int) (int, bool, error) {
	const flowKey = uint64(1)
	noise := uint64(1 << 32) // unique noise keys, never repeated
	threshold := cfg.Theta * float64(w)

	var (
		window  *exact.SlidingWindow[uint64]
		interva *exact.Interval[uint64]
		sketch  *core.Sketch[uint64]
		err     error
	)
	switch m {
	case MethodWindow:
		window, err = exact.NewSlidingWindow[uint64](w)
	case MethodInterval, MethodImprovedInterval:
		interva, err = exact.NewInterval[uint64](w)
	case MethodMemento:
		tau := cfg.Tau
		if tau == 0 {
			tau = 1.0 / 16
		}
		k := cfg.Counters
		if k == 0 {
			k = 256
		}
		// The detection loop queries on every arrival (the on-arrival
		// setting the window method's advantage comes from); a shared
		// hasher lets each of those queries hash the key once for both
		// the overflow table and the Space Saving probe.
		sketch, err = core.NewWithHash[uint64](core.Config{
			Window: w, Counters: k, Tau: tau, Seed: src.Uint64() | 1,
		}, keyidx.DefaultHasher[uint64]())
	default:
		return 0, false, fmt.Errorf("detect: unknown method %v", m)
	}
	if err != nil {
		return 0, false, err
	}

	add := func(k uint64) {
		switch m {
		case MethodWindow:
			window.Add(k)
		case MethodInterval, MethodImprovedInterval:
			interva.Add(k)
		case MethodMemento:
			sketch.Update(k)
		}
	}
	estimate := func() float64 {
		switch m {
		case MethodWindow:
			return float64(window.Count(flowKey))
		case MethodInterval, MethodImprovedInterval:
			return float64(interva.Count(flowKey))
		case MethodMemento:
			return sketch.Query(flowKey)
		}
		return 0
	}

	// Warm-up: a full period of noise, then a random phase of noise so
	// the flow appears at a uniform offset within the period.
	phase := src.Intn(w)
	for i := 0; i < w+phase; i++ {
		add(noise)
		noise++
	}
	// Flow active: each packet is the flow with probability f.
	for t := 1; t <= horizon; t++ {
		if src.Float64() < f {
			add(flowKey)
		} else {
			add(noise)
			noise++
		}
		if m == MethodInterval {
			// Estimates available only at period boundaries.
			if interva.Pos() == w && estimate() >= threshold {
				return t, true, nil
			}
			continue
		}
		if estimate() >= threshold {
			return t, true, nil
		}
	}
	return horizon, false, nil
}
