// Checkpointer: periodic base+delta chains on disk, the warm-restart
// half of the subsystem. A process hands it a Source (anything that
// can write the next chain record — a single Tracker, or a sharded
// instance advancing per-shard trackers in lockstep) and calls Tick
// at its checkpoint cadence; the directory then always contains a
// restorable chain: one base file plus consecutively numbered delta
// files. Writes are atomic (temp file + rename) and every Nth tick
// rebases and prunes the previous chain, bounding both restore time
// and disk.

package delta

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Source writes chain records for the Checkpointer. Implementations:
// a Tracker-backed single instance (netwide.Controller) or a sharded
// set advancing one tracker per shard (shard.HHH).
type Source interface {
	// WriteChain writes the next chain step to w — a full base when
	// rebase is set or the underlying chain needs one — and reports
	// whether a base was written.
	WriteChain(w io.Writer, rebase bool) (base bool, err error)
}

// Chain is a restorable on-disk chain: the newest base file and the
// consecutive delta files that follow it.
type Chain struct {
	Base   string
	Deltas []string
}

// Open opens the chain's files in restore order, matching the restore
// functions' (base, deltas...) signatures. The caller invokes
// closeAll when done; on error everything already opened has been
// closed. Every warm-restart path (cmd/controller, cmd/lbproxy,
// mementoctl) goes through here so file handling lives in one place.
func (c *Chain) Open() (base io.Reader, deltas []io.Reader, closeAll func(), err error) {
	var open []io.Closer
	closeOpen := func() {
		for _, f := range open {
			f.Close()
		}
	}
	b, err := os.Open(c.Base)
	if err != nil {
		return nil, nil, nil, err
	}
	open = append(open, b)
	for _, path := range c.Deltas {
		f, err := os.Open(path)
		if err != nil {
			closeOpen()
			return nil, nil, nil, err
		}
		open = append(open, f)
		deltas = append(deltas, f)
	}
	return b, deltas, closeOpen, nil
}

const (
	baseExt  = ".base"
	deltaExt = ".delta"
	filePref = "chain-"
)

// Checkpointer writes a Source's chain records into a directory.
// Not safe for concurrent use.
type Checkpointer struct {
	dir       string
	src       Source
	baseEvery int
	seq       uint64
	sinceBase int
	based     bool
}

// NewCheckpointer prepares dir (created if missing) for chain writes.
// baseEvery is the number of delta ticks between full bases; <= 0
// selects 16. File numbering continues after any files already
// present, and the first Tick always writes a base.
func NewCheckpointer(dir string, src Source, baseEvery int) (*Checkpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("delta: checkpoint dir: %w", err)
	}
	if baseEvery <= 0 {
		baseEvery = 16
	}
	cp := &Checkpointer{dir: dir, src: src, baseEvery: baseEvery}
	seqs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		cp.seq = seqs[len(seqs)-1].seq
	}
	return cp, nil
}

// Tick writes the next chain file and returns its path. After a
// successful base, older files are pruned. Any failure forces the
// next Tick to rebase: the source's tracker may have advanced its
// epoch for a record that never reached disk, and a delta written
// after such a hole would pass FindChain's consecutive-numbering
// check yet fail ErrEpochGap validation at restore — the whole chain
// would be silently useless until the next scheduled base.
func (cp *Checkpointer) Tick() (string, error) {
	rebase := !cp.based || cp.sinceBase >= cp.baseEvery
	tmp, err := os.CreateTemp(cp.dir, "chain-*.tmp")
	if err != nil {
		cp.based = false
		return "", err
	}
	base, err := cp.src.WriteChain(tmp, rebase)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		cp.based = false
		return "", err
	}
	cp.seq++
	ext := deltaExt
	if base {
		ext = baseExt
	}
	path := filepath.Join(cp.dir, fmt.Sprintf("%s%016d%s", filePref, cp.seq, ext))
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		cp.based = false
		return "", err
	}
	if base {
		cp.based = true
		cp.sinceBase = 0
		cp.prune(cp.seq)
	} else {
		cp.sinceBase++
	}
	return path, nil
}

// prune removes chain files older than the base at baseSeq.
func (cp *Checkpointer) prune(baseSeq uint64) {
	seqs, err := scanDir(cp.dir)
	if err != nil {
		return
	}
	for _, f := range seqs {
		if f.seq < baseSeq {
			os.Remove(filepath.Join(cp.dir, f.name))
		}
	}
}

// chainFile is one parsed chain file name.
type chainFile struct {
	seq  uint64
	base bool
	name string
}

// scanDir lists chain files in ascending sequence order.
func scanDir(dir string) ([]chainFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []chainFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, filePref) {
			continue
		}
		var base bool
		var numPart string
		switch {
		case strings.HasSuffix(name, baseExt):
			base = true
			numPart = strings.TrimSuffix(strings.TrimPrefix(name, filePref), baseExt)
		case strings.HasSuffix(name, deltaExt):
			numPart = strings.TrimSuffix(strings.TrimPrefix(name, filePref), deltaExt)
		default:
			continue
		}
		seq, err := strconv.ParseUint(numPart, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, chainFile{seq: seq, base: base, name: name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// FindChain locates the newest restorable chain in dir: the latest
// base file plus the consecutively numbered deltas after it (a gap in
// the numbering — a pruned or lost file — ends the chain early, so
// restores never apply a delta past a hole). Returns nil when dir
// holds no base; a missing directory is not an error.
func FindChain(dir string) (*Chain, error) {
	files, err := scanDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	baseIdx := -1
	for i, f := range files {
		if f.base {
			baseIdx = i
		}
	}
	if baseIdx < 0 {
		return nil, nil
	}
	chain := &Chain{Base: filepath.Join(dir, files[baseIdx].name)}
	prev := files[baseIdx].seq
	for _, f := range files[baseIdx+1:] {
		if f.base || f.seq != prev+1 {
			break
		}
		chain.Deltas = append(chain.Deltas, filepath.Join(dir, f.name))
		prev = f.seq
	}
	return chain, nil
}
