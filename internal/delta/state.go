// State: the apply side of a replication chain. A follower feeds
// every received record to Apply — bases install, deltas patch — and
// materializes a queryable core.HHHSnapshot on demand. Validation is
// strict: chain/epoch discontinuities surface ErrEpochGap (the
// follower must resync from a fresh base), configuration drift
// surfaces codec.ErrConfigMismatch, and malformed bytes the codec's
// typed corruption errors. A record that fails to apply leaves the
// state unchanged, except where noted on Apply.

package delta

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/spacesaving"
)

// State is the applied base+delta chain state for one replicated
// H-Memento instance. The zero value is unusable; construct with
// NewState. Not safe for concurrent use.
type State struct {
	based      bool
	chain      uint64
	epoch      uint64
	digest     uint64
	restorable bool

	hier   hierarchy.Hierarchy
	hierID uint8
	comp   float64

	// Seed-independent configuration, pinned by the base.
	window      uint64
	counters    int
	blockCounts uint64
	scale       float64

	// Replicated dynamic state.
	updates, items uint64
	mon            map[hierarchy.Prefix]monEntry
	over           map[hierarchy.Prefix]int32

	// Restore plane (checkpoint chains only).
	untilBlock   uint64
	blocksLeft   int
	fullUpdates  uint64
	forcedDrains uint64
	queues       [][]hierarchy.Prefix

	// Materialization scratch.
	monBuf []spacesaving.Counter[hierarchy.Prefix]
	ovBuf  []core.OverflowEntry[hierarchy.Prefix]
}

// NewState returns an empty follower state awaiting its first base.
func NewState() *State {
	return &State{
		mon:  map[hierarchy.Prefix]monEntry{},
		over: map[hierarchy.Prefix]int32{},
	}
}

// Based reports whether a base has been applied.
func (st *State) Based() bool { return st.based }

// Chain returns the applied chain identity (0 before any base).
func (st *State) Chain() uint64 { return st.chain }

// Epoch returns the current state epoch.
func (st *State) Epoch() uint64 { return st.epoch }

// Restorable reports whether the chain carries the restore plane, so
// the materialized snapshot can rehydrate a live instance.
func (st *State) Restorable() bool { return st.restorable }

// Updates returns the replicated update count.
func (st *State) Updates() uint64 { return st.updates }

// Hierarchy returns the replicated prefix domain (nil before a base).
func (st *State) Hierarchy() hierarchy.Hierarchy { return st.hier }

// Reset forgets everything; the next record must be a base.
func (st *State) Reset() {
	st.based = false
	st.chain, st.epoch = 0, 0
	clear(st.mon)
	clear(st.over)
	st.queues = nil
}

// Apply validates and applies one chain record (base or delta). On
// ErrEpochGap or codec.ErrConfigMismatch the state is untouched; on a
// corruption error discovered mid-delta the state is unusable for
// queries and Based() turns false, so the follower resyncs either
// way.
func (st *State) Apply(data []byte) error {
	h, body, err := codec.ReadHeader(data)
	if err != nil {
		return err
	}
	if h.Kind != codec.KindHHHDelta {
		return fmt.Errorf("%w: kind %d, want hhh delta", codec.ErrKind, h.Kind)
	}
	c := codec.NewCursor(body)
	chain := c.Uint64()
	epoch := c.Uint64()
	if err := c.Err(); err != nil {
		return err
	}
	if h.Flags&codec.FlagBase != 0 {
		err = st.applyBase(h, c, chain, epoch)
	} else {
		err = st.applyDelta(h, c, chain, epoch)
	}
	if err == nil {
		codec.AccountDecode(codec.KindHHHDelta, len(data))
	}
	return err
}

// applyBase installs an embedded full snapshot as the new chain
// state.
func (st *State) applyBase(h codec.Header, c *codec.Cursor, chain, epoch uint64) error {
	n := c.Count(codec.MaxRecord, 1)
	if err := c.Err(); err != nil {
		return err
	}
	if c.Remaining() != n {
		return codec.Corruptf("embedded record length %d, have %d bytes", n, c.Remaining())
	}
	rec := c.Bytes(n)
	if err := c.Err(); err != nil {
		return err
	}
	snap, err := core.DecodeHHHSnapshot(rec)
	if err != nil {
		return fmt.Errorf("delta: embedded base: %w", err)
	}
	restorable := snap.Sketch().Restorable()
	if (h.Flags&codec.FlagRestore != 0) != restorable {
		return codec.Corruptf("restore flag disagrees with embedded record")
	}
	id, err := codec.HierID(snap.Hierarchy())
	if err != nil {
		return codec.Corruptf("%v", err)
	}
	mem := snap.Sketch()
	digest := hhhDigest(id, uint64(mem.EffectiveWindow()), mem.Counters(), mem.BlockCounts(), mem.Scale())
	if digest != h.Digest {
		return fmt.Errorf("%w: base digest %#x, embedded %#x", codec.ErrConfigMismatch, h.Digest, digest)
	}

	st.based = true
	st.chain, st.epoch = chain, epoch
	st.digest = digest
	st.restorable = restorable
	st.hier, st.hierID = snap.Hierarchy(), id
	st.comp = snap.Compensation()
	st.window = uint64(mem.EffectiveWindow())
	st.counters = mem.Counters()
	st.blockCounts = mem.BlockCounts()
	st.scale = mem.Scale()
	st.updates = mem.Updates()
	st.items = mem.Items()
	clear(st.mon)
	clear(st.over)
	mem.Monitored(func(cn spacesaving.Counter[hierarchy.Prefix]) bool {
		st.mon[cn.Key] = monEntry{count: cn.Count, err: cn.Err}
		return true
	})
	mem.Overflowed(func(key hierarchy.Prefix, b int32) bool {
		st.over[key] = b
		return true
	})
	if restorable {
		st.untilBlock = mem.UntilBlock()
		st.blocksLeft = mem.BlocksLeft()
		st.fullUpdates = mem.FullUpdates()
		st.forcedDrains = mem.ForcedDrains()
		st.queues = st.queues[:0]
		mem.Queues(func(q []hierarchy.Prefix) bool {
			st.queues = append(st.queues, append([]hierarchy.Prefix(nil), q...))
			return true
		})
	} else {
		st.queues = nil
	}
	return nil
}

// applyDelta patches the state with one incremental record.
func (st *State) applyDelta(h codec.Header, c *codec.Cursor, chain, epoch uint64) error {
	if !st.based || chain != st.chain || epoch != st.epoch+1 {
		if st.based && chain == st.chain {
			return fmt.Errorf("%w: delta epoch %d onto state epoch %d", ErrEpochGap, epoch, st.epoch)
		}
		return fmt.Errorf("%w: chain %#x vs applied %#x", ErrEpochGap, chain, st.chain)
	}
	if h.Digest != st.digest {
		return fmt.Errorf("%w: delta digest %#x, base %#x", codec.ErrConfigMismatch, h.Digest, st.digest)
	}
	if (h.Flags&codec.FlagRestore != 0) != st.restorable {
		return codec.Corruptf("restore flag disagrees with chain base")
	}
	updates := c.Uint64()
	items := c.Uint64()
	nEntries := c.Count(codec.MaxRecord, prefixKeys.Width()+2)
	if err := c.Err(); err != nil {
		return err
	}
	// Mutation begins here: a corrupt tail leaves the state partially
	// patched, which Apply's contract covers by unbasing below.
	if h.Flags&codec.FlagClearMonitored != 0 {
		clear(st.mon)
	}
	if h.Flags&codec.FlagClearOverflow != 0 {
		clear(st.over)
	}
	st.updates, st.items = updates, items
	for i := 0; i < nEntries; i++ {
		key := codec.Key(c, prefixKeys)
		count := c.Uvarint()
		var errTerm uint64
		if count > 0 {
			errTerm = c.Uvarint()
		}
		b := c.Uvarint()
		if err := c.Err(); err != nil {
			st.based = false
			return err
		}
		if count > 0 && errTerm >= count {
			st.based = false
			return codec.Corruptf("entry error %d not below count %d", errTerm, count)
		}
		if b > math.MaxInt32 {
			st.based = false
			return codec.Corruptf("overflow count %d out of range", b)
		}
		if count > 0 {
			st.mon[key] = monEntry{count: count, err: errTerm}
		} else {
			delete(st.mon, key)
		}
		if b > 0 {
			st.over[key] = int32(b)
		} else {
			delete(st.over, key)
		}
	}
	if st.restorable {
		if err := st.applyRestorePlane(c); err != nil {
			st.based = false
			return err
		}
	}
	if c.Remaining() != 0 {
		st.based = false
		return codec.Corruptf("%d trailing bytes", c.Remaining())
	}
	st.epoch = epoch
	return nil
}

// applyRestorePlane replaces the ring/frame-position section.
func (st *State) applyRestorePlane(c *codec.Cursor) error {
	untilBlock := c.Uint64()
	blocksLeft := c.Uvarint()
	fullUpdates := c.Uint64()
	forcedDrains := c.Uint64()
	nq := c.Count(st.counters+1, 1)
	if err := c.Err(); err != nil {
		return err
	}
	if nq != st.counters+1 {
		return codec.Corruptf("%d ring queues, want %d", nq, st.counters+1)
	}
	if cap(st.queues) < nq {
		st.queues = make([][]hierarchy.Prefix, nq)
	} else {
		st.queues = st.queues[:nq]
	}
	for i := 0; i < nq; i++ {
		qlen := c.Count(maxQueueLen, prefixKeys.Width())
		if err := c.Err(); err != nil {
			return err
		}
		q := st.queues[i][:0]
		for j := 0; j < qlen; j++ {
			q = append(q, codec.Key(c, prefixKeys))
		}
		st.queues[i] = q
	}
	if err := c.Err(); err != nil {
		return err
	}
	st.untilBlock = untilBlock
	st.blocksLeft = int(blocksLeft)
	st.fullUpdates = fullUpdates
	st.forcedDrains = forcedDrains
	return nil
}

// Snapshot materializes the applied state into a queryable
// core.HHHSnapshot — for a Floor-0 chain, byte-for-byte the estimates
// a follower decoding full snapshot records would compute. Fails
// before the first base or when the accumulated state violates a
// sketch invariant (more monitored entries than the counter budget,
// say), which only a corrupt or adversarial chain can produce.
func (st *State) Snapshot() (*core.HHHSnapshot, error) {
	if !st.based {
		return nil, fmt.Errorf("%w: no base applied", ErrEpochGap)
	}
	st.monBuf = st.monBuf[:0]
	//memento:allow det "collected then sorted by (count, key) below"
	for key, e := range st.mon {
		st.monBuf = append(st.monBuf, spacesaving.Counter[hierarchy.Prefix]{Key: key, Count: e.count, Err: e.err})
	}
	// Ties must break on the full key: the map's iteration order would
	// otherwise leak into the snapshot bytes and base+delta chains
	// built by different replicas would hash differently.
	slices.SortFunc(st.monBuf, func(a, b spacesaving.Counter[hierarchy.Prefix]) int {
		if c := cmp.Compare(a.Count, b.Count); c != 0 {
			return c
		}
		return comparePrefix(a.Key, b.Key)
	})
	st.ovBuf = st.ovBuf[:0]
	//memento:allow det "collected then sorted by key below"
	for key, b := range st.over {
		st.ovBuf = append(st.ovBuf, core.OverflowEntry[hierarchy.Prefix]{Key: key, Overflows: b})
	}
	slices.SortFunc(st.ovBuf, func(a, b core.OverflowEntry[hierarchy.Prefix]) int {
		return comparePrefix(a.Key, b.Key)
	})
	spec := core.SnapshotSpec[hierarchy.Prefix]{
		Window:      st.window,
		Counters:    st.counters,
		BlockCounts: st.blockCounts,
		Scale:       st.scale,
		Updates:     st.updates,
		Items:       st.items,
		Overflow:    st.ovBuf,
		Monitored:   st.monBuf,
	}
	if st.restorable {
		spec.Restore = &core.RestoreSpec[hierarchy.Prefix]{
			UntilBlock:   st.untilBlock,
			BlocksLeft:   st.blocksLeft,
			FullUpdates:  st.fullUpdates,
			ForcedDrains: st.forcedDrains,
			Queues:       st.queues,
		}
	}
	return core.BuildHHHSnapshot(st.hier, st.comp, spec)
}

// comparePrefix is the canonical total order on prefixes used
// wherever map-collected entries must serialize deterministically.
func comparePrefix(a, b hierarchy.Prefix) int {
	if c := cmp.Compare(a.Src, b.Src); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Dst, b.Dst); c != 0 {
		return c
	}
	if c := cmp.Compare(a.SrcLen, b.SrcLen); c != 0 {
		return c
	}
	return cmp.Compare(a.DstLen, b.DstLen)
}
