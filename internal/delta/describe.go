// Describe: offline introspection of chain records, for tooling
// (cmd/mementoctl inspect) that reports on files it cannot — or need
// not — apply.

package delta

import (
	"fmt"

	"memento/internal/codec"
)

// Info summarizes one chain record without applying it.
type Info struct {
	// Base reports the record flavor.
	Base bool
	// Restore reports whether the restore plane is carried.
	Restore bool
	// Chain and Epoch position the record in its chain.
	Chain, Epoch uint64
	// ClearMonitored/ClearOverflow are the delta's structural flags.
	ClearMonitored, ClearOverflow bool
	// Entries is the per-key entry count (0 for bases).
	Entries int
	// Updates is the absolute replicated update count (0 for bases —
	// read the embedded record for base state).
	Updates uint64
	// EmbeddedBytes is the embedded snapshot record size (bases only).
	EmbeddedBytes int
}

// Describe parses a KindHHHDelta record's framing — header, chain
// position, entry count — without applying or fully decoding it.
func Describe(data []byte) (Info, error) {
	h, body, err := codec.ReadHeader(data)
	if err != nil {
		return Info{}, err
	}
	if h.Kind != codec.KindHHHDelta {
		return Info{}, fmt.Errorf("%w: kind %d, want hhh delta", codec.ErrKind, h.Kind)
	}
	c := codec.NewCursor(body)
	info := Info{
		Base:           h.Flags&codec.FlagBase != 0,
		Restore:        h.Flags&codec.FlagRestore != 0,
		ClearMonitored: h.Flags&codec.FlagClearMonitored != 0,
		ClearOverflow:  h.Flags&codec.FlagClearOverflow != 0,
		Chain:          c.Uint64(),
		Epoch:          c.Uint64(),
	}
	if info.Base {
		info.EmbeddedBytes = c.Count(codec.MaxRecord, 1)
		return info, c.Err()
	}
	info.Updates = c.Uint64()
	c.Uint64() // items
	info.Entries = c.Count(codec.MaxRecord, prefixKeys.Width()+2)
	return info, c.Err()
}
