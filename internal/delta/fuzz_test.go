package delta

import (
	"testing"

	"memento/internal/codec"
)

// FuzzApplyDeltaChain pins the follower's decode contract: arbitrary
// bytes applied to a fresh state, and to a state with a live base,
// must never panic, never allocate beyond the record size, and only
// ever fail with the typed errors. Materialization after every apply
// must be equally robust.
func FuzzApplyDeltaChain(f *testing.F) {
	// Seed with real chain records: a base, a delta with entries, and
	// a restore-plane pair.
	hh := newHHH(f, 1<<10, 32, 23)
	tr, err := NewTracker(hh, TrackerConfig{Chain: 77})
	if err != nil {
		f.Fatal(err)
	}
	hh.UpdateBatch(skewedPackets(600, 1))
	base, _, err := tr.Append(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base)
	hh.UpdateBatch(skewedPackets(600, 2))
	delta, _, err := tr.Append(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(delta)
	rhh := newHHH(f, 1<<10, 32, 29)
	rtr, err := NewTracker(rhh, TrackerConfig{Chain: 78, Restore: true})
	if err != nil {
		f.Fatal(err)
	}
	rhh.UpdateBatch(skewedPackets(600, 3))
	rbase, _, err := rtr.Append(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rbase)
	rhh.UpdateBatch(skewedPackets(600, 4))
	rdelta, _, err := rtr.Append(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rdelta)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > codec.MaxRecord {
			t.Skip()
		}
		// Fresh follower: only a valid base can apply; its
		// materialization must then succeed (the embedded record went
		// through the strict snapshot decoder).
		st := NewState()
		if err := st.Apply(data); err == nil {
			if _, err := st.Snapshot(); err != nil {
				t.Fatalf("decoded base failed to materialize: %v", err)
			}
		}
		// Follower mid-chain: the fuzzed record lands on a real base. A
		// crafted delta can apply yet accumulate invariant-violating
		// state (say, more monitored entries than the counter budget);
		// materialization must reject it with a typed error, not panic.
		st2 := NewState()
		if err := st2.Apply(base); err != nil {
			t.Fatal(err)
		}
		if err := st2.Apply(data); err == nil && st2.Based() {
			_, _ = st2.Snapshot()
		}
	})
}
