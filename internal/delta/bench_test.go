package delta

import (
	"testing"

	"memento/internal/hierarchy"
)

// BenchmarkDeltaEncode measures one steady-state chain step — dirty
// capture, shadow diff, record encode — against a live sketch
// absorbing a fixed update mix between steps. CI gates 0 allocs/op:
// the capture reuses the tracker's snapshot slabs, the diff walks the
// generation-stamped dirty set, and the encode appends to the
// caller's recycled buffer.
func BenchmarkDeltaEncode(b *testing.B) {
	hh := newHHH(b, 1<<12, 256, 31)
	tr, err := NewTracker(hh, TrackerConfig{Chain: 1})
	if err != nil {
		b.Fatal(err)
	}
	// A stable mix of heavy keys keeps every iteration emitting real
	// entries (the keys' counters advance each round) without growing
	// the shadow maps after warm-up.
	batch := make([]hierarchy.Packet, 256)
	for i := range batch {
		batch[i] = hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, byte(1+i%16))}
	}
	var buf []byte
	// Warm up: first record is the base; a few rounds stabilize slab
	// and map sizes.
	for i := 0; i < 3; i++ {
		hh.UpdateBatch(batch)
		if buf, _, err = tr.Append(buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.UpdateBatch(batch)
		buf, _, err = tr.Append(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(buf) == 0 {
		b.Fatal("empty record")
	}
}
