// Package delta implements incremental replication of H-Memento
// sketch state: epoch-stamped base+delta chains layered on the
// format-v1 codec, so that a follower (the network-wide controller, a
// warm-restart checkpoint directory) can track a live sketch by
// receiving only what changed since the last record instead of the
// whole table — the ROADMAP's fix for the measured ~26× byte cost of
// full snapshot shipping (BENCH_netwide.json).
//
// # Chain model
//
// A chain is identified by a random 64-bit chain id and advances in
// epochs. Every record is a codec.KindHHHDelta record carrying
// (chain, epoch):
//
//   - A base (codec.FlagBase) embeds a complete, self-contained
//     KindHHH snapshot record and (re)starts the chain at its epoch.
//   - A delta carries only the counters that changed during one
//     capture interval — the dirty keys core.Sketch tracks via
//     generation-stamped key sets — plus absolute scalar state and,
//     for checkpoint chains, the block-ring/frame-position restore
//     plane. A delta at epoch e applies only to state at epoch e−1 of
//     the same chain.
//
// Apply validation is strict: a missing base, a chain-id mismatch, or
// a non-consecutive epoch surfaces ErrEpochGap — the follower must
// request a fresh base (resync) rather than diverge silently — and a
// record whose config digest disagrees with the applied base is
// rejected with codec.ErrConfigMismatch. Malformed bytes fail with
// the codec's typed errors, never a panic, and never an allocation
// larger than the record itself (FuzzApplyDeltaChain pins this).
//
// # Fidelity floor
//
// A Tracker with Floor = 0 replicates exactly: the follower's
// materialized state answers every query — including the full
// OutputMerged HHH-set computation — identically to a follower
// receiving complete snapshots at the same cadence. Floor > 0 trades
// fidelity for bytes: monitored counters whose guaranteed count
// (count − error term) is below the floor and that were never shipped
// (and do not touch the overflow table) stay local, so the churning
// tail of a skewed stream — the bulk of a Space Saving table's
// entropy, whose counters inherit count ≈ Min but guarantee nothing —
// never crosses the wire. Overflow-table state, which drives
// heavy-hitter membership, is always replicated exactly. The natural
// floor is the sketch's block threshold (one block's worth of counts,
// below which a counter cannot overflow).
//
// # Record layout
//
// Every record is header (codec.Header, kind KindHHHDelta, digest =
// the sketch's HHH config digest) + body:
//
//	u64 chain  — chain identity
//	u64 epoch  — state epoch after applying this record
//
// Base bodies (FlagBase) continue with one embedded record:
//
//	uvarint n, n bytes — a complete KindHHH record (own header)
//
// Delta bodies continue with absolute scalars and per-key state:
//
//	u64 updates, u64 items
//	uvarint nEntries, then per entry:
//	  prefix key (codec.PrefixKeys)
//	  uvarint count — in-frame counter; 0 = not monitored
//	  uvarint err   — counter error term, present iff count > 0
//	  uvarint b     — overflow-table value; 0 = absent
//	if FlagRestore:
//	  u64 untilBlock, uvarint blocksLeft, u64 fullUpdates,
//	  u64 forcedDrains, uvarint nQueues, per queue:
//	  uvarint len, keys
//
// FlagClearMonitored (set when the interval crossed a frame boundary)
// tells the applier to clear the monitored set before installing
// entries; FlagClearOverflow does the same for the overflow table —
// the applier honors it, but the current Tracker never emits it (a
// Reset, the only event that clears B wholesale, forces a fresh base
// instead), so it is reserved format surface.
//
//memento:deterministic
//memento:nopanic Apply* Decode*
package delta

import (
	"encoding/binary"
	"errors"

	"memento/internal/codec"
	"memento/internal/hierarchy"
)

// ErrEpochGap reports a chain discontinuity: a delta arrived for an
// epoch the follower is not at (missing base, chain restart, or a
// lost record in between). The only safe response is a resync — apply
// a fresh base — never a silent best-effort merge.
var ErrEpochGap = errors.New("delta: epoch gap, resync required")

// maxQueueLen bounds restore-plane ring entries per queue, mirroring
// core's decode backstop.
const maxQueueLen = 1 << 24

// prefixKeys is the shared key codec of every HHH delta record.
var prefixKeys = codec.PrefixKeys{}

// monEntry is one key's replicated monitored counter.
type monEntry struct {
	count, err uint64
}

// appendEntry appends one per-key state entry in wire order.
func appendEntry(dst []byte, key hierarchy.Prefix, count, err uint64, b int32) []byte {
	dst = prefixKeys.AppendKey(dst, key)
	dst = binary.AppendUvarint(dst, count)
	if count > 0 {
		dst = binary.AppendUvarint(dst, err)
	}
	return binary.AppendUvarint(dst, uint64(b))
}

// hhhDigest computes the config digest a record must carry for the
// captured sketch state.
func hhhDigest(hierID uint8, window uint64, counters int, blockCounts uint64, scale float64) uint64 {
	return codec.HHHDigest(hierID, window, uint64(counters), blockCounts, scale)
}
