package delta

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// newHHH builds a small deterministic H-Memento for chain tests.
func newHHH(t testing.TB, window, counters int, seed uint64) *core.HHH {
	t.Helper()
	hh, err := core.NewHHH(core.HHHConfig{
		Hierarchy: hierarchy.Flows{},
		Window:    window,
		Counters:  counters,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hh
}

// skewedPackets generates a deterministic mixed stream: heavy flows
// over a churning uniform tail, the adversarial case for delta
// encoding.
func skewedPackets(n int, seed uint64) []hierarchy.Packet {
	src := rng.New(seed)
	out := make([]hierarchy.Packet, n)
	for i := range out {
		if src.Float64() < 0.6 {
			out[i] = hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, byte(1+src.Intn(16)))}
		} else {
			out[i] = hierarchy.Packet{Src: src.Uint32() | 1<<31}
		}
	}
	return out
}

// snapshotEqualOutputs fails the test unless the two snapshots answer
// the HHH-set computation and point queries identically.
func snapshotEqualOutputs(t *testing.T, tag string, got, want *core.HHHSnapshot, probes []hierarchy.Prefix) {
	t.Helper()
	if got.EffectiveWindow() != want.EffectiveWindow() || got.Updates() != want.Updates() {
		t.Fatalf("%s: window/updates (%d,%d) vs (%d,%d)", tag,
			got.EffectiveWindow(), got.Updates(), want.EffectiveWindow(), want.Updates())
	}
	for _, p := range probes {
		gu, gl := got.QueryBounds(p)
		wu, wl := want.QueryBounds(p)
		if gu != wu || gl != wl {
			t.Fatalf("%s: bounds for %v: (%g,%g) vs (%g,%g)", tag, p, gu, gl, wu, wl)
		}
	}
	for _, theta := range []float64{0.01, 0.05, 0.2} {
		g := got.OutputTo(theta, nil)
		w := want.OutputTo(theta, nil)
		if len(g) != len(w) {
			t.Fatalf("%s: theta %g: %d entries vs %d", tag, theta, len(g), len(w))
		}
		gm := map[hierarchy.Prefix]core.HeavyPrefix{}
		for _, e := range g {
			gm[e.Prefix] = e
		}
		for _, e := range w {
			ge, ok := gm[e.Prefix]
			if !ok || ge.Estimate != e.Estimate || ge.Conditioned != e.Conditioned {
				t.Fatalf("%s: theta %g: entry %v mismatch (%+v vs %+v)", tag, theta, e.Prefix, ge, e)
			}
		}
	}
}

// TestChainExactReplication drives the adversarial skewed stream and
// checks, at every cadence, that a Floor-0 chain follower's
// materialized snapshot matches a follower receiving the full encoded
// snapshot — across frame flushes, evictions and overflow churn.
func TestChainExactReplication(t *testing.T) {
	hh := newHHH(t, 1<<12, 64, 7)
	tr, err := NewTracker(hh, TrackerConfig{Chain: 42})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	packets := skewedPackets(1<<14, 99) // 4 windows worth
	probes := make([]hierarchy.Prefix, 0, 64)
	for i := 0; i < 16; i++ {
		probes = append(probes, hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, byte(1+i)), SrcLen: 4})
	}
	const cadence = 1 << 10
	var buf []byte
	var full core.HHHSnapshot
	var wire []byte
	var base bool
	bases := 0
	for off := 0; off < len(packets); off += cadence {
		hh.UpdateBatch(packets[off : off+cadence])
		buf, base, err = tr.Append(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if base {
			bases++
		}
		if err := st.Apply(buf); err != nil {
			t.Fatalf("apply at offset %d: %v", off, err)
		}
		// The reference follower decodes a complete snapshot record of
		// the same instant.
		hh.SnapshotInto(&full)
		wire, err = full.AppendTo(wire[:0])
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.DecodeHHHSnapshot(wire)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := st.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snapshotEqualOutputs(t, fmt.Sprintf("offset %d", off), mat, ref, probes)
	}
	if bases != 1 {
		t.Fatalf("expected exactly one base, got %d", bases)
	}
	if st.Epoch() != tr.Epoch() {
		t.Fatalf("epoch skew: state %d tracker %d", st.Epoch(), tr.Epoch())
	}
}

// TestChainRestorePlane replicates a checkpoint chain (restore plane
// on) and rehydrates a live instance from the follower's materialized
// state; the restored instance must answer queries identically and
// keep sliding deterministically (V = H makes every update a Full
// update, so the continued streams match exactly).
func TestChainRestorePlane(t *testing.T) {
	hh := newHHH(t, 1<<10, 32, 3)
	tr, err := NewTracker(hh, TrackerConfig{Chain: 7, Restore: true})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	packets := skewedPackets(5000, 5)
	var buf []byte
	for off := 0; off+500 <= len(packets); off += 500 {
		hh.UpdateBatch(packets[off : off+500])
		buf, _, err = tr.Append(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Restorable() {
		t.Fatal("checkpoint chain not restorable")
	}
	mat, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := newHHH(t, 1<<10, 32, 3)
	if err := restored.RestoreFrom(mat); err != nil {
		t.Fatal(err)
	}
	tail := skewedPackets(3000, 8)
	for _, p := range tail {
		hh.Update(p)
		restored.Update(p)
	}
	for i := 0; i < 16; i++ {
		p := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, byte(1+i)), SrcLen: 4}
		if g, w := restored.Query(p), hh.Query(p); g != w {
			t.Fatalf("continued query for %v: %g vs %g", p, g, w)
		}
	}
}

// TestEpochGapForcesResync drops a record mid-chain and checks the
// follower rejects everything after it with ErrEpochGap until a fresh
// base arrives.
func TestEpochGapForcesResync(t *testing.T) {
	hh := newHHH(t, 1<<10, 32, 11)
	tr, err := NewTracker(hh, TrackerConfig{Chain: 9})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	step := func() []byte {
		hh.UpdateBatch(skewedPackets(300, uint64(hh.Sketch().Updates())+1))
		out, _, err := tr.Append(nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if err := st.Apply(step()); err != nil { // base
		t.Fatal(err)
	}
	if err := st.Apply(step()); err != nil { // delta e+1
		t.Fatal(err)
	}
	dropped := step() // never delivered
	_ = dropped
	next := step()
	if err := st.Apply(next); !errors.Is(err, ErrEpochGap) {
		t.Fatalf("gap not detected: %v", err)
	}
	// The state survives a detected gap (stale but queryable)...
	if _, err := st.Snapshot(); err != nil {
		t.Fatalf("state unusable after detected gap: %v", err)
	}
	// ...and a fresh base resynchronizes.
	tr.ForceBase()
	rebase := step()
	if err := st.Apply(rebase); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(step()); err != nil {
		t.Fatalf("delta after resync: %v", err)
	}

	// A record from a different chain is a gap, not corruption.
	other := newHHH(t, 1<<10, 32, 12)
	otr, err := NewTracker(other, TrackerConfig{Chain: 1234})
	if err != nil {
		t.Fatal(err)
	}
	other.UpdateBatch(skewedPackets(300, 1))
	obase, _, err := otr.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(obase); err != nil {
		t.Fatal(err) // bases always install
	}
	other.UpdateBatch(skewedPackets(300, 2))
	odelta, _, err := otr.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	st2 := NewState()
	if err := st2.Apply(odelta); !errors.Is(err, ErrEpochGap) {
		t.Fatalf("delta without base: %v", err)
	}
}

// TestConfigMismatchRejected pins that a delta from a differently
// configured instance cannot silently apply.
func TestConfigMismatchRejected(t *testing.T) {
	a := newHHH(t, 1<<10, 32, 1)
	b := newHHH(t, 1<<10, 64, 1) // different counter budget
	ta, err := NewTracker(a, TrackerConfig{Chain: 5})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTracker(b, TrackerConfig{Chain: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	a.UpdateBatch(skewedPackets(200, 1))
	base, _, err := ta.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(base); err != nil {
		t.Fatal(err)
	}
	b.UpdateBatch(skewedPackets(200, 1))
	if _, _, err := tb.Append(nil); err != nil { // tb's base, discarded
		t.Fatal(err)
	}
	b.UpdateBatch(skewedPackets(200, 2))
	delta, _, err := tb.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(delta); !errors.Is(err, codec.ErrConfigMismatch) {
		t.Fatalf("config mismatch not detected: %v", err)
	}
}

// TestFloorTradesBytesForTail checks the fidelity floor: chain bytes
// shrink by an order of magnitude on a churning stream while heavy
// flows stay byte-exact; only sub-floor tail state may differ.
func TestFloorTradesBytesForTail(t *testing.T) {
	run := func(floor uint64) (deltaBytes int, st *State) {
		hh := newHHH(t, 1<<12, 256, 21)
		tr, err := NewTracker(hh, TrackerConfig{Chain: 3, Floor: floor})
		if err != nil {
			t.Fatal(err)
		}
		st = NewState()
		packets := skewedPackets(1<<14, 77)
		var buf []byte
		for off := 0; off < len(packets); off += 1 << 10 {
			hh.UpdateBatch(packets[off : off+1<<10])
			var base bool
			buf, base, err = tr.Append(buf[:0])
			if err != nil {
				t.Fatal(err)
			}
			if !base {
				deltaBytes += len(buf)
			}
			if err := st.Apply(buf); err != nil {
				t.Fatal(err)
			}
		}
		return deltaBytes, st
	}
	exactBytes, exactSt := run(0)
	blockCounts := uint64(1<<12) / 256 // W/k, tau = 1
	flooredBytes, flooredSt := run(blockCounts)
	if flooredBytes*4 > exactBytes {
		t.Fatalf("floor saved too little: %d vs exact %d bytes", flooredBytes, exactBytes)
	}
	exactSnap, err := exactSt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	flooredSnap, err := flooredSt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		p := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, byte(1+i)), SrcLen: 4}
		ge := flooredSnap.Query(p)
		we := exactSnap.Query(p)
		// Heavy flows ride the overflow table, whose replication is
		// always exact; the in-frame remainder term differs by at most
		// the floor for keys that were briefly sub-floor.
		if math.Abs(ge-we) > float64(blockCounts) {
			t.Fatalf("heavy flow %v drifted: %g vs %g", p, ge, we)
		}
	}
}

// TestCheckpointerChain exercises the on-disk chain lifecycle: bases,
// deltas, rebase-and-prune, discovery, and restore ordering.
func TestCheckpointerChain(t *testing.T) {
	dir := t.TempDir()
	hh := newHHH(t, 1<<10, 32, 13)
	tr, err := NewTracker(hh, TrackerConfig{Chain: 99, Restore: true})
	if err != nil {
		t.Fatal(err)
	}
	src := trackerSource{tr: tr, hh: hh}
	cp, err := NewCheckpointer(dir, src, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		hh.UpdateBatch(skewedPackets(200, uint64(i)+1))
		if _, err := cp.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	chain, err := FindChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if chain == nil {
		t.Fatal("no chain found")
	}
	// 7 ticks with baseEvery=4: base@1, deltas@2-5, base@6 (pruning
	// 1-5), delta@7.
	if filepath.Base(chain.Base) != "chain-0000000000000006.base" || len(chain.Deltas) != 1 {
		t.Fatalf("unexpected chain: %+v", chain)
	}
	st := NewState()
	applyFile := func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return st.Apply(data)
	}
	if err := applyFile(chain.Base); err != nil {
		t.Fatal(err)
	}
	for _, d := range chain.Deltas {
		if err := applyFile(d); err != nil {
			t.Fatal(err)
		}
	}
	mat, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := newHHH(t, 1<<10, 32, 13)
	if err := restored.RestoreFrom(mat); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		p := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, byte(1+i)), SrcLen: 4}
		if g, w := restored.Query(p), hh.Query(p); g != w {
			t.Fatalf("restored query for %v: %g vs %g", p, g, w)
		}
	}
	// Old chain files are pruned once a new base lands.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("prune left %d files, want 2", len(files))
	}
}

// trackerSource adapts a single Tracker to the Checkpointer's Source.
type trackerSource struct {
	tr *Tracker
	hh *core.HHH
}

func (s trackerSource) WriteChain(w io.Writer, rebase bool) (bool, error) {
	if rebase {
		s.tr.ForceBase()
	}
	out, base, err := s.tr.Append(nil)
	if err != nil {
		return false, err
	}
	_, err = w.Write(out)
	return base, err
}

// TestResetForcesBase pins that a sketch Reset (or RestoreFrom)
// invalidates the chain and the next record is a base.
func TestResetForcesBase(t *testing.T) {
	hh := newHHH(t, 1<<10, 32, 17)
	tr, err := NewTracker(hh, TrackerConfig{Chain: 15})
	if err != nil {
		t.Fatal(err)
	}
	hh.UpdateBatch(skewedPackets(300, 1))
	if _, base, err := tr.Append(nil); err != nil || !base {
		t.Fatalf("first record: base=%v err=%v", base, err)
	}
	hh.UpdateBatch(skewedPackets(300, 2))
	if _, base, err := tr.Append(nil); err != nil || base {
		t.Fatalf("second record: base=%v err=%v", base, err)
	}
	hh.Reset()
	hh.UpdateBatch(skewedPackets(300, 3))
	if _, base, err := tr.Append(nil); err != nil || !base {
		t.Fatalf("post-reset record: base=%v err=%v", base, err)
	}
}

// TestTruncatedDeltaUnbasesState pins Apply's failure contract: a
// delta that fails mid-application leaves Based() false so the
// follower must resync rather than query half-patched state.
func TestTruncatedDeltaUnbasesState(t *testing.T) {
	hh := newHHH(t, 1<<10, 32, 19)
	tr, err := NewTracker(hh, TrackerConfig{Chain: 21})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	hh.UpdateBatch(skewedPackets(500, 1))
	base, _, err := tr.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(base); err != nil {
		t.Fatal(err)
	}
	hh.UpdateBatch(skewedPackets(500, 2))
	delta, _, err := tr.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) < codec.HeaderSize+20 {
		t.Skip("delta too small to truncate meaningfully")
	}
	truncated := delta[:len(delta)-7]
	if err := st.Apply(truncated); err == nil {
		t.Fatal("truncated delta applied")
	}
	if st.Based() {
		t.Fatal("state still based after failed mid-delta apply")
	}
	if _, err := st.Snapshot(); err == nil {
		t.Fatal("snapshot of unbased state succeeded")
	}
}
