// Tracker: the encode side of a replication chain. It binds to a
// live core.HHH, enables the core dirty-key plane, and turns each
// capture interval into one chain record — a full base when the chain
// needs (re)starting, otherwise a delta carrying only the keys whose
// replicated state actually changed.
//
// The Tracker maintains a shadow of the follower's applied state (the
// monitored counters and overflow entries it has shipped), so the
// emitted delta is a true diff: dirty keys whose state round-tripped
// back to what the follower already has — the dominant case for churn
// below the fidelity floor — cost zero bytes.

package delta

import (
	"encoding/binary"
	"errors"
	"math/rand/v2"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/spacesaving"
)

// TrackerConfig parameterizes a chain encoder.
type TrackerConfig struct {
	// Chain is the chain identity; 0 draws a random one. Followers use
	// it to detect a restarted encoder (fresh chain ⇒ ErrEpochGap ⇒
	// resync from the next base).
	Chain uint64
	// Restore ships the restore plane (block ring, frame position) in
	// every record, making the chain a warm-restart checkpoint chain.
	// Leave false for query-plane replication (netwide reporting).
	Restore bool
	// Floor is the fidelity floor: a monitored counter is shipped only
	// once its guaranteed count — count minus the Space Saving error
	// term, the lower bound on the key's true in-frame count — reaches
	// Floor (or its key touches the overflow table, or it was shipped
	// before — corrections always ship). Gating on the guaranteed
	// count rather than the raw count matters on saturated tables,
	// where every churned counter inherits count ≈ Min but a
	// guaranteed count of ~0. 0 replicates exactly. See the package
	// comment.
	Floor uint64
	// Epoch is the starting epoch of the first base; chains restarted
	// by a new process can begin past their predecessor.
	Epoch uint64
}

// Tracker encodes one replication chain for one core.HHH instance.
// Not safe for concurrent use; call Capture under the lock guarding
// the instance (it is SnapshotInto plus one slab copy), and the
// Append* methods from one goroutine.
type Tracker struct {
	hh  *core.HHH
	cfg TrackerConfig

	chain    uint64
	epoch    uint64
	based    bool // a base has been emitted and not invalidated
	force    bool // next record must be a base (drop, resync, reset)
	captured bool

	hierID uint8
	digest uint64

	snap  core.HHHSnapshot
	dirty core.DirtySet[hierarchy.Prefix]

	// Shadow of the follower's applied state.
	mon  map[hierarchy.Prefix]monEntry
	over map[hierarchy.Prefix]int32
}

// NewTracker binds a Tracker to hh and enables dirty tracking on it.
// Fails only when the hierarchy has no wire identifier.
func NewTracker(hh *core.HHH, cfg TrackerConfig) (*Tracker, error) {
	id, err := codec.HierID(hh.Hierarchy())
	if err != nil {
		return nil, err
	}
	if cfg.Chain == 0 {
		//memento:allow det "chain identity drawn once at construction; never replicated state"
		cfg.Chain = rand.Uint64() | 1
	}
	hh.EnableDeltaTracking()
	return &Tracker{
		hh:     hh,
		cfg:    cfg,
		chain:  cfg.Chain,
		epoch:  cfg.Epoch,
		hierID: id,
		mon:    map[hierarchy.Prefix]monEntry{},
		over:   map[hierarchy.Prefix]int32{},
	}, nil
}

// Chain returns the chain identity.
func (t *Tracker) Chain() uint64 { return t.chain }

// Epoch returns the epoch of the last emitted record.
func (t *Tracker) Epoch() uint64 { return t.epoch }

// ForceBase marks the chain broken on the follower's side — a record
// was dropped before transmission, or the follower requested a resync
// — so the next Append emits a fresh base.
func (t *Tracker) ForceBase() { t.force = true }

// NeedBase reports whether the next Append will emit a base.
func (t *Tracker) NeedBase() bool { return !t.based || t.force }

// PendingBase reports whether the pending (or next) capture will
// encode as a base, including the reset-detected case only the
// captured dirty interval knows about. Sharded chains use it to keep
// every shard's record flavor in lockstep.
func (t *Tracker) PendingBase() bool {
	return !t.based || t.force || (t.captured && t.dirty.WasReset())
}

// Capture snapshots the instance's state and drains its dirty
// interval. Call it under the lock guarding hh; the encode that
// follows (AppendCaptured) runs on the captured copy and needs no
// lock.
func (t *Tracker) Capture() error {
	if t.captured {
		// A capture that was never encoded discarded its dirty diff;
		// only a fresh base can resynchronize the chain.
		t.force = true
	}
	if err := t.hh.DeltaCaptureInto(&t.snap, &t.dirty, t.cfg.Restore); err != nil {
		return err
	}
	t.captured = true
	return nil
}

// AppendCaptured encodes the pending capture as the next chain record
// appended to dst, returning the extended buffer and whether a base
// was emitted. With a reused buffer, delta encoding allocates nothing
// in steady state (BenchmarkDeltaEncode gates this).
func (t *Tracker) AppendCaptured(dst []byte) (out []byte, base bool, err error) {
	if !t.captured {
		return dst, false, errors.New("delta: no pending capture")
	}
	t.captured = false
	if t.dirty.WasReset() {
		// The sketch was reset (or restored) mid-interval: per-key
		// dirty marks cannot describe that, start over.
		t.force = true
	}
	if !t.based || t.force {
		out, err = t.appendBase(dst)
		return out, true, err
	}
	return t.appendDelta(dst), false, nil
}

// Append is Capture + AppendCaptured: one chain step under the
// caller's lock.
func (t *Tracker) Append(dst []byte) (out []byte, base bool, err error) {
	if err := t.Capture(); err != nil {
		return dst, false, err
	}
	return t.AppendCaptured(dst)
}

// snapDigest returns the captured state's config digest.
func (t *Tracker) snapDigest() uint64 {
	mem := t.snap.Sketch()
	return hhhDigest(t.hierID, uint64(mem.EffectiveWindow()), mem.Counters(), mem.BlockCounts(), mem.Scale())
}

// appendBase emits a chain base embedding the full captured snapshot
// and resets the shadow to it.
func (t *Tracker) appendBase(dst []byte) ([]byte, error) {
	start := len(dst)
	t.epoch++
	t.digest = t.snapDigest()
	flags := codec.FlagBase
	if t.cfg.Restore {
		flags |= codec.FlagRestore
	}
	dst = codec.AppendHeader(dst, codec.Header{
		Version: codec.Version,
		Kind:    codec.KindHHHDelta,
		Flags:   flags,
		Digest:  t.digest,
	})
	dst = binary.BigEndian.AppendUint64(dst, t.chain)
	dst = binary.BigEndian.AppendUint64(dst, t.epoch)
	// Length-prefixed embedded record: reserve a maximal uvarint
	// prefix, encode in place, then shift the record back over the
	// unused prefix bytes (bases are control-plane rate; the move is
	// cheaper than encoding twice).
	prefixAt := len(dst)
	dst = append(dst, make([]byte, binary.MaxVarintLen64)...)
	recAt := len(dst)
	var err error
	dst, err = t.snap.AppendTo(dst)
	if err != nil {
		return dst[:prefixAt], err
	}
	recLen := len(dst) - recAt
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(recLen))
	copy(dst[prefixAt:], lenBuf[:n])
	copy(dst[prefixAt+n:], dst[recAt:])
	dst = dst[:prefixAt+n+recLen]

	// The shadow becomes exactly the embedded state.
	clear(t.mon)
	clear(t.over)
	mem := t.snap.Sketch()
	mem.Monitored(func(c spacesaving.Counter[hierarchy.Prefix]) bool {
		t.mon[c.Key] = monEntry{count: c.Count, err: c.Err}
		return true
	})
	mem.Overflowed(func(key hierarchy.Prefix, b int32) bool {
		t.over[key] = b
		return true
	})
	t.based = true
	t.force = false
	codec.AccountEncode(codec.KindHHHDelta, len(dst)-start)
	return dst, nil
}

// appendDelta emits the diff between the captured state and the
// shadow, restricted to the dirty interval.
func (t *Tracker) appendDelta(dst []byte) []byte {
	start := len(dst)
	t.epoch++
	mem := t.snap.Sketch()
	flags := uint16(0)
	if t.cfg.Restore {
		flags |= codec.FlagRestore
	}
	if t.dirty.Flushed() {
		flags |= codec.FlagClearMonitored
		clear(t.mon)
	}
	dst = codec.AppendHeader(dst, codec.Header{
		Version: codec.Version,
		Kind:    codec.KindHHHDelta,
		Flags:   flags,
		Digest:  t.digest,
	})
	dst = binary.BigEndian.AppendUint64(dst, t.chain)
	dst = binary.BigEndian.AppendUint64(dst, t.epoch)
	dst = binary.BigEndian.AppendUint64(dst, mem.Updates())
	dst = binary.BigEndian.AppendUint64(dst, mem.Items())

	// Entry count is patched after the diff (uvarint, so reserve max
	// width and shift back once).
	countAt := len(dst)
	dst = append(dst, make([]byte, binary.MaxVarintLen64)...)
	entriesAt := len(dst)
	entries := 0
	t.dirty.Iterate(func(key hierarchy.Prefix) bool {
		count, errTerm, b, monitored, overflowed := mem.DeltaEntry(key)
		if !overflowed {
			b = 0
		}
		shadow, shipped := t.mon[key]
		if monitored && count-errTerm < t.cfg.Floor && !shipped && b == 0 {
			// Guaranteed count below the fidelity floor and never
			// shipped: stays local.
			monitored = false
		}
		if !monitored {
			count, errTerm = 0, 0
		}
		prevB := t.over[key]
		if count == shadow.count && (count == 0 || errTerm == shadow.err) && b == prevB {
			return true // state round-tripped; the follower is current
		}
		dst = appendEntry(dst, key, count, errTerm, b)
		entries++
		if count > 0 {
			t.mon[key] = monEntry{count: count, err: errTerm}
		} else if shipped {
			delete(t.mon, key)
		}
		if b > 0 {
			t.over[key] = b
		} else if prevB > 0 {
			delete(t.over, key)
		}
		return true
	})
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(entries))
	copy(dst[countAt:], lenBuf[:n])
	copy(dst[countAt+n:], dst[entriesAt:])
	dst = dst[:countAt+n+(len(dst)-entriesAt)]

	if t.cfg.Restore {
		dst = binary.BigEndian.AppendUint64(dst, mem.UntilBlock())
		dst = binary.AppendUvarint(dst, uint64(mem.BlocksLeft()))
		dst = binary.BigEndian.AppendUint64(dst, mem.FullUpdates())
		dst = binary.BigEndian.AppendUint64(dst, mem.ForcedDrains())
		nq := 0
		mem.Queues(func([]hierarchy.Prefix) bool { nq++; return true })
		dst = binary.AppendUvarint(dst, uint64(nq))
		mem.Queues(func(q []hierarchy.Prefix) bool {
			dst = binary.AppendUvarint(dst, uint64(len(q)))
			for _, key := range q {
				dst = prefixKeys.AppendKey(dst, key)
			}
			return true
		})
	}
	codec.AccountEncode(codec.KindHHHDelta, len(dst)-start)
	return dst
}
