// Network-wide experiment drivers: Figure 9 (accuracy vs communication
// method at a fixed bandwidth budget) and Figure 10 (HTTP flood
// detection).

package experiments

import (
	"errors"
	"fmt"
	"strings"

	"memento/internal/exact"
	"memento/internal/hierarchy"
	"memento/internal/netsim"
	"memento/internal/obs"
	"memento/internal/trace"
)

// obsPrefix builds the metric prefix for one simulated estimator:
// memento_<sim>_<run>_<method>, lowercased ("" run parts drop out).
func obsPrefix(sim, run, method string) string {
	p := "memento_" + sim
	if run != "" {
		p += "_" + run
	}
	return strings.ToLower(p + "_" + method)
}

// Fig9Row is one point of Figure 9: the controller's per-prefix-length
// on-arrival RMSE for one communication method at a fixed budget.
type Fig9Row struct {
	Trace     string
	Method    string
	PrefixLen int
	RMSE      float64
}

// Fig9Config parameterizes the Figure 9 evaluation.
type Fig9Config struct {
	Profile   trace.Profile
	Window    int
	Packets   int
	Points    int     // m measurement points
	Budget    float64 // B bytes per ingress packet
	BatchSize int     // b for the Batch method
	Counters  int     // controller sketch counters
	EvalEvery int
	Seed      uint64
	// Obs, when set, registers each method's simulated control-plane
	// ledger as memento_netsim_<trace>_<method>_* funcs.
	Obs *obs.Registry
}

// Figure9 runs the three communication methods over the same trace and
// measures the controller's error against an exact global window, per
// prefix length.
func Figure9(cfg Fig9Config) ([]Fig9Row, error) {
	var hier hierarchy.OneD
	gen, err := trace.NewGenerator(cfg.Profile, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pkts := gen.Generate(cfg.Packets, nil)
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}

	var rows []Fig9Row
	for _, method := range []netsim.Method{netsim.Aggregation, netsim.Sample, netsim.Batch} {
		sim, err := netsim.New(netsim.Config{
			Method: method, BatchSize: cfg.BatchSize, Points: cfg.Points,
			Budget: cfg.Budget, Window: cfg.Window, Hier: hier,
			Counters: cfg.Counters, Seed: cfg.Seed + 7,
		})
		if err != nil {
			return nil, err
		}
		sim.Register(cfg.Obs, obsPrefix("netsim", cfg.Profile.Name, method.String()))
		oracles := make([]*exact.SlidingWindow[hierarchy.Prefix], hier.H())
		for i := range oracles {
			oracles[i], err = exact.NewSlidingWindow[hierarchy.Prefix](cfg.Window)
			if err != nil {
				return nil, err
			}
		}
		sums := make([]float64, hier.H())
		counts := make([]int, hier.H())
		for i, p := range pkts {
			sim.Feed(p)
			for lvl := 0; lvl < hier.H(); lvl++ {
				oracles[lvl].Add(hier.Prefix(p, lvl))
			}
			if i < cfg.Window || i%evalEvery != 0 {
				continue
			}
			for lvl := 0; lvl < hier.H(); lvl++ {
				pre := hier.Prefix(p, lvl)
				d := sim.Estimate(pre) - float64(oracles[lvl].Count(pre))
				sums[lvl] += d * d
				counts[lvl]++
			}
		}
		for lvl := 0; lvl < hier.H(); lvl++ {
			if counts[lvl] == 0 {
				return nil, fmt.Errorf("experiments: no Figure 9 samples at level %d", lvl)
			}
			rows = append(rows, Fig9Row{
				Trace: cfg.Profile.Name, Method: method.String(),
				PrefixLen: hierarchy.AddrBytes - lvl,
				RMSE:      sqrt(sums[lvl] / float64(counts[lvl])),
			})
		}
	}
	return rows, nil
}

// Fig10Point is one sample of the detection-over-time curve.
type Fig10Point struct {
	// SinceStart is packets elapsed since the flood began.
	SinceStart int
	// Detected is the number of attacking subnets identified by then.
	Detected int
}

// Fig10Result summarizes one method's flood-detection run.
type Fig10Result struct {
	Method string
	// Curve samples the number of detected subnets over time.
	Curve []Fig10Point
	// MissedPackets counts attack packets that arrived before their
	// subnet was detected.
	MissedPackets int
	// TotalAttackPackets counts all attack packets after the flood
	// start.
	TotalAttackPackets int
	// MissedFraction is MissedPackets/TotalAttackPackets.
	MissedFraction float64
	// MeanDelay is the mean per-subnet detection delay in packets
	// (undetected subnets count the full post-start horizon).
	MeanDelay float64
	// DetectedSubnets of the total attacking subnets.
	DetectedSubnets int
}

// Fig10Config parameterizes the flood experiment of Section 6.4.
type Fig10Config struct {
	Profile    trace.Profile
	Window     int
	Packets    int // base trace length before injection
	Subnets    int // attacking /8 count (the paper uses 50)
	FloodRate  float64
	FloodStart int // -1 for random within the first window
	Theta      float64
	Points     int
	Budget     float64
	BatchSize  int
	Counters   int
	CheckEvery int // detection evaluated every this many packets
	Seed       uint64
	// Obs, when set, registers each method's simulated control-plane
	// ledger as memento_floodsim_<method>_* funcs.
	Obs *obs.Registry
}

// Figure10 injects the flood and measures, for OPT (exact window) and
// the three communication methods, how fast the attacking subnets are
// identified and how many attack packets slip through beforehand.
func Figure10(cfg Fig10Config) ([]Fig10Result, error) {
	if cfg.Subnets <= 0 || cfg.Theta <= 0 {
		return nil, errors.New("experiments: Figure 10 needs Subnets and Theta")
	}
	gen, err := trace.NewGenerator(cfg.Profile, cfg.Seed)
	if err != nil {
		return nil, err
	}
	base := gen.Generate(cfg.Packets, nil)
	flood, err := trace.Inject(base, trace.FloodConfig{
		Subnets: cfg.Subnets, Rate: cfg.FloodRate,
		Start: cfg.FloodStart, StartMax: cfg.Window, Seed: cfg.Seed + 8,
	})
	if err != nil {
		return nil, err
	}
	checkEvery := cfg.CheckEvery
	if checkEvery <= 0 {
		checkEvery = 1024
	}

	subnetPrefix := make([]hierarchy.Prefix, len(flood.Subnets))
	for i, s := range flood.Subnets {
		subnetPrefix[i] = hierarchy.Prefix{Src: s, SrcLen: 1}
	}

	type estimator interface {
		Feed(p hierarchy.Packet)
		Estimate(p hierarchy.Prefix) float64
		Name() string
	}
	mk := func(method netsim.Method) (estimator, error) {
		sim, err := netsim.New(netsim.Config{
			Method: method, BatchSize: cfg.BatchSize, Points: cfg.Points,
			Budget: cfg.Budget, Window: cfg.Window, Hier: hierarchy.OneD{},
			Counters: cfg.Counters, Seed: cfg.Seed + 9,
		})
		if err != nil {
			return nil, err
		}
		sim.Register(cfg.Obs, obsPrefix("floodsim", "", method.String()))
		return simEstimator{sim}, nil
	}
	opt, err := newOptEstimator(cfg.Window)
	if err != nil {
		return nil, err
	}
	ests := []estimator{opt}
	for _, m := range []netsim.Method{netsim.Aggregation, netsim.Sample, netsim.Batch} {
		e, err := mk(m)
		if err != nil {
			return nil, err
		}
		ests = append(ests, e)
	}

	results := make([]Fig10Result, len(ests))
	threshold := cfg.Theta * float64(cfg.Window)
	for ei, est := range ests {
		detectedAt := map[uint32]int{} // subnet → packets since start
		var missed, total int
		for i, p := range flood.Packets {
			est.Feed(p)
			if i >= flood.Start && flood.IsFlood[i] {
				total++
				if _, ok := detectedAt[p.Src&0xff000000]; !ok {
					missed++
				}
			}
			if i >= flood.Start && i%checkEvery == 0 {
				since := i - flood.Start
				for si, sp := range subnetPrefix {
					if _, ok := detectedAt[flood.Subnets[si]]; ok {
						continue
					}
					if est.Estimate(sp) >= threshold {
						detectedAt[flood.Subnets[si]] = since
					}
				}
			}
		}
		horizon := len(flood.Packets) - flood.Start
		curvePoints := 40
		res := Fig10Result{Method: est.Name()}
		for c := 0; c <= curvePoints; c++ {
			t := horizon * c / curvePoints
			n := 0
			for _, at := range detectedAt {
				if at <= t {
					n++
				}
			}
			res.Curve = append(res.Curve, Fig10Point{SinceStart: t, Detected: n})
		}
		var delaySum float64
		for _, s := range flood.Subnets {
			if at, ok := detectedAt[s]; ok {
				delaySum += float64(at)
			} else {
				delaySum += float64(horizon)
			}
		}
		res.MeanDelay = delaySum / float64(len(flood.Subnets))
		res.DetectedSubnets = len(detectedAt)
		res.MissedPackets = missed
		res.TotalAttackPackets = total
		if total > 0 {
			res.MissedFraction = float64(missed) / float64(total)
		}
		results[ei] = res
	}
	return results, nil
}

// simEstimator adapts netsim.Sim to the estimator interface.
type simEstimator struct{ *netsim.Sim }

// Name labels result rows.
func (s simEstimator) Name() string { return s.Sim.Method().String() }

// optEstimator is the OPT baseline: an exact network-wide window with
// zero delay.
type optEstimator struct {
	win *exact.SlidingWindow[hierarchy.Prefix]
}

func newOptEstimator(w int) (*optEstimator, error) {
	win, err := exact.NewSlidingWindow[hierarchy.Prefix](w)
	if err != nil {
		return nil, err
	}
	return &optEstimator{win: win}, nil
}

// Feed tracks the /8 of every packet (the detection granularity).
func (o *optEstimator) Feed(p hierarchy.Packet) {
	o.win.Add(hierarchy.Prefix{Src: hierarchy.MaskBytes(p.Src, 1), SrcLen: 1})
}

// Estimate returns the exact window count for /8 prefixes.
func (o *optEstimator) Estimate(p hierarchy.Prefix) float64 {
	return float64(o.win.Count(p))
}

// Name labels result rows.
func (o *optEstimator) Name() string { return "OPT" }
