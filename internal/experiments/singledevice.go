// Package experiments contains the drivers that regenerate every table
// and figure of the paper's evaluation (Section 6). Each driver returns
// plain row structs; cmd/ binaries print them and bench_test.go reports
// them as benchmark metrics. DESIGN.md §6 maps figures to drivers
// and benchmarks.
//
// Scale note: drivers take explicit window/stream sizes. The paper runs
// W = 5M, N = 16M; the defaults used by the commands are laptop-sized
// but every driver accepts the full paper scale.
package experiments

import (
	"fmt"
	"math"
	"time"

	"memento/internal/baseline"
	"memento/internal/core"
	"memento/internal/exact"
	"memento/internal/hierarchy"
	"memento/internal/trace"
)

// Fig5Row is one point of Figure 5: Memento speed and on-arrival error
// as a function of the sampling probability τ, for a counter budget
// and a trace.
type Fig5Row struct {
	Trace    string
	Counters int
	Tau      float64
	// MPPS is update throughput in million packets per second.
	MPPS float64
	// Speedup is MPPS relative to τ = 1 (WCSS) at the same counters.
	Speedup float64
	// RMSE is the on-arrival root mean square error in packets.
	RMSE float64
}

// Fig5Config parameterizes the Figure 5 sweep.
type Fig5Config struct {
	Profiles  []trace.Profile
	Counters  []int
	Taus      []float64
	Window    int
	Packets   int
	EvalEvery int // on-arrival error sampled every this many packets
	Seed      uint64
}

// DefaultTaus returns the τ values of Figure 5's x-axis:
// 1, 2⁻¹, …, 2⁻¹⁰.
func DefaultTaus() []float64 {
	taus := make([]float64, 0, 11)
	for i := 0; i <= 10; i++ {
		taus = append(taus, 1/float64(uint(1)<<uint(i)))
	}
	return taus
}

// Figure5 sweeps τ and the counter budget over the given traces,
// measuring update speed and on-arrival RMSE (compared against an
// exact sliding window oracle). WCSS is the τ = 1 column.
func Figure5(cfg Fig5Config) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, prof := range cfg.Profiles {
		gen, err := trace.NewGenerator(prof, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pkts := gen.Generate(cfg.Packets, nil)
		keys := make([]uint64, len(pkts))
		for i, p := range pkts {
			keys[i] = uint64(p.Src)
		}
		for _, k := range cfg.Counters {
			var base float64
			for _, tau := range cfg.Taus {
				s, err := core.New[uint64](core.Config{
					Window: cfg.Window, Counters: k, Tau: tau, Seed: cfg.Seed + 1,
				})
				if err != nil {
					return nil, err
				}
				// Timed pass: pure update speed.
				start := time.Now()
				for _, key := range keys {
					s.Update(key)
				}
				elapsed := time.Since(start)
				mpps := float64(len(keys)) / elapsed.Seconds() / 1e6

				// Evaluation pass: on-arrival error against the oracle.
				s.Reset()
				oracle, err := exact.NewSlidingWindow[uint64](s.EffectiveWindow())
				if err != nil {
					return nil, err
				}
				rmse, err := onArrivalRMSE(s, oracle, keys, cfg.EvalEvery)
				if err != nil {
					return nil, err
				}
				if tau == 1 {
					base = mpps
				}
				speedup := 0.0
				if base > 0 {
					speedup = mpps / base
				}
				rows = append(rows, Fig5Row{
					Trace: prof.Name, Counters: k, Tau: tau,
					MPPS: mpps, Speedup: speedup, RMSE: rmse,
				})
			}
		}
	}
	return rows, nil
}

// onArrivalRMSE replays keys through the sketch, sampling the paper's
// On-Arrival error every evalEvery packets once the window has filled.
func onArrivalRMSE(s *core.Sketch[uint64], oracle *exact.SlidingWindow[uint64], keys []uint64, evalEvery int) (float64, error) {
	if evalEvery <= 0 {
		evalEvery = 1
	}
	var sum float64
	var n int
	for i, key := range keys {
		s.Update(key)
		oracle.Add(key)
		if i >= oracle.Window() && i%evalEvery == 0 {
			d := s.Query(key) - float64(oracle.Count(key))
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("experiments: stream too short for evaluation (need > window %d)", oracle.Window())
	}
	return sqrt(sum / float64(n)), nil
}

// Fig6Row is one point of Figure 6: H-Memento vs the Baseline window
// HHH algorithm.
type Fig6Row struct {
	Hier      string
	Algorithm string // "H-Memento" or "Baseline"
	Counters  int    // total counters across instances
	V         int    // sampling ratio (H-Memento rows; Baseline has H)
	MPPS      float64
	// Speedup is MPPS over the Baseline row with the same counters.
	Speedup float64
}

// Fig6Config parameterizes the Figure 6 sweep.
type Fig6Config struct {
	Hier     hierarchy.Hierarchy
	Profile  trace.Profile
	Counters []int // per-instance budgets (64, 512, 4096); total = ·H
	Vs       []int // sampling ratios for H-Memento (V = H/τ)
	Window   int
	Packets  int
	Seed     uint64
}

// Figure6 measures H-Memento's constant-time updates against the
// Baseline's H Full updates per packet.
func Figure6(cfg Fig6Config) ([]Fig6Row, error) {
	gen, err := trace.NewGenerator(cfg.Profile, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pkts := gen.Generate(cfg.Packets, nil)
	h := cfg.Hier.H()
	var rows []Fig6Row
	for _, k := range cfg.Counters {
		// Baseline: H WCSS instances of k counters each.
		b, err := baseline.NewWindow(cfg.Hier, cfg.Window, k)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, p := range pkts {
			b.Update(p)
		}
		baseMPPS := float64(len(pkts)) / time.Since(start).Seconds() / 1e6
		rows = append(rows, Fig6Row{
			Hier: cfg.Hier.String(), Algorithm: "Baseline",
			Counters: k * h, V: h, MPPS: baseMPPS, Speedup: 1,
		})
		for _, v := range cfg.Vs {
			hm, err := core.NewHHH(core.HHHConfig{
				Hierarchy: cfg.Hier, Window: cfg.Window,
				Counters: k * h, V: v, Seed: cfg.Seed + 2,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for _, p := range pkts {
				hm.Update(p)
			}
			mpps := float64(len(pkts)) / time.Since(start).Seconds() / 1e6
			rows = append(rows, Fig6Row{
				Hier: cfg.Hier.String(), Algorithm: "H-Memento",
				Counters: k * h, V: v, MPPS: mpps, Speedup: mpps / baseMPPS,
			})
		}
	}
	return rows, nil
}

// Fig7Row is one point of Figure 7: H-Memento (window) vs RHHH
// (interval) throughput at matched sampling ratios.
type Fig7Row struct {
	Hier      string
	Algorithm string // "H-Memento" or "RHHH"
	V         int
	MPPS      float64
}

// Fig7Config parameterizes the Figure 7 sweep.
type Fig7Config struct {
	Hier     hierarchy.Hierarchy
	Profile  trace.Profile
	Counters int // per-instance (RHHH) and ·H total (H-Memento)
	Vs       []int
	Window   int
	Packets  int
	Seed     uint64
}

// Figure7 compares the two constant-time HHH algorithms at equal
// sampling ratios V.
func Figure7(cfg Fig7Config) ([]Fig7Row, error) {
	gen, err := trace.NewGenerator(cfg.Profile, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pkts := gen.Generate(cfg.Packets, nil)
	h := cfg.Hier.H()
	var rows []Fig7Row
	for _, v := range cfg.Vs {
		hm, err := core.NewHHH(core.HHHConfig{
			Hierarchy: cfg.Hier, Window: cfg.Window,
			Counters: cfg.Counters * h, V: v, Seed: cfg.Seed + 3,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, p := range pkts {
			hm.Update(p)
		}
		rows = append(rows, Fig7Row{
			Hier: cfg.Hier.String(), Algorithm: "H-Memento", V: v,
			MPPS: float64(len(pkts)) / time.Since(start).Seconds() / 1e6,
		})

		rh, err := baseline.NewRHHH(baseline.RHHHConfig{
			Hierarchy: cfg.Hier, CountersPerInstance: cfg.Counters,
			V: v, Seed: cfg.Seed + 4,
		})
		if err != nil {
			return nil, err
		}
		start = time.Now()
		for _, p := range pkts {
			rh.Update(p)
		}
		rows = append(rows, Fig7Row{
			Hier: cfg.Hier.String(), Algorithm: "RHHH", V: v,
			MPPS: float64(len(pkts)) / time.Since(start).Seconds() / 1e6,
		})
	}
	return rows, nil
}

// Fig8Row is one point of Figure 8: per-prefix-length on-arrival error
// of the Interval (MST), Baseline and H-Memento algorithms.
type Fig8Row struct {
	Trace     string
	Algorithm string
	PrefixLen int // kept bytes of the prefix (0..4)
	RMSE      float64
}

// Fig8Config parameterizes the Figure 8 comparison.
type Fig8Config struct {
	Profile   trace.Profile
	Window    int
	Packets   int
	Counters  int // per-instance for MST/Baseline; ·H for H-Memento
	V         int // H-Memento sampling ratio
	EvalEvery int
	Seed      uint64
}

// Figure8 replays a trace through the three HHH algorithms and
// measures, for each arriving packet's prefixes, the error against an
// exact window oracle, grouped by prefix length.
func Figure8(cfg Fig8Config) ([]Fig8Row, error) {
	var hier hierarchy.OneD
	gen, err := trace.NewGenerator(cfg.Profile, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pkts := gen.Generate(cfg.Packets, nil)

	mst, err := baseline.NewMST(hier, cfg.Counters)
	if err != nil {
		return nil, err
	}
	win, err := baseline.NewWindow(hier, cfg.Window, cfg.Counters)
	if err != nil {
		return nil, err
	}
	hm, err := core.NewHHH(core.HHHConfig{
		Hierarchy: hier, Window: cfg.Window,
		Counters: cfg.Counters * hier.H(), V: cfg.V, Seed: cfg.Seed + 5,
	})
	if err != nil {
		return nil, err
	}

	// One exact window oracle per prefix level.
	oracles := make([]*exact.SlidingWindow[hierarchy.Prefix], hier.H())
	for i := range oracles {
		oracles[i], err = exact.NewSlidingWindow[hierarchy.Prefix](cfg.Window)
		if err != nil {
			return nil, err
		}
	}

	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	sums := map[[2]int]float64{} // (algo, level) → Σ err²
	counts := map[[2]int]int{}
	algos := []string{"Interval", "Baseline", "H-Memento"}
	for i, p := range pkts {
		mst.Update(p)
		// MST is periodically reset, as operators use it (Section 2:
		// "often reset to allow its data to be fresh").
		if mst.Items() >= uint64(cfg.Window) {
			mst.Reset()
		}
		win.Update(p)
		hm.Update(p)
		for lvl := 0; lvl < hier.H(); lvl++ {
			oracles[lvl].Add(hier.Prefix(p, lvl))
		}
		if i < cfg.Window || i%evalEvery != 0 {
			continue
		}
		for lvl := 0; lvl < hier.H(); lvl++ {
			pre := hier.Prefix(p, lvl)
			truth := float64(oracles[lvl].Count(pre))
			for a, est := range []float64{mst.Query(pre), win.Query(pre), hm.Query(pre)} {
				d := est - truth
				key := [2]int{a, lvl}
				sums[key] += d * d
				counts[key]++
			}
		}
	}
	var rows []Fig8Row
	for a, name := range algos {
		for lvl := 0; lvl < hier.H(); lvl++ {
			key := [2]int{a, lvl}
			if counts[key] == 0 {
				return nil, fmt.Errorf("experiments: no Figure 8 samples for %s level %d", name, lvl)
			}
			rows = append(rows, Fig8Row{
				Trace: cfg.Profile.Name, Algorithm: name,
				PrefixLen: hierarchy.AddrBytes - lvl,
				RMSE:      sqrt(sums[key] / float64(counts[key])),
			})
		}
	}
	return rows, nil
}

// sqrt clamps tiny negative accumulator noise before math.Sqrt.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
