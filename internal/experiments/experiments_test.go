package experiments

import (
	"math"
	"testing"

	"memento/internal/hierarchy"
	"memento/internal/trace"
)

// Small scales keep the suite fast while still exercising the shape
// claims; the commands run the larger defaults.

func TestFigure5ShapeClaims(t *testing.T) {
	rows, err := Figure5(Fig5Config{
		Profiles:  []trace.Profile{trace.Backbone},
		Counters:  []int{64, 512},
		Taus:      []float64{1, 1.0 / 16, 1.0 / 256},
		Window:    1 << 15,
		Packets:   1 << 17,
		EvalEvery: 64,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byKey := map[[2]int]Fig5Row{}
	for _, r := range rows {
		byKey[[2]int{r.Counters, int(1 / r.Tau)}] = r
	}
	// Sampling buys speed: τ = 1/256 must be several × faster than
	// WCSS (τ = 1); the paper reports up to 14×.
	for _, k := range []int{64, 512} {
		wcss := byKey[[2]int{k, 1}]
		fast := byKey[[2]int{k, 256}]
		if fast.Speedup < 2 {
			t.Errorf("k=%d: τ=1/256 speedup %.2f, want ≥ 2", k, fast.Speedup)
		}
		if wcss.Speedup != 1 {
			t.Errorf("k=%d: WCSS speedup = %v, want 1", k, wcss.Speedup)
		}
		// Accuracy stays in the same regime as WCSS at moderate τ
		// (Figure 5's main claim): allow 3× WCSS error at τ=1/16.
		mid := byKey[[2]int{k, 16}]
		if mid.RMSE > 3*wcss.RMSE+0.02*float64(1<<15) {
			t.Errorf("k=%d: τ=1/16 RMSE %.1f vs WCSS %.1f — degraded too much",
				k, mid.RMSE, wcss.RMSE)
		}
	}
	// More counters → lower WCSS error.
	if byKey[[2]int{512, 1}].RMSE >= byKey[[2]int{64, 1}].RMSE {
		t.Error("512 counters should beat 64 in accuracy")
	}
}

func TestFigure6SpeedupGrowsWithSampling(t *testing.T) {
	rows, err := Figure6(Fig6Config{
		Hier:     hierarchy.OneD{},
		Profile:  trace.Backbone,
		Counters: []int{64},
		Vs:       []int{5, 40, 320},
		Window:   1 << 14,
		Packets:  1 << 16,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var baselineMPPS float64
	speedups := map[int]float64{}
	for _, r := range rows {
		if r.Algorithm == "Baseline" {
			baselineMPPS = r.MPPS
		} else {
			speedups[r.V] = r.Speedup
		}
	}
	if baselineMPPS <= 0 {
		t.Fatal("no baseline row")
	}
	// Higher V (more aggressive sampling) → faster.
	if !(speedups[320] > speedups[5]) {
		t.Fatalf("speedup not increasing in V: %v", speedups)
	}
	// At V = 320 H-Memento must be clearly faster than the H-update
	// Baseline (the paper reports up to 53× in 1D).
	if speedups[320] < 3 {
		t.Fatalf("V=320 speedup %.2f, want ≥ 3", speedups[320])
	}
}

func TestFigure7BothAlgorithmsRun(t *testing.T) {
	rows, err := Figure7(Fig7Config{
		Hier:     hierarchy.OneD{},
		Profile:  trace.Backbone,
		Counters: 64,
		Vs:       []int{10, 100},
		Window:   1 << 14,
		Packets:  1 << 16,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.MPPS <= 0 {
			t.Fatalf("row %+v has no throughput", r)
		}
	}
}

func TestFigure8IntervalLeastAccurate(t *testing.T) {
	rows, err := Figure8(Fig8Config{
		Profile:   trace.Backbone,
		Window:    1 << 14,
		Packets:   1 << 16,
		Counters:  256,
		V:         5,
		EvalEvery: 64,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate RMSE across prefix lengths per algorithm.
	agg := map[string]float64{}
	for _, r := range rows {
		agg[r.Algorithm] += r.RMSE
	}
	// Figure 8: "the Interval approach is the least accurate" and
	// "H-Memento is slightly less accurate than the Baseline".
	if !(agg["Interval"] > agg["Baseline"]) {
		t.Fatalf("Interval should be least accurate: %v", agg)
	}
	if !(agg["H-Memento"] >= agg["Baseline"]) {
		t.Fatalf("Baseline should be most accurate: %v", agg)
	}
	if agg["H-Memento"] > 4*agg["Interval"] {
		t.Fatalf("H-Memento error implausibly large: %v", agg)
	}
}

func TestFigure9BatchBestAggregationWorst(t *testing.T) {
	rows, err := Figure9(Fig9Config{
		Profile:   trace.Backbone,
		Window:    1 << 14,
		Packets:   1 << 16,
		Points:    10,
		Budget:    1,
		BatchSize: 44,
		Counters:  1024,
		EvalEvery: 64,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := map[string]float64{}
	for _, r := range rows {
		agg[r.Method] += r.RMSE
	}
	// Figure 9: "the best accuracy is achieved by the Batch approach,
	// while Sample significantly outperforms Aggregation".
	if !(agg["Batch"] < agg["Sample"]) {
		t.Fatalf("Batch should beat Sample: %v", agg)
	}
	if !(agg["Sample"] < agg["Aggregation"]) {
		t.Fatalf("Sample should beat Aggregation: %v", agg)
	}
}

func TestFigure10BatchNearOptimal(t *testing.T) {
	results, err := Figure10(Fig10Config{
		Profile:    trace.Backbone,
		Window:     1 << 14,
		Packets:    1 << 16,
		Subnets:    20,
		FloodRate:  0.7,
		FloodStart: 1 << 14,
		Theta:      0.01,
		Points:     10,
		Budget:     1,
		BatchSize:  44,
		Counters:   1024,
		CheckEvery: 256,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig10Result{}
	for _, r := range results {
		byName[r.Method] = r
	}
	for _, name := range []string{"OPT", "Aggregation", "Sample", "Batch"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing method %s", name)
		}
	}
	opt, batch, agg := byName["OPT"], byName["Batch"], byName["Aggregation"]
	if opt.DetectedSubnets != 20 {
		t.Fatalf("OPT detected %d/20 subnets", opt.DetectedSubnets)
	}
	if batch.DetectedSubnets < 18 {
		t.Fatalf("Batch detected only %d/20 subnets", batch.DetectedSubnets)
	}
	// Batch near-optimal, Aggregation far behind (the paper reports a
	// 37× miss-rate gap at full scale; at test scale we require ≥ 3×).
	if batch.MissedFraction > 5*opt.MissedFraction+0.05 {
		t.Fatalf("Batch miss fraction %.4f vs OPT %.4f — not near-optimal",
			batch.MissedFraction, opt.MissedFraction)
	}
	if !(agg.MissedFraction > 3*batch.MissedFraction) {
		t.Fatalf("Aggregation miss %.4f vs Batch %.4f — expected ≥3× gap",
			agg.MissedFraction, batch.MissedFraction)
	}
	// Curves are monotone and end at the detected count.
	for _, r := range results {
		prev := -1
		for _, pt := range r.Curve {
			if pt.Detected < prev {
				t.Fatalf("%s: detection curve not monotone", r.Method)
			}
			prev = pt.Detected
		}
		if last := r.Curve[len(r.Curve)-1].Detected; last != r.DetectedSubnets {
			t.Fatalf("%s: curve end %d != detected %d", r.Method, last, r.DetectedSubnets)
		}
	}
	if math.IsNaN(batch.MeanDelay) || batch.MeanDelay <= 0 {
		t.Fatalf("Batch mean delay %v", batch.MeanDelay)
	}
}
