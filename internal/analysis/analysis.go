// Package analysis implements the paper's network-wide error model
// (Section 5.2): the total error E_b of the Batch/Sample communication
// methods as a function of the per-packet bandwidth budget, and the
// numeric optimization of the batch size b that Figure 4 and the §5.2
// worked examples are built on.
//
// Theorem 5.5: given header overhead O, per-sample payload E, budget B
// bytes/packet, m measurement points, hierarchy size H, window W and
// confidence δs, the guaranteed error (in packets) of the Batch method
// with batch size b is
//
//	E_b = m·(O + E·b)/B + sqrt(H·W·Z_{1−δs/2}·(O + E·b)/(B·b))
//
// where the first term is the reporting delay (Theorem 5.4) and the
// second the sampling error at the budget-implied sampling probability
// τ = B·b/(O + E·b). The Sample method is the b = 1 special case.
package analysis

import (
	"errors"
	"fmt"
	"math"

	"memento/internal/stats"
)

// Model carries the deployment parameters of Theorem 5.5.
type Model struct {
	// OverheadBytes is O, the fixed per-report header cost (64 for the
	// paper's TCP transport).
	OverheadBytes float64
	// SampleBytes is E, bytes needed to report one sampled packet
	// (4 for a source IP, 8 for a source/destination pair).
	SampleBytes float64
	// Points is m, the number of measurement points.
	Points int
	// HierarchySize is H (1 for plain HH / D-Memento, 5 or 25 for
	// D-H-Memento).
	HierarchySize int
	// Window is W, the network-wide window size in packets.
	Window float64
	// Delta is δs, the confidence parameter.
	Delta float64
}

// Validate reports the first configuration problem, if any.
func (m Model) Validate() error {
	switch {
	case m.OverheadBytes < 0:
		return errors.New("analysis: negative overhead")
	case m.SampleBytes <= 0:
		return errors.New("analysis: sample payload must be positive")
	case m.Points <= 0:
		return errors.New("analysis: need at least one measurement point")
	case m.HierarchySize <= 0:
		return errors.New("analysis: hierarchy size must be positive")
	case m.Window <= 0:
		return errors.New("analysis: window must be positive")
	case m.Delta <= 0 || m.Delta >= 1:
		return errors.New("analysis: delta must be in (0, 1)")
	}
	return nil
}

// PaperExample is the deployment of the §5.2 worked examples: TCP
// transport, ten measurement points, source-IP hierarchy, δ = 0.01%,
// window 10⁶.
var PaperExample = Model{
	OverheadBytes: 64,
	SampleBytes:   4,
	Points:        10,
	HierarchySize: 5,
	Window:        1e6,
	Delta:         1e-4,
}

// Tau returns the maximum sampling probability affordable with batch
// size b under budget B bytes/packet: τ = B·b/(O + E·b), capped at 1.
func (m Model) Tau(budget float64, b int) float64 {
	tau := budget * float64(b) / (m.OverheadBytes + m.SampleBytes*float64(b))
	if tau > 1 {
		return 1
	}
	return tau
}

// DelayError returns Theorem 5.4's bound on the error introduced by
// delayed reporting: m·b·τ⁻¹ packets.
func (m Model) DelayError(budget float64, b int) float64 {
	return float64(m.Points) * float64(b) / m.Tau(budget, b)
}

// SamplingError returns the W·εs term at the budget-implied τ.
func (m Model) SamplingError(budget float64, b int) (float64, error) {
	z, err := stats.Z(1 - m.Delta/2)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(float64(m.HierarchySize) * m.Window * z / m.Tau(budget, b)), nil
}

// Error returns E_b, the total guaranteed error in packets for batch
// size b under the given budget (Theorem 5.5). Sample is b = 1.
func (m Model) Error(budget float64, b int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if budget <= 0 {
		return 0, errors.New("analysis: budget must be positive")
	}
	if b <= 0 {
		return 0, errors.New("analysis: batch size must be positive")
	}
	s, err := m.SamplingError(budget, b)
	if err != nil {
		return 0, err
	}
	return m.DelayError(budget, b) + s, nil
}

// Optimum is the result of minimizing E_b over the batch size.
type Optimum struct {
	// BatchSize is the minimizing b.
	BatchSize int
	// Error is E_b at the optimum, in packets.
	Error float64
	// ErrorFraction is Error/W.
	ErrorFraction float64
	// Tau is the sampling probability at the optimum.
	Tau float64
}

// Optimize finds the integer batch size minimizing E_b under the given
// budget by scanning b in [1, maxB]; E_b is unimodal in b (a convex
// delay term plus a decreasing sampling term), so the scan's argmin is
// the global optimum. maxB ≤ 0 selects a generous default.
func (m Model) Optimize(budget float64, maxB int) (Optimum, error) {
	if maxB <= 0 {
		maxB = 1 << 16
	}
	best := Optimum{BatchSize: -1, Error: math.Inf(1)}
	for b := 1; b <= maxB; b++ {
		e, err := m.Error(budget, b)
		if err != nil {
			return Optimum{}, err
		}
		if e < best.Error {
			best = Optimum{BatchSize: b, Error: e, Tau: m.Tau(budget, b)}
		}
	}
	if best.BatchSize < 0 {
		return Optimum{}, fmt.Errorf("analysis: no feasible batch size up to %d", maxB)
	}
	best.ErrorFraction = best.Error / m.Window
	return best, nil
}

// Curve tabulates E_b for the three synchronization variants Figure 4
// compares: Sample (b = 1), a fixed batch, and the optimal batch.
type Curve struct {
	Budget      float64
	Sample      float64
	FixedBatch  float64
	OptBatch    float64
	OptB        int
	SampleDelay float64 // delay components, for the hatched regions
	FixedDelay  float64
	OptDelay    float64
}

// Figure4 computes the comparison rows for the given budgets and fixed
// batch size (the paper plots b = 100).
func (m Model) Figure4(budgets []float64, fixedB int) ([]Curve, error) {
	if fixedB <= 0 {
		return nil, errors.New("analysis: fixed batch size must be positive")
	}
	out := make([]Curve, 0, len(budgets))
	for _, budget := range budgets {
		sample, err := m.Error(budget, 1)
		if err != nil {
			return nil, err
		}
		fixed, err := m.Error(budget, fixedB)
		if err != nil {
			return nil, err
		}
		opt, err := m.Optimize(budget, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, Curve{
			Budget:      budget,
			Sample:      sample,
			FixedBatch:  fixed,
			OptBatch:    opt.Error,
			OptB:        opt.BatchSize,
			SampleDelay: m.DelayError(budget, 1),
			FixedDelay:  m.DelayError(budget, fixedB),
			OptDelay:    m.DelayError(budget, opt.BatchSize),
		})
	}
	return out, nil
}
