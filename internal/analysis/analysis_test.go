package analysis

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []Model{
		{OverheadBytes: -1, SampleBytes: 4, Points: 1, HierarchySize: 1, Window: 1, Delta: 0.1},
		{SampleBytes: 0, Points: 1, HierarchySize: 1, Window: 1, Delta: 0.1},
		{SampleBytes: 4, Points: 0, HierarchySize: 1, Window: 1, Delta: 0.1},
		{SampleBytes: 4, Points: 1, HierarchySize: 0, Window: 1, Delta: 0.1},
		{SampleBytes: 4, Points: 1, HierarchySize: 1, Window: 0, Delta: 0.1},
		{SampleBytes: 4, Points: 1, HierarchySize: 1, Window: 1, Delta: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if err := PaperExample.Validate(); err != nil {
		t.Fatalf("paper example invalid: %v", err)
	}
}

func TestTau(t *testing.T) {
	m := PaperExample
	// τ = B·b/(O + E·b): at B = 1, b = 44 → 44/240.
	got := m.Tau(1, 44)
	want := 44.0 / 240
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Tau = %v, want %v", got, want)
	}
	// Generous budgets cap τ at 1.
	if m.Tau(1e6, 100) != 1 {
		t.Fatal("tau must cap at 1")
	}
}

func TestErrorComposition(t *testing.T) {
	m := PaperExample
	e, err := m.Error(1, 44)
	if err != nil {
		t.Fatal(err)
	}
	d := m.DelayError(1, 44)
	s, err := m.SamplingError(1, 44)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-(d+s)) > 1e-9 {
		t.Fatalf("error %v != delay %v + sampling %v", e, d, s)
	}
	if d <= 0 || s <= 0 {
		t.Fatal("both error components must be positive")
	}
}

func TestPaperExampleB1(t *testing.T) {
	// §5.2: B = 1 byte/packet, W = 10⁶ → E_b ≈ 13K packets (1.3%)
	// around the optimal batch size the paper reports as b = 44. The
	// curve is extremely flat there, so we assert the paper's own
	// numbers: the error at b = 44 matches ≈ 12.7K, the optimizer's
	// value is within 1% of it, and the optimal b is in the flat
	// region.
	m := PaperExample
	e44, err := m.Error(1, 44)
	if err != nil {
		t.Fatal(err)
	}
	if e44 < 12000 || e44 > 14000 {
		t.Fatalf("E_b(44) = %v, want ≈ 13K as in the paper", e44)
	}
	opt, err := m.Optimize(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.BatchSize < 25 || opt.BatchSize > 60 {
		t.Fatalf("optimal b = %d, want in the paper's flat region around 44", opt.BatchSize)
	}
	if opt.Error > e44 || e44-opt.Error > 0.01*e44 {
		t.Fatalf("optimum %v not within 1%% below E_b(44) = %v", opt.Error, e44)
	}
	if math.Abs(opt.ErrorFraction-opt.Error/1e6) > 1e-12 {
		t.Fatal("ErrorFraction inconsistent")
	}
}

func TestPaperExampleB5(t *testing.T) {
	// §5.2: increasing the budget to B = 5 decreases the error to
	// ≈ 5.3K packets (0.53%) and grows the optimal batch size (the
	// paper reports b = 68).
	m := PaperExample
	e68, err := m.Error(5, 68)
	if err != nil {
		t.Fatal(err)
	}
	if e68 < 4500 || e68 > 6000 {
		t.Fatalf("E_b(68) at B=5 = %v, want ≈ 5.3K", e68)
	}
	opt1, _ := m.Optimize(1, 0)
	opt5, err := m.Optimize(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt5.BatchSize <= opt1.BatchSize {
		t.Fatalf("optimal b must grow with budget: %d (B=5) vs %d (B=1)",
			opt5.BatchSize, opt1.BatchSize)
	}
	if opt5.Error >= opt1.Error {
		t.Fatal("error must shrink with budget")
	}
}

func TestPaperExampleLargerWindow(t *testing.T) {
	// §5.2: W = 10⁷ grows the optimal batch size further (paper: 109)
	// and shrinks the error as a fraction of W. Note the paper quotes
	// 0.15% here, which is inconsistent with its own formula (the
	// O(√W) growth it states in the same sentence yields ≈ 0.35%);
	// we assert the formula's value.
	m := PaperExample
	m.Window = 1e7
	opt, err := m.Optimize(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := PaperExample.Optimize(1, 0)
	if opt.BatchSize <= small.BatchSize {
		t.Fatalf("optimal b must grow with W: %d vs %d", opt.BatchSize, small.BatchSize)
	}
	if opt.ErrorFraction >= small.ErrorFraction {
		t.Fatal("relative error must shrink with W")
	}
	if opt.ErrorFraction < 0.002 || opt.ErrorFraction > 0.005 {
		t.Fatalf("W=1e7 error fraction %v, want ≈ 0.35%% per the formula", opt.ErrorFraction)
	}
	// Absolute error grows ≈ √10 in the sampling term.
	if opt.Error <= small.Error {
		t.Fatal("absolute error must grow with W")
	}
}

func TestTwoDimensionalHierarchyLargerError(t *testing.T) {
	// §5.2: H = 25 yields "a slightly larger error and a higher optimal
	// batch size". (The paper varies only H here; a larger per-sample
	// payload E would push the optimal b the other way.)
	m := PaperExample
	m.HierarchySize = 25
	opt2d, err := m.Optimize(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt1d, _ := PaperExample.Optimize(1, 0)
	if opt2d.Error <= opt1d.Error {
		t.Fatal("2D error must exceed 1D")
	}
	if opt2d.BatchSize <= opt1d.BatchSize {
		t.Fatalf("2D optimal batch %d must exceed 1D %d", opt2d.BatchSize, opt1d.BatchSize)
	}
}

func TestErrorUnimodal(t *testing.T) {
	// E_b decreases then increases in b; verify a single sign change of
	// the discrete derivative across a wide range.
	m := PaperExample
	prev, _ := m.Error(1, 1)
	changes := 0
	increasing := false
	for b := 2; b <= 5000; b++ {
		e, err := m.Error(1, b)
		if err != nil {
			t.Fatal(err)
		}
		if !increasing && e > prev+1e-9 {
			increasing = true
			changes++
		}
		if increasing && e < prev-1e-9 {
			changes++
		}
		prev = e
	}
	if changes != 1 {
		t.Fatalf("E_b is not unimodal: %d direction changes", changes)
	}
}

func TestSampleWorseThanOptBatch(t *testing.T) {
	// Figure 4's core message at every budget: Sample (b=1) is worse
	// than the optimal Batch.
	rows, err := PaperExample.Figure4([]float64{0.25, 0.5, 1, 2, 5, 10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.OptBatch > row.Sample {
			t.Fatalf("B=%v: optimal batch %v worse than sample %v",
				row.Budget, row.OptBatch, row.Sample)
		}
		if row.OptBatch > row.FixedBatch+1e-9 {
			t.Fatalf("B=%v: optimal batch %v worse than fixed %v",
				row.Budget, row.OptBatch, row.FixedBatch)
		}
		if row.SampleDelay >= row.FixedDelay {
			t.Fatalf("B=%v: sample delay %v must be below batch delay %v",
				row.Budget, row.SampleDelay, row.FixedDelay)
		}
	}
	// The gap between fixed-100 and optimal narrows as B grows
	// ("for larger values of B ... the accuracy gap narrows").
	first := rows[0].FixedBatch - rows[0].OptBatch
	last := rows[len(rows)-1].FixedBatch - rows[len(rows)-1].OptBatch
	if last >= first {
		t.Fatalf("batch-100 vs optimal gap must narrow: %v → %v", first, last)
	}
}

func TestErrorArgumentValidation(t *testing.T) {
	m := PaperExample
	if _, err := m.Error(0, 10); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := m.Error(1, 0); err == nil {
		t.Error("zero batch should fail")
	}
	var bad Model
	if _, err := bad.Error(1, 1); err == nil {
		t.Error("invalid model should fail")
	}
	if _, err := m.Figure4([]float64{1}, 0); err == nil {
		t.Error("bad fixed batch should fail")
	}
}
