// Package stats implements the statistical machinery the paper's
// analysis and evaluation rely on:
//
//   - Z — the inverse CDF of the standard normal distribution, used in
//     Theorems 5.2–5.5 to size sampling probabilities and error bounds.
//   - Student-t quantiles — the paper reports 95% confidence intervals
//     from 5 runs with two-sided Student t-tests (Section 6).
//   - Poisson confidence limits (Schwertman–Martinez), used by the
//     accuracy analysis in Appendix A (Lemma A.3).
//   - Running mean/variance and RMSE accumulators for the On-Arrival
//     evaluation model (Section 6: RMSE(Alg) = sqrt(1/N Σ (f̂ − f)²)).
//
// Everything is pure computation on float64 and safe for concurrent use
// by construction (no shared state), except the accumulator types which
// are single-writer like the sketches they instrument.
package stats

import (
	"errors"
	"math"
)

// ErrBadProbability is returned by quantile functions for p outside (0,1).
var ErrBadProbability = errors.New("stats: probability must be in (0, 1)")

// NormCDF returns the standard normal cumulative distribution function
// Φ(x).
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Z returns the inverse of the standard normal CDF at p, i.e. the value
// z with Φ(z) = p. This is the Z_α of the paper (Table 1: "inverse CDF
// of the normal distribution"). It uses Acklam's rational approximation
// refined by one step of Halley's method against math.Erfc, giving
// near machine precision over (0, 1).
func Z(p float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, ErrBadProbability
	}
	x := acklam(p)
	// Halley refinement: solve Φ(x) - p = 0.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// MustZ is Z for statically known valid probabilities; it panics on
// error and exists for test and table-driven configuration code.
func MustZ(p float64) float64 {
	z, err := Z(p)
	if err != nil {
		panic(err)
	}
	return z
}

// acklam computes Peter Acklam's rational approximation to the inverse
// normal CDF (relative error < 1.15e-9 over the full range).
func acklam(p float64) float64 {
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow = 0.02425
	const pHigh = 1 - pLow
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// lgamma returns the natural log of the absolute value of Γ(x).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b), computed with the continued fraction expansion (Lentz's
// algorithm), as in Numerical Recipes.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-15
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns the CDF of Student's t distribution with df degrees of
// freedom evaluated at t.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom, by monotone bisection on TCDF (the evaluation
// only needs a handful of quantiles, so robustness beats speed here).
func TQuantile(p, df float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, ErrBadProbability
	}
	if df <= 0 {
		return 0, errors.New("stats: degrees of freedom must be positive")
	}
	if p == 0.5 {
		return 0, nil
	}
	// Bracket using the normal quantile inflated for small df.
	z0, _ := Z(p)
	lo, hi := -1.0, 1.0
	scale := 4 + 40/df
	lo = math.Min(z0*scale-1, -1)
	hi = math.Max(z0*scale+1, 1)
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// PoissonCI returns an approximate two-sided 1-conf confidence interval
// for the mean of a Poisson variable observed as count, following
// Schwertman & Martinez (1994) — the approximation the paper cites for
// Lemma A.3's confidence machinery.
func PoissonCI(count float64, conf float64) (lo, hi float64, err error) {
	if count < 0 {
		return 0, 0, errors.New("stats: negative count")
	}
	if !(conf > 0 && conf < 1) {
		return 0, 0, ErrBadProbability
	}
	z, err := Z(1 - (1-conf)/2)
	if err != nil {
		return 0, 0, err
	}
	// Normal approximation with continuity correction on the sqrt scale.
	s := math.Sqrt(count)
	lo = s - z/2
	if lo < 0 {
		lo = 0
	}
	lo = lo * lo
	hiS := s + z/2
	hi = hiS*hiS + 1
	return lo, hi, nil
}

// Mean tracks a running mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Mean struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations so far.
func (m *Mean) N() int { return m.n }

// Value returns the current mean (0 for an empty accumulator).
func (m *Mean) Value() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CI returns the half-width of the two-sided Student-t confidence
// interval at level conf (e.g. 0.95) for the mean. It returns 0 when
// fewer than two observations have been added.
func (m *Mean) CI(conf float64) float64 {
	if m.n < 2 {
		return 0
	}
	t, err := TQuantile(1-(1-conf)/2, float64(m.n-1))
	if err != nil {
		return math.NaN()
	}
	return t * m.StdDev() / math.Sqrt(float64(m.n))
}

// RMSE accumulates squared errors and reports the root mean square
// error, the paper's On-Arrival accuracy metric. The zero value is
// ready to use.
type RMSE struct {
	n   int
	sum float64
}

// Add incorporates one (estimate, truth) observation.
func (r *RMSE) Add(estimate, truth float64) {
	d := estimate - truth
	r.n++
	r.sum += d * d
}

// AddErr incorporates one already-computed error term.
func (r *RMSE) AddErr(err float64) {
	r.n++
	r.sum += err * err
}

// N returns the number of observations.
func (r *RMSE) N() int { return r.n }

// Value returns sqrt(mean squared error); 0 for an empty accumulator.
func (r *RMSE) Value() float64 {
	if r.n == 0 {
		return 0
	}
	return math.Sqrt(r.sum / float64(r.n))
}

// Merge folds another accumulator into r (used to combine per-run
// accumulators across repetitions).
func (r *RMSE) Merge(o RMSE) {
	r.n += o.n
	r.sum += o.sum
}
