package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963985},
		{0.025, -1.959963985},
		{0.95, 1.644853627},
		{0.99, 2.326347874},
		{0.999, 3.090232306},
		{0.9999, 3.719016485},
		{0.99995, 3.890591886}, // the paper's δ = 10⁻⁴ two-sided value
		{0.8, 0.841621234},
	}
	for _, c := range cases {
		got, err := Z(c.p)
		if err != nil {
			t.Fatalf("Z(%v): %v", c.p, err)
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Z(%v) = %.9f, want %.9f", c.p, got, c.want)
		}
	}
}

func TestZErrors(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1, math.NaN()} {
		if _, err := Z(p); err == nil {
			t.Errorf("Z(%v) should fail", p)
		}
	}
}

func TestZRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p <= 1e-12 || p >= 1-1e-12 {
			return true
		}
		z, err := Z(p)
		if err != nil {
			return false
		}
		return math.Abs(NormCDF(z)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZPaperBound(t *testing.T) {
	// Theorem 5.2 remarks "Z_{1−δ/4} < 4 for any δ > 10⁻⁶"; the remark
	// is loose (the true value at δ = 10⁻⁶ is ≈ 5.03). Assert the real
	// numbers so the discrepancy is documented, and that the bound does
	// hold from δ = 10⁻⁴ up — the regime every experiment uses.
	if z := MustZ(1 - 1e-6/4); math.Abs(z-5.0263) > 1e-3 {
		t.Fatalf("Z(1-1e-6/4) = %v, want ≈ 5.0263", z)
	}
	if z := MustZ(1 - 1e-4/4); z >= 4.2 || z <= 3.8 {
		t.Fatalf("Z(1-1e-4/4) = %v, want in (3.8, 4.2)", z)
	}
	// Monotone in p.
	if MustZ(0.999) >= MustZ(0.9999) {
		t.Fatal("Z must be increasing in p")
	}
}

func TestNormCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.998650102},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	// I_x(a,b) is a CDF in x: 0 at 0, 1 at 1, monotone.
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Fatalf("I_0 = %v", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Fatalf("I_1 = %v", got)
	}
	prev := 0.0
	for x := 0.0; x <= 1.0001; x += 0.01 {
		v := RegIncBeta(2.5, 1.5, math.Min(x, 1))
		if v < prev-1e-12 {
			t.Fatalf("RegIncBeta not monotone at x=%v", x)
		}
		prev = v
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.7} {
		l := RegIncBeta(2, 5, x)
		r := 1 - RegIncBeta(5, 2, 1-x)
		if math.Abs(l-r) > 1e-12 {
			t.Fatalf("symmetry broken at x=%v: %v vs %v", x, l, r)
		}
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.2, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Fatalf("I_x(1,1) = %v, want %v", got, x)
		}
	}
}

func TestTCDF(t *testing.T) {
	// t distribution is symmetric and heavier-tailed than the normal.
	if got := TCDF(0, 5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TCDF(0) = %v", got)
	}
	for _, df := range []float64{1, 4, 30} {
		l, r := TCDF(-1.5, df), TCDF(1.5, df)
		if math.Abs(l+r-1) > 1e-10 {
			t.Fatalf("df=%v symmetry: %v + %v != 1", df, l, r)
		}
	}
	if TCDF(2, 3) >= NormCDF(2) {
		t.Fatal("t with 3 df should have heavier tails than the normal")
	}
	// Large df converges to the normal.
	if math.Abs(TCDF(1.2, 1e6)-NormCDF(1.2)) > 1e-4 {
		t.Fatal("t(1e6 df) should match the normal closely")
	}
}

func TestTQuantileKnown(t *testing.T) {
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 4, 2.7764}, // the paper's 5-run 95% CI multiplier
		{0.975, 9, 2.2622},
		{0.95, 10, 1.8125},
		{0.975, 1, 12.7062},
		{0.5, 7, 0},
	}
	for _, c := range cases {
		got, err := TQuantile(c.p, c.df)
		if err != nil {
			t.Fatalf("TQuantile(%v, %v): %v", c.p, c.df, err)
		}
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("TQuantile(%v, %v) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileRoundTrip(t *testing.T) {
	for _, df := range []float64{2, 4, 17} {
		for _, p := range []float64{0.01, 0.2, 0.6, 0.95, 0.999} {
			q, err := TQuantile(p, df)
			if err != nil {
				t.Fatal(err)
			}
			if back := TCDF(q, df); math.Abs(back-p) > 1e-9 {
				t.Fatalf("TCDF(TQuantile(%v, %v)) = %v", p, df, back)
			}
		}
	}
}

func TestTQuantileErrors(t *testing.T) {
	if _, err := TQuantile(0, 4); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := TQuantile(0.5, 0); err == nil {
		t.Error("df=0 should fail")
	}
}

func TestPoissonCI(t *testing.T) {
	lo, hi, err := PoissonCI(100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 100 && 100 < hi) {
		t.Fatalf("CI [%v, %v] should straddle the observation", lo, hi)
	}
	// Roughly 100 ± 2·10 for a 95% interval.
	if lo < 75 || lo > 95 || hi < 105 || hi > 125 {
		t.Fatalf("CI [%v, %v] implausible for count=100", lo, hi)
	}
	lo, hi, err = PoissonCI(0, 0.95)
	if err != nil || lo != 0 || hi <= 0 {
		t.Fatalf("CI for count=0: [%v, %v], err=%v", lo, hi, err)
	}
	if _, _, err := PoissonCI(-1, 0.95); err == nil {
		t.Error("negative count should fail")
	}
	if _, _, err := PoissonCI(5, 1.5); err == nil {
		t.Error("bad confidence should fail")
	}
}

func TestMeanWelford(t *testing.T) {
	var m Mean
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		m.Add(x)
	}
	if m.N() != len(xs) {
		t.Fatalf("N = %d", m.N())
	}
	if math.Abs(m.Value()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", m.Value())
	}
	// Sample variance of the classic dataset: population var is 4, so
	// sample var = 4·8/7.
	want := 4.0 * 8 / 7
	if math.Abs(m.Variance()-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", m.Variance(), want)
	}
	if m.CI(0.95) <= 0 {
		t.Fatal("CI half-width should be positive")
	}
}

func TestMeanEmptyAndSingle(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.Variance() != 0 || m.CI(0.95) != 0 {
		t.Fatal("zero-value accumulator should report zeros")
	}
	m.Add(3)
	if m.Value() != 3 || m.Variance() != 0 || m.CI(0.95) != 0 {
		t.Fatal("single observation: mean 3, no spread")
	}
}

func TestMeanCIShrinks(t *testing.T) {
	// More observations with the same spread → tighter interval.
	var a, b Mean
	for i := 0; i < 5; i++ {
		a.Add(float64(i % 2))
	}
	for i := 0; i < 500; i++ {
		b.Add(float64(i % 2))
	}
	if b.CI(0.95) >= a.CI(0.95) {
		t.Fatalf("CI did not shrink: %v vs %v", b.CI(0.95), a.CI(0.95))
	}
}

func TestRMSE(t *testing.T) {
	var r RMSE
	if r.Value() != 0 {
		t.Fatal("empty RMSE should be 0")
	}
	r.Add(3, 0)
	r.Add(0, 4)
	// sqrt((9+16)/2)
	want := math.Sqrt(12.5)
	if math.Abs(r.Value()-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", r.Value(), want)
	}
	var other RMSE
	other.AddErr(5)
	r.Merge(other)
	want = math.Sqrt((9.0 + 16 + 25) / 3)
	if math.Abs(r.Value()-want) > 1e-12 || r.N() != 3 {
		t.Fatalf("after merge RMSE = %v (n=%d), want %v (n=3)", r.Value(), r.N(), want)
	}
}

func TestRMSENonNegativeProperty(t *testing.T) {
	f := func(est, truth []float64) bool {
		var r RMSE
		n := len(est)
		if len(truth) < n {
			n = len(truth)
		}
		for i := 0; i < n; i++ {
			r.Add(est[i], truth[i])
		}
		return r.Value() >= 0 && r.N() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
