// Package floodgen generates the HTTP flood traffic of the paper's
// Section 6.4 experiment: stateful GET/POST requests whose source
// addresses come from a configurable set of attacking subnets overlaid
// on legitimate background traffic.
//
// The paper's generator uses NFQUEUE to source packets from arbitrary
// IPs; that requires root and kernel cooperation, so this generator
// carries the spoofed source in X-Forwarded-For, which the balancer
// accepts in testbed mode (see internal/lb and DESIGN.md §2). What the
// experiments measure — request attribution to subnets — is identical.
package floodgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"memento/internal/hierarchy"
	"memento/internal/rng"
	"memento/internal/trace"
)

// Config parameterizes a flood run.
type Config struct {
	// Targets are the load-balancer base URLs requests are sprayed
	// across. Required.
	Targets []string
	// Subnets is the number of attacking /8 subnets.
	Subnets int
	// FloodRate is the fraction of requests that are attack traffic.
	FloodRate float64
	// Profile drives the legitimate background traffic addresses.
	Profile trace.Profile
	// Requests is the total number of requests to send.
	Requests int
	// Concurrency is the number of parallel workers (default 16).
	Concurrency int
	// Seed fixes the randomness.
	Seed uint64
	// Client overrides the HTTP client (tests inject httptest here).
	Client *http.Client
}

// Stats summarizes a completed run.
type Stats struct {
	// Sent counts requests attempted.
	Sent uint64
	// Attack counts requests sourced from attacking subnets.
	Attack uint64
	// Blocked counts attack requests answered with 403 (the ACL
	// working).
	Blocked uint64
	// Errors counts transport failures.
	Errors uint64
	// Subnets are the attacking /8 network addresses used.
	Subnets []uint32
}

// Run drives the flood until Requests have been sent or ctx is
// cancelled. It is deterministic in the request *sequence* given the
// seed (delivery order across workers is not).
func Run(ctx context.Context, cfg Config) (Stats, error) {
	if len(cfg.Targets) == 0 {
		return Stats{}, errors.New("floodgen: at least one target required")
	}
	if cfg.Subnets <= 0 || cfg.FloodRate <= 0 || cfg.FloodRate >= 1 {
		return Stats{}, errors.New("floodgen: need Subnets and FloodRate in (0,1)")
	}
	if cfg.Requests <= 0 {
		return Stats{}, errors.New("floodgen: Requests must be positive")
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 16
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	gen, err := trace.NewGenerator(cfg.Profile, cfg.Seed)
	if err != nil {
		return Stats{}, err
	}
	src := rng.New(cfg.Seed ^ 0x41747461636b) // "Attack"

	var stats Stats
	seen := map[byte]bool{}
	for len(stats.Subnets) < cfg.Subnets {
		b := byte(src.Uint32())
		if seen[b] {
			continue
		}
		seen[b] = true
		stats.Subnets = append(stats.Subnets, uint32(b)<<24)
	}

	type job struct {
		target string
		ip     uint32
		attack bool
	}
	jobs := make(chan job, conc)
	var wg sync.WaitGroup
	var sent, attack, blocked, errs atomic.Uint64
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, j.target, nil)
				if err != nil {
					errs.Add(1)
					continue
				}
				req.Header.Set("X-Forwarded-For", formatIPv4(j.ip))
				resp, err := client.Do(req)
				sent.Add(1)
				if j.attack {
					attack.Add(1)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if j.attack && resp.StatusCode == http.StatusForbidden {
					blocked.Add(1)
				}
			}
		}()
	}

	for i := 0; i < cfg.Requests; i++ {
		var j job
		j.target = cfg.Targets[i%len(cfg.Targets)]
		if src.Float64() < cfg.FloodRate {
			subnet := stats.Subnets[src.Intn(len(stats.Subnets))]
			j.ip = subnet | (uint32(src.Uint64()) & 0x00ffffff)
			j.attack = true
		} else {
			j.ip = gen.Next().Src
		}
		select {
		case jobs <- j:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return collect(&stats, &sent, &attack, &blocked, &errs), ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	return collect(&stats, &sent, &attack, &blocked, &errs), nil
}

// collect folds the atomics into the stats struct.
func collect(s *Stats, sent, attack, blocked, errs *atomic.Uint64) Stats {
	s.Sent = sent.Load()
	s.Attack = attack.Load()
	s.Blocked = blocked.Load()
	s.Errors = errs.Load()
	return *s
}

// formatIPv4 renders the packed address as a dotted quad.
func formatIPv4(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// FormatIPv4 is the exported formatting helper used by commands.
func FormatIPv4(a uint32) string { return formatIPv4(a) }

// PacketFor reproduces the hierarchy packet a request with the given
// spoofed address represents (used in tests to cross-check counts).
func PacketFor(ip uint32) hierarchy.Packet { return hierarchy.Packet{Src: ip} }
