package floodgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"memento/internal/hierarchy"
	"memento/internal/trace"
)

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	bad := []Config{
		{},
		{Targets: []string{"http://x"}, Subnets: 0, FloodRate: 0.5, Requests: 1},
		{Targets: []string{"http://x"}, Subnets: 5, FloodRate: 1.5, Requests: 1},
		{Targets: []string{"http://x"}, Subnets: 5, FloodRate: 0.5, Requests: 0},
	}
	for i, cfg := range bad {
		cfg.Profile = trace.Edge
		if _, err := Run(ctx, cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRunDistribution(t *testing.T) {
	var mu sync.Mutex
	perSubnet := map[uint32]int{}
	total := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ip := r.Header.Get("X-Forwarded-For")
		mu.Lock()
		total++
		var a, b, c, d byte
		fmtSscanf(ip, &a, &b, &c, &d)
		perSubnet[uint32(a)<<24]++
		mu.Unlock()
	}))
	defer srv.Close()

	stats, err := Run(context.Background(), Config{
		Targets:   []string{srv.URL},
		Subnets:   10,
		FloodRate: 0.7,
		Profile:   trace.Edge,
		Requests:  4000,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 4000 || stats.Errors != 0 {
		t.Fatalf("sent=%d errors=%d", stats.Sent, stats.Errors)
	}
	frac := float64(stats.Attack) / float64(stats.Sent)
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("attack fraction %.3f, want ≈ 0.7", frac)
	}
	if len(stats.Subnets) != 10 {
		t.Fatalf("subnets = %d", len(stats.Subnets))
	}
	mu.Lock()
	defer mu.Unlock()
	attackSeen := 0
	for _, s := range stats.Subnets {
		attackSeen += perSubnet[s]
	}
	if attackSeen < int(stats.Attack*9/10) {
		t.Fatalf("server saw %d attack requests, generator claims %d", attackSeen, stats.Attack)
	}
}

func TestRunCountsBlocked(t *testing.T) {
	stats0, err := Run(context.Background(), Config{
		Targets: []string{"http://placeholder"}, Subnets: 3, FloodRate: 0.5,
		Profile: trace.Edge, Requests: 10, Seed: 1,
		Client: &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
			rec := httptest.NewRecorder()
			rec.WriteHeader(http.StatusForbidden)
			return rec.Result(), nil
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats0.Blocked != stats0.Attack {
		t.Fatalf("blocked=%d attack=%d; every attack answer was 403", stats0.Blocked, stats0.Attack)
	}
}

func TestRunRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{
		Targets: []string{"http://unreachable.invalid"}, Subnets: 2, FloodRate: 0.5,
		Profile: trace.Edge, Requests: 1 << 20, Seed: 2,
		Client: &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
			<-r.Context().Done()
			return nil, r.Context().Err()
		})},
	})
	if err == nil {
		t.Fatal("cancelled run should return the context error")
	}
}

func TestFormatIPv4(t *testing.T) {
	if got := FormatIPv4(hierarchy.IPv4(1, 2, 3, 4)); got != "1.2.3.4" {
		t.Fatalf("FormatIPv4 = %q", got)
	}
	if PacketFor(5).Src != 5 {
		t.Fatal("PacketFor wrong")
	}
}

// roundTripFunc adapts a function to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// fmtSscanf is a minimal dotted-quad parser for the test server.
func fmtSscanf(s string, a, b, c, d *byte) {
	var parts [4]int
	idx := 0
	for i := 0; i < len(s) && idx < 4; i++ {
		ch := s[i]
		if ch >= '0' && ch <= '9' {
			parts[idx] = parts[idx]*10 + int(ch-'0')
		} else if ch == '.' {
			idx++
		} else {
			break
		}
	}
	*a, *b, *c, *d = byte(parts[0]), byte(parts[1]), byte(parts[2]), byte(parts[3])
}
