// Package netwide implements the paper's network-wide measurement
// system (Section 6.3) over real TCP connections: measurement points
// (agents) embedded in load balancers sample their ingress traffic and
// report to a central controller under a per-packet bandwidth budget;
// the controller runs D-Memento / D-H-Memento over the reports and
// pushes mitigation verdicts (deny / tarpit, Section 6.4) back to the
// agents.
//
// The wire protocol is deliberately simple and self-describing:
// length-prefixed binary frames with a CRC32 trailer. Big-endian
// throughout. Every frame is
//
//	u32 length   — bytes after this field (type + payload + crc)
//	u8  type     — message type
//	... payload  — type-specific
//	u32 crc32    — IEEE CRC of type + payload
//
// Frames above MaxFrame bytes are rejected; a corrupt CRC closes the
// connection. These two rules bound memory and fail fast on framing
// bugs, per the usual discipline for binary TCP protocols.
//
//memento:nopanic Decode* Apply*
package netwide

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/hierarchy"
)

// Message types.
const (
	// MsgHello introduces an agent: name, sampling parameters.
	MsgHello = byte(1)
	// MsgBatch reports covered-packet count plus sampled packets.
	MsgBatch = byte(2)
	// MsgVerdict carries mitigation actions from the controller.
	MsgVerdict = byte(3)
	// MsgSnapshot ships an agent's full local sketch state: covered
	// packet count plus an encoded core.HHHSnapshot (internal/codec
	// KindHHH record). The snapshot-shipping report mode realizes the
	// paper's "send everything" baseline as a live accuracy-vs-bytes
	// operating point.
	MsgSnapshot = byte(4)
	// MsgDelta ships one replication chain record (internal/delta,
	// codec KindHHHDelta): covered packet count plus either a chain
	// base embedding a full snapshot or an incremental delta carrying
	// only changed counters. The delta report mode keeps the
	// controller at snapshot fidelity for a fraction of the bytes.
	MsgDelta = byte(5)
	// MsgResync is the controller→agent half of the chain handshake:
	// the controller detected a chain discontinuity (delta.ErrEpochGap
	// — typically a report dropped under backpressure, or a controller
	// restart) and the agent must ship a fresh base.
	MsgResync = byte(6)
	// MsgPing is an agent→controller heartbeat carrying a u64 sequence
	// number. Agents send one every HeartbeatEvery so an idle but
	// healthy connection never trips the controller's read deadline,
	// and so the agent learns about one-way partitions (writes succeed,
	// pongs stop) that a closed socket would never reveal.
	MsgPing = byte(7)
	// MsgPong is the controller's echo of a MsgPing, same payload. Its
	// arrival refreshes the agent's last-contact stamp, the input to
	// degraded-mode detection.
	MsgPong = byte(8)
	// MsgTraced is a traced report envelope: a codec.TraceContext
	// (agent id, report sequence, capture-time nanos) wrapped around a
	// MsgBatch, MsgSnapshot or MsgDelta payload. Agents only send it
	// after the trace probe handshake succeeded (see traceProbeSeq), so
	// untraced v1 controllers — which drop connections on unknown frame
	// types — never see one.
	MsgTraced = byte(9)
)

// Trace probe handshake. Both sides of the protocol drop connections
// on unknown frame types, so tracing capability is negotiated over
// the one pre-existing echo channel: immediately after Hello, a
// tracing agent sends a MsgPing whose sequence number is the probe
// magic below. A v1 controller echoes it back verbatim in a MsgPong
// (its documented ping behavior) and the agent stays untraced; a
// tracing-aware controller recognizes the magic and answers with the
// ack instead, enabling MsgTraced envelopes for that connection. No
// flag day: every pairing of old and new peers interoperates.
//
// The magics sit in a high band no heartbeat ever reaches — agent
// heartbeat sequences start at 1 and increment per ping.
const (
	traceProbeSeq = uint64(0xC0DE_7A11_0000_0001)
	traceProbeAck = uint64(0xC0DE_7A11_0000_0002)
)

// MaxFrame bounds a single frame (type + payload + crc), protecting
// both sides from hostile or corrupt length prefixes.
const MaxFrame = 1 << 20

// Protocol limits.
const (
	maxName           = 255
	maxSamplesPerMsg  = 1 << 16
	maxVerdictsPerMsg = 1 << 16
)

// ErrFrameTooLarge is returned when a length prefix exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("netwide: frame exceeds size limit")

// ErrBadChecksum is returned when a frame's CRC32 does not match.
var ErrBadChecksum = errors.New("netwide: bad frame checksum")

// Hello introduces an agent to the controller.
type Hello struct {
	// Name identifies the agent in diagnostics.
	Name string
	// Tau is the agent's sampling probability; the controller verifies
	// it matches its own configuration.
	Tau float64
	// Batch is the agent's samples-per-report target.
	Batch uint32
}

// Batch is one measurement report.
type Batch struct {
	// Covered is how many packets the agent observed since its last
	// report (the controller advances its window by this much).
	Covered uint64
	// Samples are the sampled packets.
	Samples []hierarchy.Packet
}

// Action is a mitigation verdict kind.
type Action uint8

// Mitigation actions mirroring the HAProxy extension's capabilities
// (Section 6.3: "perform mitigation (i.e., Deny or Tarpit)").
const (
	ActionAllow Action = iota
	ActionDeny
	ActionTarpit
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionAllow:
		return "allow"
	case ActionDeny:
		return "deny"
	case ActionTarpit:
		return "tarpit"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Verdict instructs agents to apply an action to a subnet.
type Verdict struct {
	// Subnet is the masked network address.
	Subnet uint32
	// PrefixBytes is the number of significant leading bytes.
	PrefixBytes uint8
	// Act is the mitigation action.
	Act Action
}

// Prefix returns the verdict's subnet as a hierarchy prefix.
func (v Verdict) Prefix() hierarchy.Prefix {
	return hierarchy.Prefix{Src: hierarchy.MaskBytes(v.Subnet, v.PrefixBytes), SrcLen: v.PrefixBytes}
}

// writeFrame emits one frame.
func writeFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload)+5 > MaxFrame {
		return ErrFrameTooLarge
	}
	frame := make([]byte, 4+1+len(payload)+4)
	binary.BigEndian.PutUint32(frame[0:4], uint32(1+len(payload)+4))
	frame[4] = msgType
	copy(frame[5:], payload)
	crc := crc32.ChecksumIEEE(frame[4 : 5+len(payload)])
	binary.BigEndian.PutUint32(frame[5+len(payload):], crc)
	_, err := w.Write(frame)
	return err
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(head[:])
	if n < 5 {
		return 0, nil, errors.New("netwide: short frame")
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	payload := body[1 : n-4]
	want := binary.BigEndian.Uint32(body[n-4:])
	if crc32.ChecksumIEEE(body[:n-4]) != want {
		return 0, nil, ErrBadChecksum
	}
	return body[0], payload, nil
}

// encodeHello serializes a Hello payload.
func encodeHello(h Hello) ([]byte, error) {
	if len(h.Name) > maxName {
		return nil, errors.New("netwide: agent name too long")
	}
	buf := make([]byte, 0, 1+len(h.Name)+8+4)
	buf = append(buf, byte(len(h.Name)))
	buf = append(buf, h.Name...)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(h.Tau))
	buf = binary.BigEndian.AppendUint32(buf, h.Batch)
	return buf, nil
}

// decodeHello parses a Hello payload.
func decodeHello(p []byte) (Hello, error) {
	if len(p) < 1 {
		return Hello{}, errors.New("netwide: empty hello")
	}
	n := int(p[0])
	if len(p) != 1+n+12 {
		return Hello{}, fmt.Errorf("netwide: hello length %d inconsistent", len(p))
	}
	h := Hello{Name: string(p[1 : 1+n])}
	h.Tau = math.Float64frombits(binary.BigEndian.Uint64(p[1+n : 9+n]))
	h.Batch = binary.BigEndian.Uint32(p[9+n:])
	if h.Tau <= 0 || h.Tau > 1 || math.IsNaN(h.Tau) {
		return Hello{}, fmt.Errorf("netwide: hello tau %v invalid", h.Tau)
	}
	if h.Batch == 0 {
		return Hello{}, errors.New("netwide: hello batch must be positive")
	}
	return h, nil
}

// encodeBatch serializes a Batch payload.
func encodeBatch(b Batch) ([]byte, error) {
	if len(b.Samples) > maxSamplesPerMsg {
		return nil, errors.New("netwide: too many samples in one report")
	}
	buf := make([]byte, 0, 8+4+8*len(b.Samples))
	buf = binary.BigEndian.AppendUint64(buf, b.Covered)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b.Samples)))
	for _, s := range b.Samples {
		buf = binary.BigEndian.AppendUint32(buf, s.Src)
		buf = binary.BigEndian.AppendUint32(buf, s.Dst)
	}
	return buf, nil
}

// decodeBatch parses a Batch payload.
func decodeBatch(p []byte) (Batch, error) {
	if len(p) < 12 {
		return Batch{}, errors.New("netwide: batch too short")
	}
	b := Batch{Covered: binary.BigEndian.Uint64(p[0:8])}
	n := binary.BigEndian.Uint32(p[8:12])
	if n > maxSamplesPerMsg {
		return Batch{}, errors.New("netwide: sample count exceeds limit")
	}
	if len(p) != 12+int(n)*8 {
		return Batch{}, fmt.Errorf("netwide: batch length %d inconsistent with %d samples", len(p), n)
	}
	if uint64(n) > b.Covered {
		return Batch{}, fmt.Errorf("netwide: %d samples exceed %d covered packets", n, b.Covered)
	}
	b.Samples = make([]hierarchy.Packet, n)
	for i := range b.Samples {
		off := 12 + i*8
		b.Samples[i] = hierarchy.Packet{
			Src: binary.BigEndian.Uint32(p[off : off+4]),
			Dst: binary.BigEndian.Uint32(p[off+4 : off+8]),
		}
	}
	return b, nil
}

// encodeVerdicts serializes a verdict list.
func encodeVerdicts(vs []Verdict) ([]byte, error) {
	if len(vs) > maxVerdictsPerMsg {
		return nil, errors.New("netwide: too many verdicts in one message")
	}
	buf := make([]byte, 0, 4+6*len(vs))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(vs)))
	for _, v := range vs {
		buf = binary.BigEndian.AppendUint32(buf, v.Subnet)
		buf = append(buf, v.PrefixBytes, byte(v.Act))
	}
	return buf, nil
}

// decodeVerdicts parses a verdict list.
func decodeVerdicts(p []byte) ([]Verdict, error) {
	if len(p) < 4 {
		return nil, errors.New("netwide: verdict frame too short")
	}
	n := binary.BigEndian.Uint32(p[0:4])
	if n > maxVerdictsPerMsg {
		return nil, errors.New("netwide: verdict count exceeds limit")
	}
	if len(p) != 4+int(n)*6 {
		return nil, fmt.Errorf("netwide: verdict length %d inconsistent with %d entries", len(p), n)
	}
	out := make([]Verdict, n)
	for i := range out {
		off := 4 + i*6
		out[i] = Verdict{
			Subnet:      binary.BigEndian.Uint32(p[off : off+4]),
			PrefixBytes: p[off+4],
			Act:         Action(p[off+5]),
		}
		if out[i].PrefixBytes > hierarchy.AddrBytes {
			return nil, fmt.Errorf("netwide: verdict prefix length %d invalid", out[i].PrefixBytes)
		}
		if out[i].Act > ActionTarpit {
			return nil, fmt.Errorf("netwide: unknown action %d", out[i].Act)
		}
	}
	return out, nil
}

// encodePing serializes a MsgPing/MsgPong payload: the u64 sequence
// number, nothing else.
func encodePing(seq uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seq)
	return buf[:]
}

// decodePing parses a MsgPing/MsgPong payload. Strict: exactly eight
// bytes, like every other fixed-layout payload in the protocol.
func decodePing(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("netwide: ping payload length %d, want 8", len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}

// SnapshotReport is one decoded MsgSnapshot payload.
type SnapshotReport struct {
	// Covered is the cumulative number of packets the agent has
	// observed — a running total, not a per-report increment, so a
	// report lost in flight costs the coverage ledger nothing once a
	// later one lands (the state itself is cumulative too). The merged
	// output derives window positions from the snapshot itself.
	Covered uint64
	// Snap is the agent's decoded sketch state.
	Snap *core.HHHSnapshot
}

// encodeSnapshotReport serializes a MsgSnapshot payload into buf
// (reused when large enough): the covered count followed by the
// snapshot's self-contained codec record.
func encodeSnapshotReport(covered uint64, snap *core.HHHSnapshot, buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint64(buf[:0], covered)
	buf, err := snap.AppendTo(buf)
	if err != nil {
		return nil, err
	}
	if len(buf)+5 > MaxFrame {
		return nil, fmt.Errorf("%w: %d-byte snapshot (size the local sketch to fit)",
			ErrFrameTooLarge, len(buf))
	}
	return buf, nil
}

// decodeSnapshotReport parses a MsgSnapshot payload. The embedded
// record goes through the strict internal/codec decoder, so malformed
// or version-skewed snapshots are rejected without panicking and
// without unbounded allocation.
func decodeSnapshotReport(p []byte) (SnapshotReport, error) {
	if len(p) < 8+codec.HeaderSize {
		return SnapshotReport{}, errors.New("netwide: snapshot report too short")
	}
	covered := binary.BigEndian.Uint64(p[:8])
	snap, err := core.DecodeHHHSnapshot(p[8:])
	if err != nil {
		return SnapshotReport{}, fmt.Errorf("netwide: snapshot record: %w", err)
	}
	if covered == 0 && snap.Updates() > 0 {
		return SnapshotReport{}, errors.New("netwide: non-empty snapshot covering zero packets")
	}
	return SnapshotReport{Covered: covered, Snap: snap}, nil
}

// DeltaReport is one decoded MsgDelta payload. The chain record is
// left encoded: applying it to the per-agent delta.State — which
// validates header, digest, epoch and every entry strictly — is the
// decode.
type DeltaReport struct {
	// Covered is the cumulative number of packets the agent has
	// observed (same running-total semantics as SnapshotReport).
	Covered uint64
	// Record is the KindHHHDelta chain record (a subslice of the frame
	// payload; consumed before the next frame is read).
	Record []byte
}

// encodeDeltaReport serializes a MsgDelta payload into buf (reused
// when large enough): the covered count followed by the chain record.
func encodeDeltaReport(covered uint64, record, buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint64(buf[:0], covered)
	buf = append(buf, record...)
	if len(buf)+5 > MaxFrame {
		return nil, fmt.Errorf("%w: %d-byte chain record (size the local sketch to fit)",
			ErrFrameTooLarge, len(buf))
	}
	return buf, nil
}

// decodeDeltaReport parses a MsgDelta payload's framing. The embedded
// chain record is validated by delta.State.Apply.
func decodeDeltaReport(p []byte) (DeltaReport, error) {
	if len(p) < 8+codec.HeaderSize {
		return DeltaReport{}, errors.New("netwide: delta report too short")
	}
	return DeltaReport{Covered: binary.BigEndian.Uint64(p[:8]), Record: p[8:]}, nil
}

// encodeTracedReport serializes a MsgTraced payload into buf (reused
// when large enough): the inner message type, the trace context, then
// the inner payload verbatim.
func encodeTracedReport(inner byte, tc codec.TraceContext, payload, buf []byte) ([]byte, error) {
	switch inner {
	case MsgBatch, MsgSnapshot, MsgDelta:
	default:
		return nil, fmt.Errorf("netwide: message type %d cannot be traced", inner)
	}
	buf = append(buf[:0], inner)
	buf = codec.AppendTraceContext(buf, tc)
	buf = append(buf, payload...)
	if len(buf)+5 > MaxFrame {
		return nil, fmt.Errorf("%w: %d-byte traced report", ErrFrameTooLarge, len(buf))
	}
	return buf, nil
}

// decodeTracedReport parses a MsgTraced payload, returning the inner
// message type, the trace context and the inner payload (a subslice
// of p). Strict: only report types may be traced, and the context
// must be well-formed; the inner payload is validated by the decoder
// for its own type.
func decodeTracedReport(p []byte) (byte, codec.TraceContext, []byte, error) {
	if len(p) < 1 {
		return 0, codec.TraceContext{}, nil, errors.New("netwide: empty traced report")
	}
	inner := p[0]
	switch inner {
	case MsgBatch, MsgSnapshot, MsgDelta:
	default:
		return 0, codec.TraceContext{}, nil, fmt.Errorf("netwide: traced inner type %d invalid", inner)
	}
	tc, rest, err := codec.DecodeTraceContext(p[1:])
	if err != nil {
		return 0, codec.TraceContext{}, nil, fmt.Errorf("netwide: traced report: %w", err)
	}
	if len(tc.AgentID) > maxName {
		return 0, codec.TraceContext{}, nil, fmt.Errorf("netwide: traced agent id %d bytes exceeds limit", len(tc.AgentID))
	}
	return inner, tc, rest, nil
}

// Params are the deployment constants shared by agents and controller,
// mirroring the analysis model (Section 5.2): the sampling rate is
// derived from the bandwidth budget exactly as τ = B·b/(O + E·b).
type Params struct {
	// Budget is B, bytes of control traffic allowed per ingress packet.
	Budget float64
	// OverheadBytes is O (default 64).
	OverheadBytes float64
	// SampleBytes is E (default 4; 8 for 2D hierarchies).
	SampleBytes float64
	// BatchSize is b, samples per report (1 = the Sample method).
	BatchSize int
	// Window is W, the network-wide window in packets.
	Window int
}

// Normalize fills defaults and validates.
func (p *Params) Normalize(dims int) error {
	if p.Budget <= 0 {
		return errors.New("netwide: budget must be positive")
	}
	if p.OverheadBytes == 0 {
		p.OverheadBytes = 64
	}
	if p.SampleBytes == 0 {
		if dims == 2 {
			p.SampleBytes = 8
		} else {
			p.SampleBytes = 4
		}
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 1
	}
	if p.Window <= 0 {
		return errors.New("netwide: window must be positive")
	}
	return nil
}

// Tau returns the budget-implied sampling probability.
func (p Params) Tau() float64 {
	tau := p.Budget * float64(p.BatchSize) / (p.OverheadBytes + p.SampleBytes*float64(p.BatchSize))
	if tau > 1 {
		return 1
	}
	return tau
}
