// Fuzz targets for the wire-protocol decoders: adversarial inputs
// must never panic, and every allocation a decoder makes must be
// bounded by the input's own size (length fields are validated
// against the bytes actually present before anything is allocated).

package netwide

import (
	"testing"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/delta"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

func FuzzDecodeHello(f *testing.F) {
	if p, err := encodeHello(Hello{Name: "lb-7", Tau: 0.0625, Batch: 16}); err == nil {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{255})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHello(data)
		if err != nil {
			return
		}
		// Accepted hellos satisfy the documented invariants.
		if len(h.Name) > maxName {
			t.Fatalf("accepted %d-byte name", len(h.Name))
		}
		if !(h.Tau > 0 && h.Tau <= 1) {
			t.Fatalf("accepted tau %v", h.Tau)
		}
		if h.Batch == 0 {
			t.Fatal("accepted zero batch")
		}
		// Round trip is stable.
		p, err := encodeHello(h)
		if err != nil {
			t.Fatalf("re-encode of accepted hello failed: %v", err)
		}
		h2, err := decodeHello(p)
		if err != nil || h2 != h {
			t.Fatalf("round trip changed hello: %+v vs %+v (%v)", h2, h, err)
		}
	})
}

func FuzzDecodeBatch(f *testing.F) {
	if p, err := encodeBatch(Batch{Covered: 100, Samples: []hierarchy.Packet{{Src: 1, Dst: 2}}}); err == nil {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeBatch(data)
		if err != nil {
			return
		}
		// The sample slice is the only allocation and must be fully
		// backed by input bytes: n samples require exactly 12+8n bytes.
		if len(b.Samples)*8+12 != len(data) {
			t.Fatalf("accepted %d samples from %d bytes", len(b.Samples), len(data))
		}
		if uint64(len(b.Samples)) > b.Covered {
			t.Fatalf("accepted %d samples covering %d packets", len(b.Samples), b.Covered)
		}
	})
}

func FuzzDecodeVerdicts(f *testing.F) {
	if p, err := encodeVerdicts([]Verdict{{Subnet: 0x0a000000, PrefixBytes: 1, Act: ActionDeny}}); err == nil {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, err := decodeVerdicts(data)
		if err != nil {
			return
		}
		if len(vs)*6+4 != len(data) {
			t.Fatalf("accepted %d verdicts from %d bytes", len(vs), len(data))
		}
		for _, v := range vs {
			if v.PrefixBytes > hierarchy.AddrBytes || v.Act > ActionTarpit {
				t.Fatalf("accepted invalid verdict %+v", v)
			}
		}
	})
}

func FuzzDecodeSnapshotReport(f *testing.F) {
	// One valid frame from a real local sketch seeds the corpus; the
	// embedded record exercises the full internal/codec decoder.
	hh := core.MustNewHHH(core.HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 1 << 8, Counters: 16 * 5, Seed: 5})
	src := rng.New(6)
	for i := 0; i < 1<<10; i++ {
		hh.Update(hierarchy.Packet{Src: uint32(src.Intn(64))})
	}
	var snap core.HHHSnapshot
	hh.SnapshotInto(&snap)
	frame, err := encodeSnapshotReport(1024, &snap, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeSnapshotReport(data)
		if err != nil {
			return
		}
		if rep.Snap == nil {
			t.Fatal("accepted report with nil snapshot")
		}
		// Accepted snapshots answer queries without panicking.
		_ = rep.Snap.Query(hierarchy.Prefix{Src: 1, SrcLen: 4})
		_ = rep.Snap.OutputTo(0.1, nil)
	})
}

func FuzzDecodeDeltaReport(f *testing.F) {
	// A real chain base and delta seed the corpus; the framing decoder
	// is thin, the applied-state pipeline behind it is what must never
	// panic on whatever the framing admits.
	hh := core.MustNewHHH(core.HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 1 << 8, Counters: 16 * 5, Seed: 7})
	tr, err := delta.NewTracker(hh, delta.TrackerConfig{Chain: 3})
	if err != nil {
		f.Fatal(err)
	}
	src := rng.New(8)
	step := func() []byte {
		for i := 0; i < 1<<9; i++ {
			hh.Update(hierarchy.Packet{Src: uint32(src.Intn(64))})
		}
		record, _, err := tr.Append(nil)
		if err != nil {
			f.Fatal(err)
		}
		frame, err := encodeDeltaReport(1<<9, record, nil)
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}
	f.Add(step())
	f.Add(step())
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeDeltaReport(data)
		if err != nil {
			return
		}
		st := delta.NewState()
		if st.Apply(rep.Record) == nil && st.Based() {
			if snap, err := st.Snapshot(); err == nil {
				_ = snap.Query(hierarchy.Prefix{Src: 1, SrcLen: 4})
				_ = snap.OutputTo(0.1, nil)
			}
		}
	})
}

func FuzzDecodePing(f *testing.F) {
	f.Add(encodePing(0))
	f.Add(encodePing(^uint64(0)))
	f.Add([]byte{})
	f.Add(make([]byte, 7))
	f.Add(make([]byte, 9))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, err := decodePing(data)
		if err != nil {
			return
		}
		// The payload is a strict fixed-width integer: anything
		// accepted must round-trip bit-for-bit.
		if len(data) != 8 {
			t.Fatalf("accepted %d-byte ping", len(data))
		}
		rt := encodePing(seq)
		for i := range rt {
			if rt[i] != data[i] {
				t.Fatalf("round trip changed ping: % x vs % x", rt, data)
			}
		}
	})
}

// FuzzDecodeTracedReport covers the MsgTraced envelope a v2 peer
// wraps around report payloads after probe negotiation. A v1 peer
// never sees one (it would drop the unknown frame type), so the
// decoder's job is purely defensive: reject junk without panicking,
// and accept only envelopes whose inner type is a report and whose
// trace context round-trips exactly.
func FuzzDecodeTracedReport(f *testing.F) {
	inner, err := encodeBatch(Batch{Covered: 64, Samples: []hierarchy.Packet{{Src: 1, Dst: 2}}})
	if err != nil {
		f.Fatal(err)
	}
	tc := codec.TraceContext{AgentID: "edge-1", Seq: 7, CaptureNanos: 1 << 40}
	if wire, err := encodeTracedReport(MsgBatch, tc, inner, nil); err == nil {
		f.Add(wire)
	}
	if wire, err := encodeTracedReport(MsgSnapshot, codec.TraceContext{AgentID: "x"}, nil, nil); err == nil {
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{MsgHello, 0})
	f.Add([]byte{MsgBatch})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, got, payload, err := decodeTracedReport(data)
		if err != nil {
			return
		}
		switch typ {
		case MsgBatch, MsgSnapshot, MsgDelta:
		default:
			t.Fatalf("accepted untraceable inner type %d", typ)
		}
		if got.AgentID == "" || len(got.AgentID) > maxName {
			t.Fatalf("accepted agent id %q", got.AgentID)
		}
		// The accepted envelope re-encodes to the identical wire form.
		rt, err := encodeTracedReport(typ, got, payload, nil)
		if err != nil {
			t.Fatalf("re-encode of accepted traced report failed: %v", err)
		}
		if string(rt) != string(data) {
			t.Fatalf("round trip changed envelope: % x vs % x", rt, data)
		}
	})
}
