// Tests for the fleet fault-tolerance plane: supervised reconnect,
// retry budgets, heartbeats and degraded mode, controller liveness
// deadlines, stale-agent quarantine and clock-injected shutdown.

package netwide

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// startControllerCfg is startController with a caller-shaped config
// (liveness knobs vary per test).
func startControllerCfg(t *testing.T, cfg ControllerConfig) (*Controller, string) {
	t.Helper()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(ln)
	t.Cleanup(func() { c.Close() })
	return c, ln.Addr().String()
}

// dropConn kills the agent's current connection out from under it,
// simulating a transport failure.
func dropConn(t *testing.T, a *Agent) {
	t.Helper()
	a.stateMu.Lock()
	g := a.cur
	a.stateMu.Unlock()
	if g == nil {
		t.Fatal("agent has no live connection to drop")
	}
	g.conn.Close()
}

func TestPingCodec(t *testing.T) {
	p := encodePing(0xdeadbeefcafe)
	seq, err := decodePing(p)
	if err != nil || seq != 0xdeadbeefcafe {
		t.Fatalf("round trip: seq %x err %v", seq, err)
	}
	for _, bad := range [][]byte{nil, {}, p[:7], append(append([]byte{}, p...), 0)} {
		if _, err := decodePing(bad); err == nil {
			t.Fatalf("decodePing accepted %d bytes", len(bad))
		}
	}
}

// TestFaultHeartbeatRoundTrip: pings flow agent→controller, pongs flow
// back, and both sides count them.
func TestFaultHeartbeatRoundTrip(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 10}
	ctrl, addr := startController(t, params, 256)
	a, err := DialAgent(addr, AgentConfig{
		Name: "hb", Params: params, HeartbeatEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	waitFor(t, "heartbeats to round-trip", func() bool {
		return a.Stats().Pongs >= 3 && ctrl.Pings() >= 3
	})
	if a.Err() != nil {
		t.Fatalf("agent error after heartbeats: %v", a.Err())
	}
}

// TestFaultReconnectHealsDeltaChain is the agent-resilience core: a
// delta agent whose transport dies mid-stream redials under
// supervision, re-bases its chain, and the controller's coverage
// ledger converges to exactly the packets observed — the outage costs
// nothing that a later report doesn't repay.
func TestFaultReconnectHealsDeltaChain(t *testing.T) {
	const window = 1 << 12
	params := Params{Budget: 0.5, BatchSize: 16, Window: window}
	ctrl, addr := startControllerCfg(t, ControllerConfig{
		Hier: hierarchy.OneD{}, Params: params, Counters: 2048, Seed: 42,
	})
	a, err := DialAgent(addr, AgentConfig{
		Name: "resilient", Params: params, Seed: 7,
		Report: ReportDelta, Hier: hierarchy.OneD{},
		SnapshotWindow: window, SnapshotCounters: 256, SnapshotEvery: 128,
		DeltaFloor:     -1,
		Reconnect:      true,
		BackoffBase:    5 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	waitFor(t, "agent to join", func() bool { return ctrl.Agents() == 1 })

	src := rng.New(9)
	observe := func(n int) {
		for i := 0; i < n; i++ {
			a.Observe(hierarchy.Packet{Src: uint32(src.Intn(64))})
		}
	}
	const before, during, after = 1024, 512, 1024
	observe(before)
	waitFor(t, "pre-outage deltas", func() bool { return ctrl.Deltas() > 0 })

	dropConn(t, a)
	observe(during) // reports queue (and maybe drop) while down
	waitFor(t, "reconnect", func() bool { return a.Stats().Reconnects >= 1 })
	observe(after)
	a.Flush()

	// Convergence: the cumulative coverage ledger lands on exactly the
	// observed packet count, whatever was lost in between.
	const total = before + during + after
	waitFor(t, "coverage ledger to converge", func() bool {
		for _, st := range ctrl.AgentStats() {
			if st.Name == "resilient" && st.Covered == total {
				return true
			}
		}
		return false
	})
	if err := a.Err(); err != nil {
		t.Fatalf("agent error after heal: %v", err)
	}
	st := a.Stats()
	if st.Generation < 2 || st.Disconnects < 1 {
		t.Fatalf("reconnect not recorded: %+v", st)
	}
	// The merged output serves the healed state.
	if out := ctrl.OutputMerged(0.05); len(out) == 0 {
		t.Fatal("merged output empty after heal")
	}
}

// TestFaultReconnectRetryBudget: an agent whose controller never comes
// back gives up after its budget and surfaces a terminal error.
func TestFaultReconnectRetryBudget(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 10}
	_, addr := startController(t, params, 256)
	fail := &atomic.Bool{}
	a, err := DialAgent(addr, AgentConfig{
		Name: "budgeted", Params: params,
		Reconnect:   true,
		RetryBudget: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			if fail.Load() {
				return nil, errors.New("injected dial failure")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	fail.Store(true)
	dropConn(t, a)
	waitFor(t, "budget exhaustion", func() bool { return a.Err() != nil })
	// Terminal: the verdicts channel closes, like any final Close.
	select {
	case _, ok := <-a.Verdicts():
		if ok {
			t.Fatal("got a verdict from an exhausted agent")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("verdicts channel never closed after budget exhaustion")
	}
}

// TestFaultDegradedModeFlipsAndRecovers: losing the controller past
// DegradedAfter flips Degraded() on; contact flips it back off, with
// both transitions counted.
func TestFaultDegradedModeFlipsAndRecovers(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 10}
	_, addr := startController(t, params, 256)
	allow := &atomic.Bool{}
	allow.Store(true)
	a, err := DialAgent(addr, AgentConfig{
		Name: "failover", Params: params,
		Reconnect:      true,
		BackoffBase:    5 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		HeartbeatEvery: 10 * time.Millisecond,
		DegradedAfter:  80 * time.Millisecond,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			if !allow.Load() {
				return nil, errors.New("partitioned")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	waitFor(t, "healthy contact", func() bool { return a.Stats().Pongs >= 1 })
	if a.Degraded() {
		t.Fatal("degraded while healthy")
	}

	allow.Store(false)
	dropConn(t, a)
	waitFor(t, "degraded mode to engage", func() bool { return a.Degraded() })

	allow.Store(true)
	waitFor(t, "recovery", func() bool { return !a.Degraded() && a.Stats().Reconnects >= 1 })
	st := a.Stats()
	if st.DegradedEnters < 1 || st.DegradedExits < 1 {
		t.Fatalf("transitions not recorded: %+v", st)
	}
	if a.Err() != nil {
		t.Fatalf("transient outage surfaced as error: %v", a.Err())
	}
}

// TestFaultCloseDuringReconnect hammers Close against the redial loop
// and concurrent Observers (-race): no deadlock, verdicts closes.
func TestFaultCloseDuringReconnect(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 10}
	ctrl, addr := startController(t, params, 256)
	a, err := DialAgent(addr, AgentConfig{
		Name: "racer", Params: params,
		Reconnect:   true,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the controller so the redial loop spins on failures. Close
	// tears down the agent's live conn (registered pre-handshake), so
	// the disconnect needs no help from this side.
	ctrl.Close()
	waitFor(t, "disconnect", func() bool { return !a.Stats().Connected })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			src := rng.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				a.Observe(hierarchy.Packet{Src: src.Uint32()})
				a.Flush()
				a.Stats()
				a.Degraded()
			}
		}(uint64(i + 1))
	}
	time.Sleep(20 * time.Millisecond) // let the redial loop cycle a few times
	if err := a.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		t.Logf("close: %v", err) // closing a dead conn may error; must not hang
	}
	close(stop)
	wg.Wait()
	select {
	case _, ok := <-a.Verdicts():
		if ok {
			t.Fatal("verdict after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("verdicts channel never closed")
	}
	// Idempotent.
	a.Close()
}

// TestFaultHandshakeDeadlineFreesHandler: a connection that never says
// Hello is cut loose by the handshake read deadline.
func TestFaultHandshakeDeadlineFreesHandler(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 10}
	_, addr := startControllerCfg(t, ControllerConfig{
		Hier: hierarchy.OneD{}, Params: params, Counters: 256,
		HandshakeTimeout: 50 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The controller must close us, observable as EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("mute connection was never closed")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("handshake deadline took %v", elapsed)
	}
}

// TestFaultNewAgentRejectsReconnect pins the constructor contract.
func TestFaultNewAgentRejectsReconnect(t *testing.T) {
	c1, _ := net.Pipe()
	defer c1.Close()
	if _, err := NewAgent(c1, AgentConfig{
		Name: "x", Params: Params{Budget: 4, BatchSize: 8, Window: 1 << 10},
		Reconnect: true,
	}); err == nil {
		t.Fatal("NewAgent accepted Reconnect")
	}
}

// TestFaultStaleAgentQuarantine: a dead agent's frozen window drops
// out of OutputMerged after the TTL and re-enters on its next report.
func TestFaultStaleAgentQuarantine(t *testing.T) {
	const window = 1 << 10
	params := Params{Budget: 0.5, BatchSize: 16, Window: window}
	ctrl, addr := startControllerCfg(t, ControllerConfig{
		Hier: hierarchy.OneD{}, Params: params, Counters: 1024, Seed: 42,
		StaleTTL: 120 * time.Millisecond,
	})
	a, err := DialAgent(addr, AgentConfig{
		Name: "mayfly", Params: params, Seed: 3,
		Report: ReportSnapshot, Hier: hierarchy.OneD{},
		SnapshotWindow: window, SnapshotCounters: 256, SnapshotEvery: 64,
		HeartbeatEvery: 10 * time.Millisecond, // liveness ≠ freshness: pings must not defeat the TTL
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	src := rng.New(4)
	ship := func() {
		for i := 0; i < 256; i++ {
			a.Observe(hierarchy.Packet{Src: uint32(src.Intn(8))})
		}
		a.Flush()
	}
	ship()
	waitFor(t, "first snapshot", func() bool { return ctrl.Snapshots() > 0 })
	if out := ctrl.OutputMerged(0.05); len(out) == 0 {
		t.Fatal("merged output empty while fresh")
	}
	// Go silent (but keep heartbeating): the window must quarantine.
	waitFor(t, "quarantine", func() bool {
		return ctrl.StaleAgents() == 1 && len(ctrl.OutputMerged(0.05)) == 0
	})
	stats := ctrl.AgentStats()
	if len(stats) != 1 || !stats[0].Stale {
		t.Fatalf("AgentStats not stale: %+v", stats)
	}
	// A fresh report re-admits the agent.
	ship()
	waitFor(t, "re-admission", func() bool {
		return ctrl.StaleAgents() == 0 && len(ctrl.OutputMerged(0.05)) > 0
	})
}

// autoClock is a deterministic Clock whose After advances time by the
// requested amount and fires immediately: waits consume virtual time
// only, so deadline-expiry paths run in microseconds.
type autoClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *autoClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *autoClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- now
	return ch
}

// TestShutdownDrainDeadlineExpiry pins two contracts at once: the
// drain loop gives up at the deadline instead of waiting for a writer
// that cannot make progress, and it measures that deadline on the
// injected clock (virtual time here — wall-clock elapsed stays tiny).
func TestShutdownDrainDeadlineExpiry(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	// Swallow exactly the Hello, then stall: the writer's first report
	// write blocks forever on the synchronous pipe.
	hello := make(chan struct{})
	go func() {
		buf := make([]byte, 64)
		n := 0
		for n < 9 { // frame header + minimal payload reaches 9+ bytes
			m, err := server.Read(buf)
			if err != nil {
				return
			}
			n += m
		}
		close(hello)
	}()
	clk := &autoClock{now: time.Unix(1000, 0)}
	a, err := NewAgent(client, AgentConfig{
		Name: "stuck", Params: Params{Budget: 4, BatchSize: 8, Window: 1 << 10},
		Report: ReportSnapshot, Hier: hierarchy.OneD{},
		SnapshotWindow: 1 << 10, SnapshotCounters: 64, SnapshotEvery: 1,
		Clock:          clk,
		HeartbeatEvery: -1, // the instant-fire clock would spin the ticker hot
	})
	if err != nil {
		t.Fatal(err)
	}
	<-hello
	// Queue more than the writer can ship into the stalled pipe.
	for i := 0; i < 8; i++ {
		a.Observe(hierarchy.Packet{Src: 1})
	}
	start := time.Now()
	if err := a.Shutdown(500 * time.Millisecond); err != nil && !errors.Is(err, net.ErrClosed) {
		t.Logf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("virtual-time shutdown took %v of wall clock", elapsed)
	}
	if clk.Now().Sub(time.Unix(1000, 0)) < 500*time.Millisecond {
		t.Fatalf("drain gave up before the virtual deadline: clock advanced %v",
			clk.Now().Sub(time.Unix(1000, 0)))
	}
	if a.Sent() >= a.Stats().Queued {
		t.Fatal("test premise broken: queue drained through a stalled pipe")
	}
}

// TestShutdownDrainsQueueHealthy: on a healthy transport Shutdown
// ships everything queued before closing.
func TestShutdownDrainsQueueHealthy(t *testing.T) {
	params := Params{Budget: 0.5, BatchSize: 16, Window: 1 << 10}
	ctrl, addr := startController(t, params, 1024)
	a, err := DialAgent(addr, AgentConfig{
		Name: "graceful", Params: params, Seed: 5,
		Report: ReportSnapshot, Hier: hierarchy.OneD{},
		SnapshotWindow: 1 << 10, SnapshotCounters: 256, SnapshotEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	for i := 0; i < 1000; i++ {
		a.Observe(hierarchy.Packet{Src: src.Uint32()})
	}
	if err := a.Shutdown(5 * time.Second); err != nil && !errors.Is(err, net.ErrClosed) {
		t.Logf("shutdown: %v", err)
	}
	if sent, queued := a.Sent(), a.Stats().Queued; sent != queued {
		t.Fatalf("shutdown left %d of %d reports unshipped", queued-sent, queued)
	}
	waitFor(t, "controller to absorb the tail", func() bool {
		return ctrl.Snapshots() >= a.Sent()
	})
}
