// Tests for the delta (chain-replication) report mode: the
// differential acceptance contract against snapshot shipping, the
// base/delta/resync handshake, and the controller warm-restart chain.

package netwide

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"

	"memento/internal/hhhset"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// deltaFleet starts one controller and a fleet of agents in the given
// mode over real TCP.
func deltaFleet(t *testing.T, hier hierarchy.Hierarchy, params Params, counters, agents int, mode ReportMode, floor int) (*Controller, []*Agent) {
	t.Helper()
	ctrl, err := NewController(ControllerConfig{
		Hier: hier, Params: params, Counters: counters, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Serve(ln)
	t.Cleanup(func() { ctrl.Close() })
	addr := ln.Addr().String()
	var as []*Agent
	for i := 0; i < agents; i++ {
		a, err := DialAgent(addr, AgentConfig{
			Name:             fmt.Sprintf("agent-%d", i),
			Params:           params,
			Seed:             uint64(i + 1),
			Report:           mode,
			Hier:             hier,
			SnapshotWindow:   params.Window / agents,
			SnapshotCounters: 256,
			SnapshotEvery:    params.Window / agents / 2,
			DeltaFloor:       floor,
			QueueLen:         1 << 12,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		as = append(as, a)
	}
	waitFor(t, "agents to join", func() bool { return ctrl.Agents() == agents })
	return ctrl, as
}

// fleetStream returns the deterministic skewed stream both fleets
// consume.
func fleetStream(n int, seed uint64) []hierarchy.Packet {
	src := rng.New(seed)
	out := make([]hierarchy.Packet, n)
	for i := range out {
		if src.Float64() < 0.5 {
			out[i] = hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, byte(1+src.Intn(8)))}
		} else {
			out[i] = hierarchy.Packet{Src: src.Uint32() | 1<<31}
		}
	}
	return out
}

// entriesEqual compares two HHH sets exactly (as sets).
func entriesEqual(t *testing.T, tag string, got, want []hhhset.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries vs %d\n got: %v\nwant: %v", tag, len(got), len(want), got, want)
	}
	m := map[hierarchy.Prefix]hhhset.Entry{}
	for _, e := range got {
		m[e.Prefix] = e
	}
	for _, e := range want {
		ge, ok := m[e.Prefix]
		if !ok || ge.Estimate != e.Estimate || ge.Conditioned != e.Conditioned {
			t.Fatalf("%s: entry %v mismatch: %+v vs %+v", tag, e.Prefix, ge, e)
		}
	}
}

// drainDelta waits until the expected number of chain frames has
// been processed — applied or answered with a resync request. An
// expected count (cadence divides the per-agent stream exactly in
// these tests) makes the condition deterministic; agent Sent()
// counters lag queued frames and would let the wait pass mid-flight.
func drainDelta(t *testing.T, ctrl *Controller, frames uint64) {
	t.Helper()
	waitFor(t, "delta chain to drain", func() bool {
		return ctrl.Deltas()+ctrl.Resyncs() >= frames
	})
}

// drainSnapshots is drainDelta for a snapshot fleet.
func drainSnapshots(t *testing.T, ctrl *Controller, frames uint64) {
	t.Helper()
	waitFor(t, "snapshots to drain", func() bool {
		return ctrl.Snapshots() >= frames
	})
}

// TestDeltaMatchesSnapshotFleet is the subsystem's differential
// acceptance test: a controller following exact (Floor < 0) delta
// chains answers OutputMerged identically — same prefixes, same
// estimates, same conditioned frequencies — to a controller receiving
// a full snapshot at every cadence, including after a forced epoch
// gap and the resync that heals it.
func TestDeltaMatchesSnapshotFleet(t *testing.T) {
	const window = 1 << 13
	const agents = 4
	params := Params{Budget: 0.5, BatchSize: 16, Window: window}
	snapCtrl, snapAgents := deltaFleet(t, hierarchy.OneD{}, params, 2048, agents, ReportSnapshot, 0)
	chainCtrl, chainAgents := deltaFleet(t, hierarchy.OneD{}, params, 2048, agents, ReportDelta, -1)

	phase := func(packets []hierarchy.Packet) {
		for i, p := range packets {
			snapAgents[i%agents].Observe(p)
			chainAgents[i%agents].Observe(p)
		}
	}
	total := 0
	drive := func(n int, seed uint64) {
		phase(fleetStream(n, seed))
		total += n
	}
	drive(1<<15, 9)

	// Force a chain break on one agent: advance its tracker and
	// discard the record, exactly what a report dropped under
	// backpressure does. The controller must detect the gap on the
	// next shipped record, request a resync, and the agent's next
	// capture after receiving it re-bases the chain.
	broken := chainAgents[1]
	broken.mu.Lock()
	if _, _, err := broken.tracker.Append(nil); err != nil {
		broken.mu.Unlock()
		t.Fatal(err)
	}
	broken.mu.Unlock()

	drive(1<<14, 10)
	// TCP delivers the broken agent's frames in order, so once the
	// controller has requested a resync, every pre-break record has
	// been applied — the agent's applied-record count is frozen until
	// the healing base lands.
	waitFor(t, "controller to request a resync", func() bool { return chainCtrl.Resyncs() >= 1 })
	deltasOf := func(name string) uint64 {
		for _, st := range chainCtrl.AgentStats() {
			if st.Name == name {
				return st.Deltas
			}
		}
		return 0
	}
	frozen := deltasOf(broken.Name())
	// Keep both fleets moving (identical streams) until the re-base
	// applies; how many cadences that takes depends on when the
	// MsgResync round trip lands relative to the capture clock.
	for try := uint64(0); deltasOf(broken.Name()) <= frozen; try++ {
		if try > 200 {
			t.Fatal("chain never healed after resync")
		}
		drive(1<<12, 100+try)
	}
	// A full post-heal phase so every agent ends on fresh state.
	drive(1<<15, 11)
	for _, a := range append(append([]*Agent{}, snapAgents...), chainAgents...) {
		a.Flush()
		if err := a.Err(); err != nil {
			t.Fatalf("agent %s: %v", a.Name(), err)
		}
	}
	// Every agent saw the same packet count; the cadence divides it
	// exactly, so each fleet ships a known frame total.
	frames := uint64(total / agents / (window / agents / 2) * agents)
	drainSnapshots(t, snapCtrl, frames)
	drainDelta(t, chainCtrl, frames)
	if chainCtrl.Resyncs() == 0 {
		t.Fatal("forced gap produced no resync")
	}

	for _, theta := range []float64{0.02, 0.05, 0.15} {
		entriesEqual(t, fmt.Sprintf("theta %g", theta),
			chainCtrl.OutputMerged(theta), snapCtrl.OutputMerged(theta))
	}
	if chainCtrl.MergedWindow() != snapCtrl.MergedWindow() {
		t.Fatalf("merged windows %d vs %d", chainCtrl.MergedWindow(), snapCtrl.MergedWindow())
	}

	// The chain fleet must also be the cheaper one, even at exact
	// fidelity on this stream, and the ledger stays consistent.
	if chainCtrl.BytesIn() >= snapCtrl.BytesIn() {
		t.Fatalf("delta fleet cost %d bytes vs snapshot %d", chainCtrl.BytesIn(), snapCtrl.BytesIn())
	}
	var ledger uint64
	for _, st := range chainCtrl.AgentStats() {
		if st.Deltas == 0 || st.Snapshots != 0 || st.Reports != 0 {
			t.Fatalf("delta agent ledger wrong: %+v", st)
		}
		ledger += st.Bytes
	}
	if ledger != chainCtrl.BytesIn() {
		t.Fatalf("per-agent bytes %d don't sum to BytesIn %d", ledger, chainCtrl.BytesIn())
	}
}

// TestDeltaFloorSavesBytes pins the default-floor operating point:
// same fleet shape, an order-of-magnitude fewer bytes than exact
// replication would need for the churning tail, with the heavy
// prefixes of the merged set unchanged.
func TestDeltaFloorSavesBytes(t *testing.T) {
	const window = 1 << 13
	const agents = 2
	params := Params{Budget: 0.5, BatchSize: 16, Window: window}
	snapCtrl, snapAgents := deltaFleet(t, hierarchy.Flows{}, params, 2048, agents, ReportSnapshot, 0)
	floorCtrl, floorAgents := deltaFleet(t, hierarchy.Flows{}, params, 2048, agents, ReportDelta, 0)

	stream := fleetStream(1<<15, 21)
	for i, p := range stream {
		snapAgents[i%agents].Observe(p)
		floorAgents[i%agents].Observe(p)
	}
	for _, a := range append(append([]*Agent{}, snapAgents...), floorAgents...) {
		a.Flush()
		if err := a.Err(); err != nil {
			t.Fatalf("agent %s: %v", a.Name(), err)
		}
	}
	frames := uint64(len(stream)) / (window / agents / 2)
	drainSnapshots(t, snapCtrl, frames)
	drainDelta(t, floorCtrl, frames)

	if floorCtrl.BytesIn()*2 >= snapCtrl.BytesIn() {
		t.Fatalf("floored delta fleet: %d bytes vs snapshot %d (want <1/2)",
			floorCtrl.BytesIn(), snapCtrl.BytesIn())
	}
	// Compare actionable heavy hitters (the Mitigate rule: estimate
	// itself reaches the threshold), not sampling-margin members whose
	// conditioned frequency rides the compensation term — those are
	// churn-dependent on both sides.
	const theta = 0.05
	threshold := theta * float64(window)
	actionable := func(c *Controller) map[hierarchy.Prefix]bool {
		out := map[hierarchy.Prefix]bool{}
		for _, e := range c.OutputMerged(theta) {
			if e.Estimate >= threshold {
				out[e.Prefix] = true
			}
		}
		return out
	}
	want := actionable(snapCtrl)
	got := actionable(floorCtrl)
	if len(want) == 0 {
		t.Fatal("snapshot merge found no actionable heavy hitters")
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("floored merge lost heavy prefix %v", p)
		}
	}
}

// TestControllerWarmRestartChain drives the controller's own
// replication chain through a simulated process generation: state is
// checkpointed as base+deltas, a fresh controller restores the chain,
// and both answer identically.
func TestControllerWarmRestartChain(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 12}
	mk := func() *Controller {
		c, err := NewController(ControllerConfig{
			Hier: hierarchy.OneD{}, Params: params, Counters: 512, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	ctrl := mk()
	if err := ctrl.EnableDeltaCheckpoints(77); err != nil {
		t.Fatal(err)
	}
	var chainFiles []*bytes.Buffer
	step := func(n int, seed uint64) {
		src := rng.New(seed)
		var b Batch
		b.Covered = uint64(n)
		for i := 0; i < n/8; i++ {
			b.Samples = append(b.Samples, hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, byte(1+src.Intn(8)))})
		}
		ctrl.absorb(b)
		var buf bytes.Buffer
		if _, err := ctrl.WriteChain(&buf, false); err != nil {
			t.Fatal(err)
		}
		chainFiles = append(chainFiles, &buf)
	}
	for i := 0; i < 4; i++ {
		step(2048, uint64(i+1))
	}
	restored := mk()
	var deltas []*bytes.Buffer
	if len(chainFiles) > 1 {
		deltas = chainFiles[1:]
	}
	dr := make([]io.Reader, len(deltas))
	for i, d := range deltas {
		dr[i] = bytes.NewReader(d.Bytes())
	}
	if err := restored.RestoreChain(bytes.NewReader(chainFiles[0].Bytes()), dr...); err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0.05, 0.2} {
		entriesEqual(t, fmt.Sprintf("restart theta %g", theta),
			restored.Output(theta), ctrl.Output(theta))
	}
	// A config-skewed controller refuses the chain.
	skewed, err := NewController(ControllerConfig{
		Hier: hierarchy.OneD{}, Params: params, Counters: 1024, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer skewed.Close()
	if err := skewed.RestoreChain(bytes.NewReader(chainFiles[0].Bytes())); err == nil {
		t.Fatal("config-mismatched chain restored")
	}
}

// TestDecodeDeltaReportFraming pins the MsgDelta framing validation.
func TestDecodeDeltaReportFraming(t *testing.T) {
	for _, bad := range [][]byte{nil, make([]byte, 7), make([]byte, 8+15)} {
		if _, err := decodeDeltaReport(bad); err == nil {
			t.Fatalf("malformed delta report of %d bytes accepted", len(bad))
		}
	}
	ok := make([]byte, 8+16)
	rep, err := decodeDeltaReport(ok)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Record) != 16 {
		t.Fatalf("record length %d", len(rep.Record))
	}
}
