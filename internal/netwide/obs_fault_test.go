// Fault-plane observability test: the AgentStats ledgers on both sides
// of the wire must stay monotonic and tear-free while the transport
// flaps and the stale TTL quarantines and re-admits the agent. Under
// -race this pins the "readable mid-flight" contract of the obs-backed
// counters: concurrent scrapes never observe a counter going backwards
// or a half-written struct.

package netwide

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"memento/internal/faultnet"
	"memento/internal/hierarchy"
	"memento/internal/obs"
	"memento/internal/rng"
)

func TestFaultAgentStatsMonotonicUnderReconnect(t *testing.T) {
	const window = 1 << 10
	params := Params{Budget: 0.5, BatchSize: 16, Window: window}
	reg := obs.NewRegistry()
	tr := obs.NewTrace(256)
	ctrl, err := NewController(ControllerConfig{
		Hier: hierarchy.OneD{}, Params: params, Counters: 1024, Seed: 7,
		HandshakeTimeout: 300 * time.Millisecond,
		ReadTimeout:      500 * time.Millisecond,
		StaleTTL:         80 * time.Millisecond,
		Obs:              reg, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Serve(ln)
	t.Cleanup(func() { ctrl.Close() })

	inj := faultnet.NewInjector(77)
	a, err := DialAgent(ln.Addr().String(), AgentConfig{
		Name: "flapper", Params: params, Seed: 3,
		Report: ReportSnapshot, Hier: hierarchy.OneD{},
		SnapshotWindow: window, SnapshotCounters: 256, SnapshotEvery: 64,
		QueueLen:       1 << 10,
		Reconnect:      true,
		BackoffBase:    5 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond,
		DegradedAfter:  2 * time.Second,
		Obs:            reg, Trace: tr,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			return inj.WrapConn(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })

	// Concurrent readers: every ledger is scraped flat-out for the whole
	// run. A counter observed lower than a previous observation is a torn
	// or regressing read — both forbidden.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // controller-side per-agent ledger
		defer wg.Done()
		prev := map[string]AgentStat{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, st := range ctrl.AgentStats() {
				p := prev[st.Name]
				if st.Reports < p.Reports || st.Snapshots < p.Snapshots ||
					st.Deltas < p.Deltas || st.Resyncs < p.Resyncs ||
					st.Bytes < p.Bytes || st.Covered < p.Covered {
					t.Errorf("controller ledger regressed: %+v -> %+v", p, st)
					return
				}
				prev[st.Name] = st
			}
		}
	}()
	wg.Add(1)
	go func() { // agent-side fault-plane ledger
		defer wg.Done()
		var p AgentStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := a.Stats()
			if st.Generation < p.Generation || st.Reconnects < p.Reconnects ||
				st.Disconnects < p.Disconnects || st.Queued < p.Queued ||
				st.Sent < p.Sent || st.Dropped < p.Dropped ||
				st.SentBytes < p.SentBytes || st.Pings < p.Pings ||
				st.Pongs < p.Pongs || st.DegradedEnters < p.DegradedEnters ||
				st.DegradedExits < p.DegradedExits {
				t.Errorf("agent ledger regressed: %+v -> %+v", p, st)
				return
			}
			p = st
		}
	}()
	wg.Add(1)
	go func() { // registry scraper: races RegisterFunc closures with writers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.WritePrometheus(io.Discard)
			tr.Events(nil)
		}
	}()

	// Eight-key stream: every key holds ~12% of the window, so merged
	// output at theta 0.05 is non-empty exactly when the agent is fresh.
	src := rng.New(5)
	ship := func(n int) {
		for i := 0; i < n; i++ {
			a.Observe(hierarchy.Packet{Src: uint32(src.Intn(8))})
		}
		a.Flush()
	}
	ship(512)
	waitFor(t, "first snapshot", func() bool { return ctrl.Snapshots() > 0 })

	// Flap the transport: resets kill connections mid-frame while the
	// stream keeps flowing, forcing redials under scrape pressure.
	inj.SetFault(faultnet.Fault{Reset: 0.5})
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Reconnects == 0 && time.Now().Before(deadline) {
		ship(128)
		time.Sleep(5 * time.Millisecond)
	}
	inj.Heal()
	if a.Stats().Reconnects == 0 {
		t.Fatal("transport resets produced no reconnect")
	}

	// Go silent past the TTL (heartbeats keep running): the controller
	// must quarantine, then re-admit on the next report — and the trace
	// must record the edge, not the steady state.
	waitFor(t, "quarantine", func() bool {
		return ctrl.StaleAgents() == 1 && len(ctrl.OutputMerged(0.05)) == 0
	})
	// Keep shipping while polling: a single report's freshness only
	// lasts StaleTTL, so a one-shot ship could expire between the
	// snapshot landing and the poll observing it.
	readmitted := false
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ship(128)
		if ctrl.StaleAgents() == 0 && len(ctrl.OutputMerged(0.05)) > 0 {
			readmitted = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !readmitted {
		t.Fatal("quarantined agent was never re-admitted")
	}

	close(stop)
	wg.Wait()

	if got := tr.Count(obs.EvConnect); got < 2 {
		t.Errorf("trace saw %d connects, want >= 2 (dial + reconnect)", got)
	}
	if tr.Count(obs.EvQuarantine) == 0 {
		t.Error("quarantine left no trace event")
	}
	if tr.Count(obs.EvRequalify) == 0 {
		t.Error("re-admission left no requalify event")
	}
	if err := a.Err(); err != nil {
		t.Fatalf("agent ended with error: %v", err)
	}
}
