// Agent: the measurement-point side of the network-wide protocol.
//
// Agents run in one of two report modes. ReportSampled is the paper's
// budget-constrained protocol: each observed packet is sampled with
// probability τ and full batches ship as MsgBatch frames.
// ReportSnapshot is the full-fidelity mode: the agent maintains a
// complete local H-Memento over its ingress and ships the encoded
// sketch state (MsgSnapshot) at a configurable cadence — the paper's
// "send everything" baseline turned into a live operating point, so
// the accuracy-vs-bandwidth trade-off becomes a deployment knob
// rather than a thought experiment. In both modes Observe never
// blocks on the network: reports queue to a bounded channel and drop
// (counted) under backpressure.

package netwide

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"memento/internal/core"
	"memento/internal/delta"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// ReportMode selects how an agent reports to the controller.
type ReportMode uint8

const (
	// ReportSampled ships τ-sampled packets in batches (the paper's
	// Sample/Batch methods): cheap, approximate, budget-bounded.
	ReportSampled ReportMode = iota
	// ReportSnapshot maintains a full local sketch and ships its
	// encoded state every SnapshotEvery packets: every packet
	// contributes to the controller's view at full fidelity, at a
	// bandwidth cost proportional to sketch size over cadence.
	ReportSnapshot
	// ReportDelta maintains the same full local sketch but ships an
	// internal/delta replication chain instead of complete snapshots:
	// one base, then per-cadence records carrying only the counters
	// that changed. Snapshot-level fidelity for heavy state at a
	// fraction of the bytes; a dropped report or controller resync
	// request transparently re-bases the chain.
	ReportDelta
)

// AgentConfig parameterizes a measurement point.
type AgentConfig struct {
	// Name identifies the agent to the controller.
	Name string
	// Params are the shared deployment constants; the agent derives its
	// sampling probability from them.
	Params Params
	// Dims is the hierarchy dimensionality (1 or 2), used only to
	// default the per-sample payload size.
	Dims int
	// Seed fixes the sampling randomness; 0 derives one from the name.
	Seed uint64
	// QueueLen bounds the outbound report queue; when the network
	// cannot drain reports fast enough, new reports are dropped and
	// counted (measurement must never block the data path). Default 64.
	QueueLen int

	// Report selects the reporting mode (default ReportSampled).
	Report ReportMode
	// Hier is the prefix domain of the local sketch in ReportSnapshot
	// mode; defaults to OneD (TwoD when Dims == 2). Use
	// hierarchy.Flows for plain network-wide heavy hitters.
	Hier hierarchy.Hierarchy
	// SnapshotWindow is the local sliding window in ReportSnapshot
	// mode. With m agents splitting the traffic, Params.Window/m makes
	// the merged window match the network-wide one, mirroring the
	// shard layer's window split. Defaults to Params.Window.
	SnapshotWindow int
	// SnapshotCounters sizes the local sketch (default 512·H).
	SnapshotCounters int
	// SnapshotEvery is the report cadence in observed packets
	// (default SnapshotWindow/4). Smaller is fresher and costs more
	// bytes; the encoded snapshot must fit a MaxFrame frame.
	SnapshotEvery int
	// DeltaFloor is ReportDelta's fidelity floor: monitored counters
	// whose guaranteed count stays below it and that never shipped
	// (and are outside the overflow table) stay local. 0 selects the
	// local sketch's block threshold — the natural "cannot matter to
	// heavy hitters yet" unit — and a negative value selects exact
	// replication. See internal/delta.
	DeltaFloor int
}

// Agent samples observed packets and ships batched reports to the
// controller. Observe is safe for concurrent use and never blocks on
// the network.
type Agent struct {
	conn net.Conn
	name string
	tau  float64
	b    int
	mode ReportMode

	mu       sync.Mutex
	src      *rng.Source
	buf      []hierarchy.Packet
	observed uint64
	hh       *core.HHH // ReportSnapshot/ReportDelta: the full-fidelity local sketch
	snap     core.HHHSnapshot
	tracker  *delta.Tracker // ReportDelta: the chain encoder
	every    uint64
	uncov    uint64 // coverage owed from captures that failed to encode
	chainBuf []byte // ReportDelta: recycled record scratch

	sendq    chan outFrame
	verdicts chan []Verdict
	done     chan struct{}
	closed   sync.Once

	dropped   atomic.Uint64
	queued    atomic.Uint64
	sent      atomic.Uint64
	sentBytes atomic.Uint64
	recvErr   atomic.Value // error
	writeErr  atomic.Value // error
}

// outFrame is one queued report: either a batch to encode on the
// writer goroutine, or a pre-encoded payload (snapshots are encoded
// under the observe lock so the sketch state is consistent).
type outFrame struct {
	typ     byte
	batch   Batch
	payload []byte
}

// DialAgent connects to the controller at addr and performs the Hello
// exchange.
func DialAgent(addr string, cfg AgentConfig) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netwide: dialing controller: %w", err)
	}
	a, err := NewAgent(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// NewAgent wraps an established connection (any net.Conn, which keeps
// the protocol testable over net.Pipe).
func NewAgent(conn net.Conn, cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, errors.New("netwide: agent needs a name")
	}
	if err := cfg.Params.Normalize(cfg.Dims); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range cfg.Name {
			seed = seed*131 + uint64(c)
		}
		seed |= 1
	}
	qlen := cfg.QueueLen
	if qlen <= 0 {
		qlen = 64
	}
	a := &Agent{
		conn:     conn,
		name:     cfg.Name,
		tau:      cfg.Params.Tau(),
		b:        cfg.Params.BatchSize,
		mode:     cfg.Report,
		src:      rng.New(seed),
		sendq:    make(chan outFrame, qlen),
		verdicts: make(chan []Verdict, 16),
		done:     make(chan struct{}),
	}
	if cfg.Report == ReportSnapshot || cfg.Report == ReportDelta {
		hier := cfg.Hier
		if hier == nil {
			if cfg.Dims == 2 {
				hier = hierarchy.TwoD{}
			} else {
				hier = hierarchy.OneD{}
			}
		}
		window := cfg.SnapshotWindow
		if window <= 0 {
			window = cfg.Params.Window
		}
		counters := cfg.SnapshotCounters
		if counters <= 0 {
			counters = 512 * hier.H()
		}
		// Worst-case encoded size of a query-plane snapshot: ~30 bytes
		// per monitored counter plus ~30 per nominal overflow entry
		// and a fixed preamble. A budget whose snapshots can never fit
		// a frame must fail here, not wedge silently at every cadence.
		if worst := 60*counters + 1024; worst > MaxFrame-5 {
			return nil, fmt.Errorf("netwide: %d-counter snapshot (~%d bytes worst case) cannot fit a %d-byte frame",
				counters, worst, MaxFrame)
		}
		hh, err := core.NewHHH(core.HHHConfig{
			Hierarchy: hier,
			Window:    window,
			Counters:  counters,
			Seed:      seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("netwide: agent local sketch: %w", err)
		}
		a.hh = hh
		every := cfg.SnapshotEvery
		if every <= 0 {
			every = max(hh.EffectiveWindow()/4, 1)
		}
		a.every = uint64(every)
		if cfg.Report == ReportDelta {
			floor := uint64(0)
			switch {
			case cfg.DeltaFloor > 0:
				floor = uint64(cfg.DeltaFloor)
			case cfg.DeltaFloor == 0:
				floor = hh.Sketch().BlockCounts()
			}
			a.tracker, err = delta.NewTracker(hh, delta.TrackerConfig{Floor: floor})
			if err != nil {
				return nil, fmt.Errorf("netwide: agent chain encoder: %w", err)
			}
		}
	}
	hello, err := encodeHello(Hello{Name: cfg.Name, Tau: a.tau, Batch: uint32(a.b)})
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, MsgHello, hello); err != nil {
		return nil, fmt.Errorf("netwide: sending hello: %w", err)
	}
	a.sentBytes.Add(uint64(len(hello)) + 9)
	go a.writer()
	go a.reader()
	return a, nil
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Tau returns the derived sampling probability.
func (a *Agent) Tau() float64 { return a.tau }

// Mode returns the agent's report mode.
func (a *Agent) Mode() ReportMode { return a.mode }

// Observe records one observed packet. In ReportSampled mode it is
// sampled with probability τ and, once a full batch accumulates, a
// report is queued for transmission; in ReportSnapshot mode it feeds
// the local sketch, whose encoded state is queued every SnapshotEvery
// packets. Safe for concurrent use; never blocks on the network.
func (a *Agent) Observe(p hierarchy.Packet) {
	if a.mode == ReportSnapshot || a.mode == ReportDelta {
		a.observeSnapshot(p)
		return
	}
	a.mu.Lock()
	a.observed++
	if a.src.Float64() < a.tau {
		a.buf = append(a.buf, p)
	}
	if len(a.buf) < a.b {
		a.mu.Unlock()
		return
	}
	batch := Batch{Covered: a.observed, Samples: a.buf}
	a.buf = make([]hierarchy.Packet, 0, a.b)
	a.observed = 0
	a.mu.Unlock()
	a.enqueue(outFrame{typ: MsgBatch, batch: batch})
}

// observeSnapshot is Observe's local-sketch path (ReportSnapshot and
// ReportDelta share it; only the capture differs).
func (a *Agent) observeSnapshot(p hierarchy.Packet) {
	a.mu.Lock()
	a.observed++
	a.hh.Update(p)
	if a.observed < a.every {
		a.mu.Unlock()
		return
	}
	if a.mode == ReportDelta {
		// Capture AND enqueue under the lock: chain records are
		// ordered by epoch, and a concurrent Observe sneaking its
		// later record into the queue first would cost a spurious
		// resync round trip. The enqueue itself never blocks.
		a.shipDeltaLocked()
		a.mu.Unlock()
		return
	}
	frame, ok := a.captureLocked()
	a.mu.Unlock()
	if ok {
		a.enqueue(frame)
	}
}

// shipDeltaLocked advances the chain one record and queues it; the
// caller holds a.mu. A record that cannot be queued (backpressure)
// breaks the chain, so the next capture re-bases — and is owed the
// dropped record's coverage, exactly like the encode-failure path.
func (a *Agent) shipDeltaLocked() {
	frame, covered, ok := a.captureDeltaLocked()
	if ok && !a.enqueue(frame) {
		a.uncov += covered
		a.tracker.ForceBase()
	}
}

// captureLocked snapshots and encodes the local sketch; the caller
// holds a.mu. Encoding under the lock keeps the frame a consistent
// point-in-time state; the cost is a few slab copies per cadence, not
// per packet.
func (a *Agent) captureLocked() (outFrame, bool) {
	covered := a.observed + a.uncov
	a.observed = 0
	a.hh.SnapshotInto(&a.snap)
	payload, err := encodeSnapshotReport(covered, &a.snap, nil)
	if err != nil {
		// Owe the coverage to the next capture (the sketch state
		// itself is cumulative, nothing is lost) and surface the
		// failure as both an error and a dropped report; the
		// constructor's size guard makes this reachable only via
		// pathological overflow-table growth.
		a.uncov = covered
		a.writeErr.Store(err)
		a.dropped.Add(1)
		return outFrame{}, false
	}
	a.uncov = 0
	return outFrame{typ: MsgSnapshot, payload: payload}, true
}

// captureDeltaLocked advances the replication chain one record; the
// caller holds a.mu. The tracker decides base vs delta itself (first
// report, forced re-base, detected reset). The covered count is
// returned alongside the frame so a caller that fails to queue it can
// owe the coverage forward.
func (a *Agent) captureDeltaLocked() (f outFrame, covered uint64, ok bool) {
	covered = a.observed + a.uncov
	a.observed = 0
	record, _, err := a.tracker.Append(a.chainBuf[:0])
	a.chainBuf = record
	var payload []byte
	if err == nil {
		payload, err = encodeDeltaReport(covered, record, nil)
	}
	if err != nil {
		// Owe the coverage to the next capture and re-base: the
		// un-shipped record already advanced the chain.
		a.uncov = covered
		a.tracker.ForceBase()
		a.writeErr.Store(err)
		a.dropped.Add(1)
		return outFrame{}, covered, false
	}
	a.uncov = 0
	return outFrame{typ: MsgDelta, payload: payload}, covered, true
}

// Flush ships the current partial report immediately: the pending
// sampled batch, or a fresh snapshot covering the packets observed
// since the last one. Call it before reading final results from the
// controller (or before shutdown) so the tail of the stream is not
// stranded in the agent.
func (a *Agent) Flush() {
	a.mu.Lock()
	if a.observed == 0 {
		a.mu.Unlock()
		return
	}
	if a.mode == ReportDelta {
		a.shipDeltaLocked()
		a.mu.Unlock()
		return
	}
	var frame outFrame
	ok := true
	if a.mode == ReportSnapshot {
		frame, ok = a.captureLocked()
	} else {
		frame = outFrame{typ: MsgBatch, batch: Batch{Covered: a.observed, Samples: a.buf}}
		a.buf = make([]hierarchy.Packet, 0, a.b)
		a.observed = 0
	}
	a.mu.Unlock()
	if ok {
		a.enqueue(frame)
	}
}

// enqueue hands a report to the writer, dropping under backpressure;
// it reports whether the frame was accepted.
func (a *Agent) enqueue(f outFrame) bool {
	select {
	case a.sendq <- f:
		a.queued.Add(1)
		return true
	default:
		// The network is the bottleneck; measurement must not block
		// the data path. Drop and count.
		a.dropped.Add(1)
		return false
	}
}

// Dropped returns how many reports were discarded due to backpressure.
func (a *Agent) Dropped() uint64 { return a.dropped.Load() }

// Sent returns how many reports have been written to the connection.
func (a *Agent) Sent() uint64 { return a.sent.Load() }

// SentBytes returns the wire bytes written (frames plus framing
// overhead), the agent-side half of the accuracy-vs-bandwidth ledger.
func (a *Agent) SentBytes() uint64 { return a.sentBytes.Load() }

// Verdicts delivers mitigation commands pushed by the controller. The
// channel closes when the connection terminates.
func (a *Agent) Verdicts() <-chan []Verdict { return a.verdicts }

// Err reports the first transport error observed (nil while healthy).
func (a *Agent) Err() error {
	if e, ok := a.writeErr.Load().(error); ok {
		return e
	}
	if e, ok := a.recvErr.Load().(error); ok {
		return e
	}
	return nil
}

// writer drains the report queue onto the connection.
func (a *Agent) writer() {
	for {
		select {
		case <-a.done:
			return
		case f := <-a.sendq:
			payload := f.payload
			var err error
			if f.typ == MsgBatch {
				payload, err = encodeBatch(f.batch)
			}
			if err == nil {
				err = writeFrame(a.conn, f.typ, payload)
			}
			if err != nil {
				a.writeErr.Store(err)
				a.Close()
				return
			}
			a.sent.Add(1)
			a.sentBytes.Add(uint64(len(payload)) + 9)
		}
	}
}

// reader consumes verdict frames from the controller.
func (a *Agent) reader() {
	defer close(a.verdicts)
	for {
		msgType, payload, err := readFrame(a.conn)
		if err != nil {
			a.recvErr.Store(err)
			a.Close()
			return
		}
		if msgType == MsgResync && a.mode == ReportDelta {
			// The controller lost the chain (dropped record on our
			// side, restart on its side): the next report is a base.
			a.mu.Lock()
			a.tracker.ForceBase()
			a.mu.Unlock()
			continue
		}
		if msgType != MsgVerdict {
			a.recvErr.Store(fmt.Errorf("netwide: unexpected message type %d from controller", msgType))
			a.Close()
			return
		}
		vs, err := decodeVerdicts(payload)
		if err != nil {
			a.recvErr.Store(err)
			a.Close()
			return
		}
		select {
		case a.verdicts <- vs:
		case <-a.done:
			return
		}
	}
}

// Close terminates the agent and its connection immediately; queued
// reports the writer has not shipped yet are lost. Error paths and
// teardown-on-failure use this; a graceful exit wants Shutdown.
// Idempotent.
func (a *Agent) Close() error {
	var err error
	a.closed.Do(func() {
		close(a.done)
		err = a.conn.Close()
	})
	return err
}

// Shutdown is the graceful Close: it Flushes the pending partial
// report, waits up to timeout for the writer to drain everything
// queued, and then closes the connection — so the tail of the stream
// reaches the controller instead of dying in the send queue. The
// caller must have stopped Observing. A broken transport cuts the
// wait short; timeout <= 0 skips straight to Close.
func (a *Agent) Shutdown(timeout time.Duration) error {
	a.Flush()
	deadline := time.Now().Add(timeout)
	for a.sent.Load() < a.queued.Load() && a.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return a.Close()
}
