// Agent: the measurement-point side of the network-wide protocol.

package netwide

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// AgentConfig parameterizes a measurement point.
type AgentConfig struct {
	// Name identifies the agent to the controller.
	Name string
	// Params are the shared deployment constants; the agent derives its
	// sampling probability from them.
	Params Params
	// Dims is the hierarchy dimensionality (1 or 2), used only to
	// default the per-sample payload size.
	Dims int
	// Seed fixes the sampling randomness; 0 derives one from the name.
	Seed uint64
	// QueueLen bounds the outbound report queue; when the network
	// cannot drain reports fast enough, new reports are dropped and
	// counted (measurement must never block the data path). Default 64.
	QueueLen int
}

// Agent samples observed packets and ships batched reports to the
// controller. Observe is safe for concurrent use and never blocks on
// the network.
type Agent struct {
	conn net.Conn
	name string
	tau  float64
	b    int

	mu       sync.Mutex
	src      *rng.Source
	buf      []hierarchy.Packet
	observed uint64

	sendq    chan Batch
	verdicts chan []Verdict
	done     chan struct{}
	closed   sync.Once

	dropped  atomic.Uint64
	sent     atomic.Uint64
	recvErr  atomic.Value // error
	writeErr atomic.Value // error
}

// DialAgent connects to the controller at addr and performs the Hello
// exchange.
func DialAgent(addr string, cfg AgentConfig) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netwide: dialing controller: %w", err)
	}
	a, err := NewAgent(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// NewAgent wraps an established connection (any net.Conn, which keeps
// the protocol testable over net.Pipe).
func NewAgent(conn net.Conn, cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, errors.New("netwide: agent needs a name")
	}
	if err := cfg.Params.Normalize(cfg.Dims); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range cfg.Name {
			seed = seed*131 + uint64(c)
		}
		seed |= 1
	}
	qlen := cfg.QueueLen
	if qlen <= 0 {
		qlen = 64
	}
	a := &Agent{
		conn:     conn,
		name:     cfg.Name,
		tau:      cfg.Params.Tau(),
		b:        cfg.Params.BatchSize,
		src:      rng.New(seed),
		sendq:    make(chan Batch, qlen),
		verdicts: make(chan []Verdict, 16),
		done:     make(chan struct{}),
	}
	hello, err := encodeHello(Hello{Name: cfg.Name, Tau: a.tau, Batch: uint32(a.b)})
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, MsgHello, hello); err != nil {
		return nil, fmt.Errorf("netwide: sending hello: %w", err)
	}
	go a.writer()
	go a.reader()
	return a, nil
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Tau returns the derived sampling probability.
func (a *Agent) Tau() float64 { return a.tau }

// Observe records one observed packet: it is sampled with probability
// τ and, once a full batch accumulates, a report is queued for
// transmission. Safe for concurrent use; never blocks on the network.
func (a *Agent) Observe(p hierarchy.Packet) {
	a.mu.Lock()
	a.observed++
	if a.src.Float64() < a.tau {
		a.buf = append(a.buf, p)
	}
	if len(a.buf) < a.b {
		a.mu.Unlock()
		return
	}
	batch := Batch{Covered: a.observed, Samples: a.buf}
	a.buf = make([]hierarchy.Packet, 0, a.b)
	a.observed = 0
	a.mu.Unlock()

	select {
	case a.sendq <- batch:
	default:
		// The network is the bottleneck; measurement must not block
		// the data path. Drop and count.
		a.dropped.Add(1)
	}
}

// Dropped returns how many reports were discarded due to backpressure.
func (a *Agent) Dropped() uint64 { return a.dropped.Load() }

// Sent returns how many reports have been written to the connection.
func (a *Agent) Sent() uint64 { return a.sent.Load() }

// Verdicts delivers mitigation commands pushed by the controller. The
// channel closes when the connection terminates.
func (a *Agent) Verdicts() <-chan []Verdict { return a.verdicts }

// Err reports the first transport error observed (nil while healthy).
func (a *Agent) Err() error {
	if e, ok := a.writeErr.Load().(error); ok {
		return e
	}
	if e, ok := a.recvErr.Load().(error); ok {
		return e
	}
	return nil
}

// writer drains the report queue onto the connection.
func (a *Agent) writer() {
	for {
		select {
		case <-a.done:
			return
		case b := <-a.sendq:
			payload, err := encodeBatch(b)
			if err == nil {
				err = writeFrame(a.conn, MsgBatch, payload)
			}
			if err != nil {
				a.writeErr.Store(err)
				a.Close()
				return
			}
			a.sent.Add(1)
		}
	}
}

// reader consumes verdict frames from the controller.
func (a *Agent) reader() {
	defer close(a.verdicts)
	for {
		msgType, payload, err := readFrame(a.conn)
		if err != nil {
			a.recvErr.Store(err)
			a.Close()
			return
		}
		if msgType != MsgVerdict {
			a.recvErr.Store(fmt.Errorf("netwide: unexpected message type %d from controller", msgType))
			a.Close()
			return
		}
		vs, err := decodeVerdicts(payload)
		if err != nil {
			a.recvErr.Store(err)
			a.Close()
			return
		}
		select {
		case a.verdicts <- vs:
		case <-a.done:
			return
		}
	}
}

// Close terminates the agent and its connection. Idempotent.
func (a *Agent) Close() error {
	var err error
	a.closed.Do(func() {
		close(a.done)
		err = a.conn.Close()
	})
	return err
}
