// Agent: the measurement-point side of the network-wide protocol.
//
// Agents run in one of two report modes. ReportSampled is the paper's
// budget-constrained protocol: each observed packet is sampled with
// probability τ and full batches ship as MsgBatch frames.
// ReportSnapshot is the full-fidelity mode: the agent maintains a
// complete local H-Memento over its ingress and ships the encoded
// sketch state (MsgSnapshot) at a configurable cadence — the paper's
// "send everything" baseline turned into a live operating point, so
// the accuracy-vs-bandwidth trade-off becomes a deployment knob
// rather than a thought experiment. In both modes Observe never
// blocks on the network: reports queue to a bounded channel and drop
// (counted) under backpressure.
//
// Transport fault tolerance (DESIGN.md §10): an agent built with
// DialAgent and Reconnect redials through a supervised loop with
// exponential backoff, jitter and an optional retry budget. Reports
// queued before an outage survive it (the writer retries the in-hand
// frame on the next connection generation); reports that overflow the
// bounded queue during it are dropped and counted, and because
// state-shipping modes report *cumulative* coverage, the ledger heals
// as soon as any later report lands — nothing is silently lost.
// Heartbeats (MsgPing/MsgPong) keep idle connections alive and detect
// one-way partitions; when the controller stays unreachable past
// DegradedAfter, Degraded() reports it so callers can fail over to
// local verdicts.

package netwide

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/delta"
	"memento/internal/hierarchy"
	"memento/internal/obs"
	"memento/internal/rng"
)

// ReportMode selects how an agent reports to the controller.
type ReportMode uint8

const (
	// ReportSampled ships τ-sampled packets in batches (the paper's
	// Sample/Batch methods): cheap, approximate, budget-bounded.
	ReportSampled ReportMode = iota
	// ReportSnapshot maintains a full local sketch and ships its
	// encoded state every SnapshotEvery packets: every packet
	// contributes to the controller's view at full fidelity, at a
	// bandwidth cost proportional to sketch size over cadence.
	ReportSnapshot
	// ReportDelta maintains the same full local sketch but ships an
	// internal/delta replication chain instead of complete snapshots:
	// one base, then per-cadence records carrying only the counters
	// that changed. Snapshot-level fidelity for heavy state at a
	// fraction of the bytes; a dropped report or controller resync
	// request transparently re-bases the chain.
	ReportDelta
)

// AgentConfig parameterizes a measurement point.
type AgentConfig struct {
	// Name identifies the agent to the controller.
	Name string
	// Params are the shared deployment constants; the agent derives its
	// sampling probability from them.
	Params Params
	// Dims is the hierarchy dimensionality (1 or 2), used only to
	// default the per-sample payload size.
	Dims int
	// Seed fixes the sampling randomness; 0 derives one from the name.
	Seed uint64
	// QueueLen bounds the outbound report queue; when the network
	// cannot drain reports fast enough, new reports are dropped and
	// counted (measurement must never block the data path). Default 64.
	QueueLen int

	// Report selects the reporting mode (default ReportSampled).
	Report ReportMode
	// Hier is the prefix domain of the local sketch in ReportSnapshot
	// mode; defaults to OneD (TwoD when Dims == 2). Use
	// hierarchy.Flows for plain network-wide heavy hitters.
	Hier hierarchy.Hierarchy
	// SnapshotWindow is the local sliding window in ReportSnapshot
	// mode. With m agents splitting the traffic, Params.Window/m makes
	// the merged window match the network-wide one, mirroring the
	// shard layer's window split. Defaults to Params.Window.
	SnapshotWindow int
	// SnapshotCounters sizes the local sketch (default 512·H).
	SnapshotCounters int
	// SnapshotEvery is the report cadence in observed packets
	// (default SnapshotWindow/4). Smaller is fresher and costs more
	// bytes; the encoded snapshot must fit a MaxFrame frame.
	SnapshotEvery int
	// DeltaFloor is ReportDelta's fidelity floor: monitored counters
	// whose guaranteed count stays below it and that never shipped
	// (and are outside the overflow table) stay local. 0 selects the
	// local sketch's block threshold — the natural "cannot matter to
	// heavy hitters yet" unit — and a negative value selects exact
	// replication. See internal/delta.
	DeltaFloor int

	// DialTimeout bounds each connection attempt, including the first
	// (DialAgent only). Default 5s.
	DialTimeout time.Duration
	// HandshakeTimeout bounds the Hello write on a fresh connection.
	// Default: DialTimeout.
	HandshakeTimeout time.Duration
	// Reconnect enables the supervised redial loop: when the transport
	// breaks, the agent backs off, redials, re-Hellos and (in delta
	// mode) re-bases its chain, transparently to Observe. Requires
	// DialAgent (only a dialed agent knows its address); NewAgent
	// rejects it.
	Reconnect bool
	// RetryBudget caps consecutive failed redial attempts before the
	// agent gives up permanently (Err() turns non-nil, the agent
	// closes). <= 0 retries forever, with backoff capped at BackoffMax.
	RetryBudget int
	// BackoffBase and BackoffMax bound the exponential redial backoff
	// (defaults 100ms and 5s). Each delay is jittered to [d/2, d).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HeartbeatEvery is the MsgPing cadence. Default 1s; negative
	// disables heartbeats. Pings yield to report traffic under
	// backpressure (a full queue skips the ping, uncounted).
	HeartbeatEvery time.Duration
	// DegradedAfter is the degraded-mode threshold: when nothing has
	// been heard from the controller (pongs, verdicts, resyncs) for
	// this long, Degraded() reports true until contact resumes.
	// 0 disables degraded detection.
	DegradedAfter time.Duration
	// Clock injects the supervision plane's time source (backoff,
	// heartbeats, degraded detection, shutdown drain). nil selects the
	// wall clock. Connection deadlines always use the wall clock.
	Clock Clock
	// Dial overrides how (re)connections are made, e.g. to wrap them
	// in a faultnet injector. nil selects net.DialTimeout("tcp", ...).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)

	// TraceReports opts the agent into end-to-end report tracing: after
	// each Hello it probes the controller (a MsgPing carrying the probe
	// magic) and, if the controller acks, wraps every report in a
	// MsgTraced envelope stamped with the agent id, a monotone report
	// sequence and the capture-time clock reading. A controller that
	// echoes the probe verbatim (v1) leaves the connection untraced —
	// reports ship exactly as before, no flag day. Stamping happens at
	// capture (cadence) granularity, never per packet.
	TraceReports bool

	// Obs, when set, registers the agent's transfer ledger under
	// memento_agent_* (one agent per registry: names are flat).
	// Trace, when set, receives the fleet lifecycle events —
	// connect/reconnect/disconnect, resync, degraded enter/exit —
	// with the agent name as actor. Both default to disabled.
	Obs   *obs.Registry
	Trace *obs.Trace
}

// Agent samples observed packets and ships batched reports to the
// controller. Observe is safe for concurrent use and never blocks on
// the network.
type Agent struct {
	name string
	tau  float64
	b    int
	mode ReportMode

	addr       string // redial target; "" for NewAgent-wrapped conns
	redialable bool
	dial       func(addr string, timeout time.Duration) (net.Conn, error)
	clk        Clock
	hello      []byte // pre-encoded Hello payload, re-sent every generation

	dialTimeout   time.Duration
	hsTimeout     time.Duration
	backoffBase   time.Duration
	backoffMax    time.Duration
	hbEvery       time.Duration
	degradedAfter time.Duration
	retryBudget   int
	bsrc          *rng.Source // backoff jitter; supervisor goroutine only

	mu        sync.Mutex
	src       *rng.Source
	buf       []hierarchy.Packet
	observed  uint64 // packets since the last capture (cadence / batch counter)
	total     uint64 // ReportSnapshot/ReportDelta: cumulative packets observed
	hh        *core.HHH
	snap      core.HHHSnapshot
	tracker   *delta.Tracker
	every     uint64
	chainBuf  []byte // ReportDelta: recycled record scratch
	reportSeq uint64 // guarded by mu: per-agent report sequence (tracing)

	// stateMu guards the connection-generation state: which connection
	// is current, liveness stamps and the reconnect/degraded ledgers.
	stateMu     sync.Mutex
	cur         *generation   // guarded by stateMu
	upCh        chan struct{} // guarded by stateMu; closed while connected, fresh while down
	gen         uint64        // guarded by stateMu
	reconnects  uint64        // guarded by stateMu
	disconnects uint64        // guarded by stateMu
	lastContact time.Time     // guarded by stateMu
	lastErr     error         // guarded by stateMu
	permErr     error         // guarded by stateMu
	degraded    bool          // guarded by stateMu
	degEnters   uint64        // guarded by stateMu
	degExits    uint64        // guarded by stateMu
	traced      bool          // guarded by stateMu: this generation negotiated tracing

	redial   chan struct{} // capacity 1: wake the supervisor
	readerWg sync.WaitGroup

	sendq    chan outFrame
	verdicts chan []Verdict
	done     chan struct{}
	closed   sync.Once

	// The transfer ledger rides obs counters (cache-line padded,
	// always allocated, optionally registered via AgentConfig.Obs);
	// trace carries lifecycle events (nil: disabled).
	dropped   *obs.Counter
	queued    *obs.Counter
	sent      *obs.Counter
	sentBytes *obs.Counter
	pings     *obs.Counter
	pongs     *obs.Counter
	tracedRpt *obs.Counter
	trace     *obs.Trace
	dataErr   atomic.Value // error: a report failed to encode (not transport)

	traceReports bool   // config: probe for tracing each generation
	traceBuf     []byte // writer goroutine only: recycled MsgTraced scratch
}

// generation is one connection's lifetime. The writer, the
// per-generation reader and Close all race to declare it dead;
// sync.Once makes the teardown single.
type generation struct {
	conn net.Conn
	done chan struct{}
	fail sync.Once
}

// outFrame is one queued report: either a batch to encode on the
// writer goroutine, or a pre-encoded payload (snapshots are encoded
// under the observe lock so the sketch state is consistent). Reports
// carry their capture stamp (seq, capture) from the moment the state
// was cut; whether the stamp ships depends on the connection's
// negotiated tracing state at write time. capture == 0 marks
// non-report frames (pings), which are never wrapped.
type outFrame struct {
	typ     byte
	batch   Batch
	payload []byte
	seq     uint64
	capture int64
}

// DialAgent connects to the controller at addr (bounded by
// DialTimeout) and performs the Hello exchange. With cfg.Reconnect the
// returned agent survives transport failures: it redials under
// supervision and re-Hellos, invisibly to Observe. The first dial
// fails fast — a misconfigured address should surface at startup, not
// retry forever.
func DialAgent(addr string, cfg AgentConfig) (*Agent, error) {
	a, err := buildAgent(cfg)
	if err != nil {
		return nil, err
	}
	a.addr = addr
	a.redialable = cfg.Reconnect
	conn, err := a.dialOnce()
	if err != nil {
		return nil, err
	}
	a.start(conn)
	return a, nil
}

// NewAgent wraps an established connection (any net.Conn, which keeps
// the protocol testable over net.Pipe). A wrapped connection cannot be
// redialed, so cfg.Reconnect is rejected.
func NewAgent(conn net.Conn, cfg AgentConfig) (*Agent, error) {
	if cfg.Reconnect {
		return nil, errors.New("netwide: Reconnect requires DialAgent (a wrapped conn has no redial address)")
	}
	a, err := buildAgent(cfg)
	if err != nil {
		return nil, err
	}
	if conn == nil {
		return nil, errors.New("netwide: agent needs a connection")
	}
	if err := a.sendHello(conn); err != nil {
		return nil, err
	}
	a.start(conn)
	return a, nil
}

// buildAgent validates cfg and constructs the agent, connectionless.
func buildAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, errors.New("netwide: agent needs a name")
	}
	if err := cfg.Params.Normalize(cfg.Dims); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range cfg.Name {
			seed = seed*131 + uint64(c)
		}
		seed |= 1
	}
	qlen := cfg.QueueLen
	if qlen <= 0 {
		qlen = 64
	}
	clk := cfg.Clock
	if clk == nil {
		clk = sysClock{}
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	a := &Agent{
		name:          cfg.Name,
		tau:           cfg.Params.Tau(),
		b:             cfg.Params.BatchSize,
		mode:          cfg.Report,
		dial:          dial,
		clk:           clk,
		dropped:       &obs.Counter{},
		queued:        &obs.Counter{},
		sent:          &obs.Counter{},
		sentBytes:     &obs.Counter{},
		pings:         &obs.Counter{},
		pongs:         &obs.Counter{},
		tracedRpt:     &obs.Counter{},
		trace:         cfg.Trace,
		traceReports:  cfg.TraceReports,
		dialTimeout:   cfg.DialTimeout,
		hsTimeout:     cfg.HandshakeTimeout,
		backoffBase:   cfg.BackoffBase,
		backoffMax:    cfg.BackoffMax,
		hbEvery:       cfg.HeartbeatEvery,
		degradedAfter: cfg.DegradedAfter,
		retryBudget:   cfg.RetryBudget,
		bsrc:          rng.New(seed + 0xb0ff),
		src:           rng.New(seed),
		upCh:          make(chan struct{}),
		redial:        make(chan struct{}, 1),
		sendq:         make(chan outFrame, qlen),
		verdicts:      make(chan []Verdict, 16),
		done:          make(chan struct{}),
	}
	if a.dialTimeout <= 0 {
		a.dialTimeout = 5 * time.Second
	}
	if a.hsTimeout <= 0 {
		a.hsTimeout = a.dialTimeout
	}
	if a.backoffBase <= 0 {
		a.backoffBase = 100 * time.Millisecond
	}
	if a.backoffMax <= 0 {
		a.backoffMax = 5 * time.Second
	}
	if a.backoffMax < a.backoffBase {
		a.backoffMax = a.backoffBase
	}
	if a.hbEvery == 0 {
		a.hbEvery = time.Second
	}
	if cfg.Report == ReportSnapshot || cfg.Report == ReportDelta {
		hier := cfg.Hier
		if hier == nil {
			if cfg.Dims == 2 {
				hier = hierarchy.TwoD{}
			} else {
				hier = hierarchy.OneD{}
			}
		}
		window := cfg.SnapshotWindow
		if window <= 0 {
			window = cfg.Params.Window
		}
		counters := cfg.SnapshotCounters
		if counters <= 0 {
			counters = 512 * hier.H()
		}
		// Worst-case encoded size of a query-plane snapshot: ~30 bytes
		// per monitored counter plus ~30 per nominal overflow entry
		// and a fixed preamble. A budget whose snapshots can never fit
		// a frame must fail here, not wedge silently at every cadence.
		if worst := 60*counters + 1024; worst > MaxFrame-5 {
			return nil, fmt.Errorf("netwide: %d-counter snapshot (~%d bytes worst case) cannot fit a %d-byte frame",
				counters, worst, MaxFrame)
		}
		hh, err := core.NewHHH(core.HHHConfig{
			Hierarchy: hier,
			Window:    window,
			Counters:  counters,
			Seed:      seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("netwide: agent local sketch: %w", err)
		}
		a.hh = hh
		every := cfg.SnapshotEvery
		if every <= 0 {
			every = max(hh.EffectiveWindow()/4, 1)
		}
		a.every = uint64(every)
		if cfg.Report == ReportDelta {
			floor := uint64(0)
			switch {
			case cfg.DeltaFloor > 0:
				floor = uint64(cfg.DeltaFloor)
			case cfg.DeltaFloor == 0:
				floor = hh.Sketch().BlockCounts()
			}
			a.tracker, err = delta.NewTracker(hh, delta.TrackerConfig{Floor: floor})
			if err != nil {
				return nil, fmt.Errorf("netwide: agent chain encoder: %w", err)
			}
		}
	}
	hello, err := encodeHello(Hello{Name: cfg.Name, Tau: a.tau, Batch: uint32(a.b)})
	if err != nil {
		return nil, err
	}
	a.hello = hello
	if r := cfg.Obs; r != nil {
		r.RegisterCounter("memento_agent_queued_total", a.queued)
		r.RegisterCounter("memento_agent_sent_total", a.sent)
		r.RegisterCounter("memento_agent_dropped_total", a.dropped)
		r.RegisterCounter("memento_agent_sent_bytes_total", a.sentBytes)
		r.RegisterCounter("memento_agent_pings_total", a.pings)
		r.RegisterCounter("memento_agent_pongs_total", a.pongs)
		r.RegisterFunc("memento_agent_generation", func() float64 {
			a.stateMu.Lock()
			defer a.stateMu.Unlock()
			return float64(a.gen)
		})
		r.RegisterFunc("memento_agent_connected", func() float64 {
			a.stateMu.Lock()
			defer a.stateMu.Unlock()
			if a.cur != nil {
				return 1
			}
			return 0
		})
		r.RegisterFunc("memento_agent_degraded", func() float64 {
			if a.Degraded() {
				return 1
			}
			return 0
		})
		r.RegisterCounter("memento_agent_traced_reports_total", a.tracedRpt)
		r.RegisterFunc("memento_agent_traced", func() float64 {
			a.stateMu.Lock()
			defer a.stateMu.Unlock()
			if a.traced {
				return 1
			}
			return 0
		})
	}
	return a, nil
}

// start installs the first connection and launches the goroutine set:
// one writer, one supervisor (which owns redials and, at the very end,
// the verdicts channel), one reader per connection generation, and
// optionally the heartbeat ticker.
func (a *Agent) start(conn net.Conn) {
	a.install(conn)
	go a.writer()
	go a.supervise()
	if a.hbEvery > 0 {
		go a.heartbeats()
	}
}

// dialOnce makes one bounded connection attempt including the Hello.
func (a *Agent) dialOnce() (net.Conn, error) {
	conn, err := a.dial(a.addr, a.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("netwide: dialing controller: %w", err)
	}
	if err := a.sendHello(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// sendHello writes the Hello frame under the handshake deadline,
// immediately followed by the trace probe when tracing is requested —
// writing it here, before the generation installs, guarantees the
// probe precedes every report of the generation on the wire.
func (a *Agent) sendHello(conn net.Conn) error {
	if a.hsTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(a.hsTimeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	if err := writeFrame(conn, MsgHello, a.hello); err != nil {
		return fmt.Errorf("netwide: sending hello: %w", err)
	}
	a.sentBytes.Add(uint64(len(a.hello)) + 9)
	if a.traceReports {
		if err := writeFrame(conn, MsgPing, encodePing(traceProbeSeq)); err != nil {
			return fmt.Errorf("netwide: sending trace probe: %w", err)
		}
		a.sentBytes.Add(8 + 9)
	}
	return nil
}

// install makes conn the current generation and starts its reader.
// Returns false when the agent closed concurrently (conn is closed,
// nothing started).
func (a *Agent) install(conn net.Conn) bool {
	g := &generation{conn: conn, done: make(chan struct{})}
	a.stateMu.Lock()
	select {
	case <-a.done:
		a.stateMu.Unlock()
		conn.Close()
		return false
	default:
	}
	a.cur = g
	a.gen++
	gen := a.gen
	rejoined := gen > 1
	if rejoined {
		a.reconnects++
	}
	a.lastContact = a.clk.Now()
	a.lastErr = nil
	a.traced = false // each generation re-negotiates via its own probe
	close(a.upCh)    // wake the writer: connected
	a.stateMu.Unlock()
	if rejoined {
		a.trace.Record(obs.EvReconnect, a.name, gen)
	} else {
		a.trace.Record(obs.EvConnect, a.name, gen)
	}
	if rejoined && a.mode == ReportDelta {
		// The controller's chain follower died with the old
		// connection. Re-base and ship immediately — waiting for the
		// next cadence would leave the controller's view of this agent
		// stale for up to a full cadence after the outage, or forever
		// if traffic stopped.
		a.mu.Lock()
		a.tracker.ForceBase()
		a.shipDeltaLocked()
		a.mu.Unlock()
	}
	a.readerWg.Add(1)
	go a.reader(g)
	return true
}

// failGen declares one connection generation dead: tears it down,
// records the error, and either wakes the supervisor (redialable) or
// closes the agent (the pre-reconnect fail-fast contract).
func (a *Agent) failGen(g *generation, err error) {
	g.fail.Do(func() {
		close(g.done)
		g.conn.Close()
		a.stateMu.Lock()
		current := a.cur == g
		var gen uint64
		if current {
			a.cur = nil
			a.upCh = make(chan struct{})
			a.disconnects++
			a.lastErr = err
			gen = a.gen
		}
		a.stateMu.Unlock()
		if current {
			a.trace.Record(obs.EvDisconnect, a.name, gen)
		}
		if a.redialable {
			select {
			case a.redial <- struct{}{}:
			default:
			}
		} else {
			a.Close()
		}
	})
}

// supervise owns the redial loop. It also owns the verdicts channel's
// close: it runs for every agent (redialable or not) and is the single
// goroutine that outlives all reader generations.
func (a *Agent) supervise() {
	defer func() {
		a.readerWg.Wait()
		close(a.verdicts)
	}()
	for {
		select {
		case <-a.done:
			return
		case <-a.redial:
		}
		if !a.reconnectLoop() {
			return
		}
	}
}

// reconnectLoop redials with backoff until a connection installs;
// false ends supervision (agent closed, or retry budget exhausted).
func (a *Agent) reconnectLoop() bool {
	for attempt := 0; ; attempt++ {
		if a.retryBudget > 0 && attempt >= a.retryBudget {
			a.stateMu.Lock()
			a.permErr = fmt.Errorf("netwide: reconnect retry budget (%d) exhausted, last error: %w",
				a.retryBudget, a.lastErr)
			a.stateMu.Unlock()
			a.Close()
			return false
		}
		select {
		case <-a.done:
			return false
		case <-a.clk.After(backoffDelay(attempt, a.backoffBase, a.backoffMax, a.bsrc)):
		}
		conn, err := a.dialOnce()
		if err != nil {
			a.stateMu.Lock()
			a.lastErr = err
			a.stateMu.Unlock()
			continue
		}
		return a.install(conn)
	}
}

// heartbeats enqueues a MsgPing every hbEvery while connected. Pings
// ride the ordinary send queue (so they never interleave mid-frame
// with reports) but yield to report traffic: a full queue skips the
// ping rather than displacing data.
func (a *Agent) heartbeats() {
	for {
		select {
		case <-a.done:
			return
		case <-a.clk.After(a.hbEvery):
		}
		a.stateMu.Lock()
		up := a.cur != nil
		a.stateMu.Unlock()
		if !up {
			continue
		}
		// Single heartbeat goroutine: Inc-then-Load is a private
		// sequence number, not a race.
		a.pings.Inc()
		select {
		case a.sendq <- outFrame{typ: MsgPing, payload: encodePing(a.pings.Load())}:
		default:
		}
	}
}

// touch stamps controller contact (any inbound frame) and clears a
// standing degraded state.
func (a *Agent) touch() {
	now := a.clk.Now()
	a.stateMu.Lock()
	a.lastContact = now
	exited := a.degraded
	if exited {
		a.degraded = false
		a.degExits++
	}
	a.stateMu.Unlock()
	if exited {
		a.trace.Record(obs.EvDegradedExit, a.name, 0)
	}
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Tau returns the derived sampling probability.
func (a *Agent) Tau() float64 { return a.tau }

// Mode returns the agent's report mode.
func (a *Agent) Mode() ReportMode { return a.mode }

// Observe records one observed packet. In ReportSampled mode it is
// sampled with probability τ and, once a full batch accumulates, a
// report is queued for transmission; in ReportSnapshot mode it feeds
// the local sketch, whose encoded state is queued every SnapshotEvery
// packets. Safe for concurrent use; never blocks on the network.
func (a *Agent) Observe(p hierarchy.Packet) {
	if a.mode == ReportSnapshot || a.mode == ReportDelta {
		a.observeSnapshot(p)
		return
	}
	a.mu.Lock()
	a.observed++
	if a.src.Float64() < a.tau {
		a.buf = append(a.buf, p)
	}
	if len(a.buf) < a.b {
		a.mu.Unlock()
		return
	}
	batch := Batch{Covered: a.observed, Samples: a.buf}
	a.buf = make([]hierarchy.Packet, 0, a.b)
	a.observed = 0
	seq, capture := a.stampLocked()
	a.mu.Unlock()
	a.enqueue(outFrame{typ: MsgBatch, batch: batch, seq: seq, capture: capture})
}

// stampLocked cuts the next report's capture stamp: its sequence
// number and the capture-time clock reading. The caller holds a.mu,
// which keeps sequence numbers monotone in queue order.
//
//memento:locked mu
func (a *Agent) stampLocked() (uint64, int64) {
	a.reportSeq++
	return a.reportSeq, time.Now().UnixNano()
}

// observeSnapshot is Observe's local-sketch path (ReportSnapshot and
// ReportDelta share it; only the capture differs).
func (a *Agent) observeSnapshot(p hierarchy.Packet) {
	a.mu.Lock()
	a.observed++
	a.total++
	a.hh.Update(p)
	if a.observed < a.every {
		a.mu.Unlock()
		return
	}
	if a.mode == ReportDelta {
		// Capture AND enqueue under the lock: chain records are
		// ordered by epoch, and a concurrent Observe sneaking its
		// later record into the queue first would cost a spurious
		// resync round trip. The enqueue itself never blocks.
		a.shipDeltaLocked()
		a.mu.Unlock()
		return
	}
	frame, ok := a.captureLocked()
	a.mu.Unlock()
	if ok {
		a.enqueue(frame)
	}
}

// shipDeltaLocked advances the chain one record and queues it; the
// caller holds a.mu. A record that cannot be queued (backpressure)
// breaks the chain, so the next capture re-bases; the cumulative
// coverage total makes the ledger whole on its own.
//
//memento:locked mu
func (a *Agent) shipDeltaLocked() {
	frame, ok := a.captureDeltaLocked()
	if ok && !a.enqueue(frame) {
		a.tracker.ForceBase()
	}
}

// captureLocked snapshots and encodes the local sketch; the caller
// holds a.mu. Encoding under the lock keeps the frame a consistent
// point-in-time state; the cost is a few slab copies per cadence, not
// per packet.
//
//memento:locked mu
func (a *Agent) captureLocked() (outFrame, bool) {
	a.observed = 0
	a.hh.SnapshotInto(&a.snap)
	payload, err := encodeSnapshotReport(a.total, &a.snap, nil)
	if err != nil {
		// The sketch state is cumulative and the coverage total rides
		// every report, so nothing is owed forward — surface the
		// failure as an error plus a dropped report; the constructor's
		// size guard makes this reachable only via pathological
		// overflow-table growth.
		a.dataErr.Store(err)
		a.dropped.Add(1)
		return outFrame{}, false
	}
	seq, capture := a.stampLocked()
	return outFrame{typ: MsgSnapshot, payload: payload, seq: seq, capture: capture}, true
}

// captureDeltaLocked advances the replication chain one record; the
// caller holds a.mu. The tracker decides base vs delta itself (first
// report, forced re-base, detected reset).
//
//memento:locked mu
func (a *Agent) captureDeltaLocked() (outFrame, bool) {
	a.observed = 0
	record, _, err := a.tracker.Append(a.chainBuf[:0])
	a.chainBuf = record
	var payload []byte
	if err == nil {
		payload, err = encodeDeltaReport(a.total, record, nil)
	}
	if err != nil {
		// Re-base: the un-shipped record already advanced the chain.
		a.tracker.ForceBase()
		a.dataErr.Store(err)
		a.dropped.Add(1)
		return outFrame{}, false
	}
	seq, capture := a.stampLocked()
	return outFrame{typ: MsgDelta, payload: payload, seq: seq, capture: capture}, true
}

// Flush ships the current partial report immediately: the pending
// sampled batch, or a fresh snapshot covering the packets observed
// since the last one. Call it before reading final results from the
// controller (or before shutdown) so the tail of the stream is not
// stranded in the agent.
func (a *Agent) Flush() {
	a.mu.Lock()
	if a.observed == 0 {
		a.mu.Unlock()
		return
	}
	if a.mode == ReportDelta {
		a.shipDeltaLocked()
		a.mu.Unlock()
		return
	}
	var frame outFrame
	ok := true
	if a.mode == ReportSnapshot {
		frame, ok = a.captureLocked()
	} else {
		frame = outFrame{typ: MsgBatch, batch: Batch{Covered: a.observed, Samples: a.buf}}
		frame.seq, frame.capture = a.stampLocked()
		a.buf = make([]hierarchy.Packet, 0, a.b)
		a.observed = 0
	}
	a.mu.Unlock()
	if ok {
		a.enqueue(frame)
	}
}

// enqueue hands a report to the writer, dropping under backpressure;
// it reports whether the frame was accepted.
func (a *Agent) enqueue(f outFrame) bool {
	select {
	case a.sendq <- f:
		a.queued.Add(1)
		return true
	default:
		// The network is the bottleneck; measurement must not block
		// the data path. Drop and count.
		a.dropped.Add(1)
		return false
	}
}

// Dropped returns how many reports were discarded due to backpressure.
func (a *Agent) Dropped() uint64 { return a.dropped.Load() }

// Sent returns how many reports have been written to the connection
// (heartbeat pings are counted separately, in Stats).
func (a *Agent) Sent() uint64 { return a.sent.Load() }

// SentBytes returns the wire bytes written (frames plus framing
// overhead, including Hellos and pings), the agent-side half of the
// accuracy-vs-bandwidth ledger.
func (a *Agent) SentBytes() uint64 { return a.sentBytes.Load() }

// Verdicts delivers mitigation commands pushed by the controller. The
// channel closes when the agent terminates — for a reconnecting agent
// that is final closure or budget exhaustion, not a transient drop.
func (a *Agent) Verdicts() <-chan []Verdict { return a.verdicts }

// Degraded reports whether the controller has been unreachable past
// DegradedAfter: no frame (pong, verdict, resync) has arrived within
// the threshold. It detects one-way partitions, not just closed
// sockets — writes may still "succeed" into a void while pongs stop.
// Callers poll it to fail over to local verdicts and to hand control
// back on recovery. Always false when DegradedAfter is 0.
func (a *Agent) Degraded() bool {
	if a.degradedAfter <= 0 {
		return false
	}
	now := a.clk.Now()
	a.stateMu.Lock()
	deg := now.Sub(a.lastContact) > a.degradedAfter
	flipped := deg != a.degraded
	if flipped {
		a.degraded = deg
		if deg {
			a.degEnters++
		} else {
			a.degExits++
		}
	}
	a.stateMu.Unlock()
	if flipped {
		if deg {
			a.trace.Record(obs.EvDegradedEnter, a.name, 0)
		} else {
			a.trace.Record(obs.EvDegradedExit, a.name, 0)
		}
	}
	return deg
}

// AgentStats is an agent's fault-plane and transfer ledger.
type AgentStats struct {
	// Generation counts connections established (1 = never redialed).
	Generation uint64
	// Reconnects counts successful redials; Disconnects counts
	// connection losses (Disconnects can lead by one while down).
	Reconnects  uint64
	Disconnects uint64
	// Connected reports whether a connection is currently installed.
	Connected bool
	// Queued/Sent/Dropped are the report queue ledger; SentBytes is
	// total wire bytes including framing, Hellos and pings.
	Queued    uint64
	Sent      uint64
	Dropped   uint64
	SentBytes uint64
	// Pings/Pongs count heartbeats sent and echoes received.
	Pings uint64
	Pongs uint64
	// Degraded is the current degraded-mode state; Enters/Exits count
	// its transitions. SinceContact is the age of the last inbound
	// frame from the controller.
	Degraded       bool
	DegradedEnters uint64
	DegradedExits  uint64
	SinceContact   time.Duration
	// Traced reports whether the current generation negotiated report
	// tracing; TracedReports counts reports shipped in MsgTraced
	// envelopes over the agent's lifetime.
	Traced        bool
	TracedReports uint64
}

// Stats returns the agent's fault-plane ledger: connection
// generations, queue counters, heartbeat counts and degraded-mode
// transitions.
func (a *Agent) Stats() AgentStats {
	deg := a.Degraded() // refresh the transition counters first
	now := a.clk.Now()
	a.stateMu.Lock()
	s := AgentStats{
		Generation:     a.gen,
		Reconnects:     a.reconnects,
		Disconnects:    a.disconnects,
		Connected:      a.cur != nil,
		Degraded:       deg,
		DegradedEnters: a.degEnters,
		DegradedExits:  a.degExits,
		SinceContact:   now.Sub(a.lastContact),
		Traced:         a.traced,
	}
	a.stateMu.Unlock()
	s.Queued = a.queued.Load()
	s.Sent = a.sent.Load()
	s.Dropped = a.dropped.Load()
	s.SentBytes = a.sentBytes.Load()
	s.Pings = a.pings.Load()
	s.Pongs = a.pongs.Load()
	s.TracedReports = a.tracedRpt.Load()
	return s
}

// Err reports the agent's standing error: a report that failed to
// encode, or a terminal transport state. For a reconnecting agent a
// transient outage is not an error (Err stays nil while the
// supervisor redials; see Degraded and Stats) — only an exhausted
// retry budget is. For a fail-fast agent any transport error is
// terminal, as before.
func (a *Agent) Err() error {
	if e, ok := a.dataErr.Load().(error); ok {
		return e
	}
	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	if a.permErr != nil {
		return a.permErr
	}
	if !a.redialable && a.lastErr != nil {
		return a.lastErr
	}
	return nil
}

// writer drains the report queue onto the current connection, one
// goroutine for the agent's whole lifetime. On a write failure it
// declares the generation dead and retries the same frame on the next
// one — a report that made it into the queue is never lost to an
// outage, only to final Close.
func (a *Agent) writer() {
	for {
		select {
		case <-a.done:
			return
		case f := <-a.sendq:
			payload := f.payload
			var err error
			if f.typ == MsgBatch {
				payload, err = encodeBatch(f.batch)
			}
			if err != nil {
				a.dataErr.Store(err)
				a.dropped.Add(1)
				continue
			}
			if !a.ship(f, payload) {
				return
			}
		}
	}
}

// ship writes one frame, waiting out connection gaps and retrying
// across generations; false means the agent closed first. Whether the
// report ships traced is decided here, per attempt, against the
// current generation's negotiated state — a report captured while
// traced but retried against an untraced successor ships bare, and
// vice versa, so mixed fleets never see an envelope they cannot parse.
func (a *Agent) ship(f outFrame, payload []byte) bool {
	for {
		a.stateMu.Lock()
		g, up, traced := a.cur, a.upCh, a.traced
		a.stateMu.Unlock()
		if g == nil {
			select {
			case <-a.done:
				return false
			case <-up:
				continue
			}
		}
		typ, wire := f.typ, payload
		if traced && f.capture != 0 {
			buf, err := encodeTracedReport(f.typ, codec.TraceContext{
				AgentID: a.name, Seq: f.seq, CaptureNanos: f.capture,
			}, payload, a.traceBuf)
			if err == nil {
				a.traceBuf = buf
				typ, wire = MsgTraced, buf
			}
			// Envelope failure (a report at the frame ceiling): ship bare
			// rather than lose data to instrumentation.
		}
		if err := writeFrame(g.conn, typ, wire); err != nil {
			a.failGen(g, err)
			continue
		}
		switch typ {
		case MsgPing:
			// Pings are liveness, not reports: they keep their own
			// counter so report-drain conditions (Sent vs controller
			// counts) stay exact.
		case MsgTraced:
			a.sent.Add(1)
			a.tracedRpt.Add(1)
		default:
			a.sent.Add(1)
		}
		a.sentBytes.Add(uint64(len(wire)) + 9)
		return true
	}
}

// reader consumes frames from one connection generation: verdicts,
// pongs and resync requests.
func (a *Agent) reader(g *generation) {
	defer a.readerWg.Done()
	for {
		msgType, payload, err := readFrame(g.conn)
		if err != nil {
			a.failGen(g, err)
			return
		}
		a.touch()
		switch msgType {
		case MsgPong:
			seq, err := decodePing(payload)
			if err != nil {
				a.failGen(g, err)
				return
			}
			switch seq {
			case traceProbeAck:
				// Tracing-aware controller: enable MsgTraced envelopes
				// for this generation (only if it is still current — a
				// stale reader must not re-trace a successor connection).
				a.stateMu.Lock()
				if a.cur == g {
					a.traced = true
				}
				a.stateMu.Unlock()
			case traceProbeSeq:
				// v1 controller echoed the probe verbatim: stay untraced.
			default:
				a.pongs.Add(1)
			}
		case MsgResync:
			if a.mode != ReportDelta {
				continue
			}
			a.trace.Record(obs.EvResync, a.name, 0)
			// The controller lost the chain (dropped record on our
			// side, restart on its side): re-base and ship right away,
			// so the chain heals even if traffic has stopped.
			a.mu.Lock()
			a.tracker.ForceBase()
			a.shipDeltaLocked()
			a.mu.Unlock()
		case MsgVerdict:
			vs, err := decodeVerdicts(payload)
			if err != nil {
				a.failGen(g, err)
				return
			}
			select {
			case a.verdicts <- vs:
			case <-g.done:
				return
			case <-a.done:
				return
			}
		default:
			a.failGen(g, fmt.Errorf("netwide: unexpected message type %d from controller", msgType))
			return
		}
	}
}

// Close terminates the agent and its connection immediately; queued
// reports the writer has not shipped yet are lost. Error paths and
// teardown-on-failure use this; a graceful exit wants Shutdown.
// Idempotent.
func (a *Agent) Close() error {
	var err error
	a.closed.Do(func() {
		close(a.done)
		a.stateMu.Lock()
		g := a.cur
		a.stateMu.Unlock()
		if g != nil {
			err = g.conn.Close()
		}
	})
	return err
}

// Shutdown is the graceful Close: it Flushes the pending partial
// report, waits up to timeout for the writer to drain everything
// queued, and then closes the connection — so the tail of the stream
// reaches the controller instead of dying in the send queue. The
// caller must have stopped Observing. A broken transport cuts the
// wait short (unless the agent is mid-reconnect, in which case the
// drain waits for the retry to land or the deadline to pass);
// timeout <= 0 skips straight to Close.
//
//memento:deterministic
func (a *Agent) Shutdown(timeout time.Duration) error {
	a.Flush()
	deadline := a.clk.Now().Add(timeout)
	for a.sent.Load() < a.queued.Load() && a.Err() == nil && a.clk.Now().Before(deadline) {
		select {
		case <-a.done:
			return a.Close()
		case <-a.clk.After(time.Millisecond):
		}
	}
	return a.Close()
}
