// Chaos acceptance test for the fleet fault-tolerance plane: a delta
// fleet driven through faultnet injectors — frame drops, a one-way
// partition, controller-side resets — must reconverge after heal to
// the exact OutputMerged of a fault-free snapshot fleet on the same
// trace, with the coverage ledger accounting for every packet.

package netwide

import (
	"fmt"
	"net"
	"testing"
	"time"

	"memento/internal/faultnet"
	"memento/internal/hierarchy"
)

// chaosFleet is deltaFleet with a faultnet injector on the controller
// listener and one per agent dial path, plus tight liveness knobs so
// partitions resolve inside test time.
func chaosFleet(t *testing.T, params Params, agents int) (*Controller, []*Agent, *faultnet.Injector, []*faultnet.Injector) {
	t.Helper()
	ctrl, err := NewController(ControllerConfig{
		Hier: hierarchy.OneD{}, Params: params, Counters: 2048, Seed: 42,
		HandshakeTimeout: 300 * time.Millisecond,
		ReadTimeout:      500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctrlInj := faultnet.NewInjector(100)
	go ctrl.Serve(ctrlInj.WrapListener(ln))
	t.Cleanup(func() { ctrl.Close() })
	addr := ln.Addr().String()

	var as []*Agent
	var injs []*faultnet.Injector
	for i := 0; i < agents; i++ {
		inj := faultnet.NewInjector(uint64(200 + i))
		injs = append(injs, inj)
		a, err := DialAgent(addr, AgentConfig{
			Name:             fmt.Sprintf("agent-%d", i),
			Params:           params,
			Seed:             uint64(i + 1),
			Report:           ReportDelta,
			Hier:             hierarchy.OneD{},
			SnapshotWindow:   params.Window / agents,
			SnapshotCounters: 256,
			SnapshotEvery:    256,
			DeltaFloor:       -1, // exact chains: merged output must match snapshots bit-for-bit
			QueueLen:         1 << 12,
			Reconnect:        true,
			BackoffBase:      5 * time.Millisecond,
			BackoffMax:       50 * time.Millisecond,
			HeartbeatEvery:   25 * time.Millisecond,
			DegradedAfter:    2 * time.Second,
			Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
				c, err := net.DialTimeout("tcp", addr, timeout)
				if err != nil {
					return nil, err
				}
				return inj.WrapConn(c), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		as = append(as, a)
	}
	waitFor(t, "chaos agents to join", func() bool { return ctrl.Agents() == agents })
	return ctrl, as, ctrlInj, injs
}

func TestChaosFleetConverges(t *testing.T) {
	const window = 1 << 13
	const agents = 4
	params := Params{Budget: 0.5, BatchSize: 16, Window: window}

	// The reference: a fault-free snapshot fleet on clean TCP.
	refCtrl, refAgents := deltaFleet(t, hierarchy.OneD{}, params, 2048, agents, ReportSnapshot, 0)
	// The subject: a delta fleet with fault injection on every path.
	ctrl, as, ctrlInj, injs := chaosFleet(t, params, agents)

	perAgent := make([]uint64, agents)
	drive := func(n int, seed uint64) {
		for i, p := range fleetStream(n, seed) {
			refAgents[i%agents].Observe(p)
			as[i%agents].Observe(p)
			perAgent[i%agents]++
		}
	}
	settle := func() { time.Sleep(150 * time.Millisecond) } // let in-flight frames meet the faults

	// Scripted fault schedule. Each leg drives identical traffic into
	// both fleets while only the chaos fleet's transport misbehaves.
	drive(2048, 9) // clean warm-up

	// Leg 1 — frame drops on two agents: whole frames vanish, so the
	// controller sees epoch gaps and must heal chains via MsgResync.
	injs[0].SetFault(faultnet.Fault{Drop: 0.4, Delay: 0.2, DelayBound: 2 * time.Millisecond})
	injs[1].SetFault(faultnet.Fault{Drop: 0.4, Partial: 0.3})
	drive(2048, 10)
	settle()
	injs[0].Heal()
	injs[1].Heal()

	// Leg 2 — one-way partition: agent 2 can hear the controller but
	// not reach it. Its reports and pings blackhole; the controller's
	// read timeout frees the name so the post-heal redial can reclaim it.
	injs[2].Partition(false, true)
	drive(2048, 11)
	settle()
	injs[2].Heal()

	// Leg 3 — controller-side resets: the controller's own writes
	// (pongs, verdicts) kill connections mid-frame.
	ctrlInj.SetFault(faultnet.Fault{Reset: 0.5})
	drive(1024, 12)
	settle()
	ctrlInj.Heal()

	// Post-heal tail on a clean network, then flush everything.
	drive(2048, 13)
	for i := 0; i < agents; i++ {
		refAgents[i].Flush()
		as[i].Flush()
	}

	// Convergence gate: the cumulative coverage ledger must land on
	// exactly the packets each agent observed — every frame lost to a
	// drop, partition or reset is repaid by a later base/delta, never
	// silently absorbed.
	covered := func(c *Controller, name string) uint64 {
		for _, st := range c.AgentStats() {
			if st.Name == name {
				return st.Covered
			}
		}
		return 0
	}
	for i, a := range as {
		i, a := i, a
		waitFor(t, fmt.Sprintf("%s coverage to converge", a.Name()), func() bool {
			return covered(ctrl, a.Name()) == perAgent[i]
		})
	}
	for i, a := range refAgents {
		i, a := i, a
		waitFor(t, fmt.Sprintf("reference %s coverage", a.Name()), func() bool {
			return covered(refCtrl, a.Name()) == perAgent[i]
		})
	}
	for _, a := range as {
		if err := a.Err(); err != nil {
			t.Fatalf("agent %s ended with error: %v", a.Name(), err)
		}
	}

	// The faults must actually have fired, and the plane must have
	// exercised its heal paths: chains re-based (resyncs) and
	// connections re-established (reconnects).
	for i, inj := range injs[:2] {
		if st := inj.Stats(); st.Drops == 0 {
			t.Fatalf("agent %d injector never dropped: %+v", i, st)
		}
	}
	if st := injs[2].Stats(); st.Blackholed == 0 {
		t.Fatalf("partition never blackholed: %+v", st)
	}
	if st := ctrlInj.Stats(); st.Resets == 0 {
		t.Fatalf("controller injector never reset: %+v", st)
	}
	if ctrl.Resyncs() == 0 {
		t.Fatal("dropped chain frames produced no resync")
	}
	var reconnects uint64
	for _, a := range as {
		reconnects += a.Stats().Reconnects
	}
	if reconnects == 0 {
		t.Fatal("partition and resets produced no reconnects")
	}

	// The acceptance bar: after heal, the chaos fleet's merged HHH
	// output is indistinguishable from the fault-free fleet's.
	for _, theta := range []float64{0.02, 0.05, 0.15} {
		entriesEqual(t, fmt.Sprintf("chaos theta %g", theta),
			ctrl.OutputMerged(theta), refCtrl.OutputMerged(theta))
	}
	if ctrl.MergedWindow() != refCtrl.MergedWindow() {
		t.Fatalf("merged windows %d vs %d", ctrl.MergedWindow(), refCtrl.MergedWindow())
	}
}
