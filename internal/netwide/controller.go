// Controller: the central side of the network-wide protocol, running
// D-Memento / D-H-Memento over agent reports.
//
// Liveness (DESIGN.md §10): handshakes and steady-state reads run
// under deadlines, MsgPing heartbeats are echoed as MsgPong, the
// coverage ledger keeps the cumulative max per agent so report loss
// is never silent, and with StaleTTL set agents whose last report has
// aged out are quarantined from OutputMerged until they report again.

package netwide

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"sync"
	"time"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/delta"
	"memento/internal/hhhset"
	"memento/internal/hierarchy"
	"memento/internal/obs"
	"memento/internal/rng"
	"memento/internal/shard"
)

// ControllerConfig parameterizes the central controller.
type ControllerConfig struct {
	// Hier is the prefix domain (hierarchy.Flows for plain network-wide
	// HH). Required.
	Hier hierarchy.Hierarchy
	// Params are the shared deployment constants; agents whose Hello
	// disagrees on τ or batch size are rejected (a mixed fleet would
	// silently skew estimates).
	Params Params
	// Counters sizes the controller's sketch.
	Counters int
	// Delta is the output confidence (default 0.001).
	Delta float64
	// Seed fixes the controller-side randomness.
	Seed uint64
	// Log receives connection-level events; nil discards them.
	Log *slog.Logger
	// WriteTimeout bounds each per-agent verdict write in Broadcast;
	// an agent that cannot absorb a frame within it is dropped (its
	// connection closed) instead of stalling mitigation for everyone.
	// Default 2s.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for a new connection's Hello
	// frame: a connection that dials and then says nothing used to
	// park its handler goroutine forever. Default 10s; negative
	// disables.
	HandshakeTimeout time.Duration
	// ReadTimeout bounds each steady-state frame read. Agents
	// heartbeat every second by default, so a healthy but idle
	// connection stays well inside it; one that went silent (dead
	// peer, one-way partition) is closed and its handler freed.
	// Default 90s; negative disables.
	ReadTimeout time.Duration
	// StaleTTL quarantines dead agents out of OutputMerged: an agent
	// whose last report is older than the TTL stops contributing its
	// frozen window to merged outputs (the ledger entry survives, and
	// the agent re-enters the merge with its next report). 0 disables
	// — merged outputs then serve stale state forever, the
	// pre-fault-plane behavior.
	StaleTTL time.Duration
	// DisableTracing makes the controller behave like a pre-tracing
	// peer: trace probes are echoed verbatim instead of acked, so
	// probing agents stay untraced (their reports ship bare). The
	// interop tests use it to pin the no-flag-day contract; production
	// controllers leave it false and trace whenever agents ask.
	DisableTracing bool
	// Obs, when set, registers the controller's transfer ledger and
	// fleet gauges (memento_controller_*). One controller per registry:
	// names are flat.
	Obs *obs.Registry
	// Trace, when set, receives fleet lifecycle events: agent
	// connect/disconnect, chain resyncs, stale-TTL quarantine and
	// requalification, and checkpoint writes.
	Trace *obs.Trace
}

// Controller accepts agent connections, folds their reports into a
// single (H-)Memento instance and can broadcast mitigation verdicts.
type Controller struct {
	cfg  ControllerConfig
	hier hierarchy.Hierarchy
	h    int

	mu  sync.Mutex
	hh  *core.HHH
	src *rng.Source

	// outMu guards the reusable query snapshot. Output holds mu only
	// for the snapshot copy, so absorbing agent reports never stalls
	// behind a running HHH-set computation (and vice versa: queries
	// run lock-free on the captured state).
	outMu sync.Mutex
	snap  core.HHHSnapshot
	out   []core.HeavyPrefix

	connMu    sync.Mutex
	conns     map[*agentConn]string
	listeners []net.Listener

	// snapMu guards the per-agent state of the snapshot-shipping mode:
	// each agent's latest decoded sketch and the per-agent transfer
	// ledger. Snapshots are keyed by agent name and survive
	// disconnects, so merged outputs keep covering nodes that just
	// went away (their windows go stale, they don't vanish).
	snapMu sync.Mutex
	agents map[string]*agentState

	// mergeMu guards the reusable Merger behind OutputMerged.
	mergeMu sync.Mutex
	merger  shard.Merger
	mout    []core.HeavyPrefix
	msnaps  []*core.HHHSnapshot

	// The transfer ledger: always-allocated obs counters (cache-line
	// padded, nil-safe by construction here) so the same cells back
	// both the accessor API and the Obs registry export.
	reports   *obs.Counter
	snapshots *obs.Counter
	deltas    *obs.Counter
	resyncs   *obs.Counter
	pings     *obs.Counter
	bytesIn   *obs.Counter
	rejected  *obs.Counter
	dropped   *obs.Counter // agents dropped for missing a Broadcast deadline
	tracedIn  *obs.Counter // MsgTraced envelopes unwrapped
	trace     *obs.Trace   // nil when tracing is disabled

	// captureApply is the end-to-end report span histogram: capture
	// stamp (agent clock) to apply time (controller clock), nanoseconds.
	// Always allocated; exported when Obs is set.
	captureApply obs.Histogram

	// ckpt guards the warm-restart chain encoder (EnableDeltaCheckpoints).
	ckptMu  sync.Mutex
	tracker *delta.Tracker

	closed sync.Once
	done   chan struct{}
	wg     sync.WaitGroup
}

// agentConn wraps one agent's connection with a write mutex: the
// connection's handler (resync requests) and Broadcast (verdicts)
// both write frames, and each write brackets itself with a deadline —
// unserialized, one goroutine's deadline-clear could strip the
// other's mid-write, resurrecting the unbounded-stall bug the
// per-conn deadline exists to prevent.
type agentConn struct {
	net.Conn
	wmu sync.Mutex
}

// writeFrameTimeout writes one frame under the connection's write
// lock and deadline.
func (c *agentConn) writeFrameTimeout(d time.Duration, msgType byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.SetWriteDeadline(time.Now().Add(d))
	err := writeFrame(c.Conn, msgType, payload)
	c.SetWriteDeadline(time.Time{})
	return err
}

// agentState is the controller-side ledger of one agent (by name).
type agentState struct {
	reports    uint64
	snapshots  uint64
	deltas     uint64
	resyncs    uint64
	bytes      uint64
	covered    uint64
	snap       *core.HHHSnapshot // latest applied sketch state, nil in sampled mode
	lastReport time.Time         // when the last state-bearing report arrived (stale TTL input)
	stale      bool              // quarantine edge-detector for trace events (OutputMerged sets, account clears)

	// Report-tracing ledger: traced counts applied MsgTraced reports,
	// lastCapture is the capture stamp of the newest one — "now −
	// lastCapture" is the freshness age of this agent's applied state.
	traced      uint64
	lastCapture int64
	freshReg    bool // per-agent freshness gauge registered (first-wins)
}

// AgentStat reports one agent's transfer ledger.
type AgentStat struct {
	Name      string
	Reports   uint64 // sampled batches absorbed
	Snapshots uint64 // snapshot frames absorbed
	Deltas    uint64 // chain records applied
	Resyncs   uint64 // chain re-bases the controller had to request
	Bytes     uint64 // wire bytes received (frames incl. framing overhead)
	// Covered is the packets the agent reported covering. Sampled
	// batches accumulate it; state-shipping modes report a cumulative
	// total, so for them it is exactly the packets the agent has
	// observed — frames lost in flight leave no permanent hole.
	Covered uint64
	// SinceReport is the age of the agent's last state-bearing report;
	// Stale marks agents past the StaleTTL, quarantined out of
	// OutputMerged until they report again.
	SinceReport time.Duration
	Stale       bool
	// TracedReports counts applied MsgTraced reports; Freshness is the
	// age of the agent's applied state measured from its own capture
	// stamp (0 until a traced report applies). Unlike SinceReport it
	// charges queue and wire time, not just arrival gaps.
	TracedReports uint64
	Freshness     time.Duration
}

// NewController validates cfg and builds a controller.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.Hier == nil {
		return nil, errors.New("netwide: controller needs a hierarchy")
	}
	if err := cfg.Params.Normalize(cfg.Hier.Dims()); err != nil {
		return nil, err
	}
	if cfg.Counters <= 0 {
		return nil, errors.New("netwide: controller needs Counters")
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x636f6e74726f6c // "control"
	}
	h := cfg.Hier.H()
	tau := cfg.Params.Tau()
	v := int(math.Round(float64(h) / tau))
	if v < h {
		v = h
	}
	hh, err := core.NewHHH(core.HHHConfig{
		Hierarchy: cfg.Hier,
		Window:    cfg.Params.Window,
		Counters:  cfg.Counters,
		V:         v,
		Delta:     cfg.Delta,
		Seed:      seed + 1,
	})
	if err != nil {
		return nil, err
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 90 * time.Second
	}
	c := &Controller{
		cfg:       cfg,
		hier:      cfg.Hier,
		h:         h,
		hh:        hh,
		src:       rng.New(seed),
		conns:     map[*agentConn]string{},
		agents:    map[string]*agentState{},
		done:      make(chan struct{}),
		reports:   &obs.Counter{},
		snapshots: &obs.Counter{},
		deltas:    &obs.Counter{},
		resyncs:   &obs.Counter{},
		pings:     &obs.Counter{},
		bytesIn:   &obs.Counter{},
		rejected:  &obs.Counter{},
		dropped:   &obs.Counter{},
		tracedIn:  &obs.Counter{},
		trace:     cfg.Trace,
	}
	if r := cfg.Obs; r != nil {
		r.RegisterCounter("memento_controller_reports_total", c.reports)
		r.RegisterCounter("memento_controller_snapshots_total", c.snapshots)
		r.RegisterCounter("memento_controller_deltas_total", c.deltas)
		r.RegisterCounter("memento_controller_resyncs_total", c.resyncs)
		r.RegisterCounter("memento_controller_pings_total", c.pings)
		r.RegisterCounter("memento_controller_bytes_in_total", c.bytesIn)
		r.RegisterCounter("memento_controller_rejected_total", c.rejected)
		r.RegisterCounter("memento_controller_dropped_agents_total", c.dropped)
		r.RegisterCounter("memento_controller_traced_reports_total", c.tracedIn)
		r.RegisterHistogram("memento_controller_capture_apply_ns", &c.captureApply)
		r.RegisterFunc("memento_controller_agents",
			func() float64 { return float64(c.Agents()) })
		r.RegisterFunc("memento_controller_stale_agents",
			func() float64 { return float64(c.StaleAgents()) })
	}
	return c, nil
}

// Serve accepts agents on ln until Close is called. It blocks; run it
// in a goroutine.
func (c *Controller) Serve(ln net.Listener) error {
	c.connMu.Lock()
	c.listeners = append(c.listeners, ln)
	c.connMu.Unlock()
	select {
	case <-c.done:
		ln.Close()
		return nil
	default:
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return nil
			default:
				return fmt.Errorf("netwide: accept: %w", err)
			}
		}
		select {
		case <-c.done: // accept raced Close; don't start a handler
			conn.Close()
			return nil
		default:
		}
		c.wg.Add(1)
		go c.handle(conn)
	}
}

// handle runs one agent connection to completion.
func (c *Controller) handle(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	log := c.cfg.Log.With("remote", conn.RemoteAddr().String())

	// Register the connection before the handshake so Close can tear
	// it down. An accept can race Close (the agent's Hello is
	// fire-and-forget, so its dial returns before this handler runs);
	// checking done under connMu makes the outcome binary — either
	// Close sees the conn in the table and closes it, or this handler
	// sees done and bails.
	wc := &agentConn{Conn: conn}
	c.connMu.Lock()
	select {
	case <-c.done:
		c.connMu.Unlock()
		return
	default:
	}
	c.conns[wc] = "" // pre-handshake placeholder; named after Hello
	c.connMu.Unlock()
	defer func() {
		c.connMu.Lock()
		delete(c.conns, wc)
		c.connMu.Unlock()
	}()

	// The handshake read runs under its own deadline: a connection
	// that never sends a Hello must not park this goroutine forever.
	if c.cfg.HandshakeTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(c.cfg.HandshakeTimeout))
	}
	msgType, payload, err := readFrame(conn)
	if err != nil {
		log.Warn("handshake read failed", "err", err)
		return
	}
	conn.SetReadDeadline(time.Time{})
	if msgType != MsgHello {
		c.rejected.Inc()
		log.Warn("first frame was not hello", "type", msgType)
		return
	}
	hello, err := decodeHello(payload)
	if err != nil {
		c.rejected.Inc()
		log.Warn("bad hello", "err", err)
		return
	}
	wantTau := c.cfg.Params.Tau()
	if math.Abs(hello.Tau-wantTau) > 1e-9 || int(hello.Batch) != c.cfg.Params.BatchSize {
		c.rejected.Inc()
		log.Warn("agent configuration mismatch",
			"agent", hello.Name, "tau", hello.Tau, "want_tau", wantTau,
			"batch", hello.Batch, "want_batch", c.cfg.Params.BatchSize)
		return
	}
	helloBytes := uint64(len(payload)) + 9
	c.connMu.Lock()
	for cn, name := range c.conns {
		if cn != wc && name == hello.Name {
			c.connMu.Unlock()
			c.rejected.Inc()
			// Per-agent state (latest snapshot, byte ledger) is keyed
			// by name, so a second live connection with the same name
			// would silently overwrite the first agent's sketch and
			// conflate the ledgers. Reconnecting after a disconnect is
			// fine — the stale entry's name is freed with its conn.
			log.Warn("duplicate agent name", "agent", hello.Name)
			return
		}
	}
	c.conns[wc] = hello.Name
	c.connMu.Unlock()
	log.Info("agent joined", "agent", hello.Name)
	// The controller cannot tell a first join from a redial (the agent
	// side records EvReconnect with its generation); here every accepted
	// handshake is a connect and every handler exit a disconnect.
	c.trace.Record(obs.EvConnect, hello.Name, 0)
	defer c.trace.Record(obs.EvDisconnect, hello.Name, 0)
	// The byte ledger counts every frame an accepted agent ships,
	// including its Hello — the bench's bytes-per-report comparison
	// charges real wire cost, not just report payloads.
	c.bytesIn.Add(helloBytes)
	c.accountBytes(hello.Name, helloBytes)

	// chain is this connection's replication follower state (delta
	// report mode). It lives with the connection: a reconnecting agent
	// restarts its chain with a base, while the last materialized
	// sketch state survives in the per-name ledger like snapshots do.
	var chain *delta.State

	for {
		// Steady-state reads run under ReadTimeout: agents heartbeat,
		// so only a genuinely unreachable peer (dead TCP, one-way
		// partition) trips it — and freeing its handler is exactly
		// what lets the agent's redial re-claim the name.
		if c.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		}
		msgType, payload, err := readFrame(conn)
		if err != nil {
			log.Info("agent left", "agent", hello.Name, "err", err)
			return
		}
		// frameBytes charges the wire cost of the frame as received —
		// including, for traced reports, the envelope the unwrap below
		// strips. The ledger accounts bytes, not payload semantics.
		frameBytes := uint64(len(payload)) + 9
		var tc codec.TraceContext
		traced := false
		if msgType == MsgTraced {
			inner, ctx, innerPayload, err := decodeTracedReport(payload)
			if err != nil {
				log.Warn("bad traced report", "agent", hello.Name, "err", err)
				return
			}
			if ctx.AgentID != hello.Name {
				// The context identifies the capture; a name that differs
				// from the handshake is a confused or hostile peer.
				log.Warn("trace context name mismatch",
					"agent", hello.Name, "context", ctx.AgentID)
				return
			}
			msgType, payload, tc, traced = inner, innerPayload, ctx, true
			c.tracedIn.Inc()
		}
		switch msgType {
		case MsgPing:
			seq, err := decodePing(payload)
			if err != nil {
				log.Warn("bad ping", "agent", hello.Name, "err", err)
				return
			}
			c.bytesIn.Add(frameBytes)
			c.accountBytes(hello.Name, frameBytes)
			pong := payload
			if seq == traceProbeSeq && !c.cfg.DisableTracing {
				// Trace probe: ack it so the agent starts wrapping reports.
				// A pre-tracing controller would echo the probe verbatim —
				// exactly what DisableTracing emulates below by falling
				// through to the ordinary heartbeat path.
				pong = encodePing(traceProbeAck)
			} else {
				c.pings.Inc()
			}
			if werr := wc.writeFrameTimeout(c.cfg.WriteTimeout, MsgPong, pong); werr != nil {
				log.Warn("pong write failed", "agent", hello.Name, "err", werr)
				return
			}
		case MsgBatch:
			batch, err := decodeBatch(payload)
			if err != nil {
				log.Warn("bad batch", "agent", hello.Name, "err", err)
				return
			}
			c.reports.Inc()
			c.bytesIn.Add(frameBytes)
			c.account(hello.Name, kindSampled, frameBytes, batch.Covered, nil)
			c.absorb(batch)
			if traced {
				c.completeTrace(hello.Name, tc)
			}
		case MsgSnapshot:
			rep, err := decodeSnapshotReport(payload)
			if err != nil {
				log.Warn("bad snapshot", "agent", hello.Name, "err", err)
				return
			}
			if !hierarchy.Same(rep.Snap.Hierarchy(), c.hier) {
				log.Warn("snapshot hierarchy mismatch",
					"agent", hello.Name, "got", rep.Snap.Hierarchy().String(), "want", c.hier.String())
				return
			}
			c.snapshots.Inc()
			c.bytesIn.Add(frameBytes)
			c.account(hello.Name, kindSnapshot, frameBytes, rep.Covered, rep.Snap)
			if traced {
				c.completeTrace(hello.Name, tc)
			}
		case MsgDelta:
			rep, err := decodeDeltaReport(payload)
			if err != nil {
				log.Warn("bad delta report", "agent", hello.Name, "err", err)
				return
			}
			c.bytesIn.Add(frameBytes)
			c.accountBytes(hello.Name, frameBytes)
			if chain == nil {
				chain = delta.NewState()
			}
			if err := chain.Apply(rep.Record); err != nil {
				if !errors.Is(err, delta.ErrEpochGap) {
					// Corrupt or misconfigured: same contract as a bad
					// snapshot — drop the connection.
					log.Warn("bad chain record", "agent", hello.Name, "err", err)
					return
				}
				// A lost record (backpressure on either side): ask for
				// a fresh base and keep the stale applied state
				// queryable, exactly like a disconnected snapshot.
				c.resyncs.Inc()
				c.accountResync(hello.Name)
				c.trace.Record(obs.EvResync, hello.Name, 0)
				log.Info("chain gap, requesting resync", "agent", hello.Name, "err", err)
				if werr := wc.writeFrameTimeout(c.cfg.WriteTimeout, MsgResync, nil); werr != nil {
					log.Warn("resync request failed", "agent", hello.Name, "err", werr)
					return
				}
				continue
			}
			if !hierarchy.Same(chain.Hierarchy(), c.hier) {
				log.Warn("chain hierarchy mismatch",
					"agent", hello.Name, "got", chain.Hierarchy().String(), "want", c.hier.String())
				return
			}
			// Materializing per record costs what decoding a full
			// snapshot frame costs — the same cadence-rate work the
			// snapshot mode already pays — and keeps the chain state
			// handler-local (lazy materialization at OutputMerged time
			// would share the State across goroutines). Bytes, not
			// apply CPU, are the delta mode's optimization target.
			snap, err := chain.Snapshot()
			if err != nil {
				log.Warn("chain state failed to materialize", "agent", hello.Name, "err", err)
				return
			}
			c.deltas.Inc()
			c.account(hello.Name, kindDelta, 0, rep.Covered, snap)
			if traced {
				c.completeTrace(hello.Name, tc)
			}
		default:
			log.Warn("unexpected frame from agent", "agent", hello.Name, "type", msgType)
			return
		}
	}
}

// reportKind tags ledger entries by how the state arrived.
type reportKind uint8

const (
	kindSampled reportKind = iota
	kindSnapshot
	kindDelta
)

// account updates an agent's transfer ledger and, for snapshot and
// delta reports, installs its latest applied sketch state. Sampled
// batches carry per-report coverage and accumulate; state-shipping
// reports carry a cumulative total and the ledger keeps the max, so a
// report lost in flight leaves no permanent hole once a later one
// lands.
func (c *Controller) account(name string, kind reportKind, bytes, covered uint64, snap *core.HHHSnapshot) {
	now := time.Now()
	c.snapMu.Lock()
	st := c.agentLocked(name)
	st.bytes += bytes
	st.lastReport = now
	requalified := st.stale
	st.stale = false
	switch kind {
	case kindSnapshot:
		st.snapshots++
		st.snap = snap
		st.covered = max(st.covered, covered)
	case kindDelta:
		st.deltas++
		st.snap = snap
		st.covered = max(st.covered, covered)
	default:
		st.reports++
		st.covered += covered
	}
	c.snapMu.Unlock()
	if requalified {
		c.trace.Record(obs.EvRequalify, name, 0)
	}
}

// accountBytes adds wire bytes to an agent's ledger without counting
// a report (Hello frames, chain records before they apply).
func (c *Controller) accountBytes(name string, bytes uint64) {
	c.snapMu.Lock()
	c.agentLocked(name).bytes += bytes
	c.snapMu.Unlock()
}

// accountResync counts one requested chain re-base.
func (c *Controller) accountResync(name string) {
	c.snapMu.Lock()
	c.agentLocked(name).resyncs++
	c.snapMu.Unlock()
}

// completeTrace closes one report span at apply time: the capture→apply
// latency lands in the histogram and the event trace, and the agent's
// capture stamp feeds its freshness gauge. Latencies mix the agent's
// clock (capture) with the controller's (apply); on one host that skew
// is noise, across hosts the histogram measures clock offset plus
// transit — which is still the operative answer to "how old is the
// state I am querying".
func (c *Controller) completeTrace(name string, tc codec.TraceContext) {
	lat := time.Now().UnixNano() - tc.CaptureNanos
	if lat < 0 {
		lat = 0 // agent clock ahead of ours; clamp rather than wrap
	}
	c.captureApply.Observe(uint64(lat))
	c.trace.Record(obs.EvReportSpan, name, uint64(lat))
	c.snapMu.Lock()
	st := c.agentLocked(name)
	st.traced++
	st.lastCapture = tc.CaptureNanos
	register := !st.freshReg && c.cfg.Obs != nil
	st.freshReg = st.freshReg || register
	c.snapMu.Unlock()
	if register {
		// Freshness: age of this agent's applied state, measured from
		// its own capture stamp. Registered lazily on the first traced
		// report; the registry is first-wins, so a reconnecting agent
		// (same name, same ledger entry) never double-registers.
		c.cfg.Obs.RegisterFunc("memento_controller_freshness_ns_"+metricName(name),
			func() float64 {
				c.snapMu.Lock()
				cap := c.agentLocked(name).lastCapture
				c.snapMu.Unlock()
				if cap == 0 {
					return 0
				}
				return float64(time.Now().UnixNano() - cap)
			})
	}
}

// metricName folds an agent name into the exported-metric charset
// ([a-z0-9_]): uppercase is lowered, everything else not in the set
// becomes '_'.
func metricName(name string) string {
	b := []byte(name)
	for i, ch := range b {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= '0' && ch <= '9', ch == '_':
		case ch >= 'A' && ch <= 'Z':
			b[i] = ch + ('a' - 'A')
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// agentLocked returns name's ledger entry; the caller holds snapMu.
func (c *Controller) agentLocked(name string) *agentState {
	st := c.agents[name]
	if st == nil {
		st = &agentState{}
		c.agents[name] = st
	}
	return st
}

// absorb folds one report into the sketch (Section 4.3's controller
// algorithm): a Full update per sample on a uniformly chosen prefix
// pattern, then Window updates for the remaining covered packets.
func (c *Controller) absorb(b Batch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pkt := range b.Samples {
		i := 0
		if c.h > 1 {
			i = c.src.Intn(c.h)
		}
		c.hh.FullUpdatePrefix(c.hier.Prefix(pkt, i))
	}
	for j := uint64(len(b.Samples)); j < b.Covered; j++ {
		c.hh.WindowUpdate()
	}
}

// Estimate returns the network-wide window frequency estimate for a
// prefix.
func (c *Controller) Estimate(p hierarchy.Prefix) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hh.Query(p)
}

// Output returns the network-wide HHH set at threshold theta. The
// sketch is captured under the ingest lock (a few slab copies); the
// set computation itself runs on the snapshot, lock-free.
func (c *Controller) Output(theta float64) []hhhset.Entry {
	c.outMu.Lock()
	defer c.outMu.Unlock()
	c.mu.Lock()
	c.hh.SnapshotInto(&c.snap)
	c.mu.Unlock()
	c.out = c.snap.OutputTo(theta, c.out[:0])
	out := make([]hhhset.Entry, len(c.out))
	for i, e := range c.out {
		out[i] = hhhset.Entry{Prefix: e.Prefix, Estimate: e.Estimate, Conditioned: e.Conditioned}
	}
	return out
}

// Broadcast pushes verdicts to every connected agent, returning the
// number of agents reached. Each write runs under the configured
// WriteTimeout: one stalled agent (dead TCP peer, full pipe) used to
// block the loop — and so Mitigate — indefinitely; now it is dropped
// (connection closed, handler cleans up, DroppedAgents counts it)
// while the rest of the fleet still receives the verdicts.
func (c *Controller) Broadcast(vs []Verdict) (int, error) {
	payload, err := encodeVerdicts(vs)
	if err != nil {
		return 0, err
	}
	c.connMu.Lock()
	conns := make([]*agentConn, 0, len(c.conns))
	names := make([]string, 0, len(c.conns))
	for conn, name := range c.conns {
		if name == "" { // pre-handshake: not an agent yet
			continue
		}
		conns = append(conns, conn)
		names = append(names, name)
	}
	c.connMu.Unlock()
	n := 0
	for i, conn := range conns {
		if err := conn.writeFrameTimeout(c.cfg.WriteTimeout, MsgVerdict, payload); err != nil {
			c.dropped.Inc()
			c.cfg.Log.Warn("dropping agent: verdict write failed",
				"agent", names[i], "err", err)
			conn.Close()
			continue
		}
		n++
	}
	return n, nil
}

// Mitigate computes the HHH set at theta and broadcasts the given
// action for every heavy subnet above fully-specified granularity
// (the DDoS application of Section 6.4). It returns the verdicts sent.
//
// Membership in the HHH set uses conditioned frequencies padded with
// the sampling slack, which guarantees coverage (no attacking subnet
// is missed) at the cost of borderline false positives. Blocking a
// subnet is a different trade-off, so a verdict is only issued when
// the subnet's frequency *estimate* itself reaches theta·W.
func (c *Controller) Mitigate(theta float64, act Action) ([]Verdict, error) {
	entries := c.Output(theta)
	threshold := theta * float64(c.hh.EffectiveWindow())
	var vs []Verdict
	for _, e := range entries {
		p := e.Prefix
		if p.SrcLen == 0 || p.DstLen != 0 {
			continue // never block the whole internet; src-subnets only
		}
		if e.Estimate < threshold {
			continue // in the set only via the sampling margin
		}
		vs = append(vs, Verdict{Subnet: p.Src, PrefixBytes: p.SrcLen, Act: act})
	}
	if len(vs) == 0 {
		return nil, nil
	}
	if _, err := c.Broadcast(vs); err != nil {
		return nil, err
	}
	return vs, nil
}

// OutputMerged returns the network-wide HHH set computed from the
// latest snapshot each snapshot-shipping agent delivered, merged with
// the shard layer's estimate math (shard.Merger): the global window
// is the sum of the agents' windows, each agent's contribution is
// skew-corrected by its share of the captured update counts, and the
// sampling compensations combine as a root sum of squares. Agents in
// sampled mode contribute nothing here — query Output for the sampled
// sketch. The merge runs entirely on the stored immutable snapshots:
// absorbing new reports is never blocked by an output computation.
func (c *Controller) OutputMerged(theta float64) []hhhset.Entry {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()
	c.msnaps = c.msnaps[:0]
	now := time.Now()
	var quarantined []string // first-time quarantines this scan, traced after unlock
	c.snapMu.Lock()
	for name, st := range c.agents {
		if st.snap == nil {
			continue
		}
		if c.cfg.StaleTTL > 0 && now.Sub(st.lastReport) > c.cfg.StaleTTL {
			// Quarantined: a dead agent's frozen window must not haunt
			// merged outputs forever. Its next report re-admits it.
			if !st.stale && c.trace != nil {
				st.stale = true
				quarantined = append(quarantined, name)
			}
			continue
		}
		c.msnaps = append(c.msnaps, st.snap)
	}
	c.snapMu.Unlock()
	for _, name := range quarantined {
		c.trace.Record(obs.EvQuarantine, name, 0)
	}
	c.mout = c.merger.Output(c.hier, c.msnaps, theta, c.mout[:0])
	out := make([]hhhset.Entry, len(c.mout))
	for i, e := range c.mout {
		out[i] = hhhset.Entry{Prefix: e.Prefix, Estimate: e.Estimate, Conditioned: e.Conditioned}
	}
	return out
}

// MergedSnapshots appends the latest applied snapshot of every
// non-stale state-shipping agent to dst — the same set OutputMerged
// merges — and returns it. The snapshots are immutable; the audit
// plane feeds them to a shard.Merger (Prepare/Bounds/Release) to
// compare exact per-key counts against the merged fleet bounds.
func (c *Controller) MergedSnapshots(dst []*core.HHHSnapshot) []*core.HHHSnapshot {
	now := time.Now()
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	for _, st := range c.agents {
		if st.snap == nil {
			continue
		}
		if c.cfg.StaleTTL > 0 && now.Sub(st.lastReport) > c.cfg.StaleTTL {
			continue
		}
		dst = append(dst, st.snap)
	}
	return dst
}

// MergedWindow returns the merged effective window the latest
// OutputMerged computed over (0 before any snapshot arrives or merge
// runs).
func (c *Controller) MergedWindow() int {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()
	return c.merger.Window()
}

// AgentStats returns the per-agent transfer ledger: reports,
// snapshots, wire bytes and covered packets, the controller-side half
// of the accuracy-vs-bandwidth accounting. Entries survive
// disconnects.
func (c *Controller) AgentStats() []AgentStat {
	now := time.Now()
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	out := make([]AgentStat, 0, len(c.agents))
	for name, st := range c.agents {
		age := now.Sub(st.lastReport)
		var fresh time.Duration
		if st.lastCapture != 0 {
			fresh = time.Duration(now.UnixNano() - st.lastCapture)
		}
		out = append(out, AgentStat{
			Name: name, Reports: st.reports, Snapshots: st.snapshots,
			Deltas: st.deltas, Resyncs: st.resyncs,
			Bytes: st.bytes, Covered: st.covered,
			SinceReport:   age,
			Stale:         c.cfg.StaleTTL > 0 && age > c.cfg.StaleTTL,
			TracedReports: st.traced,
			Freshness:     fresh,
		})
	}
	return out
}

// EnableDeltaCheckpoints creates the controller's warm-restart chain
// encoder (restore plane, exact fidelity). chain 0 draws a random
// identity. Idempotent after the first call.
func (c *Controller) EnableDeltaCheckpoints(chain uint64) error {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	if c.tracker != nil {
		return nil
	}
	// The tracker hooks the sketch's dirty plane; take the ingest lock
	// so enabling never races an absorb.
	c.mu.Lock()
	tr, err := delta.NewTracker(c.hh, delta.TrackerConfig{Chain: chain, Restore: true})
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.tracker = tr
	return nil
}

// WriteChain writes the controller sketch's next chain record to w —
// a base when rebase is set or the chain needs one — and reports
// whether a base was written. Implements delta.Source: hand the
// controller to a delta.Checkpointer for periodic warm-restart
// checkpoints. The ingest lock is held only for the capture.
func (c *Controller) WriteChain(w io.Writer, rebase bool) (bool, error) {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	if c.tracker == nil {
		return false, errors.New("netwide: delta checkpoints not enabled")
	}
	if rebase {
		c.tracker.ForceBase()
	}
	c.mu.Lock()
	err := c.tracker.Capture()
	c.mu.Unlock()
	if err != nil {
		return false, err
	}
	record, base, err := c.tracker.AppendCaptured(nil)
	if err != nil {
		return base, err
	}
	_, err = w.Write(record)
	if err == nil {
		c.trace.Record(obs.EvCheckpoint, "controller", uint64(len(record)))
	}
	return base, err
}

// RestoreChain rehydrates the controller's sketch from a warm-restart
// chain: the base record stream followed by its deltas in order
// (delta.FindChain's layout). The chain's configuration must match
// the controller's (codec.ErrConfigMismatch otherwise); on success
// the sketch resumes sliding exactly where the last record left it.
func (c *Controller) RestoreChain(base io.Reader, deltas ...io.Reader) error {
	st := delta.NewState()
	apply := func(r io.Reader) error {
		rec, err := io.ReadAll(io.LimitReader(r, codec.MaxRecord+1))
		if err != nil {
			return err
		}
		return st.Apply(rec)
	}
	if err := apply(base); err != nil {
		return fmt.Errorf("netwide: chain base: %w", err)
	}
	for i, d := range deltas {
		if err := apply(d); err != nil {
			return fmt.Errorf("netwide: chain delta %d: %w", i, err)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hh.RestoreFrom(snap)
}

// Agents returns the number of connected agents (handshake complete).
func (c *Controller) Agents() int {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	n := 0
	for _, name := range c.conns {
		if name != "" {
			n++
		}
	}
	return n
}

// Reports returns the number of sampled reports absorbed.
func (c *Controller) Reports() uint64 { return c.reports.Load() }

// Snapshots returns the number of snapshot reports absorbed.
func (c *Controller) Snapshots() uint64 { return c.snapshots.Load() }

// Deltas returns the number of chain records applied.
func (c *Controller) Deltas() uint64 { return c.deltas.Load() }

// Resyncs returns the number of chain re-bases requested from agents.
func (c *Controller) Resyncs() uint64 { return c.resyncs.Load() }

// Pings returns the number of heartbeat pings answered.
func (c *Controller) Pings() uint64 { return c.pings.Load() }

// TracedReports returns the number of MsgTraced envelopes unwrapped.
func (c *Controller) TracedReports() uint64 { return c.tracedIn.Load() }

// CaptureApply snapshots the capture→apply latency histogram (traced
// reports only; empty until an agent negotiates tracing).
func (c *Controller) CaptureApply() obs.HistSnapshot {
	var s obs.HistSnapshot
	c.captureApply.Snapshot(&s)
	return s
}

// StaleAgents returns how many state-shipping agents are currently
// quarantined out of OutputMerged by the stale TTL.
func (c *Controller) StaleAgents() int {
	if c.cfg.StaleTTL <= 0 {
		return 0
	}
	now := time.Now()
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	n := 0
	for _, st := range c.agents {
		if st.snap != nil && now.Sub(st.lastReport) > c.cfg.StaleTTL {
			n++
		}
	}
	return n
}

// BytesIn returns total payload bytes received from agents (including
// per-frame framing overhead).
func (c *Controller) BytesIn() uint64 { return c.bytesIn.Load() }

// DroppedAgents returns how many agents were dropped for missing the
// Broadcast write deadline.
func (c *Controller) DroppedAgents() uint64 { return c.dropped.Load() }

// Rejected returns the number of connections refused at handshake.
func (c *Controller) Rejected() uint64 { return c.rejected.Load() }

// Close stops serving and closes all connections.
func (c *Controller) Close() error {
	c.closed.Do(func() {
		close(c.done)
		c.connMu.Lock()
		for _, ln := range c.listeners {
			ln.Close()
		}
		for conn := range c.conns {
			conn.Close()
		}
		c.connMu.Unlock()
	})
	c.wg.Wait()
	return nil
}
