package netwide

import (
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"testing"
	"time"

	"memento/internal/hierarchy"
	"memento/internal/rng"
	"memento/internal/trace"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, MsgBatch, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgBatch || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: type=%d payload=%v", typ, got)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgBatch, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[7] ^= 0xff // flip a payload byte
	if _, _, err := readFrame(bytes.NewReader(raw)); err != ErrBadChecksum {
		t.Fatalf("corrupted frame: err = %v, want ErrBadChecksum", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], MaxFrame+1)
	if _, _, err := readFrame(bytes.NewReader(head[:])); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame: err = %v", err)
	}
	if err := writeFrame(&bytes.Buffer{}, MsgBatch, make([]byte, MaxFrame)); err != ErrFrameTooLarge {
		t.Fatalf("oversized write: err = %v", err)
	}
}

func TestHelloCodec(t *testing.T) {
	in := Hello{Name: "lb-7", Tau: 0.015625, Batch: 44}
	p, err := encodeHello(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	// Malformed variants.
	for _, bad := range [][]byte{
		nil,
		{5},          // truncated name
		p[:len(p)-1], // truncated tail
		append(p, 0), // trailing junk
	} {
		if _, err := decodeHello(bad); err == nil {
			t.Fatalf("decodeHello(%v) should fail", bad)
		}
	}
	if _, err := encodeHello(Hello{Name: string(make([]byte, 300))}); err == nil {
		t.Fatal("over-long name should fail")
	}
	// Invalid tau.
	badTau, _ := encodeHello(Hello{Name: "x", Tau: 0.5, Batch: 1})
	binary.BigEndian.PutUint64(badTau[2:], math.Float64bits(1.5))
	if _, err := decodeHello(badTau); err == nil {
		t.Fatal("tau > 1 should fail")
	}
}

func TestBatchCodec(t *testing.T) {
	in := Batch{
		Covered: 1000,
		Samples: []hierarchy.Packet{{Src: 1, Dst: 2}, {Src: 0xffffffff, Dst: 0}},
	}
	p, err := encodeBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Covered != in.Covered || len(out.Samples) != 2 ||
		out.Samples[0] != in.Samples[0] || out.Samples[1] != in.Samples[1] {
		t.Fatalf("round trip: %+v", out)
	}
	// Sample count exceeding covered packets is nonsense.
	evil, _ := encodeBatch(Batch{Covered: 1, Samples: in.Samples})
	if _, err := decodeBatch(evil); err == nil {
		t.Fatal("samples > covered should fail")
	}
	if _, err := decodeBatch(p[:len(p)-3]); err == nil {
		t.Fatal("truncated batch should fail")
	}
}

func TestVerdictCodec(t *testing.T) {
	in := []Verdict{
		{Subnet: hierarchy.IPv4(10, 0, 0, 0), PrefixBytes: 1, Act: ActionDeny},
		{Subnet: hierarchy.IPv4(20, 30, 0, 0), PrefixBytes: 2, Act: ActionTarpit},
	}
	p, err := encodeVerdicts(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeVerdicts(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip: %+v", out)
	}
	// Invalid prefix length and action must be rejected.
	bad, _ := encodeVerdicts([]Verdict{{Subnet: 1, PrefixBytes: 9, Act: ActionDeny}})
	if _, err := decodeVerdicts(bad); err == nil {
		t.Fatal("prefix length 9 should fail")
	}
	bad2, _ := encodeVerdicts([]Verdict{{Subnet: 1, PrefixBytes: 1, Act: Action(7)}})
	if _, err := decodeVerdicts(bad2); err == nil {
		t.Fatal("unknown action should fail")
	}
}

func TestParamsTau(t *testing.T) {
	p := Params{Budget: 1, OverheadBytes: 64, SampleBytes: 4, BatchSize: 44, Window: 1000}
	want := 44.0 / 240
	if got := p.Tau(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Tau = %v, want %v", got, want)
	}
	p.Budget = 1e9
	if p.Tau() != 1 {
		t.Fatal("tau must cap at 1")
	}
}

// startController spins up a controller on a loopback listener.
func startController(t *testing.T, params Params, counters int) (*Controller, string) {
	t.Helper()
	c, err := NewController(ControllerConfig{
		Hier:     hierarchy.OneD{},
		Params:   params,
		Counters: counters,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(ln)
	t.Cleanup(func() { c.Close() })
	return c, ln.Addr().String()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEndToEndReporting(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 10, Window: 1 << 14}
	ctrl, addr := startController(t, params, 2048)

	const agents = 4
	var as []*Agent
	for i := 0; i < agents; i++ {
		a, err := DialAgent(addr, AgentConfig{
			Name: string(rune('a' + i)), Params: params, Seed: uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		as = append(as, a)
	}
	waitFor(t, "agents to join", func() bool { return ctrl.Agents() == agents })

	// Drive a heavy /8 plus noise through all agents.
	gen := trace.MustNewGenerator(trace.Backbone, 3)
	src := rng.New(4)
	const n = 200000
	heavyCount := 0
	for i := 0; i < n; i++ {
		p := gen.Next()
		if src.Float64() < 0.3 {
			p.Src = hierarchy.IPv4(10, byte(src.Uint32()), byte(src.Uint32()), byte(src.Uint32()))
			heavyCount++
		}
		as[i%agents].Observe(p)
	}
	for _, a := range as {
		if a.Err() != nil {
			t.Fatalf("agent %s transport error: %v", a.Name(), a.Err())
		}
	}
	waitFor(t, "reports to drain", func() bool {
		var sent uint64
		for _, a := range as {
			sent += a.Sent()
		}
		return ctrl.Reports() >= sent && sent > 0
	})

	subnet := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}
	est := ctrl.Estimate(subnet)
	want := 0.3 * float64(params.Window) // steady-state window share
	if est < 0.4*want || est > 2.5*want {
		t.Fatalf("controller estimate %v for 30%% subnet, want ≈ %v", est, want)
	}
	out := ctrl.Output(0.15)
	found := false
	for _, e := range out {
		if e.Prefix == subnet {
			found = true
		}
	}
	if !found {
		t.Fatalf("controller HHH output missing heavy subnet: %v", out)
	}
}

func TestMitigationBroadcast(t *testing.T) {
	params := Params{Budget: 8, BatchSize: 5, Window: 1 << 12}
	ctrl, addr := startController(t, params, 1024)
	a, err := DialAgent(addr, AgentConfig{Name: "lb-1", Params: params, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	waitFor(t, "agent join", func() bool { return ctrl.Agents() == 1 })

	// Flood-like: 80% of traffic from one /8. Observe never blocks on
	// the network and sheds reports under backpressure, so pace the
	// feed until the controller has absorbed enough coverage to fill
	// its window (≈ covered/report · reports ≥ W).
	src := rng.New(8)
	deadline := time.Now().Add(30 * time.Second)
	for ctrl.Reports() < 600 {
		if time.Now().After(deadline) {
			t.Fatalf("controller absorbed only %d reports (agent sent=%d dropped=%d)",
				ctrl.Reports(), a.Sent(), a.Dropped())
		}
		for i := 0; i < 1000; i++ {
			var p hierarchy.Packet
			if src.Float64() < 0.8 {
				p.Src = hierarchy.IPv4(66, byte(src.Uint32()), byte(src.Uint32()), byte(src.Uint32()))
			} else {
				p.Src = uint32(src.Uint64())
			}
			a.Observe(p)
		}
		time.Sleep(2 * time.Millisecond)
	}

	vs, err := ctrl.Mitigate(0.5, ActionDeny)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("no verdicts issued for an 80% subnet")
	}
	foundSubnet := false
	for _, v := range vs {
		if v.Subnet == hierarchy.IPv4(66, 0, 0, 0) && v.PrefixBytes == 1 {
			foundSubnet = true
		}
		if v.PrefixBytes == 0 {
			t.Fatal("must never issue a verdict for the root prefix")
		}
	}
	if !foundSubnet {
		t.Fatalf("verdicts %v missing the attacking /8", vs)
	}
	select {
	case got := <-a.Verdicts():
		if len(got) != len(vs) {
			t.Fatalf("agent received %d verdicts, want %d", len(got), len(vs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent never received the verdict broadcast")
	}
}

func TestControllerRejectsMismatchedAgent(t *testing.T) {
	params := Params{Budget: 1, BatchSize: 44, Window: 1 << 12}
	ctrl, addr := startController(t, params, 512)
	bad := params
	bad.BatchSize = 10 // different sampling regime
	a, err := DialAgent(addr, AgentConfig{Name: "rogue", Params: bad})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	waitFor(t, "rejection", func() bool { return ctrl.Rejected() == 1 })
	if ctrl.Agents() != 0 {
		t.Fatal("mismatched agent must not join")
	}
}

func TestControllerSurvivesGarbage(t *testing.T) {
	params := Params{Budget: 1, BatchSize: 1, Window: 1 << 12}
	ctrl, addr := startController(t, params, 512)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	conn.Close()

	// A well-behaved agent must still work afterwards.
	a, err := DialAgent(addr, AgentConfig{Name: "good", Params: params, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	waitFor(t, "good agent join", func() bool { return ctrl.Agents() == 1 })
	for i := 0; i < 5000; i++ {
		a.Observe(hierarchy.Packet{Src: uint32(i)})
	}
	waitFor(t, "reports despite garbage peer", func() bool { return ctrl.Reports() > 0 })
}

func TestAgentDisconnectTolerated(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 2, Window: 1 << 12}
	ctrl, addr := startController(t, params, 512)
	a, err := DialAgent(addr, AgentConfig{Name: "flaky", Params: params, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "join", func() bool { return ctrl.Agents() == 1 })
	for i := 0; i < 1000; i++ {
		a.Observe(hierarchy.Packet{Src: uint32(i % 3)})
	}
	a.Close()
	waitFor(t, "leave", func() bool { return ctrl.Agents() == 0 })
	// Controller still answers queries.
	_ = ctrl.Estimate(hierarchy.Prefix{Src: 0, SrcLen: 1})

	b, err := DialAgent(addr, AgentConfig{Name: "replacement", Params: params, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	waitFor(t, "rejoin", func() bool { return ctrl.Agents() == 1 })
}

func TestAgentValidation(t *testing.T) {
	if _, err := NewAgent(nil, AgentConfig{}); err == nil {
		t.Fatal("missing name should fail")
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if _, err := NewAgent(c1, AgentConfig{Name: "x", Params: Params{}}); err == nil {
		t.Fatal("invalid params should fail")
	}
}

func TestAgentBackpressureDrops(t *testing.T) {
	// A pipe with no reader exerts full backpressure; the agent must
	// drop reports rather than block Observe. net.Pipe is synchronous,
	// so the hello consumer must be running before NewAgent writes it.
	c1, c2 := net.Pipe()
	defer c2.Close()
	helloRead := make(chan struct{})
	go func() { // consume the hello, then stall forever
		readFrame(c2)
		close(helloRead)
	}()
	a, err := NewAgent(c1, AgentConfig{
		Name:   "blocked",
		Params: Params{Budget: 1e9, BatchSize: 1, Window: 1024}, // τ = 1
		Seed:   9, QueueLen: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	<-helloRead
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			a.Observe(hierarchy.Packet{Src: uint32(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Observe blocked on a stalled network")
	}
	if a.Dropped() == 0 {
		t.Fatal("expected dropped reports under backpressure")
	}
}
