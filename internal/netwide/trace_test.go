// Report-tracing interop: the trace context is negotiated in-band
// (a ping probe a v1 peer echoes back verbatim), so traced and
// untraced peers interoperate in every combination with no flag day.
// These tests pin all three quadrants that matter plus the traced
// round trip's observable ledger: capture→apply latency, per-agent
// freshness, and the report_span event stream.

package netwide

import (
	"testing"
	"time"

	"memento/internal/hierarchy"
	"memento/internal/obs"
	"memento/internal/rng"
)

// driveTraced dials one agent with the given trace preference, feeds
// it a stream, and waits for the controller to apply its reports.
func driveTraced(t *testing.T, ctrl *Controller, addr string, trace bool) *Agent {
	t.Helper()
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 12}
	a, err := DialAgent(addr, AgentConfig{
		Name:         "edge-1",
		Params:       params,
		Seed:         3,
		TraceReports: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	waitFor(t, "agent to join", func() bool { return ctrl.Agents() == 1 })
	src := rng.New(9)
	for i := 0; i < 50000; i++ {
		a.Observe(hierarchy.Packet{Src: src.Uint32() >> 12})
	}
	if a.Err() != nil {
		t.Fatalf("agent transport error: %v", a.Err())
	}
	waitFor(t, "reports to drain", func() bool {
		return a.Sent() > 0 && ctrl.Reports() >= a.Sent()
	})
	return a
}

// TestTracedReportingRoundTrip: a tracing agent against a tracing
// controller negotiates MsgTraced envelopes, and every applied report
// lands in the capture→apply histogram, the per-agent freshness
// ledger and the report_span event stream.
func TestTracedReportingRoundTrip(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 12}
	tr := obs.NewTrace(256)
	ctrl, addr := startControllerCfg(t, ControllerConfig{
		Hier: hierarchy.OneD{}, Params: params, Counters: 1024, Seed: 42,
		Trace: tr,
	})
	a := driveTraced(t, ctrl, addr, true)

	st := a.Stats()
	if !st.Traced {
		t.Fatalf("agent did not negotiate tracing: %+v", st)
	}
	if st.TracedReports == 0 {
		t.Fatal("agent shipped no traced reports")
	}
	if got := ctrl.TracedReports(); got != st.TracedReports {
		t.Fatalf("controller applied %d traced reports, agent shipped %d", got, st.TracedReports)
	}
	snap := ctrl.CaptureApply()
	if snap.Count != ctrl.TracedReports() {
		t.Fatalf("capture→apply histogram holds %d spans, want %d", snap.Count, ctrl.TracedReports())
	}
	if snap.Max() == 0 {
		t.Fatal("capture→apply latency recorded as zero")
	}
	if tr.Count(obs.EvReportSpan) == 0 {
		t.Fatal("no report_span events recorded")
	}

	stats := ctrl.AgentStats()
	if len(stats) != 1 {
		t.Fatalf("AgentStats has %d entries, want 1", len(stats))
	}
	if stats[0].TracedReports != st.TracedReports {
		t.Fatalf("ledger traced reports %d, want %d", stats[0].TracedReports, st.TracedReports)
	}
	if stats[0].Freshness <= 0 || stats[0].Freshness > time.Minute {
		t.Fatalf("implausible freshness %v", stats[0].Freshness)
	}
}

// TestTracedAgentUntracedController: against a pre-tracing controller
// (probe echoed verbatim) the agent must fall back to bare reports
// that still apply — the no-flag-day contract.
func TestTracedAgentUntracedController(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 12}
	ctrl, addr := startControllerCfg(t, ControllerConfig{
		Hier: hierarchy.OneD{}, Params: params, Counters: 1024, Seed: 42,
		DisableTracing: true,
	})
	a := driveTraced(t, ctrl, addr, true)

	st := a.Stats()
	if st.Traced || st.TracedReports != 0 {
		t.Fatalf("agent traced against a v1 controller: %+v", st)
	}
	if ctrl.TracedReports() != 0 {
		t.Fatalf("v1 controller counted %d traced reports", ctrl.TracedReports())
	}
	if snap := ctrl.CaptureApply(); snap.Count != 0 {
		t.Fatalf("v1 controller recorded %d capture→apply spans", snap.Count)
	}
	if ctrl.Reports() == 0 {
		t.Fatal("untraced fallback reports did not apply")
	}
}

// TestUntracedAgentTracedController: a v1 agent never sends the probe,
// so a tracing controller serves it bare reports untraced.
func TestUntracedAgentTracedController(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 12}
	ctrl, addr := startControllerCfg(t, ControllerConfig{
		Hier: hierarchy.OneD{}, Params: params, Counters: 1024, Seed: 42,
	})
	a := driveTraced(t, ctrl, addr, false)

	st := a.Stats()
	if st.Traced || st.TracedReports != 0 {
		t.Fatalf("untraced agent reports tracing: %+v", st)
	}
	if ctrl.TracedReports() != 0 {
		t.Fatalf("controller counted %d traced reports from a v1 agent", ctrl.TracedReports())
	}
	if ctrl.Reports() == 0 {
		t.Fatal("v1 reports did not apply")
	}
	stats := ctrl.AgentStats()
	if len(stats) != 1 || stats[0].Freshness != 0 {
		t.Fatalf("untraced agent should report zero freshness: %+v", stats)
	}
}
