// Tests for the snapshot-shipping report mode and the Broadcast
// write-deadline fix.

package netwide

import (
	"net"
	"sync"
	"testing"
	"time"

	"memento/internal/exact"
	"memento/internal/hierarchy"
	"memento/internal/rng"
	"memento/internal/trace"
)

func TestSnapshotReportCodec(t *testing.T) {
	a := agentForSnapshotTest(t)
	defer a.Close()
	// Feed enough to populate the local sketch, then capture a frame
	// payload directly.
	src := rng.New(5)
	for i := 0; i < 4096; i++ {
		a.hh.Update(hierarchy.Packet{Src: uint32(src.Intn(64))})
	}
	a.mu.Lock()
	a.total = 4096
	frame, ok := a.captureLocked()
	a.mu.Unlock()
	if !ok {
		t.Fatalf("capture failed: %v", a.Err())
	}
	rep, err := decodeSnapshotReport(frame.payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered != 4096 {
		t.Fatalf("covered %d, want 4096", rep.Covered)
	}
	if rep.Snap.Updates() != 4096 {
		t.Fatalf("snapshot updates %d, want 4096", rep.Snap.Updates())
	}
	// Malformed variants are rejected.
	for _, bad := range [][]byte{nil, frame.payload[:7], frame.payload[:20], append(append([]byte{}, frame.payload...), 1)} {
		if _, err := decodeSnapshotReport(bad); err == nil {
			t.Fatalf("malformed snapshot report of %d bytes accepted", len(bad))
		}
	}
}

// agentForSnapshotTest builds a snapshot-mode agent over a discarded
// pipe (frames drain to a sink reader).
func agentForSnapshotTest(t *testing.T) *Agent {
	t.Helper()
	client, server := net.Pipe()
	go func() { // sink: swallow whatever the agent writes
		buf := make([]byte, 4096)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	a, err := NewAgent(client, AgentConfig{
		Name:   "snap-test",
		Params: Params{Budget: 4, BatchSize: 10, Window: 1 << 12},
		Report: ReportSnapshot,
		Hier:   hierarchy.OneD{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestSnapshotShippingEndToEnd drives sampled and snapshot-shipping
// fleets over the same skewed stream and pins the subsystem's reason
// to exist: the merged snapshot view reconstructs the heavy hitter
// set essentially exactly, at a byte cost the ledger accounts for.
func TestSnapshotShippingEndToEnd(t *testing.T) {
	const window = 1 << 13
	const agents = 4
	params := Params{Budget: 0.5, BatchSize: 16, Window: window}
	ctrl, addr := startController(t, params, 2048)

	var as []*Agent
	for i := 0; i < agents; i++ {
		a, err := DialAgent(addr, AgentConfig{
			Name:   string(rune('A' + i)),
			Params: params,
			Seed:   uint64(i + 1),
			Report: ReportSnapshot,
			Hier:   hierarchy.OneD{},
			// Split the network window across the fleet so the merged
			// window matches it, mirroring the shard layer. The counter
			// budget divides the per-agent window, so effective windows
			// don't round up and the merged window is exact.
			SnapshotWindow:   window / agents,
			SnapshotCounters: 256,
			SnapshotEvery:    window / agents / 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		as = append(as, a)
	}
	waitFor(t, "agents to join", func() bool { return ctrl.Agents() == agents })

	// A 30% /8 flood over backbone noise.
	gen := trace.MustNewGenerator(trace.Backbone, 7)
	src := rng.New(8)
	oracle := exact.MustNewSlidingWindow[hierarchy.Prefix](window)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		p := gen.Next()
		if src.Float64() < 0.3 {
			p.Src = hierarchy.IPv4(10, byte(src.Uint32()), byte(src.Uint32()), byte(src.Uint32()))
		}
		as[i%agents].Observe(p)
		oracle.Add(hierarchy.Prefix{Src: hierarchy.MaskBytes(p.Src, 1), SrcLen: 1})
	}
	for _, a := range as {
		a.Flush()
		if a.Err() != nil {
			t.Fatalf("agent %s transport error: %v", a.Name(), a.Err())
		}
	}
	waitFor(t, "snapshots to drain", func() bool {
		var sent uint64
		for _, a := range as {
			sent += a.Sent()
		}
		return sent > 0 && ctrl.Snapshots() >= sent
	})

	if got := ctrl.MergedWindow(); got != 0 {
		t.Fatalf("MergedWindow %d before any merge, want 0", got)
	}
	out := ctrl.OutputMerged(0.15)
	if len(out) == 0 {
		t.Fatal("merged output empty")
	}
	if got := ctrl.MergedWindow(); got != window {
		t.Fatalf("merged window %d, want %d", got, window)
	}
	subnet := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}
	var found bool
	for _, e := range out {
		if e.Prefix == subnet {
			found = true
			exactCount := float64(oracle.Count(subnet))
			// Full-fidelity state: the merged estimate must sit within
			// the algorithmic band of the exact count, far tighter than
			// any sampled protocol at this budget.
			if e.Estimate < 0.8*exactCount || e.Estimate > 1.3*exactCount {
				t.Fatalf("merged estimate %v for heavy /8, exact %v", e.Estimate, exactCount)
			}
		}
	}
	if !found {
		t.Fatalf("merged output missing heavy subnet: %v", out)
	}

	// The ledger accounts for every shipped byte, per agent and total.
	stats := ctrl.AgentStats()
	if len(stats) != agents {
		t.Fatalf("AgentStats has %d entries, want %d", len(stats), agents)
	}
	var ledger uint64
	for _, st := range stats {
		if st.Snapshots == 0 || st.Bytes == 0 {
			t.Fatalf("agent %s ledger empty: %+v", st.Name, st)
		}
		if st.Reports != 0 {
			t.Fatalf("agent %s has sampled reports in snapshot mode: %+v", st.Name, st)
		}
		ledger += st.Bytes
	}
	if ledger != ctrl.BytesIn() {
		t.Fatalf("per-agent bytes %d don't sum to BytesIn %d", ledger, ctrl.BytesIn())
	}
}

// TestBroadcastDropsStalledAgent pins the write-deadline fix: a
// stalled agent (nothing reading its side of a synchronous pipe) no
// longer blocks Broadcast — it is dropped while healthy agents still
// receive the verdicts.
func TestBroadcastDropsStalledAgent(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 4, Window: 1 << 10}
	c, err := NewController(ControllerConfig{
		Hier:         hierarchy.OneD{},
		Params:       params,
		Counters:     256,
		WriteTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Healthy agent: a real Agent whose reader consumes verdicts.
	healthyClient, healthyServer := net.Pipe()
	c.wg.Add(1)
	go c.handle(healthyServer)
	healthy, err := NewAgent(healthyClient, AgentConfig{Name: "healthy", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	// Stalled agent: performs the handshake, then never reads again. A
	// synchronous pipe makes the controller's verdict write block
	// until the deadline fires.
	stalledClient, stalledServer := net.Pipe()
	c.wg.Add(1)
	go c.handle(stalledServer)
	normalized := params
	if err := normalized.Normalize(1); err != nil {
		t.Fatal(err)
	}
	hello, err := encodeHello(Hello{Name: "stalled", Tau: normalized.Tau(), Batch: uint32(normalized.BatchSize)})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(stalledClient, MsgHello, hello); err != nil {
		t.Fatal(err)
	}
	defer stalledClient.Close()
	waitFor(t, "both agents to join", func() bool { return c.Agents() == 2 })

	vs := []Verdict{{Subnet: hierarchy.IPv4(10, 0, 0, 0), PrefixBytes: 1, Act: ActionDeny}}
	start := time.Now()
	done := make(chan int, 1)
	go func() {
		n, err := c.Broadcast(vs)
		if err != nil {
			t.Errorf("broadcast: %v", err)
		}
		done <- n
	}()
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("broadcast reached %d agents, want exactly the healthy one", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast still blocked on the stalled agent")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("broadcast took %v despite the 50ms write deadline", elapsed)
	}
	select {
	case got := <-healthy.Verdicts():
		if len(got) != 1 || got[0] != vs[0] {
			t.Fatalf("healthy agent received %v, want %v", got, vs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healthy agent never received the verdicts")
	}
	if c.DroppedAgents() != 1 {
		t.Fatalf("DroppedAgents = %d, want 1", c.DroppedAgents())
	}
	waitFor(t, "stalled agent to be dropped", func() bool { return c.Agents() == 1 })
}

// TestDuplicateAgentNameRejected pins the per-agent state contract:
// snapshots and ledgers are keyed by name, so a second live
// connection claiming an in-use name is refused instead of silently
// overwriting the first agent's sketch.
func TestDuplicateAgentNameRejected(t *testing.T) {
	params := Params{Budget: 4, BatchSize: 8, Window: 1 << 10}
	ctrl, addr := startController(t, params, 256)
	first, err := DialAgent(addr, AgentConfig{Name: "twin", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	waitFor(t, "first agent to join", func() bool { return ctrl.Agents() == 1 })

	dup, err := DialAgent(addr, AgentConfig{Name: "twin", Params: params})
	if err != nil {
		t.Fatal(err) // the Hello write itself succeeds; rejection closes the conn
	}
	defer dup.Close()
	waitFor(t, "duplicate to be rejected", func() bool { return ctrl.Rejected() == 1 })
	if ctrl.Agents() != 1 {
		t.Fatalf("Agents() = %d after duplicate join, want 1", ctrl.Agents())
	}

	// After the original disconnects, the name is reusable (warm
	// reconnect), and its ledger survives.
	first.Close()
	waitFor(t, "first agent to leave", func() bool { return ctrl.Agents() == 0 })
	re, err := DialAgent(addr, AgentConfig{Name: "twin", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	waitFor(t, "reconnect to join", func() bool { return ctrl.Agents() == 1 })
}

// TestMixedFleet verifies sampled and snapshot agents coexist on one
// controller: the sampled sketch and the merged snapshot view answer
// independently.
func TestMixedFleet(t *testing.T) {
	const window = 1 << 12
	params := Params{Budget: 4, BatchSize: 8, Window: window}
	ctrl, addr := startController(t, params, 1024)

	sampled, err := DialAgent(addr, AgentConfig{Name: "sampled", Params: params, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer sampled.Close()
	snapper, err := DialAgent(addr, AgentConfig{
		Name: "snapper", Params: params, Seed: 12,
		Report: ReportSnapshot, Hier: hierarchy.OneD{},
		SnapshotWindow: window, SnapshotEvery: window / 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer snapper.Close()
	waitFor(t, "agents to join", func() bool { return ctrl.Agents() == 2 })

	src := rng.New(13)
	var wg sync.WaitGroup
	for _, a := range []*Agent{sampled, snapper} {
		wg.Add(1)
		go func(a *Agent) {
			defer wg.Done()
			local := rng.New(uint64(len(a.Name())))
			for i := 0; i < 1<<14; i++ {
				a.Observe(hierarchy.Packet{Src: uint32(local.Intn(128))})
			}
			a.Flush()
		}(a)
	}
	wg.Wait()
	_ = src
	waitFor(t, "both report kinds to arrive", func() bool {
		return ctrl.Reports() > 0 && ctrl.Snapshots() > 0
	})
	if out := ctrl.OutputMerged(0.001); len(out) == 0 {
		t.Fatal("merged output empty despite snapshot agent")
	}
	stats := ctrl.AgentStats()
	byName := map[string]AgentStat{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	if byName["sampled"].Reports == 0 || byName["sampled"].Snapshots != 0 {
		t.Fatalf("sampled ledger wrong: %+v", byName["sampled"])
	}
	if byName["snapper"].Snapshots == 0 || byName["snapper"].Reports != 0 {
		t.Fatalf("snapper ledger wrong: %+v", byName["snapper"])
	}
}
