package netwide

import (
	"net"
	"sync"
	"testing"

	"memento/internal/hierarchy"
)

// TestAgentConcurrentObserve hammers Observe from many goroutines while
// the controller consumes; run with -race to validate the locking.
func TestAgentConcurrentObserve(t *testing.T) {
	params := Params{Budget: 2, BatchSize: 8, Window: 1 << 12}
	ctrl, addr := startController(t, params, 512)
	a, err := DialAgent(addr, AgentConfig{Name: "mt", Params: params, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	waitFor(t, "join", func() bool { return ctrl.Agents() == 1 })

	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a.Observe(hierarchy.Packet{Src: uint32(w<<24 | i)})
			}
		}(w)
	}
	wg.Wait()
	if a.Err() != nil {
		t.Fatalf("transport error under concurrency: %v", a.Err())
	}
	waitFor(t, "some reports", func() bool { return ctrl.Reports() > 0 })
	// Estimates must be readable while reports continue to land.
	var q sync.WaitGroup
	for w := 0; w < 4; w++ {
		q.Add(1)
		go func() {
			defer q.Done()
			for i := 0; i < 100; i++ {
				_ = ctrl.Estimate(hierarchy.Prefix{Src: uint32(i) << 24, SrcLen: 1})
				_ = ctrl.Output(0.5)
			}
		}()
	}
	q.Wait()
}

// TestBroadcastDuringChurn exercises Broadcast while agents connect
// and disconnect.
func TestBroadcastDuringChurn(t *testing.T) {
	params := Params{Budget: 2, BatchSize: 4, Window: 1 << 10}
	ctrl, addr := startController(t, params, 256)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a, err := DialAgent(addr, AgentConfig{Name: "churn", Params: params, Seed: uint64(i + 1)})
			if err != nil {
				continue
			}
			for j := 0; j < 100; j++ {
				a.Observe(hierarchy.Packet{Src: uint32(j)})
			}
			a.Close()
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := ctrl.Broadcast([]Verdict{{Subnet: 1 << 24, PrefixBytes: 1, Act: ActionDeny}}); err != nil {
			t.Fatalf("broadcast during churn: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	_ = net.IPv4len
}
