// Clock injection for the fleet's supervision plane: reconnect
// backoff, heartbeat cadence, degraded-mode detection and shutdown
// drains all consult an injectable clock, so their logic sits inside
// mementovet's //memento:deterministic scope and tests can drive the
// machinery without real sleeps. Connection deadlines (SetReadDeadline
// and friends) deliberately stay on the wall clock: they parameterize
// kernel I/O, not control-flow decisions.

package netwide

import (
	"time"

	"memento/internal/rng"
)

// Clock is the time source for the agent's supervision plane. The
// zero value of AgentConfig.Clock selects the wall clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers one value after d elapses
	// (time.After semantics).
	After(d time.Duration) <-chan time.Time
}

// sysClock is the wall-clock Clock.
type sysClock struct{}

func (sysClock) Now() time.Time                         { return time.Now() }
func (sysClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// backoffDelay returns the wait before redial attempt (0-based),
// exponential from base and capped at max, with full jitter on the
// upper half — [d/2, d) — drawn from the supervisor's deterministic
// source so two agents losing the same controller don't redial in
// lockstep.
//
//memento:deterministic
func backoffDelay(attempt int, base, max time.Duration, src *rng.Source) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(src.Float64()*float64(half))
}
