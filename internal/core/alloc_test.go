package core

import (
	"testing"

	"memento/internal/rng"
)

// TestUpdateZeroAlloc pins the allocation-free guarantee of the
// per-packet hot path: after a warm-up window (which may grow the
// overflow table once), Update must never allocate — no map buckets,
// no ring growth, nothing.
func TestUpdateZeroAlloc(t *testing.T) {
	s := MustNew[uint64](Config{Window: 1 << 14, Counters: 256, Tau: 1.0 / 16, Seed: 3})
	src := rng.New(9)
	keys := make([]uint64, 1<<12)
	for i := range keys {
		keys[i] = uint64(src.Intn(1 << 12))
	}
	for i := 0; i < 3<<14; i++ { // warm up: several full windows
		s.Update(keys[i&(len(keys)-1)])
	}
	i := 0
	allocs := testing.AllocsPerRun(20000, func() {
		s.Update(keys[i&(len(keys)-1)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Update allocs/op = %v, want 0", allocs)
	}
}

// TestUpdateBatchZeroAlloc does the same for the batched path.
func TestUpdateBatchZeroAlloc(t *testing.T) {
	s := MustNew[uint64](Config{Window: 1 << 14, Counters: 256, Tau: 1.0 / 16, Seed: 4})
	src := rng.New(10)
	batch := make([]uint64, 256)
	for i := range batch {
		batch[i] = uint64(src.Intn(1 << 12))
	}
	for i := 0; i < 1<<8; i++ {
		s.UpdateBatch(batch)
	}
	allocs := testing.AllocsPerRun(2000, func() { s.UpdateBatch(batch) })
	if allocs != 0 {
		t.Fatalf("UpdateBatch allocs/op = %v, want 0", allocs)
	}
}
