package core

import (
	"math"
	"testing"
	"testing/quick"

	"memento/internal/exact"
	"memento/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},                                   // no window
		{Window: -1, Counters: 4},            // bad window
		{Window: 100},                        // neither counters nor epsilon
		{Window: 100, EpsilonA: -0.1},        // bad epsilon
		{Window: 100, EpsilonA: 2},           // bad epsilon
		{Window: 100, Counters: 8, Tau: 1.5}, // bad tau
		{Window: 100, Counters: 8, Tau: -1},  // bad tau
		{Window: 100, Counters: 8, Tau: 0.5, Scale: 0.1}, // bad scale
	}
	for i, cfg := range cases {
		if _, err := New[int](cfg); err == nil {
			t.Errorf("case %d (%+v) should fail", i, cfg)
		}
	}
	if _, err := New[int](Config{Window: 100, EpsilonA: 0.1}); err != nil {
		t.Errorf("valid epsilon config failed: %v", err)
	}
}

func TestCounterSizing(t *testing.T) {
	s := MustNew[int](Config{Window: 1000, EpsilonA: 0.1})
	if s.Counters() != 40 {
		t.Fatalf("k = %d, want ⌈4/0.1⌉ = 40", s.Counters())
	}
	s = MustNew[int](Config{Window: 1000, Counters: 64, EpsilonA: 0.5})
	if s.Counters() != 64 {
		t.Fatal("Counters must override EpsilonA")
	}
}

func TestEffectiveWindowRounding(t *testing.T) {
	s := MustNew[int](Config{Window: 100, Counters: 7})
	// blockPackets = ceil(100/7) = 15, window = 105.
	if s.EffectiveWindow() != 105 {
		t.Fatalf("EffectiveWindow = %d, want 105", s.EffectiveWindow())
	}
	s = MustNew[int](Config{Window: 1024, Counters: 4})
	if s.EffectiveWindow() != 1024 {
		t.Fatalf("EffectiveWindow = %d, want 1024", s.EffectiveWindow())
	}
}

func TestBlockUnits(t *testing.T) {
	// τ = 0.5 halves the overflow threshold but not the block timing.
	s := MustNew[int](Config{Window: 1024, Counters: 4, Tau: 0.5})
	if s.blockPackets != 256 {
		t.Fatalf("blockPackets = %d, want 256", s.blockPackets)
	}
	if s.blockCounts != 128 {
		t.Fatalf("blockCounts = %d, want 128", s.blockCounts)
	}
	if s.Scale() != 2 {
		t.Fatalf("scale = %v, want 2", s.Scale())
	}
	// Extreme sampling clamps the threshold at one count.
	s = MustNew[int](Config{Window: 1024, Counters: 64, Tau: 1.0 / 1024})
	if s.blockCounts != 1 {
		t.Fatalf("blockCounts = %d, want clamp to 1", s.blockCounts)
	}
}

// zipfStream produces a deterministic skewed key stream for tests.
func zipfStream(seed uint64, n, universe int) []uint64 {
	r := rng.New(seed)
	out := make([]uint64, n)
	for i := range out {
		// Simple discrete power-law: rank = floor(u^{-1.2}) bounded.
		u := r.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		rank := int(math.Pow(u, -0.8)) % universe
		out[i] = uint64(rank)
	}
	return out
}

func TestWCSSBoundsAgainstOracle(t *testing.T) {
	// With τ = 1 Memento is WCSS; its estimates must satisfy
	// f ≤ f̂ ≤ f + εa·W with εa·W = 4·W/k (one-sided error like MST).
	const window = 1000
	const k = 20
	s := MustNew[uint64](Config{Window: window, Counters: k})
	oracle := exact.MustNewSlidingWindow[uint64](s.EffectiveWindow())
	stream := zipfStream(42, 8*window, 64)
	slack := 4.0 * float64(s.EffectiveWindow()) / float64(k)

	for i, key := range stream {
		s.Update(key)
		oracle.Add(key)
		if i < s.EffectiveWindow() || i%37 != 0 {
			continue
		}
		for q := uint64(0); q < 64; q++ {
			f := float64(oracle.Count(q))
			est := s.Query(q)
			if est < f {
				t.Fatalf("packet %d key %d: estimate %v below truth %v", i, q, est, f)
			}
			if est > f+slack {
				t.Fatalf("packet %d key %d: estimate %v exceeds truth %v + slack %v", i, q, est, f, slack)
			}
		}
	}
}

func TestWCSSBoundsProperty(t *testing.T) {
	// Property-based variant over random streams and geometries.
	f := func(keys []uint8, kRaw uint8, wRaw uint16) bool {
		k := int(kRaw%12) + 4
		window := int(wRaw%400) + k
		s := MustNew[uint8](Config{Window: window, Counters: k})
		oracle := exact.MustNewSlidingWindow[uint8](s.EffectiveWindow())
		slack := 4.0 * float64(s.EffectiveWindow()) / float64(k)
		for _, key := range keys {
			s.Update(key)
			oracle.Add(key)
		}
		for q := 0; q < 256; q += 5 {
			f := float64(oracle.Count(uint8(q)))
			est := s.Query(uint8(q))
			if est < f || est > f+slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowSlides(t *testing.T) {
	// A flow that stops sending must be forgotten within one window.
	const window = 500
	const k = 10
	s := MustNew[uint64](Config{Window: window, Counters: k})
	for i := 0; i < window; i++ {
		s.Update(1)
	}
	if est := s.Query(1); est < float64(window) {
		t.Fatalf("saturated flow estimate %v below window %d", est, window)
	}
	for i := 0; i < s.EffectiveWindow(); i++ {
		s.Update(2)
	}
	est := s.Query(1)
	slack := 4.0 * float64(s.EffectiveWindow()) / float64(k)
	if est > slack {
		t.Fatalf("expired flow still estimated at %v (> slack %v)", est, slack)
	}
	if est2 := s.Query(2); est2 < float64(window) {
		t.Fatalf("current flow underestimated: %v", est2)
	}
}

func TestDeamortizedDrainInvariant(t *testing.T) {
	// Under Algorithm 1's update pattern the oldest queue is always
	// empty by rotation time.
	for _, tau := range []float64{1, 0.25, 1.0 / 64} {
		s := MustNew[uint64](Config{Window: 512, Counters: 16, Tau: tau, Seed: 9})
		r := rng.New(3)
		for i := 0; i < 20000; i++ {
			s.Update(r.Uint64() % 8) // few keys → maximal overflow pressure
		}
		if s.ForcedDrains() != 0 {
			t.Fatalf("τ=%v: %d forced drains; de-amortization broke", tau, s.ForcedDrains())
		}
	}
}

func TestOverflowAccounting(t *testing.T) {
	// ΣB equals the number of queued (undrained) overflow entries.
	s := MustNew[uint64](Config{Window: 512, Counters: 16})
	r := rng.New(4)
	for i := 0; i < 5000; i++ {
		s.Update(r.Uint64() % 4)
	}
	total := 0
	s.Overflowed(func(_ uint64, n int32) bool {
		total += int(n)
		return true
	})
	if total != s.ring.pending() {
		t.Fatalf("ΣB = %d, queued = %d", total, s.ring.pending())
	}
}

func TestHeavyHitters(t *testing.T) {
	const window = 2000
	s := MustNew[uint64](Config{Window: window, Counters: 50})
	r := rng.New(8)
	// Key 1: 30%, key 2: 15%, the rest uniform noise over 1000 keys.
	for i := 0; i < 3*window; i++ {
		u := r.Float64()
		switch {
		case u < 0.30:
			s.Update(1)
		case u < 0.45:
			s.Update(2)
		default:
			s.Update(100 + r.Uint64()%1000)
		}
	}
	hh := s.HeavyHitters(0.25, nil)
	found := map[uint64]bool{}
	for _, item := range hh {
		found[item.Key] = true
	}
	if !found[1] {
		t.Fatalf("30%% flow missed at θ=0.25: %v", hh)
	}
	if found[2] {
		t.Fatalf("15%% flow reported at θ=0.25 despite error budget: %v", hh)
	}
	hh = s.HeavyHitters(0.10, nil)
	found = map[uint64]bool{}
	for _, item := range hh {
		found[item.Key] = true
	}
	if !found[1] || !found[2] {
		t.Fatalf("θ=0.10 must report both heavy flows: %v", hh)
	}
}

func TestSampledEstimatesUnbiasedEnough(t *testing.T) {
	// τ = 1/16: per-key error should stay within the εa + εs envelope
	// of Theorem 5.2 at ~5σ, checked against an exact oracle.
	const window = 1 << 14
	const k = 64
	const tau = 1.0 / 16
	s := MustNew[uint64](Config{Window: window, Counters: k, Tau: tau, Seed: 77})
	oracle := exact.MustNewSlidingWindow[uint64](s.EffectiveWindow())
	r := rng.New(5)
	violations, checks := 0, 0
	for i := 0; i < 6*window; i++ {
		var key uint64
		u := r.Float64()
		switch {
		case u < 0.25:
			key = 1
		case u < 0.40:
			key = 2
		case u < 0.50:
			key = 3
		default:
			key = 10 + r.Uint64()%2000
		}
		s.Update(key)
		oracle.Add(key)
		if i > window && i%503 == 0 {
			for q := uint64(1); q <= 3; q++ {
				f := float64(oracle.Count(q))
				est := s.Query(q)
				// Sampling std dev of the estimate is ≈ sqrt(f/τ);
				// allow 5σ plus the algorithmic band.
				band := 4*float64(window)/k + 4*2*float64(s.blockCounts)*s.Scale() + 5*math.Sqrt(f/tau)
				if math.Abs(est-f) > band {
					violations++
				}
				checks++
			}
		}
	}
	if checks == 0 {
		t.Fatal("no checks performed")
	}
	if violations > checks/50 {
		t.Fatalf("%d/%d sampled estimates outside the 5σ envelope", violations, checks)
	}
}

func TestSpeedupMechanism(t *testing.T) {
	// The whole point of Memento: Full updates happen for ≈ τ of the
	// packets.
	s := MustNew[uint64](Config{Window: 4096, Counters: 64, Tau: 1.0 / 32, Seed: 11})
	const n = 200000
	r := rng.New(12)
	for i := 0; i < n; i++ {
		s.Update(r.Uint64() % 100)
	}
	got := float64(s.FullUpdates()) / float64(s.Updates())
	if math.Abs(got-1.0/32) > 0.005 {
		t.Fatalf("full update fraction %v, want ≈ 1/32", got)
	}
	if s.Updates() != n {
		t.Fatalf("Updates = %d, want %d", s.Updates(), n)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Sketch[uint64] {
		return MustNew[uint64](Config{Window: 1024, Counters: 32, Tau: 0.25, Seed: 1234})
	}
	a, b := mk(), mk()
	r := rng.New(6)
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = r.Uint64() % 500
	}
	for _, k := range keys {
		a.Update(k)
		b.Update(k)
	}
	for q := uint64(0); q < 500; q += 13 {
		if a.Query(q) != b.Query(q) {
			t.Fatalf("same seed, different estimates for key %d", q)
		}
	}
}

func TestTableSamplingMode(t *testing.T) {
	s := MustNew[uint64](Config{Window: 1024, Counters: 32, Tau: 1.0 / 8, Seed: 3, TableSampling: true})
	const n = 100000
	for i := uint64(0); i < n; i++ {
		s.Update(i % 64)
	}
	got := float64(s.FullUpdates()) / float64(n)
	if math.Abs(got-1.0/8) > 0.02 {
		t.Fatalf("table-sampled full update fraction %v, want ≈ 1/8", got)
	}
}

func TestReset(t *testing.T) {
	s := MustNew[uint64](Config{Window: 256, Counters: 8, Tau: 0.5, Seed: 2})
	for i := uint64(0); i < 10000; i++ {
		s.Update(i % 5)
	}
	s.Reset()
	if s.Updates() != 0 || s.FullUpdates() != 0 || s.OverflowEntries() != 0 {
		t.Fatal("Reset left residual state")
	}
	if s.ring.pending() != 0 {
		t.Fatal("Reset left queued overflow entries")
	}
	// Identical behaviour after reset.
	for i := uint64(0); i < 256; i++ {
		s.Update(1)
	}
	if est := s.Query(1); est < 200 {
		t.Fatalf("post-reset estimate %v too small", est)
	}
}

func TestQueryBoundsOrdering(t *testing.T) {
	s := MustNew[uint64](Config{Window: 512, Counters: 16})
	for i := uint64(0); i < 2000; i++ {
		s.Update(i % 20)
	}
	for q := uint64(0); q < 20; q++ {
		up, lo := s.QueryBounds(q)
		if lo < 0 || lo > up {
			t.Fatalf("bounds inverted for key %d: [%v, %v]", q, lo, up)
		}
	}
}

func TestBlockRing(t *testing.T) {
	var r blockRing[int]
	r.init(3)
	r.push(1)
	r.push(2)
	if _, ok := r.popOldest(); ok {
		t.Fatal("oldest queue should start empty")
	}
	r.rotate() // cur moves; old queue 0 holds {1,2}
	r.rotate() // queue 0 now one step from oldest
	if v, ok := r.popOldest(); !ok || v != 1 {
		t.Fatalf("pop = %v, %v; want 1", v, ok)
	}
	if v, ok := r.popOldest(); !ok || v != 2 {
		t.Fatalf("pop = %v, %v; want 2", v, ok)
	}
	if _, ok := r.popOldest(); ok {
		t.Fatal("queue should be drained")
	}
	if r.pending() != 0 {
		t.Fatalf("pending = %d", r.pending())
	}
}
