// H-Memento: hierarchical heavy hitters on sliding windows
// (paper Section 4.2, Algorithms 2-4).

package core

import (
	"errors"
	"fmt"
	"math"

	"memento/internal/hhhset"
	"memento/internal/hierarchy"
	"memento/internal/rng"
	"memento/internal/spacesaving"
	"memento/internal/stats"
)

// HHHConfig parameterizes an H-Memento instance.
type HHHConfig struct {
	// Hierarchy selects the prefix domain (hierarchy.OneD or
	// hierarchy.TwoD). Required.
	Hierarchy hierarchy.Hierarchy

	// Window is W, the sliding window size in packets. Required.
	Window int

	// Counters is the total number of counters across all prefix
	// patterns (the paper's 64H/512H/4096H notation multiplies out to
	// this). When zero, ⌈4·H/EpsilonA⌉ is used.
	Counters int

	// EpsilonA is the algorithmic error bound; ignored when Counters is
	// set.
	EpsilonA float64

	// V is the sampling ratio: each specific prefix of a packet is
	// sampled with probability 1/V, so a packet triggers a Full update
	// with probability H/V (Table 1: V = H/τ). V < H is invalid; V == 0
	// defaults to H (a Full update for every packet, the τ = 1 analog).
	V int

	// Delta is the confidence parameter δ used in the output
	// computation's sampling compensation 2·Z_{1−δ}·√(V·W)
	// (Algorithm 2, line 8). Zero defaults to 0.001.
	Delta float64

	// Seed makes sampling deterministic; 0 selects a fixed default.
	Seed uint64
}

// HeavyPrefix is one entry of an HHH set.
type HeavyPrefix struct {
	Prefix hierarchy.Prefix
	// Estimate is the upper-bound window frequency estimate f̂+.
	Estimate float64
	// Conditioned is the conservative conditioned frequency C_{p|P}
	// that crossed the threshold (includes the sampling compensation).
	Conditioned float64
}

// HHH is an H-Memento instance: a single Memento sketch over sampled
// prefixes, updated in constant time per packet.
type HHH struct {
	hier hierarchy.Hierarchy
	mem  *Sketch[hierarchy.Prefix]
	h    int
	v    uint64
	comp float64 // 2·Z_{1−δ}·√(V·W), precomputed
	src  *rng.Source
	geo  *rng.Geometric
	skip int // batched path: packets left until the next sampled prefix (-1: not drawn)

	candidates []hierarchy.Prefix // scratch buffer for Output
	sc         hhhset.Scratch     // reusable HHH-set computation state
	entries    []hhhset.Entry     // scratch result buffer for OutputTo
}

// NewHHH validates cfg and returns a ready H-Memento.
func NewHHH(cfg HHHConfig) (*HHH, error) {
	if cfg.Hierarchy == nil {
		return nil, errors.New("core: HHHConfig.Hierarchy is required")
	}
	h := cfg.Hierarchy.H()
	v := cfg.V
	if v == 0 {
		v = h
	}
	if v < h {
		return nil, fmt.Errorf("core: V=%d below hierarchy size H=%d", cfg.V, h)
	}
	k := cfg.Counters
	if k <= 0 {
		if !(cfg.EpsilonA > 0 && cfg.EpsilonA <= 1) {
			return nil, errors.New("core: need Counters > 0 or EpsilonA in (0, 1]")
		}
		k = int(math.Ceil(4 * float64(h) / cfg.EpsilonA))
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = 0.001
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("core: Delta %v outside (0, 1)", cfg.Delta)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	mem, err := NewWithHash(Config{
		Window:   cfg.Window,
		Counters: k,
		Tau:      float64(h) / float64(v),
		Scale:    float64(v),
		Seed:     seed + 1,
	}, hierarchy.PrefixHasher(seed))
	if err != nil {
		return nil, err
	}
	z, err := stats.Z(1 - delta)
	if err != nil {
		return nil, err
	}
	hh := &HHH{
		hier: cfg.Hierarchy,
		mem:  mem,
		h:    h,
		v:    uint64(v),
		comp: 2 * z * math.Sqrt(float64(v)*float64(mem.EffectiveWindow())),
		src:  rng.New(seed),
		skip: -1,
	}
	hh.geo = rng.NewGeometric(hh.src, float64(h)/float64(v))
	return hh, nil
}

// MustNewHHH is NewHHH for statically valid configurations.
func MustNewHHH(cfg HHHConfig) *HHH {
	h, err := NewHHH(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// EffectiveWindow returns the window actually maintained.
func (hh *HHH) EffectiveWindow() int { return hh.mem.EffectiveWindow() }

// V returns the sampling ratio.
func (hh *HHH) V() int { return int(hh.v) }

// Hierarchy returns the configured prefix domain.
func (hh *HHH) Hierarchy() hierarchy.Hierarchy { return hh.hier }

// Sketch exposes the underlying Memento instance (read-only use:
// diagnostics and the network-wide controller drive it directly).
func (hh *HHH) Sketch() *Sketch[hierarchy.Prefix] { return hh.mem }

// Update processes one packet in constant time (Algorithm 2): it draws
// a single integer i uniform in [0, V); if i < H the i-th prefix of the
// packet receives a Full update, otherwise only the window slides.
//
//memento:noalloc
func (hh *HHH) Update(p hierarchy.Packet) {
	// Multiply-shift maps a 32-bit uniform draw to [0, V); the bias is
	// at most V/2^32 per outcome, negligible for the V values in use.
	i := int(uint64(hh.src.Uint32()) * hh.v >> 32)
	if i < hh.h {
		hh.mem.FullUpdate(hh.hier.Prefix(p, i))
	} else {
		hh.mem.WindowUpdate()
	}
}

// UpdateBatch processes a batch of packets, distributionally
// equivalent to calling Update once per packet: a packet samples one
// of its prefixes with probability H/V, and conditional on sampling
// the prefix pattern is uniform. Instead of drawing per packet, the
// number of packets until the next sampled one comes from a geometric
// distribution and the window slides over the skipped packets in bulk
// (Sketch.WindowAdvance). The pending skip count persists across
// calls, so results are independent of batch segmentation and
// deterministic under a fixed Seed.
//
//memento:noalloc
func (hh *HHH) UpdateBatch(ps []hierarchy.Packet) {
	i := 0
	for i < len(ps) {
		if hh.skip < 0 {
			hh.skip = hh.geo.Next()
		}
		if rem := len(ps) - i; hh.skip >= rem {
			hh.mem.WindowAdvance(rem)
			hh.skip -= rem
			return
		}
		hh.mem.WindowAdvance(hh.skip)
		i += hh.skip
		hh.skip = -1
		lvl := 0
		if hh.h > 1 {
			lvl = hh.src.Intn(hh.h)
		}
		hh.mem.FullUpdate(hh.hier.Prefix(ps[i], lvl))
		i++
	}
}

// FullUpdatePrefix and WindowUpdate let external drivers (the
// network-wide controller) replay sampled prefixes directly.
func (hh *HHH) FullUpdatePrefix(p hierarchy.Prefix) { hh.mem.FullUpdate(p) }

// WindowUpdate slides the window by one packet.
func (hh *HHH) WindowUpdate() { hh.mem.WindowUpdate() }

// WindowAdvance slides the window by n packets in bulk — n
// WindowUpdate calls with per-chunk instead of per-packet expiry.
func (hh *HHH) WindowAdvance(n int) { hh.mem.WindowAdvance(n) }

// SamplePrefix mimics Update's draw without touching the sketch: it
// returns the prefix that would be sampled for p, if any. Measurement
// points in the network-wide setting use it to decide what to report.
func (hh *HHH) SamplePrefix(p hierarchy.Packet) (hierarchy.Prefix, bool) {
	i := int(uint64(hh.src.Uint32()) * hh.v >> 32)
	if i < hh.h {
		return hh.hier.Prefix(p, i), true
	}
	return hierarchy.Prefix{}, false
}

// Query returns the upper-bound window frequency estimate for prefix p.
func (hh *HHH) Query(p hierarchy.Prefix) float64 { return hh.mem.Query(p) }

// QueryBounds returns conservative upper/lower bounds for prefix p.
func (hh *HHH) QueryBounds(p hierarchy.Prefix) (upper, lower float64) {
	return hh.mem.QueryBounds(p)
}

// Output computes the approximate HHH set for threshold theta
// (Algorithm 2, lines 3-10): levels are scanned bottom-up; a prefix
// joins the set when its conservative conditioned frequency (including
// the 2·Z·√(VW) sampling compensation) reaches theta·W.
func (hh *HHH) Output(theta float64) []HeavyPrefix { return hh.OutputTo(theta, nil) }

// OutputTo is Output appending to caller-provided dst: the whole
// computation runs through scratch owned by hh, so callers that
// recycle dst query without allocating. The returned set is the same
// as Output's.
func (hh *HHH) OutputTo(theta float64, dst []HeavyPrefix) []HeavyPrefix {
	threshold := theta * float64(hh.mem.EffectiveWindow())
	hh.candidates = hh.Candidates(hh.candidates[:0])
	hh.entries = hhhset.ComputeInto(hh.hier, hh.mem, hh.candidates, threshold, hh.comp, &hh.sc, hh.entries[:0])
	for _, e := range hh.entries {
		dst = append(dst, HeavyPrefix(e))
	}
	return dst
}

// Candidates appends every prefix the sketch currently tracks — the
// overflow table (every heavy hitter is guaranteed to be there) plus
// the monitored counters, for robustness on short streams — and
// returns the extended slice. The sharded front-end merges candidate
// sets across shards to compute a global HHH output.
func (hh *HHH) Candidates(dst []hierarchy.Prefix) []hierarchy.Prefix {
	hh.mem.Overflowed(func(p hierarchy.Prefix, _ int32) bool {
		dst = append(dst, p)
		return true
	})
	hh.mem.y.Iterate(func(c spacesaving.Counter[hierarchy.Prefix]) bool {
		dst = append(dst, c.Key)
		return true
	})
	return dst
}

// Compensation returns the sampling compensation term 2·Z_{1−δ}·√(V·W)
// applied by Output (Algorithm 2, line 8).
func (hh *HHH) Compensation() float64 { return hh.comp }

// Bounds implements hhhset.Estimator for the underlying sketch.
func (s *Sketch[K]) Bounds(p K) (upper, lower float64) { return s.QueryBounds(p) }

// Reset restores the instance to its initial empty state.
func (hh *HHH) Reset() {
	hh.mem.Reset()
	hh.skip = -1
}

// HHHSnapshot is an immutable point-in-time copy of an H-Memento's
// queryable state, plus the scratch the HHH-set computation needs, so
// a pooled snapshot serves Output-style queries allocation-free. Take
// it under the lock guarding the instance (SnapshotInto is a few slab
// memmoves); everything afterwards is lock-free. Not safe for
// concurrent use by multiple queries — pool snapshots instead.
type HHHSnapshot struct {
	mem  Snapshot[hierarchy.Prefix]
	hier hierarchy.Hierarchy
	comp float64

	cands   []hhhset.Candidate
	sc      hhhset.Scratch
	entries []hhhset.Entry
}

// SnapshotInto captures the instance's queryable state into snap,
// reusing snap's buffers. Call it under the lock guarding hh.
//
//memento:noalloc
func (hh *HHH) SnapshotInto(snap *HHHSnapshot) {
	hh.mem.SnapshotInto(&snap.mem)
	snap.hier = hh.hier
	snap.comp = hh.comp
}

// Sketch exposes the captured Memento state.
func (snap *HHHSnapshot) Sketch() *Snapshot[hierarchy.Prefix] { return &snap.mem }

// EffectiveWindow returns the window the source instance maintained.
func (snap *HHHSnapshot) EffectiveWindow() int { return snap.mem.EffectiveWindow() }

// Updates returns the source's update count at capture time.
func (snap *HHHSnapshot) Updates() uint64 { return snap.mem.Updates() }

// Compensation returns the captured sampling compensation term.
func (snap *HHHSnapshot) Compensation() float64 { return snap.comp }

// Query is HHH.Query against the captured state.
func (snap *HHHSnapshot) Query(p hierarchy.Prefix) float64 { return snap.mem.Query(p) }

// QueryBounds is HHH.QueryBounds against the captured state.
func (snap *HHHSnapshot) QueryBounds(p hierarchy.Prefix) (upper, lower float64) {
	return snap.mem.QueryBounds(p)
}

// Bounds implements hhhset.Estimator against the captured state.
func (snap *HHHSnapshot) Bounds(p hierarchy.Prefix) (upper, lower float64) {
	return snap.mem.QueryBounds(p)
}

// OutputTo computes the approximate HHH set for threshold theta from
// the captured state, appending to dst — HHH.OutputTo with the entire
// scan, estimation, and HHH-set computation running lock-free. The
// network-wide controller snapshots under its ingest lock and runs
// OutputTo outside it, so absorbing reports never stalls on a query.
// Candidates sweep the captured tables once with bounds attached
// (ForEachEstimate); in one dimension prefixes that cannot reach the
// threshold even before conditioning are skipped outright.
func (snap *HHHSnapshot) OutputTo(theta float64, dst []HeavyPrefix) []HeavyPrefix {
	threshold := theta * float64(snap.mem.window)
	cut := math.Inf(-1)
	if snap.hier.Dims() == 1 {
		// 1D conditioning only subtracts from the estimate; 2D glb
		// add-backs can raise it, so no cut there.
		cut = threshold - snap.comp
	}
	snap.cands = snap.cands[:0]
	snap.mem.ForEachEstimate(func(p hierarchy.Prefix, upper, lower float64) bool {
		if upper >= cut {
			snap.cands = append(snap.cands, hhhset.Candidate{Prefix: p, Upper: upper, Lower: lower})
		}
		return true
	})
	snap.entries = hhhset.ComputeCandidates(snap.hier, snap, snap.cands, threshold, snap.comp, &snap.sc, snap.entries[:0])
	for _, e := range snap.entries {
		dst = append(dst, HeavyPrefix(e))
	}
	return dst
}
