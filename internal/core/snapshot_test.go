package core

import (
	"testing"

	"memento/internal/hierarchy"
	"memento/internal/keyidx"
	"memento/internal/rng"
)

// snapshotConfig is a small but non-degenerate sketch for the
// snapshot tests: several windows of churn, sampling on.
var snapshotConfig = Config{Window: 1 << 12, Counters: 128, Tau: 1.0 / 8, Seed: 11}

// TestSnapshotMatchesLive pins the snapshot contract: at capture time
// every query answer equals the live sketch's, and later mutations of
// the source leave the snapshot untouched.
func TestSnapshotMatchesLive(t *testing.T) {
	for name, hash := range map[string]func(uint64) uint64{
		"default-hashers": nil,
		"shared-hasher":   keyidx.DefaultHasher[uint64](),
	} {
		t.Run(name, func(t *testing.T) {
			s, err := NewWithHash[uint64](snapshotConfig, hash)
			if err != nil {
				t.Fatal(err)
			}
			src := rng.New(12)
			for i := 0; i < 3<<12; i++ {
				s.Update(uint64(src.Intn(400)))
			}
			var snap Snapshot[uint64]
			s.SnapshotInto(&snap)

			if snap.Updates() != s.Updates() || snap.EffectiveWindow() != s.EffectiveWindow() || snap.Scale() != s.Scale() {
				t.Fatalf("snapshot scalars diverge: updates %d/%d window %d/%d scale %v/%v",
					snap.Updates(), s.Updates(), snap.EffectiveWindow(), s.EffectiveWindow(),
					snap.Scale(), s.Scale())
			}
			type bounds struct{ q, u, l float64 }
			frozen := map[uint64]bounds{}
			for k := uint64(0); k < 500; k++ {
				u, l := s.QueryBounds(k)
				frozen[k] = bounds{q: s.Query(k), u: u, l: l}
			}
			liveOverflow := map[uint64]int32{}
			s.Overflowed(func(k uint64, n int32) bool { liveOverflow[k] = n; return true })
			liveHH := s.HeavyHitters(0.01, nil)

			for i := 0; i < 3<<12; i++ { // mutate the source
				s.Update(uint64(400 + src.Intn(400)))
			}

			for k, want := range frozen {
				u, l := snap.QueryBounds(k)
				if got := snap.Query(k); got != want.q || u != want.u || l != want.l {
					t.Fatalf("key %d: snapshot (%v, %v, %v) != capture-time live (%v, %v, %v)",
						k, got, u, l, want.q, want.u, want.l)
				}
			}
			snapOverflow := map[uint64]int32{}
			snap.Overflowed(func(k uint64, n int32) bool { snapOverflow[k] = n; return true })
			if len(snapOverflow) != len(liveOverflow) {
				t.Fatalf("snapshot overflow table has %d keys, capture-time live had %d",
					len(snapOverflow), len(liveOverflow))
			}
			for k, n := range liveOverflow {
				if snapOverflow[k] != n {
					t.Fatalf("overflow[%d] = %d in snapshot, %d live", k, snapOverflow[k], n)
				}
			}
			snapHH := snap.HeavyHitters(0.01, nil)
			if len(snapHH) != len(liveHH) {
				t.Fatalf("snapshot reports %d heavy hitters, capture-time live %d", len(snapHH), len(liveHH))
			}
			for i := range liveHH {
				if snapHH[i] != liveHH[i] {
					t.Fatalf("heavy hitter %d: snapshot %+v, live %+v", i, snapHH[i], liveHH[i])
				}
			}
		})
	}
}

// TestSnapshotIntoZeroAlloc asserts a reused Snapshot captures
// without allocating — the property the pooled shard query plane
// relies on.
func TestSnapshotIntoZeroAlloc(t *testing.T) {
	s := MustNew[uint64](snapshotConfig)
	src := rng.New(13)
	for i := 0; i < 3<<12; i++ {
		s.Update(uint64(src.Intn(300)))
	}
	var snap Snapshot[uint64]
	s.SnapshotInto(&snap) // size the buffers
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		s.Update(uint64(src.Intn(300))) // keep the source moving
		s.SnapshotInto(&snap)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state SnapshotInto allocs/op = %v, want 0", allocs)
	}
}

// TestUpdateBatchHashedEquivalent pins that carrying precomputed
// hashes through the batched path changes nothing: same Full-update
// point process, same estimates.
func TestUpdateBatchHashedEquivalent(t *testing.T) {
	hash := keyidx.DefaultHasher[uint64]()
	mk := func() *Sketch[uint64] {
		s, err := NewWithHash[uint64](snapshotConfig, hash)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain, hashed := mk(), mk()
	src := rng.New(14)
	batch := make([]uint64, 0, 200)
	hs := make([]uint64, 0, 200)
	for round := 0; round < 200; round++ {
		batch = batch[:0]
		hs = hs[:0]
		n := 1 + src.Intn(cap(batch))
		for i := 0; i < n; i++ {
			k := uint64(src.Intn(350))
			batch = append(batch, k)
			hs = append(hs, hash(k))
		}
		plain.UpdateBatch(batch)
		hashed.UpdateBatchHashed(batch, hs)
	}
	if plain.FullUpdates() != hashed.FullUpdates() || plain.Updates() != hashed.Updates() {
		t.Fatalf("diverged: %d/%d full updates, %d/%d updates",
			plain.FullUpdates(), hashed.FullUpdates(), plain.Updates(), hashed.Updates())
	}
	for k := uint64(0); k < 350; k++ {
		if plain.Query(k) != hashed.Query(k) {
			t.Fatalf("Query(%d) = %v plain, %v hashed", k, plain.Query(k), hashed.Query(k))
		}
	}
}

// TestSharedHasherQueryEquivalent pins that a shared hasher changes
// only table layout, never estimates: two sketches fed identically,
// one with and one without a construction hasher, answer alike.
func TestSharedHasherQueryEquivalent(t *testing.T) {
	bare := MustNew[uint64](snapshotConfig)
	shared, err := NewWithHash[uint64](snapshotConfig, keyidx.DefaultHasher[uint64]())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(15)
	for i := 0; i < 3<<12; i++ {
		k := uint64(src.Intn(300))
		bare.Update(k)
		shared.Update(k)
	}
	for k := uint64(0); k < 300; k++ {
		if bare.Query(k) != shared.Query(k) {
			t.Fatalf("Query(%d) = %v bare, %v shared-hasher", k, bare.Query(k), shared.Query(k))
		}
		bu, bl := bare.QueryBounds(k)
		su, sl := shared.QueryBounds(k)
		if bu != su || bl != sl {
			t.Fatalf("QueryBounds(%d) = (%v, %v) bare, (%v, %v) shared", k, bu, bl, su, sl)
		}
	}
}

// TestHHHSnapshotOutputMatchesLive pins the hierarchical snapshot:
// OutputTo from a snapshot equals the live Output element for
// element, and candidate sets agree.
func TestHHHSnapshotOutputMatchesLive(t *testing.T) {
	hier := hierarchy.OneD{}
	hh := MustNewHHH(HHHConfig{
		Hierarchy: hier, Window: 1 << 12, Counters: 256 * 5, V: 10, Seed: 16,
	})
	src := rng.New(17)
	for i := 0; i < 1<<14; i++ {
		a := uint32(src.Intn(1 << 16))
		if src.Intn(3) > 0 {
			a = uint32(src.Intn(6))
		}
		hh.Update(hierarchy.Packet{Src: a})
	}
	var snap HHHSnapshot
	hh.SnapshotInto(&snap)

	live := hh.Output(0.02)
	for i := 0; i < 1<<12; i++ { // mutate the source
		hh.Update(hierarchy.Packet{Src: uint32(1 << 20)})
	}
	got := snap.OutputTo(0.02, nil)
	if len(got) != len(live) {
		t.Fatalf("snapshot output has %d entries, capture-time live %d:\n%v\n%v",
			len(got), len(live), got, live)
	}
	for i := range live {
		if got[i] != live[i] {
			t.Fatalf("entry %d: snapshot %+v, live %+v", i, got[i], live[i])
		}
	}
	if len(live) == 0 {
		t.Fatal("test vacuous: no heavy prefixes reported")
	}
}
