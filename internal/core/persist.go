// Durable codec bindings: encode a Snapshot/HHHSnapshot into the
// versioned internal/codec record format, decode one back into a
// queryable snapshot, and rehydrate a live sketch from a decoded (or
// same-process) checkpoint.
//
// The split of responsibilities: internal/codec owns the format
// (header, digest, bounded cursor, key codecs); this file owns the
// sketch-specific body layout. Encoding appends to a caller-provided
// buffer and allocates nothing once the buffer has warmed up
// (BenchmarkSnapshotEncode gates 0 allocs/op in CI). Decoding is
// strict: every count is validated against the bytes that remain
// before allocation, table rebuilds reject duplicates and
// non-monotone counter orders, and a record can only rehydrate a
// sketch whose seed-independent configuration matches
// (codec.ErrConfigMismatch otherwise).
//
// Decoded snapshots rebuild their key indexes under a caller-chosen
// hash function instead of trusting the source's slot layout, so
// records interoperate between processes with different hash seeds.

package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"memento/internal/codec"
	"memento/internal/hierarchy"
	"memento/internal/keyidx"
	"memento/internal/spacesaving"
)

// digest returns the seed-independent configuration digest of the
// captured sketch.
func (snap *Snapshot[K]) digest() uint64 {
	return codec.SketchDigest(snap.window, uint64(snap.counters), snap.blockCounts, snap.scale)
}

// recordFlags returns the header flags for the captured state.
func (snap *Snapshot[K]) recordFlags() uint16 {
	if snap.full {
		return codec.FlagRestore
	}
	return 0
}

// AppendTo appends the snapshot as a self-contained KindSketch record
// (header + body) and returns the extended buffer. Keys are encoded
// through kc. With a reused buffer the call allocates nothing.
//memento:noalloc
func (snap *Snapshot[K]) AppendTo(dst []byte, kc codec.KeyCodec[K]) []byte {
	start := len(dst)
	dst = codec.AppendHeader(dst, codec.Header{
		Version: codec.Version,
		Kind:    codec.KindSketch,
		Flags:   snap.recordFlags(),
		Digest:  snap.digest(),
	})
	dst = snap.appendBody(dst, kc)
	codec.AccountEncode(codec.KindSketch, len(dst)-start)
	return dst
}

// appendBody appends the sketch section: configuration scalars, the
// overflow table, the Space Saving counters (ascending count order —
// Iterate's bucket order — which the decoder verifies), and, for
// checkpoint-plane snapshots, the restore plane.
func (snap *Snapshot[K]) appendBody(dst []byte, kc codec.KeyCodec[K]) []byte {
	dst = binary.BigEndian.AppendUint64(dst, snap.window)
	dst = binary.BigEndian.AppendUint64(dst, snap.updates)
	dst = binary.BigEndian.AppendUint64(dst, snap.blockCounts)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(snap.scale))
	dst = binary.AppendUvarint(dst, uint64(snap.counters))

	dst = binary.AppendUvarint(dst, uint64(snap.overflow.Len()))
	//memento:allow alloc "closure does not escape: Iterate only scans (BenchmarkSnapshotEncode gates 0 allocs/op)"
	snap.overflow.Iterate(func(key K, val int32) bool {
		dst = kc.AppendKey(dst, key)
		dst = binary.AppendUvarint(dst, uint64(val))
		return true
	})

	dst = binary.AppendUvarint(dst, uint64(snap.y.Len()))
	dst = binary.BigEndian.AppendUint64(dst, snap.y.Items())
	//memento:allow alloc "closure does not escape: Iterate only scans (BenchmarkSnapshotEncode gates 0 allocs/op)"
	snap.y.Iterate(func(c spacesaving.Counter[K]) bool {
		dst = kc.AppendKey(dst, c.Key)
		dst = binary.AppendUvarint(dst, c.Count)
		dst = binary.AppendUvarint(dst, c.Err)
		return true
	})

	if !snap.full {
		return dst
	}
	dst = binary.BigEndian.AppendUint64(dst, snap.untilBlock)
	dst = binary.AppendUvarint(dst, uint64(snap.blocksLeft))
	dst = binary.BigEndian.AppendUint64(dst, snap.fullCount)
	dst = binary.BigEndian.AppendUint64(dst, snap.forcedDrains)
	dst = binary.AppendUvarint(dst, uint64(len(snap.queues)))
	for _, q := range snap.queues {
		dst = binary.AppendUvarint(dst, uint64(len(q)))
		for _, key := range q {
			dst = kc.AppendKey(dst, key)
		}
	}
	return dst
}

// DecodeSnapshot parses a KindSketch record produced by AppendTo into
// a fresh queryable Snapshot. hash selects the hash function the
// rebuilt indexes use (nil: the keyidx default); pass the same
// function the target sketch uses when the snapshot will feed
// RestoreFrom — any function is correct, a shared one avoids double
// hashing. Malformed, truncated or version-skewed input is rejected
// with a wrapped typed error (codec.ErrCorrupt and friends), never a
// panic, and allocations are bounded by the record size.
func DecodeSnapshot[K comparable](data []byte, kc codec.KeyCodec[K], hash func(K) uint64) (*Snapshot[K], error) {
	h, body, err := codec.ReadHeader(data)
	if err != nil {
		return nil, err
	}
	if h.Kind != codec.KindSketch {
		return nil, fmt.Errorf("%w: kind %d, want sketch", codec.ErrKind, h.Kind)
	}
	snap := new(Snapshot[K])
	c := codec.NewCursor(body)
	if err := snap.decodeBody(c, h.Flags, kc, hash); err != nil {
		return nil, err
	}
	if c.Remaining() != 0 {
		return nil, codec.Corruptf("%d trailing bytes", c.Remaining())
	}
	if snap.digest() != h.Digest {
		return nil, fmt.Errorf("%w: header digest %#x, body %#x", codec.ErrConfigMismatch, h.Digest, snap.digest())
	}
	codec.AccountDecode(codec.KindSketch, len(data))
	return snap, nil
}

// maxDecodeQueue bounds restore-plane ring entries per queue as a
// sanity backstop on top of the remaining-bytes bound.
const maxDecodeQueue = 1 << 24

// decodeBody parses the sketch section from c into snap.
func (snap *Snapshot[K]) decodeBody(c *codec.Cursor, flags uint16, kc codec.KeyCodec[K], hash func(K) uint64) error {
	kw := kc.Width()
	snap.window = c.Uint64()
	snap.updates = c.Uint64()
	snap.blockCounts = c.Uint64()
	snap.scale = c.Float64()
	k := c.Uvarint()
	if err := c.Err(); err != nil {
		return err
	}
	const maxK = 1 << 28 // spacesaving's own cap
	if k == 0 || k > maxK {
		return codec.Corruptf("counter budget %d out of range", k)
	}
	if snap.blockCounts == 0 {
		return codec.Corruptf("zero block threshold")
	}
	if snap.window == 0 || snap.window%k != 0 {
		return codec.Corruptf("window %d not a multiple of %d blocks", snap.window, k)
	}
	if !(snap.scale >= 1) {
		return codec.Corruptf("scale %g below 1", snap.scale)
	}
	snap.counters = int(k)
	if hash == nil {
		hash = keyidx.DefaultHasher[K]()
	}
	snap.hash = hash

	// Overflow table: rebuilt under the chosen hash; duplicate keys
	// and non-positive counts are corruption.
	ovLen := c.Count(codec.MaxRecord, kw+1)
	if err := c.Err(); err != nil {
		return err
	}
	// New, not MustNew: the capacity derives from decoded input, so a
	// constructor failure must surface as a decode error, not a panic.
	ov, err := keyidx.New[K](max(ovLen, 1), hash)
	if err != nil {
		return codec.Corruptf("overflow table: %v", err)
	}
	for i := 0; i < ovLen; i++ {
		key := codec.Key(c, kc)
		val := c.Uvarint()
		if err := c.Err(); err != nil {
			return err
		}
		if val == 0 || val > math.MaxInt32 {
			return codec.Corruptf("overflow count %d out of range", val)
		}
		h := ov.Hash(key)
		if _, dup := ov.GetH(key, h); dup {
			return codec.Corruptf("duplicate overflow key")
		}
		ov.PutH(key, int32(val), h)
	}
	snap.overflow = *ov

	// Space Saving counters, ascending count order. Capacity preserves
	// the saturated/unsaturated distinction Min() depends on while
	// sizing slabs by the entries actually present, so a hostile
	// declared budget cannot drive a huge allocation.
	ssLen := c.Count(int(k), kw+2)
	items := c.Uint64()
	if err := c.Err(); err != nil {
		return err
	}
	ssCap := ssLen
	if uint64(ssLen) < k {
		ssCap++ // leave headroom: unsaturated sketches answer Min() = 0
	}
	y, err := spacesaving.NewWithHash[K](max(ssCap, 1), hash)
	if err != nil {
		return err
	}
	var prev uint64
	for i := 0; i < ssLen; i++ {
		key := codec.Key(c, kc)
		count := c.Uvarint()
		errTerm := c.Uvarint()
		if err := c.Err(); err != nil {
			return err
		}
		if count < prev {
			return codec.Corruptf("counter order not ascending (%d after %d)", count, prev)
		}
		prev = count
		if err := y.RestoreEntry(key, count, errTerm); err != nil {
			return codec.Corruptf("%v", err)
		}
	}
	y.SetItems(items)
	snap.y = *y

	snap.full = flags&codec.FlagRestore != 0
	if !snap.full {
		snap.queues = nil
		return nil
	}

	// Restore plane.
	snap.untilBlock = c.Uint64()
	blocksLeft := c.Uvarint()
	snap.fullCount = c.Uint64()
	snap.forcedDrains = c.Uint64()
	nq := c.Count(int(k)+1, 1)
	if err := c.Err(); err != nil {
		return err
	}
	blockPackets := snap.window / k
	if snap.untilBlock == 0 || snap.untilBlock > blockPackets {
		return codec.Corruptf("frame position %d outside block of %d", snap.untilBlock, blockPackets)
	}
	if blocksLeft == 0 || blocksLeft > k {
		return codec.Corruptf("blocks left %d outside 1..%d", blocksLeft, k)
	}
	snap.blocksLeft = int(blocksLeft)
	if uint64(nq) != k+1 {
		return codec.Corruptf("%d ring queues, want %d", nq, k+1)
	}
	if cap(snap.queues) < nq {
		snap.queues = make([][]K, nq)
	} else {
		snap.queues = snap.queues[:nq]
	}
	for i := 0; i < nq; i++ {
		qlen := c.Count(maxDecodeQueue, kw)
		if err := c.Err(); err != nil {
			return err
		}
		q := snap.queues[i][:0]
		for j := 0; j < qlen; j++ {
			q = append(q, codec.Key(c, kc))
		}
		snap.queues[i] = q
	}
	return c.Err()
}

// RestoreFrom rehydrates the sketch from a checkpoint-plane snapshot:
// after it returns nil, the sketch answers every query exactly as the
// snapshot's source did at capture time and keeps sliding correctly
// from that position. The snapshot must carry the restore plane
// (CheckpointInto, or a decoded FlagRestore record) and match the
// sketch's seed-independent configuration; sampler state is not part
// of a snapshot, so the continued update stream is distributionally
// identical but not bit-identical to the source's.
func (s *Sketch[K]) RestoreFrom(snap *Snapshot[K]) error {
	if !snap.full {
		return codec.ErrNotRestorable
	}
	if snap.window != s.window || snap.counters != s.k ||
		snap.blockCounts != s.blockCounts || snap.scale != s.scale {
		return fmt.Errorf("%w: snapshot (W=%d k=%d block=%d scale=%g) vs sketch (W=%d k=%d block=%d scale=%g)",
			codec.ErrConfigMismatch,
			snap.window, snap.counters, snap.blockCounts, snap.scale,
			s.window, s.k, s.blockCounts, s.scale)
	}
	if len(snap.queues) != s.k+1 {
		return codec.Corruptf("%d ring queues, want %d", len(snap.queues), s.k+1)
	}
	if snap.untilBlock == 0 || snap.untilBlock > s.blockPackets {
		return codec.Corruptf("frame position %d outside block of %d", snap.untilBlock, s.blockPackets)
	}
	if snap.blocksLeft <= 0 || snap.blocksLeft > s.k {
		return codec.Corruptf("blocks left %d outside 1..%d", snap.blocksLeft, s.k)
	}
	s.Reset()
	var ferr error
	// Monitored counters re-inserted under the live index's hash
	// (ascending, Iterate's bucket order).
	snap.y.Iterate(func(c spacesaving.Counter[K]) bool {
		if err := s.y.RestoreEntry(c.Key, c.Count, c.Err); err != nil {
			ferr = err
			return false
		}
		return true
	})
	if ferr != nil {
		s.Reset()
		return ferr
	}
	s.y.SetItems(snap.y.Items())
	snap.overflow.Iterate(func(key K, val int32) bool {
		if val <= 0 {
			ferr = codec.Corruptf("overflow count %d out of range", val)
			return false
		}
		s.overflow.Put(key, val)
		return true
	})
	if ferr != nil {
		s.Reset()
		return ferr
	}
	s.ring.restoreFrom(snap.queues)
	s.untilBlock = snap.untilBlock
	s.blocksLeft = snap.blocksLeft
	s.updates = snap.updates
	s.fullCount = snap.fullCount
	s.forcedDrains = snap.forcedDrains
	return nil
}

// CheckpointInto is HHH's checkpoint-plane capture: SnapshotInto plus
// the restore plane of the underlying Memento sketch. Call it under
// the lock guarding hh.
//memento:noalloc
func (hh *HHH) CheckpointInto(snap *HHHSnapshot) {
	hh.mem.CheckpointInto(&snap.mem)
	snap.hier = hh.hier
	snap.comp = hh.comp
}

// Hierarchy returns the captured prefix domain.
func (snap *HHHSnapshot) Hierarchy() hierarchy.Hierarchy { return snap.hier }

// Restorable reports whether the snapshot carries the restore plane.
func (snap *HHHSnapshot) Restorable() bool { return snap.mem.full }

// AppendTo appends the snapshot as a self-contained KindHHH record
// and returns the extended buffer. It fails only when the hierarchy
// has no wire identifier (codec.HierID).
//memento:noalloc
func (snap *HHHSnapshot) AppendTo(dst []byte) ([]byte, error) {
	//memento:allow alloc "HierID allocates only on its unknown-hierarchy error path"
	id, err := codec.HierID(snap.hier)
	if err != nil {
		return dst, err
	}
	start := len(dst)
	dst = codec.AppendHeader(dst, codec.Header{
		Version: codec.Version,
		Kind:    codec.KindHHH,
		Flags:   snap.mem.recordFlags(),
		Digest:  codec.HHHDigest(id, snap.mem.window, uint64(snap.mem.counters), snap.mem.blockCounts, snap.mem.scale),
	})
	dst = append(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(snap.comp))
	dst = snap.mem.appendBody(dst, codec.PrefixKeys{})
	codec.AccountEncode(codec.KindHHH, len(dst)-start)
	return dst, nil
}

// DecodeHHHSnapshot parses a KindHHH record into a fresh queryable
// HHHSnapshot, with the same strictness guarantees as DecodeSnapshot.
// The rebuilt indexes use hierarchy.PrefixHasher(0).
func DecodeHHHSnapshot(data []byte) (*HHHSnapshot, error) {
	h, body, err := codec.ReadHeader(data)
	if err != nil {
		return nil, err
	}
	if h.Kind != codec.KindHHH {
		return nil, fmt.Errorf("%w: kind %d, want hhh", codec.ErrKind, h.Kind)
	}
	c := codec.NewCursor(body)
	id := c.Byte()
	comp := c.Float64()
	if err := c.Err(); err != nil {
		return nil, err
	}
	hier, err := codec.HierByID(id)
	if err != nil {
		return nil, err
	}
	if comp < 0 {
		return nil, codec.Corruptf("negative compensation %g", comp)
	}
	snap := &HHHSnapshot{hier: hier, comp: comp}
	if err := snap.mem.decodeBody(c, h.Flags, codec.PrefixKeys{}, hierarchy.PrefixHasher(0)); err != nil {
		return nil, err
	}
	if c.Remaining() != 0 {
		return nil, codec.Corruptf("%d trailing bytes", c.Remaining())
	}
	want := codec.HHHDigest(id, snap.mem.window, uint64(snap.mem.counters), snap.mem.blockCounts, snap.mem.scale)
	if want != h.Digest {
		return nil, fmt.Errorf("%w: header digest %#x, body %#x", codec.ErrConfigMismatch, h.Digest, want)
	}
	codec.AccountDecode(codec.KindHHH, len(data))
	return snap, nil
}

// RestoreFrom rehydrates the H-Memento instance from a
// checkpoint-plane snapshot. The hierarchy and the underlying
// sketch's seed-independent configuration must match; the sampling
// compensation is an output-computation parameter, not state, so the
// restored instance keeps its own configured Delta.
func (hh *HHH) RestoreFrom(snap *HHHSnapshot) error {
	if !hierarchy.Same(hh.hier, snap.hier) {
		return fmt.Errorf("%w: snapshot hierarchy %v vs instance %v",
			codec.ErrConfigMismatch, snap.hier, hh.hier)
	}
	if err := hh.mem.RestoreFrom(&snap.mem); err != nil {
		return err
	}
	hh.skip = -1
	return nil
}
