// Tests for the durable codec bindings: round-trip answer equality,
// live-sketch rehydration (including continued sliding), strict
// rejection of malformed input, the format-v1 golden file, and the
// encode path's 0 allocs/op contract.

package core

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"memento/internal/codec"
	"memento/internal/hierarchy"
	"memento/internal/keyidx"
	"memento/internal/rng"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// testHash is a fixed deterministic hasher so encode output and table
// iteration order are reproducible across processes.
func testHash(k uint64) uint64 { return keyidx.Mix64(k ^ 0x1234) }

// loadedSketch builds a Sketch[uint64] mid-frame, mid-block, with a
// populated overflow table and ring queues.
func loadedSketch(t testing.TB, tau float64, seed uint64) *Sketch[uint64] {
	t.Helper()
	s, err := NewWithHash[uint64](Config{Window: 1 << 12, Counters: 64, Tau: tau, Seed: seed}, testHash)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed + 9)
	for i := 0; i < 3<<12|137; i++ {
		k := uint64(src.Intn(1 << 14))
		if src.Intn(3) > 0 {
			k = uint64(src.Intn(16)) // heavy keys
		}
		s.Update(k)
	}
	return s
}

// sameAnswers asserts two query planes agree on every probe that
// matters: point estimates, bounds, the overflow set, heavy hitters.
func sameAnswers(t *testing.T, want, got interface {
	Query(uint64) float64
	QueryBounds(uint64) (float64, float64)
	Overflowed(func(uint64, int32) bool)
	HeavyHitters(float64, []Item[uint64]) []Item[uint64]
	EffectiveWindow() int
	Updates() uint64
}) {
	t.Helper()
	if want.EffectiveWindow() != got.EffectiveWindow() {
		t.Fatalf("EffectiveWindow %d vs %d", got.EffectiveWindow(), want.EffectiveWindow())
	}
	if want.Updates() != got.Updates() {
		t.Fatalf("Updates %d vs %d", got.Updates(), want.Updates())
	}
	for k := uint64(0); k < 1<<14; k += 7 {
		if w, g := want.Query(k), got.Query(k); w != g {
			t.Fatalf("Query(%d) = %g, want %g", k, g, w)
		}
		wu, wl := want.QueryBounds(k)
		gu, gl := got.QueryBounds(k)
		if wu != gu || wl != gl {
			t.Fatalf("QueryBounds(%d) = (%g,%g), want (%g,%g)", k, gu, gl, wu, wl)
		}
	}
	wantOv := map[uint64]int32{}
	want.Overflowed(func(k uint64, n int32) bool { wantOv[k] = n; return true })
	gotOv := map[uint64]int32{}
	got.Overflowed(func(k uint64, n int32) bool { gotOv[k] = n; return true })
	if len(wantOv) == 0 {
		t.Fatal("test vacuous: empty overflow table")
	}
	if len(wantOv) != len(gotOv) {
		t.Fatalf("overflow table: %d entries, want %d", len(gotOv), len(wantOv))
	}
	for k, n := range wantOv {
		if gotOv[k] != n {
			t.Fatalf("overflow[%d] = %d, want %d", k, gotOv[k], n)
		}
	}
	for _, theta := range []float64{0.005, 0.02, 0.1} {
		w := want.HeavyHitters(theta, nil)
		g := got.HeavyHitters(theta, nil)
		if len(w) != len(g) {
			t.Fatalf("theta=%v: %d heavy hitters, want %d", theta, len(g), len(w))
		}
		wm := map[uint64]float64{}
		for _, it := range w {
			wm[it.Key] = it.Estimate
		}
		for _, it := range g {
			if wm[it.Key] != it.Estimate {
				t.Fatalf("theta=%v: %d estimate %g, want %g", theta, it.Key, it.Estimate, wm[it.Key])
			}
		}
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	for _, tau := range []float64{1, 1.0 / 8} {
		s := loadedSketch(t, tau, 31)
		var snap Snapshot[uint64]
		s.CheckpointInto(&snap)

		blob := snap.AppendTo(nil, codec.Uint64Keys{})
		dec, err := DecodeSnapshot[uint64](blob, codec.Uint64Keys{}, testHash)
		if err != nil {
			t.Fatalf("tau=%v: decode: %v", tau, err)
		}
		if !dec.Restorable() {
			t.Fatal("decoded checkpoint lost the restore plane")
		}
		// The decoded snapshot answers exactly like the source sketch.
		sameAnswers(t, any(s).(interface {
			Query(uint64) float64
			QueryBounds(uint64) (float64, float64)
			Overflowed(func(uint64, int32) bool)
			HeavyHitters(float64, []Item[uint64]) []Item[uint64]
			EffectiveWindow() int
			Updates() uint64
		}), dec)
		if au, al := (&snap).AbsentBounds(); func() bool { du, dl := dec.AbsentBounds(); return du != au || dl != al }() {
			t.Fatal("AbsentBounds changed across the codec")
		}

		// Query-plane snapshots (no restore flag) round-trip too, and
		// refuse RestoreFrom.
		var qsnap Snapshot[uint64]
		s.SnapshotInto(&qsnap)
		qblob := qsnap.AppendTo(nil, codec.Uint64Keys{})
		qdec, err := DecodeSnapshot[uint64](qblob, codec.Uint64Keys{}, testHash)
		if err != nil {
			t.Fatal(err)
		}
		if qdec.Restorable() {
			t.Fatal("query-plane snapshot claims to be restorable")
		}
		fresh := MustNew[uint64](Config{Window: 1 << 12, Counters: 64, Tau: tau, Seed: 99})
		if err := fresh.RestoreFrom(qdec); !errors.Is(err, codec.ErrNotRestorable) {
			t.Fatalf("RestoreFrom(query-plane) = %v, want ErrNotRestorable", err)
		}
	}
}

func TestRestoreFromContinuesSliding(t *testing.T) {
	// τ = 1 (WCSS): no sampling randomness, so a restored sketch must
	// track the original exactly — both at capture time and after any
	// further shared stream, which exercises the restored ring, frame
	// position, and de-amortized forgetting.
	s := loadedSketch(t, 1, 33)
	var snap Snapshot[uint64]
	s.CheckpointInto(&snap)
	blob := snap.AppendTo(nil, codec.Uint64Keys{})
	dec, err := DecodeSnapshot[uint64](blob, codec.Uint64Keys{}, testHash)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewWithHash[uint64](Config{Window: 1 << 12, Counters: 64, Tau: 1, Seed: 77}, testHash)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreFrom(dec); err != nil {
		t.Fatal(err)
	}
	if restored.FullUpdates() != s.FullUpdates() {
		t.Fatalf("FullUpdates %d, want %d", restored.FullUpdates(), s.FullUpdates())
	}

	src := rng.New(101)
	for step := 0; step < 3<<12; step++ {
		k := uint64(src.Intn(1 << 13))
		if src.Intn(3) > 0 {
			k = uint64(src.Intn(16))
		}
		s.Update(k)
		restored.Update(k)
		if step%1021 == 0 {
			for q := uint64(0); q < 32; q++ {
				if w, g := s.Query(q), restored.Query(q); w != g {
					t.Fatalf("step %d: Query(%d) = %g, want %g", step, q, g, w)
				}
			}
		}
	}
	if s.ForcedDrains() != restored.ForcedDrains() {
		t.Fatalf("ForcedDrains %d, want %d", restored.ForcedDrains(), s.ForcedDrains())
	}
	if s.OverflowEntries() != restored.OverflowEntries() {
		t.Fatalf("OverflowEntries %d, want %d", restored.OverflowEntries(), s.OverflowEntries())
	}
}

func TestRestoreFromRejectsConfigMismatch(t *testing.T) {
	s := loadedSketch(t, 1, 35)
	var snap Snapshot[uint64]
	s.CheckpointInto(&snap)
	for _, cfg := range []Config{
		{Window: 1 << 13, Counters: 64, Tau: 1}, // window differs
		{Window: 1 << 12, Counters: 32, Tau: 1}, // counters differ
		{Window: 1 << 12, Counters: 64, Tau: 0.5}, // scale differs
	} {
		other := MustNew[uint64](cfg)
		if err := other.RestoreFrom(&snap); !errors.Is(err, codec.ErrConfigMismatch) {
			t.Fatalf("cfg %+v: RestoreFrom = %v, want ErrConfigMismatch", cfg, err)
		}
		if other.Updates() != 0 {
			t.Fatal("failed restore mutated the target")
		}
	}
}

// loadedHHH builds an H-Memento over the given hierarchy with a
// skewed stream.
func loadedHHH(t testing.TB, hier hierarchy.Hierarchy, v int, seed uint64) *HHH {
	t.Helper()
	hh, err := NewHHH(HHHConfig{Hierarchy: hier, Window: 1 << 12, Counters: 128 * hier.H(), V: v, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed + 3)
	for i := 0; i < 3<<12|61; i++ {
		a := uint32(src.Intn(1 << 16))
		if src.Intn(3) > 0 {
			a = uint32(src.Intn(24))
		}
		hh.Update(hierarchy.Packet{Src: a, Dst: uint32(src.Intn(64))})
	}
	return hh
}

func TestHHHSnapshotCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		hier hierarchy.Hierarchy
		v    int
	}{
		{hierarchy.OneD{}, 10},
		{hierarchy.TwoD{}, 60},
		{hierarchy.Flows{}, 1},
	} {
		hh := loadedHHH(t, tc.hier, tc.v, 41)
		var snap HHHSnapshot
		hh.CheckpointInto(&snap)
		blob, err := snap.AppendTo(nil)
		if err != nil {
			t.Fatalf("%v: encode: %v", tc.hier, err)
		}
		dec, err := DecodeHHHSnapshot(blob)
		if err != nil {
			t.Fatalf("%v: decode: %v", tc.hier, err)
		}
		if dec.Compensation() != hh.Compensation() {
			t.Fatalf("%v: compensation %g, want %g", tc.hier, dec.Compensation(), hh.Compensation())
		}
		// Decoded snapshot answers like the live instance.
		probes := []hierarchy.Prefix{}
		hh.Sketch().Overflowed(func(p hierarchy.Prefix, _ int32) bool {
			probes = append(probes, p)
			return true
		})
		probes = append(probes, tc.hier.Root(), tc.hier.Fully(hierarchy.Packet{Src: 5}))
		if len(probes) < 3 {
			t.Fatalf("%v: test vacuous: %d probes", tc.hier, len(probes))
		}
		for _, p := range probes {
			if w, g := hh.Query(p), dec.Query(p); w != g {
				t.Fatalf("%v: Query(%v) = %g, want %g", tc.hier, p, g, w)
			}
		}
		wantOut := hh.Output(0.01)
		gotOut := dec.OutputTo(0.01, nil)
		if len(wantOut) != len(gotOut) {
			t.Fatalf("%v: Output: %d entries, want %d", tc.hier, len(gotOut), len(wantOut))
		}
		for i := range wantOut {
			if wantOut[i] != gotOut[i] {
				t.Fatalf("%v: Output[%d] = %+v, want %+v", tc.hier, i, gotOut[i], wantOut[i])
			}
		}

		// Rehydrate a fresh same-config instance and re-check.
		restored := MustNewHHH(HHHConfig{Hierarchy: tc.hier, Window: 1 << 12, Counters: 128 * tc.hier.H(), V: tc.v, Seed: 97})
		if err := restored.RestoreFrom(dec); err != nil {
			t.Fatalf("%v: restore: %v", tc.hier, err)
		}
		for _, p := range probes {
			if w, g := hh.Query(p), restored.Query(p); w != g {
				t.Fatalf("%v: restored Query(%v) = %g, want %g", tc.hier, p, g, w)
			}
		}
		restoredOut := restored.Output(0.01)
		if len(restoredOut) != len(wantOut) {
			t.Fatalf("%v: restored Output: %d entries, want %d", tc.hier, len(restoredOut), len(wantOut))
		}
		for i := range wantOut {
			if wantOut[i] != restoredOut[i] {
				t.Fatalf("%v: restored Output[%d] = %+v, want %+v", tc.hier, i, restoredOut[i], wantOut[i])
			}
		}

		// Hierarchy mismatch is rejected.
		var wrong hierarchy.Hierarchy = hierarchy.TwoD{}
		if tc.hier.Dims() == 2 {
			wrong = hierarchy.OneD{}
		}
		other := MustNewHHH(HHHConfig{Hierarchy: wrong, Window: 1 << 12, Counters: 128 * wrong.H(), V: wrong.H() * 4, Seed: 98})
		if err := other.RestoreFrom(dec); !errors.Is(err, codec.ErrConfigMismatch) {
			t.Fatalf("%v: cross-hierarchy restore = %v, want ErrConfigMismatch", tc.hier, err)
		}
	}
}

func TestHHHRestoreContinuesDeterministically(t *testing.T) {
	// Flows with V = H = 1 has no sampling randomness left in the
	// update path, so original and restored must agree forever.
	hh := loadedHHH(t, hierarchy.Flows{}, 1, 43)
	var snap HHHSnapshot
	hh.CheckpointInto(&snap)
	restored := MustNewHHH(HHHConfig{Hierarchy: hierarchy.Flows{}, Window: 1 << 12, Counters: 128, V: 1, Seed: 7})
	if err := restored.RestoreFrom(&snap); err != nil {
		t.Fatal(err)
	}
	src := rng.New(404)
	for i := 0; i < 1<<13; i++ {
		p := hierarchy.Packet{Src: uint32(src.Intn(512))}
		hh.Update(p)
		restored.Update(p)
	}
	probe := hierarchy.Prefix{Src: 3, SrcLen: 4}
	if w, g := hh.Query(probe), restored.Query(probe); w != g {
		t.Fatalf("diverged after restore: %g vs %g", g, w)
	}
	a, b := hh.Output(0.01), restored.Output(0.01)
	if len(a) != len(b) {
		t.Fatalf("Output diverged: %d vs %d entries", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Output[%d] diverged: %+v vs %+v", i, b[i], a[i])
		}
	}
}

func TestDecodeSnapshotRejectsMalformed(t *testing.T) {
	s := loadedSketch(t, 1.0/4, 51)
	var snap Snapshot[uint64]
	s.CheckpointInto(&snap)
	valid := snap.AppendTo(nil, codec.Uint64Keys{})
	if _, err := DecodeSnapshot[uint64](valid, codec.Uint64Keys{}, testHash); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}

	// Every truncation fails cleanly.
	for i := 0; i < len(valid); i += 3 {
		if _, err := DecodeSnapshot[uint64](valid[:i], codec.Uint64Keys{}, testHash); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Trailing junk fails.
	if _, err := DecodeSnapshot[uint64](append(bytes.Clone(valid), 0), codec.Uint64Keys{}, testHash); err == nil {
		t.Fatal("trailing junk accepted")
	}
	// Bad magic.
	bad := bytes.Clone(valid)
	bad[0] ^= 0xff
	if _, err := DecodeSnapshot[uint64](bad, codec.Uint64Keys{}, testHash); !errors.Is(err, codec.ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	// Future version.
	bad = bytes.Clone(valid)
	bad[4] = codec.Version + 1
	if _, err := DecodeSnapshot[uint64](bad, codec.Uint64Keys{}, testHash); !errors.Is(err, codec.ErrVersion) {
		t.Fatalf("version skew: %v", err)
	}
	// Wrong kind.
	bad = bytes.Clone(valid)
	bad[5] = codec.KindHHH
	if _, err := DecodeSnapshot[uint64](bad, codec.Uint64Keys{}, testHash); !errors.Is(err, codec.ErrKind) {
		t.Fatalf("wrong kind: %v", err)
	}
	// Config tampering breaks the digest.
	bad = bytes.Clone(valid)
	bad[codec.HeaderSize+7] ^= 0x01 // low byte of window
	if _, err := DecodeSnapshot[uint64](bad, codec.Uint64Keys{}, testHash); err == nil {
		t.Fatal("window tamper accepted")
	}
}

func TestHHHGoldenV1(t *testing.T) {
	// A fixed configuration and stream pin format v1 byte-for-byte:
	// any encoder change that breaks old readers fails here instead of
	// in a future PR's production restart path. Everything feeding the
	// encoder is deterministic (PrefixHasher keyed by the config seed,
	// fixed-seed PRNG stream).
	hh := MustNewHHH(HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 1 << 10, Counters: 32 * 5, V: 10, Seed: 61})
	src := rng.New(62)
	for i := 0; i < 5000; i++ {
		a := uint32(src.Intn(1 << 12))
		if src.Intn(2) == 0 {
			a = uint32(src.Intn(8))
		}
		hh.Update(hierarchy.Packet{Src: a})
	}
	var snap HHHSnapshot
	hh.CheckpointInto(&snap)
	blob, err := snap.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "hhh_snapshot_v1.bin")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("encoding of the pinned v1 scenario changed: %d bytes vs golden %d — "+
			"if the format changed intentionally, bump codec.Version and add a new golden",
			len(blob), len(want))
	}
	// The golden file itself must decode and answer sanely.
	dec, err := DecodeHHHSnapshot(want)
	if err != nil {
		t.Fatalf("golden file no longer decodes: %v", err)
	}
	if dec.Updates() != hh.Sketch().Updates() {
		t.Fatalf("golden Updates %d, want %d", dec.Updates(), hh.Sketch().Updates())
	}
	if got, want := dec.OutputTo(0.02, nil), hh.Output(0.02); len(got) != len(want) {
		t.Fatalf("golden Output has %d entries, want %d", len(got), len(want))
	}
}

func FuzzDecodeSnapshot(f *testing.F) {
	// Small seed instances keep the engine's per-input minimization
	// cheap; the size of the source sketch doesn't change the decode
	// paths exercised.
	s := MustNew[uint64](Config{Window: 1 << 8, Counters: 16, Tau: 1.0 / 4, Seed: 71})
	src := rng.New(72)
	for i := 0; i < 1<<10; i++ {
		s.Update(uint64(src.Intn(64)))
	}
	var snap Snapshot[uint64]
	s.CheckpointInto(&snap)
	f.Add(snap.AppendTo(nil, codec.Uint64Keys{}))
	var qsnap Snapshot[uint64]
	s.SnapshotInto(&qsnap)
	f.Add(qsnap.AppendTo(nil, codec.Uint64Keys{}))
	f.Add([]byte{})
	f.Add(codec.AppendHeader(nil, codec.Header{Version: codec.Version, Kind: codec.KindSketch}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and never allocate beyond the record's own
		// size class; a successful decode must re-encode to a record
		// that decodes to the same answers.
		dec, err := DecodeSnapshot[uint64](data, codec.Uint64Keys{}, testHash)
		if err != nil {
			return
		}
		re := dec.AppendTo(nil, codec.Uint64Keys{})
		dec2, err := DecodeSnapshot[uint64](re, codec.Uint64Keys{}, testHash)
		if err != nil {
			t.Fatalf("re-encode of accepted record rejected: %v", err)
		}
		for k := uint64(0); k < 64; k++ {
			if dec.Query(k) != dec2.Query(k) {
				t.Fatalf("re-encode changed Query(%d)", k)
			}
		}
	})
}

func FuzzDecodeHHHSnapshot(f *testing.F) {
	hh := MustNewHHH(HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 1 << 8, Counters: 16 * 5, V: 10, Seed: 73})
	src := rng.New(74)
	for i := 0; i < 1<<10; i++ {
		hh.Update(hierarchy.Packet{Src: uint32(src.Intn(64))})
	}
	var snap HHHSnapshot
	hh.CheckpointInto(&snap)
	blob, err := snap.AppendTo(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeHHHSnapshot(data)
		if err != nil {
			return
		}
		if math.IsNaN(dec.Compensation()) {
			t.Fatal("accepted NaN compensation")
		}
		_ = dec.OutputTo(0.05, nil) // must not panic on any accepted record
	})
}

func BenchmarkSnapshotEncode(b *testing.B) {
	// The encode hot path: checkpoint capture + AppendTo into a reused
	// buffer. CI gates 0 allocs/op, the contract that lets the
	// periodic checkpointer and the snapshot-shipping agent run in
	// steady state without GC traffic.
	hh := loadedHHH(b, hierarchy.OneD{}, 10, 81)
	var snap HHHSnapshot
	var buf []byte
	hh.CheckpointInto(&snap)
	var err error
	if buf, err = snap.AppendTo(buf[:0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.CheckpointInto(&snap)
		buf, err = snap.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = buf
}
