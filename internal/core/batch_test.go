package core

import (
	"math"
	"testing"

	"memento/internal/exact"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// TestWindowAdvanceMatchesWindowUpdate pins the bulk slide to the
// per-packet reference: after identical Full updates, advancing by
// arbitrary chunk sizes must leave the sketch in exactly the state
// that the same number of WindowUpdate calls produces.
func TestWindowAdvanceMatchesWindowUpdate(t *testing.T) {
	const window = 1000
	const k = 8
	cfg := Config{Window: window, Counters: k, Seed: 11}
	bulk := MustNew[int](cfg)
	ref := MustNew[int](cfg)

	// Populate overflow queues and the B table identically.
	feed := func(s *Sketch[int]) {
		for i := 0; i < 3*window; i++ {
			s.FullUpdate(i % 7)
		}
	}
	feed(bulk)
	feed(ref)

	sizes := []int{1, 2, 3, 5, 124, 125, 126, 999, 1000, 1001, 2500, 1, 7}
	total := 0
	for _, n := range sizes {
		bulk.WindowAdvance(n)
		for i := 0; i < n; i++ {
			ref.WindowUpdate()
		}
		total += n

		if bulk.position() != ref.position() || bulk.updates != ref.updates {
			t.Fatalf("after %d packets: position %d/%d updates %d/%d",
				total, bulk.position(), ref.position(), bulk.updates, ref.updates)
		}
		if bulk.forcedDrains != ref.forcedDrains {
			t.Fatalf("after %d packets: forcedDrains %d != %d",
				total, bulk.forcedDrains, ref.forcedDrains)
		}
		if bulk.ring.pending() != ref.ring.pending() {
			t.Fatalf("after %d packets: pending %d != %d",
				total, bulk.ring.pending(), ref.ring.pending())
		}
		if bulk.overflow.Len() != ref.overflow.Len() {
			t.Fatalf("after %d packets: overflow table sizes %d != %d",
				total, bulk.overflow.Len(), ref.overflow.Len())
		}
		ref.overflow.Iterate(func(key int, n int32) bool {
			if got, _ := bulk.overflow.Get(key); got != n {
				t.Fatalf("after %d packets: overflow[%d] = %d, want %d",
					total, key, got, n)
			}
			return true
		})
		for key := 0; key < 7; key++ {
			if got, want := bulk.Query(key), ref.Query(key); got != want {
				t.Fatalf("after %d packets: Query(%d) = %v, want %v", total, key, got, want)
			}
		}
	}
}

// TestUpdateBatchSegmentationInvariant feeds the same stream through
// different batch segmentations with the same seed: the geometric skip
// state persists across batches, so the resulting sketches must be
// identical — including against batch size 1.
func TestUpdateBatchSegmentationInvariant(t *testing.T) {
	const window = 4096
	const n = 3 * window
	keys := make([]uint64, n)
	src := rng.New(42)
	for i := range keys {
		keys[i] = uint64(src.Intn(200))
	}
	cfg := Config{Window: window, Counters: 64, Tau: 1.0 / 16, Seed: 77}

	run := func(batch int) *Sketch[uint64] {
		s := MustNew[uint64](cfg)
		for i := 0; i < n; i += batch {
			end := i + batch
			if end > n {
				end = n
			}
			s.UpdateBatch(keys[i:end])
		}
		return s
	}
	want := run(1)
	for _, batch := range []int{3, 64, 1000, n} {
		got := run(batch)
		if got.FullUpdates() != want.FullUpdates() || got.Updates() != want.Updates() {
			t.Fatalf("batch=%d: %d/%d full/total updates, want %d/%d",
				batch, got.FullUpdates(), got.Updates(), want.FullUpdates(), want.Updates())
		}
		for k := uint64(0); k < 200; k++ {
			if got.Query(k) != want.Query(k) {
				t.Fatalf("batch=%d: Query(%d) = %v, want %v", batch, k, got.Query(k), want.Query(k))
			}
		}
	}
}

// TestUpdateBatchFullRate asserts the distributional contract with
// Update: the batched geometric sampler must realize the same
// Full-update rate τ as the per-packet Bernoulli sampler, within a
// generous multiple of the binomial standard deviation.
func TestUpdateBatchFullRate(t *testing.T) {
	const window = 1 << 14
	const n = 1 << 19
	keys := make([]uint64, n)
	src := rng.New(5)
	for i := range keys {
		keys[i] = uint64(src.Intn(500))
	}
	for _, tau := range []float64{1, 1.0 / 4, 1.0 / 64, 1.0 / 512} {
		cfg := Config{Window: window, Counters: 128, Tau: tau, Seed: 13}
		batched := MustNew[uint64](cfg)
		perPkt := MustNew[uint64](cfg)
		for i := 0; i < n; i += 256 {
			batched.UpdateBatch(keys[i : i+256])
		}
		for _, k := range keys {
			perPkt.Update(k)
		}
		if batched.Updates() != n || perPkt.Updates() != n {
			t.Fatalf("tau=%v: updates %d/%d, want %d", tau, batched.Updates(), perPkt.Updates(), n)
		}
		sigma := math.Sqrt(float64(n) * tau * (1 - tau))
		slack := 6*sigma + 1
		got := float64(batched.FullUpdates())
		want := tau * n
		if math.Abs(got-want) > slack {
			t.Errorf("tau=%v: batched full updates %v, want %v ± %v", tau, got, want, slack)
		}
		ref := float64(perPkt.FullUpdates())
		if math.Abs(ref-want) > slack {
			t.Errorf("tau=%v: per-packet full updates %v, want %v ± %v", tau, ref, want, slack)
		}
		if tau == 1 && batched.FullUpdates() != n {
			t.Errorf("tau=1: every batched update must be Full, got %d/%d", batched.FullUpdates(), n)
		}
	}
}

// TestUpdateBatchAccuracy checks the batched path against the exact
// oracle: estimates stay one-sided up to sampling noise and within the
// combined εa+εs error band, mirroring the per-packet accuracy tests.
func TestUpdateBatchAccuracy(t *testing.T) {
	const window = 1 << 13
	const k = 256
	const tau = 1.0 / 8
	s := MustNew[uint64](Config{Window: window, Counters: k, Tau: tau, Seed: 3})
	oracle := exact.MustNewSlidingWindow[uint64](s.EffectiveWindow())
	src := rng.New(99)
	const n = 1 << 16
	batch := make([]uint64, 0, 512)
	for i := 0; i < n; i++ {
		// Zipf-ish skew: low keys are heavy.
		key := uint64(src.Intn(32))
		if src.Intn(4) == 0 {
			key = uint64(32 + src.Intn(4096))
		}
		batch = append(batch, key)
		oracle.Add(key)
		if len(batch) == cap(batch) {
			s.UpdateBatch(batch)
			batch = batch[:0]
		}
	}
	s.UpdateBatch(batch)

	w := float64(s.EffectiveWindow())
	epsA := 4 * float64(s.EffectiveWindow()) / float64(k)
	epsS := 4 / math.Sqrt(tau*w) * w // ~4σ of sampling noise in packets
	band := epsA + epsS
	for key := uint64(0); key < 32; key++ {
		est := s.Query(key)
		truth := float64(oracle.Count(key))
		if est-truth > band || truth-est > band {
			t.Errorf("Query(%d) = %v, exact %v, |diff| > %v", key, est, truth, band)
		}
	}
}

// TestHHHUpdateBatch checks the H-Memento batch path: the window
// position advances one per packet, the sampled-prefix rate matches
// H/V, and batched estimates track the per-packet path within the
// sampling error band.
func TestHHHUpdateBatch(t *testing.T) {
	const window = 1 << 13
	const n = 1 << 17
	hier := hierarchy.OneD{}
	h := hier.H()
	v := h * 16
	mk := func(seed uint64) *HHH {
		return MustNewHHH(HHHConfig{
			Hierarchy: hier, Window: window, Counters: 64 * h, V: v, Seed: seed,
		})
	}
	batched := mk(21)
	perPkt := mk(21)

	src := rng.New(1234)
	pkts := make([]hierarchy.Packet, n)
	for i := range pkts {
		pkts[i] = hierarchy.Packet{Src: uint32(src.Intn(64))}
	}
	for i := 0; i < n; i += 500 {
		end := i + 500
		if end > n {
			end = n
		}
		batched.UpdateBatch(pkts[i:end])
	}
	for _, p := range pkts {
		perPkt.Update(p)
	}

	if got := batched.Sketch().Updates(); got != n {
		t.Fatalf("batched window position advanced %d, want %d", got, n)
	}
	tau := float64(h) / float64(v)
	sigma := math.Sqrt(float64(n) * tau * (1 - tau))
	got := float64(batched.Sketch().FullUpdates())
	if want := tau * n; math.Abs(got-want) > 6*sigma+1 {
		t.Errorf("batched sampled-prefix count %v, want %v ± %v", got, want, 6*sigma+1)
	}

	// Estimates from the two paths agree within sampling noise for a
	// heavy prefix.
	p := hier.Prefix(hierarchy.Packet{Src: 1}, 0)
	a, b := batched.Query(p), perPkt.Query(p)
	w := float64(batched.EffectiveWindow())
	band := 4*float64(window)/float64(64*h)*float64(h) + 8*math.Sqrt(float64(v)*w)
	if math.Abs(a-b) > band {
		t.Errorf("batched Query %v vs per-packet %v differ by more than %v", a, b, band)
	}
}
