// Delta plane: the core-side hooks behind internal/delta's
// incremental replication. A sketch with tracking enabled maintains a
// dirty-key set — every key whose monitored counter or overflow-table
// entry may have changed since the last capture — plus flush/reset
// event counters, so an encoder can ship only changed state instead
// of the whole table. The plane stays off the 0-alloc hot path:
// marking rides the sampled Full-update and de-amortized pop branches
// (one nil check each), the common WindowUpdate path is untouched,
// and clearing the set at capture time is O(1) via keyidx's
// generation-stamp Flush.
//
// This file also provides the inverse of the dirty diff:
// BuildSnapshot assembles a queryable Snapshot from explicit state
// with the same validation discipline as the wire decoder, which is
// how a delta chain's applied state materializes back into something
// Query/OutputTo/RestoreFrom understand.

package core

import (
	"errors"
	"math"

	"memento/internal/codec"
	"memento/internal/hierarchy"
	"memento/internal/keyidx"
	"memento/internal/spacesaving"
)

// EnableDeltaTracking switches on the dirty-key plane. Idempotent.
// The set is sized like the overflow table and grows only if an
// interval touches more keys than that; call DeltaCaptureInto at the
// replication cadence to drain it.
func (s *Sketch[K]) EnableDeltaTracking() {
	if s.dirty != nil {
		return
	}
	s.dirty = keyidx.MustNew[K](2*(s.k+1), s.hash)
	s.y.SetEvictHook(func(k K) { s.dirty.Insert(k) })
}

// DeltaTracking reports whether the dirty-key plane is enabled.
func (s *Sketch[K]) DeltaTracking() bool { return s.dirty != nil }

// BlockCounts returns the overflow threshold in sampled counts
// (τ·W/k; see the package comment on units).
func (s *Sketch[K]) BlockCounts() uint64 { return s.blockCounts }

// DirtySet is a captured dirty-key interval: the keys whose state may
// have changed between two delta captures, plus the structural events
// (in-frame flushes, full resets) the interval saw. The zero value is
// empty and ready for DeltaCaptureInto, which recycles its slab.
type DirtySet[K comparable] struct {
	keys    keyidx.Index[K]
	flushes uint32
	resets  uint32
}

// Len returns the number of captured dirty keys.
func (d *DirtySet[K]) Len() int { return d.keys.Len() }

// Flushed reports whether the interval crossed at least one frame
// boundary (or Reset): the monitored counter set was emptied, so an
// applier must clear it before installing the carried entries.
func (d *DirtySet[K]) Flushed() bool { return d.flushes > 0 }

// WasReset reports whether Sketch.Reset ran during the interval
// (including via RestoreFrom). A reset invalidates the chain — the
// overflow table was cleared without per-key dirty marks — so the
// next record must be a base.
func (d *DirtySet[K]) WasReset() bool { return d.resets > 0 }

// Iterate calls fn for every captured dirty key until fn returns
// false. Order is unspecified.
func (d *DirtySet[K]) Iterate(fn func(K) bool) {
	d.keys.Iterate(func(k K, _ int32) bool { return fn(k) })
}

// DeltaCaptureInto captures the sketch's queryable state into snap
// (plus the restore plane when restorePlane is set) together with the
// dirty interval since the previous capture, then clears the live
// tracking state in O(1). Call it under the lock guarding the sketch,
// exactly like SnapshotInto/CheckpointInto — the added cost over
// those is one slab copy of the dirty set.
//
// The capture and the clear are one atomic step: every mutation is in
// either the previous interval or the next, never both or neither.
//memento:noalloc
func (s *Sketch[K]) DeltaCaptureInto(snap *Snapshot[K], dirty *DirtySet[K], restorePlane bool) error {
	if s.dirty == nil {
		//memento:allow alloc "error construction on the disabled-tracking cold path"
		return errors.New("core: delta tracking not enabled")
	}
	if restorePlane {
		s.CheckpointInto(snap)
	} else {
		s.SnapshotInto(snap)
	}
	s.dirty.CopyInto(&dirty.keys)
	dirty.flushes = s.dirtyFlushes
	dirty.resets = s.dirtyResets
	s.dirty.Flush()
	s.dirtyFlushes, s.dirtyResets = 0, 0
	return nil
}

// EnableDeltaTracking switches on the dirty-key plane of the
// underlying Memento sketch. Idempotent.
func (hh *HHH) EnableDeltaTracking() { hh.mem.EnableDeltaTracking() }

// DeltaCaptureInto is Sketch.DeltaCaptureInto for an H-Memento
// instance; call it under the lock guarding hh.
//memento:noalloc
func (hh *HHH) DeltaCaptureInto(snap *HHHSnapshot, dirty *DirtySet[hierarchy.Prefix], restorePlane bool) error {
	if err := hh.mem.DeltaCaptureInto(&snap.mem, dirty, restorePlane); err != nil {
		return err
	}
	snap.hier = hh.hier
	snap.comp = hh.comp
	return nil
}

// Items returns the number of in-frame Space Saving additions at
// capture time (the counter Flush resets each frame).
func (snap *Snapshot[K]) Items() uint64 { return snap.y.Items() }

// BlockCounts returns the captured overflow threshold in sampled
// counts.
func (snap *Snapshot[K]) BlockCounts() uint64 { return snap.blockCounts }

// UntilBlock returns the captured frame position countdown; valid
// only on restore-plane snapshots.
func (snap *Snapshot[K]) UntilBlock() uint64 { return snap.untilBlock }

// BlocksLeft returns the captured blocks-until-frame-flush countdown;
// valid only on restore-plane snapshots.
func (snap *Snapshot[K]) BlocksLeft() int { return snap.blocksLeft }

// ForcedDrains returns the captured forced-drain diagnostic counter;
// valid only on restore-plane snapshots.
func (snap *Snapshot[K]) ForcedDrains() uint64 { return snap.forcedDrains }

// Queues calls fn for each captured block-ring queue in canonical
// oldest→current order until fn returns false; valid only on
// restore-plane snapshots (no queues otherwise). The slices are the
// snapshot's own — treat them as read-only.
func (snap *Snapshot[K]) Queues(fn func(q []K) bool) {
	for _, q := range snap.queues {
		if !fn(q) {
			return
		}
	}
}

// Monitored calls fn for every captured in-frame Space Saving counter
// (ascending count order — Iterate's bucket order) until fn returns
// false. Unlike ForEachEstimate it exposes the raw counter with its
// error term, which is what the replication plane serializes.
func (snap *Snapshot[K]) Monitored(fn func(c spacesaving.Counter[K]) bool) {
	snap.y.Iterate(fn)
}

// DeltaEntry probes one key's replicable state: its monitored
// in-frame counter (count, errTerm) and overflow-table value b, with
// presence flags for each. The delta encoder calls it for every dirty
// key to serialize the key's current state.
func (snap *Snapshot[K]) DeltaEntry(x K) (count, errTerm uint64, b int32, monitored, overflowed bool) {
	if snap.hash != nil {
		h := snap.hash(x)
		b, overflowed = snap.overflow.GetH(x, h)
		var c spacesaving.Counter[K]
		c, monitored = snap.y.LookupHashed(x, h)
		return c.Count, c.Err, b, monitored, overflowed
	}
	b, overflowed = snap.overflow.Get(x)
	c, monitored := snap.y.Lookup(x)
	return c.Count, c.Err, b, monitored, overflowed
}

// OverflowEntry is one overflow-table entry of a SnapshotSpec.
type OverflowEntry[K comparable] struct {
	Key       K
	Overflows int32
}

// RestoreSpec is the optional restore plane of a SnapshotSpec.
type RestoreSpec[K comparable] struct {
	// UntilBlock is the frame position countdown (1..W/k packets).
	UntilBlock uint64
	// BlocksLeft is the frame flush countdown (1..k blocks).
	BlocksLeft int
	// FullUpdates and ForcedDrains are the update breakdown.
	FullUpdates  uint64
	ForcedDrains uint64
	// Queues are the block-ring queues, oldest→current; exactly k+1.
	Queues [][]K
}

// SnapshotSpec is the explicit state BuildSnapshot assembles into a
// queryable Snapshot — the materialization path for applied delta
// chains (internal/delta.State).
type SnapshotSpec[K comparable] struct {
	// Window, Counters, BlockCounts and Scale are the seed-independent
	// configuration (EffectiveWindow, k, τ·W/k, query scale).
	Window      uint64
	Counters    int
	BlockCounts uint64
	Scale       float64
	// Updates and Items are the capture-time counters.
	Updates uint64
	Items   uint64
	// Overflow is the overflow table B (order free, keys unique,
	// counts positive).
	Overflow []OverflowEntry[K]
	// Monitored are the in-frame Space Saving counters in ascending
	// count order, each with Err < Count.
	Monitored []spacesaving.Counter[K]
	// Restore, when non-nil, adds the restore plane: the built
	// snapshot can rehydrate a live sketch via RestoreFrom.
	Restore *RestoreSpec[K]
}

// BuildSnapshot validates spec and assembles a Snapshot answering
// queries exactly as a decoded wire record with the same contents
// would: the Space Saving slabs are sized by the entries present
// (preserving the saturated/unsaturated Min() distinction), indexes
// are built under hash (nil: the keyidx default), and every
// invariant the strict decoder enforces is enforced here, with
// wrapped codec.ErrCorrupt on violation.
func BuildSnapshot[K comparable](spec SnapshotSpec[K], hash func(K) uint64) (*Snapshot[K], error) {
	const maxK = 1 << 28 // spacesaving's own cap
	k := uint64(spec.Counters)
	if k == 0 || k > maxK {
		return nil, codec.Corruptf("counter budget %d out of range", spec.Counters)
	}
	if spec.BlockCounts == 0 {
		return nil, codec.Corruptf("zero block threshold")
	}
	if spec.Window == 0 || spec.Window%k != 0 {
		return nil, codec.Corruptf("window %d not a multiple of %d blocks", spec.Window, k)
	}
	if !(spec.Scale >= 1) {
		return nil, codec.Corruptf("scale %g below 1", spec.Scale)
	}
	if hash == nil {
		hash = keyidx.DefaultHasher[K]()
	}
	snap := &Snapshot[K]{
		window:      spec.Window,
		updates:     spec.Updates,
		blockCounts: spec.BlockCounts,
		scale:       spec.Scale,
		counters:    int(k),
		hash:        hash,
	}

	// New, not MustNew: the capacity derives from caller-assembled
	// (possibly decoded) input, so a constructor failure must surface
	// as an error, not a panic.
	ov, err := keyidx.New[K](max(len(spec.Overflow), 1), hash)
	if err != nil {
		return nil, codec.Corruptf("overflow table: %v", err)
	}
	for _, e := range spec.Overflow {
		if e.Overflows <= 0 {
			return nil, codec.Corruptf("overflow count %d out of range", e.Overflows)
		}
		h := ov.Hash(e.Key)
		if _, dup := ov.GetH(e.Key, h); dup {
			return nil, codec.Corruptf("duplicate overflow key")
		}
		ov.PutH(e.Key, e.Overflows, h)
	}
	snap.overflow = *ov

	if uint64(len(spec.Monitored)) > k {
		return nil, codec.Corruptf("%d monitored counters exceed budget %d", len(spec.Monitored), k)
	}
	ssCap := len(spec.Monitored)
	if uint64(ssCap) < k {
		ssCap++ // headroom: unsaturated sketches answer Min() = 0
	}
	y, err := spacesaving.NewWithHash[K](max(ssCap, 1), hash)
	if err != nil {
		return nil, err
	}
	var prev uint64
	for _, c := range spec.Monitored {
		if c.Count < prev {
			return nil, codec.Corruptf("counter order not ascending (%d after %d)", c.Count, prev)
		}
		prev = c.Count
		if err := y.RestoreEntry(c.Key, c.Count, c.Err); err != nil {
			return nil, codec.Corruptf("%v", err)
		}
	}
	y.SetItems(spec.Items)
	snap.y = *y

	r := spec.Restore
	if r == nil {
		return snap, nil
	}
	blockPackets := spec.Window / k
	if r.UntilBlock == 0 || r.UntilBlock > blockPackets {
		return nil, codec.Corruptf("frame position %d outside block of %d", r.UntilBlock, blockPackets)
	}
	if r.BlocksLeft <= 0 || uint64(r.BlocksLeft) > k {
		return nil, codec.Corruptf("blocks left %d outside 1..%d", r.BlocksLeft, k)
	}
	if uint64(len(r.Queues)) != k+1 {
		return nil, codec.Corruptf("%d ring queues, want %d", len(r.Queues), k+1)
	}
	snap.full = true
	snap.untilBlock = r.UntilBlock
	snap.blocksLeft = r.BlocksLeft
	snap.fullCount = r.FullUpdates
	snap.forcedDrains = r.ForcedDrains
	snap.queues = make([][]K, len(r.Queues))
	for i, q := range r.Queues {
		snap.queues[i] = append([]K(nil), q...)
	}
	return snap, nil
}

// BuildHHHSnapshot is BuildSnapshot for an H-Memento capture: the
// assembled snapshot carries the hierarchy and sampling compensation
// and answers OutputTo like a decoded KindHHH record (indexes built
// under hierarchy.PrefixHasher(0), matching DecodeHHHSnapshot).
func BuildHHHSnapshot(hier hierarchy.Hierarchy, comp float64, spec SnapshotSpec[hierarchy.Prefix]) (*HHHSnapshot, error) {
	if hier == nil {
		return nil, errors.New("core: BuildHHHSnapshot needs a hierarchy")
	}
	if comp < 0 || math.IsNaN(comp) {
		return nil, codec.Corruptf("negative compensation %g", comp)
	}
	mem, err := BuildSnapshot(spec, hierarchy.PrefixHasher(0))
	if err != nil {
		return nil, err
	}
	snap := &HHHSnapshot{hier: hier, comp: comp}
	snap.mem = *mem
	return snap, nil
}
