package core

import (
	"math"
	"testing"

	"memento/internal/exact"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

func TestHHHConfigValidation(t *testing.T) {
	if _, err := NewHHH(HHHConfig{Window: 100, Counters: 10}); err == nil {
		t.Error("missing hierarchy should fail")
	}
	if _, err := NewHHH(HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 100, Counters: 10, V: 3}); err == nil {
		t.Error("V < H should fail")
	}
	if _, err := NewHHH(HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 100}); err == nil {
		t.Error("missing counters/epsilon should fail")
	}
	if _, err := NewHHH(HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 100, Counters: 10, Delta: 2}); err == nil {
		t.Error("bad delta should fail")
	}
	h, err := NewHHH(HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 100, EpsilonA: 0.1})
	if err != nil {
		t.Fatalf("valid config failed: %v", err)
	}
	if h.V() != 5 {
		t.Fatalf("default V = %d, want H = 5", h.V())
	}
	if h.Sketch().Counters() != 200 {
		t.Fatalf("k = %d, want ⌈4·5/0.1⌉ = 200", h.Sketch().Counters())
	}
}

func TestHHHUpdateSamplingRate(t *testing.T) {
	// A packet triggers a Full update with probability H/V.
	h := MustNewHHH(HHHConfig{
		Hierarchy: hierarchy.OneD{}, Window: 4096, Counters: 160, V: 40, Seed: 5,
	})
	const n = 200000
	r := rng.New(2)
	for i := 0; i < n; i++ {
		h.Update(hierarchy.Packet{Src: uint32(r.Uint64())})
	}
	got := float64(h.Sketch().FullUpdates()) / float64(n)
	want := 5.0 / 40
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("full update rate %v, want ≈ %v", got, want)
	}
	if h.Sketch().Updates() != n {
		t.Fatalf("window advanced %d times, want one per packet", h.Sketch().Updates())
	}
}

func TestSamplePrefixDistribution(t *testing.T) {
	h := MustNewHHH(HHHConfig{
		Hierarchy: hierarchy.OneD{}, Window: 1024, Counters: 100, V: 10, Seed: 6,
	})
	pkt := hierarchy.Packet{Src: hierarchy.IPv4(10, 20, 30, 40)}
	counts := map[hierarchy.Prefix]int{}
	const n = 100000
	sampled := 0
	for i := 0; i < n; i++ {
		if p, ok := h.SamplePrefix(pkt); ok {
			counts[p]++
			sampled++
		}
	}
	if len(counts) != 5 {
		t.Fatalf("sampled %d distinct patterns, want 5", len(counts))
	}
	// Each prefix pattern is sampled with probability 1/V = 1/10.
	for p, c := range counts {
		if math.Abs(float64(c)-n/10) > 6*math.Sqrt(n/10.0) {
			t.Fatalf("pattern %v sampled %d times, want ≈ %d", p, c, n/10)
		}
	}
	_ = sampled
}

// hhhWorkload1D generates the test traffic mix: a heavy subnet
// (distinct sources within 10.0.0.0/8), one heavy single flow, and
// uniform noise, returning the packets.
func hhhWorkload1D(seed uint64, n int, subnetFrac, flowFrac float64) []hierarchy.Packet {
	r := rng.New(seed)
	pkts := make([]hierarchy.Packet, n)
	for i := range pkts {
		u := r.Float64()
		switch {
		case u < subnetFrac:
			// Random host within 10.0.0.0/8.
			pkts[i] = hierarchy.Packet{Src: hierarchy.IPv4(10, byte(r.Uint32()), byte(r.Uint32()), byte(r.Uint32()))}
		case u < subnetFrac+flowFrac:
			pkts[i] = hierarchy.Packet{Src: hierarchy.IPv4(99, 1, 2, 3)}
		default:
			// Noise outside both: first octet ≥ 128.
			pkts[i] = hierarchy.Packet{Src: 0x80000000 | (uint32(r.Uint64()) >> 1)}
		}
	}
	return pkts
}

func TestHHH1DFindsSubnetAndFlow(t *testing.T) {
	const window = 100000
	h := MustNewHHH(HHHConfig{
		Hierarchy: hierarchy.OneD{}, Window: window, Counters: 512 * 5, V: 5, Seed: 31,
	})
	for _, p := range hhhWorkload1D(1, 2*window, 0.40, 0.20) {
		h.Update(p)
	}
	out := h.Output(0.15)
	got := map[hierarchy.Prefix]bool{}
	for _, hp := range out {
		got[hp.Prefix] = true
	}
	subnet := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}
	flow := hierarchy.Prefix{Src: hierarchy.IPv4(99, 1, 2, 3), SrcLen: 4}
	if !got[subnet] {
		t.Fatalf("40%% subnet missing from HHH set: %v", out)
	}
	if !got[flow] {
		t.Fatalf("20%% flow missing from HHH set: %v", out)
	}
	// The flow's ancestors carry (almost) nothing beyond the flow
	// itself and must be excluded by the conditioned frequency.
	for _, keep := range []uint8{1, 2, 3} {
		anc := hierarchy.Prefix{Src: hierarchy.MaskBytes(flow.Src, keep), SrcLen: keep}
		if got[anc] {
			t.Fatalf("ancestor %v selected despite conditioning on %v", anc, flow)
		}
	}
	// Coverage semantics allow a few false positives but the set must
	// stay small.
	if len(out) > 8 {
		t.Fatalf("HHH set suspiciously large (%d): %v", len(out), out)
	}
}

func TestHHH1DRootConditioning(t *testing.T) {
	// With 40% in one subnet and 60% diffuse noise, the root's
	// conditioned frequency (total − subnet) stays above a 30%
	// threshold, so the root itself is a legitimate HHH.
	const window = 100000
	h := MustNewHHH(HHHConfig{
		Hierarchy: hierarchy.OneD{}, Window: window, Counters: 512 * 5, V: 5, Seed: 32,
	})
	for _, p := range hhhWorkload1D(2, 2*window, 0.40, 0) {
		h.Update(p)
	}
	out := h.Output(0.30)
	var hasRoot, hasSubnet bool
	for _, hp := range out {
		if hp.Prefix == (hierarchy.Prefix{}) {
			hasRoot = true
		}
		if hp.Prefix == (hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}) {
			hasSubnet = true
		}
	}
	if !hasSubnet {
		t.Fatalf("subnet missing: %v", out)
	}
	if !hasRoot {
		t.Fatalf("root (60%% residual) missing: %v", out)
	}
}

func TestHHHCoverageAgainstExactReference(t *testing.T) {
	// Coverage (Definition 4.2): every prefix whose exact conditioned
	// frequency meets θW must be in the returned set. Verified against
	// a brute-force exact HHH computation in one dimension.
	const window = 50000
	const theta = 0.25
	h := MustNewHHH(HHHConfig{
		Hierarchy: hierarchy.OneD{}, Window: window, Counters: 1000, V: 5, Seed: 33,
	})
	oracle := exact.MustNewSlidingWindow[hierarchy.Prefix](h.EffectiveWindow())
	var hier hierarchy.OneD
	pkts := hhhWorkload1D(3, 2*window, 0.45, 0.30)
	for _, p := range pkts {
		h.Update(p)
		oracle.Add(hier.Fully(p))
	}
	// Brute-force exact HHH set over the final window.
	counts := map[hierarchy.Prefix]int{}
	oracle.Each(func(full hierarchy.Prefix, c int) bool {
		pkt := hierarchy.Packet{Src: full.Src}
		for i := 0; i < hier.H(); i++ {
			counts[hier.Prefix(pkt, i)] += c
		}
		return true
	})
	var exactSet []hierarchy.Prefix
	threshold := theta * float64(oracle.Len())
	for level := 0; level < hier.Levels(); level++ {
		for p, c := range counts {
			if hier.Depth(p) != level {
				continue
			}
			cond := float64(c)
			for _, g := range hierarchy.Closest(p, exactSet, nil) {
				cond -= float64(counts[g])
			}
			if cond >= threshold {
				exactSet = append(exactSet, p)
			}
		}
	}
	out := h.Output(theta)
	got := map[hierarchy.Prefix]bool{}
	for _, hp := range out {
		got[hp.Prefix] = true
	}
	for _, p := range exactSet {
		if !got[p] {
			t.Fatalf("coverage violated: exact HHH %v (count %d) missing from %v",
				p, counts[p], out)
		}
	}
}

func TestHHHEstimatesUpperBoundTruth(t *testing.T) {
	// Accuracy: reported estimates must upper-bound the exact prefix
	// frequencies (one-sided error) within the sampling envelope.
	const window = 50000
	h := MustNewHHH(HHHConfig{
		Hierarchy: hierarchy.OneD{}, Window: window, Counters: 1000, V: 10, Seed: 34,
	})
	oracle := exact.MustNewSlidingWindow[uint32](h.EffectiveWindow())
	for _, p := range hhhWorkload1D(4, 2*window, 0.5, 0.2) {
		h.Update(p)
		oracle.Add(p.Src)
	}
	subnet := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}
	trueSubnet := 0
	oracle.Each(func(src uint32, c int) bool {
		if hierarchy.MaskBytes(src, 1) == subnet.Src {
			trueSubnet += c
		}
		return true
	})
	est := h.Query(subnet)
	// 5σ sampling envelope below truth is a bug (one-sided estimates).
	sigma := math.Sqrt(float64(trueSubnet) * float64(h.V()))
	if est < float64(trueSubnet)-5*sigma {
		t.Fatalf("estimate %v more than 5σ below truth %d", est, trueSubnet)
	}
	slack := 4.0*float64(h.EffectiveWindow())/float64(h.Sketch().Counters()) + 5*sigma + 4*2*float64(h.Sketch().blockCounts)*float64(h.V())
	if est > float64(trueSubnet)+slack {
		t.Fatalf("estimate %v exceeds truth %d + slack %v", est, trueSubnet, slack)
	}
}

func TestHHH2DFindsHeavyPair(t *testing.T) {
	const window = 80000
	h := MustNewHHH(HHHConfig{
		Hierarchy: hierarchy.TwoD{}, Window: window, Counters: 512 * 25, V: 25, Seed: 35,
	})
	r := rng.New(9)
	for i := 0; i < 2*window; i++ {
		u := r.Float64()
		var p hierarchy.Packet
		switch {
		case u < 0.35:
			// Heavy (src/8, dst/16) aggregate with churn inside.
			p = hierarchy.Packet{
				Src: hierarchy.IPv4(10, byte(r.Uint32()), byte(r.Uint32()), byte(r.Uint32())),
				Dst: hierarchy.IPv4(20, 30, byte(r.Uint32()), byte(r.Uint32())),
			}
		default:
			p = hierarchy.Packet{Src: 0x80000000 | (uint32(r.Uint64()) >> 1), Dst: uint32(r.Uint64())}
		}
		h.Update(p)
	}
	out := h.Output(0.25)
	want := hierarchy.Prefix{
		Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1,
		Dst: hierarchy.IPv4(20, 30, 0, 0), DstLen: 2,
	}
	found := false
	for _, hp := range out {
		if hp.Prefix == want {
			found = true
		}
		// Any reported prefix must carry a plausible estimate.
		if hp.Estimate < 0 || hp.Estimate > 3*float64(h.EffectiveWindow()) {
			t.Fatalf("implausible estimate %v for %v", hp.Estimate, hp.Prefix)
		}
	}
	if !found {
		t.Fatalf("heavy (10/8, 20.30/16) pair missing: %v", out)
	}
}

func TestHHH2DGLBCorrection(t *testing.T) {
	// Craft two incomparable heavy descendants whose glb carries most
	// of the traffic: src-anchored and dst-anchored patterns overlap on
	// packets that have both. Without the inclusion-exclusion add-back
	// (Algorithm 4) the root's conditioned frequency would go negative
	// and the residual noise (45%) would be lost.
	const window = 60000
	h := MustNewHHH(HHHConfig{
		Hierarchy: hierarchy.TwoD{}, Window: window, Counters: 512 * 25, V: 25, Seed: 36,
	})
	r := rng.New(10)
	srcA := hierarchy.IPv4(10, 1, 2, 3)
	dstB := hierarchy.IPv4(20, 1, 2, 3)
	for i := 0; i < 2*window; i++ {
		u := r.Float64()
		var p hierarchy.Packet
		switch {
		case u < 0.30:
			// Both heavy endpoints at once: contributes to both
			// patterns and to their glb.
			p = hierarchy.Packet{Src: srcA, Dst: dstB}
		case u < 0.40:
			p = hierarchy.Packet{Src: srcA, Dst: uint32(r.Uint64())}
		case u < 0.50:
			p = hierarchy.Packet{Src: 0x80000000 | (uint32(r.Uint64()) >> 1), Dst: dstB}
		default:
			p = hierarchy.Packet{Src: 0x80000000 | (uint32(r.Uint64()) >> 1), Dst: uint32(r.Uint64())}
		}
		h.Update(p)
	}
	out := h.Output(0.3)
	got := map[hierarchy.Prefix]bool{}
	for _, hp := range out {
		got[hp.Prefix] = true
	}
	glb := hierarchy.Prefix{Src: srcA, SrcLen: 4, Dst: dstB, DstLen: 4}
	if !got[glb] {
		t.Fatalf("30%% exact pair missing: %v", out)
	}
	// Root residual: 100 − 40(srcA row) − 40(dstB column) + 30(glb,
	// double-subtracted) = 50% ≥ 30%: must be present, and would be
	// absent if the glb add-back were missing.
	if !got[(hierarchy.Prefix{})] {
		t.Fatalf("root missing — glb inclusion-exclusion broken: %v", out)
	}
}

func TestHHHOutputDeterministic(t *testing.T) {
	mk := func() []HeavyPrefix {
		h := MustNewHHH(HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 20000, Counters: 500, V: 10, Seed: 37,
		})
		for _, p := range hhhWorkload1D(11, 40000, 0.4, 0.2) {
			h.Update(p)
		}
		return h.Output(0.2)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic output size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Prefix != b[i].Prefix || a[i].Estimate != b[i].Estimate {
			t.Fatalf("output diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHHHReset(t *testing.T) {
	h := MustNewHHH(HHHConfig{
		Hierarchy: hierarchy.OneD{}, Window: 10000, Counters: 200, V: 5, Seed: 38,
	})
	for _, p := range hhhWorkload1D(12, 20000, 0.5, 0.2) {
		h.Update(p)
	}
	h.Reset()
	if h.Sketch().Updates() != 0 || h.Sketch().OverflowEntries() != 0 {
		t.Fatal("Reset left state")
	}
	if out := h.Output(0.01); len(out) != 0 {
		t.Fatalf("post-reset output non-empty: %v", out)
	}
}
