package core

import (
	"testing"

	"memento/internal/exact"
)

// TestFrameBoundaryFlush pins the frame-wrap behaviour: the in-frame
// counter resets exactly at M = 0 and estimates remain one-sided
// across the boundary.
func TestFrameBoundaryFlush(t *testing.T) {
	const window = 200
	const k = 10
	s := MustNew[int](Config{Window: window, Counters: k})
	oracle := exact.MustNewSlidingWindow[int](s.EffectiveWindow())
	slack := 4.0 * float64(s.EffectiveWindow()) / k
	// Drive exactly to several frame boundaries, querying at W-1, W,
	// and W+1 relative offsets.
	for frame := 0; frame < 5; frame++ {
		for i := 0; i < window; i++ {
			key := i % 7
			s.Update(key)
			oracle.Add(key)
			atBoundary := s.Updates()%uint64(s.EffectiveWindow()) <= 1
			if !atBoundary && s.Updates() < uint64(window) {
				continue
			}
			for q := 0; q < 7; q++ {
				f := float64(oracle.Count(q))
				est := s.Query(q)
				if est < f || est > f+slack {
					t.Fatalf("frame %d pos %d key %d: est %v truth %v slack %v",
						frame, i, q, est, f, slack)
				}
			}
		}
	}
}

// TestMinimalGeometry exercises the smallest legal configurations,
// where blocks are single packets.
func TestMinimalGeometry(t *testing.T) {
	s := MustNew[int](Config{Window: 1, Counters: 1})
	if s.EffectiveWindow() != 1 {
		t.Fatalf("EffectiveWindow = %d", s.EffectiveWindow())
	}
	for i := 0; i < 100; i++ {
		s.Update(i % 2)
	}
	if s.ForcedDrains() != 0 {
		t.Fatalf("forced drains in minimal geometry: %d", s.ForcedDrains())
	}
	// Window of 1: only the last item can have weight; estimates stay
	// bounded by window + slack.
	if est := s.Query(0); est > 10 {
		t.Fatalf("estimate %v absurd for window 1", est)
	}
}

// TestWindowEqualsCounters covers W == k (single-packet blocks).
func TestWindowEqualsCounters(t *testing.T) {
	const k = 32
	s := MustNew[int](Config{Window: k, Counters: k})
	oracle := exact.MustNewSlidingWindow[int](s.EffectiveWindow())
	for i := 0; i < 10*k; i++ {
		s.Update(i % 3)
		oracle.Add(i % 3)
	}
	for q := 0; q < 3; q++ {
		f := float64(oracle.Count(q))
		est := s.Query(q)
		if est < f {
			t.Fatalf("key %d: est %v below truth %v", q, est, f)
		}
	}
	if s.ForcedDrains() != 0 {
		t.Fatalf("forced drains: %d", s.ForcedDrains())
	}
}

// TestQueryUnknownKeyIsBounded ensures never-seen keys get the
// conservative no-overflow estimate, not garbage.
func TestQueryUnknownKeyIsBounded(t *testing.T) {
	s := MustNew[uint64](Config{Window: 1000, Counters: 20, Tau: 0.5, Seed: 4})
	for i := uint64(0); i < 5000; i++ {
		s.Update(i % 10)
	}
	est := s.Query(999999)
	// ≤ scale·(2 blocks + SS min).
	bound := s.Scale() * (2*float64(s.blockCounts) + float64(s.y.Min()))
	if est < 0 || est > bound {
		t.Fatalf("unknown key estimate %v outside [0, %v]", est, bound)
	}
}

// TestHeavyHittersEmptySketch must return no items and not panic.
func TestHeavyHittersEmptySketch(t *testing.T) {
	s := MustNew[string](Config{Window: 100, Counters: 4})
	if hh := s.HeavyHitters(0.1, nil); len(hh) != 0 {
		t.Fatalf("empty sketch reported %v", hh)
	}
	if est := s.Query("nothing"); est < 0 {
		t.Fatalf("negative estimate %v", est)
	}
}

// TestDstBearingKeysInTwoD ensures the generic sketch works with the
// 2D prefix keys used by H-Memento (regression guard for key packing).
func TestDstBearingKeysInTwoD(t *testing.T) {
	s := MustNew[[2]uint64](Config{Window: 500, Counters: 10})
	a := [2]uint64{1, 2}
	b := [2]uint64{1, 3}
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			s.Update(a)
		} else {
			s.Update(b)
		}
	}
	if s.Query(a) < 150 || s.Query(b) < 150 {
		t.Fatalf("composite keys mis-tracked: %v %v", s.Query(a), s.Query(b))
	}
}
