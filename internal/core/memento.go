// Package core implements the Memento family of sliding-window heavy
// hitter algorithms — the primary contribution of "Memento: Making
// Sliding Windows Efficient for Heavy Hitters" (Ben Basat et al.,
// CoNEXT 2018).
//
// # Memento (Section 4.1, Algorithm 1)
//
// Memento estimates per-flow frequencies over the last W packets. It
// decouples the expensive Full update (admit an item into the sketch)
// from the cheap Window update (slide the window): each packet triggers
// a Full update with probability τ and only a Window update otherwise.
// With τ = 1 Memento degenerates to WCSS [Ben Basat et al., INFOCOM'16],
// which the paper uses as its sliding-window baseline.
//
// Internally the window is split into k = ⌈4/εa⌉ blocks. A Space Saving
// instance y approximately counts items within the current frame; every
// time an item's counter crosses a multiple of the *sampled* block size
// (τ·W/k) the item is recorded in an overflow queue for the current
// block and in the overflow table B. Blocks expire as the window
// slides; expiry is de-amortized, forgetting at most one queued item
// per packet, which yields constant worst-case update time
// (Theorem A.18).
//
// A note on units: the paper's pseudocode is written for τ = 1, where
// block timing (W/k packets) and the overflow threshold (W/k counts)
// coincide. For τ < 1 the analysis (Corollary A.5) configures the
// underlying window algorithm for the sampled substream, so the
// overflow threshold here is τ·W/k sampled counts while block *timing*
// remains W/k real packets; estimates scale by 1/τ. This keeps the
// algorithmic error at εa·W independent of τ, matching Theorem 5.2
// (ε = εa + εs) and the empirical behaviour in Figure 5.
//
// Sketch is not safe for concurrent use; shard by flow or guard with a
// mutex at a higher layer.
//
//memento:deterministic
//memento:nopanic Decode*
package core

import (
	"errors"
	"fmt"
	"math"

	"memento/internal/keyidx"
	"memento/internal/rng"
	"memento/internal/spacesaving"
)

// Config parameterizes a Memento sketch.
type Config struct {
	// Window is W, the sliding window size in packets. Required.
	Window int

	// EpsilonA is the algorithmic error bound εa; the sketch uses
	// k = ⌈4/εa⌉ counters. Ignored when Counters > 0. One of EpsilonA
	// and Counters must be set.
	EpsilonA float64

	// Counters overrides the counter count k directly (the evaluation
	// sweeps 64/512/4096 counters).
	Counters int

	// Tau is the Full-update sampling probability τ ∈ (0, 1]. Zero
	// defaults to 1 (WCSS behaviour).
	Tau float64

	// Scale overrides the query scale factor (estimates are multiplied
	// by Scale). Zero defaults to 1/Tau. H-Memento sets Scale = V while
	// driving Full/Window updates itself.
	Scale float64

	// Seed makes the sampling deterministic; 0 selects a fixed default
	// so runs are reproducible by default.
	Seed uint64

	// TableSampling selects the random-number-table Bernoulli sampler
	// (Section 6.2: faster than geometric sampling at moderate τ) for
	// Update's coin flips instead of drawing fresh PRNG values.
	TableSampling bool
}

// Item is a reported heavy hitter.
type Item[K comparable] struct {
	Key K
	// Estimate is the (conservative, one-sided) window frequency
	// estimate in packets.
	Estimate float64
}

// Sketch is a Memento instance over keys of type K.
type Sketch[K comparable] struct {
	y        *spacesaving.Sketch[K]
	overflow *keyidx.Index[K] // the paper's B table, pointer-free
	ring     blockRing[K]

	k            int    // number of blocks / counters
	blockPackets uint64 // block length in real packets (W/k)
	window       uint64 // effective window (k · blockPackets)
	blockCounts  uint64 // overflow threshold in sampled counts (τ·W/k)

	// Frame position is tracked as countdowns so the per-packet path
	// needs no division: untilBlock packets remain in the current
	// block, blocksLeft blocks remain in the current frame. The
	// position m of Algorithm 1 is (k-blocksLeft+1)·blockPackets −
	// untilBlock, recoverable via position().
	untilBlock uint64 // packets until the next block boundary (1..blockPackets)
	blocksLeft int    // blocks until the frame flush (1..k)

	scale float64 // query scale factor (1/τ, or V for H-Memento)
	tau   float64
	hash  func(K) uint64 // caller-supplied shared hasher (nil: per-index defaults)

	src       *rng.Source
	bern      *rng.Bernoulli
	table     *rng.Table
	geo       *rng.Geometric
	skip      int // batched path: packets left until the next Full update (-1: not drawn)
	useTable  bool
	fullCount uint64 // Full updates performed (diagnostics)
	updates   uint64 // total updates (diagnostics)

	forcedDrains uint64 // leftover queue entries drained at rotation

	// Delta plane (nil/zero until EnableDeltaTracking): dirty is the
	// set of keys whose monitored or overflow state may have changed
	// since the last DeltaCaptureInto; dirtyFlushes counts in-frame
	// flushes and dirtyResets full Resets over the same interval.
	// Marking rides the sampled Full-update and pop paths only — the
	// common WindowUpdate path never touches it — and clearing is O(1)
	// via the key index's generation stamp.
	dirty        *keyidx.Index[K]
	dirtyFlushes uint32
	dirtyResets  uint32

	// Observability (nil until Instrument): block-granular counters,
	// so the per-packet paths only ever pay a nil compare.
	ins *Instruments
}

const defaultSeed = 0x6d656d656e746f21 // "memento!"

// New validates cfg and returns a ready Sketch.
func New[K comparable](cfg Config) (*Sketch[K], error) { return NewWithHash[K](cfg, nil) }

// NewWithHash is New with a caller-supplied key hasher shared by the
// in-frame Space Saving index and the overflow table. Layers that
// already hash every key (internal/shard routes by hash) pass the
// same function here and feed the *Hashed update variants, so one
// hash computation per packet serves shard routing and both indexes.
func NewWithHash[K comparable](cfg Config, hash func(K) uint64) (*Sketch[K], error) {
	if cfg.Window <= 0 {
		return nil, errors.New("core: Window must be positive")
	}
	k := cfg.Counters
	if k <= 0 {
		if !(cfg.EpsilonA > 0 && cfg.EpsilonA <= 1) {
			return nil, errors.New("core: need Counters > 0 or EpsilonA in (0, 1]")
		}
		k = int(math.Ceil(4 / cfg.EpsilonA))
	}
	tau := cfg.Tau
	if tau == 0 {
		tau = 1
	}
	if tau < 0 || tau > 1 {
		return nil, fmt.Errorf("core: Tau %v outside (0, 1]", cfg.Tau)
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1 / tau
	}
	if scale < 1 {
		return nil, fmt.Errorf("core: Scale %v below 1", cfg.Scale)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = defaultSeed
	}

	blockPackets := uint64((cfg.Window + k - 1) / k)
	if blockPackets == 0 {
		blockPackets = 1
	}
	window := blockPackets * uint64(k)
	// Overflow threshold in sampled counts; see the package comment on
	// units. Scale (= 1/τ or V) relates real and sampled units.
	blockCounts := uint64(math.Round(float64(window) / scale / float64(k)))
	if blockCounts == 0 {
		blockCounts = 1
	}

	y, err := spacesaving.NewWithHash[K](k, hash)
	if err != nil {
		return nil, err
	}
	// The B table typically holds O(k) keys (≈ one overflow per block
	// in steady state); it grows transparently if a pathological
	// update pattern exceeds that.
	overflow, err := keyidx.New[K](2*(k+1), hash)
	if err != nil {
		return nil, err
	}
	s := &Sketch[K]{
		y:            y,
		overflow:     overflow,
		k:            k,
		blockPackets: blockPackets,
		window:       window,
		blockCounts:  blockCounts,
		untilBlock:   blockPackets,
		blocksLeft:   k,
		scale:        scale,
		tau:          tau,
		hash:         hash,
		src:          rng.New(seed),
		useTable:     cfg.TableSampling,
		skip:         -1,
	}
	s.geo = rng.NewGeometric(s.src, tau)
	s.ring.init(k + 1)
	if cfg.TableSampling {
		s.table = rng.NewTable(s.src, 1<<16, tau)
	} else {
		s.bern = rng.NewBernoulli(s.src, tau)
	}
	return s, nil
}

// MustNew is New for statically valid configurations; panics on error.
func MustNew[K comparable](cfg Config) *Sketch[K] {
	s, err := New[K](cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// EffectiveWindow returns the window actually maintained: Window
// rounded up to a multiple of the block count.
func (s *Sketch[K]) EffectiveWindow() int { return int(s.window) }

// Counters returns k, the number of Space Saving counters (= blocks).
func (s *Sketch[K]) Counters() int { return s.k }

// Tau returns the configured sampling probability.
func (s *Sketch[K]) Tau() float64 { return s.tau }

// Scale returns the query scale factor.
func (s *Sketch[K]) Scale() float64 { return s.scale }

// Updates returns the total number of updates processed.
func (s *Sketch[K]) Updates() uint64 { return s.updates }

// FullUpdates returns how many of the updates were Full updates.
func (s *Sketch[K]) FullUpdates() uint64 { return s.fullCount }

// ForcedDrains reports overflow-queue entries that were still pending
// when their block rotated out. The de-amortization guarantees this is
// zero under Algorithm 1's update pattern; it is exposed so tests can
// assert the invariant.
func (s *Sketch[K]) ForcedDrains() uint64 { return s.forcedDrains }

// Update processes one packet: with probability τ a Full update,
// otherwise a Window update (Algorithm 1, lines 19-21).
//memento:noalloc
func (s *Sketch[K]) Update(x K) {
	var full bool
	if s.useTable {
		full = s.table.Sample()
	} else {
		full = s.bern.Sample()
	}
	if full {
		s.FullUpdate(x)
	} else {
		s.WindowUpdate()
	}
}

// UpdateHashed is Update with a caller-computed hash of x, which must
// come from the hash function the sketch was constructed with
// (NewWithHash); internal/shard hashes each key once for shard
// routing and passes the same value here. On a sketch built without
// a hasher it falls back to Update.
//memento:noalloc
func (s *Sketch[K]) UpdateHashed(x K, h uint64) {
	if s.hash == nil {
		s.Update(x)
		return
	}
	var full bool
	if s.useTable {
		full = s.table.Sample()
	} else {
		full = s.bern.Sample()
	}
	if full {
		s.FullUpdateHashed(x, h)
	} else {
		s.WindowUpdate()
	}
}

// UpdateBatch processes a batch of packets. It is distributionally
// equivalent to calling Update once per packet — each packet is a Full
// update with probability τ — but instead of flipping a coin per
// packet it draws the number of packets until the next Full update
// from a geometric distribution (the skip-count trick RHHH uses, see
// package rng), and slides the window over the skipped packets in
// bulk. The pending skip count persists across calls, so a stream fed
// through any mix of batch sizes produces the same Full-update point
// process; with a fixed Seed the result is deterministic and
// independent of how the stream is segmented into batches.
//
// One exception: the batched path always uses the exact geometric
// sampler, so on a TableSampling sketch it does not reproduce the
// random-number table's quantized (1/2^16-granular) coin flips —
// don't mix Update and UpdateBatch on a table-sampling configuration
// if exact point-process equality matters.
//memento:noalloc
func (s *Sketch[K]) UpdateBatch(xs []K) { s.updateBatch(xs, nil) }

// UpdateBatchHashed is UpdateBatch with caller-computed hashes of the
// keys (hs[i] must equal the construction hasher applied to xs[i]).
// The sharded front-end already hashes every key once to partition a
// batch; carrying the (key, hash) pairs here means the sampled
// τ-fraction of keys that reach a Full update is not hashed a second
// time inside the core indexes. On a sketch built without a hasher,
// or with mismatched slice lengths, it falls back to UpdateBatch.
//memento:noalloc
func (s *Sketch[K]) UpdateBatchHashed(xs []K, hs []uint64) {
	if s.hash == nil || len(hs) != len(xs) {
		hs = nil
	}
	s.updateBatch(xs, hs)
}

// updateBatch is the one geometric-skip loop behind both batched
// entry points; hs is consulted only in the sampled Full-update
// branch, off the per-packet path.
func (s *Sketch[K]) updateBatch(xs []K, hs []uint64) {
	i := 0
	for i < len(xs) {
		if s.skip < 0 {
			s.skip = s.geo.Next()
		}
		if rem := len(xs) - i; s.skip >= rem {
			s.windowAdvance(uint64(rem))
			s.skip -= rem
			return
		}
		s.windowAdvance(uint64(s.skip))
		i += s.skip
		s.skip = -1
		if hs != nil {
			s.FullUpdateHashed(xs[i], hs[i])
		} else {
			s.FullUpdate(xs[i])
		}
		i++
	}
}

// WindowAdvance slides the window by n packets without admitting any
// item — equivalent to n WindowUpdate calls, but block boundaries and
// expiry are handled per chunk instead of per packet. External drivers
// (the network-wide controller covering the packets a report spans,
// H-Memento's batch path) use it as their bulk hot path.
//memento:noalloc
func (s *Sketch[K]) WindowAdvance(n int) {
	if n > 0 {
		s.windowAdvance(uint64(n))
	}
}

// windowAdvance is WindowAdvance without the signedness guard. It
// processes whole blocks at a time: within a block the only per-packet
// work is the de-amortized forgetting, which collapses into a bounded
// pop loop because nothing is pushed while the window merely slides.
func (s *Sketch[K]) windowAdvance(n uint64) {
	for n > 0 {
		// Packets up to and including the next block-boundary packet.
		rem := s.untilBlock
		if n < rem {
			// Entirely inside the current block: advance and pop up to
			// n expired entries, exactly as n single updates would.
			s.updates += n
			s.untilBlock -= n
			for i := uint64(0); i < n; i++ {
				id, ok := s.ring.popOldest()
				if !ok {
					break
				}
				s.forgetOverflow(id)
			}
			return
		}
		s.updates += rem
		// The rem-1 pre-boundary packets pop from the outgoing oldest
		// queue; the boundary packet rotates first and pops from the
		// queue that becomes oldest, matching WindowUpdate's order.
		for i := uint64(1); i < rem; i++ {
			id, ok := s.ring.popOldest()
			if !ok {
				break
			}
			s.forgetOverflow(id)
		}
		s.untilBlock = s.blockPackets
		s.blocksLeft--
		flushed := s.blocksLeft == 0
		if flushed {
			s.blocksLeft = s.k
			s.y.Flush() // new frame
			if s.dirty != nil {
				s.dirtyFlushes++
			}
		}
		for {
			id, ok := s.ring.popOldest()
			if !ok {
				break
			}
			s.forgetOverflow(id)
			s.forcedDrains++
		}
		s.ring.rotate()
		if id, ok := s.ring.popOldest(); ok {
			s.forgetOverflow(id)
		}
		s.noteBlock(flushed)
		n -= rem
	}
}

// WindowUpdate slides the window by one packet without admitting any
// item (Algorithm 1, lines 2-11): it advances the frame position,
// flushes the in-frame counter at frame boundaries, rotates the block
// ring at block boundaries, and forgets at most one expired overflow
// entry. The common case — mid-block, nothing queued — is a counter
// decrement and two compares: no division, no map, no pointers.
//memento:noalloc
func (s *Sketch[K]) WindowUpdate() {
	s.updates++
	s.untilBlock--
	if s.untilBlock == 0 { // new block (including frame start)
		s.untilBlock = s.blockPackets
		s.blocksLeft--
		flushed := s.blocksLeft == 0
		if flushed {
			s.blocksLeft = s.k
			s.y.Flush() // new frame
			if s.dirty != nil {
				s.dirtyFlushes++
			}
		}
		// The oldest block's queue must be empty by now; drain
		// defensively so external update patterns cannot corrupt B.
		for {
			id, ok := s.ring.popOldest()
			if !ok {
				break
			}
			s.forgetOverflow(id)
			s.forcedDrains++
		}
		s.ring.rotate()
		s.noteBlock(flushed)
	}
	// De-amortized forgetting: at most one pop per packet.
	if id, ok := s.ring.popOldest(); ok {
		s.forgetOverflow(id)
	}
}

// position returns m, the number of packets into the current frame
// [0, window), for diagnostics and tests.
func (s *Sketch[K]) position() uint64 {
	m := (uint64(s.k-s.blocksLeft)+1)*s.blockPackets - s.untilBlock
	if m == s.window {
		return 0
	}
	return m
}

// forgetOverflow decrements B[id], deleting exhausted entries.
func (s *Sketch[K]) forgetOverflow(id K) {
	s.overflow.Dec(id)
	if s.dirty != nil {
		s.dirty.Insert(id)
	}
}

// FullUpdate slides the window and admits x (Algorithm 1, lines 12-18):
// x is counted by the in-frame Space Saving instance, and if its
// counter crosses a multiple of the sampled block size the overflow is
// recorded in the current block's queue and in B.
//memento:noalloc
func (s *Sketch[K]) FullUpdate(x K) {
	s.WindowUpdate()
	s.fullCount++
	c := s.y.Add(x)
	if c%s.blockCounts == 0 { // overflow
		s.ring.push(x)
		s.overflow.Inc(x, 1)
	}
	if s.dirty != nil {
		s.dirty.Insert(x)
	}
}

// FullUpdateHashed is FullUpdate with a caller-computed hash of x
// (valid only on sketches built with NewWithHash); the one hash value
// serves both the Space Saving index and the overflow table.
//memento:noalloc
func (s *Sketch[K]) FullUpdateHashed(x K, h uint64) {
	s.WindowUpdate()
	s.fullCount++
	c := s.y.AddHashed(x, h)
	if c%s.blockCounts == 0 { // overflow
		s.ring.push(x)
		s.overflow.IncH(x, 1, h)
	}
	if s.dirty != nil {
		s.dirty.InsertH(x, h)
	}
}

// Query returns the (one-sided) estimate of x's frequency within the
// last EffectiveWindow() packets (Algorithm 1, lines 22-25). The
// estimate overshoots by design (≤ (εa+εs)·W with the configured
// parameters) so that, like MST, Memento has no false negatives.
//
// On a sketch built with a shared hasher (NewWithHash) the key is
// hashed once and the same value probes both the overflow table and
// the Space Saving index; without one, each index hashes with its own
// default. Query paths run hot in the on-arrival setting (Figure 8;
// internal/detect estimates on every packet), so the saved hash is
// measurable.
//memento:noalloc
func (s *Sketch[K]) Query(x K) float64 {
	if s.hash != nil {
		return queryEstimate(s.overflow, s.y, s.blockCounts, s.scale, x, s.hash(x))
	}
	b, ok := s.overflow.Get(x)
	if ok {
		rem := s.y.Query(x) % s.blockCounts
		return s.scale * (float64(s.blockCounts)*float64(b+2) + float64(rem))
	}
	return s.scale * (2*float64(s.blockCounts) + float64(s.y.Query(x)))
}

// queryEstimate is the Algorithm 1 estimate over an overflow table
// and in-frame counter sharing one key hash; Sketch.Query and
// Snapshot.Query both reduce to it.
func queryEstimate[K comparable](overflow *keyidx.Index[K], y *spacesaving.Sketch[K], blockCounts uint64, scale float64, x K, h uint64) float64 {
	b, ok := overflow.GetH(x, h)
	if ok {
		rem := y.QueryHashed(x, h) % blockCounts
		return scale * (float64(blockCounts)*float64(b+2) + float64(rem))
	}
	return scale * (2*float64(blockCounts) + float64(y.QueryHashed(x, h)))
}

// QueryHashed is Query with a caller-computed hash of x (valid only
// on sketches built with NewWithHash); internal/shard routes a point
// query by hash and passes the same value here, so one hash serves
// shard selection, the overflow table, and the Space Saving index.
//memento:noalloc
func (s *Sketch[K]) QueryHashed(x K, h uint64) float64 {
	if s.hash == nil {
		return s.Query(x)
	}
	return queryEstimate(s.overflow, s.y, s.blockCounts, s.scale, x, h)
}

// QueryBounds returns conservative upper and lower bounds on x's
// window frequency: Upper = Query(x), Lower = max(0, Upper − εa·W)
// where εa·W = 4·W/k is the algorithmic error band. H-Memento's
// conditioned-frequency computation (Algorithms 3-4) subtracts Lower
// values of descendants.
//memento:noalloc
func (s *Sketch[K]) QueryBounds(x K) (upper, lower float64) {
	return s.boundsFrom(s.Query(x))
}

// QueryBoundsHashed is QueryBounds with a caller-computed hash.
func (s *Sketch[K]) QueryBoundsHashed(x K, h uint64) (upper, lower float64) {
	return s.boundsFrom(s.QueryHashed(x, h))
}

// boundsFrom derives the conservative bound pair from an upper
// estimate.
func (s *Sketch[K]) boundsFrom(upper float64) (float64, float64) {
	lower := upper - 4*float64(s.blockCounts)*s.scale
	if lower < 0 {
		lower = 0
	}
	return upper, lower
}

// Overflowed calls fn for every key currently present in the overflow
// table B until fn returns false. Every window heavy hitter is
// guaranteed to appear (Section 4.1: "every heavy hitter must overflow
// in the window"). The sketch must not be mutated during iteration.
func (s *Sketch[K]) Overflowed(fn func(key K, overflows int32) bool) {
	s.overflow.Iterate(fn)
}

// OverflowEntries returns the number of keys in the overflow table.
func (s *Sketch[K]) OverflowEntries() int { return s.overflow.Len() }

// HeavyHitters appends to dst every key whose estimated window
// frequency is at least theta·EffectiveWindow(), with its estimate,
// and returns dst. theta is the paper's θ ∈ (0, 1).
func (s *Sketch[K]) HeavyHitters(theta float64, dst []Item[K]) []Item[K] {
	threshold := theta * float64(s.window)
	s.Overflowed(func(key K, _ int32) bool {
		if est := s.Query(key); est >= threshold {
			dst = append(dst, Item[K]{Key: key, Estimate: est})
		}
		return true
	})
	return dst
}

// Reset returns the sketch to its initial empty state, reusing all
// allocated memory.
func (s *Sketch[K]) Reset() {
	s.y.Flush()
	s.overflow.Flush()
	s.ring.reset()
	s.untilBlock = s.blockPackets
	s.blocksLeft = s.k
	s.updates = 0
	s.fullCount = 0
	s.forcedDrains = 0
	s.skip = -1
	if s.dirty != nil {
		// Everything the previous epoch knew is gone; the next delta
		// capture sees resets > 0 and must start a fresh chain base.
		s.dirty.Flush()
		s.dirtyFlushes++
		s.dirtyResets++
	}
}

// blockRing is the paper's "queue of queues" b: one FIFO of overflowed
// keys per block overlapping the window (k+1 of them), stored as a
// circular buffer of reusable slices. The oldest index is cached and a
// running entry count gates popOldest, so the per-packet de-amortized
// pop — by far the hottest instruction sequence in WindowUpdate — is
// one compare in the common empty case instead of a division and two
// slice-header loads.
type blockRing[K comparable] struct {
	queues [][]K //memento:reused (ring buffers persist across windows)
	heads  []int
	cur    int // index of the newest (current) block's queue
	old    int // index of the oldest block's queue ((cur+1) mod len)
	queued int // undrained entries across all queues
}

func (r *blockRing[K]) init(n int) {
	r.queues = make([][]K, n)
	r.heads = make([]int, n)
	r.cur = 0
	r.old = 1 % n
	r.queued = 0
}

func (r *blockRing[K]) reset() {
	for i := range r.queues {
		r.queues[i] = r.queues[i][:0]
		r.heads[i] = 0
	}
	r.cur = 0
	r.old = 1 % len(r.queues)
	r.queued = 0
}

// push records an overflow in the current block.
func (r *blockRing[K]) push(x K) {
	r.queues[r.cur] = append(r.queues[r.cur], x)
	r.queued++
}

// popOldest removes and returns the next entry of the oldest block's
// queue, if any.
func (r *blockRing[K]) popOldest() (K, bool) {
	if r.queued == 0 {
		var zero K
		return zero, false
	}
	i := r.old
	if r.heads[i] < len(r.queues[i]) {
		v := r.queues[i][r.heads[i]]
		r.heads[i]++
		r.queued--
		return v, true
	}
	var zero K
	return zero, false
}

// rotate discards the (drained) oldest queue and makes it the new
// current block's queue.
func (r *blockRing[K]) rotate() {
	i := r.old
	r.queued -= len(r.queues[i]) - r.heads[i] // normally 0; callers drain first
	r.queues[i] = r.queues[i][:0]
	r.heads[i] = 0
	r.cur = i
	r.old = i + 1
	if r.old == len(r.queues) {
		r.old = 0
	}
}

// copyInto captures the undrained queue contents into dst, ordered
// oldest block first (current block last), reusing dst's sub-slices.
// The checkpoint plane stores queues in this canonical order so the
// wire format is independent of the ring's in-memory rotation.
func (r *blockRing[K]) copyInto(dst *[][]K) {
	n := len(r.queues)
	if cap(*dst) < n {
		//memento:allow alloc "snapshot ring grows to the live ring's size once; reused across captures"
		grown := make([][]K, n)
		copy(grown, *dst)
		*dst = grown
	} else {
		*dst = (*dst)[:n]
	}
	for i := 0; i < n; i++ {
		src := (r.old + i) % n
		(*dst)[i] = append((*dst)[i][:0], r.queues[src][r.heads[src]:]...)
	}
}

// restoreFrom rebuilds the ring from queues captured in copyInto's
// oldest→current order. len(queues) must equal the ring size.
func (r *blockRing[K]) restoreFrom(queues [][]K) {
	r.reset()
	n := len(r.queues)
	for i, q := range queues {
		tgt := (r.old + i) % n
		r.queues[tgt] = append(r.queues[tgt][:0], q...)
		r.queued += len(q)
	}
}

// pending returns the total number of undrained queued entries
// (test/diagnostic helper); recomputed from the slices so tests can
// cross-check the maintained queued counter.
func (r *blockRing[K]) pending() int {
	total := 0
	for i := range r.queues {
		total += len(r.queues[i]) - r.heads[i]
	}
	if total != r.queued {
		panic("core: blockRing queued counter out of sync")
	}
	return total
}
