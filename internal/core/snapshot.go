// Snapshot: the read plane's point-in-time capture of a Memento
// sketch. A Snapshot is taken under whatever lock guards the sketch
// (internal/shard holds its shard lock exactly for the duration of
// SnapshotInto) and then answers every query lock-free on immutable
// data: the overflow table and Space Saving state are flat-slab
// copies (keyidx/spacesaving CopyInto), so capture cost is a few
// memmoves regardless of how expensive the query that follows is.
//
// Snapshots are designed for reuse: SnapshotInto into the same
// Snapshot recycles its slabs, so a pooled Snapshot makes the whole
// query path allocation-free in steady state. A Snapshot must not be
// shared between concurrent queries (pool them like internal/shard
// does); distinct Snapshots are independent.

package core

import (
	"memento/internal/keyidx"
	"memento/internal/spacesaving"
)

// Snapshot is an immutable point-in-time copy of a Sketch's queryable
// state: the overflow table B, the in-frame Space Saving counters,
// and the scale/window/update scalars. The zero value is empty and
// ready for SnapshotInto.
type Snapshot[K comparable] struct {
	overflow    keyidx.Index[K]
	y           spacesaving.Sketch[K]
	blockCounts uint64
	scale       float64
	window      uint64
	updates     uint64
	hash        func(K) uint64 // the sketch's shared hasher, nil if none

	// counters is the source sketch's counter budget k. It can exceed
	// y's slab capacity on decoded snapshots: the decoder sizes y by
	// the entries actually present (bounding allocation by the record
	// size) while preserving the saturated/unsaturated distinction
	// Min() depends on, and keeps the declared budget here for
	// Counters(), the config digest, and RestoreFrom validation.
	counters int

	// Restore plane: the block ring, frame position and update
	// breakdown, captured by CheckpointInto only (SnapshotInto leaves
	// it absent — the query plane never pays for it). Only snapshots
	// carrying it can rehydrate a live sketch (RestoreFrom) or encode
	// with codec.FlagRestore.
	full         bool
	untilBlock   uint64
	blocksLeft   int
	fullCount    uint64
	forcedDrains uint64
	queues       [][]K // ring queues oldest→current, undrained entries
}

// SnapshotInto captures the sketch's queryable state into snap,
// reusing snap's buffers. Call it under the lock guarding the sketch;
// everything snap answers afterwards is lock-free. Cost is O(k) slab
// copies — independent of the number of queries the snapshot serves.
//memento:noalloc
func (s *Sketch[K]) SnapshotInto(snap *Snapshot[K]) {
	s.overflow.CopyInto(&snap.overflow)
	s.y.CopyInto(&snap.y)
	snap.blockCounts = s.blockCounts
	snap.scale = s.scale
	snap.window = s.window
	snap.updates = s.updates
	snap.hash = s.hash
	snap.counters = s.k
	snap.full = false // query-plane capture; CheckpointInto adds the rest
}

// CheckpointInto is SnapshotInto plus the restore plane: the block
// ring's undrained queues, the frame position, and the update
// breakdown. A snapshot captured this way can rehydrate a live sketch
// (RestoreFrom) and encodes with codec.FlagRestore. Still a few slab
// copies — call it under the lock guarding the sketch.
//memento:noalloc
func (s *Sketch[K]) CheckpointInto(snap *Snapshot[K]) {
	s.SnapshotInto(snap)
	snap.full = true
	snap.untilBlock = s.untilBlock
	snap.blocksLeft = s.blocksLeft
	snap.fullCount = s.fullCount
	snap.forcedDrains = s.forcedDrains
	s.ring.copyInto(&snap.queues)
}

// Counters returns k, the counter budget of the source sketch.
func (snap *Snapshot[K]) Counters() int { return snap.counters }

// FullUpdates returns the source's Full-update count at capture time;
// meaningful only on checkpoint-plane snapshots.
func (snap *Snapshot[K]) FullUpdates() uint64 { return snap.fullCount }

// OverflowEntries returns the number of keys in the captured overflow
// table.
func (snap *Snapshot[K]) OverflowEntries() int { return snap.overflow.Len() }

// Restorable reports whether the snapshot carries the restore plane
// (captured by CheckpointInto or decoded from a FlagRestore record).
func (snap *Snapshot[K]) Restorable() bool { return snap.full }

// EffectiveWindow returns the window the source sketch maintained.
func (snap *Snapshot[K]) EffectiveWindow() int { return int(snap.window) }

// Updates returns the source sketch's update count at capture time.
// The sharded front-end computes its skew correction from these
// captured counts, so one query uses one consistent traffic split.
func (snap *Snapshot[K]) Updates() uint64 { return snap.updates }

// Scale returns the query scale factor of the source sketch.
func (snap *Snapshot[K]) Scale() float64 { return snap.scale }

// Query is Sketch.Query against the captured state.
func (snap *Snapshot[K]) Query(x K) float64 {
	if snap.hash != nil {
		return queryEstimate(&snap.overflow, &snap.y, snap.blockCounts, snap.scale, x, snap.hash(x))
	}
	b, ok := snap.overflow.Get(x)
	if ok {
		rem := snap.y.Query(x) % snap.blockCounts
		return snap.scale * (float64(snap.blockCounts)*float64(b+2) + float64(rem))
	}
	return snap.scale * (2*float64(snap.blockCounts) + float64(snap.y.Query(x)))
}

// QueryBounds is Sketch.QueryBounds against the captured state.
func (snap *Snapshot[K]) QueryBounds(x K) (upper, lower float64) {
	return snap.boundsFrom(snap.Query(x))
}

// Bounds implements hhhset.Estimator against the captured state.
func (snap *Snapshot[K]) Bounds(x K) (upper, lower float64) { return snap.QueryBounds(x) }

// Overflowed is Sketch.Overflowed against the captured state. Unlike
// the live iteration, fn runs with no lock held anywhere.
func (snap *Snapshot[K]) Overflowed(fn func(key K, overflows int32) bool) {
	snap.overflow.Iterate(fn)
}

// ForEachEstimate calls fn once for every key the snapshot has state
// for — the union of the overflow table and the monitored counters,
// each key exactly once — with the same (upper, lower) bounds
// QueryBounds would return for it. Sweeping present keys like this is
// how the sharded front-end builds its merged estimate table: work is
// proportional to where keys actually live, instead of probing every
// shard for every candidate.
func (snap *Snapshot[K]) ForEachEstimate(fn func(key K, upper, lower float64) bool) {
	shared := snap.hash != nil
	stop := false
	// Overflow keys first: their estimate combines b with the in-frame
	// count. The stored hash doubles as the Space Saving probe when
	// both indexes share one hasher.
	snap.overflow.IterateH(func(key K, b int32, h uint64) bool {
		var c uint64
		if shared {
			c = snap.y.QueryHashed(key, h)
		} else {
			c = snap.y.Query(key)
		}
		rem := c % snap.blockCounts
		upper := snap.scale * (float64(snap.blockCounts)*float64(b+2) + float64(rem))
		u, l := snap.boundsFrom(upper)
		if !fn(key, u, l) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return
	}
	// Monitored counters not already covered by the overflow pass.
	snap.y.Iterate(func(c spacesaving.Counter[K]) bool {
		var inOverflow bool
		if shared {
			h := snap.hash(c.Key)
			_, inOverflow = snap.overflow.GetH(c.Key, h)
		} else {
			_, inOverflow = snap.overflow.Get(c.Key)
		}
		if inOverflow {
			return true
		}
		upper := snap.scale * (2*float64(snap.blockCounts) + float64(c.Count))
		u, l := snap.boundsFrom(upper)
		return fn(c.Key, u, l)
	})
}

// TrackedKeys returns an upper bound on the number of keys
// ForEachEstimate visits (overflow table plus monitored counters,
// before deduplication), for sizing merged tables.
func (snap *Snapshot[K]) TrackedKeys() int {
	return snap.overflow.Len() + snap.y.Len()
}

// AbsentBounds returns the bounds QueryBounds yields for any key the
// snapshot has no state for (not in the overflow table, not
// monitored): the Space Saving Min-based conservative default.
func (snap *Snapshot[K]) AbsentBounds() (upper, lower float64) {
	return snap.boundsFrom(snap.scale * (2*float64(snap.blockCounts) + float64(snap.y.Min())))
}

// boundsFrom derives the conservative bound pair from an upper
// estimate, mirroring Sketch.boundsFrom.
func (snap *Snapshot[K]) boundsFrom(upper float64) (float64, float64) {
	lower := upper - 4*float64(snap.blockCounts)*snap.scale
	if lower < 0 {
		lower = 0
	}
	return upper, lower
}

// HeavyHitters is Sketch.HeavyHitters against the captured state.
func (snap *Snapshot[K]) HeavyHitters(theta float64, dst []Item[K]) []Item[K] {
	threshold := theta * float64(snap.window)
	snap.Overflowed(func(key K, _ int32) bool {
		if est := snap.Query(key); est >= threshold {
			dst = append(dst, Item[K]{Key: key, Estimate: est})
		}
		return true
	})
	return dst
}
