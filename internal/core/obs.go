// Core-plane observability (DESIGN.md §11): block slides, frame
// flushes, Space Saving evictions, and overflow-table residency,
// recorded at block granularity so the per-packet path cost is one
// nil compare. Attaching is optional; an uninstrumented sketch
// behaves exactly as before.

package core

import "memento/internal/obs"

// Instruments bundles the core-plane instruments. One set is shared
// by all shards of a sharded sketch: the counters are atomic, and
// block-granular writes never contend measurably.
type Instruments struct {
	Slides    *obs.Counter // block rotations (window advances by W/k)
	Flushes   *obs.Counter // frame flushes (in-frame counter reset)
	Evictions *obs.Counter // Space Saving counter evictions
	Overflow  *obs.Gauge   // overflow table (B) residency, sampled per block
	Trace     *obs.Trace   // EvWindowSlide per frame flush
	Actor     string       // trace actor label (a shard/agent name)
}

// NewInstruments creates the core instrument set registered under
// memento_core_* in r (nil-safe: a nil registry yields disabled
// instruments) with trace t (nil: no events).
func NewInstruments(r *obs.Registry, t *obs.Trace, actor string) *Instruments {
	return &Instruments{
		Slides:    r.Counter("memento_core_block_slides_total"),
		Flushes:   r.Counter("memento_core_frame_flushes_total"),
		Evictions: r.Counter("memento_core_evictions_total"),
		Overflow:  r.Gauge("memento_core_overflow_entries"),
		Trace:     t,
		Actor:     actor,
	}
}

// Instrument attaches ins to the sketch (nil detaches). Not
// synchronized with updates: attach before ingest starts, or under
// the same lock that guards updates.
func (s *Sketch[K]) Instrument(ins *Instruments) {
	s.ins = ins
	if ins != nil {
		s.y.SetEvictCounter(ins.Evictions)
	} else {
		s.y.SetEvictCounter(nil)
	}
}

// noteBlock records one block rotation (and the frame flush, when
// this block ended a frame). Runs once per W/k packets; the
// uninstrumented cost is the nil compare.
//
//memento:noalloc
func (s *Sketch[K]) noteBlock(flushed bool) {
	ins := s.ins
	if ins == nil {
		return
	}
	ins.Slides.Inc()
	ins.Overflow.Set(int64(s.overflow.Len()))
	if flushed {
		ins.Flushes.Inc()
		ins.Trace.Record(obs.EvWindowSlide, ins.Actor, s.updates)
	}
}

// Instrument attaches the wrapped Memento instance's instruments.
func (hh *HHH) Instrument(ins *Instruments) { hh.mem.Instrument(ins) }
