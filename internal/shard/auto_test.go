package shard

import (
	"runtime"
	"testing"

	"memento/internal/core"
)

// withGOMAXPROCS runs fn under a pinned GOMAXPROCS, restoring after.
func withGOMAXPROCS(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func TestAutoModeResolution(t *testing.T) {
	withGOMAXPROCS(t, 1, func() {
		if got := AutoMode(4); got != ModeBatch {
			t.Errorf("GOMAXPROCS=1: AutoMode(4) = %v, want batch", got)
		}
	})
	withGOMAXPROCS(t, 4, func() {
		if got := AutoMode(1); got != ModeBatch {
			t.Errorf("shards=1: AutoMode(1) = %v, want batch", got)
		}
		if got := AutoMode(4); got != ModeRing {
			t.Errorf("GOMAXPROCS=4, shards=4: AutoMode = %v, want ring", got)
		}
	})
	for m, want := range map[Mode]string{ModeAuto: "auto", ModeBatch: "batch", ModeRing: "ring", Mode(9): "invalid"} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

// ingestAll feeds keys through source 0 of in and quiesces.
func ingestAll(in *Ingest[uint64], keys []uint64) {
	src := in.Source(0)
	for _, k := range keys {
		src.Add(k)
	}
	src.Flush()
	in.Drain()
}

// TestAutoSingleCoreDifferential is the single-core regression trap
// test: at GOMAXPROCS=1 the auto mode must fall back to serial
// batching AND answer identically to the ring path on the same
// stream, so the fallback is a pure execution-strategy change.
func TestAutoSingleCoreDifferential(t *testing.T) {
	cfg := SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 14, Counters: 512, Tau: 1.0 / 8, Seed: 21},
		Shards: 4,
		Hash:   fixedHash,
	}
	keys := pipelineKeys(1<<15, 31)

	auto := MustNew(cfg)
	withGOMAXPROCS(t, 1, func() {
		in, err := auto.NewIngest(IngestConfig{Mode: ModeAuto, Batch: 128})
		if err != nil {
			t.Fatal(err)
		}
		if in.Mode() != ModeBatch {
			t.Fatalf("auto at GOMAXPROCS=1 resolved to %v, want batch", in.Mode())
		}
		ingestAll(in, keys)
		in.Close()
	})

	ring := MustNew(cfg)
	in, err := ring.NewIngest(IngestConfig{Mode: ModeRing, Batch: 128})
	if err != nil {
		t.Fatal(err)
	}
	if in.Mode() != ModeRing {
		t.Fatalf("explicit ring resolved to %v", in.Mode())
	}
	ingestAll(in, keys)
	in.Close()

	if ga, gr := auto.Updates(), ring.Updates(); ga != gr {
		t.Fatalf("updates diverge: auto %d ring %d", ga, gr)
	}
	for k := uint64(0); k < 512; k++ {
		if qa, qr := auto.Query(k), ring.Query(k); qa != qr {
			t.Fatalf("key %d: auto(batch) %v ring %v", k, qa, qr)
		}
	}
}

// TestAutoRetune exercises the adaptive loop: ring is engaged on a
// parallel runtime, demoted to batch once observed occupancy shows
// starving owners, stays demoted (sticky), and a fixed-mode config
// never retunes.
func TestAutoRetune(t *testing.T) {
	s := MustNew(SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 14, Counters: 512, Tau: 1.0 / 8, Seed: 23},
		Shards: 2,
		Hash:   fixedHash,
	})
	withGOMAXPROCS(t, 2, func() {
		in, err := s.NewIngest(IngestConfig{Mode: ModeAuto, Batch: 16, RingSize: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		if in.Mode() != ModeRing {
			t.Skipf("auto resolved to %v (runtime would not parallelize); retune path untestable here", in.Mode())
		}
		// A trickle: small rounds with a Drain between them, so no more
		// than 64 items are ever in flight and the rings sit empty for
		// almost all wall time — the timer-driven occupancy sampler
		// reads at most 64/4096 and usually 0, far under the demotion
		// threshold. (If the whole trickle outruns the sampler's first
		// tick, zero samples read as occupancy 0, which demotes too.)
		// Deterministic even on a single-CPU host where the owner
		// goroutines only run when the producer yields.
		src := in.Source(0)
		for i := uint64(0); i < 4096; i += 64 {
			for j := uint64(0); j < 64; j++ {
				src.Add(i + j)
			}
			src.Flush()
			in.Drain()
		}
		if got := in.Retune(); got != ModeBatch {
			st := in.Stats()
			t.Fatalf("Retune kept %v (occupancy %.4f, parks %d), want batch demotion",
				got, st.Occupancy(), st.ProducerParks)
		}
		// Sticky: without fresh evidence the demotion must hold.
		if got := in.Retune(); got != ModeBatch {
			t.Fatalf("Retune flapped back to %v", got)
		}
		// The batch engine keeps working after the live switch.
		ingestAll(in, pipelineKeys(1<<12, 77))
		if got := s.Updates(); got != 4096+1<<12 {
			t.Fatalf("updates after retune = %d, want %d", got, 4096+1<<12)
		}
		in.Close()
	})

	fixed, err := s.NewIngest(IngestConfig{Mode: ModeBatch})
	if err != nil {
		t.Fatal(err)
	}
	if got := fixed.Retune(); got != ModeBatch {
		t.Fatalf("fixed-mode Retune switched to %v", got)
	}
	fixed.Close()
}

// TestIngestModeBatchMultiSource checks the facade's batch engine
// with several concurrent sources (each its own Batcher).
func TestIngestModeBatchMultiSource(t *testing.T) {
	s := MustNew(SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 20, Counters: 2048, Tau: 1, Seed: 29},
		Shards: 2,
		Hash:   fixedHash,
	})
	in, err := s.NewIngest(IngestConfig{Mode: ModeBatch, Producers: 3})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{}, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			src := in.Source(w)
			for i := 0; i < 1000; i++ {
				src.Add(uint64(w*1000 + i))
			}
			src.Flush()
			done <- struct{}{}
		}(w)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
	in.Drain()
	in.Close()
	if got := s.Updates(); got != 3000 {
		t.Fatalf("updates = %d, want 3000", got)
	}
}
