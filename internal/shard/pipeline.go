// Multicore ingest pipeline (DESIGN.md §9): run-to-completion shard
// ownership over SPSC rings, replacing the lock-per-flush handoff of
// the Batcher path when the runtime can actually run shards in
// parallel.
//
// Topology: P producer goroutines × N shards, one spsc ring per
// producer×shard pair, and one owner goroutine per shard. A producer
// partitions its stream into per-shard staging buffers (no
// synchronization, exactly like Batcher) and publishes each full
// buffer into the ring for (producer, shard) — a slab copy plus one
// atomic store. The shard's owner goroutine sweeps its column of P
// rings, consumes whole batches, and applies them to the core sketch
// through the same batched geometric-skip path the Batcher uses.
//
// The owner applies under the shard mutex it alone contends for, so
// the entire existing read plane — point queries, snapshotAll's
// one-lock-pass capture, Checkpoint, WriteChain, delta capture —
// works unchanged and sees batch-aligned consistent state. In steady
// state the mutex is uncontended (owners are the only writers), so
// its cost is two uncontended atomic ops per applied batch instead of
// a cross-core handoff per flushed batch.
//
// Quiescence: Drain waits until every ring is empty and every owner
// has finished its in-flight apply, so after producers Flush, a
// Drain-then-read sees every published item. Close is Drain plus
// owner shutdown. Both are driven by the same two-phase check: ring
// cursors first, owner busy flags second — an owner raises busy
// before it advances a ring's head, so "all rings empty, then all
// owners idle" cannot observe claimed-but-unapplied items.
package shard

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memento/internal/hierarchy"
	"memento/internal/obs"
)

// applier applies one consumed batch to one shard. Implementations
// hold per-shard scratch, so concurrent owners never share state.
type applier[T any] interface {
	apply(shard int, items []T)
}

// fabric is the producers×shards ring mesh plus the owner goroutines
// driving one side of it. It is generic over the item type so the
// flat-key Sketch (key,hash pairs) and H-Memento (packets) share the
// machinery.
type fabric[T any] struct {
	rings  []*spsc[T] // ring(p,s) at p*shards+s
	owners []*owner[T]
	app    applier[T]

	producers, shards, ringCap int

	closed atomic.Bool
	wg     sync.WaitGroup

	// Backpressure and occupancy ledger (PipelineStats). The
	// histograms are constant-memory obs instruments: occHist holds
	// ring occupancy sampled on a fixed timer by a dedicated sampler
	// goroutine — time-weighted, not publish-weighted; see DESIGN.md
	// §9 — batchHist the published batch sizes, drainHist the drain()
	// latencies in nanoseconds.
	published  atomic.Uint64
	applied    atomic.Uint64
	prodParks  atomic.Uint64
	ownerParks atomic.Uint64
	occHist    obs.Histogram
	batchHist  obs.Histogram
	drainHist  obs.Histogram

	// occStop ends the occupancy sampler; closed exactly once by
	// close()'s first caller.
	occStop chan struct{}
}

// occSampleInterval is the occupancy sampler's tick. 1ms is frequent
// enough that short-lived pipelines still collect samples, and cheap
// enough (producers×shards atomic loads per tick) to be invisible
// next to the ingest work itself.
const occSampleInterval = time.Millisecond

// owner is one shard's consumer goroutine state.
type owner[T any] struct {
	shard int
	rings []*spsc[T] // this shard's column, one per producer
	buf   []T        //memento:reused (consume scratch, cap = ring capacity)

	// busy is raised before the owner advances any ring's head and
	// cleared after the claimed items are applied; Drain's second
	// phase waits on it.
	busy atomic.Uint32

	// idle is raised before the owner parks; producers CAS it down
	// and send one wake token after publishing (same lossless
	// flag-then-recheck protocol as the ring's producer side).
	idle atomic.Uint32
	wake chan struct{}
}

func newFabric[T any](producers, shards, ringSize int, app applier[T]) *fabric[T] {
	f := &fabric[T]{
		app:       app,
		producers: producers,
		shards:    shards,
	}
	f.rings = make([]*spsc[T], producers*shards)
	for i := range f.rings {
		f.rings[i] = newSPSC[T](ringSize)
	}
	f.ringCap = len(f.rings[0].buf)
	f.owners = make([]*owner[T], shards)
	for s := 0; s < shards; s++ {
		o := &owner[T]{
			shard: s,
			rings: make([]*spsc[T], producers),
			buf:   make([]T, f.ringCap),
			wake:  make(chan struct{}, 1),
		}
		for p := 0; p < producers; p++ {
			o.rings[p] = f.ring(p, s)
		}
		f.owners[s] = o
		f.wg.Add(1)
		go o.run(f)
	}
	f.occStop = make(chan struct{})
	f.wg.Add(1)
	go f.sampleOccupancy()
	return f
}

// sampleOccupancy is the timer-driven occupancy sampler: every tick it
// observes each ring's fill level into occHist, so the histogram is
// weighted by wall time rather than by publish rate. (Sampling inside
// publish — the previous design — over-represented busy intervals:
// many publishes per unit time meant many samples exactly when rings
// were fullest, inflating Occupancy(). See DESIGN.md §9.) size() is
// two atomic loads, so reading it from this goroutine races with
// nothing.
func (f *fabric[T]) sampleOccupancy() {
	defer f.wg.Done()
	tick := time.NewTicker(occSampleInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.occStop:
			return
		case <-tick.C:
			for _, r := range f.rings {
				f.occHist.Observe(r.size())
			}
		}
	}
}

func (f *fabric[T]) ring(p, s int) *spsc[T] { return f.rings[p*f.shards+s] }

// publish pushes one staged batch into ring (p, shard) and wakes the
// shard's owner if it parked. Producer-side hot path: a slab copy,
// one atomic cursor store, and a handful of ledger adds per batch.
//memento:noalloc
func (f *fabric[T]) publish(p, shard int, items []T) {
	r := f.ring(p, shard)
	if parks := r.push(items); parks != 0 {
		f.prodParks.Add(parks)
	}
	f.published.Add(uint64(len(items)))
	f.batchHist.Observe(uint64(len(items)))
	f.owners[shard].maybeWake()
}

// maybeWake delivers one wake token if the owner parked.
//memento:noalloc
func (o *owner[T]) maybeWake() {
	if o.idle.Load() == 1 && o.idle.CompareAndSwap(1, 0) {
		select {
		case o.wake <- struct{}{}:
		default:
		}
	}
}

// anyReady reports whether any of the owner's rings holds items.
//memento:noalloc
func (o *owner[T]) anyReady() bool {
	for _, r := range o.rings {
		if r.size() != 0 {
			return true
		}
	}
	return false
}

// sweep consumes every non-empty ring once, applying each claimed
// chunk to the shard, and returns the number of items moved.
//memento:noalloc
func (o *owner[T]) sweep(f *fabric[T]) int {
	total := 0
	for _, r := range o.rings {
		if r.size() == 0 {
			continue
		}
		// busy must be visible before the head advance inside
		// consume: Drain checks rings first, busy second.
		o.busy.Store(1)
		n := r.consume(o.buf)
		if n > 0 {
			f.app.apply(o.shard, o.buf[:n])
			f.applied.Add(uint64(n))
			total += n
		}
		o.busy.Store(0)
	}
	return total
}

// run is the shard-owner loop: sweep while work arrives, spin briefly
// when it stops, park until a producer publishes, exit once the
// fabric is closed and the column is dry.
func (o *owner[T]) run(f *fabric[T]) {
	defer f.wg.Done()
	empty := 0
	for {
		if o.sweep(f) > 0 {
			empty = 0
			continue
		}
		if f.closed.Load() {
			// Producers are quiet by the Close contract; one clean
			// sweep after observing closed means the column is dry.
			if o.sweep(f) == 0 {
				return
			}
			empty = 0
			continue
		}
		empty++
		if empty < ownerIdlePasses {
			continue
		}
		// Park: raise idle, then re-check — a producer publishing
		// between our sweep and the flag store only consults idle
		// after its cursor store, so it either sees the flag or we
		// see its items.
		o.idle.Store(1)
		if o.anyReady() || f.closed.Load() {
			o.idle.Store(0)
			empty = 0
			continue
		}
		f.ownerParks.Add(1)
		<-o.wake
		o.idle.Store(0)
		empty = 0
	}
}

// drain blocks until every ring is empty and every owner has applied
// its claimed items. Producers must be flushed and paused; with a
// producer still publishing, drain only proves a momentary quiesce.
func (f *fabric[T]) drain() {
	start := time.Now()
	for _, r := range f.rings {
		for r.size() != 0 {
			yieldWait()
		}
	}
	for _, o := range f.owners {
		for o.busy.Load() != 0 {
			yieldWait()
		}
	}
	f.drainHist.Observe(uint64(time.Since(start)))
}

// close drains and stops the owners and the occupancy sampler.
// Idempotent.
func (f *fabric[T]) close() {
	if f.closed.Swap(true) {
		f.wg.Wait()
		return
	}
	close(f.occStop)
	for _, o := range f.owners {
		o.maybeWake()
		// A concurrent parker that raised idle after the check above
		// still re-examines closed before blocking; the unconditional
		// token below covers the window in between.
		select {
		case o.wake <- struct{}{}:
		default:
		}
	}
	f.wg.Wait()
}

// stats snapshots the ledger.
func (f *fabric[T]) stats() PipelineStats {
	st := PipelineStats{
		Published:     f.published.Load(),
		Applied:       f.applied.Load(),
		ProducerParks: f.prodParks.Load(),
		OwnerParks:    f.ownerParks.Load(),
		RingCapacity:  f.ringCap,
	}
	f.occHist.Snapshot(&st.OccHist)
	f.batchHist.Snapshot(&st.BatchHist)
	f.drainHist.Snapshot(&st.DrainHist)
	return st
}

// register exposes the fabric's ledger under prefix (nil-safe).
func (f *fabric[T]) register(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.RegisterFunc(prefix+"_published_total", func() float64 { return float64(f.published.Load()) })
	r.RegisterFunc(prefix+"_applied_total", func() float64 { return float64(f.applied.Load()) })
	r.RegisterFunc(prefix+"_producer_parks_total", func() float64 { return float64(f.prodParks.Load()) })
	r.RegisterFunc(prefix+"_owner_parks_total", func() float64 { return float64(f.ownerParks.Load()) })
	r.RegisterFunc(prefix+"_ring_capacity", func() float64 { return float64(f.ringCap) })
	r.RegisterHistogram(prefix+"_ring_occupancy", &f.occHist)
	r.RegisterHistogram(prefix+"_batch_size", &f.batchHist)
	r.RegisterHistogram(prefix+"_drain_ns", &f.drainHist)
}

// PipelineStats is a point-in-time view of a pipeline's backpressure
// ledger. Published counts items handed to rings, Applied items the
// owners have folded into shards; the difference is in flight. The
// occupancy, batch-size, and drain-latency distributions ship as
// full histogram snapshots (obs.HistSnapshot: mergeable, with
// quantile extraction), not just means.
type PipelineStats struct {
	Published     uint64
	Applied       uint64
	ProducerParks uint64 // producer blocked on a full ring
	OwnerParks    uint64 // owner parked on an empty column
	RingCapacity  int

	OccHist   obs.HistSnapshot // ring occupancy (items) sampled on a fixed timer
	BatchHist obs.HistSnapshot // published batch sizes (items)
	DrainHist obs.HistSnapshot // Drain() wall latency (ns)
}

// Occupancy returns the time-weighted mean ring fill fraction, in
// [0,1]: ~0 means owners drain faster than producers fill (sharding
// is not the bottleneck), ~1 means producers outrun owners (more
// shards would help). NaN-free: zero samples yield 0. Samples come
// from the fixed-interval sampler goroutine, so idle stretches count
// exactly as much as busy ones; the full distribution is in OccHist
// (DESIGN.md §9).
func (st PipelineStats) Occupancy() float64 {
	if st.OccHist.Count == 0 || st.RingCapacity == 0 {
		return 0
	}
	return st.OccHist.Mean() / float64(st.RingCapacity)
}

// yieldWait is the drain-side polite spin. Gosched is enough: drains
// wait on owners that are runnable (a parked owner implies its column
// is already empty).
func yieldWait() { runtime.Gosched() }

// PipelineConfig parameterizes StartPipeline.
type PipelineConfig struct {
	// Producers is the number of Producer handles, one per feeding
	// goroutine. Required: at least 1.
	Producers int

	// Batch is the per-shard staging size a producer publishes at
	// (<= 0: DefaultBatchSize). Rings are at least this deep.
	Batch int

	// RingSize is the per-ring capacity in items (<= 0:
	// DefaultRingSize), rounded up to a power of two and floored at
	// Batch.
	RingSize int
}

func (cfg *PipelineConfig) normalize() error {
	if cfg.Producers < 1 {
		return errors.New("shard: PipelineConfig.Producers must be at least 1")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatchSize
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.RingSize < cfg.Batch {
		cfg.RingSize = cfg.Batch
	}
	return nil
}

// pair carries one key and its routing hash through a ring, so the
// sampled τ-fraction that reaches a Full update is never rehashed —
// the same single-hash discipline as the Batcher path.
type pair[K comparable] struct {
	key  K
	hash uint64
}

// Pipeline is the ring-sharded ingest plane over a Sketch: shard
// owners apply, producers stage and publish. Start with
// StartPipeline, feed through per-goroutine Producers, Close when the
// stream ends. Queries on the underlying Sketch remain valid at any
// time; Drain first for a complete view.
type Pipeline[K comparable] struct {
	s     *Sketch[K]
	f     *fabric[pair[K]]
	prods []*Producer[K]
}

// sketchApplier folds consumed (key,hash) batches into core shards
// under the shard mutex; keys/hs are per-shard scratch so concurrent
// owners never share.
type sketchApplier[K comparable] struct {
	s    *Sketch[K]
	keys [][]K      //memento:reused (per-shard owner apply scratch)
	hs   [][]uint64 //memento:reused (per-shard owner apply scratch)
}

//memento:noalloc
func (a *sketchApplier[K]) apply(shard int, items []pair[K]) {
	keys := a.keys[shard][:len(items)]
	hs := a.hs[shard][:len(items)]
	for j, it := range items {
		keys[j] = it.key
		hs[j] = it.hash
	}
	sl := &a.s.shards[shard]
	sl.mu.Lock()
	sl.s.UpdateBatchHashed(keys, hs)
	sl.mu.Unlock()
	a.s.ingested.Add(uint64(len(items)))
}

// StartPipeline spins up one owner goroutine per shard and returns
// the pipeline. The caller must Close it to stop the owners; each of
// the cfg.Producers Producer handles must be used by at most one
// goroutine and Flushed before Drain or Close.
func (s *Sketch[K]) StartPipeline(cfg PipelineConfig) (*Pipeline[K], error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	app := &sketchApplier[K]{s: s}
	pl := &Pipeline[K]{s: s}
	// Scratch sized to the post-round-up ring capacity: consume never
	// returns more than one ring's content.
	f := newFabric[pair[K]](cfg.Producers, len(s.shards), cfg.RingSize, app)
	app.keys = make([][]K, len(s.shards))
	app.hs = make([][]uint64, len(s.shards))
	for i := range app.keys {
		app.keys[i] = make([]K, f.ringCap)
		app.hs[i] = make([]uint64, f.ringCap)
	}
	pl.f = f
	pl.prods = make([]*Producer[K], cfg.Producers)
	for i := range pl.prods {
		stage := make([][]pair[K], len(s.shards))
		for j := range stage {
			stage[j] = make([]pair[K], 0, cfg.Batch)
		}
		pl.prods[i] = &Producer[K]{pl: pl, id: i, stage: stage, batch: cfg.Batch}
	}
	return pl, nil
}

// Producer returns handle i (0 <= i < cfg.Producers). Each handle is
// single-goroutine, like a Batcher.
func (pl *Pipeline[K]) Producer(i int) *Producer[K] { return pl.prods[i] }

// Producers returns the number of handles.
func (pl *Pipeline[K]) Producers() int { return len(pl.prods) }

// Drain blocks until everything published has been applied to the
// shards. Call it after Flushing the producers (and while they are
// paused) to make checkpoints, delta captures, and queries exact.
func (pl *Pipeline[K]) Drain() { pl.f.drain() }

// Close drains the rings and stops the owner goroutines. All
// producers must be Flushed and quiet. Idempotent.
func (pl *Pipeline[K]) Close() { pl.f.close() }

// Stats snapshots the backpressure ledger.
func (pl *Pipeline[K]) Stats() PipelineStats { return pl.f.stats() }

// Instrument registers the pipeline's ledger and distributions under
// memento_shard_* in r (nil-safe, zero hot-path cost: counters are
// read at scrape time).
func (pl *Pipeline[K]) Instrument(r *obs.Registry) { pl.f.register(r, "memento_shard") }

// Producer is one goroutine's handle into the pipeline: Add stages
// into per-shard buffers with no synchronization and publishes a
// buffer into its SPSC ring when full. Not safe for concurrent use;
// Flush before the pipeline is Drained or Closed.
type Producer[K comparable] struct {
	pl    *Pipeline[K]
	id    int
	stage [][]pair[K] //memento:reused (per-shard staging, cap-bounded by batch)
	batch int
}

// Add stages one key, publishing its shard's buffer if full. One
// hash per key, shared by routing and the core indexes.
//memento:noalloc
func (p *Producer[K]) Add(x K) {
	h := p.pl.s.hash(x)
	i := shardOf(h, len(p.stage))
	p.stage[i] = append(p.stage[i], pair[K]{key: x, hash: h})
	if len(p.stage[i]) >= p.batch {
		p.flush(i)
	}
}

//memento:noalloc
func (p *Producer[K]) flush(i int) {
	p.pl.f.publish(p.id, i, p.stage[i])
	p.stage[i] = p.stage[i][:0]
}

// Flush publishes every staged buffer, empty or not. It does not wait
// for the owners to apply; Drain does.
//memento:noalloc
func (p *Producer[K]) Flush() {
	for i := range p.stage {
		if len(p.stage[i]) > 0 {
			p.flush(i)
		}
	}
}

// HHHPipeline is the packet analog of Pipeline over a sharded
// H-Memento: same fabric, same protocols, items are packets and the
// owner applies through core.HHH.UpdateBatch.
type HHHPipeline struct {
	hh    *HHH
	f     *fabric[hierarchy.Packet]
	prods []*PacketProducer
}

// hhhApplier folds packet batches into core H-Memento shards.
type hhhApplier struct {
	hh *HHH
}

//memento:noalloc
func (a *hhhApplier) apply(shard int, items []hierarchy.Packet) {
	sl := &a.hh.shards[shard]
	sl.mu.Lock()
	sl.hh.UpdateBatch(items)
	sl.mu.Unlock()
}

// StartPipeline spins up one owner goroutine per shard over the
// sharded H-Memento. Same contracts as Sketch.StartPipeline.
func (s *HHH) StartPipeline(cfg PipelineConfig) (*HHHPipeline, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	pl := &HHHPipeline{hh: s}
	pl.f = newFabric[hierarchy.Packet](cfg.Producers, len(s.shards), cfg.RingSize, &hhhApplier{hh: s})
	pl.prods = make([]*PacketProducer, cfg.Producers)
	for i := range pl.prods {
		stage := make([][]hierarchy.Packet, len(s.shards))
		for j := range stage {
			stage[j] = make([]hierarchy.Packet, 0, cfg.Batch)
		}
		pl.prods[i] = &PacketProducer{pl: pl, id: i, stage: stage, batch: cfg.Batch}
	}
	return pl, nil
}

// Producer returns handle i; single-goroutine use.
func (pl *HHHPipeline) Producer(i int) *PacketProducer { return pl.prods[i] }

// Drain blocks until all published packets are applied (producers
// flushed and paused first).
func (pl *HHHPipeline) Drain() { pl.f.drain() }

// Close drains and stops the owners. Producers must be quiet.
func (pl *HHHPipeline) Close() { pl.f.close() }

// Stats snapshots the backpressure ledger.
func (pl *HHHPipeline) Stats() PipelineStats { return pl.f.stats() }

// Instrument registers the pipeline's ledger and distributions under
// memento_shard_* in r (nil-safe, zero hot-path cost).
func (pl *HHHPipeline) Instrument(r *obs.Registry) { pl.f.register(r, "memento_shard") }

// PacketProducer is one goroutine's packet handle, mirroring
// Producer.
type PacketProducer struct {
	pl    *HHHPipeline
	id    int
	stage [][]hierarchy.Packet //memento:reused (per-shard staging, cap-bounded by batch)
	batch int
}

// Add stages one packet, publishing its shard's buffer when full.
//memento:noalloc
func (p *PacketProducer) Add(pkt hierarchy.Packet) {
	i := shardOf(p.pl.hh.hash(pkt), len(p.stage))
	p.stage[i] = append(p.stage[i], pkt)
	if len(p.stage[i]) >= p.batch {
		p.flush(i)
	}
}

//memento:noalloc
func (p *PacketProducer) flush(i int) {
	p.pl.f.publish(p.id, i, p.stage[i])
	p.stage[i] = p.stage[i][:0]
}

// Flush publishes every staged buffer.
//memento:noalloc
func (p *PacketProducer) Flush() {
	for i := range p.stage {
		if len(p.stage[i]) > 0 {
			p.flush(i)
		}
	}
}

// SharedProducer serializes a PacketProducer behind a mutex so many
// goroutines can feed one pipeline: it satisfies lb.BatchSink, making
// a ring pipeline a drop-in observer sink for the load balancer. Each
// UpdateBatch partitions, publishes, and returns — the sketch apply
// work happens on the owner goroutines, off the caller's path.
type SharedProducer struct {
	mu sync.Mutex
	p  *PacketProducer
}

// NewSharedProducer wraps producer handle i of pl. The handle must
// not be used directly afterwards.
func (pl *HHHPipeline) NewSharedProducer(i int) *SharedProducer {
	return &SharedProducer{p: pl.Producer(i)}
}

// UpdateBatch stages and publishes the batch. Safe for concurrent
// use; blocks only if a ring fills (owner backpressure).
//memento:noalloc
func (sp *SharedProducer) UpdateBatch(ps []hierarchy.Packet) {
	sp.mu.Lock()
	for _, pkt := range ps {
		sp.p.Add(pkt)
	}
	sp.p.Flush()
	sp.mu.Unlock()
}
