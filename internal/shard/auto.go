// Adaptive execution mode: the single-core regression trap and its
// fix (DESIGN.md §9). The ring pipeline wins by running shard owners
// on their own cores; on GOMAXPROCS=1 those owners time-slice against
// the producers and the lock-per-flush Batcher path is strictly
// better (no goroutine switches, no ring copies). ModeAuto picks per
// deployment so neither configuration regresses, and Retune folds in
// what the pipeline actually observed.

package shard

import "runtime"

// Mode selects the ingest execution strategy of an Ingest plane.
type Mode uint8

const (
	// ModeAuto resolves to ModeBatch or ModeRing at construction
	// (AutoMode) and again at Retune.
	ModeAuto Mode = iota

	// ModeBatch is the lock-per-flush path: per-goroutine Batchers
	// partition and flush each full sub-buffer under its shard mutex.
	// The only mode that makes sense on a single core or a single
	// shard ("serial batching").
	ModeBatch

	// ModeRing is the SPSC pipeline: shard-owner goroutines apply,
	// producers only stage and publish.
	ModeRing
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeBatch:
		return "batch"
	case ModeRing:
		return "ring"
	}
	return "invalid"
}

// AutoMode resolves ModeAuto for a sketch with the given shard count:
// ring ownership pays only when owner goroutines can run in parallel
// with producers, so GOMAXPROCS=1 or a single shard falls back to
// serial batching. Differential tests pin that both answers are
// identical (the batch grouping does not change the sampled point
// process; see core.Sketch.UpdateBatch).
func AutoMode(shards int) Mode {
	if runtime.GOMAXPROCS(0) == 1 || shards == 1 {
		return ModeBatch
	}
	return ModeRing
}

// lowOccupancy is the Retune downgrade threshold: if the timer-driven
// occupancy sampler sees rings under 2% full on average and no
// producer ever parked, owners drain faster than producers fill — the
// sketch apply is not the bottleneck, and the batch path's simpler
// handoff wins back the ring-copy overhead. Time-weighted occupancy
// is never higher than the old publish-weighted reading (idle
// stretches now count), so demotion is at least as eager as before —
// the same safe direction, with ProducerParks == 0 still the hard
// evidence that nothing ever waited on a ring.
const lowOccupancy = 0.02

// IngestConfig parameterizes NewIngest.
type IngestConfig struct {
	// Mode picks the execution strategy; ModeAuto (the zero value)
	// resolves via AutoMode.
	Mode Mode

	// Producers is the number of Source handles (feeding
	// goroutines). <= 0 selects 1.
	Producers int

	// Batch is the per-shard staging size (<= 0: DefaultBatchSize).
	Batch int

	// RingSize is the per-ring capacity for ModeRing (<= 0:
	// DefaultRingSize).
	RingSize int
}

// Ingest is the mode-dispatching ingest plane over a Sketch: it hands
// out per-goroutine Sources whose Add routes to either a Batcher
// (ModeBatch) or a ring Producer (ModeRing), so callers write one
// ingest loop and deployment picks the engine.
type Ingest[K comparable] struct {
	s    *Sketch[K]
	cfg  IngestConfig
	mode Mode // resolved: ModeBatch or ModeRing
	pl   *Pipeline[K]
	srcs []*Source[K]

	// demoted is set when Retune downgraded ring→batch on observed
	// occupancy, and makes the decision sticky: with the pipeline
	// gone there is no fresh occupancy evidence, so flapping back to
	// ring on the next Retune would ping-pong engines forever.
	demoted bool
}

// Source is one goroutine's ingest handle. It owns the per-shard
// staging buffers itself, so Add has exactly the Batcher.Add shape —
// hash, route, two appends, a length check — regardless of the active
// engine; the engine dispatch happens once per flushed batch, not per
// packet. That is what keeps the auto mode's single-core cost within
// noise of a bare Batcher. Not safe for concurrent use; Flush before
// reading final results or retuning.
type Source[K comparable] struct {
	in    *Ingest[K]
	id    int
	bufs  [][]K      //memento:reused (one per shard, cap-bounded by batch)
	hs    [][]uint64 //memento:reused (parallel routing hashes)
	pairs []pair[K]  //memento:reused (ring publish scratch)
	batch int
	ring  bool // active engine; flipped only at engage, under quiesce
}

// Add stages one key, flushing its shard's sub-buffer through the
// active engine when full. One hash per key, shared by routing and
// the core indexes.
//memento:noalloc
func (src *Source[K]) Add(x K) {
	h := src.in.s.hash(x)
	i := shardOf(h, len(src.bufs))
	src.bufs[i] = append(src.bufs[i], x)
	src.hs[i] = append(src.hs[i], h)
	if len(src.bufs[i]) >= src.batch {
		src.flushShard(i)
	}
}

// flushShard hands one staged sub-buffer to the active engine: ring
// mode packs (key,hash) pairs into the publish scratch and pushes
// them into this source's ring for the shard (the owner applies and
// accounts them); batch mode applies under the shard mutex directly,
// exactly like Batcher.flushShard.
//memento:noalloc
func (src *Source[K]) flushShard(i int) {
	keys, hs := src.bufs[i], src.hs[i]
	if src.ring {
		pairs := src.pairs[:len(keys)]
		for j, k := range keys {
			pairs[j] = pair[K]{key: k, hash: hs[j]}
		}
		src.in.pl.f.publish(src.id, i, pairs)
	} else {
		sl := &src.in.s.shards[i]
		sl.mu.Lock()
		sl.s.UpdateBatchHashed(keys, hs)
		sl.mu.Unlock()
		src.in.s.ingested.Add(uint64(len(keys)))
	}
	src.bufs[i] = keys[:0]
	src.hs[i] = hs[:0]
}

// Flush pushes everything staged in this source toward the shards.
// In ring mode the items are published but possibly not yet applied;
// Ingest.Drain completes the quiesce.
//memento:noalloc
func (src *Source[K]) Flush() {
	for i := range src.bufs {
		if len(src.bufs[i]) > 0 {
			src.flushShard(i)
		}
	}
}

// NewIngest builds the ingest plane. ModeAuto resolves via AutoMode
// against the sketch's shard count and the current GOMAXPROCS.
func (s *Sketch[K]) NewIngest(cfg IngestConfig) (*Ingest[K], error) {
	if cfg.Producers <= 0 {
		cfg.Producers = 1
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatchSize
	}
	in := &Ingest[K]{s: s, cfg: cfg}
	mode := cfg.Mode
	if mode == ModeAuto {
		mode = AutoMode(len(s.shards))
	}
	in.srcs = make([]*Source[K], cfg.Producers)
	for i := range in.srcs {
		src := &Source[K]{
			in: in, id: i, batch: cfg.Batch,
			bufs:  make([][]K, len(s.shards)),
			hs:    make([][]uint64, len(s.shards)),
			pairs: make([]pair[K], cfg.Batch),
		}
		for j := range src.bufs {
			src.bufs[j] = make([]K, 0, cfg.Batch)
			src.hs[j] = make([]uint64, 0, cfg.Batch)
		}
		in.srcs[i] = src
	}
	if err := in.engage(mode); err != nil {
		return nil, err
	}
	return in, nil
}

// engage (re)wires every Source to the given engine. Callers hold
// the quiescence contract: no Source is mid-Add and all staging
// buffers are empty.
func (in *Ingest[K]) engage(mode Mode) error {
	if mode == ModeRing {
		pl, err := in.s.StartPipeline(PipelineConfig{
			Producers: in.cfg.Producers,
			Batch:     in.cfg.Batch,
			RingSize:  in.cfg.RingSize,
		})
		if err != nil {
			return err
		}
		in.pl = pl
	} else {
		in.pl = nil
	}
	for _, src := range in.srcs {
		src.ring = mode == ModeRing
	}
	in.mode = mode
	return nil
}

// Mode returns the resolved execution mode.
func (in *Ingest[K]) Mode() Mode { return in.mode }

// Source returns handle i (0 <= i < cfg.Producers).
func (in *Ingest[K]) Source(i int) *Source[K] { return in.srcs[i] }

// Sources returns the number of handles.
func (in *Ingest[K]) Sources() int { return len(in.srcs) }

// Stats returns the ring backpressure ledger; zero-valued in
// ModeBatch.
func (in *Ingest[K]) Stats() PipelineStats {
	if in.pl == nil {
		return PipelineStats{}
	}
	return in.pl.Stats()
}

// Drain completes a quiesce after every Source was Flushed: in ring
// mode it waits for the owners to apply everything published, in
// batch mode applies are synchronous and it returns immediately.
func (in *Ingest[K]) Drain() {
	if in.pl != nil {
		in.pl.Drain()
	}
}

// Retune re-resolves the execution mode from the current GOMAXPROCS
// and the occupancy the pipeline observed, switching engines if the
// decision changed. Only meaningful for ModeAuto configurations —
// fixed modes return immediately. The caller must hold the same
// quiescence contract as Close: every Source Flushed, no Add in
// flight. Returns the mode now engaged.
func (in *Ingest[K]) Retune() Mode {
	if in.cfg.Mode != ModeAuto {
		return in.mode
	}
	want := AutoMode(len(in.s.shards))
	if want == ModeBatch {
		// The environment itself says batch; any earlier
		// occupancy-based demotion is superseded.
		in.demoted = false
	}
	if want == ModeRing && in.pl != nil {
		// Already ringing: fold in observation. Near-empty rings with
		// zero producer parks mean the owners are starving — the
		// apply work does not saturate a core, so the batch path's
		// cheaper handoff wins.
		st := in.pl.Stats()
		if st.Published > 0 && st.ProducerParks == 0 && st.Occupancy() < lowOccupancy {
			want = ModeBatch
			in.demoted = true
		}
	}
	if in.demoted {
		want = ModeBatch
	}
	if want == in.mode {
		return in.mode
	}
	if in.pl != nil {
		in.pl.Drain()
		in.pl.Close()
	}
	// engage cannot fail here: the config was validated at NewIngest.
	if err := in.engage(want); err != nil {
		panic("shard: Retune re-engage: " + err.Error())
	}
	return in.mode
}

// Close drains and stops the ring engine, if any. Sources must be
// Flushed and quiet. Idempotent.
func (in *Ingest[K]) Close() {
	if in.pl != nil {
		in.pl.Drain()
		in.pl.Close()
	}
}
