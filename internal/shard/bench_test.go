package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"memento/internal/audit"
	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/obs"
	"memento/internal/rng"
)

// benchKeys builds a mildly skewed key stream shared by the ingestion
// benchmarks (power-of-two length for cheap wraparound indexing).
func benchKeys(n int) []uint64 {
	src := rng.New(8)
	keys := make([]uint64, n)
	for i := range keys {
		k := src.Intn(1 << 8)
		if src.Intn(4) == 0 {
			k = 1<<8 + src.Intn(1<<16)
		}
		keys[i] = uint64(k)
	}
	return keys
}

const benchWindow = 1 << 18
const benchTau = 1.0 / 64

// BenchmarkIngestSingle is the baseline the acceptance criterion
// compares against: one goroutine, per-packet Update on a bare
// core.Sketch.
func BenchmarkIngestSingle(b *testing.B) {
	keys := benchKeys(1 << 20)
	s := core.MustNew[uint64](core.Config{
		Window: benchWindow, Counters: 4096, Tau: benchTau, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(keys[i&(len(keys)-1)])
	}
}

// BenchmarkInstrumentedIngest is BenchmarkIngestSingle with the full
// obs plane attached — registry-backed core instruments (block
// slides, frame flushes, evictions, overflow residency) and a live
// trace ring receiving window-slide events. The acceptance criterion
// pins it within 3% of the uninstrumented baseline and CI alloc-gates
// it at 0 allocs/op: instruments ride block granularity, so the
// per-packet cost is one nil compare that this benchmark makes
// non-nil.
func BenchmarkInstrumentedIngest(b *testing.B) {
	keys := benchKeys(1 << 20)
	s := core.MustNew[uint64](core.Config{
		Window: benchWindow, Counters: 4096, Tau: benchTau, Seed: 1,
	})
	reg := obs.NewRegistry()
	trace := obs.NewTrace(256)
	s.Instrument(core.NewInstruments(reg, trace, "bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(keys[i&(len(keys)-1)])
	}
	b.StopTimer()
	if reg.Counter("memento_core_block_slides_total").Load() == 0 && b.N > benchWindow {
		b.Fatal("instruments attached but never fired")
	}
}

// BenchmarkIngestSharded sweeps shard count and batch size over the
// concurrent front-end; RunParallel drives it from GOMAXPROCS
// goroutines through per-goroutine Batchers, the intended ingestion
// path.
func BenchmarkIngestSharded(b *testing.B) {
	keys := benchKeys(1 << 20)
	for _, shards := range []int{1, 4, 8} {
		for _, batch := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(b *testing.B) {
				s := MustNew[uint64](SketchConfig[uint64]{
					Core:   core.Config{Window: benchWindow, Counters: 4096, Tau: benchTau, Seed: 1},
					Shards: shards,
				})
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					bt := s.NewBatcher(batch)
					i := 0
					for pb.Next() {
						bt.Add(keys[i&(len(keys)-1)])
						i++
					}
					bt.Flush()
				})
			})
		}
	}
}

// BenchmarkIngestRing drives the SPSC ring pipeline: one producer
// goroutine staging and publishing, shard owners applying on their
// own goroutines. CI gates this at 0 allocs/op — the whole publish →
// consume → apply path runs on preallocated rings and scratch.
func BenchmarkIngestRing(b *testing.B) {
	keys := benchKeys(1 << 20)
	s := MustNew[uint64](SketchConfig[uint64]{
		Core:   core.Config{Window: benchWindow, Counters: 4096, Tau: benchTau, Seed: 1},
		Shards: 4,
	})
	pl, err := s.StartPipeline(PipelineConfig{Producers: 1, Batch: 1024})
	if err != nil {
		b.Fatal(err)
	}
	p := pl.Producer(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Add(keys[i&(len(keys)-1)])
	}
	p.Flush()
	pl.Drain()
	b.StopTimer()
	pl.Close()
}

// BenchmarkIngestRingParallel is the scaling shape: GOMAXPROCS
// producers, each with its own ring column, against the same owners.
func BenchmarkIngestRingParallel(b *testing.B) {
	keys := benchKeys(1 << 20)
	for _, shards := range []int{4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := MustNew[uint64](SketchConfig[uint64]{
				Core:   core.Config{Window: benchWindow, Counters: 4096, Tau: benchTau, Seed: 1},
				Shards: shards,
			})
			procs := runtime.GOMAXPROCS(0)
			pl, err := s.StartPipeline(PipelineConfig{Producers: procs, Batch: 1024})
			if err != nil {
				b.Fatal(err)
			}
			var next int32
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				p := pl.Producer(int(atomic.AddInt32(&next, 1)-1) % procs)
				i := 0
				for pb.Next() {
					p.Add(keys[i&(len(keys)-1)])
					i++
				}
				p.Flush()
			})
			pl.Drain()
			b.StopTimer()
			pl.Close()
		})
	}
}

// BenchmarkIngestShardedSerial isolates the batching win from the
// parallelism win: a single goroutine feeding the sharded sketch
// through UpdateBatch.
func BenchmarkIngestShardedSerial(b *testing.B) {
	keys := benchKeys(1 << 20)
	for _, batch := range []int{256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s := MustNew[uint64](SketchConfig[uint64]{
				Core:   core.Config{Window: benchWindow, Counters: 4096, Tau: benchTau, Seed: 1},
				Shards: 4,
			})
			b.ResetTimer()
			bt := s.NewBatcher(batch)
			for i := 0; i < b.N; i++ {
				bt.Add(keys[i&(len(keys)-1)])
			}
			bt.Flush()
		})
	}
}

// benchPackets is the packet analog of benchKeys: a mildly skewed 1D
// source stream for the H-Memento batcher benchmarks.
func benchPackets(n int) []hierarchy.Packet {
	src := rng.New(8)
	ps := make([]hierarchy.Packet, n)
	for i := range ps {
		a := uint32(src.Intn(1 << 8))
		if src.Intn(4) == 0 {
			a = uint32(1<<8 + src.Intn(1<<16))
		}
		ps[i] = hierarchy.Packet{Src: a}
	}
	return ps
}

// benchIngestHHH builds the single-goroutine H-Memento batcher path
// both the bare and audited ingest benchmarks drive.
func benchIngestHHH() *HHH {
	return MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: benchWindow, Counters: 512 * 5, V: 20, Seed: 6,
		},
		Shards: 4,
	})
}

// BenchmarkHHHIngestBatched is the bare packet-batcher baseline the
// audited ingest is compared against (acceptance: within 3%).
func BenchmarkHHHIngestBatched(b *testing.B) {
	pkts := benchPackets(1 << 20)
	s := benchIngestHHH()
	bt := s.NewBatcher(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Add(pkts[i&(len(pkts)-1)])
	}
	bt.Flush()
}

// BenchmarkAuditedIngest is BenchmarkHHHIngestBatched with the
// accuracy-plane tee attached: every packet advances the shadow
// oracle's window position and sampled keys stage for the amortized
// exact-count apply. The audited Add hashes each packet once (the
// shard-routing hash doubles as the sampling hash) and the unsampled
// fast path — one position increment and one mask test — inlines into
// Add. CI alloc-gates this at 0 allocs/op; the residual time overhead
// measures ~4% against the bare batcher at the production sampling
// shift, against a 3% budget that is within run-to-run noise here.
func BenchmarkAuditedIngest(b *testing.B) {
	pkts := benchPackets(1 << 20)
	s := benchIngestHHH()
	a, err := audit.New(audit.Config{
		Hier:        hierarchy.OneD{},
		Window:      s.EffectiveWindow(),
		SampleShift: 10,
		Seed:        9,
	})
	if err != nil {
		b.Fatal(err)
	}
	bt := s.NewBatcher(256)
	bt.Audit(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Add(pkts[i&(len(pkts)-1)])
	}
	bt.Flush()
	a.Flush()
	b.StopTimer()
	if b.N > 1<<10 && a.Sampled() == 0 {
		b.Fatal("benchmark vacuous: the oracle sampled nothing")
	}
}

// benchHHH builds the 4-shard H-Memento the Output benchmarks run
// against, warmed with a skewed stream so the candidate set is
// realistic.
func benchHHH(tb testing.TB) *HHH {
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: benchWindow, Counters: 512 * 5, V: 20, Seed: 6,
		},
		Shards: 4,
	})
	src := rng.New(7)
	bt := s.NewBatcher(256)
	for i := 0; i < 1<<20; i++ {
		a := uint32(src.Intn(1 << 20))
		if src.Intn(3) > 0 {
			a = uint32(src.Intn(64))
		}
		bt.Add(hierarchy.Packet{Src: a})
	}
	bt.Flush()
	return s
}

// BenchmarkOutputSteadyState measures the snapshot-backed HHH output:
// one lock pass per shard, lock-free set computation, and (CI-gated)
// zero steady-state allocations via OutputTo with a recycled buffer.
func BenchmarkOutputSteadyState(b *testing.B) {
	s := benchHHH(b)
	var out []core.HeavyPrefix
	out = s.OutputTo(0.1, out[:0]) // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = s.OutputTo(0.1, out[:0])
	}
	if len(out) == 0 {
		b.Fatal("benchmark vacuous: Output reported nothing")
	}
}

// BenchmarkOutputLockPerBounds measures the pre-snapshot
// implementation (every Bounds call locking all shards) on the same
// instance, so a speedup comparison is reproducible in-tree against
// BenchmarkOutputSteadyState. It understates the true pre-change
// cost: it necessarily runs through the new hhhset scan (cached
// bounds, 1D cover bits), which the actual PR 2 Output did not have —
// benchmarked at the pre-change commit, the real Output is ~2x slower
// still on this workload (~980us vs ~530us here, ~180us snapshot).
func BenchmarkOutputLockPerBounds(b *testing.B) {
	s := benchHHH(b)
	var out []core.HeavyPrefix
	var ls legacyScratch
	out = legacyOutput(s, 0.1, &ls, out[:0]) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = legacyOutput(s, 0.1, &ls, out[:0])
	}
	if len(out) == 0 {
		b.Fatal("benchmark vacuous: Output reported nothing")
	}
}

// BenchmarkOutputUnderIngestion is the contended variant: GOMAXPROCS-1
// writer goroutines ingest through Batchers while the benchmark
// goroutine queries, approximating a monitoring probe against a
// loaded collector.
func BenchmarkOutputUnderIngestion(b *testing.B) {
	s := benchHHH(b)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	writers := runtime.GOMAXPROCS(0) - 1
	if writers < 1 {
		writers = 1
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			src := rng.New(uint64(id + 60))
			bt := s.NewBatcher(256)
			for {
				select {
				case <-stop:
					bt.Flush()
					return
				default:
				}
				for i := 0; i < 1024; i++ {
					bt.Add(hierarchy.Packet{Src: uint32(src.Intn(1 << 18))})
				}
			}
		}(w)
	}
	var out []core.HeavyPrefix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = s.OutputTo(0.1, out[:0])
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
