package shard

import (
	"fmt"
	"testing"

	"memento/internal/core"
	"memento/internal/rng"
)

// benchKeys builds a mildly skewed key stream shared by the ingestion
// benchmarks (power-of-two length for cheap wraparound indexing).
func benchKeys(n int) []uint64 {
	src := rng.New(8)
	keys := make([]uint64, n)
	for i := range keys {
		k := src.Intn(1 << 8)
		if src.Intn(4) == 0 {
			k = 1<<8 + src.Intn(1<<16)
		}
		keys[i] = uint64(k)
	}
	return keys
}

const benchWindow = 1 << 18
const benchTau = 1.0 / 64

// BenchmarkIngestSingle is the baseline the acceptance criterion
// compares against: one goroutine, per-packet Update on a bare
// core.Sketch.
func BenchmarkIngestSingle(b *testing.B) {
	keys := benchKeys(1 << 20)
	s := core.MustNew[uint64](core.Config{
		Window: benchWindow, Counters: 4096, Tau: benchTau, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(keys[i&(len(keys)-1)])
	}
}

// BenchmarkIngestSharded sweeps shard count and batch size over the
// concurrent front-end; RunParallel drives it from GOMAXPROCS
// goroutines through per-goroutine Batchers, the intended ingestion
// path.
func BenchmarkIngestSharded(b *testing.B) {
	keys := benchKeys(1 << 20)
	for _, shards := range []int{1, 4, 8} {
		for _, batch := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(b *testing.B) {
				s := MustNew[uint64](SketchConfig[uint64]{
					Core:   core.Config{Window: benchWindow, Counters: 4096, Tau: benchTau, Seed: 1},
					Shards: shards,
				})
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					bt := s.NewBatcher(batch)
					i := 0
					for pb.Next() {
						bt.Add(keys[i&(len(keys)-1)])
						i++
					}
					bt.Flush()
				})
			})
		}
	}
}

// BenchmarkIngestShardedSerial isolates the batching win from the
// parallelism win: a single goroutine feeding the sharded sketch
// through UpdateBatch.
func BenchmarkIngestShardedSerial(b *testing.B) {
	keys := benchKeys(1 << 20)
	for _, batch := range []int{256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s := MustNew[uint64](SketchConfig[uint64]{
				Core:   core.Config{Window: benchWindow, Counters: 4096, Tau: benchTau, Seed: 1},
				Shards: 4,
			})
			b.ResetTimer()
			bt := s.NewBatcher(batch)
			for i := 0; i < b.N; i++ {
				bt.Add(keys[i&(len(keys)-1)])
			}
			bt.Flush()
		})
	}
}
