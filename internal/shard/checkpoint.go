// Checkpoint/Restore: durable capture of a whole sharded instance.
//
// A checkpoint is a codec set record: a fixed envelope (header, shard
// count, and the global ingestion counter for Sketch) followed by one
// length-prefixed, self-contained per-shard snapshot record. Capture
// follows the read plane's probe discipline — every shard lock is
// acquired exactly once, held only for the checkpoint-plane slab copy
// (core.CheckpointInto) — so a checkpoint stalls ingestion no longer
// than a query does; encoding and writing happen outside the locks.
// Like every multi-shard read, the result is a fuzzy snapshot under
// concurrent writers: per-shard states may be captured at slightly
// different stream positions, exactly as queries see them.
//
// Restore is the inverse: it validates the envelope against the live
// configuration (shard count, and per-shard seed-independent
// parameters via core.Sketch.RestoreFrom), decodes every blob before
// touching any shard, then rehydrates each shard under its lock. A
// restored instance answers every query exactly as the source did at
// capture time and keeps sliding from that position.

package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/hierarchy"
)

// envelopeSize is the fixed checkpoint preamble: header + u32 shard
// count + u64 ingested counter.
const envelopeSize = codec.HeaderSize + 4 + 8

// appendEnvelope builds the checkpoint preamble.
func appendEnvelope(dst []byte, kind uint8, shards int, ingested uint64) []byte {
	dst = codec.AppendHeader(dst, codec.Header{
		Version: codec.Version,
		Kind:    kind,
		Flags:   codec.FlagRestore,
		Digest:  codec.SetDigest(kind, shards),
	})
	dst = binary.BigEndian.AppendUint32(dst, uint32(shards))
	return binary.BigEndian.AppendUint64(dst, ingested)
}

// readEnvelope parses and validates the checkpoint preamble.
func readEnvelope(r io.Reader, kind uint8) (shards int, ingested uint64, err error) {
	var head [envelopeSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, 0, codec.Corruptf("reading envelope: %v", err)
	}
	h, rest, err := codec.ReadHeader(head[:])
	if err != nil {
		return 0, 0, err
	}
	if h.Kind != kind {
		return 0, 0, fmt.Errorf("%w: kind %d, want %d", codec.ErrKind, h.Kind, kind)
	}
	if h.Flags&codec.FlagRestore == 0 {
		return 0, 0, codec.ErrNotRestorable
	}
	n := binary.BigEndian.Uint32(rest)
	ingested = binary.BigEndian.Uint64(rest[4:])
	if n == 0 || n > codec.MaxShards {
		return 0, 0, codec.Corruptf("shard count %d out of range", n)
	}
	if h.Digest != codec.SetDigest(kind, int(n)) {
		return 0, 0, fmt.Errorf("%w: envelope digest", codec.ErrConfigMismatch)
	}
	return int(n), ingested, nil
}

// writeBlob writes one length-prefixed snapshot record.
func writeBlob(w io.Writer, blob []byte) error {
	if len(blob) > codec.MaxRecord {
		return fmt.Errorf("shard: snapshot record of %d bytes exceeds limit", len(blob))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(blob)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(blob)
	return err
}

// readBlob reads one length-prefixed snapshot record, reusing buf.
func readBlob(r io.Reader, buf []byte) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, codec.Corruptf("reading record length: %v", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > codec.MaxRecord {
		return nil, codec.Corruptf("record length %d out of range", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, codec.Corruptf("reading %d-byte record: %v", n, err)
	}
	return buf, nil
}

// Checkpoint writes the whole sharded sketch to w as a KindSketchSet
// record, keys encoded through kc. One lock acquisition per shard,
// held only for the slab copy; a restored instance answers queries
// identically and keeps sliding from the captured position.
func (s *Sketch[K]) Checkpoint(w io.Writer, kc codec.KeyCodec[K]) error {
	if _, err := w.Write(appendEnvelope(nil, codec.KindSketchSet, len(s.shards), s.ingested.Load())); err != nil {
		return err
	}
	var snap core.Snapshot[K]
	var buf []byte
	total := envelopeSize
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.s.CheckpointInto(&snap)
		sl.mu.Unlock()
		buf = snap.AppendTo(buf[:0], kc)
		if err := writeBlob(w, buf); err != nil {
			return err
		}
		total += 4 + len(buf)
	}
	codec.AccountEncode(codec.KindSketchSet, total)
	return nil
}

// Restore rehydrates the sharded sketch from a Checkpoint stream. The
// checkpoint's shard count and per-shard configuration must match
// this instance's; every record is decoded and validated before any
// shard is touched, so a malformed stream leaves the instance
// unchanged. (A failure surfaced while applying validated snapshots —
// not reachable from streams this package writes — can leave earlier
// shards restored; discard the instance then.)
func (s *Sketch[K]) Restore(r io.Reader, kc codec.KeyCodec[K]) error {
	shards, ingested, err := readEnvelope(r, codec.KindSketchSet)
	if err != nil {
		return err
	}
	if shards != len(s.shards) {
		return fmt.Errorf("%w: checkpoint has %d shards, instance %d",
			codec.ErrConfigMismatch, shards, len(s.shards))
	}
	snaps := make([]*core.Snapshot[K], shards)
	var buf []byte
	total := envelopeSize
	for i := range snaps {
		if buf, err = readBlob(r, buf); err != nil {
			return err
		}
		total += 4 + len(buf)
		// Decode under the shard's own hash so RestoreFrom's
		// re-insertions probe with values the live indexes agree with.
		if snaps[i], err = core.DecodeSnapshot(buf, kc, s.hash); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if !snaps[i].Restorable() {
			return fmt.Errorf("shard %d: %w", i, codec.ErrNotRestorable)
		}
	}
	codec.AccountDecode(codec.KindSketchSet, total)
	for i, snap := range snaps {
		sl := &s.shards[i]
		sl.mu.Lock()
		err = sl.s.RestoreFrom(snap)
		sl.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	s.ingested.Store(ingested)
	return nil
}

// Checkpoint writes the whole sharded H-Memento to w as a KindHHHSet
// record, with the same one-lock-pass-per-shard capture discipline as
// Output (the counting probe covers it).
func (s *HHH) Checkpoint(w io.Writer) error {
	if _, err := w.Write(appendEnvelope(nil, codec.KindHHHSet, len(s.shards), 0)); err != nil {
		return err
	}
	snap := new(core.HHHSnapshot)
	var buf []byte
	total := envelopeSize
	for i := range s.shards {
		sl := &s.shards[i]
		s.lockShardRead(sl)
		sl.hh.CheckpointInto(snap)
		sl.mu.Unlock()
		blob, err := snap.AppendTo(buf[:0])
		if err != nil {
			return err
		}
		buf = blob
		if err := writeBlob(w, blob); err != nil {
			return err
		}
		total += 4 + len(blob)
	}
	codec.AccountEncode(codec.KindHHHSet, total)
	return nil
}

// Restore rehydrates the sharded H-Memento from a Checkpoint stream,
// with the same validate-then-apply discipline as Sketch.Restore.
func (s *HHH) Restore(r io.Reader) error {
	snaps, _, err := decodeHHHSet(r)
	if err != nil {
		return err
	}
	if len(snaps) != len(s.shards) {
		return fmt.Errorf("%w: checkpoint has %d shards, instance %d",
			codec.ErrConfigMismatch, len(snaps), len(s.shards))
	}
	for i, snap := range snaps {
		if !snap.Restorable() {
			return fmt.Errorf("shard %d: %w", i, codec.ErrNotRestorable)
		}
	}
	for i, snap := range snaps {
		sl := &s.shards[i]
		sl.mu.Lock()
		err = sl.hh.RestoreFrom(snap)
		sl.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// decodeHHHSet reads a KindHHHSet stream into decoded snapshots.
func decodeHHHSet(r io.Reader) ([]*core.HHHSnapshot, uint64, error) {
	shards, ingested, err := readEnvelope(r, codec.KindHHHSet)
	if err != nil {
		return nil, 0, err
	}
	snaps := make([]*core.HHHSnapshot, shards)
	var buf []byte
	total := envelopeSize
	for i := range snaps {
		if buf, err = readBlob(r, buf); err != nil {
			return nil, 0, err
		}
		total += 4 + len(buf)
		if snaps[i], err = core.DecodeHHHSnapshot(buf); err != nil {
			return nil, 0, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	codec.AccountDecode(codec.KindHHHSet, total)
	return snaps, ingested, nil
}

// DecodeHHHCheckpoint reads a KindHHHSet stream into its per-shard
// snapshots without constructing a live instance — the offline path
// (cmd/mementoctl inspect/merge) feeds them straight to a Merger.
func DecodeHHHCheckpoint(r io.Reader) ([]*core.HHHSnapshot, error) {
	snaps, _, err := decodeHHHSet(r)
	return snaps, err
}

// RestoreHHH constructs a live sharded H-Memento directly from a
// Checkpoint stream, deriving each shard's configuration from its
// snapshot (window, counter budget, sampling ratio V = scale,
// hierarchy) instead of requiring the caller to restate it — the warm
// restart and offline-load path. Shard routing uses the default
// PrefixHasher and per-shard seeds derive from the default seed; the
// restored instance keeps the default output Delta, so its sampling
// compensation matches the source's only if the source used the
// default too (the compensation is an output parameter, not state).
func RestoreHHH(r io.Reader) (*HHH, error) {
	snaps, _, err := decodeHHHSet(r)
	if err != nil {
		return nil, err
	}
	return restoreHHHFromSnaps(snaps)
}

// RestoreHHHFromSnapshots builds a live sharded instance from decoded
// per-partition restore-plane snapshots — the entry point for callers
// that assembled the snapshots themselves (cmd/mementoctl folding a
// single-instance controller chain into a one-shard view). Shard
// routing and seeds follow RestoreHHH's derivation rules.
func RestoreHHHFromSnapshots(snaps []*core.HHHSnapshot) (*HHH, error) {
	if len(snaps) == 0 {
		return nil, errors.New("shard: no snapshots to restore from")
	}
	return restoreHHHFromSnaps(snaps)
}

// restoreHHHFromSnaps builds the live instance from decoded per-shard
// restore-plane snapshots; shared by RestoreHHH (full checkpoints)
// and RestoreHHHChain (base+delta chains).
func restoreHHHFromSnaps(snaps []*core.HHHSnapshot) (*HHH, error) {
	for i, snap := range snaps {
		if !snap.Restorable() {
			return nil, fmt.Errorf("shard %d: %w", i, codec.ErrNotRestorable)
		}
		if !hierarchy.Same(snap.Hierarchy(), snaps[0].Hierarchy()) {
			return nil, fmt.Errorf("%w: shard %d hierarchy %v vs shard 0 %v",
				codec.ErrConfigMismatch, i, snap.Hierarchy(), snaps[0].Hierarchy())
		}
	}
	hier := snaps[0].Hierarchy()
	s := &HHH{
		shards: make([]hhhSlot, len(snaps)),
		hier:   hier,
	}
	var varSum float64
	for i, snap := range snaps {
		mem := snap.Sketch()
		scale := mem.Scale()
		v := int(scale)
		if float64(v) != scale || v < hier.H() {
			return nil, fmt.Errorf("%w: shard %d scale %g is not a valid sampling ratio",
				codec.ErrConfigMismatch, i, scale)
		}
		hh, err := core.NewHHH(core.HHHConfig{
			Hierarchy: hier,
			Window:    mem.EffectiveWindow(),
			Counters:  mem.Counters(),
			V:         v,
			Seed:      defaultSeed + uint64(i)*0x9e3779b97f4a7c15,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if err := hh.RestoreFrom(snap); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		//memento:allow lock "instance under construction; not yet shared"
		s.shards[i].hh = hh
		s.window += hh.EffectiveWindow()
		varSum += snap.Compensation() * snap.Compensation()
	}
	// Preserve the source's merged compensation (root sum of squares
	// over the captured per-shard terms).
	s.comp = math.Sqrt(varSum)
	ph := hierarchy.PrefixHasher(defaultSeed)
	s.hash = func(p hierarchy.Packet) uint64 { return ph(hier.Fully(p)) }
	s.initPools()
	return s, nil
}
