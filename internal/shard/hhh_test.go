package shard

import (
	"math"
	"sync"
	"testing"

	"memento/internal/core"
	"memento/internal/exact"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// pacedPacketHash paces shards by source residue, the packet analog
// of pacedHash.
func pacedPacketHash(p hierarchy.Packet) uint64 { return uint64(p.Src%4) << 62 }

func TestHHHConfigValidation(t *testing.T) {
	cases := []HHHConfig{
		{Core: core.HHHConfig{Window: 1000, Counters: 64}}, // no hierarchy
		{Core: core.HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 2, Counters: 64}, Shards: 4},
		{Core: core.HHHConfig{Hierarchy: hierarchy.OneD{}, Window: 1000}, Shards: 2}, // no budget
	}
	for i, cfg := range cases {
		if _, err := NewHHH(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

// TestHHHConcurrent is the -race assertion for the sharded H-Memento:
// concurrent batched writers, Observe calls and Query/Output readers.
func TestHHHConcurrent(t *testing.T) {
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 13, Counters: 64 * 5, V: 20, Seed: 2,
		},
		Shards: 4,
	})
	const writers = 4
	const perWriter = 1 << 13
	var writerWg, readerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(id int) {
			defer writerWg.Done()
			src := rng.New(uint64(id + 10))
			b := s.NewBatcher(64)
			for i := 0; i < perWriter; i++ {
				p := hierarchy.Packet{Src: uint32(src.Intn(256))}
				if i%5 == 0 {
					s.Observe(p)
				} else {
					b.Add(p)
				}
			}
			b.Flush()
		}(w)
	}
	stop := make(chan struct{})
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		probe := hierarchy.OneD{}.Prefix(hierarchy.Packet{Src: 1}, 0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Query(probe)
			_, _ = s.QueryBounds(probe)
			_ = s.Output(0.05)
		}
	}()
	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	if got := s.Updates(); got != writers*perWriter {
		t.Fatalf("Updates() = %d, want %d", got, writers*perWriter)
	}
}

// TestHHHMergedAccuracy paces four shards exactly and checks that
// summed prefix estimates track the exact ground truth: one-sided
// from below (no false negatives) and within N× the per-shard
// overshoot from above. V=H (the τ=1 analog) isolates the merge from
// sampling noise.
func TestHHHMergedAccuracy(t *testing.T) {
	hier := hierarchy.OneD{}
	h := hier.H()
	const window = 1 << 12
	const counters = 512 * 5
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hier, Window: window, Counters: counters, V: h, Seed: 5,
		},
		Shards: 4,
		Hash:   pacedPacketHash,
	})
	oracle := exact.MustNewSlidingWindow[hierarchy.Prefix](s.EffectiveWindow())
	src := rng.New(404)
	const n = 1 << 15
	batch := make([]hierarchy.Packet, 0, 256)
	for i := 0; i < n; i++ {
		hot := src.Intn(4) > 0
		var srcAddr uint32
		if hot {
			srcAddr = uint32(src.Intn(8)*4 + i%4) // 32 heavy flows, paced
		} else {
			srcAddr = uint32(src.Intn(1<<16)*4 + i%4)
		}
		p := hierarchy.Packet{Src: srcAddr}
		batch = append(batch, p)
		// Oracle counts the fully-specified prefix only; estimates for
		// it must dominate (per-level prefixes share the same bound).
		oracle.Add(hier.Prefix(p, 0))
		if len(batch) == cap(batch) {
			s.UpdateBatch(batch)
			batch = batch[:0]
		}
	}
	s.UpdateBatch(batch)

	w := float64(s.EffectiveWindow())
	// Each of the 4 shards contributes its own constant overshoot
	// (≈ (2+1)·block) plus the εa band; sampling at V=H adds H·…
	// estimation variance. 4 shards × per-shard slack, generously.
	perShard := 6 * (w / 4) * float64(h) / (float64(counters) / 4)
	band := 4*perShard + 6*math.Sqrt(w*float64(h))
	for a := 0; a < 32; a++ {
		p := hier.Prefix(hierarchy.Packet{Src: uint32(a)}, 0)
		est := s.Query(p)
		truth := float64(oracle.Count(p))
		if est-truth > band || truth-est > band {
			t.Errorf("Query(src=%d) = %v, exact %v, band %v", a, est, truth, band)
		}
	}
}

// TestHHHOutputFindsHeavyPrefix loads one dominant flow and checks
// the merged Output reports it (or an ancestor) at a threshold it
// clearly exceeds.
func TestHHHOutputFindsHeavyPrefix(t *testing.T) {
	hier := hierarchy.OneD{}
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hier, Window: 1 << 12, Counters: 512 * 5, V: hier.H(), Seed: 9,
		},
		Shards: 4,
	})
	src := rng.New(77)
	const heavy = uint32(0x0a000001)
	batch := make([]hierarchy.Packet, 0, 128)
	for i := 0; i < 1<<14; i++ {
		p := hierarchy.Packet{Src: uint32(src.Intn(1 << 20))}
		if src.Intn(3) > 0 {
			p = hierarchy.Packet{Src: heavy}
		}
		batch = append(batch, p)
		if len(batch) == cap(batch) {
			s.UpdateBatch(batch)
			batch = batch[:0]
		}
	}
	s.UpdateBatch(batch)
	out := s.Output(0.2)
	if len(out) == 0 {
		t.Fatal("Output returned nothing for a stream dominated by one flow")
	}
	full := hier.Prefix(hierarchy.Packet{Src: heavy}, 0)
	found := false
	for _, e := range out {
		if e.Prefix.Generalizes(full) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no output prefix covers the dominant flow; got %v", out)
	}
}
