package shard

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"testing"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// fixedHash is a deterministic multiplicative key hash shared by the
// differential tests so two instances route identically.
func fixedHash(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 }

// pipelineKeys is a skewed stream with duplicates: a few hundred
// distinct keys so exact per-key accounting fits in the counter
// budget.
func pipelineKeys(n int, seed uint64) []uint64 {
	src := rng.New(seed)
	keys := make([]uint64, n)
	for i := range keys {
		k := uint64(src.Intn(64))
		if src.Intn(4) == 0 {
			k = 64 + uint64(src.Intn(448))
		}
		keys[i] = k
	}
	return keys
}

// TestPipelineDifferentialVsBatcher pins the core equivalence: a
// single producer through the ring pipeline answers exactly like a
// single goroutine through the Batcher path, because the per-shard
// substreams are identical and the core's batched sampler is
// independent of how a substream is segmented into UpdateBatch calls.
func TestPipelineDifferentialVsBatcher(t *testing.T) {
	cfg := SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 14, Counters: 512, Tau: 1.0 / 8, Seed: 42},
		Shards: 4,
		Hash:   fixedHash,
	}
	keys := pipelineKeys(1<<16, 9)

	viaBatcher := MustNew(cfg)
	b := viaBatcher.NewBatcher(128)
	for _, k := range keys {
		b.Add(k)
	}
	b.Flush()

	viaRing := MustNew(cfg)
	pl, err := viaRing.StartPipeline(PipelineConfig{Producers: 1, Batch: 128})
	if err != nil {
		t.Fatal(err)
	}
	p := pl.Producer(0)
	for _, k := range keys {
		p.Add(k)
	}
	p.Flush()
	pl.Drain()
	pl.Close()

	if gb, gr := viaBatcher.Updates(), viaRing.Updates(); gb != gr {
		t.Fatalf("updates diverge: batcher %d ring %d", gb, gr)
	}
	for k := uint64(0); k < 512; k++ {
		if qb, qr := viaBatcher.Query(k), viaRing.Query(k); qb != qr {
			t.Fatalf("key %d: batcher %v ring %v", k, qb, qr)
		}
	}
	var hb, hr []core.Item[uint64]
	hb = viaBatcher.HeavyHitters(0.01, hb)
	hr = viaRing.HeavyHitters(0.01, hr)
	if len(hb) != len(hr) {
		t.Fatalf("heavy hitter counts diverge: %d vs %d", len(hb), len(hr))
	}
}

// TestPipelineExactlyOnce is the conservation property: every pushed
// key is counted exactly once across Flush/Drain/Close. With τ=1 and
// a window larger than the stream, every packet is a Full update and
// no counter is ever evicted, so Query(k) = exact(k) + 2·blockCounts
// — Algorithm 1's upper-bound estimate carries a constant additive
// offset but tracks the true count one-for-one. The test calibrates
// that offset with a sentinel key pushed exactly once, then demands
// every key match its exact oracle through the same offset: any
// dropped or duplicated ring item shifts some key by at least 1.
func TestPipelineExactlyOnce(t *testing.T) {
	const producers = 4
	const perProducer = 1 << 14
	s := MustNew(SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 20, Counters: 4096, Tau: 1, Seed: 7},
		Shards: 4,
		Hash:   fixedHash,
	})
	pl, err := s.StartPipeline(PipelineConfig{Producers: producers, Batch: 64, RingSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	exactCounts := make([]map[uint64]float64, producers)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts := make(map[uint64]float64)
			p := pl.Producer(w)
			keys := pipelineKeys(perProducer, uint64(100+w))
			for _, k := range keys {
				p.Add(k)
				counts[k]++
			}
			p.Flush()
			exactCounts[w] = counts
		}(w)
	}
	wg.Wait()
	pl.Drain()

	exact := make(map[uint64]float64)
	for _, m := range exactCounts {
		for k, c := range m {
			exact[k] += c
		}
	}
	if got, want := s.Updates(), uint64(producers*perProducer); got != want {
		t.Fatalf("updates = %d, want %d (lost or duplicated packets)", got, want)
	}
	// Calibrate the constant estimator offset with a key seen exactly
	// once (workload keys are all < 512, so the sentinel is fresh).
	const sentinel = uint64(1) << 40
	p0 := pl.Producer(0)
	p0.Add(sentinel)
	p0.Flush()
	pl.Drain()
	offset := s.Query(sentinel) - 1
	if offset < 0 {
		t.Fatalf("sentinel estimate %v below its exact count", s.Query(sentinel))
	}
	for k, want := range exact {
		if got := s.Query(k); got != want+offset {
			t.Fatalf("key %d: estimate %v, want exact %v + offset %v", k, got, want, offset)
		}
	}
	st := pl.Stats()
	if st.Published != st.Applied || st.Published != uint64(producers*perProducer)+1 {
		t.Fatalf("ledger: published %d applied %d, want both %d",
			st.Published, st.Applied, producers*perProducer+1)
	}
	pl.Close()
	// Close after Drain must not change anything.
	if got := s.Updates(); got != uint64(producers*perProducer)+1 {
		t.Fatalf("updates after Close = %d", got)
	}
}

// TestPipelineDrainMidStream pauses producers mid-stream, drains, and
// checks the quiesced view is exact before resuming.
func TestPipelineDrainMidStream(t *testing.T) {
	s := MustNew(SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 20, Counters: 2048, Tau: 1, Seed: 3},
		Shards: 2,
		Hash:   fixedHash,
	})
	pl, err := s.StartPipeline(PipelineConfig{Producers: 1, Batch: 32, RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	p := pl.Producer(0)
	keys := pipelineKeys(1<<12, 5)
	half := len(keys) / 2
	for _, k := range keys[:half] {
		p.Add(k)
	}
	p.Flush()
	pl.Drain()
	if got := s.Updates(); got != uint64(half) {
		t.Fatalf("mid-stream drain: updates = %d, want %d", got, half)
	}
	for _, k := range keys[half:] {
		p.Add(k)
	}
	p.Flush()
	pl.Drain()
	pl.Close()
	if got := s.Updates(); got != uint64(len(keys)) {
		t.Fatalf("final: updates = %d, want %d", got, len(keys))
	}
}

// TestPipelineHammer runs concurrent producers against owner
// goroutines while the read and persistence planes fire continuously:
// point queries, HeavyHitters, and Checkpoint. Under -race this is
// the pipeline's concurrency-safety assertion.
func TestPipelineHammer(t *testing.T) {
	const producers = 3
	s := MustNew(SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 14, Counters: 512, Tau: 1.0 / 8, Seed: 11},
		Shards: 4,
		Hash:   fixedHash,
	})
	pl, err := s.StartPipeline(PipelineConfig{Producers: producers, Batch: 64, RingSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const perProducer = 1 << 15
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := pl.Producer(w)
			keys := pipelineKeys(perProducer, uint64(200+w))
			for _, k := range keys {
				p.Add(k)
			}
			p.Flush()
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		var hh []core.Item[uint64]
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Query(3)
			hh = s.HeavyHitters(0.05, hh[:0])
			_, _ = s.QueryBounds(17)
		}
	}()
	go func() {
		defer readers.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf.Reset()
			if err := s.Checkpoint(&buf, codec.Uint64Keys{}); err != nil {
				t.Errorf("checkpoint under ingest: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	pl.Drain()
	close(stop)
	readers.Wait()
	pl.Close()
	if got, want := s.Updates(), uint64(producers*perProducer); got != want {
		t.Fatalf("updates = %d, want %d", got, want)
	}
}

// TestHHHPipelineHammer is the packet-side hammer: producers feed a
// sharded H-Memento through rings while Output, WriteChain (delta
// capture), and Checkpoint run in flight.
func TestHHHPipelineHammer(t *testing.T) {
	const producers = 2
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 14, Counters: 512 * 5, V: 5, Seed: 13,
		},
		Shards: 4,
	})
	if err := s.EnableDeltaCheckpoints(77); err != nil {
		t.Fatal(err)
	}
	pl, err := s.StartPipeline(PipelineConfig{Producers: producers, Batch: 64, RingSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const perProducer = 1 << 15
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(300 + w))
			p := pl.Producer(w)
			for i := 0; i < perProducer; i++ {
				a := uint32(src.Intn(1 << 16))
				if src.Intn(3) > 0 {
					a = uint32(src.Intn(64))
				}
				p.Add(hierarchy.Packet{Src: a})
			}
			p.Flush()
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		var out []core.HeavyPrefix
		for {
			select {
			case <-stop:
				return
			default:
			}
			out = s.OutputTo(0.05, out[:0])
			_ = s.Query(hierarchy.OneD{}.Fully(hierarchy.Packet{Src: 1}))
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// WriteChain holds the single-caller contract: this is the
			// only goroutine writing chains.
			if _, err := s.WriteChain(io.Discard, false); err != nil {
				t.Errorf("WriteChain under ingest: %v", err)
				return
			}
			var buf bytes.Buffer
			if err := s.Checkpoint(&buf); err != nil {
				t.Errorf("Checkpoint under ingest: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	pl.Drain()
	close(stop)
	readers.Wait()
	pl.Close()
	if got, want := s.Updates(), uint64(producers*perProducer); got != want {
		t.Fatalf("updates = %d, want %d", got, want)
	}
}

// TestSharedProducerConservation drives one pipeline from many
// goroutines through the mutex-wrapped SharedProducer (the
// lb.BatchSink adapter) and checks nothing is lost or duplicated.
func TestSharedProducerConservation(t *testing.T) {
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 16, Counters: 512 * 5, V: 5, Seed: 17,
		},
		Shards: 2,
	})
	pl, err := s.StartPipeline(PipelineConfig{Producers: 1, Batch: 64, RingSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	sp := pl.NewSharedProducer(0)
	const callers = 4
	const batches = 200
	const batchLen = 50
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := rng.New(uint64(400 + c))
			buf := make([]hierarchy.Packet, batchLen)
			for i := 0; i < batches; i++ {
				for j := range buf {
					buf[j] = hierarchy.Packet{Src: uint32(src.Intn(1 << 12))}
				}
				sp.UpdateBatch(buf)
			}
		}(c)
	}
	wg.Wait()
	pl.Drain()
	pl.Close()
	if got, want := s.Updates(), uint64(callers*batches*batchLen); got != want {
		t.Fatalf("updates = %d, want %d", got, want)
	}
}

// TestPipelineCloseIdempotent pins that Close twice and Drain after
// Close are safe.
func TestPipelineCloseIdempotent(t *testing.T) {
	s := MustNew(SketchConfig[uint64]{
		Core: core.Config{Window: 1 << 12, Counters: 64, Seed: 1}, Shards: 2, Hash: fixedHash,
	})
	pl, err := s.StartPipeline(PipelineConfig{Producers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := pl.Producer(0)
	for i := uint64(0); i < 1000; i++ {
		p.Add(i)
	}
	p.Flush()
	pl.Close()
	pl.Close()
	pl.Drain()
	if got := s.Updates(); got != 1000 {
		t.Fatalf("updates = %d", got)
	}
}

// TestPipelineBackpressure forces producer parks with a tiny ring and
// owners that cannot keep up on a starved GOMAXPROCS, then verifies
// conservation anyway.
func TestPipelineBackpressure(t *testing.T) {
	s := MustNew(SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 20, Counters: 1024, Tau: 1, Seed: 19},
		Shards: 1, // all traffic through one ring: maximal pressure
		Hash:   fixedHash,
	})
	pl, err := s.StartPipeline(PipelineConfig{Producers: 1, Batch: 32, RingSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	p := pl.Producer(0)
	const total = 1 << 16
	for i := 0; i < total; i++ {
		p.Add(uint64(i % 97))
	}
	p.Flush()
	pl.Drain()
	pl.Close()
	if got := s.Updates(); got != total {
		t.Fatalf("updates = %d, want %d", got, total)
	}
	runtime.KeepAlive(pl.Stats())
}
