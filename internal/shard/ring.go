// SPSC ring: the bounded single-producer/single-consumer queue under
// the multicore ingest pipeline (DESIGN.md §9). One ring connects one
// producer goroutine to one shard-owner goroutine, so neither end
// ever takes a lock: the producer owns tail, the owner owns head, and
// a batch of items moves with two slab copies and one atomic store on
// each side. Head and tail live on their own cache lines so the two
// ends never false-share, and both ends publish in batches (claim
// space once per staged batch, not per item), keeping the per-packet
// hot path free of atomics entirely.
//
// Backpressure is spin-then-park on both ends. A producer finding the
// ring full re-polls head a bounded number of times (the owner drains
// whole batches, so space appears in bursts), yielding between polls,
// and then parks on the ring's wake channel; the owner wakes it after
// advancing head. The owner parks symmetrically when all of its rings
// stay empty (see owner.run in pipeline.go). The flag-then-recheck
// order on both sides makes the park race-free: a parker always
// re-examines the condition after raising its flag, and a waker
// always checks the flag after moving the cursor, so a wake-up can be
// spurious but never lost.

package shard

import (
	"runtime"
	"sync/atomic"
)

// DefaultRingSize is the per-ring capacity in items when
// PipelineConfig.RingSize is zero: deep enough to absorb a few
// DefaultBatchSize publishes from a producer while the owner is busy
// applying another ring, small enough that a 4×8 producer×shard
// fabric of 16-byte entries stays around a megabyte.
const DefaultRingSize = 4096

// Spin budgets before parking. The producer's budget is small: on a
// loaded machine the owner holds a shard lock for whole-batch applies
// and frees ring space in large steps, so a short poll either
// succeeds immediately or not for a while. Yields interleave so a
// single-core runtime (GOMAXPROCS=1) hands the CPU to the other end
// instead of burning its own timeslice.
const (
	pushSpins      = 128 // head re-polls before a producer parks
	spinsPerYield  = 16  // Gosched every this many empty polls
	ownerIdlePasses = 64 // empty sweeps before an owner parks
)

// spsc is a bounded single-producer/single-consumer ring of T. The
// capacity is a power of two; cursors grow monotonically and are
// reduced by mask, so head==tail means empty and tail-head==len(buf)
// means full, with no reserved slot.
type spsc[T any] struct {
	buf  []T
	mask uint64

	_    [64]byte      // keep the consumer line off the header line
	head atomic.Uint64 // next slot the consumer reads; owner-written
	_    [56]byte
	tail atomic.Uint64 // next slot the producer writes; producer-written
	_    [56]byte

	// prodParked is raised by the producer before it blocks on wake;
	// the owner clears it with a CAS after advancing head, so exactly
	// one side sends on wake per park.
	prodParked atomic.Uint32
	wake       chan struct{}
}

// newSPSC returns a ring with capacity rounded up to a power of two.
func newSPSC[T any](capacity int) *spsc[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &spsc[T]{
		buf:  make([]T, n),
		mask: uint64(n - 1),
		wake: make(chan struct{}, 1),
	}
}

// size returns the number of buffered items (producer- or
// observer-side estimate; exact for either end's own cursor).
func (r *spsc[T]) size() uint64 { return r.tail.Load() - r.head.Load() }

// push copies items into the ring, blocking (spin, then park) while
// there is not enough free space. Items larger than the ring are
// published in capacity-sized chunks. Returns the number of times the
// producer parked, for the pipeline's backpressure ledger.
//memento:noalloc
func (r *spsc[T]) push(items []T) (parks uint64) {
	for len(items) > 0 {
		n := len(items)
		if n > len(r.buf) {
			n = len(r.buf)
		}
		parks += r.waitFree(uint64(n))
		t := r.tail.Load() // producer-owned; load is for the reduced index
		idx := int(t & r.mask)
		first := copy(r.buf[idx:], items[:n])
		copy(r.buf, items[first:n])
		r.tail.Store(t + uint64(n)) // publish: release-pairs with owner's load
		items = items[n:]
	}
	return parks
}

// waitFree blocks until at least need slots are free, spinning with
// interleaved yields and then parking on wake. Returns park count.
//memento:noalloc
func (r *spsc[T]) waitFree(need uint64) (parks uint64) {
	free := uint64(len(r.buf)) - (r.tail.Load() - r.head.Load())
	if free >= need {
		return 0
	}
	for spin := 0; ; spin++ {
		if spin >= pushSpins {
			// Park: raise the flag, then re-check — the owner may have
			// advanced head between our last poll and the flag store,
			// and it only consults the flag after moving head.
			r.prodParked.Store(1)
			if uint64(len(r.buf))-(r.tail.Load()-r.head.Load()) >= need {
				r.prodParked.Store(0)
				return parks
			}
			parks++
			<-r.wake
			spin = 0
		} else if spin%spinsPerYield == spinsPerYield-1 {
			runtime.Gosched()
		}
		if uint64(len(r.buf))-(r.tail.Load()-r.head.Load()) >= need {
			r.prodParked.Store(0)
			return parks
		}
	}
}

// consume copies up to len(dst) buffered items into dst, advances
// head, and wakes the producer if it parked on a full ring. Owner
// side only. Returns the number of items moved.
//memento:noalloc
func (r *spsc[T]) consume(dst []T) int {
	h := r.head.Load() // owner-owned
	avail := r.tail.Load() - h
	if avail == 0 {
		return 0
	}
	n := int(avail)
	if n > len(dst) {
		n = len(dst)
	}
	idx := int(h & r.mask)
	first := copy(dst[:n], r.buf[idx:])
	copy(dst[first:n], r.buf)
	r.head.Store(h + uint64(n))
	r.wakeProducer()
	return n
}

// wakeProducer delivers one pending park wake-up, if any. The CAS
// makes the producer's flag-then-recheck protocol lossless: only the
// side that wins the CAS sends, and the channel holds one token.
//memento:noalloc
func (r *spsc[T]) wakeProducer() {
	if r.prodParked.Load() == 1 && r.prodParked.CompareAndSwap(1, 0) {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}
