// Tests for sharded checkpoint/restore: answer-identical rehydration
// (the differential contract), the one-lock-pass capture discipline,
// config-mismatch rejection, and behavior under concurrent ingestion.

package shard

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/hhhset"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// hammerCfg is the configuration hammerHHH builds, restated so restore
// targets can be constructed identically.
func hammerCfg(seed uint64) HHHConfig {
	return HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 13, Counters: 128 * 5, V: 10, Seed: seed,
		},
		Shards: 4,
	}
}

// sameHHHAnswers asserts two sharded instances agree on point
// queries, bounds, and the full HHH set across thresholds.
func sameHHHAnswers(t *testing.T, want, got *HHH) {
	t.Helper()
	probes := []hierarchy.Prefix{hierarchy.OneD{}.Root()}
	for a := uint32(0); a < 64; a++ {
		probes = append(probes,
			hierarchy.Prefix{Src: a, SrcLen: 4},
			hierarchy.Prefix{Src: hierarchy.MaskBytes(a, 2), SrcLen: 2})
	}
	for _, p := range probes {
		if w, g := want.Query(p), got.Query(p); w != g {
			t.Fatalf("Query(%v) = %g, want %g", p, g, w)
		}
		wu, wl := want.QueryBounds(p)
		gu, gl := got.QueryBounds(p)
		if wu != gu || wl != gl {
			t.Fatalf("QueryBounds(%v) = (%g,%g), want (%g,%g)", p, gu, gl, wu, wl)
		}
	}
	for _, theta := range []float64{0.002, 0.01, 0.05, 0.2} {
		w := want.Output(theta)
		g := got.Output(theta)
		if len(w) != len(g) {
			t.Fatalf("theta=%v: Output has %d entries, want %d\n%v\n%v", theta, len(g), len(w), g, w)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("theta=%v: Output[%d] = %+v, want %+v", theta, i, g[i], w[i])
			}
		}
	}
	if len(want.Output(0.002)) == 0 {
		t.Fatal("test vacuous: no entries at the loosest threshold")
	}
}

// TestHHHCheckpointRestoreDifferential is the acceptance contract: a
// restored 4-shard instance answers Query, QueryBounds and Output
// exactly as the original did at capture time.
func TestHHHCheckpointRestoreDifferential(t *testing.T) {
	s := hammerHHH(t, 121)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored := MustNewHHH(hammerCfg(999)) // different seed: RNG is not state
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	sameHHHAnswers(t, s, restored)

	// RestoreHHH constructs an equivalent instance from the stream
	// alone (config derived from the per-shard snapshots).
	fromFile, err := RestoreHHH(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Shards() != s.Shards() || fromFile.EffectiveWindow() != s.EffectiveWindow() {
		t.Fatalf("RestoreHHH shape: %d shards window %d, want %d/%d",
			fromFile.Shards(), fromFile.EffectiveWindow(), s.Shards(), s.EffectiveWindow())
	}
	sameHHHAnswers(t, s, fromFile)
}

// TestHHHCheckpointOneLockPassPerShard extends the read-plane lock
// contract to Checkpoint.
func TestHHHCheckpointOneLockPassPerShard(t *testing.T) {
	s := hammerHHH(t, 122)
	probe := new(atomic.Uint64)
	s.readLocks = probe
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := probe.Load(), uint64(s.Shards()); got != want {
		t.Fatalf("Checkpoint acquired %d shard locks, want exactly %d", got, want)
	}
}

func TestHHHRestoreRejectsMismatch(t *testing.T) {
	s := hammerHHH(t, 123)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	wrongShards := MustNewHHH(HHHConfig{Core: hammerCfg(1).Core, Shards: 2})
	if err := wrongShards.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, codec.ErrConfigMismatch) {
		t.Fatalf("shard-count mismatch: %v", err)
	}

	cfg := hammerCfg(1)
	cfg.Core.Window = 1 << 12
	wrongWindow := MustNewHHH(cfg)
	if err := wrongWindow.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, codec.ErrConfigMismatch) {
		t.Fatalf("window mismatch: %v", err)
	}

	// Truncations fail with a typed error, never a panic, and leave
	// the target untouched.
	raw := buf.Bytes()
	for _, cut := range []int{0, 10, envelopeSize - 1, envelopeSize + 2, len(raw) / 2, len(raw) - 1} {
		target := MustNewHHH(hammerCfg(2))
		err := target.Restore(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if target.Updates() != 0 {
			t.Fatalf("truncation at %d mutated the target", cut)
		}
	}
}

func TestSketchCheckpointRestore(t *testing.T) {
	cfg := SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 13, Counters: 256, Tau: 1.0 / 8, Seed: 131},
		Shards: 4,
		Hash:   func(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 },
	}
	s := MustNew(cfg)
	src := rng.New(137)
	b := s.NewBatcher(128)
	for i := 0; i < 1<<15; i++ {
		k := uint64(src.Intn(1 << 18))
		if src.Intn(3) > 0 {
			k = uint64(src.Intn(24))
		}
		b.Add(k)
	}
	b.Flush()

	var buf bytes.Buffer
	if err := s.Checkpoint(&buf, codec.Uint64Keys{}); err != nil {
		t.Fatal(err)
	}
	cfg.Core.Seed = 777
	restored := MustNew(cfg)
	if err := restored.Restore(bytes.NewReader(buf.Bytes()), codec.Uint64Keys{}); err != nil {
		t.Fatal(err)
	}

	if s.Updates() != restored.Updates() {
		t.Fatalf("Updates %d, want %d", restored.Updates(), s.Updates())
	}
	// The global ingestion counter feeds the skew correction; point
	// queries only match if it survived the round trip.
	for k := uint64(0); k < 256; k++ {
		if w, g := s.Query(k), restored.Query(k); w != g {
			t.Fatalf("Query(%d) = %g, want %g", k, g, w)
		}
		wu, wl := s.QueryBounds(k)
		gu, gl := restored.QueryBounds(k)
		if wu != gu || wl != gl {
			t.Fatalf("QueryBounds(%d) = (%g,%g), want (%g,%g)", k, gu, gl, wu, wl)
		}
	}
	for _, theta := range []float64{0.005, 0.02, 0.1} {
		w := s.HeavyHitters(theta, nil)
		g := restored.HeavyHitters(theta, nil)
		if len(w) != len(g) {
			t.Fatalf("theta=%v: %d heavy hitters, want %d", theta, len(g), len(w))
		}
		wm := map[uint64]float64{}
		for _, it := range w {
			wm[it.Key] = it.Estimate
		}
		for _, it := range g {
			if wm[it.Key] != it.Estimate {
				t.Fatalf("theta=%v: key %d estimate %g, want %g", theta, it.Key, it.Estimate, wm[it.Key])
			}
		}
	}
	if len(s.HeavyHitters(0.005, nil)) == 0 {
		t.Fatal("test vacuous: no heavy hitters")
	}
}

// TestCheckpointUnderIngestion pins, under -race, that Checkpoint is
// an ordinary read-plane citizen: batched writers at full rate while
// checkpoints stream out, and every captured stream restores into a
// working instance.
func TestCheckpointUnderIngestion(t *testing.T) {
	s := MustNewHHH(hammerCfg(141))
	const writers = 4
	const perWriter = 1 << 14
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			src := rng.New(uint64(id + 60))
			pb := s.NewBatcher(128)
			for i := 0; i < perWriter; i++ {
				pb.Add(hierarchy.Packet{Src: uint32(src.Intn(512))})
			}
			pb.Flush()
		}(w)
	}
	var checkpoints int
	var ckWg sync.WaitGroup
	ckWg.Add(1)
	go func() {
		defer ckWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := s.Checkpoint(&buf); err != nil {
				t.Errorf("checkpoint under ingestion: %v", err)
				return
			}
			restored := MustNewHHH(hammerCfg(142))
			if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Errorf("restore under ingestion: %v", err)
				return
			}
			checkpoints++
		}
	}()
	wg.Wait()
	close(stop)
	ckWg.Wait()
	if checkpoints == 0 {
		t.Fatal("test vacuous: no checkpoint completed during ingestion")
	}
	if got := s.Updates(); got != writers*perWriter {
		t.Fatalf("Updates() = %d, want %d", got, writers*perWriter)
	}
}

// TestMergerMatchesShardOutput pins the Merger refactor: merging the
// captured per-shard snapshots by hand is the same computation
// OutputTo runs, and merging two disjoint halves of a stream
// approximates the union instance.
func TestMergerMatchesShardOutput(t *testing.T) {
	s := hammerHHH(t, 151)
	q := s.getQuery()
	s.snapshotAll(q)
	var m Merger
	manual := m.Output(s.hier, q.views, 0.01, nil)
	direct := s.Output(0.01)
	if len(manual) != len(direct) {
		t.Fatalf("manual merge has %d entries, OutputTo %d", len(manual), len(direct))
	}
	for i := range direct {
		if manual[i] != direct[i] {
			t.Fatalf("entry %d: manual %+v, direct %+v", i, manual[i], direct[i])
		}
	}
	if m.Window() != s.EffectiveWindow() {
		t.Fatalf("merged window %d, want %d", m.Window(), s.EffectiveWindow())
	}
	if len(direct) == 0 {
		t.Fatal("test vacuous: empty output")
	}
	s.putQuery(q)

	// Scratch trimming drops oversized buffers like the query pool's.
	m.cands = make([]hhhset.Candidate, 0, 2*maxRetainedQueryCap)
	m.Trim(maxRetainedQueryCap)
	if m.cands != nil {
		t.Fatal("Trim retained oversized candidate scratch")
	}
}
