// Shard-plane observability: one shared core.Instruments set across
// all shards (block-granular, so sharing never contends), plus
// scrape-time funcs over the existing ingest ledgers — the hot paths
// pay nothing for registration.

package shard

import (
	"memento/internal/core"
	"memento/internal/obs"
)

// Instrument attaches a shared core instrument set (block slides,
// frame flushes, evictions, overflow residency, window-slide trace
// events) to every shard and registers the sketch's ingest ledger in
// r. Nil-safe: with a nil registry the instruments are disabled.
// Call before ingest starts; returns the set for reuse.
func (s *Sketch[K]) Instrument(r *obs.Registry, t *obs.Trace, actor string) *core.Instruments {
	ins := core.NewInstruments(r, t, actor)
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.s.Instrument(ins)
		sl.mu.Unlock()
	}
	r.RegisterFunc("memento_shard_ingested_total",
		func() float64 { return float64(s.ingested.Load()) })
	r.RegisterFunc("memento_shard_count",
		func() float64 { return float64(len(s.shards)) })
	return ins
}

// Instrument is the H-Memento analog of Sketch.Instrument. It also
// exports the query-plane SLO histogram, named by the hierarchy's
// dimensionality (memento_shard_query_1d_ns / memento_shard_query_2d_ns)
// so 1D scans and 2D glb-fallback scans stay separately observable.
func (s *HHH) Instrument(r *obs.Registry, t *obs.Trace, actor string) *core.Instruments {
	ins := core.NewInstruments(r, t, actor)
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.hh.Instrument(ins)
		sl.mu.Unlock()
	}
	r.RegisterFunc("memento_shard_updates_total",
		func() float64 { return float64(s.Updates()) })
	r.RegisterFunc("memento_shard_count",
		func() float64 { return float64(len(s.shards)) })
	queryName := "memento_shard_query_1d_ns"
	if s.hier.Dims() == 2 {
		queryName = "memento_shard_query_2d_ns"
	}
	r.RegisterHistogram(queryName, &s.queryHist)
	return ins
}
