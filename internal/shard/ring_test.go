package shard

import (
	"runtime"
	"sync"
	"testing"

	"memento/internal/rng"
)

// TestSPSCBasic pins push/consume semantics: FIFO order, wraparound,
// chunked publishes larger than the ring.
func TestSPSCBasic(t *testing.T) {
	r := newSPSC[int](8)
	if len(r.buf) != 8 {
		t.Fatalf("capacity = %d, want 8", len(r.buf))
	}
	if got := newSPSC[int](5); len(got.buf) != 8 {
		t.Fatalf("capacity not rounded to power of two: %d", len(got.buf))
	}
	in := []int{1, 2, 3, 4, 5}
	r.push(in)
	if r.size() != 5 {
		t.Fatalf("size = %d, want 5", r.size())
	}
	dst := make([]int, 8)
	if n := r.consume(dst); n != 5 {
		t.Fatalf("consume = %d, want 5", n)
	}
	for i, v := range in {
		if dst[i] != v {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], v)
		}
	}
	if n := r.consume(dst); n != 0 {
		t.Fatalf("consume on empty = %d", n)
	}
}

// TestSPSCWraparound crosses the index mask boundary many times with
// odd batch sizes and verifies the sequence survives intact.
func TestSPSCWraparound(t *testing.T) {
	r := newSPSC[uint64](16)
	var wg sync.WaitGroup
	const total = 100000
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]uint64, 7)
		next := uint64(0)
		for next < total {
			n := len(buf)
			if rem := total - next; rem < uint64(n) {
				n = int(rem)
			}
			for i := 0; i < n; i++ {
				buf[i] = next + uint64(i)
			}
			r.push(buf[:n])
			next += uint64(n)
		}
	}()
	dst := make([]uint64, 16)
	want := uint64(0)
	for want < total {
		n := r.consume(dst)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < n; i++ {
			if dst[i] != want {
				t.Fatalf("out of order: got %d, want %d", dst[i], want)
			}
			want++
		}
	}
	wg.Wait()
	if r.size() != 0 {
		t.Fatalf("ring not empty after drain: %d", r.size())
	}
}

// TestSPSCOversizedPush publishes batches bigger than the ring
// capacity; push must chunk, and a concurrent consumer must see every
// item exactly once.
func TestSPSCOversizedPush(t *testing.T) {
	r := newSPSC[int](8)
	big := make([]int, 100)
	for i := range big {
		big[i] = i
	}
	done := make(chan struct{})
	got := make([]int, 0, len(big))
	go func() {
		defer close(done)
		dst := make([]int, 8)
		for len(got) < len(big) {
			n := r.consume(dst)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			got = append(got, dst[:n]...)
		}
	}()
	r.push(big)
	<-done
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestSPSCParkWake forces the full-ring park path: a tiny ring, a
// slow consumer, and enough volume that the producer must park and be
// woken repeatedly. Run under -race this checks the flag-then-recheck
// protocol.
func TestSPSCParkWake(t *testing.T) {
	r := newSPSC[uint64](4)
	const total = 50000
	var parks uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		src := rng.New(1)
		dst := make([]uint64, 4)
		seen := uint64(0)
		for seen < total {
			if src.Intn(8) == 0 {
				runtime.Gosched() // stall to fill the ring
			}
			n := r.consume(dst)
			seen += uint64(n)
		}
	}()
	buf := []uint64{0, 1, 2}
	sent := uint64(0)
	for sent < total {
		n := uint64(len(buf))
		if rem := total - sent; rem < n {
			n = rem
		}
		parks += r.push(buf[:n])
		sent += n
	}
	<-done
	// parks is usually > 0 here, but a fast consumer can legitimately
	// keep the ring from ever filling; only the exactly-once count is
	// a hard invariant (checked by the consumer loop terminating).
	_ = parks
}
