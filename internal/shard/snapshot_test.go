// Tests for the snapshot query plane: lock discipline, equivalence
// with the pre-snapshot lock-per-Bounds implementation, and behavior
// under concurrent ingestion.

package shard

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"memento/internal/core"
	"memento/internal/hhhset"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// hammerHHH builds a 4-shard H-Memento loaded with a skewed stream.
func hammerHHH(t testing.TB, seed uint64) *HHH {
	t.Helper()
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 13, Counters: 128 * 5, V: 10, Seed: seed,
		},
		Shards: 4,
	})
	src := rng.New(seed + 100)
	b := s.NewBatcher(128)
	for i := 0; i < 1<<15; i++ {
		a := uint32(src.Intn(1 << 18))
		if src.Intn(3) > 0 {
			a = uint32(src.Intn(24))
		}
		b.Add(hierarchy.Packet{Src: a})
	}
	b.Flush()
	return s
}

// TestOutputOneLockPassPerShard pins the read-plane lock contract:
// Output, Query and QueryBounds each acquire every shard lock exactly
// once per call, however many candidates and levels the HHH-set
// computation walks. Before the snapshot plane, Output took
// O(candidates × levels × shards) acquisitions.
func TestOutputOneLockPassPerShard(t *testing.T) {
	s := hammerHHH(t, 21)
	probe := new(atomic.Uint64)
	s.readLocks = probe

	out := s.Output(0.01)
	if len(out) == 0 {
		t.Fatal("test vacuous: Output reported nothing")
	}
	if got, want := probe.Load(), uint64(s.Shards()); got != want {
		t.Fatalf("Output acquired %d shard locks, want exactly %d (one per shard)", got, want)
	}

	probe.Store(0)
	_ = s.Query(hierarchy.Prefix{Src: 1, SrcLen: 4})
	if got, want := probe.Load(), uint64(s.Shards()); got != want {
		t.Fatalf("Query acquired %d shard locks, want %d", got, want)
	}

	probe.Store(0)
	_, _ = s.QueryBounds(hierarchy.Prefix{SrcLen: 0})
	if got, want := probe.Load(), uint64(s.Shards()); got != want {
		t.Fatalf("QueryBounds acquired %d shard locks, want %d", got, want)
	}
}

// lockPerBounds reproduces the pre-snapshot read plane for the
// differential test: every Bounds call locks all N shards and
// re-derives each shard's skew correction in place.
type lockPerBounds struct {
	s     *HHH
	total uint64
}

func (e *lockPerBounds) Bounds(p hierarchy.Prefix) (upper, lower float64) {
	for i := range e.s.shards {
		sl := &e.s.shards[i]
		sl.mu.Lock()
		u, l := sl.hh.QueryBounds(p)
		scale := scaleFrom(sl.hh.Sketch().Updates(), sl.hh.EffectiveWindow(), e.total, e.s.window)
		sl.mu.Unlock()
		upper += u * scale
		lower += l * scale
	}
	return upper, lower
}

// legacyScratch recycles the legacy implementation's working state
// across calls, mirroring the outPool the pre-snapshot Output used —
// without it BenchmarkOutputLockPerBounds would pay per-call
// allocations the real pre-change code never paid, overstating the
// snapshot plane's speedup.
type legacyScratch struct {
	cands   []hierarchy.Prefix
	sc      hhhset.Scratch
	entries []hhhset.Entry
}

// legacyOutput is the pre-snapshot Output: candidates gathered under
// per-shard locks, then ComputeInto against the lock-per-Bounds
// merged estimator.
func legacyOutput(s *HHH, theta float64, ls *legacyScratch, dst []core.HeavyPrefix) []core.HeavyPrefix {
	ls.cands = ls.cands[:0]
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		ls.cands = sl.hh.Candidates(ls.cands)
		sl.mu.Unlock()
	}
	est := &lockPerBounds{s: s, total: s.Updates()}
	threshold := theta * float64(s.window)
	ls.entries = hhhset.ComputeInto(s.hier, est, ls.cands, threshold, s.comp, &ls.sc, ls.entries[:0])
	for _, e := range ls.entries {
		dst = append(dst, core.HeavyPrefix(e))
	}
	return dst
}

// TestOutputMatchesLockPerBoundsReference is the quiescent
// differential assertion: the snapshot-backed Output must be
// element-for-element equal to the pre-change lock-per-Bounds
// implementation, across thresholds — the same prefixes in the same
// order, with estimates matching up to float summation order (the
// merged table accumulates per-shard contributions in a different
// association than the per-call shard loop did).
func TestOutputMatchesLockPerBoundsReference(t *testing.T) {
	s := hammerHHH(t, 22)
	var ls legacyScratch
	const relTol = 1e-9
	close := func(a, b float64) bool {
		diff := math.Abs(a - b)
		return diff <= relTol*math.Max(math.Abs(a), math.Abs(b))
	}
	for _, theta := range []float64{0.002, 0.01, 0.05, 0.2} {
		got := s.Output(theta)
		want := legacyOutput(s, theta, &ls, nil)
		if len(got) != len(want) {
			t.Fatalf("theta=%v: snapshot Output has %d entries, reference %d\n%v\n%v",
				theta, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i].Prefix != want[i].Prefix ||
				!close(got[i].Estimate, want[i].Estimate) ||
				!close(got[i].Conditioned, want[i].Conditioned) {
				t.Fatalf("theta=%v entry %d: snapshot %+v, reference %+v", theta, i, got[i], want[i])
			}
		}
	}
	if len(s.Output(0.002)) == 0 {
		t.Fatal("test vacuous: no entries at the loosest threshold")
	}
}

// TestReadPlaneUnderIngestion is the -race assertion for the snapshot
// query plane: Output/OutputTo and the sketch-side HeavyHitters/
// Overflowed hammered from several readers while batched writers
// ingest at full rate.
func TestReadPlaneUnderIngestion(t *testing.T) {
	hh := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 13, Counters: 64 * 5, V: 15, Seed: 23,
		},
		Shards: 4,
	})
	sk := MustNew[uint64](SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 13, Counters: 256, Tau: 1.0 / 8, Seed: 24},
		Shards: 4,
	})

	const writers = 4
	const perWriter = 1 << 15
	var writerWg, readerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(id int) {
			defer writerWg.Done()
			src := rng.New(uint64(id + 50))
			pb := hh.NewBatcher(128)
			kb := sk.NewBatcher(128)
			for i := 0; i < perWriter; i++ {
				k := uint64(src.Intn(512))
				pb.Add(hierarchy.Packet{Src: uint32(k)})
				kb.Add(k)
			}
			pb.Flush()
			kb.Flush()
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		readerWg.Add(1)
		go func(id int) {
			defer readerWg.Done()
			var out []core.HeavyPrefix
			var items []core.Item[uint64]
			probe := hierarchy.Prefix{Src: uint32(id), SrcLen: 4}
			for {
				select {
				case <-stop:
					return
				default:
				}
				out = hh.OutputTo(0.01, out[:0])
				_ = hh.Query(probe)
				_, _ = hh.QueryBounds(probe)
				items = sk.HeavyHitters(0.01, items[:0])
				sk.Overflowed(func(k uint64, n int32) bool { return true })
				_ = sk.Query(uint64(id))
			}
		}(r)
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	if got := hh.Updates(); got != writers*perWriter {
		t.Fatalf("hh.Updates() = %d, want %d", got, writers*perWriter)
	}
	if got := sk.Updates(); got != writers*perWriter {
		t.Fatalf("sk.Updates() = %d, want %d", got, writers*perWriter)
	}
}

// TestPartitionPoolCapsRetainedCapacity pins the pool hygiene fix:
// after a bursty batch, recycled per-shard sub-buffers above the cap
// are dropped rather than pinned.
func TestPartitionPoolCapsRetainedCapacity(t *testing.T) {
	s := MustNew[uint64](SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 12, Counters: 64, Seed: 25},
		Shards: 2,
		Hash:   func(k uint64) uint64 { return 0 }, // everything to shard 0
	})
	part := s.pool.Get().(*partition[uint64])
	part.keys[0] = make([]uint64, 0, 4*maxRetainedBatchCap)
	part.hashes[0] = make([]uint64, 0, 4*maxRetainedBatchCap)
	part.keys[1] = make([]uint64, 8, 64)
	part.hashes[1] = make([]uint64, 8, 64)
	s.putPartition(part)
	if part.keys[0] != nil || part.hashes[0] != nil {
		t.Fatalf("oversized sub-buffer retained with cap %d (limit %d)",
			cap(part.keys[0]), maxRetainedBatchCap)
	}
	if cap(part.keys[1]) != 64 || len(part.keys[1]) != 0 {
		t.Fatalf("small sub-buffer not recycled in place: len %d cap %d",
			len(part.keys[1]), cap(part.keys[1]))
	}

	hh := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 12, Counters: 64 * 5, Seed: 26,
		},
		Shards: 2,
	})
	ppart := hh.pool.Get().(*[][]hierarchy.Packet)
	(*ppart)[0] = make([]hierarchy.Packet, 0, 4*maxRetainedBatchCap)
	hh.putPartition(ppart)
	if (*ppart)[0] != nil {
		t.Fatalf("oversized packet sub-buffer retained with cap %d", cap((*ppart)[0]))
	}

	q := hh.getQuery()
	q.m.cands = make([]hhhset.Candidate, 0, 2*maxRetainedQueryCap)
	q.m.entries = make([]hhhset.Entry, 0, 2*maxRetainedQueryCap)
	hh.putQuery(q)
	if q.m.cands != nil || q.m.entries != nil {
		t.Fatalf("oversized query scratch retained: cands cap %d, entries cap %d",
			cap(q.m.cands), cap(q.m.entries))
	}
}

// TestHHHDefaultHashRoutesByFlow pins the PrefixHasher routing
// default: packets sharing the hierarchy's flow identity (same source
// under OneD, whatever the destination) land on one shard.
func TestHHHDefaultHashRoutesByFlow(t *testing.T) {
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 10, Counters: 64 * 5, Seed: 27,
		},
		Shards: 8,
	})
	for a := uint32(0); a < 64; a++ {
		want := s.shardIndex(hierarchy.Packet{Src: a})
		for d := uint32(1); d < 4; d++ {
			if got := s.shardIndex(hierarchy.Packet{Src: a, Dst: d}); got != want {
				t.Fatalf("src %d routed to shard %d with dst %d, %d with dst 0", a, got, d, want)
			}
		}
	}
}
