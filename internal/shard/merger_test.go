// Merger edge cases: degenerate partition sets the production paths
// (per-process shards, netwide snapshot fleets, mementoctl merge) can
// hand the merged-estimate math — empty partitions, a single
// partition, and partitions whose update counts are wildly skewed
// (one saw a full window, another barely started sliding).

package shard

import (
	"math"
	"testing"

	"memento/internal/core"
	"memento/internal/hierarchy"
)

// snapOf captures one instance's query-plane snapshot.
func snapOf(hh *core.HHH) *core.HHHSnapshot {
	snap := new(core.HHHSnapshot)
	hh.SnapshotInto(snap)
	return snap
}

// newFlowsHHH builds a small single-instance H-Memento.
func newFlowsHHH(t *testing.T, window, counters int, seed uint64) *core.HHH {
	t.Helper()
	hh, err := core.NewHHH(core.HHHConfig{
		Hierarchy: hierarchy.Flows{}, Window: window, Counters: counters, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hh
}

// TestMergerNoSnapshots pins the empty merge: no partitions, no
// output, zero window, and no panic.
func TestMergerNoSnapshots(t *testing.T) {
	var m Merger
	if out := m.Output(hierarchy.Flows{}, nil, 0.01, nil); len(out) != 0 {
		t.Fatalf("empty merge produced %d entries", len(out))
	}
	if m.Window() != 0 {
		t.Fatalf("empty merge window %d", m.Window())
	}
}

// TestMergerZeroUpdateShards merges active partitions with completely
// idle ones: the idle partitions must not dilute, scale, or corrupt
// the result — the merged set must equal the active-only merge with
// the idle windows added to the denominatorless window sum.
func TestMergerZeroUpdateShards(t *testing.T) {
	active := newFlowsHHH(t, 1<<10, 64, 1)
	idle := newFlowsHHH(t, 1<<10, 64, 2)
	heavy := hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, 1)}
	for i := 0; i < 1<<10; i++ {
		active.Update(heavy)
	}
	var m Merger
	out := m.Output(hierarchy.Flows{}, []*core.HHHSnapshot{snapOf(active), snapOf(idle)}, 0.1, nil)
	if m.Window() != 2<<10 {
		t.Fatalf("merged window %d, want %d", m.Window(), 2<<10)
	}
	found := false
	for _, e := range out {
		if e.Prefix == (hierarchy.Prefix{Src: heavy.Src, SrcLen: 4}) {
			found = true
			if math.IsNaN(e.Estimate) || math.IsInf(e.Estimate, 0) || e.Estimate <= 0 {
				t.Fatalf("degenerate estimate %g", e.Estimate)
			}
			// The idle partition contributes only its absent-key
			// default; the heavy flow's merged estimate stays within
			// the active partition's own bounds plus that default.
			au, _ := snapOf(active).QueryBounds(e.Prefix)
			iu, _ := snapOf(idle).QueryBounds(e.Prefix)
			if e.Estimate != au+iu {
				t.Fatalf("estimate %g, want active %g + idle default %g", e.Estimate, au, iu)
			}
		}
	}
	if !found {
		t.Fatal("heavy flow missing from merged set")
	}

	// All partitions idle: no candidates, no output, finite window.
	out = m.Output(hierarchy.Flows{}, []*core.HHHSnapshot{snapOf(idle), snapOf(newFlowsHHH(t, 1<<10, 64, 3))}, 0.1, nil)
	if len(out) != 0 {
		t.Fatalf("all-idle merge produced %d entries", len(out))
	}
}

// TestMergerSingleShardDegenerate pins that merging exactly one
// partition reproduces that partition's own HHH set: skew correction
// collapses to 1, the compensation to the partition's own, and the
// entries to OutputTo's.
func TestMergerSingleShardDegenerate(t *testing.T) {
	hh := newFlowsHHH(t, 1<<11, 64, 7)
	for i, p := range chainPackets(1<<12, 11) {
		_ = i
		hh.Update(p)
	}
	snap := snapOf(hh)
	var m Merger
	got := m.Output(hierarchy.Flows{}, []*core.HHHSnapshot{snap}, 0.05, nil)
	want := snap.OutputTo(0.05, nil)
	outputsEqual(t, got, want)
	if m.Window() != snap.EffectiveWindow() {
		t.Fatalf("window %d vs %d", m.Window(), snap.EffectiveWindow())
	}
	if m.Compensation() != snap.Compensation() {
		t.Fatalf("compensation %g vs %g", m.Compensation(), snap.Compensation())
	}
}

// TestMergerSkewNoSlides merges a partition that filled its window
// with one that barely started (saw no slides past its first frame):
// the skew correction must derive from the captured update counts —
// the under-filled partition's raw estimates are not inflated by the
// window ratio, because its effective span is clamped to what it
// actually saw.
func TestMergerSkewNoSlides(t *testing.T) {
	full := newFlowsHHH(t, 1<<10, 64, 21)
	fresh := newFlowsHHH(t, 1<<10, 64, 22)
	heavyA := hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, 1)}
	heavyB := hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, 2)}
	for i := 0; i < 2<<10; i++ { // two windows: full has slid
		full.Update(heavyA)
	}
	for i := 0; i < 32; i++ { // far below one window: no slides yet
		fresh.Update(heavyB)
	}
	fs, qs := snapOf(full), snapOf(fresh)
	var m Merger
	out := m.Output(hierarchy.Flows{}, []*core.HHHSnapshot{fs, qs}, 0.01, nil)
	byPrefix := map[hierarchy.Prefix]core.HeavyPrefix{}
	for _, e := range out {
		byPrefix[e.Prefix] = e
	}
	pa := hierarchy.Prefix{Src: heavyA.Src, SrcLen: 4}
	pb := hierarchy.Prefix{Src: heavyB.Src, SrcLen: 4}
	if _, ok := byPrefix[pa]; !ok {
		t.Fatal("full partition's heavy flow missing")
	}
	// Reproduce the skew math the Merger must apply: update-count
	// shares with the span clamped at each partition's own updates.
	total := fs.Updates() + qs.Updates()
	window := fs.EffectiveWindow() + qs.EffectiveWindow()
	scaleOf := func(s *core.HHHSnapshot) float64 {
		span := float64(s.Updates()) / float64(total) * float64(window)
		if span > float64(s.Updates()) {
			span = float64(s.Updates())
		}
		winLen := float64(s.EffectiveWindow())
		if float64(s.Updates()) < winLen {
			winLen = float64(s.Updates())
		}
		return span / winLen
	}
	for p, snaps := range map[hierarchy.Prefix][2]*core.HHHSnapshot{pa: {fs, qs}, pb: {fs, qs}} {
		e, ok := byPrefix[p]
		if !ok {
			continue // pb may fall below theta; the estimate check below still runs via Bounds
		}
		u0, _ := snaps[0].QueryBounds(p)
		u1, _ := snaps[1].QueryBounds(p)
		want := u0*scaleOf(snaps[0]) + u1*scaleOf(snaps[1])
		if math.Abs(e.Estimate-want) > 1e-9 {
			t.Fatalf("skew-corrected estimate for %v: %g, want %g", p, e.Estimate, want)
		}
	}
	// The fresh partition's 32 updates must not be inflated toward a
	// window's worth (a naive window/updates rescale would multiply
	// them 32×): both clamps pin its scale just below 1.
	if got := scaleOf(qs); got > 1 || got < 0.9 {
		t.Fatalf("no-slide partition scale %g outside (0.9, 1]", got)
	}
}
