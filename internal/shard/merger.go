// Merger: the merged-estimate math behind every multi-partition HHH
// read, factored out of the shard front-end so that any collection of
// independent H-Memento snapshots can be combined the same way — this
// process's shards (HHH.OutputTo), snapshot reports from remote
// agents (netwide's snapshot-shipping mode), or checkpoint files
// saved by independent nodes (cmd/mementoctl merge).

package shard

import (
	"math"

	"memento/internal/core"
	"memento/internal/hhhset"
	"memento/internal/hierarchy"
	"memento/internal/keyidx"
)

// mergedBounds accumulates one prefix's merged estimate: the
// skew-scaled bounds summed over the partitions that track it, and
// the sum of those same partitions' absent-key defaults (subtracted
// from the global default total to account for the ones that don't).
type mergedBounds struct {
	upper, lower float64
	defU, defL   float64
}

// Merger combines point-in-time H-Memento snapshots from independent
// partitions of one stream into a global HHH set. The partitions may
// be this process's shards, remote measurement points, or saved
// checkpoints — anything whose update streams are disjoint slices of
// the same traffic. All scratch (the merged estimate table, candidate
// and entry buffers) is owned by the Merger and reused across calls,
// so steady-state merging allocates only what the caller's dst needs.
// A Merger is not safe for concurrent use; pool it like the shard
// front-end pools its query state.
type Merger struct {
	snaps  []*core.HHHSnapshot
	scales []float64
	window int     // merged effective window: Σ per-snapshot windows
	comp   float64 // merged sampling compensation: √(Σ compᵢ²)

	// The merged estimate table, built once per Output by sweeping
	// each snapshot's present keys (core.Snapshot.ForEachEstimate):
	// merged maps a prefix to its slot in est, where the skew-scaled
	// contributions of the partitions that track the prefix accumulate
	// alongside the sum of those partitions' absent-key defaults. A
	// prefix's global bounds are then acc + (totalDef − contributed
	// defaults) — one table lookup instead of probing every partition,
	// and work proportional to where keys actually live.
	merged               *keyidx.Index[hierarchy.Prefix]
	est                  []mergedBounds //memento:reused (merge scratch, Trim-capped)
	totalDefU, totalDefL float64

	cands   []hhhset.Candidate //memento:reused (merge scratch, Trim-capped)
	sc      hhhset.Scratch
	entries []hhhset.Entry //memento:reused (merge scratch, Trim-capped)
}

// Window returns the merged effective window of the last Output call.
func (m *Merger) Window() int { return m.window }

// Compensation returns the merged sampling compensation of the last
// Output call.
func (m *Merger) Compensation() float64 { return m.comp }

// prepare derives the merged window, compensation and per-partition
// skew corrections from the captured snapshots. Per-partition
// sampling errors are independent, so their variances add: the merged
// compensation is the root sum of squares. The traffic split comes
// from the captured update counts, so one merge uses one consistent
// split.
func (m *Merger) prepare(snaps []*core.HHHSnapshot) {
	m.snaps = snaps
	if cap(m.scales) < len(snaps) {
		//memento:allow alloc "grows once per partition-count change; reused across merges"
		m.scales = make([]float64, len(snaps))
	} else {
		m.scales = m.scales[:len(snaps)]
	}
	m.window = 0
	var varSum float64
	var total uint64
	for _, snap := range snaps {
		m.window += snap.EffectiveWindow()
		varSum += snap.Compensation() * snap.Compensation()
		total += snap.Updates()
	}
	m.comp = math.Sqrt(varSum)
	for i, snap := range snaps {
		m.scales[i] = scaleFrom(snap.Updates(), snap.EffectiveWindow(), total, m.window)
	}
}

// Prepare derives the merged window, compensation and skew state for
// snaps so Bounds can serve point queries outside an Output call —
// the audit plane compares exact per-key counts against merged fleet
// bounds without paying for an HHH-set computation. Pair with Release
// (Output releases implicitly); Bounds is only meaningful in between.
func (m *Merger) Prepare(snaps []*core.HHHSnapshot) { m.prepare(snaps) }

// Release drops the snapshot references Prepare retained so their
// slabs are not pinned between audits.
func (m *Merger) Release() { m.snaps = nil }

// Bounds implements hhhset.Estimator over the merged snapshots: the
// sum of skew-corrected per-partition bounds. The HHH-set scan runs
// on the merged table; only the 2D glb fallback path asks for
// prefixes outside it and lands here.
func (m *Merger) Bounds(p hierarchy.Prefix) (upper, lower float64) {
	for i, snap := range m.snaps {
		u, l := snap.QueryBounds(p)
		upper += u * m.scales[i]
		lower += l * m.scales[i]
	}
	return upper, lower
}

// buildMerged sweeps every captured snapshot's present keys into the
// merged estimate table. Cost is proportional to the total number of
// tracked (prefix, partition) pairs — each key visited once where it
// lives — after which any prefix's merged bounds are a single lookup.
func (m *Merger) buildMerged() {
	want := 0
	for _, snap := range m.snaps {
		want += snap.Sketch().TrackedKeys()
	}
	if m.merged == nil || m.merged.Cap() < want {
		//memento:allow alloc "merged table grows with the tracked-key population, then is reused"
		m.merged = keyidx.MustNew(max(want, 16), hierarchy.PrefixHasher(0))
	} else {
		m.merged.Flush()
	}
	m.est = m.est[:0]
	m.totalDefU, m.totalDefL = 0, 0
	for i, hs := range m.snaps {
		snap := hs.Sketch()
		skew := m.scales[i]
		du, dl := snap.AbsentBounds()
		du *= skew
		dl *= skew
		m.totalDefU += du
		m.totalDefL += dl
		//memento:allow alloc "closure does not escape: ForEachEstimate only iterates (BenchmarkOutputSteadyState gates)"
		snap.ForEachEstimate(func(p hierarchy.Prefix, u, l float64) bool {
			h := m.merged.Hash(p)
			slot, ok := m.merged.GetH(p, h)
			if !ok {
				slot = int32(len(m.est))
				m.merged.PutH(p, slot, h)
				m.est = append(m.est, mergedBounds{})
			}
			e := &m.est[slot]
			e.upper += u * skew
			e.lower += l * skew
			e.defU += du
			e.defL += dl
			return true
		})
	}
}

// Output merges snaps into the global approximate HHH set for
// threshold theta, appending to dst. hier is the shared prefix domain
// (every snapshot must come from an instance over the same
// hierarchy). Candidates are the union of per-partition tracked
// prefixes, estimated against the merged table with the
// root-sum-of-squares sampling compensation; in one dimension,
// candidates that cannot reach θ·W − compensation even before
// conditioning are skipped outright (2D glb add-backs can raise
// conditioned frequencies, so no cut there). Everything runs on the
// immutable snapshots — no locks, no mutation of the sources.
func (m *Merger) Output(hier hierarchy.Hierarchy, snaps []*core.HHHSnapshot, theta float64, dst []core.HeavyPrefix) []core.HeavyPrefix {
	if len(snaps) == 0 {
		return dst
	}
	m.prepare(snaps)
	m.buildMerged()
	threshold := theta * float64(m.window)
	cut := math.Inf(-1)
	if hier.Dims() == 1 {
		cut = threshold - m.comp
	}
	m.cands = m.cands[:0]
	//memento:allow alloc "closure does not escape: Iterate only scans the table (BenchmarkOutputSteadyState gates)"
	m.merged.Iterate(func(p hierarchy.Prefix, slot int32) bool {
		e := &m.est[slot]
		upper := e.upper + (m.totalDefU - e.defU)
		if upper < cut {
			return true
		}
		lower := e.lower + (m.totalDefL - e.defL)
		m.cands = append(m.cands, hhhset.Candidate{Prefix: p, Upper: upper, Lower: lower})
		return true
	})
	// m doubles as the estimator for the 2D glb fallback; the scan
	// itself runs on the carried bounds.
	//memento:allow alloc "HHH-set scratch growth amortized by Scratch reuse (BenchmarkOutputSteadyState gates)"
	m.entries = hhhset.ComputeCandidates(hier, m, m.cands, threshold, m.comp, &m.sc, m.entries[:0])
	for _, e := range m.entries {
		dst = append(dst, core.HeavyPrefix(e))
	}
	m.snaps = nil // don't pin snapshot slabs between calls
	return dst
}

// Trim caps every retained scratch capacity at limit, the pool
// hygiene hook mirroring hhhset.Scratch.Trim.
func (m *Merger) Trim(limit int) {
	if cap(m.cands) > limit {
		m.cands = nil
	}
	if cap(m.entries) > limit {
		m.entries = nil
	}
	if cap(m.est) > limit {
		m.est = nil
	}
	// merged is sized by the sum of per-partition tracked keys
	// (duplicates counted), so its capacity can exceed the
	// unique-entry est cap; check it independently.
	if m.merged != nil && m.merged.Cap() > limit {
		m.merged = nil
	}
	m.sc.Trim(limit)
}
