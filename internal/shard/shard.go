// Package shard is the concurrent front-end over the single-threaded
// Memento structures in internal/core: a hash-partitioned array of
// independently-locked sketches that makes the library usable from
// many goroutines at line rate.
//
// The design follows the paper's own scaling story. A Memento sketch
// is deliberately single-writer (constant-time updates, no atomics on
// the hot path); the network-wide setting (Section 4.3) already scales
// by splitting the stream across m measurement points and merging at
// query time. shard.Sketch applies the same split inside one process:
// keys are hash-partitioned across N shards, each shard maintains a
// sliding window of W/N of *its* substream — which, under uniform
// hashing, spans approximately the last W packets of the global
// stream — and queries merge across shards. A flow's packets all land
// in one shard, so point queries touch a single lock; HeavyHitters
// and Overflowed aggregate all shards against the global window.
//
// Hash partitioning is not uniform when the stream is not: an
// elephant flow concentrates its packets on one shard, whose
// fixed-size window then spans *fewer* global packets, deflating raw
// estimates for exactly the keys that matter. Queries therefore apply
// a skew correction: the sketch counts globally ingested packets (one
// atomic add per batch) and rescales each shard's estimate by the
// share of traffic that shard received (scaleFor), which is exactly 1
// under uniform hashing and restores the global-window interpretation
// under skew, assuming the shard's mix is stationary across its
// window.
//
// Two mechanisms amortize synchronization:
//
//   - Batched ingestion. core.Sketch.UpdateBatch draws the geometric
//     "packets until the next Full update" count once per Full update
//     instead of flipping a Bernoulli coin per packet, and slides the
//     window in bulk between them. Sketch.UpdateBatch partitions a
//     caller's batch by shard and takes each shard lock once per
//     batch, not once per packet.
//   - Per-goroutine Batchers. A Batcher accumulates a goroutine's
//     stream locally (no synchronization at all) and flushes through
//     UpdateBatch, the intended high-rate ingestion path.
//
// When owner goroutines can run in parallel with producers, the SPSC
// ring pipeline (StartPipeline, ring.go/pipeline.go) replaces the
// lock-per-flush handoff entirely: each shard becomes
// run-to-completion behind one owner goroutine fed by per-producer
// rings, and Ingest/AutoMode picks between the two engines per
// deployment. DESIGN.md §9 documents the pipeline's topology,
// park/wake protocol, drain semantics and the committed scaling
// matrix.
//
// The total counter budget is divided across shards, so a sharded
// sketch costs the same memory as the single-threaded configuration
// it replaces and keeps the same εa·W algorithmic error band: each
// shard has k/N counters over a W/N window.
package shard

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"memento/internal/core"
	"memento/internal/keyidx"
)

// Sketch is a concurrent, hash-partitioned Memento over keys of type
// K. All methods are safe for concurrent use.
//
// One hash function (caller-supplied or the keyidx default) is
// shared by shard routing and every per-shard index, and every path
// hashes a key exactly once: Update and point queries use the top
// bits to pick a shard and hand the same value down to the core
// sketch's flat key indexes via the *Hashed variants, and the batched
// paths carry (key, hash) pairs from partitioning into the core
// (UpdateBatchHashed), so the sampled τ-fraction of keys that reach a
// Full update is never rehashed.
//
// Multi-shard reads (HeavyHitters, Overflowed) run on the snapshot
// query plane: each shard's queryable state is captured under exactly
// one lock acquisition (core.Sketch.SnapshotInto, a few slab
// memmoves) and all estimation happens lock-free on the immutable
// copies, so monitoring never stalls ingestion for longer than the
// capture.
type Sketch[K comparable] struct {
	shards []slot[K]
	hash   func(K) uint64 // never nil after New
	window int            // global effective window: sum of shard windows
	pool   sync.Pool      // *partition[K] batch-partitioning scratch

	// snapPool recycles the per-shard snapshot sets backing
	// multi-shard reads, so steady-state queries allocate nothing.
	snapPool sync.Pool

	// ingested counts packets across all shards (one atomic add per
	// batch on the hot path). Point queries use it to correct for
	// traffic skew: a shard receiving fraction pᵢ of the stream has a
	// window spanning W·pᵢ·N global packets instead of W, so estimates
	// are rescaled by pᵢ·N — exactly 1 under uniform hashing.
	// Multi-shard reads instead derive the total from the captured
	// per-shard update counts, so one query uses one consistent
	// traffic split.
	ingested atomic.Uint64
}

// partition is the pooled scratch of one UpdateBatch call: per-shard
// key sub-buffers and the parallel hashes computed while routing.
type partition[K comparable] struct {
	keys   [][]K      //memento:reused (pooled batch scratch)
	hashes [][]uint64 //memento:reused (pooled batch scratch)
}

// maxRetainedBatchCap bounds the per-shard sub-buffer capacity a
// pooled partition (or per-goroutine scratch) keeps between uses. A
// bursty batch may grow a sub-buffer arbitrarily for its own
// duration; without the cap that high-water capacity would be pinned
// in the pool forever.
const maxRetainedBatchCap = 16 * DefaultBatchSize

// querySnap is the pooled working state of one multi-shard read: a
// point-in-time snapshot of every shard plus the skew corrections
// computed from the captured update counts.
type querySnap[K comparable] struct {
	shards []core.Snapshot[K]
	scales []float64
}

// slot pads each shard to a full 64-byte cache line (8B mutex + 8B
// pointer + 48B pad) so neighboring shards' locks don't false-share.
type slot[K comparable] struct {
	mu sync.Mutex
	s  *core.Sketch[K] // guarded by mu
	_  [48]byte
}

// SketchConfig parameterizes New.
type SketchConfig[K comparable] struct {
	// Core holds the global sketch parameters. Window is the GLOBAL
	// sliding window in packets; each shard maintains Window/Shards of
	// its substream. Counters (or the count derived from EpsilonA) is
	// the GLOBAL budget, divided across shards.
	Core core.Config

	// Shards is N, the number of independently-locked partitions.
	// Zero defaults to runtime.GOMAXPROCS(0).
	Shards int

	// Hash overrides the key→shard hash. Nil uses hash/maphash with a
	// per-Sketch random seed: stable within a process but not across
	// runs. Provide a fixed hash for run-to-run deterministic shard
	// assignment (tests, replayable benchmarks).
	Hash func(K) uint64
}

const defaultSeed = 0x73686172645f6d65 // "shard_me"

// minShardCounters floors the per-shard counter budget so extreme
// Shards/Counters ratios cannot degenerate the Space Saving stage.
const minShardCounters = 8

// New validates cfg and builds a sharded sketch.
func New[K comparable](cfg SketchConfig[K]) (*Sketch[K], error) {
	n := cfg.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, errors.New("shard: Shards must be at least 1")
	}
	if cfg.Core.Window < n {
		return nil, errors.New("shard: Window smaller than shard count")
	}
	shardCfg := cfg.Core
	shardCfg.Window = (cfg.Core.Window + n - 1) / n
	if shardCfg.Counters == 0 && shardCfg.EpsilonA > 0 {
		// Resolve the global budget before dividing it.
		shardCfg.Counters = int(4/shardCfg.EpsilonA) + 1
	}
	if shardCfg.Counters > 0 {
		shardCfg.Counters = (shardCfg.Counters + n - 1) / n
		if shardCfg.Counters < minShardCounters {
			shardCfg.Counters = minShardCounters
		}
	}
	baseSeed := cfg.Core.Seed
	if baseSeed == 0 {
		baseSeed = defaultSeed
	}

	hash := cfg.Hash
	if hash == nil {
		hash = keyidx.DefaultHasher[K]()
	}
	s := &Sketch[K]{
		shards: make([]slot[K], n),
		hash:   hash,
	}
	for i := range s.shards {
		// Decorrelate shard RNG streams with a golden-ratio stride.
		shardCfg.Seed = baseSeed + uint64(i)*0x9e3779b97f4a7c15
		sk, err := core.NewWithHash[K](shardCfg, hash)
		if err != nil {
			return nil, err
		}
		//memento:allow lock "instance under construction; not yet shared"
		s.shards[i].s = sk
		s.window += sk.EffectiveWindow()
	}
	s.pool.New = func() any {
		return &partition[K]{keys: make([][]K, n), hashes: make([][]uint64, n)}
	}
	s.snapPool.New = func() any {
		return &querySnap[K]{shards: make([]core.Snapshot[K], n), scales: make([]float64, n)}
	}
	return s, nil
}

// MustNew is New for statically valid configurations; panics on error.
func MustNew[K comparable](cfg SketchConfig[K]) *Sketch[K] {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// shardOf maps a key hash to a shard in [0, n) using the top 32 bits,
// independent of the bits the per-shard key indexes consume.
// Multiply-shift range reduction; bias ≤ n/2^32, negligible.
func shardOf(h uint64, n int) int {
	return int(((h >> 32) * uint64(n)) >> 32)
}

// shardIndex maps a key to its shard.
func (s *Sketch[K]) shardIndex(x K) int { return s.shardFromHash(s.hash(x)) }

// shardFromHash maps a key hash to its shard.
func (s *Sketch[K]) shardFromHash(h uint64) int { return shardOf(h, len(s.shards)) }

// Shards returns N, the number of partitions.
func (s *Sketch[K]) Shards() int { return len(s.shards) }

// EffectiveWindow returns the global window actually maintained: the
// sum of the per-shard effective windows.
func (s *Sketch[K]) EffectiveWindow() int { return s.window }

// Update processes one packet, locking only the key's shard. The key
// is hashed once; the same hash routes to a shard and feeds the core
// sketch's indexes.
//memento:noalloc
func (s *Sketch[K]) Update(x K) {
	h := s.hash(x)
	sl := &s.shards[s.shardFromHash(h)]
	sl.mu.Lock()
	sl.s.UpdateHashed(x, h)
	sl.mu.Unlock()
	s.ingested.Add(1)
}

// UpdateBatch processes a batch of packets: the batch is partitioned
// by shard and each shard ingests its slice through the batched
// geometric-skip hot path under one lock acquisition. The hash
// computed to route each key rides along with it, so the sampled
// τ-fraction that reaches a Full update inside the core is not
// rehashed. This is the intended high-rate path; per-goroutine
// Batchers feed it.
//memento:noalloc
func (s *Sketch[K]) UpdateBatch(xs []K) {
	if len(xs) == 0 {
		return
	}
	s.ingested.Add(uint64(len(xs)))
	if len(s.shards) == 1 {
		// No routing, so no hashes to reuse: hashing every key here
		// would cost more than the τ-fraction the core hashes itself.
		sl := &s.shards[0]
		sl.mu.Lock()
		sl.s.UpdateBatch(xs)
		sl.mu.Unlock()
		return
	}
	//memento:allow alloc "pool miss allocates the partition scratch; steady state reuses"
	part := s.pool.Get().(*partition[K])
	for _, x := range xs {
		h := s.hash(x)
		i := shardOf(h, len(s.shards))
		part.keys[i] = append(part.keys[i], x)
		part.hashes[i] = append(part.hashes[i], h)
	}
	for i := range part.keys {
		sub := part.keys[i]
		if len(sub) == 0 {
			continue
		}
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.s.UpdateBatchHashed(sub, part.hashes[i])
		sl.mu.Unlock()
	}
	s.putPartition(part)
}

// putPartition recycles a partition, dropping sub-buffers whose
// capacity ballooned past maxRetainedBatchCap so one bursty batch
// cannot pin its high-water memory in the pool forever.
func (s *Sketch[K]) putPartition(part *partition[K]) {
	for i := range part.keys {
		if cap(part.keys[i]) > maxRetainedBatchCap {
			part.keys[i] = nil
			part.hashes[i] = nil
		} else {
			part.keys[i] = part.keys[i][:0]
			part.hashes[i] = part.hashes[i][:0]
		}
	}
	//memento:allow alloc "Pool.Put's per-P chain growth is a one-time cold cost"
	s.pool.Put(part)
}

// scaleFrom returns the skew correction for one shard: the ratio
// between the substream packets that fall inside the global window
// (share·W, capped at what the shard has seen) and the span the
// shard's own window covers. Under uniform hashing every shard's
// share is 1/N and the scale is exactly 1; a shard hot with an
// elephant flow gets scale > 1 (its window spans less global time
// than W), a cold shard gets scale < 1. updates and effWindow come
// either from a locked live shard (point queries) or from a captured
// snapshot (multi-shard reads); total is the global packet count the
// share is measured against.
func scaleFrom(updates uint64, effWindow int, total uint64, globalWindow int) float64 {
	if total == 0 || updates == 0 {
		return 1
	}
	span := float64(updates) / float64(total) * float64(globalWindow)
	if span > float64(updates) {
		span = float64(updates)
	}
	winLen := float64(effWindow)
	if float64(updates) < winLen {
		winLen = float64(updates)
	}
	if winLen <= 0 || span <= 0 {
		return 1
	}
	return span / winLen
}

// snapshotAll captures every shard — exactly one lock acquisition per
// shard, held only for the slab copy — and derives each shard's skew
// correction from the captured update counts, so the whole read that
// follows sees one consistent traffic split.
func (s *Sketch[K]) snapshotAll(q *querySnap[K]) {
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.s.SnapshotInto(&q.shards[i])
		sl.mu.Unlock()
	}
	var total uint64
	for i := range q.shards {
		total += q.shards[i].Updates()
	}
	for i := range q.shards {
		q.scales[i] = scaleFrom(q.shards[i].Updates(), q.shards[i].EffectiveWindow(), total, s.window)
	}
}

// Query returns the estimate of x's frequency within the GLOBAL
// window: the key's shard estimate, skew-corrected for the fraction
// of traffic that shard received (see scaleFrom). A key lives in
// exactly one shard, so this takes one lock — already a single lock
// pass — and the routing hash doubles as the index hash inside the
// core (QueryHashed).
func (s *Sketch[K]) Query(x K) float64 {
	total := s.ingested.Load()
	h := s.hash(x)
	sl := &s.shards[s.shardFromHash(h)]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.s.QueryHashed(x, h) * scaleFrom(sl.s.Updates(), sl.s.EffectiveWindow(), total, s.window)
}

// QueryBounds returns conservative upper and lower bounds on x's
// global window frequency, skew-corrected like Query.
func (s *Sketch[K]) QueryBounds(x K) (upper, lower float64) {
	total := s.ingested.Load()
	h := s.hash(x)
	sl := &s.shards[s.shardFromHash(h)]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	scale := scaleFrom(sl.s.Updates(), sl.s.EffectiveWindow(), total, s.window)
	upper, lower = sl.s.QueryBoundsHashed(x, h)
	return upper * scale, lower * scale
}

// HeavyHitters appends every key whose estimated global-window
// frequency is at least theta·EffectiveWindow() and returns dst. It
// runs on the snapshot plane: one lock acquisition per shard to
// capture, then the whole scan lock-free, so the result is a fuzzy
// snapshot that is consistent per query (all shards captured in one
// pass) rather than per shard-visit.
func (s *Sketch[K]) HeavyHitters(theta float64, dst []core.Item[K]) []core.Item[K] {
	threshold := theta * float64(s.window)
	q := s.snapPool.Get().(*querySnap[K])
	s.snapshotAll(q)
	for i := range q.shards {
		snap := &q.shards[i]
		// Rescale: core applies its threshold against the shard-local
		// window, so convert the global cut to shard-local terms and
		// undo the skew correction (uniform within a shard).
		scale := q.scales[i]
		shardTheta := threshold / scale / float64(snap.EffectiveWindow())
		before := len(dst)
		dst = snap.HeavyHitters(shardTheta, dst)
		for j := before; j < len(dst); j++ {
			dst[j].Estimate *= scale
		}
	}
	s.snapPool.Put(q)
	return dst
}

// Overflowed calls fn for every key in any shard's overflow table
// until fn returns false. Like HeavyHitters it iterates captured
// snapshots, so fn runs with no shard lock held: a slow consumer
// cannot stall ingestion, and fn may itself query the sketch.
func (s *Sketch[K]) Overflowed(fn func(key K, overflows int32) bool) {
	q := s.snapPool.Get().(*querySnap[K])
	s.snapshotAll(q)
	defer s.snapPool.Put(q)
	for i := range q.shards {
		stop := false
		q.shards[i].Overflowed(func(key K, n int32) bool {
			if !fn(key, n) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Updates returns the total number of updates across shards.
func (s *Sketch[K]) Updates() uint64 {
	var total uint64
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		total += sl.s.Updates()
		sl.mu.Unlock()
	}
	return total
}

// FullUpdates returns the total number of Full updates across shards.
func (s *Sketch[K]) FullUpdates() uint64 {
	var total uint64
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		total += sl.s.FullUpdates()
		sl.mu.Unlock()
	}
	return total
}

// Reset returns every shard to its initial empty state.
func (s *Sketch[K]) Reset() {
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.s.Reset()
		sl.mu.Unlock()
	}
	s.ingested.Store(0)
}

// Batcher is a per-goroutine ingestion buffer: Add partitions keys
// into per-shard sub-buffers with no synchronization and hands a
// sub-buffer to its shard (one lock acquisition) when it fills. The
// routing hash rides alongside each key and feeds the core's
// UpdateBatchHashed, so keys are hashed and copied exactly once per
// packet across the whole ingest path. A Batcher must not be shared
// between goroutines; call Flush before discarding it or reading
// final results.
type Batcher[K comparable] struct {
	s    *Sketch[K]
	bufs [][]K      //memento:reused (one per shard, cap-bounded by size)
	hs   [][]uint64 //memento:reused (parallel routing hashes; nil for a single shard)
	size int
}

// DefaultBatchSize amortizes lock acquisition and sampler draws well
// in practice while keeping per-goroutine buffers small.
const DefaultBatchSize = 256

// NewBatcher returns an ingestion buffer of the given per-shard size
// flushing into s. size <= 0 selects DefaultBatchSize.
func (s *Sketch[K]) NewBatcher(size int) *Batcher[K] {
	if size <= 0 {
		size = DefaultBatchSize
	}
	bufs := make([][]K, len(s.shards))
	for i := range bufs {
		bufs[i] = make([]K, 0, size)
	}
	b := &Batcher[K]{s: s, bufs: bufs, size: size}
	if len(s.shards) > 1 {
		// A single shard never routes, so there is no hash to carry;
		// the core hashes only the sampled τ-fraction itself.
		b.hs = make([][]uint64, len(s.shards))
		for i := range b.hs {
			b.hs[i] = make([]uint64, 0, size)
		}
	}
	return b
}

// Add buffers one key, flushing its shard's sub-buffer if full.
//memento:noalloc
func (b *Batcher[K]) Add(x K) {
	i := 0
	if len(b.bufs) > 1 {
		h := b.s.hash(x)
		i = shardOf(h, len(b.bufs))
		b.hs[i] = append(b.hs[i], h)
	}
	b.bufs[i] = append(b.bufs[i], x)
	if len(b.bufs[i]) >= b.size {
		b.flushShard(i)
	}
}

// Flush drains every sub-buffer into the sharded sketch.
//memento:noalloc
func (b *Batcher[K]) Flush() {
	for i := range b.bufs {
		if len(b.bufs[i]) > 0 {
			b.flushShard(i)
		}
	}
}

func (b *Batcher[K]) flushShard(i int) {
	sl := &b.s.shards[i]
	sl.mu.Lock()
	if b.hs == nil {
		sl.s.UpdateBatch(b.bufs[i])
	} else {
		sl.s.UpdateBatchHashed(b.bufs[i], b.hs[i])
	}
	sl.mu.Unlock()
	b.s.ingested.Add(uint64(len(b.bufs[i])))
	b.bufs[i] = b.bufs[i][:0]
	if b.hs != nil {
		b.hs[i] = b.hs[i][:0]
	}
}
