package shard

import (
	"bytes"
	"io"
	"os"
	"testing"

	"memento/internal/core"
	"memento/internal/delta"
	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// chainPackets generates the usual skewed test mix.
func chainPackets(n int, seed uint64) []hierarchy.Packet {
	src := rng.New(seed)
	out := make([]hierarchy.Packet, n)
	for i := range out {
		if src.Float64() < 0.5 {
			out[i] = hierarchy.Packet{Src: hierarchy.IPv4(10, 0, 0, byte(1+src.Intn(8)))}
		} else {
			out[i] = hierarchy.Packet{Src: src.Uint32() | 1<<31}
		}
	}
	return out
}

// outputsEqual compares two HHH sets as sets with exact estimates.
func outputsEqual(t *testing.T, got, want []core.HeavyPrefix) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d entries vs %d", len(got), len(want))
	}
	m := map[hierarchy.Prefix]core.HeavyPrefix{}
	for _, e := range got {
		m[e.Prefix] = e
	}
	for _, e := range want {
		ge, ok := m[e.Prefix]
		if !ok || ge.Estimate != e.Estimate || ge.Conditioned != e.Conditioned {
			t.Fatalf("entry %v mismatch: %+v vs %+v", e.Prefix, ge, e)
		}
	}
}

// TestShardDeltaChainRestore drives a sharded instance through a
// base+delta chain written via the delta.Checkpointer and checks a
// chain-restored instance answers identically to the live one.
func TestShardDeltaChainRestore(t *testing.T) {
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.Flows{}, Window: 1 << 12, Counters: 128, Seed: 5,
		},
		Shards: 4,
	})
	if err := s.EnableDeltaCheckpoints(31); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cp, err := delta.NewCheckpointer(dir, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	packets := chainPackets(1<<14, 3)
	b := s.NewBatcher(0)
	for off := 0; off < len(packets); off += 1 << 11 {
		for _, p := range packets[off : off+1<<11] {
			b.Add(p)
		}
		b.Flush()
		if _, err := cp.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	chain, err := delta.FindChain(dir)
	if err != nil || chain == nil {
		t.Fatalf("chain discovery: %v (%v)", err, chain)
	}
	if len(chain.Deltas) == 0 {
		t.Fatal("chain has no delta steps")
	}
	base, err := os.Open(chain.Base)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	deltas := make([]io.Reader, 0, len(chain.Deltas))
	for _, path := range chain.Deltas {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		deltas = append(deltas, f)
	}
	restored, err := RestoreHHHChain(base, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Shards() != s.Shards() || restored.EffectiveWindow() != s.EffectiveWindow() {
		t.Fatalf("restored shape %d/%d vs %d/%d",
			restored.Shards(), restored.EffectiveWindow(), s.Shards(), s.EffectiveWindow())
	}
	outputsEqual(t, restored.Output(0.05), s.Output(0.05))
	for i := 0; i < 8; i++ {
		p := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, byte(1+i)), SrcLen: 4}
		if g, w := restored.Query(p), s.Query(p); g != w {
			t.Fatalf("query %v: %g vs %g", p, g, w)
		}
	}
}

// TestShardDeltaChainDetectsGap pins that a chain with a missing
// delta file refuses to apply past the hole.
func TestShardDeltaChainDetectsGap(t *testing.T) {
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.Flows{}, Window: 1 << 10, Counters: 64, Seed: 9,
		},
		Shards: 2,
	})
	if err := s.EnableDeltaCheckpoints(32); err != nil {
		t.Fatal(err)
	}
	var baseBuf, d1, d2 bytes.Buffer
	step := func(w *bytes.Buffer, n int, seed uint64) {
		b := s.NewBatcher(0)
		for _, p := range chainPackets(n, seed) {
			b.Add(p)
		}
		b.Flush()
		if _, err := s.WriteChain(w, false); err != nil {
			t.Fatal(err)
		}
	}
	step(&baseBuf, 800, 1)
	step(&d1, 800, 2)
	step(&d2, 800, 3)
	// Applying base + d2 (skipping d1) must surface the gap.
	if _, err := RestoreHHHChain(bytes.NewReader(baseBuf.Bytes()), bytes.NewReader(d2.Bytes())); err == nil {
		t.Fatal("gap not detected")
	}
	// The full chain restores.
	if _, err := RestoreHHHChain(bytes.NewReader(baseBuf.Bytes()),
		bytes.NewReader(d1.Bytes()), bytes.NewReader(d2.Bytes())); err != nil {
		t.Fatal(err)
	}
}
