package shard

import (
	"math"
	"sync"
	"testing"

	"memento/internal/core"
	"memento/internal/exact"
	"memento/internal/rng"
)

// pacedHash assigns key k to shard k%4 (top bits drive the
// multiply-shift reduction). Feeding keys in round-robin residue
// order then paces every shard at exactly 1/4 of the stream, so each
// shard's W/4 window spans exactly the last W global packets and the
// merged estimates obey the single-sketch error analysis.
func pacedHash(k uint64) uint64 { return (k % 4) << 62 }

func TestConfigValidation(t *testing.T) {
	cases := []SketchConfig[uint64]{
		{Core: core.Config{Window: 1000, Counters: 64}, Shards: -1},
		{Core: core.Config{Window: 3, Counters: 64}, Shards: 4},
		{Core: core.Config{Window: 0, Counters: 64}},
		{Core: core.Config{Window: 1000}}, // no counters or epsilon
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	s := MustNew[uint64](SketchConfig[uint64]{Core: core.Config{Window: 1 << 16, Counters: 64}})
	if s.Shards() < 1 {
		t.Fatalf("default shards = %d", s.Shards())
	}
	if got := s.EffectiveWindow(); got < 1<<16 {
		t.Errorf("EffectiveWindow %d below configured global window", got)
	}
}

// TestCountersDivided pins the memory contract: the global counter
// budget is split across shards (with a floor).
func TestCountersDivided(t *testing.T) {
	s := MustNew[uint64](SketchConfig[uint64]{
		Core: core.Config{Window: 1 << 16, Counters: 4096}, Shards: 4,
	})
	for i := range s.shards {
		if got := s.shards[i].s.Counters(); got != 1024 {
			t.Errorf("shard %d counters = %d, want 1024", i, got)
		}
	}
}

// TestConcurrentWritersReaders exercises every public method from
// many goroutines at once; run under -race this is the concurrency
// safety assertion of the package.
func TestConcurrentWritersReaders(t *testing.T) {
	s := MustNew[uint64](SketchConfig[uint64]{
		Core:   core.Config{Window: 1 << 14, Counters: 256, Tau: 1.0 / 8, Seed: 1},
		Shards: 4,
	})
	const writers = 4
	const readers = 2
	const perWriter = 1 << 15
	var writerWg, readerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(id int) {
			defer writerWg.Done()
			src := rng.New(uint64(id + 1))
			b := s.NewBatcher(128)
			for i := 0; i < perWriter; i++ {
				if i%3 == 0 {
					s.Update(uint64(src.Intn(1000)))
				} else {
					b.Add(uint64(src.Intn(1000)))
				}
			}
			b.Flush()
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(id int) {
			defer readerWg.Done()
			var items []core.Item[uint64]
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Query(uint64(id))
				_, _ = s.QueryBounds(uint64(id * 7))
				items = s.HeavyHitters(0.01, items[:0])
				s.Overflowed(func(k uint64, n int32) bool { return n < 1000 })
				_ = s.Updates()
			}
		}(r)
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	if got := s.Updates(); got != writers*perWriter {
		t.Fatalf("Updates() = %d, want %d", got, writers*perWriter)
	}
}

// TestShardedAccuracy drives a paced, skewed stream and asserts the
// merged estimates stay within the combined εa+εs error band against
// the exact ground-truth window, the acceptance bound of the sharded
// layer.
func TestShardedAccuracy(t *testing.T) {
	const window = 1 << 14
	const counters = 512
	const tau = 1.0 / 4
	s := MustNew[uint64](SketchConfig[uint64]{
		Core:   core.Config{Window: window, Counters: counters, Tau: tau, Seed: 7},
		Shards: 4,
		Hash:   pacedHash,
	})
	oracle := exact.MustNewSlidingWindow[uint64](s.EffectiveWindow())

	// Skewed paced stream: residues rotate 0,1,2,3 so each shard is
	// paced exactly; within a residue class low quotients are heavy.
	src := rng.New(1001)
	const n = 1 << 17
	batch := make([]uint64, 0, 256)
	for i := 0; i < n; i++ {
		q := src.Intn(16)
		if src.Intn(3) == 0 {
			q = 16 + src.Intn(1024)
		}
		key := uint64(q*4 + i%4)
		batch = append(batch, key)
		oracle.Add(key)
		if len(batch) == cap(batch) {
			s.UpdateBatch(batch)
			batch = batch[:0]
		}
	}
	s.UpdateBatch(batch)

	w := float64(s.EffectiveWindow())
	// εa: global 4W/k by construction (per shard: 4·(W/4)/(k/4)).
	// εs: sampling noise ~√(f/τ) packets; bound with 6σ at f ≤ W.
	band := 6*w/float64(counters) + 6*math.Sqrt(w/tau)
	for res := 0; res < 4; res++ {
		for q := 0; q < 16; q++ {
			key := uint64(q*4 + res)
			est := s.Query(key)
			truth := float64(oracle.Count(key))
			if diff := est - truth; diff > band || -diff > band {
				t.Errorf("Query(%d) = %v, exact %v, |diff| %v > band %v",
					key, est, truth, est-truth, band)
			}
		}
	}
}

// TestHeavyHittersNoFalseNegatives checks the merged HeavyHitters
// call keeps Memento's one-sided guarantee at τ=1: every exact heavy
// hitter of the global window must be reported.
func TestHeavyHittersNoFalseNegatives(t *testing.T) {
	const window = 1 << 12
	s := MustNew[uint64](SketchConfig[uint64]{
		Core:   core.Config{Window: window, Counters: 256, Seed: 3},
		Shards: 4,
		Hash:   pacedHash,
	})
	oracle := exact.MustNewSlidingWindow[uint64](s.EffectiveWindow())
	src := rng.New(2002)
	for i := 0; i < 1<<15; i++ {
		q := src.Intn(8)
		if src.Intn(2) == 0 {
			q = 8 + src.Intn(512)
		}
		key := uint64(q*4 + i%4)
		s.Update(key)
		oracle.Add(key)
	}
	const theta = 0.05
	got := map[uint64]bool{}
	for _, it := range s.HeavyHitters(theta, nil) {
		got[it.Key] = true
	}
	for key := range oracle.HeavyHitters(theta) {
		if !got[key] {
			t.Errorf("exact heavy hitter %d missing from sharded report", key)
		}
	}
}

// TestBatchSegmentationInvariant: with a fixed Hash and Seed the
// sharded result must not depend on how the stream is cut into
// batches, because each shard's substream and geometric skip state
// are identical.
func TestBatchSegmentationInvariant(t *testing.T) {
	const window = 1 << 12
	const n = 1 << 14
	keys := make([]uint64, n)
	src := rng.New(31)
	for i := range keys {
		keys[i] = uint64(src.Intn(300))
	}
	run := func(batch int) *Sketch[uint64] {
		s := MustNew[uint64](SketchConfig[uint64]{
			Core:   core.Config{Window: window, Counters: 128, Tau: 1.0 / 8, Seed: 17},
			Shards: 4,
			Hash:   pacedHash,
		})
		for i := 0; i < n; i += batch {
			end := i + batch
			if end > n {
				end = n
			}
			s.UpdateBatch(keys[i:end])
		}
		return s
	}
	want := run(1)
	for _, batch := range []int{7, 256, n} {
		got := run(batch)
		if got.FullUpdates() != want.FullUpdates() {
			t.Fatalf("batch=%d: %d full updates, want %d",
				batch, got.FullUpdates(), want.FullUpdates())
		}
		for k := uint64(0); k < 300; k++ {
			if got.Query(k) != want.Query(k) {
				t.Fatalf("batch=%d: Query(%d) = %v, want %v",
					batch, k, got.Query(k), want.Query(k))
			}
		}
	}
}
