// Sharded delta checkpoints: the incremental analog of Checkpoint. A
// sharded H-Memento with delta checkpoints enabled advances one
// replication chain per shard in lockstep and writes each step as a
// KindHHHDeltaSet record — the same envelope-plus-blobs layout as a
// full checkpoint, with per-shard internal/delta chain records as the
// blobs. A base step costs what Checkpoint costs; every other step
// costs only what changed, which is what makes a tight -checkpoint-
// every cadence affordable (cmd/lbproxy's warm-restart checkpointer).

package shard

import (
	"errors"
	"fmt"
	"io"

	"memento/internal/codec"
	"memento/internal/core"
	"memento/internal/delta"
)

// deltaTracker aliases the chain encoder so the HHH struct definition
// (hhh.go) needs no delta import.
type deltaTracker = delta.Tracker

// EnableDeltaCheckpoints creates the per-shard replication chain
// encoders (restore plane on, exact fidelity — local persistence must
// rehydrate byte-identical state). chain is the shared chain
// identity; 0 draws a random one. Idempotent after the first call.
func (s *HHH) EnableDeltaCheckpoints(chain uint64) error {
	if s.trackers != nil {
		return nil
	}
	trackers := make([]*delta.Tracker, len(s.shards))
	for i := range s.shards {
		sl := &s.shards[i]
		// Enabling hooks the sketch's dirty plane; take the shard lock
		// so it never races concurrent ingestion (updates landing in
		// the window would go unmarked — exactly the silent divergence
		// chains exist to prevent).
		sl.mu.Lock()
		tr, err := delta.NewTracker(sl.hh, delta.TrackerConfig{
			Chain:   chain,
			Restore: true,
		})
		sl.mu.Unlock()
		if err != nil {
			return err
		}
		if chain == 0 {
			chain = tr.Chain() // shards share the drawn identity
		}
		trackers[i] = tr
	}
	s.trackers = trackers
	return nil
}

// WriteChain writes the next delta-checkpoint step to w — a full base
// when rebase is set or any shard's chain needs one — and reports
// whether a base was written. It implements delta.Source, so a
// delta.Checkpointer can drive it directly. Capture follows the read
// plane's discipline (one lock acquisition per shard, held for the
// slab copy); encoding and writing happen outside the locks.
func (s *HHH) WriteChain(w io.Writer, rebase bool) (bool, error) {
	if s.trackers == nil {
		return false, errors.New("shard: delta checkpoints not enabled")
	}
	// Capture every shard first, then decide the step flavor: if any
	// shard must rebase (first step, forced, or a reset was detected
	// in its dirty interval), every shard rebases, keeping the file's
	// records uniform so a chain always restarts from one .base file.
	for i := range s.shards {
		sl := &s.shards[i]
		s.lockShardRead(sl)
		err := s.trackers[i].Capture()
		sl.mu.Unlock()
		if err != nil {
			return false, err
		}
	}
	base := rebase
	for _, tr := range s.trackers {
		if tr.PendingBase() {
			base = true
		}
	}
	if base {
		for _, tr := range s.trackers {
			tr.ForceBase()
		}
	}
	if _, err := w.Write(appendEnvelope(nil, codec.KindHHHDeltaSet, len(s.shards), 0)); err != nil {
		return base, err
	}
	var buf []byte
	total := envelopeSize
	for i, tr := range s.trackers {
		blob, isBase, err := tr.AppendCaptured(buf[:0])
		if err != nil {
			return base, fmt.Errorf("shard %d: %w", i, err)
		}
		if isBase != base {
			return base, fmt.Errorf("shard %d: record flavor diverged from set", i)
		}
		buf = blob
		if err := writeBlob(w, blob); err != nil {
			return base, err
		}
		total += 4 + len(blob)
	}
	codec.AccountEncode(codec.KindHHHDeltaSet, total)
	return base, nil
}

// ApplyHHHDeltaSet reads one KindHHHDeltaSet record from r and
// applies its per-shard chain records. sts carries the follower's
// per-shard states: pass nil for the first (base) file — fresh states
// are created — and the returned slice for every later file. Errors
// follow internal/delta.State.Apply's contract (ErrEpochGap on chain
// discontinuity, codec typed errors on corruption).
func ApplyHHHDeltaSet(r io.Reader, sts []*delta.State) ([]*delta.State, error) {
	shards, _, err := readEnvelope(r, codec.KindHHHDeltaSet)
	if err != nil {
		return sts, err
	}
	if sts == nil {
		sts = make([]*delta.State, shards)
		for i := range sts {
			sts[i] = delta.NewState()
		}
	} else if len(sts) != shards {
		return sts, fmt.Errorf("%w: set has %d shards, follower %d",
			codec.ErrConfigMismatch, shards, len(sts))
	}
	var buf []byte
	total := envelopeSize
	for i := range sts {
		if buf, err = readBlob(r, buf); err != nil {
			return sts, err
		}
		total += 4 + len(buf)
		if err := sts[i].Apply(buf); err != nil {
			return sts, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	codec.AccountDecode(codec.KindHHHDeltaSet, total)
	return sts, nil
}

// RestoreHHHChain constructs a live sharded H-Memento from a
// delta-checkpoint chain: one base set record followed by its deltas
// in epoch order (delta.FindChain hands files in exactly this order).
// Configuration derives from the chain itself, like RestoreHHH.
func RestoreHHHChain(base io.Reader, deltas ...io.Reader) (*HHH, error) {
	sts, err := ApplyHHHDeltaSet(base, nil)
	if err != nil {
		return nil, err
	}
	for i, d := range deltas {
		if sts, err = ApplyHHHDeltaSet(d, sts); err != nil {
			return nil, fmt.Errorf("chain delta %d: %w", i, err)
		}
	}
	snaps := make([]*core.HHHSnapshot, len(sts))
	for i, st := range sts {
		if snaps[i], err = st.Snapshot(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return restoreHHHFromSnaps(snaps)
}
