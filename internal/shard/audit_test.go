// Accuracy-plane integration: the shadow oracle teed off a
// PacketBatcher must never observe the sketch outside its guaranteed
// (ε,δ) band — the bound_violations_total == 0 acceptance invariant —
// and its exact counts must agree with a brute-force sliding window
// driven through the same batcher.

package shard

import (
	"testing"

	"memento/internal/audit"
	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/obs"
	"memento/internal/rng"
)

// auditStream yields the skewed packet stream the audit tests drive:
// a handful of heavy sources over a long uniform tail.
func auditStream(seed uint64, n int) []hierarchy.Packet {
	src := rng.New(seed)
	ps := make([]hierarchy.Packet, n)
	for i := range ps {
		a := uint32(src.Intn(1 << 20))
		if src.Intn(3) > 0 {
			a = uint32(src.Intn(64))
		}
		ps[i] = hierarchy.Packet{Src: a}
	}
	return ps
}

// TestAuditedIngestNoViolations runs the full loop — batcher tee,
// window slide, eviction, Audit against the live sharded estimator —
// and requires zero bound violations, single- and multi-shard. The
// seeds are fixed, so the (1−δ) guarantee is a deterministic check
// here.
func TestAuditedIngestNoViolations(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s := MustNewHHH(HHHConfig{
			Core: core.HHHConfig{
				Hierarchy: hierarchy.OneD{}, Window: 1 << 14, Counters: 512 * 5, V: 20, Seed: 11,
			},
			Shards: shards,
		})
		// SampleShift 0 audits every key: the window holds a few
		// thousand distinct sources, so size the oracle for all of
		// them and the test is deterministic whatever the shard salt.
		a, err := audit.New(audit.Config{
			Hier:           hierarchy.OneD{},
			Window:         s.EffectiveWindow(),
			MaxKeys:        1 << 13,
			MaxOccurrences: 1 << 15,
			Seed:           13,
		})
		if err != nil {
			t.Fatal(err)
		}
		reg := newTestRegistry(t, s, a)
		bt := s.NewBatcher(256)
		bt.Audit(a)
		for _, p := range auditStream(17, 3<<14) {
			bt.Add(p)
		}
		bt.Flush()
		a.Flush()
		res := a.Audit(s)
		if res.Keys == 0 || res.Checks == 0 {
			t.Fatalf("shards=%d: audit vacuous: %+v", shards, res)
		}
		if res.Violations != 0 || a.Violations() != 0 {
			t.Fatalf("shards=%d: bound violations: %+v", shards, res)
		}
		if res.Tainted {
			t.Fatalf("shards=%d: oracle overflowed; grow its capacity", shards)
		}
		if res.Bound <= 0 || res.MaxAbsErr > res.Bound {
			t.Fatalf("shards=%d: observed error %v outside reported bound %v",
				shards, res.MaxAbsErr, res.Bound)
		}
		if got := reg.Counter("memento_audit_bound_violations_total").Load(); got != 0 {
			t.Fatalf("shards=%d: exported violation counter = %d", shards, got)
		}
	}
}

// newTestRegistry wires the audit catalog and shard instruments into
// a fresh registry, exercising the registration path.
func newTestRegistry(t *testing.T, s *HHH, a *audit.Auditor) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	s.Instrument(reg, nil, "test")
	a.Register(reg)
	return reg
}

// TestAuditedBatcherCounts checks the tee's exactness through the
// batcher: every key the oracle tracks must carry the brute-force
// sliding-window count of the stream fed to Add.
func TestAuditedBatcherCounts(t *testing.T) {
	const window = 1 << 12
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: window, Counters: 512 * 5, V: 20, Seed: 3,
		},
		Shards: 4,
	})
	a, err := audit.New(audit.Config{
		Hier:           hierarchy.OneD{},
		Window:         s.EffectiveWindow(),
		MaxKeys:        1 << 12,
		MaxOccurrences: 1 << 14,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	bt := s.NewBatcher(128)
	bt.Audit(a)
	stream := auditStream(23, 3*window)
	for _, p := range stream {
		bt.Add(p)
	}
	bt.Flush()
	a.Flush()

	w := s.EffectiveWindow()
	exact := map[uint32]uint64{}
	for _, p := range stream[len(stream)-w:] {
		exact[p.Src]++
	}
	checked := 0
	for src, want := range exact {
		key := hierarchy.Prefix{Src: src, SrcLen: hierarchy.AddrBytes}
		got := a.Count(key)
		if got == 0 {
			continue // not in the sampled set
		}
		checked++
		if got != want {
			t.Fatalf("Count(%d) = %d, want %d", src, got, want)
		}
	}
	if checked == 0 {
		t.Fatal("no sampled keys to check")
	}
	if a.Overflows() != 0 {
		t.Fatalf("oracle overflowed %d times", a.Overflows())
	}
}

// TestQueryLatencyHistogram pins the query-plane SLO instrumentation:
// OutputTo observes its wall time, and Instrument exports the
// histogram under the dimensionality-split name.
func TestQueryLatencyHistogram(t *testing.T) {
	s := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.OneD{}, Window: 1 << 12, Counters: 512 * 5, V: 20, Seed: 7,
		},
		Shards: 2,
	})
	reg := obs.NewRegistry()
	s.Instrument(reg, nil, "test")
	bt := s.NewBatcher(128)
	for _, p := range auditStream(29, 1<<13) {
		bt.Add(p)
	}
	bt.Flush()
	var out []core.HeavyPrefix
	for i := 0; i < 4; i++ {
		out = s.OutputTo(0.05, out[:0])
	}
	snap := s.QueryLatency()
	if snap.Count != 4 {
		t.Fatalf("query histogram count = %d, want 4", snap.Count)
	}
	if snap.Max() == 0 {
		t.Fatal("query histogram recorded zero max latency")
	}
	h := reg.Histogram("memento_shard_query_1d_ns")
	var hs obs.HistSnapshot
	h.Snapshot(&hs)
	if hs.Count != 4 {
		t.Fatalf("exported histogram count = %d, want 4", hs.Count)
	}

	// 2D instances export under the 2D name.
	s2 := MustNewHHH(HHHConfig{
		Core: core.HHHConfig{
			Hierarchy: hierarchy.TwoD{}, Window: 1 << 12, Counters: 512 * 25, V: 50, Seed: 7,
		},
		Shards: 1,
	})
	reg2 := obs.NewRegistry()
	s2.Instrument(reg2, nil, "test")
	s2.OutputTo(0.5, nil)
	var hs2 obs.HistSnapshot
	reg2.Histogram("memento_shard_query_2d_ns").Snapshot(&hs2)
	if hs2.Count != 1 {
		t.Fatalf("2D exported histogram count = %d, want 1", hs2.Count)
	}
}
