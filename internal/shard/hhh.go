// Sharded H-Memento: the hierarchical analog of Sketch. Packets are
// hash-partitioned by flow key across N independently-locked core.HHH
// instances; a prefix aggregates flows from every shard, so prefix
// queries SUM per-shard estimates (the same merge the network-wide
// controller performs across measurement points, Section 4.3) and the
// HHH output is computed over the union of per-shard candidate sets.

package shard

import (
	"errors"
	"hash/maphash"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"memento/internal/core"
	"memento/internal/hhhset"
	"memento/internal/hierarchy"
)

// HHHConfig parameterizes a sharded H-Memento.
type HHHConfig struct {
	// Core holds the global parameters. Window is the GLOBAL window;
	// Counters the GLOBAL budget. Both are divided across shards.
	Core core.HHHConfig

	// Shards is N; zero defaults to runtime.GOMAXPROCS(0).
	Shards int

	// Hash overrides the packet→shard hash (nil: hash/maphash over the
	// packet's flow key with a per-instance random seed).
	Hash func(hierarchy.Packet) uint64
}

// HHH is a concurrent, hash-partitioned H-Memento. All methods are
// safe for concurrent use.
type HHH struct {
	shards []hhhSlot
	seed   maphash.Seed
	hash   func(hierarchy.Packet) uint64
	hier   hierarchy.Hierarchy
	window int     // global effective window: sum of shard windows
	comp   float64 // merged sampling compensation: sqrt(Σ compᵢ²)
	pool   sync.Pool

	// outPool recycles Output's working state (candidate buffer,
	// dedup index, HHH-set scratch) across queries and concurrent
	// callers, keeping the query path free of per-call maps.
	outPool sync.Pool

	// ingested counts packets across all shards; prefix queries use
	// it to skew-correct per-shard estimates (see scaleFor).
	ingested atomic.Uint64
}

// hhhSlot pads to a full 64-byte cache line like slot.
type hhhSlot struct {
	mu sync.Mutex
	hh *core.HHH
	_  [48]byte
}

// NewHHH validates cfg and builds a sharded H-Memento.
func NewHHH(cfg HHHConfig) (*HHH, error) {
	n := cfg.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, errors.New("shard: Shards must be at least 1")
	}
	if cfg.Core.Hierarchy == nil {
		return nil, errors.New("shard: HHHConfig.Hierarchy is required")
	}
	if cfg.Core.Window < n {
		return nil, errors.New("shard: Window smaller than shard count")
	}
	shardCfg := cfg.Core
	shardCfg.Window = (cfg.Core.Window + n - 1) / n
	h := cfg.Core.Hierarchy.H()
	if shardCfg.Counters == 0 && shardCfg.EpsilonA > 0 {
		shardCfg.Counters = int(4*float64(h)/shardCfg.EpsilonA) + 1
	}
	if shardCfg.Counters > 0 {
		shardCfg.Counters = (shardCfg.Counters + n - 1) / n
		if shardCfg.Counters < minShardCounters*h {
			shardCfg.Counters = minShardCounters * h
		}
	}
	baseSeed := cfg.Core.Seed
	if baseSeed == 0 {
		baseSeed = defaultSeed
	}

	s := &HHH{
		shards: make([]hhhSlot, n),
		seed:   maphash.MakeSeed(),
		hash:   cfg.Hash,
		hier:   cfg.Core.Hierarchy,
	}
	var varSum float64
	for i := range s.shards {
		shardCfg.Seed = baseSeed + uint64(i)*0x9e3779b97f4a7c15
		hh, err := core.NewHHH(shardCfg)
		if err != nil {
			return nil, err
		}
		s.shards[i].hh = hh
		s.window += hh.EffectiveWindow()
		varSum += hh.Compensation() * hh.Compensation()
	}
	// Per-shard sampling errors are independent, so their variances
	// add: the merged compensation is the root sum of squares, which
	// equals the single-instance 2·Z·√(V·W) for the global window.
	s.comp = math.Sqrt(varSum)
	s.pool.New = func() any {
		part := make([][]hierarchy.Packet, n)
		return &part
	}
	return s, nil
}

// MustNewHHH is NewHHH for statically valid configurations.
func MustNewHHH(cfg HHHConfig) *HHH {
	s, err := NewHHH(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// shardIndex maps a packet to its shard by flow key, so every prefix
// level of one flow's packets lands in the same shard.
func (s *HHH) shardIndex(p hierarchy.Packet) int {
	var h uint64
	if s.hash != nil {
		h = s.hash(p)
	} else {
		h = maphash.Comparable(s.seed, p)
	}
	return shardOf(h, len(s.shards))
}

// Shards returns N, the number of partitions.
func (s *HHH) Shards() int { return len(s.shards) }

// EffectiveWindow returns the global window actually maintained.
func (s *HHH) EffectiveWindow() int { return s.window }

// Hierarchy returns the configured prefix domain.
func (s *HHH) Hierarchy() hierarchy.Hierarchy { return s.hier }

// Update processes one packet, locking only its flow's shard.
func (s *HHH) Update(p hierarchy.Packet) {
	sl := &s.shards[s.shardIndex(p)]
	sl.mu.Lock()
	sl.hh.Update(p)
	sl.mu.Unlock()
	s.ingested.Add(1)
}

// Observe implements the load balancer's measurement hook
// (lb.Observer), making a sharded H-Memento a drop-in concurrent
// observer for the testbed proxy.
func (s *HHH) Observe(p hierarchy.Packet) { s.Update(p) }

// UpdateBatch partitions a batch by shard and ingests each slice
// through core.HHH's geometric-skip batch path under one lock
// acquisition per shard.
func (s *HHH) UpdateBatch(ps []hierarchy.Packet) {
	if len(ps) == 0 {
		return
	}
	s.ingested.Add(uint64(len(ps)))
	if len(s.shards) == 1 {
		sl := &s.shards[0]
		sl.mu.Lock()
		sl.hh.UpdateBatch(ps)
		sl.mu.Unlock()
		return
	}
	part := s.pool.Get().(*[][]hierarchy.Packet)
	for _, p := range ps {
		i := s.shardIndex(p)
		(*part)[i] = append((*part)[i], p)
	}
	for i := range *part {
		sub := (*part)[i]
		if len(sub) == 0 {
			continue
		}
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.hh.UpdateBatch(sub)
		sl.mu.Unlock()
		(*part)[i] = sub[:0]
	}
	s.pool.Put(part)
}

// Query returns the merged upper-bound estimate for prefix p: the sum
// of per-shard estimates (a prefix aggregates flows from every
// shard), each skew-corrected for its shard's traffic share.
func (s *HHH) Query(p hierarchy.Prefix) float64 {
	ingested := s.ingested.Load()
	var total float64
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		total += sl.hh.Query(p) * scaleFor(sl.hh.Sketch(), ingested, s.window)
		sl.mu.Unlock()
	}
	return total
}

// QueryBounds returns merged conservative bounds for prefix p (sums
// of the skew-corrected per-shard bounds).
func (s *HHH) QueryBounds(p hierarchy.Prefix) (upper, lower float64) {
	ingested := s.ingested.Load()
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		u, l := sl.hh.QueryBounds(p)
		scale := scaleFor(sl.hh.Sketch(), ingested, s.window)
		sl.mu.Unlock()
		upper += u * scale
		lower += l * scale
	}
	return upper, lower
}

// Bounds implements hhhset.Estimator over the merged shards.
func (s *HHH) Bounds(p hierarchy.Prefix) (upper, lower float64) { return s.QueryBounds(p) }

// outputScratch is the reusable working state of one Output call.
type outputScratch struct {
	cands   []hierarchy.Prefix
	sc      hhhset.Scratch
	entries []hhhset.Entry
}

// Output computes the global approximate HHH set for threshold theta:
// candidates are the union of per-shard candidate sets, estimated
// against the merged bounds with the root-sum-of-squares sampling
// compensation. Like every multi-shard read it is a fuzzy snapshot
// under concurrent writers. Working state comes from a pool shared by
// concurrent queries, so steady-state calls allocate only the
// returned slice.
func (s *HHH) Output(theta float64) []core.HeavyPrefix {
	o, _ := s.outPool.Get().(*outputScratch)
	if o == nil {
		o = &outputScratch{}
	}
	cands := o.cands[:0]
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		cands = sl.hh.Candidates(cands)
		sl.mu.Unlock()
	}
	// Cross-shard duplicates are fine: ComputeInto dedups candidates
	// through its own scratch index.
	threshold := theta * float64(s.window)
	entries := hhhset.ComputeInto(s.hier, s, cands, threshold, s.comp, &o.sc, o.entries[:0])
	out := make([]core.HeavyPrefix, len(entries))
	for i, e := range entries {
		out[i] = core.HeavyPrefix(e)
	}
	o.cands = cands
	o.entries = entries
	s.outPool.Put(o)
	return out
}

// Updates returns the total number of updates across shards.
func (s *HHH) Updates() uint64 {
	var total uint64
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		total += sl.hh.Sketch().Updates()
		sl.mu.Unlock()
	}
	return total
}

// Reset returns every shard to its initial empty state.
func (s *HHH) Reset() {
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.hh.Reset()
		sl.mu.Unlock()
	}
	s.ingested.Store(0)
}

// PacketBatcher is the per-goroutine ingestion buffer for HHH,
// mirroring Batcher: packets partition into per-shard sub-buffers at
// Add time and each sub-buffer flushes to its shard when full. Not
// safe for concurrent use; call Flush before discarding.
type PacketBatcher struct {
	s    *HHH
	bufs [][]hierarchy.Packet
	size int
}

// NewBatcher returns a packet ingestion buffer of the given per-shard
// size flushing into s. size <= 0 selects DefaultBatchSize.
func (s *HHH) NewBatcher(size int) *PacketBatcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	bufs := make([][]hierarchy.Packet, len(s.shards))
	for i := range bufs {
		bufs[i] = make([]hierarchy.Packet, 0, size)
	}
	return &PacketBatcher{s: s, bufs: bufs, size: size}
}

// Add buffers one packet, flushing its shard's sub-buffer if full.
func (b *PacketBatcher) Add(p hierarchy.Packet) {
	i := 0
	if len(b.bufs) > 1 {
		i = b.s.shardIndex(p)
	}
	b.bufs[i] = append(b.bufs[i], p)
	if len(b.bufs[i]) >= b.size {
		b.flushShard(i)
	}
}

// Flush drains every sub-buffer into the sharded instance.
func (b *PacketBatcher) Flush() {
	for i := range b.bufs {
		if len(b.bufs[i]) > 0 {
			b.flushShard(i)
		}
	}
}

func (b *PacketBatcher) flushShard(i int) {
	sl := &b.s.shards[i]
	sl.mu.Lock()
	sl.hh.UpdateBatch(b.bufs[i])
	sl.mu.Unlock()
	b.s.ingested.Add(uint64(len(b.bufs[i])))
	b.bufs[i] = b.bufs[i][:0]
}
