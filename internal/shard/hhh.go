// Sharded H-Memento: the hierarchical analog of Sketch. Packets are
// hash-partitioned by flow key across N independently-locked core.HHH
// instances; a prefix aggregates flows from every shard, so prefix
// queries SUM per-shard estimates (the same merge the network-wide
// controller performs across measurement points, Section 4.3) and the
// HHH output is computed over the union of per-shard candidate sets.
//
// Every multi-shard read runs on the snapshot query plane: the
// shard's queryable state is captured under exactly one lock
// acquisition per shard (core.HHH.SnapshotInto, a few slab memmoves)
// and the merge — including the full HHH-set computation of Output —
// happens lock-free on the immutable copies. The previous design used
// the sharded instance itself as the hhhset.Estimator, so every
// Bounds call inside ComputeInto locked all N shards: O(candidates ×
// levels × shards) lock round-trips per Output, stalling ingestion
// exactly when monitoring queries most.

package shard

import (
	"errors"
	"hash/maphash"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memento/internal/audit"
	"memento/internal/core"
	"memento/internal/hierarchy"
	"memento/internal/obs"
)

// HHHConfig parameterizes a sharded H-Memento.
type HHHConfig struct {
	// Core holds the global parameters. Window is the GLOBAL window;
	// Counters the GLOBAL budget. Both are divided across shards.
	Core core.HHHConfig

	// Shards is N; zero defaults to runtime.GOMAXPROCS(0).
	Shards int

	// Hash overrides the packet→shard hash (nil: hierarchy.PrefixHasher
	// over the packet's fully-specified prefix with a per-instance
	// random salt — the same fast splitmix family the per-shard core
	// indexes use, and keyed by the flow identity the hierarchy
	// defines, so e.g. a 1D source hierarchy keeps all of a source's
	// packets on one shard regardless of destination).
	Hash func(hierarchy.Packet) uint64
}

// HHH is a concurrent, hash-partitioned H-Memento. All methods are
// safe for concurrent use.
type HHH struct {
	shards []hhhSlot
	hash   func(hierarchy.Packet) uint64 // never nil after NewHHH
	hier   hierarchy.Hierarchy
	window int     // global effective window: sum of shard windows
	comp   float64 // merged sampling compensation: sqrt(Σ compᵢ²)
	pool   sync.Pool

	// queryPool recycles the working state of multi-shard reads
	// (per-shard snapshots, skew corrections, HHH-set scratch) across
	// queries and concurrent callers, keeping the query path
	// allocation-free in steady state.
	queryPool sync.Pool

	// readLocks, when set (tests only), counts read-plane lock
	// acquisitions so the one-lock-pass-per-shard contract is
	// assertable. Nil in production: the probe is never consulted on
	// the ingest path.
	readLocks *atomic.Uint64

	// trackers, when set (EnableDeltaCheckpoints), are the per-shard
	// replication chain encoders behind WriteChain. Guarded by the
	// single-caller contract of WriteChain, not by the shard locks.
	trackers []*deltaTracker

	// queryHist is the query-plane SLO histogram: OutputTo wall time
	// in nanoseconds. Wait-free to observe; Instrument exports it as
	// memento_shard_query_{1d,2d}_ns split by the hierarchy's
	// dimensionality (the 2D glb fallback makes the two populations
	// structurally different — merging them would hide a 2D
	// regression under 1D volume).
	queryHist obs.Histogram
}

// hhhSlot pads to a full 64-byte cache line like slot.
type hhhSlot struct {
	mu sync.Mutex
	hh *core.HHH // guarded by mu
	_  [48]byte
}

// hhhQuery is the pooled working state of one multi-shard read: a
// point-in-time snapshot of every shard, the point-probe scratch, and
// the Merger that turns the captured snapshots into a global HHH set.
type hhhQuery struct {
	shards []core.HHHSnapshot
	views  []*core.HHHSnapshot // stable pointers into shards, for the Merger
	scales []float64           // point-probe skew corrections

	// probes holds the per-shard results of one point query
	// (probeAll); point queries never copy slabs.
	probes []pointProbe

	// m owns the merged estimate table and HHH-set scratch; the same
	// math merges agent snapshots in netwide and checkpoint files in
	// mementoctl.
	m Merger
}

// pointProbe is one shard's locked O(1) read for a point query. The
// effective window rides along so the skew correction never touches
// the shard outside its lock pass.
type pointProbe struct {
	upper, lower float64
	updates      uint64
	effWindow    int
}

// maxRetainedQueryCap bounds the candidate/entry capacity a pooled
// hhhQuery keeps between uses, mirroring maxRetainedBatchCap for the
// ingest-side pools: one pathological query (e.g. during an overflow
// table blow-up) must not pin its high-water scratch forever.
const maxRetainedQueryCap = 1 << 14

// NewHHH validates cfg and builds a sharded H-Memento.
func NewHHH(cfg HHHConfig) (*HHH, error) {
	n := cfg.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, errors.New("shard: Shards must be at least 1")
	}
	if cfg.Core.Hierarchy == nil {
		return nil, errors.New("shard: HHHConfig.Hierarchy is required")
	}
	if cfg.Core.Window < n {
		return nil, errors.New("shard: Window smaller than shard count")
	}
	shardCfg := cfg.Core
	shardCfg.Window = (cfg.Core.Window + n - 1) / n
	h := cfg.Core.Hierarchy.H()
	if shardCfg.Counters == 0 && shardCfg.EpsilonA > 0 {
		shardCfg.Counters = int(4*float64(h)/shardCfg.EpsilonA) + 1
	}
	if shardCfg.Counters > 0 {
		shardCfg.Counters = (shardCfg.Counters + n - 1) / n
		if shardCfg.Counters < minShardCounters*h {
			shardCfg.Counters = minShardCounters * h
		}
	}
	baseSeed := cfg.Core.Seed
	if baseSeed == 0 {
		baseSeed = defaultSeed
	}

	s := &HHH{
		shards: make([]hhhSlot, n),
		hash:   cfg.Hash,
		hier:   cfg.Core.Hierarchy,
	}
	if s.hash == nil {
		// Default routing: the splitmix prefix hasher over the flow's
		// fully-specified prefix, salted per instance (stable within a
		// process, not across runs — provide Hash for replayable shard
		// assignment). Cheaper per packet than maphash.Comparable and
		// keyed by the hierarchy's flow identity.
		salt := maphash.Comparable(maphash.MakeSeed(), uint64(0))
		ph := hierarchy.PrefixHasher(salt)
		hier := cfg.Core.Hierarchy
		s.hash = func(p hierarchy.Packet) uint64 { return ph(hier.Fully(p)) }
	}
	var varSum float64
	for i := range s.shards {
		shardCfg.Seed = baseSeed + uint64(i)*0x9e3779b97f4a7c15
		hh, err := core.NewHHH(shardCfg)
		if err != nil {
			return nil, err
		}
		//memento:allow lock "instance under construction; not yet shared"
		s.shards[i].hh = hh
		s.window += hh.EffectiveWindow()
		varSum += hh.Compensation() * hh.Compensation()
	}
	// Per-shard sampling errors are independent, so their variances
	// add: the merged compensation is the root sum of squares, which
	// equals the single-instance 2·Z·√(V·W) for the global window.
	s.comp = math.Sqrt(varSum)
	s.initPools()
	return s, nil
}

// initPools wires the partition and query pools; shared by NewHHH and
// RestoreHHH.
func (s *HHH) initPools() {
	n := len(s.shards)
	s.pool.New = func() any {
		part := make([][]hierarchy.Packet, n)
		return &part
	}
	s.queryPool.New = func() any {
		q := &hhhQuery{
			shards: make([]core.HHHSnapshot, n),
			views:  make([]*core.HHHSnapshot, n),
			scales: make([]float64, n),
			probes: make([]pointProbe, n),
		}
		for i := range q.shards {
			q.views[i] = &q.shards[i]
		}
		return q
	}
}

// MustNewHHH is NewHHH for statically valid configurations.
func MustNewHHH(cfg HHHConfig) *HHH {
	s, err := NewHHH(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// shardIndex maps a packet to its shard by flow key, so every prefix
// level of one flow's packets lands in the same shard.
func (s *HHH) shardIndex(p hierarchy.Packet) int {
	return shardOf(s.hash(p), len(s.shards))
}

// Shards returns N, the number of partitions.
func (s *HHH) Shards() int { return len(s.shards) }

// EffectiveWindow returns the global window actually maintained.
func (s *HHH) EffectiveWindow() int { return s.window }

// Compensation returns the merged sampling compensation (√Σ compᵢ²;
// 0 when no shard samples). With QueryBounds it makes the sharded
// instance an audit.Estimator: exact ≤ upper + Compensation and
// exact ≥ lower − Compensation, each with probability 1−δ.
func (s *HHH) Compensation() float64 { return s.comp }

// Hierarchy returns the configured prefix domain.
func (s *HHH) Hierarchy() hierarchy.Hierarchy { return s.hier }

// Update processes one packet, locking only its flow's shard.
//memento:noalloc
func (s *HHH) Update(p hierarchy.Packet) {
	sl := &s.shards[s.shardIndex(p)]
	sl.mu.Lock()
	sl.hh.Update(p)
	sl.mu.Unlock()
}

// Observe implements the load balancer's measurement hook
// (lb.Observer), making a sharded H-Memento a drop-in concurrent
// observer for the testbed proxy.
func (s *HHH) Observe(p hierarchy.Packet) { s.Update(p) }

// UpdateBatch partitions a batch by shard and ingests each slice
// through core.HHH's geometric-skip batch path under one lock
// acquisition per shard.
//memento:noalloc
func (s *HHH) UpdateBatch(ps []hierarchy.Packet) {
	if len(ps) == 0 {
		return
	}
	if len(s.shards) == 1 {
		sl := &s.shards[0]
		sl.mu.Lock()
		sl.hh.UpdateBatch(ps)
		sl.mu.Unlock()
		return
	}
	//memento:allow alloc "pool miss allocates the partition scratch; steady state reuses"
	part := s.pool.Get().(*[][]hierarchy.Packet)
	for _, p := range ps {
		i := s.shardIndex(p)
		//memento:allow alloc "appends into pooled per-shard scratch; growth amortized by the pool"
		(*part)[i] = append((*part)[i], p)
	}
	for i := range *part {
		sub := (*part)[i]
		if len(sub) == 0 {
			continue
		}
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.hh.UpdateBatch(sub)
		sl.mu.Unlock()
	}
	s.putPartition(part)
}

// putPartition recycles a packet partition, dropping sub-buffers
// whose capacity ballooned past maxRetainedBatchCap (the packet
// analog of Sketch.putPartition).
func (s *HHH) putPartition(part *[][]hierarchy.Packet) {
	for i := range *part {
		if cap((*part)[i]) > maxRetainedBatchCap {
			(*part)[i] = nil
		} else {
			(*part)[i] = (*part)[i][:0]
		}
	}
	//memento:allow alloc "Pool.Put's per-P chain growth is a one-time cold cost"
	s.pool.Put(part)
}

// lockShardRead takes one read-plane lock, feeding the test probe.
// The ingest path locks directly: the probe costs it nothing.
//memento:locks sl.mu
func (s *HHH) lockShardRead(sl *hhhSlot) {
	sl.mu.Lock()
	if s.readLocks != nil {
		s.readLocks.Add(1)
	}
}

// getQuery returns pooled multi-shard read state.
func (s *HHH) getQuery() *hhhQuery {
	//memento:allow alloc "pool miss allocates the query scratch; steady state reuses"
	return s.queryPool.Get().(*hhhQuery)
}

// putQuery recycles q, capping every retained scratch capacity via
// the Merger's pool hygiene hook. (The per-shard snapshot slabs
// mirror the live sketches' own slab sizes — keyidx never shrinks —
// so they cannot outgrow what the sketch itself retains.)
func (s *HHH) putQuery(q *hhhQuery) {
	q.m.Trim(maxRetainedQueryCap)
	//memento:allow alloc "Pool.Put's per-P chain growth is a one-time cold cost"
	s.queryPool.Put(q)
}

// snapshotAll captures every shard — exactly one lock acquisition per
// shard, held only for the slab copy. The Merger derives each shard's
// skew correction from the captured update counts, so the whole read
// sees one consistent traffic split (the previous design re-read the
// global counter and re-locked shards per Bounds call, so a single
// query could mix several traffic splits).
func (s *HHH) snapshotAll(q *hhhQuery) {
	for i := range s.shards {
		sl := &s.shards[i]
		s.lockShardRead(sl)
		sl.hh.SnapshotInto(&q.shards[i])
		sl.mu.Unlock()
	}
}

// probeAll reads one prefix's bounds and each shard's update count in
// a single lock pass — the point-query analog of snapshotAll: no slab
// copies (a point probe is O(1) per shard, so capturing whole
// snapshots would cost more than the read), but the same
// skew-correction-from-one-pass semantics. Results land in q.probes.
func (s *HHH) probeAll(q *hhhQuery, p hierarchy.Prefix) {
	var total uint64
	for i := range s.shards {
		sl := &s.shards[i]
		s.lockShardRead(sl)
		u, l := sl.hh.QueryBounds(p)
		upd := sl.hh.Sketch().Updates()
		win := sl.hh.EffectiveWindow()
		sl.mu.Unlock()
		q.probes[i] = pointProbe{upper: u, lower: l, updates: upd, effWindow: win}
		total += upd
	}
	for i := range q.probes {
		q.scales[i] = scaleFrom(q.probes[i].updates, q.probes[i].effWindow, total, s.window)
	}
}

// Query returns the merged upper-bound estimate for prefix p: the sum
// of per-shard estimates (a prefix aggregates flows from every
// shard), each skew-corrected for its shard's traffic share. One lock
// pass per shard, held only for an O(1) probe.
func (s *HHH) Query(p hierarchy.Prefix) float64 {
	q := s.getQuery()
	s.probeAll(q, p)
	var total float64
	for i := range q.probes {
		total += q.probes[i].upper * q.scales[i]
	}
	s.putQuery(q)
	return total
}

// QueryBounds returns merged conservative bounds for prefix p (sums
// of the skew-corrected per-shard bounds), with the same one-lock-
// pass-per-shard probe as Query.
func (s *HHH) QueryBounds(p hierarchy.Prefix) (upper, lower float64) {
	q := s.getQuery()
	s.probeAll(q, p)
	for i := range q.probes {
		upper += q.probes[i].upper * q.scales[i]
		lower += q.probes[i].lower * q.scales[i]
	}
	s.putQuery(q)
	return upper, lower
}

// Bounds implements hhhset.Estimator over the merged shards. Callers
// issuing many Bounds calls should snapshot once instead (Output
// does); this per-call form re-captures every shard.
func (s *HHH) Bounds(p hierarchy.Prefix) (upper, lower float64) { return s.QueryBounds(p) }

// Output computes the global approximate HHH set for threshold theta:
// candidates are the union of per-shard tracked prefixes, estimated
// against the merged snapshot bounds with the root-sum-of-squares
// sampling compensation. Each shard is locked exactly once, for the
// duration of its snapshot copy; everything after — the merged
// estimate table, candidate filtering, and the HHH-set computation,
// all owned by the pooled Merger — runs lock-free, so concurrent
// ingestion proceeds while the set is computed. The result is a fuzzy
// snapshot under concurrent writers, consistent per query.
// Steady-state calls allocate only the returned slice; OutputTo
// recycles even that.
func (s *HHH) Output(theta float64) []core.HeavyPrefix { return s.OutputTo(theta, nil) }

// OutputTo is Output appending to caller-provided dst: callers that
// recycle dst query without allocating. The merged window and
// compensation the Merger derives from the captured snapshots equal
// the construction-time globals (Σ per-shard windows, √Σ compᵢ²), so
// this is the same set the pre-Merger implementation computed.
//memento:noalloc
func (s *HHH) OutputTo(theta float64, dst []core.HeavyPrefix) []core.HeavyPrefix {
	start := time.Now()
	q := s.getQuery()
	s.snapshotAll(q)
	dst = q.m.Output(s.hier, q.views, theta, dst)
	s.putQuery(q)
	s.queryHist.Observe(uint64(time.Since(start)))
	return dst
}

// QueryLatency snapshots the query-plane SLO histogram (OutputTo wall
// nanoseconds).
func (s *HHH) QueryLatency() obs.HistSnapshot {
	var snap obs.HistSnapshot
	s.queryHist.Snapshot(&snap)
	return snap
}

// Updates returns the total number of updates across shards.
func (s *HHH) Updates() uint64 {
	var total uint64
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		total += sl.hh.Sketch().Updates()
		sl.mu.Unlock()
	}
	return total
}

// Reset returns every shard to its initial empty state.
func (s *HHH) Reset() {
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		sl.hh.Reset()
		sl.mu.Unlock()
	}
}

// PacketBatcher is the per-goroutine ingestion buffer for HHH,
// mirroring Batcher: packets partition into per-shard sub-buffers at
// Add time and each sub-buffer flushes to its shard when full. Not
// safe for concurrent use; call Flush before discarding.
type PacketBatcher struct {
	s    *HHH
	bufs [][]hierarchy.Packet //memento:reused (one per shard, cap-bounded by size)
	size int
	aud  *audit.Auditor // optional accuracy-plane tee; nil when unaudited
}

// NewBatcher returns a packet ingestion buffer of the given per-shard
// size flushing into s. size <= 0 selects DefaultBatchSize.
func (s *HHH) NewBatcher(size int) *PacketBatcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	bufs := make([][]hierarchy.Packet, len(s.shards))
	for i := range bufs {
		bufs[i] = make([]hierarchy.Packet, 0, size)
	}
	return &PacketBatcher{s: s, bufs: bufs, size: size}
}

// Audit tees every packet this batcher ingests into a (the shadow
// oracle of the accuracy plane); nil detaches. The tee rides the
// batcher's single-writer contract — one auditor per batcher, and the
// auditor must not be shared across batchers. The audited Add path
// hashes each packet exactly once: the shard-routing hash doubles as
// the auditor's sampling hash, so the per-packet overhead is one
// masked compare and a staged append (BenchmarkAuditedIngest gates
// it at 0 allocs/op). The sampled key set therefore derives from the
// instance's routing hash — set HHHConfig.Hash for a replayable
// sample.
func (b *PacketBatcher) Audit(a *audit.Auditor) { b.aud = a }

// Add buffers one packet, flushing its shard's sub-buffer if full.
//memento:noalloc
func (b *PacketBatcher) Add(p hierarchy.Packet) {
	i := 0
	if b.aud != nil {
		h := b.s.hash(p)
		b.aud.ObservePacket(p, h)
		if len(b.bufs) > 1 {
			i = shardOf(h, len(b.bufs))
		}
	} else if len(b.bufs) > 1 {
		i = b.s.shardIndex(p)
	}
	b.bufs[i] = append(b.bufs[i], p)
	if len(b.bufs[i]) >= b.size {
		b.flushShard(i)
	}
}

// Flush drains every sub-buffer into the sharded instance.
//memento:noalloc
func (b *PacketBatcher) Flush() {
	for i := range b.bufs {
		if len(b.bufs[i]) > 0 {
			b.flushShard(i)
		}
	}
}

func (b *PacketBatcher) flushShard(i int) {
	sl := &b.s.shards[i]
	sl.mu.Lock()
	sl.hh.UpdateBatch(b.bufs[i])
	sl.mu.Unlock()
	b.bufs[i] = b.bufs[i][:0]
}
