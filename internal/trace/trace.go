// Package trace generates the synthetic packet traces the evaluation
// runs on, standing in for the paper's real captures (CAIDA backbone,
// university datacenter, UCLA edge — Section 6 "Traces"), which are not
// redistributable. See DESIGN.md §2 for the substitution rationale.
//
// Two properties of the real traces matter to every experiment:
//
//  1. The flow-size distribution's skew (how concentrated traffic is on
//     elephant flows), which drives both sketch accuracy and Space
//     Saving churn. Profiles parameterize a Zipf popularity law.
//  2. The aggregation structure of addresses (flows clustering into
//     subnets), which drives the HHH experiments. Addresses are built
//     octet-by-octet from skewed per-octet distributions, producing
//     realistic heavy subnets at every prefix length.
//
// Generators are deterministic given (profile, seed); recorded runs
// (DESIGN.md §7) note both.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"memento/internal/hierarchy"
	"memento/internal/rng"
)

// Profile describes a synthetic workload family.
type Profile struct {
	// Name labels output rows ("Backbone", "Datacenter", "Edge").
	Name string
	// FlowSkew is the Zipf exponent of flow popularity. Higher values
	// concentrate traffic on fewer flows.
	FlowSkew float64
	// Flows is the number of distinct flows in the universe.
	Flows int
	// OctetSkew is the Zipf exponent used to draw each address octet;
	// it shapes how strongly flows aggregate into heavy subnets.
	OctetSkew float64
}

// The three evaluation profiles. Skews are chosen so that the relative
// ordering matches the paper's observations: the Datacenter trace is
// the most skewed ("mainly evident in the skewed Datacenter trace",
// Fig. 5), the Backbone trace is heavy-tailed with a large universe,
// and the Edge trace sits in between with moderate skew.
var (
	Backbone   = Profile{Name: "Backbone", FlowSkew: 1.0, Flows: 1 << 20, OctetSkew: 0.8}
	Datacenter = Profile{Name: "Datacenter", FlowSkew: 1.3, Flows: 1 << 16, OctetSkew: 1.2}
	Edge       = Profile{Name: "Edge", FlowSkew: 0.9, Flows: 1 << 18, OctetSkew: 1.0}
)

// Profiles lists the built-in workload families in presentation order.
func Profiles() []Profile { return []Profile{Edge, Datacenter, Backbone} }

// ProfileByName resolves a profile by its (case-sensitive) name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}

// Generator produces a deterministic packet stream for a profile.
type Generator struct {
	profile Profile
	src     *rng.Source
	flows   []hierarchy.Packet
	popular *rng.Alias
}

// NewGenerator builds the flow universe and popularity table.
func NewGenerator(p Profile, seed uint64) (*Generator, error) {
	if p.Flows <= 0 {
		return nil, errors.New("trace: profile needs a positive flow count")
	}
	if p.FlowSkew < 0 || p.OctetSkew < 0 {
		return nil, errors.New("trace: negative skew")
	}
	src := rng.New(seed ^ 0x74726163652e2e2e) // "trace..."
	g := &Generator{
		profile: p,
		src:     src,
		flows:   make([]hierarchy.Packet, p.Flows),
	}
	// Per-octet skewed distributions with independent random
	// permutations per position, so heavy subnets land on arbitrary
	// byte values rather than always 0.
	octetAlias, err := rng.NewAlias(src, rng.ZipfWeights(256, p.OctetSkew))
	if err != nil {
		return nil, err
	}
	var perms [8][256]byte
	for d := range perms {
		for i := range perms[d] {
			perms[d][i] = byte(i)
		}
		for i := 255; i > 0; i-- {
			j := src.Intn(i + 1)
			perms[d][i], perms[d][j] = perms[d][j], perms[d][i]
		}
	}
	drawAddr := func(permBase int) uint32 {
		var a uint32
		for b := 0; b < 4; b++ {
			a = a<<8 | uint32(perms[permBase+b][octetAlias.Next()])
		}
		return a
	}
	for i := range g.flows {
		g.flows[i] = hierarchy.Packet{Src: drawAddr(0), Dst: drawAddr(4)}
	}
	g.popular, err = rng.NewAlias(src, rng.ZipfWeights(p.Flows, p.FlowSkew))
	if err != nil {
		return nil, err
	}
	return g, nil
}

// MustNewGenerator panics on error; for tests and examples.
func MustNewGenerator(p Profile, seed uint64) *Generator {
	g, err := NewGenerator(p, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.profile }

// Next returns the next packet of the stream.
func (g *Generator) Next() hierarchy.Packet {
	return g.flows[g.popular.Next()]
}

// Generate appends n packets to dst and returns it.
func (g *Generator) Generate(n int, dst []hierarchy.Packet) []hierarchy.Packet {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}

// FloodConfig parameterizes the HTTP-flood injection of Section 6.4.
type FloodConfig struct {
	// Subnets is the number of attacking /8 subnets (the paper uses
	// 50 randomly chosen 8-bit subnets).
	Subnets int
	// Rate is the probability that an output line is a flood packet
	// once the flood starts (the paper uses 0.7, making the attack 70%
	// of traffic).
	Rate float64
	// Start is the base-trace line at which the flood begins. Negative
	// means "choose uniformly in [0, StartMax)".
	Start int
	// StartMax bounds the random start (the paper draws from (0, 10⁶)).
	StartMax int
	// Seed fixes the injection randomness.
	Seed uint64
}

// Flood is an injected attack overlaid on a base trace.
type Flood struct {
	// Packets is the combined trace.
	Packets []hierarchy.Packet
	// Subnets holds the attacking /8 network addresses (first octet
	// significant, rest zero).
	Subnets []uint32
	// Start is the index in Packets where the flood begins.
	Start int
	// IsFlood marks, per packet, whether it belongs to the attack.
	IsFlood []bool
}

// Inject overlays a flood on base following the paper's recipe:
// until the start line the trace is unmodified; from there on, each
// output line is a flood packet with probability Rate (from a uniformly
// chosen attacking subnet, random host within it) and otherwise the
// next original line.
func Inject(base []hierarchy.Packet, cfg FloodConfig) (*Flood, error) {
	if cfg.Subnets <= 0 {
		return nil, errors.New("trace: flood needs at least one subnet")
	}
	if cfg.Rate <= 0 || cfg.Rate >= 1 {
		return nil, errors.New("trace: flood rate must be in (0, 1)")
	}
	src := rng.New(cfg.Seed ^ 0x666c6f6f64) // "flood"
	start := cfg.Start
	if start < 0 {
		max := cfg.StartMax
		if max <= 0 || max > len(base) {
			max = len(base)
		}
		if max == 0 {
			return nil, errors.New("trace: empty base trace")
		}
		start = src.Intn(max)
	}
	if start > len(base) {
		start = len(base)
	}
	f := &Flood{Start: start}
	seen := map[byte]bool{}
	for len(f.Subnets) < cfg.Subnets {
		b := byte(src.Uint32())
		if seen[b] {
			continue
		}
		seen[b] = true
		f.Subnets = append(f.Subnets, uint32(b)<<24)
	}
	f.Packets = append(f.Packets, base[:start]...)
	f.IsFlood = make([]bool, start, len(base)*2)
	for next := start; next < len(base); {
		if src.Float64() < cfg.Rate {
			subnet := f.Subnets[src.Intn(len(f.Subnets))]
			host := subnet | (uint32(src.Uint64()) & 0x00ffffff)
			f.Packets = append(f.Packets, hierarchy.Packet{Src: host, Dst: base[next].Dst})
			f.IsFlood = append(f.IsFlood, true)
		} else {
			f.Packets = append(f.Packets, base[next])
			f.IsFlood = append(f.IsFlood, false)
			next++
		}
	}
	return f, nil
}

// magic identifies the binary trace file format.
var magic = [4]byte{'M', 'T', 'R', '1'}

// WriteTo serializes packets in the binary trace format (a 4-byte magic
// then 8 bytes per packet, big-endian src then dst).
func WriteTo(w io.Writer, packets []hierarchy.Packet) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, p := range packets {
		binary.BigEndian.PutUint32(buf[0:4], p.Src)
		binary.BigEndian.PutUint32(buf[4:8], p.Dst)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrom parses a binary trace written by WriteTo.
func ReadFrom(r io.Reader) ([]hierarchy.Packet, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var head [4]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if head != magic {
		return nil, errors.New("trace: bad magic; not a trace file")
	}
	var out []hierarchy.Packet
	var buf [8]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: truncated record: %w", err)
		}
		out = append(out, hierarchy.Packet{
			Src: binary.BigEndian.Uint32(buf[0:4]),
			Dst: binary.BigEndian.Uint32(buf[4:8]),
		})
	}
}
