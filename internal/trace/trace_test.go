package trace

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"memento/internal/hierarchy"
)

func TestProfileByName(t *testing.T) {
	for _, want := range Profiles() {
		got, err := ProfileByName(want.Name)
		if err != nil || got.Name != want.Name {
			t.Fatalf("ProfileByName(%q): %v", want.Name, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile should fail")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := MustNewGenerator(Backbone, 7)
	b := MustNewGenerator(Backbone, 7)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	c := MustNewGenerator(Backbone, 8)
	diff := 0
	for i := 0; i < 10000; i++ {
		if a.Next() != c.Next() {
			diff++
		}
	}
	if diff < 5000 {
		t.Fatalf("different seeds too similar: only %d/10000 differ", diff)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Profile{Flows: 0}, 1); err == nil {
		t.Fatal("zero flows should fail")
	}
	if _, err := NewGenerator(Profile{Flows: 10, FlowSkew: -1}, 1); err == nil {
		t.Fatal("negative skew should fail")
	}
}

// topShare returns the traffic share of the top fraction of flows.
func topShare(pkts []hierarchy.Packet, frac float64) float64 {
	counts := map[hierarchy.Packet]int{}
	for _, p := range pkts {
		counts[p]++
	}
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	k := int(math.Ceil(frac * float64(len(all))))
	if k < 1 {
		k = 1
	}
	top := 0
	for _, c := range all[:k] {
		top += c
	}
	return float64(top) / float64(len(pkts))
}

func TestSkewOrdering(t *testing.T) {
	// The paper's observation: Datacenter is the most skewed trace.
	const n = 300000
	dc := topShare(MustNewGenerator(Datacenter, 1).Generate(n, nil), 0.01)
	bb := topShare(MustNewGenerator(Backbone, 1).Generate(n, nil), 0.01)
	ed := topShare(MustNewGenerator(Edge, 1).Generate(n, nil), 0.01)
	if !(dc > bb && dc > ed) {
		t.Fatalf("Datacenter must be most skewed: dc=%.3f bb=%.3f edge=%.3f", dc, bb, ed)
	}
	// All profiles must be meaningfully skewed (top 1% of flows well
	// above 1% of traffic).
	for name, share := range map[string]float64{"dc": dc, "bb": bb, "edge": ed} {
		if share < 0.05 {
			t.Fatalf("%s barely skewed: top 1%% share = %.3f", name, share)
		}
	}
}

func TestSubnetAggregation(t *testing.T) {
	// Octet skew must produce heavy /8s — the HHH experiments depend
	// on subnet structure existing at all prefix lengths.
	pkts := MustNewGenerator(Backbone, 3).Generate(200000, nil)
	counts := map[byte]int{}
	for _, p := range pkts {
		counts[byte(p.Src>>24)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	share := float64(max) / float64(len(pkts))
	if share < 0.02 {
		t.Fatalf("heaviest /8 holds only %.4f of traffic; no subnet structure", share)
	}
	if share > 0.9 {
		t.Fatalf("heaviest /8 holds %.4f; degenerate aggregation", share)
	}
}

func TestGenerateAppends(t *testing.T) {
	g := MustNewGenerator(Edge, 5)
	buf := g.Generate(10, nil)
	buf = g.Generate(5, buf)
	if len(buf) != 15 {
		t.Fatalf("len = %d", len(buf))
	}
}

func TestInjectFlood(t *testing.T) {
	base := MustNewGenerator(Backbone, 11).Generate(100000, nil)
	f, err := Inject(base, FloodConfig{Subnets: 50, Rate: 0.7, Start: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Subnets) != 50 {
		t.Fatalf("subnets = %d", len(f.Subnets))
	}
	if f.Start != 20000 {
		t.Fatalf("start = %d", f.Start)
	}
	// Distinct subnets, stored as /8 network addresses.
	seen := map[uint32]bool{}
	for _, s := range f.Subnets {
		if s&0x00ffffff != 0 {
			t.Fatalf("subnet %08x has host bits set", s)
		}
		if seen[s] {
			t.Fatalf("duplicate subnet %08x", s)
		}
		seen[s] = true
	}
	// Before start: identical to base and unflagged.
	for i := 0; i < f.Start; i++ {
		if f.Packets[i] != base[i] || f.IsFlood[i] {
			t.Fatalf("pre-flood packet %d modified", i)
		}
	}
	// After start: flood fraction ≈ Rate, every flagged packet sourced
	// from an attacking subnet.
	flood, total := 0, 0
	for i := f.Start; i < len(f.Packets); i++ {
		total++
		if f.IsFlood[i] {
			flood++
			if !seen[f.Packets[i].Src&0xff000000] {
				t.Fatalf("flood packet %d from non-attack subnet %08x", i, f.Packets[i].Src)
			}
		}
	}
	got := float64(flood) / float64(total)
	if math.Abs(got-0.7) > 0.02 {
		t.Fatalf("flood fraction %.3f, want ≈ 0.7", got)
	}
	// All original lines preserved in order.
	kept := make([]hierarchy.Packet, 0, len(base))
	for i, p := range f.Packets {
		if !f.IsFlood[i] {
			kept = append(kept, p)
		}
	}
	if len(kept) != len(base) {
		t.Fatalf("original lines: %d, want %d", len(kept), len(base))
	}
	for i := range kept {
		if kept[i] != base[i] {
			t.Fatalf("original line %d reordered", i)
		}
	}
}

func TestInjectValidation(t *testing.T) {
	base := make([]hierarchy.Packet, 10)
	if _, err := Inject(base, FloodConfig{Subnets: 0, Rate: 0.5}); err == nil {
		t.Fatal("zero subnets should fail")
	}
	if _, err := Inject(base, FloodConfig{Subnets: 5, Rate: 1.5}); err == nil {
		t.Fatal("bad rate should fail")
	}
	if _, err := Inject(nil, FloodConfig{Subnets: 5, Rate: 0.5, Start: -1}); err == nil {
		t.Fatal("empty base with random start should fail")
	}
}

func TestInjectRandomStart(t *testing.T) {
	base := MustNewGenerator(Edge, 12).Generate(5000, nil)
	f, err := Inject(base, FloodConfig{Subnets: 3, Rate: 0.5, Start: -1, StartMax: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if f.Start < 0 || f.Start >= 1000 {
		t.Fatalf("random start %d outside [0, 1000)", f.Start)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	pkts := MustNewGenerator(Datacenter, 13).Generate(1234, nil)
	var buf bytes.Buffer
	if err := WriteTo(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("round trip length %d, want %d", len(got), len(pkts))
	}
	for i := range got {
		if got[i] != pkts[i] {
			t.Fatalf("packet %d corrupted", i)
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	// Truncated record after a valid header.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{1, 2, 3})
	if _, err := ReadFrom(&buf); err == nil {
		t.Fatal("truncated record should fail")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}
