// Package spacesaving implements the Space Saving algorithm of
// Metwally, Agrawal and El Abbadi (ICDT 2005) with the classic
// "stream summary" data structure, giving strict O(1) worst-case
// updates.
//
// Space Saving is the substrate of every algorithm in this repository
// (paper Section 2): Memento uses one instance for approximate in-frame
// counting, MST uses H instances (one per prefix pattern), and RHHH
// randomly updates one of H instances. Allocated with k counters and
// fed N items, it guarantees for every key x:
//
//	f(x) ≤ Query(x) ≤ f(x) + N/k
//
// and for monitored keys the per-counter Err field bounds the
// overestimate: Count − Err ≤ f(x) ≤ Count.
//
// The implementation is slab-backed and allocation-free after
// construction: counters and buckets live in fixed arrays linked by
// int32 indices, and the key→counter index is a keyidx.Index — a flat
// open-addressing table instead of a Go map — so updates touch no
// pointers the GC cares about and Flush is O(1) via generation stamps,
// which Memento exploits at every frame boundary. Instances are not
// safe for concurrent use.
package spacesaving

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"memento/internal/keyidx"
	"memento/internal/obs"
)

const nilIdx = int32(-1)

// counter is one monitored (key, count) pair. Counters with equal
// counts are chained into the doubly linked list of their bucket.
type counter[K comparable] struct {
	key        K
	err        uint64 // value of the evicted minimum when (re)allocated
	prev, next int32  // neighbours within the bucket's counter list
	bucket     int32  // owning bucket slab index
}

// bucket groups all counters sharing one count value. Buckets form a
// doubly linked list in strictly ascending count order; the list head
// is always the minimum.
type bucket struct {
	count      uint64
	head       int32 // first counter in this bucket
	prev, next int32 // neighbouring buckets (ascending by count)
}

// Sketch is a Space Saving instance with a fixed number of counters.
// Construct with New or NewWithHash.
type Sketch[K comparable] struct {
	counters []counter[K]
	buckets  []bucket
	idx      *keyidx.Index[K]
	headB    int32 // min bucket, nilIdx when empty
	freeB    int32 // bucket free list head
	used     int32 // counters in use (monotone until Flush)
	items    uint64

	// Merge scratch, lazily sized on first Merge and reused after.
	mergeBuf []mergeEntry[K]
	mergeIdx *keyidx.Index[K]

	// onEvict, when set, observes the key each saturated Add evicts
	// (before it is replaced). The Memento delta plane uses it to mark
	// evicted keys dirty; nil costs the eviction branch one compare.
	onEvict func(K)

	// evictObs counts evictions for the obs plane, independent of
	// onEvict so instrumentation composes with delta tracking. A nil
	// counter is disabled (one compare inside Add's eviction branch).
	evictObs *obs.Counter
}

// mergeEntry accumulates one key's merged count during Merge.
type mergeEntry[K comparable] struct {
	key        K
	count, err uint64
}

// New returns a Sketch with capacity k counters. k must be positive.
func New[K comparable](k int) (*Sketch[K], error) { return NewWithHash[K](k, nil) }

// NewWithHash is New with a caller-supplied key hash for the internal
// index. Layers that already hash every key (internal/shard partitions
// by hash) pass the same function here so one hash computation serves
// both, via AddHashed. hash may be nil, selecting the default.
func NewWithHash[K comparable](k int, hash func(K) uint64) (*Sketch[K], error) {
	if k <= 0 {
		return nil, errors.New("spacesaving: capacity must be positive")
	}
	const maxK = 1 << 28
	if k > maxK {
		return nil, fmt.Errorf("spacesaving: capacity %d exceeds maximum %d", k, maxK)
	}
	idx, err := keyidx.New[K](k, hash)
	if err != nil {
		return nil, err
	}
	s := &Sketch[K]{
		counters: make([]counter[K], k),
		buckets:  make([]bucket, k+2),
		idx:      idx,
	}
	s.reset()
	return s, nil
}

// Hash returns the sketch's hash of key, for callers feeding the
// hashed fast paths.
func (s *Sketch[K]) Hash(key K) uint64 { return s.idx.Hash(key) }

// MustNew is New for statically valid capacities; it panics on error.
func MustNew[K comparable](k int) *Sketch[K] {
	s, err := New[K](k)
	if err != nil {
		panic(err)
	}
	return s
}

// reset rebuilds the free lists without allocating.
func (s *Sketch[K]) reset() {
	s.headB = nilIdx
	s.used = 0
	s.items = 0
	for i := range s.buckets {
		s.buckets[i].next = int32(i) + 1
	}
	s.buckets[len(s.buckets)-1].next = nilIdx
	s.freeB = 0
}

// Cap returns the configured number of counters.
func (s *Sketch[K]) Cap() int { return len(s.counters) }

// Len returns the number of counters currently in use.
func (s *Sketch[K]) Len() int { return int(s.used) }

// Items returns the number of Add calls since the last Flush.
func (s *Sketch[K]) Items() uint64 { return s.items }

// Flush empties the sketch, retaining and reusing all memory. It is
// O(k) in the slab bookkeeping but the key index clears in O(1) via
// its generation stamp.
//memento:noalloc
func (s *Sketch[K]) Flush() {
	s.idx.Flush()
	s.reset()
}

// allocBucket takes a bucket from the free list.
func (s *Sketch[K]) allocBucket(count uint64) int32 {
	bi := s.freeB
	s.freeB = s.buckets[bi].next
	b := &s.buckets[bi]
	b.count = count
	b.head = nilIdx
	b.prev = nilIdx
	b.next = nilIdx
	return bi
}

// freeBucket unlinks bucket bi from the ascending list and returns it
// to the free list.
func (s *Sketch[K]) freeBucket(bi int32) {
	b := &s.buckets[bi]
	if b.prev != nilIdx {
		s.buckets[b.prev].next = b.next
	} else {
		s.headB = b.next
	}
	if b.next != nilIdx {
		s.buckets[b.next].prev = b.prev
	}
	b.next = s.freeB
	s.freeB = bi
}

// attach links counter ci at the head of bucket bi.
func (s *Sketch[K]) attach(ci, bi int32) {
	c := &s.counters[ci]
	b := &s.buckets[bi]
	c.bucket = bi
	c.prev = nilIdx
	c.next = b.head
	if b.head != nilIdx {
		s.counters[b.head].prev = ci
	}
	b.head = ci
}

// detach unlinks counter ci from its bucket; the bucket is not freed
// even if it becomes empty (callers decide).
func (s *Sketch[K]) detach(ci int32) {
	c := &s.counters[ci]
	if c.prev != nilIdx {
		s.counters[c.prev].next = c.next
	} else {
		s.buckets[c.bucket].head = c.next
	}
	if c.next != nilIdx {
		s.counters[c.next].prev = c.prev
	}
}

// increment moves counter ci from its bucket to the bucket holding
// count+1, creating that bucket if needed, and returns the new count.
func (s *Sketch[K]) increment(ci int32) uint64 {
	c := &s.counters[ci]
	bi := c.bucket
	b := &s.buckets[bi]
	newCount := b.count + 1
	next := b.next
	var target int32
	if next != nilIdx && s.buckets[next].count == newCount {
		target = next
	} else {
		// Insert a fresh bucket immediately after bi.
		target = s.allocBucket(newCount)
		t := &s.buckets[target]
		t.prev = bi
		t.next = next
		s.buckets[bi].next = target
		if next != nilIdx {
			s.buckets[next].prev = target
		}
	}
	s.detach(ci)
	s.attach(ci, target)
	if s.buckets[bi].head == nilIdx {
		s.freeBucket(bi)
	}
	return newCount
}

// Add feeds one occurrence of key and returns its new estimated count.
// The returned value increases by exactly 1 per call for a given
// resident key, which Memento's overflow detection relies on.
//memento:noalloc
func (s *Sketch[K]) Add(key K) uint64 { return s.AddHashed(key, s.idx.Hash(key)) }

// AddHashed is Add with a caller-computed hash (which must equal
// Hash(key)); callers that already hashed the key for routing avoid a
// second hash computation on the hot path.
//memento:noalloc
func (s *Sketch[K]) AddHashed(key K, h uint64) uint64 {
	s.items++
	if ci, ok := s.idx.GetH(key, h); ok {
		return s.increment(ci)
	}
	if int(s.used) < len(s.counters) {
		ci := s.used
		s.used++
		c := &s.counters[ci]
		c.key = key
		c.err = 0
		// The count-1 bucket is the head bucket or a new head.
		if s.headB != nilIdx && s.buckets[s.headB].count == 1 {
			s.attach(ci, s.headB)
		} else {
			bi := s.allocBucket(1)
			b := &s.buckets[bi]
			b.next = s.headB
			if s.headB != nilIdx {
				s.buckets[s.headB].prev = bi
			}
			s.headB = bi
			s.attach(ci, bi)
		}
		s.idx.PutH(key, ci, h)
		return 1
	}
	// Full: evict one counter from the minimum bucket.
	ci := s.buckets[s.headB].head
	c := &s.counters[ci]
	minCount := s.buckets[s.headB].count
	s.evictObs.Inc()
	if s.onEvict != nil {
		s.onEvict(c.key)
	}
	s.idx.Delete(c.key)
	c.key = key
	c.err = minCount
	s.idx.PutH(key, ci, h)
	return s.increment(ci)
}

// Min returns the minimum counter value, or 0 while free counters
// remain. Queries for unmonitored keys return this value (the upper
// bound Space Saving guarantees).
func (s *Sketch[K]) Min() uint64 {
	if int(s.used) < len(s.counters) || s.headB == nilIdx {
		return 0
	}
	return s.buckets[s.headB].count
}

// Query returns the estimated count of key: its counter value when
// monitored, otherwise Min().
//memento:noalloc
func (s *Sketch[K]) Query(key K) uint64 { return s.QueryHashed(key, s.idx.Hash(key)) }

// QueryHashed is Query with a caller-computed hash (which must equal
// Hash(key)); query paths that probe both the Memento overflow table
// and this index hash the key once and feed both.
//memento:noalloc
func (s *Sketch[K]) QueryHashed(key K, h uint64) uint64 {
	if ci, ok := s.idx.GetH(key, h); ok {
		return s.buckets[s.counters[ci].bucket].count
	}
	return s.Min()
}

// SetEvictHook installs fn as the eviction observer: every saturated
// Add that replaces a monitored key first passes the outgoing key to
// fn. Pass nil to remove the hook. CopyInto does not propagate it
// (copies are read-only snapshots), and Merge bypasses it — a sketch
// whose evictions are being tracked must not be merged into.
func (s *Sketch[K]) SetEvictHook(fn func(K)) { s.onEvict = fn }

// SetEvictCounter installs c as the eviction counter (nil disables):
// every saturated Add increments it. Orthogonal to SetEvictHook so
// observability composes with delta tracking.
func (s *Sketch[K]) SetEvictCounter(c *obs.Counter) { s.evictObs = c }

// Lookup returns key's monitored counter, if any — unlike Query it
// distinguishes "monitored with count c" from "absent, Min() = c" and
// carries the per-counter error term. The delta plane probes captured
// state with it to serialize exactly the counters that changed.
func (s *Sketch[K]) Lookup(key K) (Counter[K], bool) {
	return s.LookupHashed(key, s.idx.Hash(key))
}

// LookupHashed is Lookup with a caller-computed hash (which must
// equal Hash(key)).
//memento:noalloc
func (s *Sketch[K]) LookupHashed(key K, h uint64) (Counter[K], bool) {
	ci, ok := s.idx.GetH(key, h)
	if !ok {
		return Counter[K]{}, false
	}
	c := &s.counters[ci]
	return Counter[K]{Key: key, Count: s.buckets[c.bucket].count, Err: c.err}, true
}

// QueryBounds returns upper and lower bounds for key's true count:
// upper = counter value (or Min for unmonitored keys), lower =
// upper − Err (0 for unmonitored keys).
func (s *Sketch[K]) QueryBounds(key K) (upper, lower uint64) {
	return s.QueryBoundsHashed(key, s.idx.Hash(key))
}

// QueryBoundsHashed is QueryBounds with a caller-computed hash.
func (s *Sketch[K]) QueryBoundsHashed(key K, h uint64) (upper, lower uint64) {
	if ci, ok := s.idx.GetH(key, h); ok {
		c := &s.counters[ci]
		upper = s.buckets[c.bucket].count
		lower = upper - c.err
		return upper, lower
	}
	return s.Min(), 0
}

// CopyInto overwrites dst with a point-in-time copy of s, reusing
// dst's slabs when they are large enough. Like keyidx.Index.CopyInto
// it is three slab memmoves plus scalars — cheap enough to run under
// a shard lock — and the copy then answers Query/QueryBounds/Min/
// Iterate/Entries lock-free exactly as s did at copy time. dst may be
// a zero Sketch. Merge scratch is not copied; merging on a copy
// allocates its own.
func (s *Sketch[K]) CopyInto(dst *Sketch[K]) {
	if cap(dst.counters) < len(s.counters) {
		//memento:allow alloc "snapshot slab grows to the live sketch's footprint once; reused across captures"
		dst.counters = make([]counter[K], len(s.counters))
	} else {
		dst.counters = dst.counters[:len(s.counters)]
	}
	copy(dst.counters, s.counters)
	if cap(dst.buckets) < len(s.buckets) {
		//memento:allow alloc "snapshot slab grows to the live sketch's footprint once; reused across captures"
		dst.buckets = make([]bucket, len(s.buckets))
	} else {
		dst.buckets = dst.buckets[:len(s.buckets)]
	}
	copy(dst.buckets, s.buckets)
	if dst.idx == nil {
		//memento:allow alloc "zero-value destination initialized once; reused across captures"
		dst.idx = &keyidx.Index[K]{}
	}
	s.idx.CopyInto(dst.idx)
	dst.headB = s.headB
	dst.freeB = s.freeB
	dst.used = s.used
	dst.items = s.items
}

// RestoreEntry installs key with an explicit count and error term
// during a restore or decode: the durable-codec path (internal/codec,
// core.Sketch.RestoreFrom) rebuilds a sketch's monitored set entry by
// entry under the live index's own hash function instead of trusting
// a foreign slab layout. The sketch must have a free counter and must
// not already monitor key. Feeding entries in non-decreasing count
// order (the wire format's order, and Iterate's) keeps the bucket
// walk O(1) per insert; other orders are correct but slower.
func (s *Sketch[K]) RestoreEntry(key K, count, err uint64) error {
	if int(s.used) >= len(s.counters) {
		return fmt.Errorf("spacesaving: restore exceeds %d counters", len(s.counters))
	}
	if count == 0 {
		return errors.New("spacesaving: restored count must be positive")
	}
	if err >= count {
		return fmt.Errorf("spacesaving: restored error %d not below count %d", err, count)
	}
	if _, ok := s.idx.Get(key); ok {
		return errors.New("spacesaving: duplicate restored key")
	}
	s.insertAt(key, count, err)
	return nil
}

// SetItems overrides the Add-call count (restore bookkeeping only;
// Add maintains it itself).
func (s *Sketch[K]) SetItems(n uint64) { s.items = n }

// Counter reports one monitored entry.
type Counter[K comparable] struct {
	Key   K
	Count uint64
	Err   uint64
}

// Iterate calls fn for every monitored counter until fn returns false.
// The iteration order is unspecified. The sketch must not be mutated
// during iteration.
func (s *Sketch[K]) Iterate(fn func(Counter[K]) bool) {
	for bi := s.headB; bi != nilIdx; bi = s.buckets[bi].next {
		count := s.buckets[bi].count
		for ci := s.buckets[bi].head; ci != nilIdx; ci = s.counters[ci].next {
			c := &s.counters[ci]
			if !fn(Counter[K]{Key: c.key, Count: count, Err: c.err}) {
				return
			}
		}
	}
}

// Entries appends all monitored counters to dst and returns it,
// ordered by descending count (useful for top-k reporting and the
// Aggregation communication method).
//memento:noalloc
func (s *Sketch[K]) Entries(dst []Counter[K]) []Counter[K] {
	start := len(dst)
	// Open-coded Iterate: appending through a callback would capture
	// dst in a closure, and this runs inside the snapshot encode path.
	for bi := s.headB; bi != nilIdx; bi = s.buckets[bi].next {
		count := s.buckets[bi].count
		for ci := s.buckets[bi].head; ci != nilIdx; ci = s.counters[ci].next {
			dst = append(dst, Counter[K]{Key: s.counters[ci].key, Count: count, Err: s.counters[ci].err})
		}
	}
	// Buckets ascend by count; reverse for descending.
	out := dst[start:]
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return dst
}

// Merge folds other into s: for every key monitored in either sketch
// the merged estimate is the sum of the two estimates (using Min() for
// absent keys), and the k largest merged entries are retained. This is
// the standard mergeability property of counter-based sketches the
// paper's Aggregation method relies on (Section 4.3). Merge is a
// control-plane operation; it runs through scratch buffers owned by s
// that are sized on first use and reused by every later Merge.
func (s *Sketch[K]) Merge(other *Sketch[K]) {
	want := s.Len() + other.Len()
	if s.mergeIdx == nil || s.mergeIdx.Cap() < want {
		s.mergeIdx = keyidx.MustNew[K](max(want, 1), nil)
	} else {
		s.mergeIdx.Flush()
	}
	buf := s.mergeBuf[:0]
	sMin, oMin := s.Min(), other.Min()
	s.Iterate(func(c Counter[K]) bool {
		s.mergeIdx.Put(c.Key, int32(len(buf)))
		buf = append(buf, mergeEntry[K]{c.Key, c.Count, c.Err})
		return true
	})
	other.Iterate(func(c Counter[K]) bool {
		if pos, ok := s.mergeIdx.Get(c.Key); ok {
			buf[pos].count += c.Count
			buf[pos].err += c.Err
		} else {
			s.mergeIdx.Put(c.Key, int32(len(buf)))
			buf = append(buf, mergeEntry[K]{c.Key, c.Count + sMin, c.Err + sMin})
		}
		return true
	})
	s.Iterate(func(c Counter[K]) bool {
		if _, ok := other.idx.Get(c.Key); !ok {
			pos, _ := s.mergeIdx.Get(c.Key)
			buf[pos].count += oMin
			buf[pos].err += oMin
		}
		return true
	})
	items := s.items + other.items
	// Select the k largest while preserving the additive error
	// semantics: evicted keys raise nothing here because queries for
	// absent keys already return Min().
	s.Flush()
	s.items = items
	// Ascending by count, so inserting back-to-front fills the sketch
	// with the largest entries; control-plane cost is fine.
	slices.SortFunc(buf, func(a, b mergeEntry[K]) int { return cmp.Compare(a.count, b.count) })
	limit := len(s.counters)
	if limit > len(buf) {
		limit = len(buf)
	}
	for i := len(buf) - limit; i < len(buf); i++ {
		s.insertAt(buf[i].key, buf[i].count, buf[i].err)
	}
	s.mergeBuf = buf[:0]
}

// insertAt installs key with an explicit count (used by Merge only).
func (s *Sketch[K]) insertAt(key K, count, err uint64) {
	if int(s.used) >= len(s.counters) {
		return
	}
	ci := s.used
	s.used++
	c := &s.counters[ci]
	c.key = key
	c.err = err
	s.idx.Put(key, ci)
	// Find insert position: walk from head. Merge inserts in ascending
	// count order, so the target is at or near the tail; walk from head
	// is O(buckets) worst case but Merge is control-plane.
	var prev int32 = nilIdx
	bi := s.headB
	for bi != nilIdx && s.buckets[bi].count < count {
		prev = bi
		bi = s.buckets[bi].next
	}
	if bi != nilIdx && s.buckets[bi].count == count {
		s.attach(ci, bi)
		return
	}
	nb := s.allocBucket(count)
	b := &s.buckets[nb]
	b.prev = prev
	b.next = bi
	if prev != nilIdx {
		s.buckets[prev].next = nb
	} else {
		s.headB = nb
	}
	if bi != nilIdx {
		s.buckets[bi].prev = nb
	}
	s.attach(ci, nb)
}
