package spacesaving

import (
	"testing"

	"memento/internal/rng"
)

// mapSketch is the seed implementation's Space Saving: identical
// stream-summary bucket logic, but with the key index held in a Go
// map. It serves as the differential oracle for the keyidx-backed
// Sketch — the index swap must not change any observable output,
// because eviction order depends only on the bucket lists.
type mapSketch[K comparable] struct {
	counters []mapCounter[K]
	buckets  []mapBucket
	index    map[K]int32
	headB    int32
	freeB    int32
	used     int32
	items    uint64
}

type mapCounter[K comparable] struct {
	key        K
	err        uint64
	prev, next int32
	bucket     int32
}

type mapBucket struct {
	count      uint64
	head       int32
	prev, next int32
}

func newMapSketch[K comparable](k int) *mapSketch[K] {
	s := &mapSketch[K]{
		counters: make([]mapCounter[K], k),
		buckets:  make([]mapBucket, k+2),
		index:    make(map[K]int32, k),
	}
	s.reset()
	return s
}

func (s *mapSketch[K]) reset() {
	s.headB = nilIdx
	s.used = 0
	s.items = 0
	for i := range s.buckets {
		s.buckets[i].next = int32(i) + 1
	}
	s.buckets[len(s.buckets)-1].next = nilIdx
	s.freeB = 0
}

func (s *mapSketch[K]) flush() {
	clear(s.index)
	s.reset()
}

func (s *mapSketch[K]) allocBucket(count uint64) int32 {
	bi := s.freeB
	s.freeB = s.buckets[bi].next
	b := &s.buckets[bi]
	b.count = count
	b.head = nilIdx
	b.prev = nilIdx
	b.next = nilIdx
	return bi
}

func (s *mapSketch[K]) freeBucket(bi int32) {
	b := &s.buckets[bi]
	if b.prev != nilIdx {
		s.buckets[b.prev].next = b.next
	} else {
		s.headB = b.next
	}
	if b.next != nilIdx {
		s.buckets[b.next].prev = b.prev
	}
	b.next = s.freeB
	s.freeB = bi
}

func (s *mapSketch[K]) attach(ci, bi int32) {
	c := &s.counters[ci]
	b := &s.buckets[bi]
	c.bucket = bi
	c.prev = nilIdx
	c.next = b.head
	if b.head != nilIdx {
		s.counters[b.head].prev = ci
	}
	b.head = ci
}

func (s *mapSketch[K]) detach(ci int32) {
	c := &s.counters[ci]
	if c.prev != nilIdx {
		s.counters[c.prev].next = c.next
	} else {
		s.buckets[c.bucket].head = c.next
	}
	if c.next != nilIdx {
		s.counters[c.next].prev = c.prev
	}
}

func (s *mapSketch[K]) increment(ci int32) uint64 {
	c := &s.counters[ci]
	bi := c.bucket
	b := &s.buckets[bi]
	newCount := b.count + 1
	next := b.next
	var target int32
	if next != nilIdx && s.buckets[next].count == newCount {
		target = next
	} else {
		target = s.allocBucket(newCount)
		t := &s.buckets[target]
		t.prev = bi
		t.next = next
		s.buckets[bi].next = target
		if next != nilIdx {
			s.buckets[next].prev = target
		}
	}
	s.detach(ci)
	s.attach(ci, target)
	if s.buckets[bi].head == nilIdx {
		s.freeBucket(bi)
	}
	return newCount
}

func (s *mapSketch[K]) add(key K) uint64 {
	s.items++
	if ci, ok := s.index[key]; ok {
		return s.increment(ci)
	}
	if int(s.used) < len(s.counters) {
		ci := s.used
		s.used++
		c := &s.counters[ci]
		c.key = key
		c.err = 0
		if s.headB != nilIdx && s.buckets[s.headB].count == 1 {
			s.attach(ci, s.headB)
		} else {
			bi := s.allocBucket(1)
			b := &s.buckets[bi]
			b.next = s.headB
			if s.headB != nilIdx {
				s.buckets[s.headB].prev = bi
			}
			s.headB = bi
			s.attach(ci, bi)
		}
		s.index[key] = ci
		return 1
	}
	ci := s.buckets[s.headB].head
	c := &s.counters[ci]
	minCount := s.buckets[s.headB].count
	delete(s.index, c.key)
	c.key = key
	c.err = minCount
	s.index[key] = ci
	return s.increment(ci)
}

func (s *mapSketch[K]) min() uint64 {
	if int(s.used) < len(s.counters) || s.headB == nilIdx {
		return 0
	}
	return s.buckets[s.headB].count
}

func (s *mapSketch[K]) query(key K) uint64 {
	if ci, ok := s.index[key]; ok {
		return s.buckets[s.counters[ci].bucket].count
	}
	return s.min()
}

func (s *mapSketch[K]) queryBounds(key K) (upper, lower uint64) {
	if ci, ok := s.index[key]; ok {
		c := &s.counters[ci]
		upper = s.buckets[c.bucket].count
		return upper, upper - c.err
	}
	return s.min(), 0
}

// entries returns all monitored counters in descending count order,
// mirroring Sketch.Entries.
func (s *mapSketch[K]) entries() []Counter[K] {
	var out []Counter[K]
	for bi := s.headB; bi != nilIdx; bi = s.buckets[bi].next {
		count := s.buckets[bi].count
		for ci := s.buckets[bi].head; ci != nilIdx; ci = s.counters[ci].next {
			c := &s.counters[ci]
			out = append(out, Counter[K]{Key: c.key, Count: count, Err: c.err})
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestDifferentialKeyidxVsMap feeds identical skewed streams (fixed
// seed) through the keyidx-backed Sketch and the map-indexed seed
// implementation, interleaving flushes, and requires exact agreement:
// same returned count per Add, same Min, same per-key bounds, same
// Entries sequence. Returned Add counts increasing by exactly 1 per
// resident key is what Memento's overflow detection builds on, so
// "exact" here means bit-for-bit.
func TestDifferentialKeyidxVsMap(t *testing.T) {
	for _, k := range []int{1, 7, 64, 257} {
		src := rng.New(0xD1FF + uint64(k))
		s := MustNew[uint64](k)
		ref := newMapSketch[uint64](k)
		const ops = 60000
		for i := 0; i < ops; i++ {
			// Zipf-ish mix: small hot set plus a heavy tail of one-hit
			// keys to force constant eviction churn.
			var key uint64
			if src.Intn(3) == 0 {
				key = uint64(src.Intn(8))
			} else {
				key = uint64(src.Intn(1 << 20))
			}
			got, want := s.Add(key), ref.add(key)
			if got != want {
				t.Fatalf("k=%d op %d: Add(%d) = %d, reference %d", k, i, key, got, want)
			}
			if s.Min() != ref.min() {
				t.Fatalf("k=%d op %d: Min() = %d, reference %d", k, i, s.Min(), ref.min())
			}
			if i%997 == 0 {
				gu, gl := s.QueryBounds(key)
				wu, wl := ref.queryBounds(key)
				if gu != wu || gl != wl {
					t.Fatalf("k=%d op %d: QueryBounds(%d) = (%d,%d), reference (%d,%d)",
						k, i, key, gu, gl, wu, wl)
				}
				gotE := s.Entries(nil)
				wantE := ref.entries()
				if len(gotE) != len(wantE) {
					t.Fatalf("k=%d op %d: %d entries, reference %d", k, i, len(gotE), len(wantE))
				}
				for j := range gotE {
					if gotE[j] != wantE[j] {
						t.Fatalf("k=%d op %d: entry %d = %+v, reference %+v",
							k, i, j, gotE[j], wantE[j])
					}
				}
			}
			if i%9973 == 9972 { // exercise Flush + slab reuse mid-stream
				s.Flush()
				ref.flush()
			}
		}
		if s.Items() != ref.items {
			t.Fatalf("k=%d: Items() = %d, reference %d", k, s.Items(), ref.items)
		}
	}
}

// TestDifferentialQueriesOverKeyspace compares Query across a dense
// keyspace — monitored and unmonitored keys alike — after a fixed
// stream.
func TestDifferentialQueriesOverKeyspace(t *testing.T) {
	const k = 32
	src := rng.New(424242)
	s := MustNew[uint64](k)
	ref := newMapSketch[uint64](k)
	for i := 0; i < 20000; i++ {
		key := uint64(src.Intn(200))
		s.Add(key)
		ref.add(key)
	}
	for key := uint64(0); key < 200; key++ {
		if got, want := s.Query(key), ref.query(key); got != want {
			t.Fatalf("Query(%d) = %d, reference %d", key, got, want)
		}
	}
}

// TestAddZeroAlloc pins the allocation-free guarantee of Add under
// heavy eviction churn.
func TestAddZeroAlloc(t *testing.T) {
	s := MustNew[uint64](256)
	src := rng.New(11)
	allocs := testing.AllocsPerRun(20000, func() {
		s.Add(uint64(src.Intn(1 << 16)))
	})
	if allocs != 0 {
		t.Fatalf("Add allocs/op = %v, want 0", allocs)
	}
}

// TestMergeReusesScratch: after the first Merge sizes the scratch,
// further Merges of same-capacity sketches allocate nothing.
func TestMergeReusesScratch(t *testing.T) {
	src := rng.New(12)
	s := MustNew[uint64](64)
	fill := func(dst *Sketch[uint64]) {
		for i := 0; i < 4096; i++ {
			dst.Add(uint64(src.Intn(512)))
		}
	}
	fill(s)
	other := MustNew[uint64](64)
	fill(other)
	s.Merge(other) // sizes the scratch
	allocs := testing.AllocsPerRun(20, func() { s.Merge(other) })
	if allocs != 0 {
		t.Fatalf("Merge allocs/op = %v, want 0", allocs)
	}
}
