package spacesaving

import (
	"testing"
	"testing/quick"

	"memento/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New[int](0); err == nil {
		t.Error("capacity 0 should fail")
	}
	if _, err := New[int](-5); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := New[int](1 << 29); err == nil {
		t.Error("absurd capacity should fail")
	}
	s, err := New[int](4)
	if err != nil || s.Cap() != 4 || s.Len() != 0 {
		t.Fatalf("New(4): %v, cap=%d len=%d", err, s.Cap(), s.Len())
	}
}

func TestExactUnderCapacity(t *testing.T) {
	s := MustNew[string](8)
	feed := []string{"a", "b", "a", "c", "a", "b"}
	for _, k := range feed {
		s.Add(k)
	}
	for k, want := range map[string]uint64{"a": 3, "b": 2, "c": 1, "zzz": 0} {
		if got := s.Query(k); got != want {
			t.Errorf("Query(%q) = %d, want %d", k, got, want)
		}
	}
	if s.Min() != 0 {
		t.Errorf("Min = %d while free counters remain", s.Min())
	}
	if s.Items() != uint64(len(feed)) {
		t.Errorf("Items = %d", s.Items())
	}
}

func TestPaperEvictionExample(t *testing.T) {
	// Section 2: minimal counter is flow x with value 4, flow y has no
	// counter. When y arrives, x's counter is reallocated to y at 5.
	s := MustNew[string](2)
	for i := 0; i < 6; i++ {
		s.Add("big")
	}
	for i := 0; i < 4; i++ {
		s.Add("x")
	}
	s.Add("y")
	if got := s.Query("y"); got != 5 {
		t.Fatalf("Query(y) = %d, want 5", got)
	}
	// x lost its counter; its estimate falls back to the minimum (5).
	if got := s.Query("x"); got != 5 {
		t.Fatalf("Query(x) = %d, want min=5", got)
	}
	up, lo := s.QueryBounds("y")
	if up != 5 || lo != 1 {
		t.Fatalf("QueryBounds(y) = (%d, %d), want (5, 1)", up, lo)
	}
	up, lo = s.QueryBounds("x")
	if up != 5 || lo != 0 {
		t.Fatalf("QueryBounds(x) = (%d, %d), want (5, 0)", up, lo)
	}
}

func TestAddReturnsNewCount(t *testing.T) {
	// Memento's overflow detection requires Add to return a value that
	// advances by exactly 1 for a resident key.
	s := MustNew[int](2)
	prev := uint64(0)
	for i := 0; i < 10; i++ {
		c := s.Add(7)
		if c != prev+1 {
			t.Fatalf("Add #%d returned %d, want %d", i, c, prev+1)
		}
		prev = c
	}
	// Fill the second counter, then force an eviction: the counter
	// value continuum still advances by exactly one step even when the
	// key changes hands.
	if c := s.Add(8); c != 1 {
		t.Fatalf("fresh key count = %d, want 1", c)
	}
	minBefore := s.Min()
	if minBefore != 1 {
		t.Fatalf("Min = %d, want 1", minBefore)
	}
	if c := s.Add(9); c != minBefore+1 {
		t.Fatalf("eviction Add returned %d, want min+1 = %d", c, minBefore+1)
	}
}

func TestErrorBoundProperty(t *testing.T) {
	// The Space Saving guarantee: for every key,
	// f(x) ≤ Query(x) ≤ f(x) + N/k.
	f := func(keys []uint8, capRaw uint8) bool {
		k := int(capRaw%16) + 1
		s := MustNew[uint8](k)
		truth := map[uint8]uint64{}
		for _, key := range keys {
			s.Add(key)
			truth[key]++
		}
		n := uint64(len(keys))
		slack := n / uint64(k)
		for key := uint8(0); key < 255; key++ {
			est := s.Query(key)
			if est < truth[key] {
				return false
			}
			if est > truth[key]+slack+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsBracketTruth(t *testing.T) {
	// Count − Err ≤ f(x) ≤ Count for monitored keys, under heavy churn.
	r := rng.New(99)
	s := MustNew[int](16)
	truth := map[int]uint64{}
	for i := 0; i < 20000; i++ {
		k := int(r.Uint64() % 200)
		s.Add(k)
		truth[k]++
	}
	checked := 0
	s.Iterate(func(c Counter[int]) bool {
		f := truth[c.Key]
		if c.Count < f {
			t.Fatalf("key %d: count %d below truth %d", c.Key, c.Count, f)
		}
		if c.Count-c.Err > f {
			t.Fatalf("key %d: lower bound %d above truth %d", c.Key, c.Count-c.Err, f)
		}
		checked++
		return true
	})
	if checked != 16 {
		t.Fatalf("iterated %d counters, want 16", checked)
	}
}

func TestHeavyHitterSurvives(t *testing.T) {
	// A flow holding 30% of a stream must survive eviction pressure in
	// a sketch with k=16 counters (error 1/16 < 30%).
	r := rng.New(7)
	s := MustNew[uint64](16)
	var heavyCount uint64
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Float64() < 0.3 {
			s.Add(1)
			heavyCount++
		} else {
			s.Add(2 + r.Uint64()%5000)
		}
	}
	est := s.Query(1)
	if est < heavyCount {
		t.Fatalf("heavy flow underestimated: %d < %d", est, heavyCount)
	}
	if est > heavyCount+n/16 {
		t.Fatalf("heavy flow overestimated beyond bound: %d > %d", est, heavyCount+n/16)
	}
}

func TestFlushReuses(t *testing.T) {
	s := MustNew[int](4)
	for i := 0; i < 100; i++ {
		s.Add(i % 6)
	}
	s.Flush()
	if s.Len() != 0 || s.Items() != 0 || s.Min() != 0 {
		t.Fatal("Flush must empty the sketch")
	}
	// Must be fully functional after flush.
	s.Add(42)
	s.Add(42)
	if got := s.Query(42); got != 2 {
		t.Fatalf("post-flush Query = %d, want 2", got)
	}
	count := 0
	s.Iterate(func(Counter[int]) bool { count++; return true })
	if count != 1 {
		t.Fatalf("post-flush counters = %d, want 1", count)
	}
}

func TestEntriesDescending(t *testing.T) {
	s := MustNew[string](8)
	for i, k := range []string{"a", "b", "c"} {
		for j := 0; j <= i*3; j++ {
			s.Add(k)
		}
	}
	es := s.Entries(nil)
	if len(es) != 3 {
		t.Fatalf("Entries = %v", es)
	}
	for i := 1; i < len(es); i++ {
		if es[i].Count > es[i-1].Count {
			t.Fatalf("Entries not descending: %v", es)
		}
	}
	if es[0].Key != "c" || es[0].Count != 7 {
		t.Fatalf("top entry = %+v", es[0])
	}
}

func TestIterateEarlyStop(t *testing.T) {
	s := MustNew[int](8)
	for i := 0; i < 5; i++ {
		s.Add(i)
	}
	seen := 0
	s.Iterate(func(Counter[int]) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Fatalf("early stop visited %d", seen)
	}
}

func TestMergeDominates(t *testing.T) {
	// After Merge, each key's estimate must dominate the sum of true
	// counts fed to either sketch.
	r := rng.New(123)
	a := MustNew[int](32)
	b := MustNew[int](32)
	truth := map[int]uint64{}
	for i := 0; i < 5000; i++ {
		k := int(r.Uint64() % 100)
		if i%2 == 0 {
			a.Add(k)
		} else {
			b.Add(k)
		}
		truth[k]++
	}
	itemsWant := a.Items() + b.Items()
	a.Merge(b)
	if a.Items() != itemsWant {
		t.Fatalf("merged Items = %d, want %d", a.Items(), itemsWant)
	}
	if a.Len() > a.Cap() {
		t.Fatalf("merged Len %d exceeds capacity", a.Len())
	}
	for k, f := range truth {
		if est := a.Query(k); est < f {
			t.Fatalf("merged estimate for %d: %d < truth %d", k, est, f)
		}
	}
}

func TestMergeKeepsLargest(t *testing.T) {
	a := MustNew[int](2)
	b := MustNew[int](2)
	for i := 0; i < 10; i++ {
		a.Add(1)
	}
	for i := 0; i < 20; i++ {
		b.Add(2)
	}
	for i := 0; i < 3; i++ {
		b.Add(3)
	}
	a.Merge(b)
	// Keys 2 (20) and 1 (10) must be retained over 3 (3 + min slack).
	if a.Query(2) < 20 || a.Query(1) < 10 {
		t.Fatalf("merged sketch lost a large key: q1=%d q2=%d", a.Query(1), a.Query(2))
	}
}

func TestBucketInvariant(t *testing.T) {
	// Internal structural check: bucket list counts strictly ascend and
	// every counter's bucket back-reference is consistent.
	r := rng.New(5)
	s := MustNew[uint64](32)
	for i := 0; i < 50000; i++ {
		s.Add(r.Uint64() % 64)
		if i%997 == 0 {
			checkStructure(t, s)
		}
	}
	checkStructure(t, s)
}

func checkStructure[K comparable](t *testing.T, s *Sketch[K]) {
	t.Helper()
	prev := uint64(0)
	first := true
	seen := 0
	for bi := s.headB; bi != nilIdx; bi = s.buckets[bi].next {
		b := s.buckets[bi]
		if !first && b.count <= prev {
			t.Fatalf("bucket counts not strictly ascending: %d after %d", b.count, prev)
		}
		prev, first = b.count, false
		if b.head == nilIdx {
			t.Fatal("live bucket with no counters")
		}
		for ci := b.head; ci != nilIdx; ci = s.counters[ci].next {
			if s.counters[ci].bucket != bi {
				t.Fatal("counter bucket back-reference wrong")
			}
			seen++
		}
	}
	if seen != s.Len() {
		t.Fatalf("structure holds %d counters, Len() = %d", seen, s.Len())
	}
	if s.idx.Len() != s.Len() {
		t.Fatalf("index size %d != Len %d", s.idx.Len(), s.Len())
	}
}

func BenchmarkAddHit(b *testing.B) {
	s := MustNew[uint64](1024)
	for i := uint64(0); i < 1024; i++ {
		s.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i) & 1023)
	}
}

func BenchmarkAddChurn(b *testing.B) {
	s := MustNew[uint64](1024)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(r.Uint64())
	}
}

// TestCopyIntoMatchesSource pins the snapshot primitive: the copy
// answers Query/QueryBounds/Min/Iterate exactly like the source at
// copy time and is unaffected by later source mutations.
func TestCopyIntoMatchesSource(t *testing.T) {
	s := MustNew[uint64](8)
	src := rng.New(33)
	for i := 0; i < 5000; i++ {
		s.Add(uint64(src.Intn(40)))
	}
	var snap Sketch[uint64] // zero value: CopyInto must make it usable
	s.CopyInto(&snap)

	type state struct{ q, u, l uint64 }
	frozen := map[uint64]state{}
	for k := uint64(0); k < 48; k++ {
		u, l := s.QueryBounds(k)
		frozen[k] = state{q: s.Query(k), u: u, l: l}
	}
	if snap.Min() != s.Min() || snap.Len() != s.Len() || snap.Items() != s.Items() {
		t.Fatalf("copy scalars diverge: Min %d/%d Len %d/%d Items %d/%d",
			snap.Min(), s.Min(), snap.Len(), s.Len(), snap.Items(), s.Items())
	}

	for i := 0; i < 5000; i++ { // mutate the source
		s.Add(uint64(40 + src.Intn(40)))
	}
	for k, want := range frozen {
		u, l := snap.QueryBounds(k)
		if snap.Query(k) != want.q || u != want.u || l != want.l {
			t.Fatalf("key %d: copy (%d, %d, %d) != frozen source (%d, %d, %d)",
				k, snap.Query(k), u, l, want.q, want.u, want.l)
		}
	}
	n := 0
	snap.Iterate(func(Counter[uint64]) bool { n++; return true })
	if n != snap.Len() {
		t.Fatalf("copy Iterate visited %d, Len %d", n, snap.Len())
	}
}

// TestCopyIntoReusesSlabs asserts steady-state CopyInto is
// allocation-free once the destination slabs fit.
func TestCopyIntoReusesSlabs(t *testing.T) {
	s := MustNew[uint64](32)
	for i := 0; i < 1000; i++ {
		s.Add(uint64(i % 50))
	}
	var snap Sketch[uint64]
	s.CopyInto(&snap)
	allocs := testing.AllocsPerRun(100, func() { s.CopyInto(&snap) })
	if allocs != 0 {
		t.Fatalf("steady-state CopyInto allocs/op = %v, want 0", allocs)
	}
}

// TestHashedQueryVariantsMatch pins QueryHashed/QueryBoundsHashed
// against their hashing counterparts.
func TestHashedQueryVariantsMatch(t *testing.T) {
	s := MustNew[uint64](8)
	src := rng.New(34)
	for i := 0; i < 2000; i++ {
		s.Add(uint64(src.Intn(30)))
	}
	for k := uint64(0); k < 40; k++ {
		h := s.Hash(k)
		if got, want := s.QueryHashed(k, h), s.Query(k); got != want {
			t.Fatalf("QueryHashed(%d) = %d, Query = %d", k, got, want)
		}
		u1, l1 := s.QueryBoundsHashed(k, h)
		u2, l2 := s.QueryBounds(k)
		if u1 != u2 || l1 != l2 {
			t.Fatalf("QueryBoundsHashed(%d) = (%d, %d), QueryBounds = (%d, %d)", k, u1, l1, u2, l2)
		}
	}
}
